// Package hesgx_test holds the top-level benchmark suite: one testing.B
// benchmark per table and figure of the paper's evaluation (Tables I–V,
// Figs. 3–6, 8), plus ablations for the design choices DESIGN.md calls out.
// The cmd/hesgx-bench harness produces the full sweeps and the paper-format
// tables; these benches give single-point numbers under `go test -bench`.
package hesgx_test

import (
	"context"
	mrand "math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"time"

	"hesgx/internal/core"
	"hesgx/internal/cryptonets"
	"hesgx/internal/encoding"
	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
	"hesgx/internal/serve"
	"hesgx/internal/sgx"
)

// fixture lazily builds the shared crypto material the benches use.
type fixture struct {
	params he.Parameters
	sk     *he.SecretKey
	pk     *he.PublicKey
	ek     *he.EvaluationKeys
	enc    *he.Encryptor
	dec    *he.Decryptor
	eval   *he.Evaluator
	scalar *encoding.ScalarEncoder

	calSvc  *core.EnclaveService // calibrated SGX costs
	zeroSvc *core.EnclaveService // FakeSGX
}

var (
	fxOnce sync.Once
	fx     *fixture
	fxErr  error
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fxOnce.Do(func() {
		fxErr = func() error {
			params, err := he.DefaultParameters(1024, 4) // the paper's §V-A setup
			if err != nil {
				return err
			}
			kg, err := he.NewKeyGenerator(params, ring.NewSeededSource(1))
			if err != nil {
				return err
			}
			sk, pk := kg.GenKeyPair()
			enc, err := he.NewEncryptor(pk, ring.NewSeededSource(2))
			if err != nil {
				return err
			}
			dec, err := he.NewDecryptor(sk)
			if err != nil {
				return err
			}
			eval, err := he.NewEvaluator(params)
			if err != nil {
				return err
			}
			scalar, err := encoding.NewScalarEncoder(params)
			if err != nil {
				return err
			}
			cal, err := sgx.NewPlatform(sgx.Calibrated(), sgx.WithJitterSeed(3))
			if err != nil {
				return err
			}
			zero, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(4))
			if err != nil {
				return err
			}
			calSvc, err := core.NewEnclaveService(cal, params, core.WithKeySource(ring.NewSeededSource(5)))
			if err != nil {
				return err
			}
			zeroSvc, err := core.NewEnclaveService(zero, params, core.WithKeySource(ring.NewSeededSource(6)))
			if err != nil {
				return err
			}
			fx = &fixture{
				params: params, sk: sk, pk: pk, ek: kg.GenEvaluationKeys(sk),
				enc: enc, dec: dec, eval: eval, scalar: scalar,
				calSvc: calSvc, zeroSvc: zeroSvc,
			}
			return nil
		}()
	})
	if fxErr != nil {
		b.Fatal(fxErr)
	}
	return fx
}

// encryptBatchUnder encrypts count scalars under an enclave service's key.
func encryptBatchUnder(b *testing.B, svc *core.EnclaveService, count int) []*he.Ciphertext {
	b.Helper()
	enc, err := he.NewEncryptor(svc.PublicKey(), ring.NewSeededSource(7))
	if err != nil {
		b.Fatal(err)
	}
	cts := make([]*he.Ciphertext, count)
	for i := range cts {
		if cts[i], err = enc.EncryptScalar(uint64(i % 4)); err != nil {
			b.Fatal(err)
		}
	}
	return cts
}

// --- Table I ---

func BenchmarkTable1KeyGenOutsideSGX(b *testing.B) {
	f := getFixture(b)
	src := ring.NewSeededSource(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kg, err := he.NewKeyGenerator(f.params, src)
		if err != nil {
			b.Fatal(err)
		}
		kg.GenKeyPair()
	}
}

func BenchmarkTable1KeyGenInsideSGX(b *testing.B) {
	f := getFixture(b)
	platform, err := sgx.NewPlatform(sgx.Calibrated(), sgx.WithJitterSeed(11))
	if err != nil {
		b.Fatal(err)
	}
	src := ring.NewSeededSource(12)
	enclave, err := platform.Launch(sgx.Definition{
		Name:    "bench-keygen",
		Version: "1",
		ECalls: map[string]sgx.ECallFunc{
			"keygen": func(ctx *sgx.Context, _ []byte) ([]byte, error) {
				ctx.Touch(f.params.N * 8 * 4)
				kg, err := he.NewKeyGenerator(f.params, src)
				if err != nil {
					return nil, err
				}
				kg.GenKeyPair()
				return nil, nil
			},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enclave.ECall("keygen", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table II ---

func BenchmarkTable2ImageEncrypt(b *testing.B) {
	f := getFixture(b)
	encdr, err := encoding.NewIntegerEncoder(f.params)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < 28*28; p++ {
			pt, err := encdr.Encode(int64(p % 4))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.enc.Encrypt(pt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Table III ---

func BenchmarkTable3ResultDecrypt(b *testing.B) {
	f := getFixture(b)
	cts := make([]*he.Ciphertext, 10) // 10 class scores for one image
	for i := range cts {
		ct, err := f.enc.EncryptScalar(uint64(i % 4))
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ct := range cts {
			if _, err := f.dec.Decrypt(ct); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Table IV ---

func BenchmarkTable4EncodeEncryptOutside(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.enc.EncryptScalar(3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4DecodeDecryptOutside(b *testing.B) {
	f := getFixture(b)
	ct, err := f.enc.EncryptScalar(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.dec.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4RefreshInsideSGX(b *testing.B) {
	// One in-enclave decrypt+encrypt round trip (the inside-SGX analogue).
	f := getFixture(b)
	cts := encryptBatchUnder(b, f.calSvc, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.calSvc.Nonlinear(context.Background(), core.NonlinearOp{Kind: core.OpRefresh}, cts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table V ---

func BenchmarkTable5Relinearize(b *testing.B) {
	f := getFixture(b)
	a, _ := f.enc.EncryptScalar(3)
	c, _ := f.enc.EncryptScalar(2)
	prod, err := f.eval.Mul(a, c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.eval.Relinearize(prod, f.ek); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5SGXRefreshSolo(b *testing.B) {
	f := getFixture(b)
	cts := encryptBatchUnder(b, f.calSvc, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.calSvc.Nonlinear(context.Background(), core.NonlinearOp{Kind: core.OpRefresh}, cts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5SGXRefreshBatched(b *testing.B) {
	// Amortized per-ciphertext cost with a batch of 10 per ECALL.
	f := getFixture(b)
	cts := encryptBatchUnder(b, f.calSvc, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.calSvc.Nonlinear(context.Background(), core.NonlinearOp{Kind: core.OpRefresh}, cts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 3 ---

func BenchmarkFig3WeightEncoding(b *testing.B) {
	f := getFixture(b)
	const weights = 286 // 11 kernels of 5x5 + bias
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < weights; w++ {
			if _, err := f.eval.PrepareOperand(f.scalar.Encode(int64(w%7 - 3))); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Fig. 4 ---

func benchmarkHEConv(b *testing.B, k int) {
	f := getFixture(b)
	const size = 28
	cts := make([]*he.Ciphertext, size*size)
	for i := range cts {
		ct, err := f.enc.EncryptScalar(uint64(i % 4))
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	ops := make([]*he.PlainOperand, k*k)
	for i := range ops {
		op, err := f.eval.PrepareOperand(f.scalar.Encode(int64(i%5 - 2)))
		if err != nil {
			b.Fatal(err)
		}
		ops[i] = op
	}
	out := size - k + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for oy := 0; oy < out; oy++ {
			for ox := 0; ox < out; ox++ {
				var acc *he.Ciphertext
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						term, err := f.eval.MulPlainOperand(cts[(oy+ky)*size+ox+kx], ops[ky*k+kx])
						if err != nil {
							b.Fatal(err)
						}
						if acc == nil {
							acc = term
						} else if acc, err = f.eval.Add(acc, term); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		}
	}
}

func BenchmarkFig4HEConvKernel5(b *testing.B)  { benchmarkHEConv(b, 5) }
func BenchmarkFig4HEConvKernel14(b *testing.B) { benchmarkHEConv(b, 14) }

// --- Fig. 5 ---

func BenchmarkFig5EncryptSigmoid(b *testing.B) {
	// The HE approximation path: square + relinearize per value (8×8 map).
	f := getFixture(b)
	cts := make([]*he.Ciphertext, 64)
	for i := range cts {
		ct, err := f.enc.EncryptScalar(uint64(i % 4))
		if err != nil {
			b.Fatal(err)
		}
		cts[i] = ct
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ct := range cts {
			sq, err := f.eval.Square(ct)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.eval.Relinearize(sq, f.ek); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig5SGXSigmoid(b *testing.B) {
	f := getFixture(b)
	cts := encryptBatchUnder(b, f.calSvc, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.calSvc.Nonlinear(context.Background(), core.NonlinearOp{Kind: core.OpSigmoid, InScale: 2, OutScale: 2}, cts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5FakeSGXSigmoid(b *testing.B) {
	f := getFixture(b)
	cts := encryptBatchUnder(b, f.zeroSvc, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.zeroSvc.Nonlinear(context.Background(), core.NonlinearOp{Kind: core.OpSigmoid, InScale: 2, OutScale: 2}, cts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 6 ---

func benchmarkPool(b *testing.B, svc *core.EnclaveService, window int, div bool) {
	f := getFixture(b)
	const size = 24
	cts := encryptBatchUnder(b, svc, size*size)
	out := size / window
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if div {
			sums := make([]*he.Ciphertext, out*out)
			for oy := 0; oy < out; oy++ {
				for ox := 0; ox < out; ox++ {
					var acc *he.Ciphertext
					var err error
					for ky := 0; ky < window; ky++ {
						for kx := 0; kx < window; kx++ {
							ct := cts[(oy*window+ky)*size+ox*window+kx]
							if acc == nil {
								acc = ct
							} else if acc, err = f.eval.Add(acc, ct); err != nil {
								b.Fatal(err)
							}
						}
					}
					sums[oy*out+ox] = acc
				}
			}
			if _, err := svc.Nonlinear(context.Background(), core.NonlinearOp{Kind: core.OpPoolDivide, Divisor: uint64(window * window)}, sums); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := svc.Nonlinear(context.Background(), core.NonlinearOp{
				Kind:     core.OpPoolFull,
				Geometry: core.Geometry{Channels: 1, Height: size, Width: size, Window: window},
			}, cts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig6SGXDivWindow2(b *testing.B)      { benchmarkPool(b, getFixture(b).calSvc, 2, true) }
func BenchmarkFig6SGXDivWindow6(b *testing.B)      { benchmarkPool(b, getFixture(b).calSvc, 6, true) }
func BenchmarkFig6SGXPoolWindow2(b *testing.B)     { benchmarkPool(b, getFixture(b).calSvc, 2, false) }
func BenchmarkFig6SGXPoolWindow6(b *testing.B)     { benchmarkPool(b, getFixture(b).calSvc, 6, false) }
func BenchmarkFig6FakeSGXDivWindow2(b *testing.B)  { benchmarkPool(b, getFixture(b).zeroSvc, 2, true) }
func BenchmarkFig6FakeSGXPoolWindow2(b *testing.B) { benchmarkPool(b, getFixture(b).zeroSvc, 2, false) }

// --- Fig. 8 (reduced geometry; the harness runs the full 28×28) ---

// fig8Fixture holds the end-to-end pipelines at a reduced 12×12 geometry.
type fig8Fixture struct {
	img        *nn.Tensor
	hybridCI   *core.CipherImage
	hybrid     *core.HybridEngine
	baseline   *cryptonets.Engine
	baselineCI *cryptonets.CipherImage
}

var (
	fig8Once sync.Once
	fig8     *fig8Fixture
	fig8Err  error
)

func getFig8(b *testing.B) *fig8Fixture {
	b.Helper()
	fig8Once.Do(func() {
		fig8Err = func() error {
			rng := mrand.New(mrand.NewPCG(9, 9))
			img := nn.NewTensor(1, 12, 12)
			for i := range img.Data {
				img.Data[i] = rng.Float64()
			}
			hybridModel := nn.NewNetwork(
				nn.NewConv2D(1, 3, 3, 1, rng),
				nn.NewActivation(nn.Sigmoid),
				nn.NewPool2D(nn.MeanPool, 2),
				&nn.Flatten{},
				nn.NewFullyConnected(3*5*5, 10, rng),
			)
			baseModel := nn.NewNetwork(
				nn.NewConv2D(1, 3, 3, 1, rng),
				nn.NewActivation(nn.Square),
				nn.NewPool2D(nn.SumPool, 2),
				&nn.Flatten{},
				nn.NewFullyConnected(3*5*5, 10, rng),
			)
			params, err := he.DefaultParameters(2048, 1<<25)
			if err != nil {
				return err
			}
			platform, err := sgx.NewPlatform(sgx.Calibrated(), sgx.WithJitterSeed(13))
			if err != nil {
				return err
			}
			svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(14)))
			if err != nil {
				return err
			}
			engine, err := core.NewEngine(svc, hybridModel)
			if err != nil {
				return err
			}
			if err := engine.EncodeWeights(); err != nil {
				return err
			}
			client, err := core.NewClient()
			if err != nil {
				return err
			}
			payload, err := svc.ProvisionKeys(client.ECDHPublicKey())
			if err != nil {
				return err
			}
			if err := client.InstallProvisionPayload(payload); err != nil {
				return err
			}
			hybridCI, err := client.EncryptImages([]*nn.Tensor{img}, core.DefaultConfig().PixelScale)
			if err != nil {
				return err
			}

			cfg := cryptonets.DefaultConfig()
			cfg.N = 2048
			cfg.QBits = 56
			kb, ek, err := cryptonets.GenerateKeys(cfg, ring.NewSeededSource(15))
			if err != nil {
				return err
			}
			baseline, err := cryptonets.NewEngine(baseModel, cfg, ek)
			if err != nil {
				return err
			}
			baselineCI, err := kb.EncryptImage(img, cfg.PixelScale, ring.NewSeededSource(16))
			if err != nil {
				return err
			}
			fig8 = &fig8Fixture{
				img: img, hybridCI: hybridCI, hybrid: engine,
				baseline: baseline, baselineCI: baselineCI,
			}
			return nil
		}()
	})
	if fig8Err != nil {
		b.Fatal(fig8Err)
	}
	return fig8
}

func BenchmarkFig8HybridEndToEnd(b *testing.B) {
	f8 := getFig8(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f8.hybrid.Infer(f8.hybridCI); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8PureHEPerModulus(b *testing.B) {
	f8 := getFig8(b)
	ci := f8.baselineCI
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f8.baseline.InferModulus(0, ci.CTs[0], ci.Channels, ci.Height, ci.Width); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

// BenchmarkAblationMulSchoolbook vs MulNTTCRT: the exact tensor step of
// ciphertext multiplication, reference vs fast path.
func BenchmarkAblationMulSchoolbook(b *testing.B) {
	f := getFixture(b)
	slow, err := he.NewEvaluator(f.params, he.WithSchoolbookTensor())
	if err != nil {
		b.Fatal(err)
	}
	x, _ := f.enc.EncryptScalar(2)
	y, _ := f.enc.EncryptScalar(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slow.Mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMulNTTCRT pins the u128 NTT+CRT tensor path (the PR 2
// fast path, now the correctness oracle) so the three-way ablation —
// schoolbook vs u128 NTT+CRT vs RNS limbs — stays measurable after the RNS
// rewrite made word-size limbs the default.
func BenchmarkAblationMulNTTCRT(b *testing.B) {
	f := getFixture(b)
	oracle, err := he.NewEvaluator(f.params.WithTensorOracle())
	if err != nil {
		b.Fatal(err)
	}
	x, _ := f.enc.EncryptScalar(2)
	y, _ := f.enc.EncryptScalar(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oracle.Mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMulRNS is the default path after PR 8: the RNS
// modulus-chain tensor multiply over word-size limbs.
func BenchmarkAblationMulRNS(b *testing.B) {
	f := getFixture(b)
	x, _ := f.enc.EncryptScalar(2)
	y, _ := f.enc.EncryptScalar(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.eval.Mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRelinBase compares relinearization decomposition bases
// (speed vs noise tradeoff).
func benchmarkRelinBase(b *testing.B, baseBits int) {
	params, err := he.NewParameters(1024, mustPrime(b, 46, 1024), 4, baseBits)
	if err != nil {
		b.Fatal(err)
	}
	kg, err := he.NewKeyGenerator(params, ring.NewSeededSource(20))
	if err != nil {
		b.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	ek := kg.GenEvaluationKeys(sk)
	enc, err := he.NewEncryptor(pk, ring.NewSeededSource(21))
	if err != nil {
		b.Fatal(err)
	}
	eval, err := he.NewEvaluator(params)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := enc.EncryptScalar(2)
	y, _ := enc.EncryptScalar(3)
	prod, err := eval.Mul(x, y)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Relinearize(prod, ek); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRelinBaseW16(b *testing.B) { benchmarkRelinBase(b, 16) }
func BenchmarkAblationRelinBaseW2(b *testing.B)  { benchmarkRelinBase(b, 2) }

// BenchmarkAblationScalarVsTruePlainMul compares the constant-coefficient
// fast path against the full C×P product for weight multiplication.
func BenchmarkAblationWeightMulScalar(b *testing.B) {
	f := getFixture(b)
	ct, _ := f.enc.EncryptScalar(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.eval.MulScalar(ct, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWeightMulTrueCxP(b *testing.B) {
	f := getFixture(b)
	ct, _ := f.enc.EncryptScalar(2)
	op, err := f.eval.PrepareOperand(f.scalar.Encode(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.eval.MulPlainOperand(ct, op); err != nil {
			b.Fatal(err)
		}
	}
}

func mustPrime(b *testing.B, bits, n int) uint64 {
	b.Helper()
	q, err := ring.GenerateNTTPrime(bits, n)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkSIMDBatchInference measures the §VIII extension: one SIMD engine
// pass carrying 64 images in CRT slots.
func BenchmarkSIMDBatchInference64(b *testing.B) {
	params, err := core.DefaultSIMDParameters()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(30))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(31)))
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(32, 33))
	model := nn.NewNetwork(
		nn.NewConv2D(1, 3, 3, 1, rng),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(3*5*5, 10, rng),
	)
	cfg := core.DefaultConfig()
	engine, err := core.NewEngine(svc, model, core.WithSIMD(true))
	if err != nil {
		b.Fatal(err)
	}
	client, err := core.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	payload, err := svc.ProvisionKeys(client.ECDHPublicKey())
	if err != nil {
		b.Fatal(err)
	}
	if err := client.InstallProvisionPayload(payload); err != nil {
		b.Fatal(err)
	}
	imgs := make([]*nn.Tensor, 64)
	for i := range imgs {
		im := nn.NewTensor(1, 12, 12)
		for j := range im.Data {
			im.Data[j] = rng.Float64()
		}
		imgs[i] = im
	}
	ci, err := client.EncryptImages(imgs, cfg.PixelScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Infer(ci); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrent serving (cross-request ECALL batching) ---

// benchmarkConcurrentServing pushes `clients` simultaneous inferences
// through a serving pipeline per iteration, under calibrated SGX costs.
// With batching enabled, non-linear ECALLs from different in-flight
// requests coalesce into shared enclave transitions; the reported
// transitions/inference metric is the before/after comparison (Fig. 8's
// amortization, extended across requests).
func benchmarkConcurrentServing(b *testing.B, clients int, batching bool) {
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		b.Fatal(err)
	}
	params, err := he.NewParameters(1024, q, 1<<20, he.DefaultDecompositionBase)
	if err != nil {
		b.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.Calibrated(), sgx.WithJitterSeed(40))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(41)))
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(42, 43))
	model := nn.NewNetwork(
		nn.NewConv2D(1, 2, 3, 1, rng),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(2*3*3, 4, rng),
	)
	// SGXDiv pooling keeps both non-linear layers on batchable ops.
	cfg := core.Config{PixelScale: 63, WeightScale: 16, ActScale: 256, Pool: core.PoolSGXDiv}
	engine, err := core.NewEngine(svc, model,
		core.WithScales(cfg.PixelScale, cfg.WeightScale, cfg.ActScale), core.WithPoolStrategy(cfg.Pool))
	if err != nil {
		b.Fatal(err)
	}
	if err := engine.EncodeWeights(); err != nil {
		b.Fatal(err)
	}
	client, err := core.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	payload, err := svc.ProvisionKeys(client.ECDHPublicKey())
	if err != nil {
		b.Fatal(err)
	}
	if err := client.InstallProvisionPayload(payload); err != nil {
		b.Fatal(err)
	}
	cis := make([]*core.CipherImage, clients)
	for i := range cis {
		img := nn.NewTensor(1, 8, 8)
		for j := range img.Data {
			img.Data[j] = rng.Float64()
		}
		if cis[i], err = client.EncryptImages([]*nn.Tensor{img}, cfg.PixelScale); err != nil {
			b.Fatal(err)
		}
	}
	popts := []serve.Option{
		serve.WithSchedulerConfig(serve.SchedulerConfig{Workers: clients, QueueDepth: clients}),
		serve.WithBatcherConfig(serve.BatcherConfig{MaxBatch: 1 << 14, Window: 5 * time.Millisecond}),
		serve.WithoutLanes(), // scalar passes: this benchmark isolates ECALL batching
	}
	if !batching {
		popts = append(popts, serve.WithoutBatching())
	}
	p := serve.NewService(engine, svc, popts...)
	defer p.Close()

	before := platform.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if _, err := p.Infer(context.Background(), serve.Request{Image: cis[c]}); err != nil {
					b.Error(err)
				}
			}(c)
		}
		wg.Wait()
	}
	b.StopTimer()
	total := float64(b.N * clients)
	delta := platform.Snapshot().Sub(before)
	b.ReportMetric(float64(delta.Transitions())/total, "transitions/inference")
	b.ReportMetric(total/b.Elapsed().Seconds(), "inferences/sec")
}

// --- PR 6: slot-lane batched serving (images/sec at 64 concurrent clients) ---

// buildLaneServingStack assembles a full serving stack over the paper CNN
// at the default SIMD tier (n = 2048, prime t ≡ 1 mod 2n): enclave,
// engine, serve.Service, plus 64 per-client encrypted images.
func buildLaneServingStack(b *testing.B, clients int, opts ...serve.Option) (*serve.Service, []*core.CipherImage) {
	b.Helper()
	params, err := core.DefaultSIMDParameters()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(50))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(51)))
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(52, 53))
	model := nn.NewNetwork(
		nn.NewConv2D(1, 6, 3, 1, rng),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(6*5*5, 10, rng),
	)
	cfg := core.DefaultConfig()
	// SGXDiv pooling keeps both non-linear layers on batchable enclave ops.
	cfg.Pool = core.PoolSGXDiv
	engine, err := core.NewEngine(svc, model, core.WithPoolStrategy(core.PoolSGXDiv))
	if err != nil {
		b.Fatal(err)
	}
	if err := engine.EncodeWeights(); err != nil {
		b.Fatal(err)
	}
	client, err := core.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	payload, err := svc.ProvisionKeys(client.ECDHPublicKey())
	if err != nil {
		b.Fatal(err)
	}
	if err := client.InstallProvisionPayload(payload); err != nil {
		b.Fatal(err)
	}
	cis := make([]*core.CipherImage, clients)
	for i := range cis {
		img := nn.NewTensor(1, 12, 12)
		for j := range img.Data {
			img.Data[j] = rng.Float64()
		}
		if cis[i], err = client.EncryptImages([]*nn.Tensor{img}, cfg.PixelScale); err != nil {
			b.Fatal(err)
		}
	}
	service := serve.NewService(engine, svc, append([]serve.Option{
		serve.WithSchedulerConfig(serve.SchedulerConfig{Workers: 4, QueueDepth: clients}),
	}, opts...)...)
	return service, cis
}

// BenchmarkLaneServing64 is the slot-batched serving mode's headline
// number: images/sec at 64 concurrent clients on the paper CNN, scalar
// pass-per-request vs one lane-packed pass over shared ciphertext slots
// (n = 2048 ⇒ all 64 requests ride one engine pass). The asserted ≥8×
// keeps the tentpole win from regressing silently.
func BenchmarkLaneServing64(b *testing.B) {
	const clients = 64
	scalarSvc, scalarCIs := buildLaneServingStack(b, clients, serve.WithoutLanes())
	defer scalarSvc.Close()
	laneSvc, laneCIs := buildLaneServingStack(b, clients,
		serve.WithLaneConfig(serve.LaneConfig{MaxLanes: clients, MinLanes: 2, Window: 2 * time.Second}))
	defer laneSvc.Close()

	run := func(s *serve.Service, cis []*core.CipherImage) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if _, err := s.Infer(context.Background(), serve.Request{Image: cis[c]}); err != nil {
					b.Error(err)
				}
			}(c)
		}
		wg.Wait()
		return time.Since(start)
	}

	b.ResetTimer()
	var scalarTime, laneTime time.Duration
	for i := 0; i < b.N; i++ {
		scalarTime += run(scalarSvc, scalarCIs)
		// Collect the scalar phase's garbage outside either timed window so
		// 64 full passes of dead ciphertexts don't bill GC pauses to the
		// lane phase (or vice versa).
		runtime.GC()
		laneTime += run(laneSvc, laneCIs)
		runtime.GC()
	}
	b.StopTimer()
	total := float64(b.N * clients)
	scalarIPS := total / scalarTime.Seconds()
	laneIPS := total / laneTime.Seconds()
	speedup := laneIPS / scalarIPS
	b.ReportMetric(scalarIPS, "scalar_images/sec")
	b.ReportMetric(laneIPS, "lane_images/sec")
	b.ReportMetric(speedup, "speedup_x")
	if packed := laneSvc.Metrics.Counter("serve.lanes.packed_requests").Value(); packed != int64(b.N*clients) {
		b.Errorf("only %d of %d requests were lane-packed", packed, b.N*clients)
	}
	if speedup < 8 {
		b.Errorf("lane serving speedup %.1fx below the 8x acceptance floor (scalar %.2f img/s, lane %.2f img/s)",
			speedup, scalarIPS, laneIPS)
	}
}

func BenchmarkConcurrentServing8Direct(b *testing.B)   { benchmarkConcurrentServing(b, 8, false) }
func BenchmarkConcurrentServing8Batched(b *testing.B)  { benchmarkConcurrentServing(b, 8, true) }
func BenchmarkConcurrentServing32Direct(b *testing.B)  { benchmarkConcurrentServing(b, 32, false) }
func BenchmarkConcurrentServing32Batched(b *testing.B) { benchmarkConcurrentServing(b, 32, true) }
func BenchmarkConcurrentServing64Batched(b *testing.B) { benchmarkConcurrentServing(b, 64, true) }

// --- PR 3: linear-layer hot path (coefficient reference vs NTT-resident) ---

// benchmarkLinearLayer runs one TruePlainMul linear layer of the paper's
// CNN end to end through the hybrid engine, reporting NTTs/op from the
// ring's transform counters. disableResidency toggles the evaluation-form
// hot path against the per-product NTT reference path; the two produce
// bit-identical ciphertexts (see internal/core/nttresident_test.go).
func benchmarkLinearLayer(b *testing.B, fcLayer, disableResidency bool) {
	params, err := core.DefaultHybridParameters()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(50))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(51)))
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(52, 53))
	var model *nn.Network
	var img *nn.Tensor
	if fcLayer {
		// The paper CNN's fully connected layer: 6*12*12 -> 10.
		model = nn.NewNetwork(&nn.Flatten{}, nn.NewFullyConnected(6*12*12, 10, rng))
		img = nn.NewTensor(6, 12, 12)
	} else {
		// The paper CNN's convolution: 1 -> 6 channels, 5x5, on 28x28.
		model = nn.NewNetwork(nn.NewConv2D(1, 6, 5, 1, rng))
		img = nn.NewTensor(1, 28, 28)
	}
	for i := range img.Data {
		img.Data[i] = rng.Float64()
	}
	cfg := core.DefaultConfig()
	engineOpts := []core.EngineOption{core.WithTruePlainMul(true)}
	if disableResidency {
		engineOpts = append(engineOpts, core.WithoutNTTResidency())
	}
	engine, err := core.NewEngine(svc, model, engineOpts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := engine.EncodeWeights(); err != nil {
		b.Fatal(err)
	}
	client, err := core.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	payload, err := svc.ProvisionKeys(client.ECDHPublicKey())
	if err != nil {
		b.Fatal(err)
	}
	if err := client.InstallProvisionPayload(payload); err != nil {
		b.Fatal(err)
	}
	ci, err := client.EncryptImages([]*nn.Tensor{img}, cfg.PixelScale)
	if err != nil {
		b.Fatal(err)
	}
	r := params.Ring()
	b.ReportAllocs()
	b.ResetTimer()
	fwd0, inv0 := r.NTTCounts()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Infer(ci); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fwd1, inv1 := r.NTTCounts()
	b.ReportMetric(float64((fwd1-fwd0)+(inv1-inv0))/float64(b.N), "NTTs/op")
}

func BenchmarkConvLayerCoeff(b *testing.B)       { benchmarkLinearLayer(b, false, true) }
func BenchmarkConvLayerNTTResident(b *testing.B) { benchmarkLinearLayer(b, false, false) }
func BenchmarkFCLayerCoeff(b *testing.B)         { benchmarkLinearLayer(b, true, true) }
func BenchmarkFCLayerNTTResident(b *testing.B)   { benchmarkLinearLayer(b, true, false) }

// --- Wire serialization (v2 formats) ---

// benchWireImages builds one 28×28 single-channel cipher image in both
// upload forms: legacy public-key v1 and seeded symmetric v2.
func benchWireImages(b *testing.B) (*core.CipherImage, *core.SeededCipherImage) {
	f := getFixture(b)
	senc, err := he.NewSymmetricEncryptor(f.sk, ring.NewSeededSource(90))
	if err != nil {
		b.Fatal(err)
	}
	const pixels = 28 * 28
	legacy := &core.CipherImage{Channels: 1, Height: 28, Width: 28, Scale: 255,
		CTs: make([]*he.Ciphertext, pixels)}
	seeded := &core.SeededCipherImage{Channels: 1, Height: 28, Width: 28, Scale: 255,
		CTs: make([]*he.SeededCiphertext, pixels)}
	for i := 0; i < pixels; i++ {
		pt := f.scalar.Encode(int64(i % 256))
		if legacy.CTs[i], err = f.enc.Encrypt(pt); err != nil {
			b.Fatal(err)
		}
		if seeded.CTs[i], err = senc.EncryptSeeded(pt); err != nil {
			b.Fatal(err)
		}
	}
	return legacy, seeded
}

// BenchmarkCipherImageEncode serializes a 28×28 cipher image in the legacy
// fixed-width format and the seeded bit-packed v2 format. The bytes/image
// metric is the upload cost the v2 wire protocol cuts ~2×.
func BenchmarkCipherImageEncode(b *testing.B) {
	legacy, seeded := benchWireImages(b)
	b.Run("v1-legacy", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			payload, err := core.MarshalCipherImage(legacy)
			if err != nil {
				b.Fatal(err)
			}
			n = len(payload)
		}
		b.ReportMetric(float64(n), "bytes/image")
	})
	b.Run("v2-seeded", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			payload, err := core.MarshalSeededCipherImage(seeded)
			if err != nil {
				b.Fatal(err)
			}
			n = len(payload)
		}
		b.ReportMetric(float64(n), "bytes/image")
	})
}

// BenchmarkCipherImageDecode is the server-side cost of the same two
// formats, through the version-sniffing decoder (v2 includes the per-pixel
// seed expansion).
func BenchmarkCipherImageDecode(b *testing.B) {
	f := getFixture(b)
	legacy, seeded := benchWireImages(b)
	v1, err := core.MarshalCipherImage(legacy)
	if err != nil {
		b.Fatal(err)
	}
	v2, err := core.MarshalSeededCipherImage(seeded)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("v1-legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.UnmarshalCipherImageAuto(v1, f.params); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(v1)), "bytes/image")
	})
	b.Run("v2-seeded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.UnmarshalCipherImageAuto(v2, f.params); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(v2)), "bytes/image")
	})
}

// --- PR 8: RNS modulus-chain tensor multiply (word-size limbs vs u128) ---

// buildMulBench wires keys, an evaluator, and two scalar ciphertexts at
// ring degree n. With oracle set, the evaluator runs the u128 NTT+CRT
// tensor path (the pre-PR 8 fast path, kept as the correctness oracle);
// otherwise it runs the default RNS modulus chain.
func buildMulBench(b *testing.B, n int, oracle bool) (*he.Evaluator, *he.EvaluationKeys, *he.Ciphertext, *he.Ciphertext) {
	b.Helper()
	params, err := he.DefaultParameters(n, 4)
	if err != nil {
		b.Fatal(err)
	}
	if oracle {
		params = params.WithTensorOracle()
	}
	kg, err := he.NewKeyGenerator(params, ring.NewSeededSource(90))
	if err != nil {
		b.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	ek := kg.GenEvaluationKeys(sk)
	enc, err := he.NewEncryptor(pk, ring.NewSeededSource(91))
	if err != nil {
		b.Fatal(err)
	}
	eval, err := he.NewEvaluator(params)
	if err != nil {
		b.Fatal(err)
	}
	x, err := enc.EncryptScalar(2)
	if err != nil {
		b.Fatal(err)
	}
	y, err := enc.EncryptScalar(3)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the lazy tensor backend (RNS prime-chain search and bound
	// proofs, or the oracle's CRT ring) outside the timed window.
	if _, err := eval.Mul(x, y); err != nil {
		b.Fatal(err)
	}
	return eval, ek, x, y
}

// BenchmarkMulRNSvsU128 is the tentpole's headline number: the ciphertext
// tensor multiply at the SIMD serving tier (n = 2048), RNS word-size limbs
// vs the u128 NTT+CRT path, interleaved in one process so both phases see
// the same thermal and GC conditions. The asserted ≥2× keeps the rewrite's
// win from regressing silently; the absolute values land in BENCH_PR8.json
// and the benchdiff floor gate re-asserts the 2× on every regression run.
func BenchmarkMulRNSvsU128(b *testing.B) {
	rns, _, rx, ry := buildMulBench(b, 2048, false)
	u128, _, ux, uy := buildMulBench(b, 2048, true)
	b.ResetTimer()
	// Interleave the two paths so clock drift hits both equally, and take
	// the per-iteration minimum for each: scheduler noise on a shared box
	// only ever inflates a sample, so min-of-N estimates the true cost of
	// each path far more robustly than the mean.
	rnsMin, u128Min := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := rns.Mul(rx, ry); err != nil {
			b.Fatal(err)
		}
		if d := time.Since(start); d < rnsMin {
			rnsMin = d
		}
		start = time.Now()
		if _, err := u128.Mul(ux, uy); err != nil {
			b.Fatal(err)
		}
		if d := time.Since(start); d < u128Min {
			u128Min = d
		}
	}
	b.StopTimer()
	rnsNs := float64(rnsMin.Nanoseconds())
	u128Ns := float64(u128Min.Nanoseconds())
	speedup := u128Ns / rnsNs
	b.ReportMetric(rnsNs, "rns_ns/op")
	b.ReportMetric(u128Ns, "u128_ns/op")
	b.ReportMetric(speedup, "speedup_x")
	// The harness probes every benchmark with b.N=1 before the measured run;
	// a single-sample minimum is pure scheduler noise, so only enforce the
	// floor once enough iterations back the estimate.
	if b.N >= 10 && speedup < 2 {
		b.Errorf("RNS multiply speedup %.2fx below the 2x acceptance floor (u128 %.0f ns/op, rns %.0f ns/op)",
			speedup, u128Ns, rnsNs)
	}
}

func benchmarkMulRNS(b *testing.B, n int) {
	eval, _, x, y := buildMulBench(b, n, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkRelinRNS(b *testing.B, n int) {
	eval, ek, x, y := buildMulBench(b, n, false)
	prod, err := eval.Mul(x, y)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Relinearize(prod, ek); err != nil {
			b.Fatal(err)
		}
	}
}

// The n = 8192 tier exists only on the RNS path: the u128 tensor rejects it
// (the i128 accumulator bound n·(q/2)² overflows at that degree).
func BenchmarkMulRNS2048(b *testing.B)   { benchmarkMulRNS(b, 2048) }
func BenchmarkMulRNS8192(b *testing.B)   { benchmarkMulRNS(b, 8192) }
func BenchmarkRelinRNS2048(b *testing.B) { benchmarkRelinRNS(b, 2048) }
func BenchmarkRelinRNS8192(b *testing.B) { benchmarkRelinRNS(b, 8192) }

// --- Rotation-keyed packed convolution (PR 9) ---

// BenchmarkPackedConvVsGather runs the full paper CNN over a 28×28 image in
// both data layouts: slot-packed (one ciphertext per channel, convolution
// and pooling as hoisted Galois rotations) and scalar (one ciphertext per
// pixel, convolution as a per-ciphertext gather of K² neighbours). Same
// parameters, same model, same enclave — the layout is the only variable.
// Reported alongside the two timings: the speedup and the ciphertexts per
// image the client round trip carries (upload + logits).
func BenchmarkPackedConvVsGather(b *testing.B) {
	params, err := core.DefaultSIMDParameters()
	if err != nil {
		b.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(40))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(41)))
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(42, 43))
	model := nn.PaperCNN(rng)
	// WeightScale 8 keeps the key-switched conv noise bound positive at the
	// n=2048 SIMD tier; both layouts run the same quantization so the
	// comparison stays apples to apples.
	cfg := core.Config{PixelScale: 255, WeightScale: 8, ActScale: 256, Pool: core.PoolAuto}
	scales := core.WithScales(cfg.PixelScale, cfg.WeightScale, cfg.ActScale)
	gather, err := core.NewEngine(svc, model, scales)
	if err != nil {
		b.Fatal(err)
	}
	packed, err := core.NewEngine(svc, model, scales, core.WithPackedConv(true))
	if err != nil {
		b.Fatal(err)
	}
	if info := packed.PackedInfo(); !info.Active {
		b.Fatalf("packed plan inactive: %s", info.Reason)
	}
	client, err := core.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	payload, err := svc.ProvisionKeys(client.ECDHPublicKey())
	if err != nil {
		b.Fatal(err)
	}
	if err := client.InstallProvisionPayload(payload); err != nil {
		b.Fatal(err)
	}
	img := nn.NewTensor(1, 28, 28)
	for i := range img.Data {
		img.Data[i] = rng.Float64()
	}
	pimg, err := client.EncryptImagePacked(img, cfg.PixelScale)
	if err != nil {
		b.Fatal(err)
	}
	simg, err := client.EncryptImages([]*nn.Tensor{img}, cfg.PixelScale)
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up resolves the rotation key set once (enclave keygen, cached per
	// stride) so the measured loop times inference, not key generation.
	warm, err := packed.Infer(pimg)
	if err != nil {
		b.Fatal(err)
	}
	ctsPerImage := len(pimg.CTs) + len(warm.Logits)
	b.ResetTimer()
	// Interleave the layouts and keep per-path minima: scheduler noise only
	// inflates samples, so min-of-N is the robust per-layout estimate.
	packedMin, gatherMin := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := packed.Infer(pimg); err != nil {
			b.Fatal(err)
		}
		if d := time.Since(start); d < packedMin {
			packedMin = d
		}
		start = time.Now()
		if _, err := gather.Infer(simg); err != nil {
			b.Fatal(err)
		}
		if d := time.Since(start); d < gatherMin {
			gatherMin = d
		}
	}
	b.StopTimer()
	packedNs := float64(packedMin.Nanoseconds())
	gatherNs := float64(gatherMin.Nanoseconds())
	speedup := gatherNs / packedNs
	b.ReportMetric(packedNs, "packed_ns/op")
	b.ReportMetric(gatherNs, "gather_ns/op")
	b.ReportMetric(speedup, "speedup_x")
	b.ReportMetric(float64(ctsPerImage), "cts/image")
	if ctsPerImage > 32 {
		b.Errorf("cts/image = %d exceeds the 32 acceptance ceiling", ctsPerImage)
	}
	// The harness probes with b.N=1 first; only enforce the floor once the
	// minima rest on enough samples to be more than scheduler luck.
	if b.N >= 3 && speedup < 4 {
		b.Errorf("packed conv speedup %.2fx below the 4x acceptance floor (gather %.0f ns/op, packed %.0f ns/op)",
			speedup, gatherNs, packedNs)
	}
}
