// Command hesgx-bench2json converts `go test -bench` output into a stable
// JSON document so benchmark runs can be checked in and diffed across PRs.
// It understands the standard ns/op, B/op, and allocs/op columns as well as
// custom b.ReportMetric units such as NTTs/op.
//
// Usage:
//
//	go test -run '^$' -bench 'Benchmark(Conv|FC)Layer' . | hesgx-bench2json -o BENCH_PR3.json
//
// With no -o flag the JSON is written to stdout. Non-benchmark lines (goos,
// goarch, pkg, cpu, PASS, ok) are captured as metadata or ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the checked-in document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hesgx-bench2json:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "hesgx-bench2json: no benchmark lines found in input")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hesgx-bench2json:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hesgx-bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(buf); err != nil {
		fmt.Fprintln(os.Stderr, "hesgx-bench2json:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(report.Benchmarks, func(i, j int) bool {
		return report.Benchmarks[i].Name < report.Benchmarks[j].Name
	})
	return report, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8  5  123 ns/op  456 B/op  7 allocs/op  89.5 NTTs/op
//
// The tail after the iteration count is (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("want name, iterations, and value/unit pairs")
	}
	b := Benchmark{Metrics: map[string]float64{}}

	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if procs, err := strconv.Atoi(name[i+1:]); err == nil {
			b.Procs = procs
			name = name[:i]
		}
	}
	b.Name = strings.TrimPrefix(name, "Benchmark")

	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b.Iterations = iters

	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric %s: %w", fields[i+1], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
