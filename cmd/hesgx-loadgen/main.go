// Command hesgx-loadgen drives a hesgx edge server with encrypted
// inference load and grades the run against latency/shed/trace SLOs.
//
// Usage:
//
//	hesgx-loadgen -addr host:7700 [-clients 4] [-rate 0] [-duration 10s]
//	              [-shapes 1x8x8:1] [-legacy] [-no-trace]
//	              [-slo-p50 0] [-slo-p99 0] [-max-shed-rate -1]
//	              [-require-joined] [-status-interval 1s] [-json]
//	hesgx-loadgen -selftest [-require-no-bundles] [flags...]
//
// Closed loop by default: -clients connections each keep one request in
// flight. A positive -rate switches to open loop — arrivals at a fixed
// rate with latency measured from the scheduled arrival, the honest way
// to observe shedding. With -selftest the generator spins up an
// in-process reference server (batching parameters, lane scheduler,
// zero-cost SGX simulation) and drives itself — the CI soak mode.
//
// Exit status: 0 when the run met every SLO, 1 when the run itself
// failed to execute, 2 when it ran but violated an SLO.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hesgx/internal/diag"
	"hesgx/internal/loadgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "", "edge server address (required unless -selftest)")
	selftest := flag.Bool("selftest", false, "spin up an in-process reference server and drive it")
	clients := flag.Int("clients", 4, "client connections (closed-loop concurrency)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0: closed loop)")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	shapes := flag.String("shapes", "1x8x8:1", "request-shape mix as CxHxW[:weight],...")
	pixelScale := flag.Uint64("pixel-scale", 63, "fixed-point pixel scale")
	legacy := flag.Bool("legacy", false, "force the v1 wire encoding")
	noTrace := flag.Bool("no-trace", false, "disable distributed tracing (drop the traced request envelope)")
	statusInterval := flag.Duration("status-interval", time.Second, "status line cadence (negative: off)")
	seed := flag.Uint64("seed", 1, "PRNG seed for the shape mix and image contents")
	sloP50 := flag.Duration("slo-p50", 0, "fail when end-to-end p50 exceeds this (0: unchecked)")
	sloP99 := flag.Duration("slo-p99", 0, "fail when end-to-end p99 exceeds this (0: unchecked)")
	maxShed := flag.Float64("max-shed-rate", -1, "fail when shed rate exceeds this; 0 demands shed-free (negative: unchecked)")
	requireJoined := flag.Bool("require-joined", false, "fail unless every traced request assembled a joined end-to-end trace")
	requireNoBundles := flag.Bool("require-no-bundles", false, "with -selftest: fail when the run triggers any diagnostic bundle")
	jsonOut := flag.Bool("json", false, "print the summary as JSON")
	flag.Parse()

	shapeMix, err := loadgen.ParseShapes(*shapes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	target := *addr
	var srv *loadgen.Selftest
	if *selftest {
		srv, err = loadgen.StartSelftest(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		target = srv.Addr()
		fmt.Fprintf(os.Stderr, "selftest server on %s\n", target)
	} else if target == "" {
		fmt.Fprintln(os.Stderr, "hesgx-loadgen: -addr or -selftest required")
		return 1
	}
	if *requireNoBundles && srv == nil {
		fmt.Fprintln(os.Stderr, "hesgx-loadgen: -require-no-bundles needs -selftest")
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sum, err := loadgen.Run(ctx, loadgen.Config{
		Addr:           target,
		Clients:        *clients,
		Rate:           *rate,
		Duration:       *duration,
		Shapes:         shapeMix,
		PixelScale:     *pixelScale,
		Legacy:         *legacy,
		Trace:          !*noTrace,
		StatusInterval: *statusInterval,
		Out:            os.Stderr,
		Seed:           *seed,
		SLOP50:         *sloP50,
		SLOP99:         *sloP99,
		MaxShedRate:    *maxShed,
		RequireJoined:  *requireJoined,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sum)
	} else {
		fmt.Printf("sent %d  ok %d  shed %d  failed %d  (%.1f img/s over %v)\n",
			sum.Sent, sum.OK, sum.Shed, sum.Failed, sum.Throughput, sum.Duration.Round(time.Millisecond))
		fmt.Printf("latency p50 %v  p99 %v  max %v  shed rate %.3f\n",
			sum.P50.Round(time.Microsecond), sum.P99.Round(time.Microsecond),
			sum.Max.Round(time.Microsecond), sum.ShedRate)
		if sum.MeanLanes > 0 {
			fmt.Printf("server: mean lanes %.2f  queue p99 %.2fms  lane wait p99 %.2fms  joined traces %d/%d\n",
				sum.MeanLanes, sum.ServerQueueP99MS, sum.ServerLaneWaitP99MS, sum.JoinedTraces, sum.OK)
		}
	}
	if len(sum.Violations) > 0 {
		for _, v := range sum.Violations {
			fmt.Fprintf(os.Stderr, "SLO VIOLATION: %s\n", v)
		}
		return 2
	}
	if *requireNoBundles {
		// Let a trigger that landed in the run's final moments clear the
		// capturer's settle delay before declaring the run bundle-free.
		time.Sleep(diag.DefaultSettle + 200*time.Millisecond)
		if n := srv.Captures(); n > 0 {
			fmt.Fprintf(os.Stderr, "DIAG VIOLATION: healthy run triggered %d postmortem bundle(s) in %s\n", n, srv.DiagDir())
			for _, e := range srv.Events() {
				fmt.Fprintf(os.Stderr, "  event %s [%s] %s\n", e.Type, e.Severity, e.Message)
			}
			return 2
		}
		fmt.Fprintln(os.Stderr, "no diagnostic bundles triggered")
	}
	fmt.Fprintln(os.Stderr, "all SLOs met")
	return 0
}
