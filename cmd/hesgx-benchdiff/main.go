// Command hesgx-benchdiff compares two hesgx-bench2json reports and fails
// (exit 1) when any watched metric regresses past a tolerance ratio. It is
// the CI regression gate over the checked-in benchmark baselines: a smoke
// run on shared CI hardware is noisy, so the default tolerance is a
// deliberately loose 2× — the gate catches order-of-magnitude regressions
// (an accidental O(n²) path, a dropped pool, a de-batched ECALL loop), not
// single-digit drift.
//
// Usage:
//
//	hesgx-benchdiff -base BENCH_PR4.json -new /tmp/bench.json
//	                [-max-ratio 2.0] [-metrics ns/op,bytes/image]
//	                [-min-ratio 0.5] [-min-metrics lane_images/sec,speedup_x]
//	                [-floor 2.0] [-floor-metrics speedup_x]
//
// -metrics gates lower-is-better series (latency, bytes): fail when
// new/base exceeds -max-ratio. -min-metrics gates higher-is-better series
// (throughput, speedups): fail when new/base falls below -min-ratio.
// -floor-metrics gates against an absolute value rather than the baseline:
// fail when the new run's metric falls below -floor, regardless of what the
// baseline recorded — the gate for hard acceptance criteria ("the RNS
// multiply must stay ≥2× faster than the u128 path") that must not erode
// through a sequence of small tolerated regressions.
//
// Benchmarks present in the baseline but missing from the new report (or
// vice versa) warn without failing: renames and coverage changes are PR
// review matters, not regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// Benchmark mirrors the hesgx-bench2json document.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report mirrors the hesgx-bench2json document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	basePath := flag.String("base", "", "baseline bench2json report (required)")
	newPath := flag.String("new", "", "candidate bench2json report (required)")
	maxRatio := flag.Float64("max-ratio", 2.0, "fail when new/base exceeds this ratio for a watched metric")
	metricList := flag.String("metrics", "ns/op,bytes/image", "comma-separated metrics to gate (lower is better)")
	minRatio := flag.Float64("min-ratio", 0.5, "fail when new/base falls below this ratio for a -min-metrics metric")
	minMetricList := flag.String("min-metrics", "", "comma-separated metrics to gate as higher-is-better (throughput, speedups)")
	floorValue := flag.Float64("floor", 0, "fail when a -floor-metrics metric in the new report falls below this absolute value")
	floorMetricList := flag.String("floor-metrics", "", "comma-separated metrics to gate against the absolute -floor value (higher is better)")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "hesgx-benchdiff: -base and -new are required")
		os.Exit(2)
	}
	if *maxRatio <= 0 {
		fmt.Fprintln(os.Stderr, "hesgx-benchdiff: -max-ratio must be positive")
		os.Exit(2)
	}
	if *minRatio <= 0 {
		fmt.Fprintln(os.Stderr, "hesgx-benchdiff: -min-ratio must be positive")
		os.Exit(2)
	}

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hesgx-benchdiff:", err)
		os.Exit(2)
	}
	cand, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hesgx-benchdiff:", err)
		os.Exit(2)
	}

	watched := map[string]bool{}
	for _, m := range strings.Split(*metricList, ",") {
		if m = strings.TrimSpace(m); m != "" {
			watched[m] = true
		}
	}
	minWatched := map[string]bool{}
	for _, m := range strings.Split(*minMetricList, ",") {
		if m = strings.TrimSpace(m); m != "" {
			minWatched[m] = true
		}
	}
	floorWatched := map[string]bool{}
	for _, m := range strings.Split(*floorMetricList, ",") {
		if m = strings.TrimSpace(m); m != "" {
			floorWatched[m] = true
		}
	}

	baseByName := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseByName[b.Name] = b
	}

	failed := 0
	seen := map[string]bool{}
	for _, nb := range cand.Benchmarks {
		seen[nb.Name] = true
		// Absolute floors gate the new run alone — no baseline required.
		for metric := range floorWatched {
			nv, ok := nb.Metrics[metric]
			if !ok {
				continue
			}
			verdict := "ok"
			if nv < *floorValue {
				verdict = "REGRESSION"
				failed++
			}
			fmt.Printf("%-5s %-40s %-12s new=%.4g (absolute floor %.2f) %s\n",
				"floor", nb.Name, metric, nv, *floorValue, verdict)
		}
		bb, ok := baseByName[nb.Name]
		if !ok {
			fmt.Printf("NEW   %-40s (no baseline; not gated by ratios)\n", nb.Name)
			continue
		}
		for metric := range watched {
			bv, bok := bb.Metrics[metric]
			nv, nok := nb.Metrics[metric]
			if !bok || !nok {
				continue
			}
			if bv <= 0 {
				// A zero baseline makes every ratio infinite; skip rather
				// than fail on a degenerate denominator.
				fmt.Printf("SKIP  %-40s %-12s baseline %.4g\n", nb.Name, metric, bv)
				continue
			}
			ratio := nv / bv
			verdict := "ok"
			if ratio > *maxRatio {
				verdict = "REGRESSION"
				failed++
			}
			fmt.Printf("%-5s %-40s %-12s base=%.4g new=%.4g ratio=%.2f (limit %.2f) %s\n",
				"diff", nb.Name, metric, bv, nv, ratio, *maxRatio, verdict)
		}
		for metric := range minWatched {
			bv, bok := bb.Metrics[metric]
			nv, nok := nb.Metrics[metric]
			if !bok || !nok {
				continue
			}
			if bv <= 0 {
				fmt.Printf("SKIP  %-40s %-12s baseline %.4g\n", nb.Name, metric, bv)
				continue
			}
			// Higher is better: the gate trips when throughput falls to less
			// than min-ratio of the baseline.
			ratio := nv / bv
			verdict := "ok"
			if ratio < *minRatio {
				verdict = "REGRESSION"
				failed++
			}
			fmt.Printf("%-5s %-40s %-12s base=%.4g new=%.4g ratio=%.2f (floor %.2f) %s\n",
				"diff", nb.Name, metric, bv, nv, ratio, *minRatio, verdict)
		}
	}
	for name := range baseByName {
		if !seen[name] {
			fmt.Printf("GONE  %-40s (in baseline, missing from new run; not gated)\n", name)
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hesgx-benchdiff: %d metric(s) regressed past tolerance\n", failed)
		os.Exit(1)
	}
	fmt.Printf("hesgx-benchdiff: no regression past tolerance across %d benchmarks\n", len(cand.Benchmarks))
}

func load(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &r, nil
}
