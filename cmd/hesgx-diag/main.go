// Command hesgx-diag renders a postmortem bundle captured by the edge
// server's anomaly-triggered diagnostics loop into a human-readable
// incident report: the triggering event, the event timeline around it, the
// metric flight-recorder window bracketing the trigger, the worst flight
// report in the window, and the runtime state at capture time.
//
// Usage:
//
//	hesgx-diag bundle.tar.gz            incident report (default)
//	hesgx-diag -ls bundle.tar.gz        list bundle members
//	hesgx-diag -cat FILE bundle.tar.gz  dump one member to stdout
//
// Bundles are read with hard bounds on member count and decoded bytes, so
// a bundle from an untrusted mailbox cannot balloon memory.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hesgx/internal/diag"
)

func main() {
	os.Exit(run())
}

func run() int {
	ls := flag.Bool("ls", false, "list bundle members instead of rendering the report")
	cat := flag.String("cat", "", "dump one bundle member to stdout instead of rendering the report")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hesgx-diag [-ls | -cat FILE] bundle.tar.gz\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}

	b, err := diag.ReadBundleFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hesgx-diag: %v\n", err)
		return 1
	}

	switch {
	case *ls:
		names := make([]string, 0, len(b.Files))
		for name := range b.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%8d  %s\n", len(b.Files[name]), name)
		}
	case *cat != "":
		data, ok := b.Files[*cat]
		if !ok {
			fmt.Fprintf(os.Stderr, "hesgx-diag: no member %q (try -ls)\n", *cat)
			return 1
		}
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintf(os.Stderr, "hesgx-diag: %v\n", err)
			return 1
		}
	default:
		if err := diag.RenderIncident(os.Stdout, b); err != nil {
			fmt.Fprintf(os.Stderr, "hesgx-diag: %v\n", err)
			return 1
		}
	}
	return 0
}
