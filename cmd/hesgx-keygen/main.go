// Command hesgx-keygen generates FV key material inside a (simulated) SGX
// enclave and writes the provisioning artifacts to disk: the public
// parameters, the enclave measurement, and the platform attestation key —
// the trust anchors a client deployment pins.
//
// Usage:
//
//	hesgx-keygen -dir keys/ [-n 2048] [-t 33554432]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/sgx"
)

func main() {
	os.Exit(run())
}

func run() int {
	dir := flag.String("dir", "keys", "output directory")
	n := flag.Int("n", 2048, "ring degree (1024/2048/4096/8192)")
	t := flag.Uint64("t", 1<<25, "plaintext modulus")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "creating %s: %v\n", *dir, err)
		return 1
	}
	params, err := he.DefaultParametersLowLift(*n, *t)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parameters: %v\n", err)
		return 1
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost())
	if err != nil {
		fmt.Fprintf(os.Stderr, "platform: %v\n", err)
		return 1
	}
	svc, err := core.NewEnclaveService(platform, params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "enclave: %v\n", err)
		return 1
	}

	paramsBytes, err := he.MarshalParameters(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal parameters: %v\n", err)
		return 1
	}
	m := svc.Enclave().Measurement()
	artifacts := map[string][]byte{
		"params.bin":          paramsBytes,
		"measurement.bin":     m[:],
		"attestation-key.bin": attest.MarshalPublicKey(platform.AttestationPublicKey()),
	}
	for name, data := range artifacts {
		path := filepath.Join(*dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			return 1
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
	fmt.Printf("enclave %s measurement %x\n", svc.Enclave().Name(), m[:8])
	fmt.Printf("parameters: %s\n", params)
	fmt.Println("note: the FV secret key never leaves the enclave; clients receive it via remote attestation")
	return 0
}
