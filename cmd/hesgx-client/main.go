// Command hesgx-client is the smart-device side of the §VII case study: it
// attests the edge server's enclave, receives the HE keys over the attested
// channel, encrypts a synthetic digit image, and requests inference.
//
// Usage:
//
//	hesgx-client -addr localhost:7700 [-digit 7] [-count 3]
//	             [-packed] [-galois-kernel 5]
//
// With -packed the image rides the wire slot-packed in a single ciphertext
// and the server runs the convolution prefix as Galois rotations (the
// server needs -simd-params -packed-conv). By default the client generates
// the rotation key set for a -galois-kernel × -galois-kernel convolution
// and uploads it after attestation; -galois-kernel 0 skips the upload and
// the enclave generates keys on first use instead.
package main

import (
	"flag"
	"fmt"
	"math"
	mrand "math/rand/v2"
	"os"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/dataset"
	"hesgx/internal/nn"
	"hesgx/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "localhost:7700", "edge server address")
	digit := flag.Int("digit", -1, "digit to query (-1 = random)")
	count := flag.Int("count", 1, "number of queries")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "image randomness seed")
	packed := flag.Bool("packed", false, "send slot-packed one-ciphertext queries (server must run -packed-conv)")
	galoisKernel := flag.Int("galois-kernel", 5, "conv kernel size whose rotation keys to upload before packed queries (0: let the enclave generate keys)")
	flag.Parse()

	verifier := attest.NewService()
	client, err := wire.Dial(*addr, verifier)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dial: %v\n", err)
		return 1
	}
	defer client.Close()

	// Demo trust bootstrap (trust-on-first-use); production pins these.
	if err := client.FetchTrustBundle(); err != nil {
		fmt.Fprintf(os.Stderr, "trust bundle: %v\n", err)
		return 1
	}
	start := time.Now()
	if err := client.Attest(); err != nil {
		fmt.Fprintf(os.Stderr, "attestation: %v\n", err)
		return 1
	}
	fmt.Printf("attested enclave and received HE keys in %s (%s)\n",
		time.Since(start).Round(time.Millisecond), client.Params())

	if *packed && *galoisKernel > 0 {
		// Rotation steps for a k×k convolution over a Width-wide slot
		// layout: slot (y,x) sits at y·Width+x, so tap (ky,kx) is a left
		// rotation by ky·Width+kx. The 2×2 mean-pool offsets are a subset.
		var steps []int
		for ky := 0; ky < *galoisKernel; ky++ {
			for kx := 0; kx < *galoisKernel; kx++ {
				if s := ky*dataset.Width + kx; s != 0 {
					steps = append(steps, s)
				}
			}
		}
		kStart := time.Now()
		if err := client.UploadGaloisKeys(steps, 0); err != nil {
			fmt.Fprintf(os.Stderr, "galois key upload: %v\n", err)
			return 1
		}
		fmt.Printf("uploaded %d rotation keys in %s\n", len(steps), time.Since(kStart).Round(time.Millisecond))
	}

	rng := mrand.New(mrand.NewPCG(*seed, *seed^0xc11e47))
	correct := 0
	for i := 0; i < *count; i++ {
		d := *digit
		if d < 0 {
			d = rng.IntN(dataset.Classes)
		}
		img := dataset.RenderDigit(d, rng)
		qStart := time.Now()
		var pred int
		var err error
		if *packed {
			pred, err = predictPacked(client, img)
		} else {
			pred, err = client.Predict(img, 255)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "inference: %v\n", err)
			return 1
		}
		ok := ""
		if pred == d {
			correct++
			ok = " ✓"
		}
		fmt.Printf("query %d: true digit %d -> predicted %d%s (%s)\n",
			i+1, d, pred, ok, time.Since(qStart).Round(time.Millisecond))
	}
	fmt.Printf("%d/%d correct\n", correct, *count)
	return 0
}

// predictPacked runs one slot-packed inference and picks the argmax logit.
func predictPacked(client *wire.Client, img *nn.Tensor) (int, error) {
	logits, err := client.InferPacked(img, 255)
	if err != nil {
		return 0, err
	}
	best, bestV := 0, math.Inf(-1)
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, nil
}
