// Command hesgx-client is the smart-device side of the §VII case study: it
// attests the edge server's enclave, receives the HE keys over the attested
// channel, encrypts a synthetic digit image, and requests inference.
//
// Usage:
//
//	hesgx-client -addr localhost:7700 [-digit 7] [-count 3]
package main

import (
	"flag"
	"fmt"
	mrand "math/rand/v2"
	"os"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/dataset"
	"hesgx/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "localhost:7700", "edge server address")
	digit := flag.Int("digit", -1, "digit to query (-1 = random)")
	count := flag.Int("count", 1, "number of queries")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "image randomness seed")
	flag.Parse()

	verifier := attest.NewService()
	client, err := wire.Dial(*addr, verifier)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dial: %v\n", err)
		return 1
	}
	defer client.Close()

	// Demo trust bootstrap (trust-on-first-use); production pins these.
	if err := client.FetchTrustBundle(); err != nil {
		fmt.Fprintf(os.Stderr, "trust bundle: %v\n", err)
		return 1
	}
	start := time.Now()
	if err := client.Attest(); err != nil {
		fmt.Fprintf(os.Stderr, "attestation: %v\n", err)
		return 1
	}
	fmt.Printf("attested enclave and received HE keys in %s (%s)\n",
		time.Since(start).Round(time.Millisecond), client.Params())

	rng := mrand.New(mrand.NewPCG(*seed, *seed^0xc11e47))
	correct := 0
	for i := 0; i < *count; i++ {
		d := *digit
		if d < 0 {
			d = rng.IntN(dataset.Classes)
		}
		img := dataset.RenderDigit(d, rng)
		qStart := time.Now()
		pred, err := client.Predict(img, 255)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inference: %v\n", err)
			return 1
		}
		ok := ""
		if pred == d {
			correct++
			ok = " ✓"
		}
		fmt.Printf("query %d: true digit %d -> predicted %d%s (%s)\n",
			i+1, d, pred, ok, time.Since(qStart).Round(time.Millisecond))
	}
	fmt.Printf("%d/%d correct\n", correct, *count)
	return 0
}
