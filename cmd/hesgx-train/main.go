// Command hesgx-train trains the Fig. 7 CNN on the synthetic
// handwritten-digit corpus and saves the model for the edge server.
//
// Usage:
//
//	hesgx-train -out model.bin [-samples 2000] [-epochs 10] [-lr 0.15]
//	hesgx-train -out model.bin -arch cryptonets   # Square/SumPool variant
package main

import (
	"flag"
	"fmt"
	mrand "math/rand/v2"
	"os"

	"hesgx/internal/dataset"
	"hesgx/internal/nn"
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "model.bin", "output model path")
	samples := flag.Int("samples", 2000, "synthetic dataset size")
	epochs := flag.Int("epochs", 10, "training epochs")
	lr := flag.Float64("lr", 0.15, "learning rate")
	batch := flag.Int("batch", 16, "minibatch size")
	arch := flag.String("arch", "paper", "architecture: paper (Sigmoid/MeanPool) or cryptonets (Square/SumPool)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	rng := mrand.New(mrand.NewPCG(*seed, *seed^0x7a31))
	var net *nn.Network
	switch *arch {
	case "paper":
		net = nn.PaperCNN(rng)
	case "cryptonets":
		net = nn.CryptoNetsCNN(rng)
	default:
		fmt.Fprintf(os.Stderr, "unknown architecture %q\n", *arch)
		return 2
	}

	data := dataset.Generate(*samples, *seed+100)
	train, test := data.Split(0.9)
	fmt.Printf("training %s CNN on %d synthetic digits (%d held out)\n", *arch, train.Len(), test.Len())

	trainer := &nn.SGD{LR: *lr, BatchSize: *batch}
	examples := train.Examples()
	for epoch := 1; epoch <= *epochs; epoch++ {
		nn.Shuffle(examples, rng)
		loss, err := trainer.TrainEpoch(net, examples)
		if err != nil {
			fmt.Fprintf(os.Stderr, "epoch %d: %v\n", epoch, err)
			return 1
		}
		acc, err := nn.Accuracy(net, test.Examples())
		if err != nil {
			fmt.Fprintf(os.Stderr, "evaluating: %v\n", err)
			return 1
		}
		fmt.Printf("epoch %2d: loss %.4f, test accuracy %.1f%%\n", epoch, loss, acc*100)
	}

	if err := net.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "saving model: %v\n", err)
		return 1
	}
	fmt.Printf("model saved to %s\n", *out)
	return 0
}
