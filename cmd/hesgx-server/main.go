// Command hesgx-server runs the CAV edge server of §VII: it launches the
// (simulated) SGX inference enclave, generates HE keys inside it, loads the
// trained CNN, and serves attestation and encrypted-inference requests over
// TCP through the concurrent serving pipeline (bounded admission queue,
// worker pool, cross-request ECALL batching).
//
// Usage:
//
//	hesgx-server -model model.bin [-addr :7700] [-calibrated]
//	             [-workers N] [-queue N] [-deadline 2s]
//	             [-batch-window 2ms] [-batch-max 256] [-no-batching]
//	             [-stats-interval 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hesgx/internal/core"
	"hesgx/internal/nn"
	"hesgx/internal/serve"
	"hesgx/internal/sgx"
	"hesgx/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":7700", "listen address")
	modelPath := flag.String("model", "model.bin", "trained model path")
	calibrated := flag.Bool("calibrated", false, "inject calibrated SGX costs (default: zero-cost simulation)")
	workers := flag.Int("workers", 0, "concurrent inference workers (0: NumCPU)")
	queueDepth := flag.Int("queue", 0, "admission queue depth; full queue sheds load (0: default 64)")
	deadline := flag.Duration("deadline", 0, "per-request serving deadline (0: none)")
	batchWindow := flag.Duration("batch-window", 0, "cross-request ECALL batching window (0: default 2ms)")
	batchMax := flag.Int("batch-max", 0, "max ciphertexts per batched ECALL (0: default 256)")
	noBatching := flag.Bool("no-batching", false, "disable cross-request ECALL batching")
	statsInterval := flag.Duration("stats-interval", 30*time.Second, "serving-stats log interval (0: off)")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	model, err := nn.LoadFile(*modelPath)
	if err != nil {
		logger.Error("loading model", "err", err)
		return 1
	}

	cost := sgx.ZeroCost()
	if *calibrated {
		cost = sgx.Calibrated()
	}
	platform, err := sgx.NewPlatform(cost)
	if err != nil {
		logger.Error("creating platform", "err", err)
		return 1
	}
	params, err := core.DefaultHybridParameters()
	if err != nil {
		logger.Error("parameters", "err", err)
		return 1
	}
	svc, err := core.NewEnclaveService(platform, params)
	if err != nil {
		logger.Error("launching enclave", "err", err)
		return 1
	}
	engine, err := core.NewHybridEngine(svc, model, core.DefaultConfig())
	if err != nil {
		logger.Error("planning engine", "err", err)
		return 1
	}
	logger.Info("encoding model weights into the homomorphic plaintext space",
		"weights", engine.EncodedWeightCount())
	if err := engine.EncodeWeights(); err != nil {
		logger.Error("encoding weights", "err", err)
		return 1
	}

	pipeline := serve.NewPipeline(engine, svc, serve.Config{
		Scheduler: serve.SchedulerConfig{
			Workers:    *workers,
			QueueDepth: *queueDepth,
			Deadline:   *deadline,
		},
		Batcher: serve.BatcherConfig{
			MaxBatch: *batchMax,
			Window:   *batchWindow,
		},
		DisableBatching: *noBatching,
	})
	defer pipeline.Close()

	srv, err := wire.NewServer(svc, engine, logger, wire.WithInferrer(pipeline))
	if err != nil {
		logger.Error("creating server", "err", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listening", "addr", *addr, "err", err)
		return 1
	}
	m := svc.Enclave().Measurement()
	logger.Info("edge server ready",
		"addr", ln.Addr().String(),
		"enclave", svc.Enclave().Name(),
		"measurement", fmt.Sprintf("%x", m[:8]),
		"params", params.String(),
		"batching", !*noBatching,
	)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *statsInterval > 0 {
		go func() {
			tick := time.NewTicker(*statsInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					snap := platform.Snapshot()
					logger.Info("serving stats",
						"ecalls", snap.ECalls,
						"ocalls", snap.OCalls,
						"metrics", pipeline.Metrics.String(),
					)
				}
			}
		}()
	}

	if err := srv.Serve(ctx, ln); err != nil {
		logger.Error("serving", "err", err)
		return 1
	}
	logger.Info("shut down cleanly")
	return 0
}
