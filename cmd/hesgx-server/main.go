// Command hesgx-server runs the CAV edge server of §VII: it launches the
// (simulated) SGX inference enclave, generates HE keys inside it, loads the
// trained CNN, and serves attestation and encrypted-inference requests over
// TCP through the concurrent serving pipeline (bounded admission queue,
// worker pool, cross-request ECALL batching).
//
// Usage:
//
//	hesgx-server -model model.bin [-addr :7700] [-calibrated]
//	             [-workers N] [-queue N] [-deadline 2s]
//	             [-batch-window 2ms] [-batch-max 256] [-no-batching]
//	             [-simd-params] [-packed-conv]
//	             [-lane-window 5ms] [-lane-max 64]
//	             [-lane-min 2] [-no-lanes]
//	             [-stats-interval 30s] [-admin :9090]
//	             [-trace-ring 64] [-report-ring 64] [-slo spec|off]
//	             [-diag-dir /var/lib/hesgx/diag]
//
// With -simd-params the server generates a batching-capable parameter set
// (prime plaintext modulus t ≡ 1 mod 2n) and the serving stack packs
// concurrent same-shape requests into CRT slot lanes of shared ciphertexts:
// one engine pass serves up to -lane-max requests. With the default
// (non-batching) parameters the lane stage disables itself and every
// request runs its own scalar pass.
//
// With -packed-conv (on top of -simd-params) the engine additionally plans
// the conv→act→pool prefix over slot-packed feature maps: a whole image
// rides in one ciphertext and the convolution runs as Galois rotations
// under keys the client uploads (or the enclave generates on first use).
//
// With -admin set, an HTTP observability endpoint serves Prometheus
// text-format metrics at /metrics, Go profiles under /debug/pprof/, the
// last -trace-ring request traces as Chrome trace JSON at /traces/last,
// per-stage SLO burn rates at /slo, and a queue/shed-rate readiness probe
// at /healthz. Unless -slo is "off", a background tracker samples the
// stage-latency histograms every 10s and grades them against the given
// (or default) objectives with multi-window burn-rate alerting.
//
// The server always runs the black-box diagnostics loop: a 1-second metric
// flight recorder ring, an anomaly monitor (shed-rate spikes, per-ECALL
// transition/paging excursions), and an event bus that SLO pages, noise-
// budget alerts and wire faults publish into. With -diag-dir set, warning-
// or-worse events additionally trigger debounced, rate-limited postmortem
// bundles — self-contained tar.gz archives with the trigger, recent
// events, the metric window, flight reports, traces, profiles and build
// info — rendered offline by hesgx-diag. An on-demand bundle is always
// available at the admin endpoint's /debug/bundle.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"hesgx/internal/admin"
	"hesgx/internal/core"
	"hesgx/internal/diag"
	"hesgx/internal/nn"
	"hesgx/internal/report"
	"hesgx/internal/serve"
	"hesgx/internal/sgx"
	"hesgx/internal/slo"
	"hesgx/internal/stats"
	"hesgx/internal/trace"
	"hesgx/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":7700", "listen address")
	modelPath := flag.String("model", "model.bin", "trained model path")
	calibrated := flag.Bool("calibrated", false, "inject calibrated SGX costs (default: zero-cost simulation)")
	workers := flag.Int("workers", 0, "concurrent inference workers (0: NumCPU)")
	queueDepth := flag.Int("queue", 0, "admission queue depth; full queue sheds load (0: default 64)")
	deadline := flag.Duration("deadline", 0, "per-request serving deadline (0: none)")
	batchWindow := flag.Duration("batch-window", 0, "cross-request ECALL batching window (0: default 2ms)")
	batchMax := flag.Int("batch-max", 0, "max ciphertexts per batched ECALL (0: default 256)")
	noBatching := flag.Bool("no-batching", false, "disable cross-request ECALL batching")
	simdParams := flag.Bool("simd-params", false, "use a batching-capable parameter set (prime t ≡ 1 mod 2n); required for slot-lane packing")
	packedConv := flag.Bool("packed-conv", false, "plan the conv→act→pool prefix over one-ciphertext slot-packed feature maps (needs -simd-params)")
	laneWindow := flag.Duration("lane-window", 0, "slot-lane packing window: how long a request waits for lane company (0: default 5ms)")
	laneMax := flag.Int("lane-max", 0, "max requests packed into one shared engine pass (0: default 64, clamped to the slot count)")
	laneMin := flag.Int("lane-min", 0, "fill floor below which an expired lane bucket falls back to scalar passes (0: default 2)")
	noLanes := flag.Bool("no-lanes", false, "disable slot-lane packing; every request runs its own engine pass")
	statsInterval := flag.Duration("stats-interval", 30*time.Second, "serving-stats log interval (0: off)")
	adminAddr := flag.String("admin", "", "admin endpoint address for /metrics, /debug/pprof, /traces/last, /inference/last, /healthz (empty: off)")
	traceRing := flag.Int("trace-ring", trace.DefaultBufferSize, "flight-recorder capacity: request traces retained for /traces/last")
	flag.IntVar(traceRing, "trace-buffer", trace.DefaultBufferSize, "deprecated alias of -trace-ring")
	reportRing := flag.Int("report-ring", report.DefaultCapacity, "report-ring capacity: per-request flight reports retained for /inference/last")
	flag.IntVar(reportRing, "report-buffer", report.DefaultCapacity, "deprecated alias of -report-ring")
	sloSpec := flag.String("slo", "", "per-stage latency objectives as name:metric:threshold:target,... (empty: defaults; \"off\": disabled)")
	noiseWarnBits := flag.Float64("noise-warn-bits", core.DefaultNoiseWarnBudgetBits, "warn + count when measured noise budget entering a refresh drops below this many bits (0: off)")
	diagDir := flag.String("diag-dir", "", "directory receiving anomaly-triggered postmortem bundles (empty: triggered captures off; /debug/bundle still serves on-demand)")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if bi, ok := debug.ReadBuildInfo(); ok {
		logger.Info("build info", "go", bi.GoVersion, "version", bi.Main.Version)
	}

	model, err := nn.LoadFile(*modelPath)
	if err != nil {
		logger.Error("loading model", "err", err)
		return 1
	}

	cost := sgx.ZeroCost()
	if *calibrated {
		cost = sgx.Calibrated()
	}
	platform, err := sgx.NewPlatform(cost)
	if err != nil {
		logger.Error("creating platform", "err", err)
		return 1
	}
	params, err := core.DefaultHybridParameters()
	if *simdParams {
		params, err = core.DefaultSIMDParameters()
	}
	if err != nil {
		logger.Error("parameters", "err", err)
		return 1
	}
	// One registry and one event bus thread through every stage: the
	// enclave service, the serving pipeline, the wire server, the SLO
	// tracker and the diagnostics loop all publish into the same pair.
	reg := stats.NewRegistry()
	bus := diag.NewBus(diag.DefaultBusCapacity, reg)
	svc, err := core.NewEnclaveService(platform, params,
		core.WithServiceLogger(logger),
		core.WithNoiseWarnThreshold(*noiseWarnBits),
		core.WithEventBus(bus))
	if err != nil {
		logger.Error("launching enclave", "err", err)
		return 1
	}
	engine, err := core.NewEngine(svc, model, core.WithPackedConv(*packedConv))
	if err != nil {
		logger.Error("planning engine", "err", err)
		return 1
	}
	if *packedConv {
		if info := engine.PackedInfo(); info.Active {
			logger.Info("packed convolution plan active",
				"prefix_steps", info.PrefixSteps,
				"conv_budget_bits", fmt.Sprintf("%.2f", info.ConvBudgetBits),
				"pool_budget_bits", fmt.Sprintf("%.2f", info.PoolBudgetBits))
		} else {
			logger.Warn("packed convolution plan inactive; slot-packed queries will be rejected",
				"reason", info.Reason)
		}
	}
	logger.Info("encoding model weights into the homomorphic plaintext space",
		"weights", engine.EncodedWeightCount())
	if err := engine.EncodeWeights(); err != nil {
		logger.Error("encoding weights", "err", err)
		return 1
	}

	queueCapacity := *queueDepth
	if queueCapacity <= 0 {
		queueCapacity = serve.DefaultSchedulerConfig().QueueDepth
	}
	serviceOpts := []serve.Option{
		serve.WithSchedulerConfig(serve.SchedulerConfig{
			Workers:    *workers,
			QueueDepth: *queueDepth,
			Deadline:   *deadline,
		}),
		serve.WithBatcherConfig(serve.BatcherConfig{
			MaxBatch: *batchMax,
			Window:   *batchWindow,
		}),
		serve.WithLaneConfig(serve.LaneConfig{
			MaxLanes: *laneMax,
			MinLanes: *laneMin,
			Window:   *laneWindow,
		}),
		serve.WithTracer(trace.NewTracer(*traceRing)),
		serve.WithLogger(logger),
		serve.WithMetrics(reg),
	}
	if *noBatching {
		serviceOpts = append(serviceOpts, serve.WithoutBatching())
	}
	if *noLanes {
		serviceOpts = append(serviceOpts, serve.WithoutLanes())
	}
	service := serve.NewService(engine, svc, serviceOpts...)

	// Every finished request trace folds into a per-layer flight report:
	// ring-buffered for /inference/last and re-exported as per-layer
	// latency/budget series on /metrics.
	reports := report.NewRecorder(*reportRing, service.Metrics)
	service.Tracer.SetOnFinish(reports.Observe)

	// Black-box diagnostics: the 1s flight recorder samples the registry
	// into a trailing ring, the monitor turns shed-rate and per-ECALL
	// transition/paging excursions into bus events, and the capturer turns
	// warning-or-worse events into debounced postmortem bundles.
	recorder := diag.NewRecorder(diag.RecorderConfig{Registry: reg})
	monitor := diag.NewMonitor(diag.MonitorConfig{Bus: bus})
	recorder.OnSample(monitor.Observe)
	capturer := diag.NewCapturer(bus, recorder, diag.CaptureConfig{Dir: *diagDir})
	capturer.AddSource(diag.ReportsSource(reports, 0))
	capturer.AddSource(diag.TracesSource(service.Tracer, 0))
	capturer.AddSource(diag.JSONSource("config.json", func() any {
		cfgDump := map[string]string{}
		flag.VisitAll(func(f *flag.Flag) { cfgDump[f.Name] = f.Value.String() })
		return cfgDump
	}))

	// Per-stage SLO tracking: multi-window burn rates over the serving
	// latency histograms, surfaced at /slo and as slo_* metric series.
	var sloTracker *slo.Tracker
	if *sloSpec != "off" {
		objectives := slo.DefaultObjectives()
		if *sloSpec != "" {
			objectives, err = slo.ParseObjectives(*sloSpec)
			if err != nil {
				logger.Error("parsing -slo", "err", err)
				return 1
			}
		}
		sloTracker, err = slo.New(slo.Config{Registry: service.Metrics, Objectives: objectives, Events: bus})
		if err != nil {
			logger.Error("slo tracker", "err", err)
			return 1
		}
	}

	srv, err := wire.NewServer(svc, engine, logger,
		wire.WithService(service), wire.WithTracer(service.Tracer),
		wire.WithMetrics(service.Metrics), wire.WithEventBus(bus))
	if err != nil {
		logger.Error("creating server", "err", err)
		return 1
	}
	// Close is idempotent: the explicit shutdown path below closes the
	// service before the final snapshot; this defer covers error returns.
	defer service.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listening", "addr", *addr, "err", err)
		return 1
	}

	var adminSrv *admin.Server
	if *adminAddr != "" {
		handler := admin.Handler(admin.Config{
			Metrics:       service.Metrics,
			Tracer:        service.Tracer,
			Platform:      platform.Snapshot,
			QueueCapacity: queueCapacity,
			Reports:       reports,
			SLO:           sloTracker,
			Capturer:      capturer,
			Events:        bus,
		})
		adminSrv, err = admin.Start(*adminAddr, handler)
		if err != nil {
			logger.Error("starting admin endpoint", "err", err)
			return 1
		}
		logger.Info("admin endpoint ready", "addr", adminSrv.Addr())
	}

	m := svc.Enclave().Measurement()
	logger.Info("edge server ready",
		"addr", ln.Addr().String(),
		"enclave", svc.Enclave().Name(),
		"measurement", fmt.Sprintf("%x", m[:8]),
		"params", params.String(),
		"batching", !*noBatching,
	)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if sloTracker != nil {
		go sloTracker.Run(ctx)
		tr := sloTracker
		capturer.AddSource(diag.JSONSource("slo.json", func() any { return tr.Status() }))
	}
	go recorder.Run(ctx)
	if *diagDir != "" {
		go capturer.Run(ctx)
		logger.Info("diagnostics capture armed", "dir", *diagDir)
	}

	if *statsInterval > 0 {
		go func() {
			tick := time.NewTicker(*statsInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					snap := platform.Snapshot()
					logger.Info("serving stats",
						"ecalls", snap.ECalls,
						"ocalls", snap.OCalls,
						"metrics", service.Metrics.String(),
					)
				}
			}
		}()
	}

	serveErr := srv.Serve(ctx, ln)

	// Orderly shutdown: drain the pipeline first so straggler batches
	// flush and their metrics land, then stop the admin listener, then
	// emit the final snapshot — shutdown always reports complete totals
	// even when no -stats-interval ticker ever fired.
	service.Close()
	if adminSrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := adminSrv.Shutdown(sctx); err != nil {
			logger.Warn("admin shutdown", "err", err)
		}
		cancel()
	}
	snap := platform.Snapshot()
	logger.Info("final serving stats",
		"ecalls", snap.ECalls,
		"ocalls", snap.OCalls,
		"page_faults", snap.PageFaults,
		"injected_overhead", snap.InjectedOverhead,
		"metrics", service.Metrics.String(),
	)

	if serveErr != nil {
		logger.Error("serving", "err", serveErr)
		return 1
	}
	logger.Info("shut down cleanly")
	return 0
}
