// Command hesgx-server runs the CAV edge server of §VII: it launches the
// (simulated) SGX inference enclave, generates HE keys inside it, loads the
// trained CNN, and serves attestation and encrypted-inference requests over
// TCP.
//
// Usage:
//
//	hesgx-server -model model.bin [-addr :7700] [-calibrated]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"

	"hesgx/internal/core"
	"hesgx/internal/nn"
	"hesgx/internal/sgx"
	"hesgx/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":7700", "listen address")
	modelPath := flag.String("model", "model.bin", "trained model path")
	calibrated := flag.Bool("calibrated", false, "inject calibrated SGX costs (default: zero-cost simulation)")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	model, err := nn.LoadFile(*modelPath)
	if err != nil {
		logger.Error("loading model", "err", err)
		return 1
	}

	cost := sgx.ZeroCost()
	if *calibrated {
		cost = sgx.Calibrated()
	}
	platform, err := sgx.NewPlatform(cost)
	if err != nil {
		logger.Error("creating platform", "err", err)
		return 1
	}
	params, err := core.DefaultHybridParameters()
	if err != nil {
		logger.Error("parameters", "err", err)
		return 1
	}
	svc, err := core.NewEnclaveService(platform, params)
	if err != nil {
		logger.Error("launching enclave", "err", err)
		return 1
	}
	engine, err := core.NewHybridEngine(svc, model, core.DefaultConfig())
	if err != nil {
		logger.Error("planning engine", "err", err)
		return 1
	}
	logger.Info("encoding model weights into the homomorphic plaintext space",
		"weights", engine.EncodedWeightCount())
	if err := engine.EncodeWeights(); err != nil {
		logger.Error("encoding weights", "err", err)
		return 1
	}

	srv, err := wire.NewServer(svc, engine, logger)
	if err != nil {
		logger.Error("creating server", "err", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listening", "addr", *addr, "err", err)
		return 1
	}
	m := svc.Enclave().Measurement()
	logger.Info("edge server ready",
		"addr", ln.Addr().String(),
		"enclave", svc.Enclave().Name(),
		"measurement", fmt.Sprintf("%x", m[:8]),
		"params", params.String(),
	)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln); err != nil {
		logger.Error("serving", "err", err)
		return 1
	}
	logger.Info("shut down cleanly")
	return 0
}
