// Command hesgx-bench regenerates the paper's evaluation tables and
// figures (Tables I–V, Figs. 3–6 and 8, and the Table VI model schedule).
//
// Usage:
//
//	hesgx-bench [flags] <experiment>...
//	hesgx-bench all            # every table and figure
//	hesgx-bench table1 fig4    # a subset
//
// Flags:
//
//	-reps N        measurement repetitions (default 30; paper used 1000)
//	-batch N       batch size (default 10, as in the paper)
//	-quick         shrink workloads for a fast smoke run
//	-seed N        deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hesgx/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	reps := flag.Int("reps", 0, "measurement repetitions (0 = per-experiment default)")
	batch := flag.Int("batch", 10, "batch size (paper: 10)")
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	flag.Parse()

	opts := bench.DefaultOptions(os.Stdout)
	opts.Reps = *reps
	opts.BatchSize = *batch
	opts.Quick = *quick
	opts.Seed = *seed

	experiments := map[string]func() error{
		"table1": opts.RunTable1,
		"table2": opts.RunTable2,
		"table3": opts.RunTable3,
		"table4": opts.RunTable4,
		"table5": opts.RunTable5,
		"model":  opts.RunModel,
		"fig3":   opts.RunFig3,
		"fig4":   opts.RunFig4,
		"fig5":   opts.RunFig5,
		"fig6":   opts.RunFig6,
		"fig8":   opts.RunFig8,
		"simd":   opts.RunSIMD,
	}
	order := []string{"table1", "table2", "table3", "table4", "table5", "model", "fig3", "fig4", "fig5", "fig6", "fig8", "simd"}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: hesgx-bench [flags] <experiment>...\navailable: all %v\n", order)
		return 2
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for _, name := range args {
		fn, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all %v\n", name, order)
			return 2
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			return 1
		}
		fmt.Printf("\n[%s completed in %s]\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
