// Quickstart: the FV homomorphic-encryption core in five minutes —
// parameter selection, key generation, encryption, homomorphic add /
// multiply / relinearize, and the noise budget that governs it all.
package main

import (
	"fmt"
	"log"

	"hesgx/internal/encoding"
	"hesgx/internal/he"
	"hesgx/internal/ring"
)

func main() {
	// 1. Parameters: the SEAL-style chooser picks the coefficient modulus
	// for a ring degree; the plaintext modulus is the application's.
	params, err := he.DefaultParameters(1024, 257)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parameters:", params)

	// 2. Keys. Use ring.NewCryptoSource() for real deployments.
	kg, err := he.NewKeyGenerator(params, ring.NewCryptoSource())
	if err != nil {
		log.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	evk := kg.GenEvaluationKeys(sk)

	enc, err := he.NewEncryptor(pk, ring.NewCryptoSource())
	if err != nil {
		log.Fatal(err)
	}
	dec, err := he.NewDecryptor(sk)
	if err != nil {
		log.Fatal(err)
	}
	eval, err := he.NewEvaluator(params)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Encrypt two integers with the scalar encoder.
	codec, err := encoding.NewScalarEncoder(params)
	if err != nil {
		log.Fatal(err)
	}
	ctA, err := enc.Encrypt(codec.Encode(7))
	if err != nil {
		log.Fatal(err)
	}
	ctB, err := enc.Encrypt(codec.Encode(-3))
	if err != nil {
		log.Fatal(err)
	}
	// The static accountant predicts a worst-case budget before touching a
	// ciphertext; the decryptor measures the real one. Predicted ≤ measured
	// always holds — the gap is the slack in the worst-case bound.
	pred := params.FreshNoiseBound()
	budget, _ := dec.NoiseBudget(ctA)
	fmt.Printf("fresh ciphertext noise budget: predicted >= %.1f bits, measured %.1f bits\n",
		pred.BudgetBits(), budget)

	// 4. Homomorphic arithmetic.
	sum, err := eval.Add(ctA, ctB)
	if err != nil {
		log.Fatal(err)
	}
	ptSum, _ := dec.Decrypt(sum)
	fmt.Println("7 + (-3) =", codec.Decode(ptSum))

	prod, err := eval.Mul(ctA, ctB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ciphertext size after multiply:", prod.Size())
	prod, err = eval.Relinearize(prod, evk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ciphertext size after relinearize:", prod.Size())
	// DecryptWithBudget measures the invariant-noise budget for free from
	// the same computation decryption already performs.
	ptProd, prodBudget, _ := dec.DecryptWithBudget(prod)
	fmt.Println("7 * (-3) =", codec.Decode(ptProd))
	predProd := pred.Mul(pred).Relinearize()
	fmt.Printf("budget after multiply+relinearize: predicted >= %.1f bits, measured %.1f bits\n",
		predProd.BudgetBits(), prodBudget)

	// 5. Plaintext multiplication is much cheaper and quieter.
	scaled, err := eval.MulPlain(ctA, codec.Encode(6))
	if err != nil {
		log.Fatal(err)
	}
	ptScaled, scaledBudget, _ := dec.DecryptWithBudget(scaled)
	fmt.Println("7 * 6 (plaintext operand) =", codec.Decode(ptScaled))
	fmt.Printf("budget after plaintext multiply: predicted >= %.1f bits, measured %.1f bits\n",
		pred.MulScalar(6).BudgetBits(), scaledBudget)
}
