// MNIST-style hybrid inference, end to end in one process: train the
// Fig. 7 CNN on synthetic digits, launch the (simulated) SGX enclave,
// exchange HE keys through remote attestation, and classify encrypted
// images — verifying that every encrypted prediction matches the plaintext
// pipeline exactly (the paper's §VII-B accuracy claim).
package main

import (
	"fmt"
	"log"
	mrand "math/rand/v2"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/dataset"
	"hesgx/internal/nn"
	"hesgx/internal/sgx"
)

func main() {
	// 1. Train the Fig. 7 CNN on synthetic digits (MNIST stand-in).
	rng := mrand.New(mrand.NewPCG(7, 11))
	net := nn.PaperCNN(rng)
	data := dataset.Generate(800, 3)
	train, test := data.Split(0.9)
	trainer := &nn.SGD{LR: 0.15, BatchSize: 16}
	fmt.Printf("training on %d synthetic digits...\n", train.Len())
	examples := train.Examples()
	for epoch := 0; epoch < 6; epoch++ {
		nn.Shuffle(examples, rng)
		if _, err := trainer.TrainEpoch(net, examples); err != nil {
			log.Fatal(err)
		}
	}
	acc, err := nn.Accuracy(net, test.Examples())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plaintext test accuracy: %.1f%%\n", acc*100)

	// 2. Edge server side: SGX platform, enclave, HE keys inside.
	platform, err := sgx.NewPlatform(sgx.Calibrated())
	if err != nil {
		log.Fatal(err)
	}
	params, err := core.DefaultHybridParameters()
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewEngine(svc, net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoding %d weights into the HE plaintext space...\n", engine.EncodedWeightCount())
	if err := engine.EncodeWeights(); err != nil {
		log.Fatal(err)
	}

	// 3. User side: attested key exchange — SGX is the trusted third party.
	verifier := attest.NewService()
	verifier.RegisterPlatform(platform.AttestationPublicKey())
	verifier.TrustMeasurement(svc.Enclave().Measurement())
	client, err := core.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.RunKeyExchange(svc, verifier); err != nil {
		log.Fatal(err)
	}
	fmt.Println("remote attestation verified; HE keys installed")

	// 4. Classify encrypted digits.
	pixelScale := core.DefaultConfig().PixelScale
	matches := 0
	const queries = 3
	for i := 0; i < queries; i++ {
		img := test.Images[i]
		truth := test.Labels[i]
		ci, err := client.EncryptImages([]*nn.Tensor{img}, pixelScale)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := engine.Infer(ci)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		logits, err := client.DecryptValues(res.Logits)
		if err != nil {
			log.Fatal(err)
		}
		pred := argmax(logits)

		// Exactness check: the encrypted pipeline must equal the integer
		// reference bit for bit.
		ref, err := engine.ReferenceForward(img)
		if err != nil {
			log.Fatal(err)
		}
		exact := equal(logits, ref)
		if exact {
			matches++
		}
		fmt.Printf("query %d: true %d, encrypted prediction %d, bit-exact vs plaintext: %v (%s)\n",
			i+1, truth, pred, exact, elapsed.Round(time.Millisecond))
	}
	stats := platform.Snapshot()
	fmt.Printf("\nSGX accounting: %d ECALLs, %s injected enclave overhead\n",
		stats.ECalls, stats.InjectedOverhead.Round(time.Millisecond))
	fmt.Printf("%d/%d encrypted inferences bit-exact vs the plaintext pipeline\n", matches, queries)
}

func argmax(xs []int64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
