// CAV edge scenario (§VII) over a real TCP connection, in one process: a
// connected-vehicle edge server hosts the enclave and the hybrid engine; a
// smart-device client attests it, receives HE keys, and sends encrypted
// digit queries over the wire protocol.
package main

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	mrand "math/rand/v2"
	"net"
	"os"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/dataset"
	"hesgx/internal/nn"
	"hesgx/internal/report"
	"hesgx/internal/serve"
	"hesgx/internal/sgx"
	"hesgx/internal/stats"
	"hesgx/internal/trace"
	"hesgx/internal/wire"
)

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	// --- Edge server (the vehicle) ---
	rng := mrand.New(mrand.NewPCG(21, 22))
	net0 := nn.PaperCNN(rng)
	data := dataset.Generate(600, 5)
	train, test := data.Split(0.9)
	trainer := &nn.SGD{LR: 0.15, BatchSize: 16}
	examples := train.Examples()
	for epoch := 0; epoch < 5; epoch++ {
		nn.Shuffle(examples, rng)
		if _, err := trainer.TrainEpoch(net0, examples); err != nil {
			log.Fatal(err)
		}
	}

	platform, err := sgx.NewPlatform(sgx.Calibrated())
	if err != nil {
		log.Fatal(err)
	}
	params, err := core.DefaultHybridParameters()
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewEngine(svc, net0)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.EncodeWeights(); err != nil {
		log.Fatal(err)
	}
	// Flight recorder: every finished request trace folds into a per-layer
	// report with wall time, ECALL costs, and noise-budget attribution.
	reg := stats.NewRegistry()
	engine.SetMetrics(reg)
	svc.SetMetrics(reg)
	tracer := trace.NewTracer(8)
	reports := report.NewRecorder(8, reg)
	tracer.SetOnFinish(reports.Observe)
	service := serve.NewService(engine, svc,
		serve.WithMetrics(reg), serve.WithTracer(tracer), serve.WithoutLanes())
	defer service.Close()
	srv, err := wire.NewServer(svc, engine, logger,
		wire.WithService(service), wire.WithTracer(tracer), wire.WithMetrics(reg))
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := srv.Serve(ctx, ln); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	fmt.Println("edge server (CAV) listening on", ln.Addr())

	// --- Smart-device client ---
	verifier := attest.NewService()
	client, err := wire.Dial(ln.Addr().String(), verifier)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if err := client.FetchTrustBundle(); err != nil { // demo TOFU bootstrap
		log.Fatal(err)
	}
	start := time.Now()
	if err := client.Attest(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attested in %s; received %s\n", time.Since(start).Round(time.Millisecond), client.Params())

	correct := 0
	const queries = 3
	for i := 0; i < queries; i++ {
		img := test.Images[i]
		truth := test.Labels[i]
		qs := time.Now()
		pred, err := client.Predict(img, 255)
		if err != nil {
			log.Fatal(err)
		}
		if pred == truth {
			correct++
		}
		fmt.Printf("encrypted query %d: true %d -> predicted %d (%s round trip)\n",
			i+1, truth, pred, time.Since(qs).Round(time.Millisecond))
	}
	fmt.Printf("%d/%d correct over the encrypted channel\n", correct, queries)

	if last := reports.Last(1); len(last) > 0 {
		fr := last[0]
		fmt.Printf("\nflight report, last query (trace %d, %.1f ms server-side):\n", fr.TraceID, fr.WallMS)
		fmt.Printf("  %-10s %10s %8s %12s %12s\n", "layer", "wall ms", "ecalls", "pred bits", "meas bits")
		for _, l := range fr.Layers {
			pred, meas := "-", "-"
			if l.PredictedBudgetBits != nil {
				pred = fmt.Sprintf(">= %.1f", *l.PredictedBudgetBits)
			}
			if l.MeasuredBudgetMinBits != nil {
				meas = fmt.Sprintf("%.1f", *l.MeasuredBudgetMinBits)
			}
			fmt.Printf("  %-10s %10.2f %8d %12s %12s\n", l.Label, l.WallMS, l.Transitions, pred, meas)
		}
		if fr.MinMeasuredBudgetBits != nil {
			fmt.Printf("  tightest measured budget anywhere in the pipeline: %.1f bits\n", *fr.MinMeasuredBudgetBits)
		}
	}

	cancel()
	<-serveDone
	fmt.Println("edge server shut down")
}
