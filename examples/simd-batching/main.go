// SIMD batching (§VIII): with a plaintext modulus t ≡ 1 mod 2n, the CRT
// factorization of x^n+1 turns one ciphertext into n independent slots, so
// a single homomorphic operation processes n values at once. The paper
// notes this gives up to n× throughput; this example measures it.
package main

import (
	"fmt"
	"log"
	"time"

	"hesgx/internal/encoding"
	"hesgx/internal/he"
	"hesgx/internal/ring"
)

func main() {
	// 40961 ≡ 1 (mod 4096) and is prime: a batching-capable modulus for
	// n=2048.
	params, err := he.DefaultParameters(2048, 40961)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := encoding.NewBatchEncoder(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameters: %s — %d SIMD slots per ciphertext\n", params, batch.SlotCount())

	kg, err := he.NewKeyGenerator(params, ring.NewCryptoSource())
	if err != nil {
		log.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	enc, err := he.NewEncryptor(pk, ring.NewCryptoSource())
	if err != nil {
		log.Fatal(err)
	}
	dec, err := he.NewDecryptor(sk)
	if err != nil {
		log.Fatal(err)
	}
	eval, err := he.NewEvaluator(params)
	if err != nil {
		log.Fatal(err)
	}

	// A batch of sensor readings and per-slot weights.
	n := batch.SlotCount()
	values := make([]int64, n)
	weights := make([]int64, n)
	for i := range values {
		values[i] = int64(i%100 - 50)
		weights[i] = int64(i%7 + 1)
	}
	ptValues, err := batch.Encode(values)
	if err != nil {
		log.Fatal(err)
	}
	ptWeights, err := batch.Encode(weights)
	if err != nil {
		log.Fatal(err)
	}

	ct, err := enc.Encrypt(ptValues)
	if err != nil {
		log.Fatal(err)
	}

	// One MulPlain processes all n slots.
	start := time.Now()
	prod, err := eval.MulPlain(ct, ptWeights)
	if err != nil {
		log.Fatal(err)
	}
	simdTime := time.Since(start)

	out, err := dec.Decrypt(prod)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := batch.Decode(out)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i += n / 4 {
		want := values[i] * weights[i]
		fmt.Printf("slot %4d: %d * %d = %d (want %d)\n", i, values[i], weights[i], decoded[i], want)
	}

	// Compare against one-value-per-ciphertext processing.
	scalar, err := encoding.NewScalarEncoder(params)
	if err != nil {
		log.Fatal(err)
	}
	const sample = 16
	ctScalar, err := enc.Encrypt(scalar.Encode(values[0]))
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	for i := 0; i < sample; i++ {
		if _, err := eval.MulPlain(ctScalar, scalar.Encode(weights[i%n])); err != nil {
			log.Fatal(err)
		}
	}
	perValue := time.Since(start) / sample

	fmt.Printf("\nSIMD: %d products in %s (%.2f µs/value)\n",
		n, simdTime.Round(time.Microsecond), float64(simdTime.Microseconds())/float64(n))
	fmt.Printf("scalar: %.2f µs/value — SIMD speedup ≈ %.0f×\n",
		float64(perValue.Microseconds()),
		float64(perValue.Nanoseconds())*float64(n)/float64(simdTime.Nanoseconds()))
}
