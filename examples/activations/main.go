// Activation flexibility (§VI-C): pure-HE pipelines are stuck with
// polynomial stand-ins (Square), but the enclave evaluates any activation
// exactly — "SGX enables the calculation of diverse activation functions
// (e.g., Relu and Tanh) flexibly, accurately, and quickly" — and max
// pooling, which HE cannot express at all. This example runs ReLU+MaxPool
// and Tanh+MeanPool networks through the hybrid engine and verifies
// bit-exactness against the plaintext integer reference.
package main

import (
	"fmt"
	"log"
	mrand "math/rand/v2"

	"hesgx/internal/core"
	"hesgx/internal/nn"
	"hesgx/internal/sgx"
)

func main() {
	params, err := core.DefaultHybridParameters()
	if err != nil {
		log.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost())
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params)
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	payload, err := svc.ProvisionKeys(client.ECDHPublicKey())
	if err != nil {
		log.Fatal(err)
	}
	if err := client.InstallProvisionPayload(payload); err != nil {
		log.Fatal(err)
	}

	rng := mrand.New(mrand.NewPCG(5, 6))
	img := nn.NewTensor(1, 12, 12)
	for i := range img.Data {
		img.Data[i] = rng.Float64()
	}

	variants := []struct {
		name string
		act  nn.ActKind
		pool nn.PoolKind
	}{
		{"ReLU + MaxPool", nn.ReLU, nn.MaxPool},
		{"Tanh + MeanPool", nn.Tanh, nn.MeanPool},
		{"LeakyReLU + MeanPool", nn.LeakyReLU, nn.MeanPool},
		{"Sigmoid + MaxPool", nn.Sigmoid, nn.MaxPool},
	}
	pixelScale := core.DefaultConfig().PixelScale
	for _, v := range variants {
		model := nn.NewNetwork(
			nn.NewConv2D(1, 3, 3, 1, rng),
			nn.NewActivation(v.act),
			nn.NewPool2D(v.pool, 2),
			&nn.Flatten{},
			nn.NewFullyConnected(3*5*5, 4, rng),
		)
		engine, err := core.NewEngine(svc, model)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		ci, err := client.EncryptImages([]*nn.Tensor{img}, pixelScale)
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Infer(ci)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		got, err := client.DecryptValues(res.Logits)
		if err != nil {
			log.Fatal(err)
		}
		want, err := engine.ReferenceForward(img)
		if err != nil {
			log.Fatal(err)
		}
		exact := true
		for i := range want {
			if got[i] != want[i] {
				exact = false
			}
		}
		fmt.Printf("%-22s encrypted logits %v — bit-exact vs plaintext: %v\n", v.name, got, exact)
	}
	fmt.Println("\nnone of these activations (nor max pooling) is expressible in pure HE;")
	fmt.Println("the enclave evaluates each exactly (§VI-C, §VI-D)")
}
