// Pooling strategies (§VI-D): SGXDiv computes the window sums
// homomorphically and asks the enclave only for the division, while SGXPool
// ships the whole feature map inside. This example measures both across
// window sizes and shows the crossover rule the framework applies
// automatically (SGXPool below window 3, SGXDiv from 3 up).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/ring"
	"hesgx/internal/sgx"
)

func main() {
	params, err := he.DefaultParameters(1024, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.Calibrated())
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params)
	if err != nil {
		log.Fatal(err)
	}
	eval, err := he.NewEvaluator(params)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := he.NewEncryptor(svc.PublicKey(), ring.NewCryptoSource())
	if err != nil {
		log.Fatal(err)
	}

	const size = 24
	cts := make([]*he.Ciphertext, size*size)
	for i := range cts {
		if cts[i], err = enc.EncryptScalar(uint64(i % 7)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%-8s %-12s %-12s %-12s\n", "window", "SGXDiv", "SGXPool", "auto choice")
	for _, k := range []int{2, 3, 4, 6, 8, 12} {
		out := size / k

		divStart := time.Now()
		sums := make([]*he.Ciphertext, out*out)
		for oy := 0; oy < out; oy++ {
			for ox := 0; ox < out; ox++ {
				var acc *he.Ciphertext
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						ct := cts[(oy*k+ky)*size+ox*k+kx]
						if acc == nil {
							acc = ct
						} else if acc, err = eval.Add(acc, ct); err != nil {
							log.Fatal(err)
						}
					}
				}
				sums[oy*out+ox] = acc
			}
		}
		if _, err := svc.Nonlinear(context.Background(),
			core.NonlinearOp{Kind: core.OpPoolDivide, Divisor: uint64(k * k)}, sums); err != nil {
			log.Fatal(err)
		}
		divTime := time.Since(divStart)

		poolStart := time.Now()
		if _, err := svc.Nonlinear(context.Background(), core.NonlinearOp{
			Kind:     core.OpPoolFull,
			Geometry: core.Geometry{Channels: 1, Height: size, Width: size, Window: k},
		}, cts); err != nil {
			log.Fatal(err)
		}
		poolTime := time.Since(poolStart)

		choice := "SGXDiv"
		if core.ChoosePoolStrategy(k) == core.PoolSGXPool {
			choice = "SGXPool"
		}
		fmt.Printf("%-8d %-12s %-12s %-12s\n", k,
			divTime.Round(time.Millisecond), poolTime.Round(time.Millisecond), choice)
	}
	fmt.Printf("\ncrossover rule: SGXPool when window < %d, SGXDiv otherwise (§VI-D)\n", core.PoolCrossoverWindow)
}
