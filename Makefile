GO ?= go

.PHONY: all build tier1 tier1.5 verify race vet test bench-serving bench-json bench-smoke bench-regression soak clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1: the baseline gate every change must keep green.
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Tier-1.5: static analysis plus the full suite under the race detector —
# the concurrent serving pipeline (internal/serve, wire, engine) must stay
# data-race free.
tier1.5: vet race

verify: tier1 tier1.5

# Before/after concurrent-throughput comparison (cross-request ECALL
# batching on vs off, calibrated SGX costs).
bench-serving:
	$(GO) test -run '^$$' -bench 'BenchmarkConcurrentServing' -benchtime 3x .

# Linear-layer hot-path comparison (coefficient reference vs NTT-resident),
# captured as JSON for the checked-in BENCH_PR3.json snapshot. Reports
# ns/op, allocs/op, and NTTs/op per variant.
bench-json:
	$(GO) test -run '^$$' -bench 'Benchmark(Conv|FC)Layer' -benchtime 3x . \
		| $(GO) run ./cmd/hesgx-bench2json -o BENCH_PR3.json
	@cat BENCH_PR3.json
	$(GO) test -run '^$$' -bench 'BenchmarkCipherImage' -benchtime 3x . \
		| $(GO) run ./cmd/hesgx-bench2json -o BENCH_PR4.json
	@cat BENCH_PR4.json
	$(GO) test -run '^$$' -bench 'BenchmarkLaneServing64' -benchtime 1x -timeout 30m . \
		| $(GO) run ./cmd/hesgx-bench2json -o BENCH_PR6.json
	@cat BENCH_PR6.json
	$(GO) test -run '^$$' -bench 'Benchmark(MulRNSvsU128|MulRNS2048|MulRNS8192|RelinRNS2048|RelinRNS8192)$$' \
		-benchtime 30x -timeout 30m . \
		| $(GO) run ./cmd/hesgx-bench2json -o BENCH_PR8.json
	@cat BENCH_PR8.json
	$(GO) test -run '^$$' -bench 'BenchmarkPackedConvVsGather$$' -benchtime 3x -timeout 30m . \
		| $(GO) run ./cmd/hesgx-bench2json -o BENCH_PR9.json
	@cat BENCH_PR9.json

# One-iteration pass over every benchmark — CI smoke that the bench code
# still compiles and runs, without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regression gate against the checked-in BENCH_PR4.json baseline: re-run the
# serialization benchmarks into a scratch report (never clobbering the
# baseline — bench-json owns that) and fail if ns/op or bytes/image regress
# past 2x. The loose tolerance absorbs CI hardware noise while still
# catching order-of-magnitude mistakes.
bench-regression:
	$(GO) test -run '^$$' -bench 'BenchmarkCipherImage' -benchtime 3x . \
		| $(GO) run ./cmd/hesgx-bench2json -o /tmp/hesgx-bench-regression.json
	$(GO) run ./cmd/hesgx-benchdiff -base BENCH_PR4.json \
		-new /tmp/hesgx-bench-regression.json -max-ratio 2.0 \
		-metrics ns/op,bytes/image
	$(GO) test -run '^$$' -bench 'BenchmarkLaneServing64' -benchtime 1x -timeout 30m . \
		| $(GO) run ./cmd/hesgx-bench2json -o /tmp/hesgx-bench-lanes.json
	$(GO) run ./cmd/hesgx-benchdiff -base BENCH_PR6.json \
		-new /tmp/hesgx-bench-lanes.json -max-ratio 2.0 -metrics ns/op \
		-min-ratio 0.5 -min-metrics lane_images/sec,speedup_x
	$(GO) test -run '^$$' -bench 'BenchmarkMulRNSvsU128$$' -benchtime 30x . \
		| $(GO) run ./cmd/hesgx-bench2json -o /tmp/hesgx-bench-rns.json
	$(GO) run ./cmd/hesgx-benchdiff -base BENCH_PR8.json \
		-new /tmp/hesgx-bench-rns.json -max-ratio 2.0 -metrics rns_ns/op \
		-min-ratio 0.5 -min-metrics speedup_x \
		-floor 2.0 -floor-metrics speedup_x
	$(GO) test -run '^$$' -bench 'BenchmarkPackedConvVsGather$$' -benchtime 3x -timeout 30m . \
		| $(GO) run ./cmd/hesgx-bench2json -o /tmp/hesgx-bench-packed.json
	$(GO) run ./cmd/hesgx-benchdiff -base BENCH_PR9.json \
		-new /tmp/hesgx-bench-packed.json -max-ratio 2.0 -metrics packed_ns/op,cts/image \
		-min-ratio 0.5 -min-metrics speedup_x \
		-floor 4.0 -floor-metrics speedup_x
	$(MAKE) soak SOAK_DURATION=5s

# End-to-end latency under load: drive an in-process reference server with
# the load generator and fail on any shed or unjoined trace. The selftest
# server runs the full diagnostics loop armed (event bus, flight recorder,
# capturer), and -require-no-bundles asserts a healthy run triggers zero
# postmortem bundles. This is the "does the whole serving stack hold its
# SLOs" gate, complementing the per-component benchmarks above.
SOAK_DURATION ?= 10s
soak:
	$(GO) run ./cmd/hesgx-loadgen -selftest -clients 4 \
		-duration $(SOAK_DURATION) -max-shed-rate 0 -require-joined \
		-require-no-bundles

clean:
	$(GO) clean ./...
