GO ?= go

.PHONY: all build tier1 tier1.5 verify race vet test bench-serving clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1: the baseline gate every change must keep green.
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Tier-1.5: static analysis plus the full suite under the race detector —
# the concurrent serving pipeline (internal/serve, wire, engine) must stay
# data-race free.
tier1.5: vet race

verify: tier1 tier1.5

# Before/after concurrent-throughput comparison (cross-request ECALL
# batching on vs off, calibrated SGX costs).
bench-serving:
	$(GO) test -run '^$$' -bench 'BenchmarkConcurrentServing' -benchtime 3x .

clean:
	$(GO) clean ./...
