package he

import (
	"encoding/binary"
	"fmt"
	"io"

	"hesgx/internal/ring"
)

// Plaintext is a polynomial with coefficients in [0, T), produced by an
// encoder (see internal/encoding) or directly for raw scalar work.
type Plaintext struct {
	Params Parameters
	Poly   ring.Poly
}

// NewPlaintext allocates a zero plaintext.
func NewPlaintext(params Parameters) *Plaintext {
	return &Plaintext{Params: params, Poly: params.Ring().NewPoly()}
}

// Copy deep-copies the plaintext.
func (p *Plaintext) Copy() *Plaintext {
	return &Plaintext{Params: p.Params, Poly: p.Poly.Copy()}
}

// Validate checks coefficient ranges against the plaintext modulus.
func (p *Plaintext) Validate() error {
	if len(p.Poly.Coeffs) != p.Params.N {
		return fmt.Errorf("he: plaintext degree %d, want %d", len(p.Poly.Coeffs), p.Params.N)
	}
	for i, c := range p.Poly.Coeffs {
		if c >= p.Params.T {
			return fmt.Errorf("he: plaintext coefficient %d = %d >= t = %d", i, c, p.Params.T)
		}
	}
	return nil
}

// Form tracks which domain a ciphertext's polynomials live in. Ciphertexts
// are in coefficient form at rest (on the wire, at the enclave boundary, at
// decryption); the engine's linear layers hoist them into NTT form so every
// weight product is a pointwise multiply-accumulate.
type Form uint8

const (
	// CoeffForm is the coefficient (time) domain — the zero value, so
	// freshly constructed and deserialized ciphertexts are coefficient
	// form by default.
	CoeffForm Form = iota
	// NTTForm is the evaluation domain: every component poly holds NTT
	// coefficients. Only Add/AddPlain/MulScalar-style linear ops and the
	// pointwise plaintext products are defined on this form.
	NTTForm
)

// String implements fmt.Stringer for error messages.
func (f Form) String() string {
	switch f {
	case CoeffForm:
		return "coeff"
	case NTTForm:
		return "ntt"
	default:
		return fmt.Sprintf("form(%d)", uint8(f))
	}
}

// Ciphertext is an FV ciphertext of size 2 (fresh) or 3 (after an
// unrelinearized multiplication). Form says which domain Polys live in;
// serialization and decryption require CoeffForm.
type Ciphertext struct {
	Params Parameters
	Polys  []ring.Poly
	Form   Form
}

// NewCiphertext allocates a zero ciphertext of the given size (2 or 3).
func NewCiphertext(params Parameters, size int) *Ciphertext {
	polys := make([]ring.Poly, size)
	for i := range polys {
		polys[i] = params.Ring().NewPoly()
	}
	return &Ciphertext{Params: params, Polys: polys}
}

// Size returns the number of polynomial components.
func (ct *Ciphertext) Size() int { return len(ct.Polys) }

// Copy deep-copies the ciphertext, preserving its form.
func (ct *Ciphertext) Copy() *Ciphertext {
	polys := make([]ring.Poly, len(ct.Polys))
	for i := range polys {
		polys[i] = ct.Polys[i].Copy()
	}
	return &Ciphertext{Params: ct.Params, Polys: polys, Form: ct.Form}
}

// ToNTT converts the ciphertext to evaluation form in place. A no-op if it
// is already NTT form.
func (ct *Ciphertext) ToNTT() {
	if ct.Form == NTTForm {
		return
	}
	r := ct.Params.Ring()
	for _, p := range ct.Polys {
		r.NTT(p)
	}
	ct.Form = NTTForm
}

// ToCoeff converts the ciphertext back to coefficient form in place. A no-op
// if it is already coefficient form.
func (ct *Ciphertext) ToCoeff() {
	if ct.Form == CoeffForm {
		return
	}
	r := ct.Params.Ring()
	for _, p := range ct.Polys {
		r.INTT(p)
	}
	ct.Form = CoeffForm
}

// Validate checks structural well-formedness of a (possibly deserialized)
// ciphertext before it is used.
func (ct *Ciphertext) Validate() error {
	if n := len(ct.Polys); n < 2 || n > 3 {
		return fmt.Errorf("he: ciphertext size %d, want 2 or 3", n)
	}
	r := ct.Params.Ring()
	for i, p := range ct.Polys {
		if err := r.ValidatePoly(p); err != nil {
			return fmt.Errorf("he: ciphertext component %d: %w", i, err)
		}
	}
	return nil
}

// ciphertextMagic guards serialized ciphertext framing.
const ciphertextMagic = uint32(0xC17E57F1)

// Write serializes the ciphertext. The parameter set is identified by
// (N, Q, T) so the receiver can reject mismatched parameters. Evaluation-form
// ciphertexts are rejected loudly: the wire format is coefficient-domain
// only, and silently emitting NTT coefficients would decrypt to garbage.
func (ct *Ciphertext) Write(w io.Writer) error {
	if ct.Form != CoeffForm {
		return fmt.Errorf("he: cannot serialize %v-form ciphertext; call ToCoeff first", ct.Form)
	}
	hdr := []any{
		ciphertextMagic,
		uint32(ct.Params.N),
		ct.Params.Q,
		ct.Params.T,
		uint32(len(ct.Polys)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("he: write ciphertext header: %w", err)
		}
	}
	for _, p := range ct.Polys {
		if err := ring.WritePoly(w, p); err != nil {
			return fmt.Errorf("he: write ciphertext poly: %w", err)
		}
	}
	return nil
}

// ReadCiphertext deserializes a ciphertext and validates it against params.
func ReadCiphertext(r io.Reader, params Parameters) (*Ciphertext, error) {
	var (
		magic, n, size uint32
		q, t           uint64
	)
	for _, v := range []any{&magic, &n, &q, &t, &size} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("he: read ciphertext header: %w", err)
		}
	}
	if magic != ciphertextMagic {
		return nil, fmt.Errorf("he: bad ciphertext magic %#x", magic)
	}
	if int(n) != params.N || q != params.Q || t != params.T {
		return nil, fmt.Errorf("he: ciphertext parameters (n=%d q=%d t=%d) do not match (n=%d q=%d t=%d)",
			n, q, t, params.N, params.Q, params.T)
	}
	if size < 2 || size > 3 {
		return nil, fmt.Errorf("he: ciphertext size %d out of range", size)
	}
	ct := &Ciphertext{Params: params, Polys: make([]ring.Poly, size)}
	for i := range ct.Polys {
		p, err := ring.ReadPoly(r)
		if err != nil {
			return nil, fmt.Errorf("he: read ciphertext poly %d: %w", i, err)
		}
		ct.Polys[i] = p
	}
	if err := ct.Validate(); err != nil {
		return nil, err
	}
	return ct, nil
}
