package he

import (
	"encoding/binary"
	"fmt"
	"io"

	"hesgx/internal/ring"
)

// Plaintext is a polynomial with coefficients in [0, T), produced by an
// encoder (see internal/encoding) or directly for raw scalar work.
type Plaintext struct {
	Params Parameters
	Poly   ring.Poly
}

// NewPlaintext allocates a zero plaintext.
func NewPlaintext(params Parameters) *Plaintext {
	return &Plaintext{Params: params, Poly: params.Ring().NewPoly()}
}

// Copy deep-copies the plaintext.
func (p *Plaintext) Copy() *Plaintext {
	return &Plaintext{Params: p.Params, Poly: p.Poly.Copy()}
}

// Validate checks coefficient ranges against the plaintext modulus.
func (p *Plaintext) Validate() error {
	if len(p.Poly.Coeffs) != p.Params.N {
		return fmt.Errorf("he: plaintext degree %d, want %d", len(p.Poly.Coeffs), p.Params.N)
	}
	for i, c := range p.Poly.Coeffs {
		if c >= p.Params.T {
			return fmt.Errorf("he: plaintext coefficient %d = %d >= t = %d", i, c, p.Params.T)
		}
	}
	return nil
}

// Form tracks which domain a ciphertext's polynomials live in. Ciphertexts
// are in coefficient form at rest (on the wire, at the enclave boundary, at
// decryption); the engine's linear layers hoist them into NTT form so every
// weight product is a pointwise multiply-accumulate.
type Form uint8

const (
	// CoeffForm is the coefficient (time) domain — the zero value, so
	// freshly constructed and deserialized ciphertexts are coefficient
	// form by default.
	CoeffForm Form = iota
	// NTTForm is the evaluation domain: every component poly holds NTT
	// coefficients. Only Add/AddPlain/MulScalar-style linear ops and the
	// pointwise plaintext products are defined on this form.
	NTTForm
)

// String implements fmt.Stringer for error messages.
func (f Form) String() string {
	switch f {
	case CoeffForm:
		return "coeff"
	case NTTForm:
		return "ntt"
	default:
		return fmt.Sprintf("form(%d)", uint8(f))
	}
}

// Ciphertext is an FV ciphertext of size 2 (fresh) or 3 (after an
// unrelinearized multiplication). Form says which domain Polys live in;
// serialization and decryption require CoeffForm.
type Ciphertext struct {
	Params Parameters
	Polys  []ring.Poly
	Form   Form
}

// NewCiphertext allocates a zero ciphertext of the given size (2 or 3).
func NewCiphertext(params Parameters, size int) *Ciphertext {
	polys := make([]ring.Poly, size)
	for i := range polys {
		polys[i] = params.Ring().NewPoly()
	}
	return &Ciphertext{Params: params, Polys: polys}
}

// Size returns the number of polynomial components.
func (ct *Ciphertext) Size() int { return len(ct.Polys) }

// Copy deep-copies the ciphertext, preserving its form.
func (ct *Ciphertext) Copy() *Ciphertext {
	polys := make([]ring.Poly, len(ct.Polys))
	for i := range polys {
		polys[i] = ct.Polys[i].Copy()
	}
	return &Ciphertext{Params: ct.Params, Polys: polys, Form: ct.Form}
}

// ToNTT converts the ciphertext to evaluation form in place. A no-op if it
// is already NTT form.
func (ct *Ciphertext) ToNTT() {
	if ct.Form == NTTForm {
		return
	}
	r := ct.Params.Ring()
	for _, p := range ct.Polys {
		r.NTT(p)
	}
	ct.Form = NTTForm
}

// ToCoeff converts the ciphertext back to coefficient form in place. A no-op
// if it is already coefficient form.
func (ct *Ciphertext) ToCoeff() {
	if ct.Form == CoeffForm {
		return
	}
	r := ct.Params.Ring()
	for _, p := range ct.Polys {
		r.INTT(p)
	}
	ct.Form = CoeffForm
}

// Validate checks structural well-formedness of a (possibly deserialized)
// ciphertext before it is used.
func (ct *Ciphertext) Validate() error {
	if n := len(ct.Polys); n < 2 || n > 3 {
		return fmt.Errorf("he: ciphertext size %d, want 2 or 3", n)
	}
	r := ct.Params.Ring()
	for i, p := range ct.Polys {
		if err := r.ValidatePoly(p); err != nil {
			return fmt.Errorf("he: ciphertext component %d: %w", i, err)
		}
	}
	return nil
}

// ciphertextMagic guards serialized ciphertext framing (v1: fixed 8-byte
// coefficients). ciphertextMagicV2 tags the packed layout: a flags byte
// followed by ceil(log2 q)-bit packed coefficient vectors. Distinct magics
// act as the version negotiation — ReadCiphertextAny dispatches on whichever
// arrives, so legacy frames keep decoding.
const (
	ciphertextMagic   = uint32(0xC17E57F1)
	ciphertextMagicV2 = uint32(0xC17E57F2)
)

// Ciphertext wire-format flags (v2 frames).
const (
	// ctFlagPacked marks bit-packed coefficient vectors (always set by this
	// writer; reserved so a future layout can clear it).
	ctFlagPacked byte = 1 << 0
)

// Write serializes the ciphertext. The parameter set is identified by
// (N, Q, T) so the receiver can reject mismatched parameters. Evaluation-form
// ciphertexts are rejected loudly: the wire format is coefficient-domain
// only, and silently emitting NTT coefficients would decrypt to garbage.
func (ct *Ciphertext) Write(w io.Writer) error {
	if ct.Form != CoeffForm {
		return fmt.Errorf("he: cannot serialize %v-form ciphertext; call ToCoeff first", ct.Form)
	}
	hdr := []any{
		ciphertextMagic,
		uint32(ct.Params.N),
		ct.Params.Q,
		ct.Params.T,
		uint32(len(ct.Polys)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("he: write ciphertext header: %w", err)
		}
	}
	for _, p := range ct.Polys {
		if err := ring.WritePoly(w, p); err != nil {
			return fmt.Errorf("he: write ciphertext poly: %w", err)
		}
	}
	return nil
}

// WireSize returns the exact serialized size of Write for ct, letting batch
// encoders presize their buffers instead of growing through doubling.
func (ct *Ciphertext) WireSize() int {
	n := 28
	for _, p := range ct.Polys {
		n += 4 + 8*len(p.Coeffs)
	}
	return n
}

// PackedSize returns the exact serialized size of WritePacked for ct.
func (ct *Ciphertext) PackedSize() int {
	width := ring.CoeffBits(ct.Params.Q)
	return 29 + len(ct.Polys)*ring.PackedPolySize(ct.Params.N, width)
}

// MinCiphertextWireSize returns the smallest encoding any ciphertext under
// params can occupy across both wire formats — a size-2 v2 packed frame
// (packed coefficients are strictly narrower than the legacy 8-byte layout).
// Decoders use it to reject element counts the remaining payload cannot
// possibly hold, before allocating count-sized storage.
func MinCiphertextWireSize(params Parameters) int {
	width := ring.CoeffBits(params.Q)
	return 29 + 2*ring.PackedPolySize(params.N, width)
}

// WritePacked serializes the ciphertext in the v2 packed layout:
// [magic u32][flags u8][n u32][q u64][t u64][size u32] followed by each
// polynomial bit-packed at ceil(log2 q) bits per coefficient — ~10% smaller
// than the legacy 8-byte layout for the 58-bit default modulus. Like Write,
// it refuses evaluation-form ciphertexts loudly.
func (ct *Ciphertext) WritePacked(w io.Writer) error {
	if ct.Form != CoeffForm {
		return fmt.Errorf("he: cannot serialize %v-form ciphertext; call ToCoeff first", ct.Form)
	}
	hdr := []any{
		ciphertextMagicV2,
		ctFlagPacked,
		uint32(ct.Params.N),
		ct.Params.Q,
		ct.Params.T,
		uint32(len(ct.Polys)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("he: write packed ciphertext header: %w", err)
		}
	}
	width := ring.CoeffBits(ct.Params.Q)
	for _, p := range ct.Polys {
		if err := ring.WritePolyPacked(w, p, width); err != nil {
			return fmt.Errorf("he: write packed ciphertext poly: %w", err)
		}
	}
	return nil
}

// readCiphertextBody parses the post-magic remainder of a ciphertext frame.
// packed selects the v2 coefficient codec.
func readCiphertextBody(r io.Reader, params Parameters, packed bool) (*Ciphertext, error) {
	var (
		n, size uint32
		q, t    uint64
	)
	for _, v := range []any{&n, &q, &t, &size} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("he: read ciphertext header: %w", err)
		}
	}
	if int(n) != params.N || q != params.Q || t != params.T {
		return nil, fmt.Errorf("he: ciphertext parameters (n=%d q=%d t=%d) do not match (n=%d q=%d t=%d)",
			n, q, t, params.N, params.Q, params.T)
	}
	if size < 2 || size > 3 {
		return nil, fmt.Errorf("he: ciphertext size %d out of range", size)
	}
	width := ring.CoeffBits(params.Q)
	ct := &Ciphertext{Params: params, Polys: make([]ring.Poly, size)}
	for i := range ct.Polys {
		var (
			p   ring.Poly
			err error
		)
		if packed {
			p, err = ring.ReadPolyPacked(r, width)
		} else {
			p, err = ring.ReadPoly(r)
		}
		if err != nil {
			return nil, fmt.Errorf("he: read ciphertext poly %d: %w", i, err)
		}
		ct.Polys[i] = p
	}
	if err := ct.Validate(); err != nil {
		return nil, err
	}
	return ct, nil
}

// ReadCiphertext deserializes a legacy (v1) ciphertext and validates it
// against params.
func ReadCiphertext(r io.Reader, params Parameters) (*Ciphertext, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("he: read ciphertext header: %w", err)
	}
	if magic != ciphertextMagic {
		return nil, fmt.Errorf("he: bad ciphertext magic %#x", magic)
	}
	return readCiphertextBody(r, params, false)
}

// ReadCiphertextAny deserializes a ciphertext in whichever format arrives:
// legacy v1 (fixed 8-byte coefficients) or v2 packed. The leading magic is
// the version byte of the negotiation — old senders keep working unchanged.
func ReadCiphertextAny(r io.Reader, params Parameters) (*Ciphertext, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("he: read ciphertext header: %w", err)
	}
	switch magic {
	case ciphertextMagic:
		return readCiphertextBody(r, params, false)
	case ciphertextMagicV2:
		var flags byte
		if err := binary.Read(r, binary.LittleEndian, &flags); err != nil {
			return nil, fmt.Errorf("he: read ciphertext flags: %w", err)
		}
		if flags&ctFlagPacked == 0 {
			return nil, fmt.Errorf("he: v2 ciphertext without packed flag (flags %#x)", flags)
		}
		return readCiphertextBody(r, params, true)
	default:
		return nil, fmt.Errorf("he: bad ciphertext magic %#x", magic)
	}
}
