// Package he implements the Fan–Vercauteren (FV) somewhat-homomorphic
// encryption scheme over R_q = Z_q[x]/(x^n+1), following the algorithm set
// the paper lists in §II-B: SecretKeyGen, PublicKeyGen, Encrypt, Decrypt,
// Add, Multiply and EvaluationKeyGen (relinearization), plus an invariant
// noise-budget estimator in the style of SEAL.
package he

import (
	"fmt"
	"math"
	"math/bits"

	"hesgx/internal/ring"
)

// DefaultDecompositionBase is the default base w (as a bit count) into which
// ciphertext elements are decomposed during relinearization.
const DefaultDecompositionBase = 16

// Parameters fixes an FV instantiation. Construct with NewParameters or
// DefaultParameters; a zero Parameters value is not usable.
type Parameters struct {
	// N is the ring degree (power of two).
	N int
	// Q is the coefficient modulus, an NTT-friendly prime below 2^58.
	Q uint64
	// T is the plaintext modulus, T << Q.
	T uint64
	// DecompBaseBits is log2 of the relinearization decomposition base w.
	DecompBaseBits int

	// TensorOracle routes ciphertext multiplication through the legacy
	// single-modulus u128 tensoring path instead of the RNS modulus chain.
	// The two paths are bit-exact where both are defined (the equivalence
	// property tests pin this), so the flag changes performance, not
	// semantics — it exists as a correctness oracle for CI and ablations.
	// The oracle path is limited to N ≤ 4096 by its 128-bit accumulator;
	// set it with WithTensorOracle.
	TensorOracle bool

	ring *ring.Ring
	// delta = floor(Q/T).
	delta uint64
}

// WithTensorOracle returns a copy of p that evaluates ciphertext
// multiplication on the single-modulus u128 oracle path. Oracle and RNS
// parameter sets are interchangeable (Equal ignores the flag): ciphertexts,
// keys, and wire bytes are identical — only the evaluator's multiply
// dispatch differs.
func (p Parameters) WithTensorOracle() Parameters {
	p.TensorOracle = true
	return p
}

// MulChain returns the RNS basis the default multiplier uses for this
// parameter set: three auxiliary NTT-friendly primes one bit below
// ring.MaxModulusBits followed by Q itself as the chain's last (rescaling)
// modulus. The chain derives deterministically from (N, Q), so endpoints
// never exchange it.
func (p Parameters) MulChain() ([]uint64, error) {
	aux, err := ring.GenerateChain(ring.MaxModulusBits-1, p.N, 3, p.Q)
	if err != nil {
		return nil, fmt.Errorf("he: mul chain: %w", err)
	}
	return append(aux, p.Q), nil
}

// defaultQBits mirrors SEAL 2.1's ChooserEvaluator::default_parameter_options
// in spirit: it maps a ring degree to an automatically chosen coefficient
// modulus size. Values are capped at ring.MaxModulusBits (word-size limbs);
// the RNS multiplier serves every listed degree, while the u128 oracle path
// additionally requires n ≤ 4096.
var defaultQBits = map[int]int{
	1024: 46,
	2048: 56,
	4096: 58,
	8192: 58,
}

// DefaultParameterOptions returns the supported ring degrees in ascending
// order, echoing the SEAL chooser the paper's implementation called.
func DefaultParameterOptions() []int {
	return []int{1024, 2048, 4096, 8192}
}

// DefaultParameters picks the coefficient modulus automatically for the
// given ring degree and plaintext modulus, like the paper's use of
// ChooserEvaluator::default_parameter_options().at(1024).
func DefaultParameters(n int, t uint64) (Parameters, error) {
	qBits, ok := defaultQBits[n]
	if !ok {
		return Parameters{}, fmt.Errorf("he: no default parameters for degree %d (supported: %v)", n, DefaultParameterOptions())
	}
	q, err := ring.GenerateNTTPrime(qBits, n)
	if err != nil {
		return Parameters{}, fmt.Errorf("he: generating default modulus: %w", err)
	}
	return NewParameters(n, q, t, DefaultDecompositionBase)
}

// DefaultParametersLowLift is DefaultParameters with the coefficient
// modulus additionally constrained to q ≡ 1 (mod t), which makes the FV
// plain-lift noise term r_t(q) = q mod t equal to 1. Plaintext-space wraps
// (frequent when values are negative, i.e. stored near t) then add
// negligible noise instead of up to t per wrap. Inference engines use this
// chooser.
func DefaultParametersLowLift(n int, t uint64) (Parameters, error) {
	qBits, ok := defaultQBits[n]
	if !ok {
		return Parameters{}, fmt.Errorf("he: no default parameters for degree %d (supported: %v)", n, DefaultParameterOptions())
	}
	q, err := ring.GenerateNTTPrimeCongruent(qBits, n, t)
	if err != nil {
		return Parameters{}, fmt.Errorf("he: generating low-lift modulus: %w", err)
	}
	return NewParameters(n, q, t, DefaultDecompositionBase)
}

// PlainLift returns r_t(q) = q mod t, the noise added per plaintext-space
// wrap in Δ-scaled arithmetic.
func (p Parameters) PlainLift() uint64 { return p.Q % p.T }

// NewParameters validates and precomputes an FV parameter set.
func NewParameters(n int, q, t uint64, decompBaseBits int) (Parameters, error) {
	if n < 16 || n&(n-1) != 0 {
		return Parameters{}, fmt.Errorf("he: ring degree %d must be a power of two >= 16", n)
	}
	if t < 2 {
		return Parameters{}, fmt.Errorf("he: plaintext modulus %d too small", t)
	}
	if t >= q/4 {
		return Parameters{}, fmt.Errorf("he: plaintext modulus %d too close to coefficient modulus %d", t, q)
	}
	if decompBaseBits < 1 || decompBaseBits > 60 {
		return Parameters{}, fmt.Errorf("he: decomposition base bits %d out of range", decompBaseBits)
	}
	r, err := ring.NewRing(n, q)
	if err != nil {
		return Parameters{}, fmt.Errorf("he: building ring: %w", err)
	}
	return Parameters{
		N:              n,
		Q:              q,
		T:              t,
		DecompBaseBits: decompBaseBits,
		ring:           r,
		delta:          q / t,
	}, nil
}

// Ring exposes the underlying polynomial ring.
func (p Parameters) Ring() *ring.Ring { return p.ring }

// Delta returns floor(Q/T), the plaintext scaling factor.
func (p Parameters) Delta() uint64 { return p.delta }

// Valid reports whether p was built by NewParameters.
func (p Parameters) Valid() bool { return p.ring != nil }

// Equal reports whether two parameter sets are interchangeable.
func (p Parameters) Equal(o Parameters) bool {
	return p.N == o.N && p.Q == o.Q && p.T == o.T && p.DecompBaseBits == o.DecompBaseBits
}

// DecompDigits returns the number of base-w digits of a coefficient of Q.
func (p Parameters) DecompDigits() int {
	return p.DecompDigitsFor(p.DecompBaseBits)
}

// DecompDigitsFor returns the number of base-2^baseBits digits of a
// coefficient of Q — the digit count of a key-switch decomposition running
// at a base other than the relinearization default (Galois keys use a much
// smaller base to keep the rotation noise term low; see NoiseBound.KeySwitch).
func (p Parameters) DecompDigitsFor(baseBits int) int {
	return (bits.Len64(p.Q-1) + baseBits - 1) / baseBits
}

// MaxNoiseBudget is the fresh-ciphertext upper bound on the invariant noise
// budget, log2(Q/(2T)).
func (p Parameters) MaxNoiseBudget() float64 {
	return math.Log2(float64(p.Q)) - math.Log2(float64(p.T)) - 1
}

func (p Parameters) String() string {
	return fmt.Sprintf("FV{n=%d, q=%d (%d bits), t=%d, w=2^%d}",
		p.N, p.Q, bits.Len64(p.Q), p.T, p.DecompBaseBits)
}

// LiftCentered maps a plaintext residue in [0, T) to its centered embedding
// in [0, Q): values above T/2 are treated as negative. This lift minimizes
// the noise added by plaintext multiplication.
func (p Parameters) LiftCentered(c uint64) uint64 {
	if c > p.T/2 {
		return p.Q - (p.T - c)
	}
	return c
}
