package he

import (
	"fmt"
	"sync"

	"hesgx/internal/ring"
)

// SecretKey is an FV secret key: a ternary polynomial s.
type SecretKey struct {
	Params Parameters
	S      ring.Poly
	// sNTT caches the NTT form of S for decryption.
	sNTT ring.Poly
	// s2NTT caches the NTT form of s^2 for decrypting size-3 ciphertexts.
	s2NTT ring.Poly
}

// PublicKey is an FV public key (p0, p1) = ([-(a s + e)]_q, a).
type PublicKey struct {
	Params Parameters
	P0     ring.Poly
	P1     ring.Poly
}

// EvaluationKeys hold the relinearization keys produced by
// EvaluationKeyGen(sk, w): for each base-w digit i, a pair
// ([-(a_i s + e_i) + w^i s^2]_q, a_i), stored in NTT form for fast use.
type EvaluationKeys struct {
	Params Parameters
	// K0[i], K1[i] are the two components of digit i, NTT domain.
	K0 []ring.Poly
	K1 []ring.Poly

	// Shoup companion tables of K0/K1, built lazily on first
	// relinearization so the digit MACs run on the cheaper MulShoup
	// kernel. Derived data — never serialized, and deserialized keys
	// rebuild them transparently.
	shoupOnce sync.Once
	k0Shoup   [][]uint64
	k1Shoup   [][]uint64
}

// shoupTables returns (building on first use) the Shoup companions of the
// key digits for the given ring.
func (ek *EvaluationKeys) shoupTables(r *ring.Ring) (k0, k1 [][]uint64) {
	ek.shoupOnce.Do(func() {
		ek.k0Shoup = make([][]uint64, len(ek.K0))
		ek.k1Shoup = make([][]uint64, len(ek.K1))
		for i := range ek.K0 {
			ek.k0Shoup[i] = r.ShoupPrecompute(ek.K0[i])
			ek.k1Shoup[i] = r.ShoupPrecompute(ek.K1[i])
		}
	})
	return ek.k0Shoup, ek.k1Shoup
}

// KeyGenerator derives FV key material from a randomness source.
type KeyGenerator struct {
	params  Parameters
	sampler *ring.Sampler
	// src is kept for drawing expansion seeds (seed-compressed Galois keys);
	// the sampler above owns the same source for error/uniform polynomials.
	src ring.Source
}

// NewKeyGenerator returns a generator drawing from src; pass
// ring.NewCryptoSource() for real keys.
func NewKeyGenerator(params Parameters, src ring.Source) (*KeyGenerator, error) {
	if !params.Valid() {
		return nil, fmt.Errorf("he: invalid parameters")
	}
	return &KeyGenerator{
		params:  params,
		sampler: ring.NewSampler(params.Ring(), src),
		src:     src,
	}, nil
}

// GenSecretKey samples a fresh ternary secret key (SecretKeyGen in §II-B).
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	r := kg.params.Ring()
	s := r.NewPoly()
	kg.sampler.Ternary(s)
	sk := &SecretKey{Params: kg.params, S: s}
	sk.precompute()
	return sk
}

func (sk *SecretKey) precompute() {
	r := sk.Params.Ring()
	sk.sNTT = sk.S.Copy()
	r.NTT(sk.sNTT)
	sk.s2NTT = r.NewPoly()
	r.MulCoeffs(sk.sNTT, sk.sNTT, sk.s2NTT)
}

// GenPublicKey derives a public key from sk (PublicKeyGen in §II-B).
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	r := kg.params.Ring()
	a := r.NewPoly()
	e := r.NewPoly()
	kg.sampler.Uniform(a)
	kg.sampler.Gaussian(e)
	// p0 = -(a*s + e)
	p0 := r.NewPoly()
	r.MulNTT(a, sk.S, p0)
	r.Add(p0, e, p0)
	r.Neg(p0, p0)
	return &PublicKey{Params: kg.params, P0: p0, P1: a}
}

// GenKeyPair samples a secret key and its public key together.
func (kg *KeyGenerator) GenKeyPair() (*SecretKey, *PublicKey) {
	sk := kg.GenSecretKey()
	return sk, kg.GenPublicKey(sk)
}

// GenEvaluationKeys produces relinearization keys for sk
// (EvaluationKeyGen(sk, w) in §II-B).
func (kg *KeyGenerator) GenEvaluationKeys(sk *SecretKey) *EvaluationKeys {
	params := kg.params
	r := params.Ring()
	digits := params.DecompDigits()
	ek := &EvaluationKeys{
		Params: params,
		K0:     make([]ring.Poly, digits),
		K1:     make([]ring.Poly, digits),
	}
	// s^2 in coefficient domain.
	s2 := r.NewPoly()
	r.MulNTT(sk.S, sk.S, s2)
	// w^i mod q, accumulated.
	wPow := uint64(1)
	w := uint64(1) << uint(params.DecompBaseBits)
	for i := 0; i < digits; i++ {
		a := r.NewPoly()
		e := r.NewPoly()
		kg.sampler.Uniform(a)
		kg.sampler.Gaussian(e)
		// k0 = -(a*s + e) + w^i * s^2
		k0 := r.NewPoly()
		r.MulNTT(a, sk.S, k0)
		r.Add(k0, e, k0)
		r.Neg(k0, k0)
		scaled := r.NewPoly()
		r.MulScalar(s2, wPow, scaled)
		r.Add(k0, scaled, k0)
		// Store both halves in NTT domain: relinearization multiplies them
		// by ciphertext digits repeatedly.
		r.NTT(k0)
		r.NTT(a)
		ek.K0[i] = k0
		ek.K1[i] = a
		wPow = r.Mod.Mul(wPow, w%r.Mod.Q)
	}
	return ek
}
