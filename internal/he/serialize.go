package he

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"hesgx/internal/ring"
)

// Serialization magics distinguish key material types on the wire.
const (
	paramsMagic = uint32(0x46565052) // "FVPR"
	skMagic     = uint32(0x4656534B) // "FVSK"
	pkMagic     = uint32(0x4656504B) // "FVPK"
	ekMagic     = uint32(0x4656454B) // "FVEK"
)

// WriteParameters serializes the parameter set.
func WriteParameters(w io.Writer, p Parameters) error {
	if !p.Valid() {
		return fmt.Errorf("he: cannot serialize invalid parameters")
	}
	for _, v := range []any{paramsMagic, uint32(p.N), p.Q, p.T, uint32(p.DecompBaseBits)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("he: write parameters: %w", err)
		}
	}
	return nil
}

// ReadParameters deserializes and re-validates a parameter set.
func ReadParameters(r io.Reader) (Parameters, error) {
	var (
		magic, n, base uint32
		q, t           uint64
	)
	for _, v := range []any{&magic, &n, &q, &t, &base} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return Parameters{}, fmt.Errorf("he: read parameters: %w", err)
		}
	}
	if magic != paramsMagic {
		return Parameters{}, fmt.Errorf("he: bad parameters magic %#x", magic)
	}
	if n > 1<<16 {
		return Parameters{}, fmt.Errorf("he: implausible ring degree %d", n)
	}
	return NewParameters(int(n), q, t, int(base))
}

// MarshalParameters renders parameters to a byte slice.
func MarshalParameters(p Parameters) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteParameters(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalParameters parses parameters from a byte slice.
func UnmarshalParameters(b []byte) (Parameters, error) {
	return ReadParameters(bytes.NewReader(b))
}

// WriteSecretKey serializes sk. Callers are responsible for protecting the
// bytes (the enclave seals them; the wire layer only sends them inside the
// attestation-established channel).
func WriteSecretKey(w io.Writer, sk *SecretKey) error {
	if err := binary.Write(w, binary.LittleEndian, skMagic); err != nil {
		return fmt.Errorf("he: write secret key: %w", err)
	}
	if err := WriteParameters(w, sk.Params); err != nil {
		return err
	}
	return ring.WritePoly(w, sk.S)
}

// ReadSecretKey deserializes a secret key.
func ReadSecretKey(r io.Reader) (*SecretKey, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("he: read secret key: %w", err)
	}
	if magic != skMagic {
		return nil, fmt.Errorf("he: bad secret key magic %#x", magic)
	}
	params, err := ReadParameters(r)
	if err != nil {
		return nil, err
	}
	s, err := ring.ReadPoly(r)
	if err != nil {
		return nil, err
	}
	if err := params.Ring().ValidatePoly(s); err != nil {
		return nil, fmt.Errorf("he: secret key poly: %w", err)
	}
	sk := &SecretKey{Params: params, S: s}
	sk.precompute()
	return sk, nil
}

// WritePublicKey serializes pk.
func WritePublicKey(w io.Writer, pk *PublicKey) error {
	if err := binary.Write(w, binary.LittleEndian, pkMagic); err != nil {
		return fmt.Errorf("he: write public key: %w", err)
	}
	if err := WriteParameters(w, pk.Params); err != nil {
		return err
	}
	if err := ring.WritePoly(w, pk.P0); err != nil {
		return err
	}
	return ring.WritePoly(w, pk.P1)
}

// ReadPublicKey deserializes a public key.
func ReadPublicKey(r io.Reader) (*PublicKey, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("he: read public key: %w", err)
	}
	if magic != pkMagic {
		return nil, fmt.Errorf("he: bad public key magic %#x", magic)
	}
	params, err := ReadParameters(r)
	if err != nil {
		return nil, err
	}
	p0, err := ring.ReadPoly(r)
	if err != nil {
		return nil, err
	}
	p1, err := ring.ReadPoly(r)
	if err != nil {
		return nil, err
	}
	for _, p := range []ring.Poly{p0, p1} {
		if err := params.Ring().ValidatePoly(p); err != nil {
			return nil, fmt.Errorf("he: public key poly: %w", err)
		}
	}
	return &PublicKey{Params: params, P0: p0, P1: p1}, nil
}

// WriteEvaluationKeys serializes ek (NTT-domain polys are written as-is).
func WriteEvaluationKeys(w io.Writer, ek *EvaluationKeys) error {
	if err := binary.Write(w, binary.LittleEndian, ekMagic); err != nil {
		return fmt.Errorf("he: write evaluation keys: %w", err)
	}
	if err := WriteParameters(w, ek.Params); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ek.K0))); err != nil {
		return fmt.Errorf("he: write evaluation keys count: %w", err)
	}
	for i := range ek.K0 {
		if err := ring.WritePoly(w, ek.K0[i]); err != nil {
			return err
		}
		if err := ring.WritePoly(w, ek.K1[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadEvaluationKeys deserializes evaluation keys.
func ReadEvaluationKeys(r io.Reader) (*EvaluationKeys, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("he: read evaluation keys: %w", err)
	}
	if magic != ekMagic {
		return nil, fmt.Errorf("he: bad evaluation keys magic %#x", magic)
	}
	params, err := ReadParameters(r)
	if err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("he: read evaluation keys count: %w", err)
	}
	if count == 0 || count > 64 {
		return nil, fmt.Errorf("he: implausible evaluation key digit count %d", count)
	}
	ek := &EvaluationKeys{
		Params: params,
		K0:     make([]ring.Poly, count),
		K1:     make([]ring.Poly, count),
	}
	for i := 0; i < int(count); i++ {
		if ek.K0[i], err = ring.ReadPoly(r); err != nil {
			return nil, err
		}
		if ek.K1[i], err = ring.ReadPoly(r); err != nil {
			return nil, err
		}
		for _, p := range []ring.Poly{ek.K0[i], ek.K1[i]} {
			if err := params.Ring().ValidatePoly(p); err != nil {
				return nil, fmt.Errorf("he: evaluation key poly: %w", err)
			}
		}
	}
	return ek, nil
}

// MarshalCiphertext renders a ciphertext to bytes.
func MarshalCiphertext(ct *Ciphertext) ([]byte, error) {
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalCiphertext parses a ciphertext from bytes.
func UnmarshalCiphertext(b []byte, params Parameters) (*Ciphertext, error) {
	return ReadCiphertext(bytes.NewReader(b), params)
}

// MarshalCiphertextPacked renders a ciphertext in the v2 packed layout.
func MarshalCiphertextPacked(ct *Ciphertext) ([]byte, error) {
	w := newAppendWriter(make([]byte, 0, ct.PackedSize()))
	if err := ct.WritePacked(w); err != nil {
		return nil, err
	}
	return w.b, nil
}

// UnmarshalCiphertextAny parses a ciphertext in either wire format.
func UnmarshalCiphertextAny(b []byte, params Parameters) (*Ciphertext, error) {
	return ReadCiphertextAny(bytes.NewReader(b), params)
}

// UnmarshalSeededCiphertext parses a seed-compressed ciphertext from bytes.
func UnmarshalSeededCiphertext(b []byte, params Parameters) (*SeededCiphertext, error) {
	return ReadSeededCiphertext(bytes.NewReader(b), params)
}

// MarshalPublicKey renders pk to bytes.
func MarshalPublicKey(pk *PublicKey) ([]byte, error) {
	var buf bytes.Buffer
	if err := WritePublicKey(&buf, pk); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalPublicKey parses pk from bytes.
func UnmarshalPublicKey(b []byte) (*PublicKey, error) {
	return ReadPublicKey(bytes.NewReader(b))
}

// MarshalSecretKey renders sk to bytes.
func MarshalSecretKey(sk *SecretKey) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteSecretKey(&buf, sk); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalSecretKey parses sk from bytes.
func UnmarshalSecretKey(b []byte) (*SecretKey, error) {
	return ReadSecretKey(bytes.NewReader(b))
}
