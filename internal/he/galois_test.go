package he

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hesgx/internal/ring"
)

func testGaloisKeys(t testing.TB, tc *testContext, seed uint64, steps ...int) *GaloisKeys {
	t.Helper()
	kg, err := NewKeyGenerator(tc.params, ring.NewSeededSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	gk, err := kg.GenGaloisKeys(tc.sk, steps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return gk
}

// plaintextAutomorphism applies φ_g to a plaintext polynomial over Z_t —
// the reference for what rotating a ciphertext must do to its decryption.
func plaintextAutomorphism(pt *Plaintext, g uint64) *Plaintext {
	params := pt.Params
	n := uint64(params.N)
	tmod := params.T
	out := NewPlaintext(params)
	for i := uint64(0); i < n; i++ {
		j := (i * g) & (2*n - 1)
		c := pt.Poly.Coeffs[i]
		if j >= n && c != 0 {
			c = tmod - c
		}
		out.Poly.Coeffs[j&(n-1)] = c
	}
	return out
}

// Rotate(Encrypt(m), r) must decrypt to φ_g(m) for every planned rotation
// step — the ciphertext-level half of the rotation property (the slot-level
// half, φ_(5^r) ≡ row rotation, is pinned in internal/encoding).
func TestRotateMatchesPlaintextAutomorphism(t *testing.T) {
	tc := newTestContext(t, 41)
	steps := []int{1, 2, 7, -1, -3, 100}
	gk := testGaloisKeys(t, tc, 42, steps...)
	src := ring.NewSeededSource(43)
	pt := NewPlaintext(tc.params)
	for i := range pt.Poly.Coeffs {
		pt.Poly.Coeffs[i] = src.Uint64() % tc.params.T
	}
	ct, err := tc.enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range steps {
		rot, err := tc.eval.Rotate(ct, step, gk)
		if err != nil {
			t.Fatalf("Rotate(%d): %v", step, err)
		}
		got, budget, err := tc.dec.DecryptWithBudget(rot)
		if err != nil {
			t.Fatalf("Decrypt after Rotate(%d): %v", step, err)
		}
		if budget <= 0 {
			t.Fatalf("Rotate(%d): noise budget exhausted (%f bits)", step, budget)
		}
		want := plaintextAutomorphism(pt, ring.GaloisElement(step, tc.params.N))
		if !got.Poly.Equal(want.Poly) {
			t.Fatalf("Rotate(%d): decryption != plaintext automorphism", step)
		}
	}
}

func TestRotateIdentity(t *testing.T) {
	tc := newTestContext(t, 44)
	gk := testGaloisKeys(t, tc, 45, 1)
	pt := randomPlaintext(tc, ring.NewSeededSource(46), 16)
	ct, _ := tc.enc.Encrypt(pt)
	rot, err := tc.eval.Rotate(ct, 0, gk)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ct.Polys {
		if !rot.Polys[i].Equal(ct.Polys[i]) {
			t.Fatal("identity rotation must return an unchanged copy")
		}
	}
}

// RotateHoisted must produce bit-identical ciphertexts to one-at-a-time
// Rotate calls — hoisting changes the cost, never the result.
func TestRotateHoistedMatchesSingle(t *testing.T) {
	tc := newTestContext(t, 47)
	steps := []int{1, 0, 5, -2}
	gk := testGaloisKeys(t, tc, 48, steps...)
	pt := randomPlaintext(tc, ring.NewSeededSource(49), 64)
	ct, _ := tc.enc.Encrypt(pt)
	batch, err := tc.eval.RotateHoisted(ct, steps, gk)
	if err != nil {
		t.Fatal(err)
	}
	for si, step := range steps {
		single, err := tc.eval.Rotate(ct, step, gk)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single.Polys {
			if !batch[si].Polys[i].Equal(single.Polys[i]) {
				t.Fatalf("step %d: hoisted rotation differs from single rotation", step)
			}
		}
	}
}

func TestRotateMissingKey(t *testing.T) {
	tc := newTestContext(t, 50)
	gk := testGaloisKeys(t, tc, 51, 1)
	pt := randomPlaintext(tc, ring.NewSeededSource(52), 4)
	ct, _ := tc.enc.Encrypt(pt)
	if _, err := tc.eval.Rotate(ct, 3, gk); err == nil {
		t.Fatal("rotation without the matching galois key must fail")
	}
	if gk.Contains(3) {
		t.Fatal("Contains(3) should be false for a {1}-only key set")
	}
	if !gk.Contains(0) || !gk.Contains(1) {
		t.Fatal("Contains must accept the identity and the generated step")
	}
}

// The key-switch noise prediction must stay conservative: the predicted
// budget after a chain of rotations is a lower bound on the measured one.
func TestKeySwitchNoiseConservative(t *testing.T) {
	tc := newTestContext(t, 53)
	gk := testGaloisKeys(t, tc, 54, 1)
	pt := randomPlaintext(tc, ring.NewSeededSource(55), 32)
	ct, _ := tc.enc.Encrypt(pt)
	bound := tc.params.FreshNoiseBound()
	for hop := 0; hop < 4; hop++ {
		var err error
		ct, err = tc.eval.Rotate(ct, 1, gk)
		if err != nil {
			t.Fatal(err)
		}
		bound = bound.KeySwitch(gk.BaseBits)
		_, measured, err := tc.dec.DecryptWithBudget(ct)
		if err != nil {
			t.Fatal(err)
		}
		if predicted := bound.BudgetBits(); predicted > measured {
			t.Fatalf("hop %d: predicted budget %.2f bits exceeds measured %.2f", hop, predicted, measured)
		}
		if bound.Exhausted() {
			t.Fatalf("hop %d: predicted budget exhausted on the test tier", hop)
		}
	}
}

func TestRotationCountersAdvance(t *testing.T) {
	tc := newTestContext(t, 56)
	steps := []int{1, 2, 5}
	gk := testGaloisKeys(t, tc, 57, steps...)
	pt := randomPlaintext(tc, ring.NewSeededSource(58), 8)
	ct, _ := tc.enc.Encrypt(pt)
	ks0, h0 := KeySwitchOps(), HoistedRotations()
	if _, err := tc.eval.RotateHoisted(ct, steps, gk); err != nil {
		t.Fatal(err)
	}
	if got := KeySwitchOps() - ks0; got != 3 {
		t.Fatalf("KeySwitchOps advanced by %d, want 3", got)
	}
	if got := HoistedRotations() - h0; got != 2 {
		t.Fatalf("HoistedRotations advanced by %d, want 2 (first rotation pays the hoist)", got)
	}
}

func TestGaloisKeysSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, 59)
	steps := []int{1, 4, -2}
	gk := testGaloisKeys(t, tc, 60, steps...)
	b, err := MarshalGaloisKeys(gk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalGaloisKeys(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseBits != gk.BaseBits || !got.Params.Equal(gk.Params) {
		t.Fatal("round trip changed parameters or base")
	}
	we, ge := gk.Elements(), got.Elements()
	if len(we) != len(ge) {
		t.Fatalf("round trip changed element count: %d vs %d", len(ge), len(we))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("element %d: %d != %d", i, ge[i], we[i])
		}
	}
	// Behavioral equality: deserialized keys rotate bit-identically.
	pt := randomPlaintext(tc, ring.NewSeededSource(61), 16)
	ct, _ := tc.enc.Encrypt(pt)
	a, err := tc.eval.Rotate(ct, 4, gk)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := tc.eval.Rotate(ct, 4, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(bb.Polys[i]) {
			t.Fatal("deserialized keys rotate differently")
		}
	}
}

func TestGaloisKeysHostileInputs(t *testing.T) {
	tc := newTestContext(t, 62)
	gk := testGaloisKeys(t, tc, 63, 1)
	valid, err := MarshalGaloisKeys(gk)
	if err != nil {
		t.Fatal(err)
	}
	// Header layout: magic(4) + params(28) + baseBits(4) + count(4).
	countOff := 4 + 28 + 4

	huge := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(huge[countOff:], 0xFFFFFFFF)
	if _, err := UnmarshalGaloisKeys(huge); err == nil {
		t.Fatal("hostile key count accepted")
	}

	overCount := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(overCount[countOff:], 7) // claims 7, carries 1
	if _, err := UnmarshalGaloisKeys(overCount); err == nil {
		t.Fatal("key count exceeding payload accepted")
	}

	evenG := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(evenG[countOff+4:], 6)
	if _, err := UnmarshalGaloisKeys(evenG); err == nil {
		t.Fatal("even galois element accepted")
	}

	for _, cut := range []int{0, 3, countOff, countOff + 4, len(valid) - 1} {
		if _, err := UnmarshalGaloisKeys(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
