package he

import (
	"math"

	"hesgx/internal/ring"
)

// Static noise accountant.
//
// A NoiseBound tracks W, a conservative upper bound on ‖w‖∞ where w is the
// Δ-domain decryption noise of a ciphertext: phase(ct) = [c0 + c1·s]_q =
// Δ·m + w (mod q), with m the centered plaintext. Decryption stays exact
// while ‖w‖∞ < Δ/2 ≈ q/(2t), so the remaining budget in bits is
//
//	BudgetBits() = log2(q/(2t)) − log2(W) = MaxNoiseBudget() − log2(W),
//
// directly comparable to the measured value Decryptor.NoiseBudget computes
// from the real noise. Every bound below is a worst case (coherent signs,
// tail-cut error magnitudes), so the predicted budget is a conservative
// lower bound on the measured budget — the invariant the flight-report
// tests assert per layer.
//
// Throughout, r = PlainLift() = q mod t is the noise a plaintext-space wrap
// contributes in Δ-scaled arithmetic (1 under the low-lift chooser), and
// B = ring.GaussianBound() bounds each sampled error coefficient.
type NoiseBound struct {
	params Parameters
	w      float64
}

// FreshNoiseBound bounds a fresh encryption. Public-key encryption yields
// w = e1 + e2·s − e_pk·u with ternary s, u and ‖e‖∞ ≤ B, so
// ‖w‖∞ ≤ B·(2n+1). Symmetric (seeded) encryption carries only the single
// error term e (‖w‖∞ ≤ B), so the public-key bound is safely conservative
// for every upload path the framework uses.
func (p Parameters) FreshNoiseBound() NoiseBound {
	b := ring.GaussianBound()
	return NoiseBound{params: p, w: b * float64(2*p.N+1)}
}

// BudgetBits converts the tracked bound into remaining invariant-noise
// budget bits; non-positive means decryption is no longer guaranteed exact.
func (b NoiseBound) BudgetBits() float64 {
	if b.w < 1 {
		return b.params.MaxNoiseBudget()
	}
	return b.params.MaxNoiseBudget() - math.Log2(b.w)
}

// Exhausted reports whether the predicted budget has run out.
func (b NoiseBound) Exhausted() bool { return b.BudgetBits() <= 0 }

func (b NoiseBound) lift() float64 { return float64(b.params.PlainLift()) }

// Add bounds ct + ct: noises add, plus one possible plaintext wrap.
func (b NoiseBound) Add(o NoiseBound) NoiseBound {
	b.w = b.w + o.w + b.lift()
	return b
}

// AddPlain bounds ct + pt: the scaled plaintext is exact, so only a wrap
// contributes.
func (b NoiseBound) AddPlain() NoiseBound {
	b.w += b.lift()
	return b
}

// MulScalar bounds multiplication by a constant-coefficient plaintext whose
// centered value has magnitude absK (the scalar fast path): the noise
// scales by |k| and the Δ-approximation error Δ·t − q·⌊Δ⌋-style residue
// contributes r·(|k|/2 + 1).
func (b NoiseBound) MulScalar(absK float64) NoiseBound {
	b.w = absK*b.w + b.lift()*(absK/2+1)
	return b
}

// MulPlain bounds multiplication by a general plaintext operand with
// centered ℓ1 norm l1 spread over `terms` nonzero coefficients: the
// negacyclic convolution amplifies the noise by at most ‖p‖₁.
func (b NoiseBound) MulPlain(l1 float64, terms int) NoiseBound {
	b.w = l1*b.w + b.lift()*(l1/2+float64(terms))
	return b
}

// WeightedSum bounds acc = Σᵢ kᵢ·ctᵢ over `terms` ciphertexts each bounded
// by b, with Σ|kᵢ| = l1 — the linear-layer primitive (convolution window or
// FC row). Each product contributes |kᵢ|·w + r·(|kᵢ|/2 + 1) and each of the
// ≤ terms additions may wrap once more, so the total is
// l1·w + r·(l1/2 + 2·terms).
func (b NoiseBound) WeightedSum(l1 float64, terms int) NoiseBound {
	if l1 < 1 {
		l1 = 1 // a zero row still produces a (noiseless) MulScalar-by-0 output
	}
	b.w = l1*b.w + b.lift()*(l1/2+2*float64(terms))
	return b
}

// Mul bounds the ciphertext×ciphertext tensor product (t/q)·(ct1 ⊗ ct2).
// Writing phase products out: (Δm1+w1)(Δm2+w2) scaled by t/q gives
//
//	n·(t/2)·(w1+w2)      cross terms mᵢ⊛wⱼ with ‖m‖∞ ≤ t/2, ‖m‖₁ ≤ n·t/2
//	(t·n/q)·w1·w2        the noise product
//	r·n·t/2              Δ²-term wrap mod t plus the tΔ²/q ≈ Δ deviation
//	(1 + n + n²)/2       rounding of the three output components through
//	                     phase (δ0 + δ1⊛s + δ2⊛s², ‖s²‖₁ ≤ n²)
//
// all worst-case, so the bound is generous but sound.
//
// RNS note: the default multiplier evaluates this same tensor product over
// a word-size modulus chain (basis extension, per-limb convolution, and a
// DivRoundByLastModulus rescale), but its arithmetic is exact and bit-exact
// with the single-modulus oracle — the basis extension is an exact CRT
// embed and the rescale is an exact floor division, neither introducing an
// approximation term. The RNS rewrite therefore adds no noise terms here;
// this bound covers both backends unchanged (DESIGN §14 carries the
// rounding-error analysis).
func (b NoiseBound) Mul(o NoiseBound) NoiseBound {
	n := float64(b.params.N)
	t := float64(b.params.T)
	q := float64(b.params.Q)
	b.w = n*(t/2)*(b.w+o.w) + (t*n/q)*b.w*o.w + b.lift()*n*t/2 + (1+n+n*n)/2
	return b
}

// Relinearize bounds the size-3 → size-2 conversion: the decomposition into
// `digits` base-2^DecompBaseBits digits convolves each digit polynomial
// (‖d‖∞ < base, n coefficients) with one evaluation-key error term, adding
// digits·n·base·B.
func (b NoiseBound) Relinearize() NoiseBound {
	base := math.Pow(2, float64(b.params.DecompBaseBits))
	b.w += float64(b.params.DecompDigits()) * float64(b.params.N) * base * ring.GaussianBound()
	return b
}

// KeySwitch bounds a rotation (Galois key switch) at decomposition base
// 2^baseBits: the automorphism itself is a signed permutation and leaves
// ‖w‖∞ unchanged, and folding the rotated digits (‖d‖∞ < base, n
// coefficients each) through the key's error terms adds digits·n·base·B —
// the same shape as Relinearize, at the Galois keys' own (smaller) base.
func (b NoiseBound) KeySwitch(baseBits int) NoiseBound {
	base := math.Pow(2, float64(baseBits))
	b.w += float64(b.params.DecompDigitsFor(baseBits)) * float64(b.params.N) * base * ring.GaussianBound()
	return b
}

// Refresh models the enclave's decrypt–re-encrypt: the output is a fresh
// encryption, so the accountant resets (§IV-E — the reason the hybrid
// pipeline never runs out of budget between SGX layers).
func (b NoiseBound) Refresh() NoiseBound {
	return b.params.FreshNoiseBound()
}
