package he

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"hesgx/internal/ring"
)

// This file implements rotation key-switching: GaloisKeys (decomposed
// key-switch keys for a planned set of automorphisms), generation,
// seed-compressed serialization, and Evaluator.Rotate / RotateHoisted.
//
// A rotation of ct = (c0, c1) by Galois element g is
//
//	(φ_g(c0) + Σᵢ φ_g(dᵢ)·K0ᵢ,  Σᵢ φ_g(dᵢ)·K1ᵢ)
//
// where c1 = Σᵢ w^i·dᵢ is the base-w digit decomposition and
// (K0ᵢ, K1ᵢ) = (-(aᵢ·s + eᵢ) + w^i·φ_g(s), aᵢ). Correctness rides on
// φ_g being a ring automorphism: Σ w^i·φ_g(dᵢ) = φ_g(c1), so the phase of
// the output is φ_g(c0 + c1·s) minus the small key-error term.
//
// Hoisting: the expensive half of a rotation — decomposing c1 into digits
// and transforming each digit — does not depend on g. RotateHoisted pays it
// once per input ciphertext and serves every requested rotation from the
// cached NTT-domain digits, since NTT(φ_g(d)) is just the NTT-domain index
// permutation of NTT(d) (ring.AutomorphismNTT). Each extra rotation then
// costs 2·digits fused Shoup MACs plus two inverse transforms, which is
// what makes 24-rotation packed conv windows affordable.

// DefaultGaloisBaseBits is the decomposition base (as a bit count) for
// Galois keys. Rotations happen per conv window tap rather than once per
// multiply, so their key-switch noise digits·n·2^bits·B must stay far below
// the relinearization term: base 4 keeps the whole term near 2^22 for the
// n=2048/56-bit-q tier, leaving room for the conv taps that follow.
const DefaultGaloisBaseBits = 2

// Package-level rotation counters, exported on /metrics by the engine as
// he.keyswitch_ops and he.hoisted_rotations.
var (
	keyswitchOps     atomic.Uint64
	hoistedRotations atomic.Uint64
)

// KeySwitchOps returns the cumulative number of rotation key-switch
// operations (one per non-identity rotation) executed process-wide.
func KeySwitchOps() uint64 { return keyswitchOps.Load() }

// HoistedRotations returns how many of those rotations were served from an
// already-hoisted digit decomposition — the amortization win of
// RotateHoisted over one-at-a-time Rotate calls.
func HoistedRotations() uint64 { return hoistedRotations.Load() }

// galoisKey is the key-switch key for one Galois element: per-digit pairs
// (K0ᵢ, K1ᵢ) in NTT form, plus the 32-byte seeds the uniform K1ᵢ expand
// from (so serialization ships seeds, not polynomials).
type galoisKey struct {
	K0    []ring.Poly
	K1    []ring.Poly
	seeds [][SeedSize]byte

	shoupOnce sync.Once
	k0Shoup   [][]uint64
	k1Shoup   [][]uint64
}

func (k *galoisKey) shoupTables(r *ring.Ring) (k0, k1 [][]uint64) {
	k.shoupOnce.Do(func() {
		k.k0Shoup = make([][]uint64, len(k.K0))
		k.k1Shoup = make([][]uint64, len(k.K1))
		for i := range k.K0 {
			k.k0Shoup[i] = r.ShoupPrecompute(k.K0[i])
			k.k1Shoup[i] = r.ShoupPrecompute(k.K1[i])
		}
	})
	return k.k0Shoup, k.k1Shoup
}

// GaloisKeys hold rotation key-switch keys for a planned set of Galois
// elements, at their own decomposition base (BaseBits — smaller than the
// relinearization base, see DefaultGaloisBaseBits). Immutable after
// generation/deserialization and safe for concurrent use.
type GaloisKeys struct {
	Params   Parameters
	BaseBits int
	keys     map[uint64]*galoisKey
}

// Elements returns the Galois elements the key set covers, ascending.
func (gk *GaloisKeys) Elements() []uint64 {
	out := make([]uint64, 0, len(gk.keys))
	for g := range gk.keys {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether the set holds the key for rotation by step.
func (gk *GaloisKeys) Contains(step int) bool {
	g := ring.GaloisElement(step, gk.Params.N)
	if g == 1 {
		return true // identity needs no key
	}
	_, ok := gk.keys[g]
	return ok
}

// GenGaloisKeys produces key-switch keys for the given rotation steps at
// decomposition base 2^baseBits (DefaultGaloisBaseBits when 0). Duplicate
// and identity steps are coalesced, so the set holds exactly the distinct
// non-trivial Galois elements — the "minimal rotation set" the packed
// planner derives per model.
func (kg *KeyGenerator) GenGaloisKeys(sk *SecretKey, steps []int, baseBits int) (*GaloisKeys, error) {
	if baseBits == 0 {
		baseBits = DefaultGaloisBaseBits
	}
	if baseBits < 1 || baseBits > 60 {
		return nil, fmt.Errorf("he: galois decomposition base bits %d out of range", baseBits)
	}
	params := kg.params
	r := params.Ring()
	digits := params.DecompDigitsFor(baseBits)
	gk := &GaloisKeys{Params: params, BaseBits: baseBits, keys: make(map[uint64]*galoisKey)}
	sg := r.NewPoly()
	for _, step := range steps {
		g := ring.GaloisElement(step, params.N)
		if g == 1 {
			continue
		}
		if _, ok := gk.keys[g]; ok {
			continue
		}
		r.Automorphism(sk.S, g, sg)
		key := &galoisKey{
			K0:    make([]ring.Poly, digits),
			K1:    make([]ring.Poly, digits),
			seeds: make([][SeedSize]byte, digits),
		}
		wPow := uint64(1)
		w := uint64(1) << uint(baseBits)
		for i := 0; i < digits; i++ {
			var seed [SeedSize]byte
			for o := 0; o < SeedSize; o += 8 {
				binary.LittleEndian.PutUint64(seed[o:], kg.src.Uint64())
			}
			a := r.NewPoly()
			r.UniformFromSeed(seed, a)
			e := r.NewPoly()
			kg.sampler.Gaussian(e)
			// k0 = -(a·s + e) + w^i·φ_g(s)
			k0 := r.NewPoly()
			r.MulNTT(a, sk.S, k0)
			r.Add(k0, e, k0)
			r.Neg(k0, k0)
			scaled := r.NewPoly()
			r.MulScalar(sg, wPow, scaled)
			r.Add(k0, scaled, k0)
			r.NTT(k0)
			r.NTT(a)
			key.K0[i] = k0
			key.K1[i] = a
			key.seeds[i] = seed
			wPow = r.Mod.Mul(wPow, w%r.Mod.Q)
		}
		gk.keys[g] = key
	}
	return gk, nil
}

// Rotate rotates the packed slots of ct left by step (right for negative
// steps), using the key set's entry for the corresponding Galois element.
// ct must be a size-2 coefficient-form ciphertext.
func (ev *Evaluator) Rotate(ct *Ciphertext, step int, gk *GaloisKeys) (*Ciphertext, error) {
	outs, err := ev.RotateHoisted(ct, []int{step}, gk)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// RotateHoisted computes every requested rotation of ct, hoisting the digit
// decomposition: c1 is decomposed and transformed once, and each rotation
// reuses the NTT-domain digits through its own key — the amortization that
// makes a 24-rotation conv window cost one decomposition instead of 24.
// Returns one ciphertext per step, aligned with steps; identity steps
// return plain copies.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, steps []int, gk *GaloisKeys) ([]*Ciphertext, error) {
	if err := ev.check(ct); err != nil {
		return nil, err
	}
	if gk == nil || !gk.Params.Equal(ev.params) {
		return nil, fmt.Errorf("he: missing or mismatched galois keys")
	}
	if ct.Size() != 2 {
		return nil, fmt.Errorf("he: Rotate requires a size-2 ciphertext (relinearize first); got size %d", ct.Size())
	}
	if err := checkCoeff("Rotate", ct); err != nil {
		return nil, err
	}
	outs := make([]*Ciphertext, len(steps))
	n := ev.params.N
	r := ev.params.Ring()
	digits := ev.params.DecompDigitsFor(gk.BaseBits)

	// Hoist: decompose c1 into base-w digits and transform each once. The
	// digits are lazily materialized so a steps slice of identities (or an
	// immediate key-lookup error) never pays for the decomposition.
	var digitNTT []ring.Poly
	defer func() {
		for _, d := range digitNTT {
			r.PutPoly(d)
		}
	}()
	hoist := func() {
		if digitNTT != nil {
			return
		}
		mask := (uint64(1) << uint(gk.BaseBits)) - 1
		shift := uint(gk.BaseBits)
		digitNTT = make([]ring.Poly, digits)
		for i := 0; i < digits; i++ {
			d := r.GetPoly()
			for j, c := range ct.Polys[1].Coeffs {
				d.Coeffs[j] = (c >> (uint(i) * shift)) & mask
			}
			r.NTT(d)
			digitNTT[i] = d
		}
	}

	perm := r.GetPoly()
	acc0 := r.GetPoly()
	acc1 := r.GetPoly()
	defer func() {
		r.PutPoly(perm)
		r.PutPoly(acc0)
		r.PutPoly(acc1)
	}()
	for si, step := range steps {
		g := ring.GaloisElement(step, n)
		if g == 1 {
			outs[si] = ct.Copy()
			continue
		}
		key, ok := gk.keys[g]
		if !ok {
			return nil, fmt.Errorf("he: no galois key for rotation step %d (element %d)", step, g)
		}
		amortized := digitNTT != nil
		hoist()
		keyswitchOps.Add(1)
		if amortized {
			hoistedRotations.Add(1)
		}
		k0Shoup, k1Shoup := key.shoupTables(r)
		acc0.Zero()
		acc1.Zero()
		for i := 0; i < digits; i++ {
			// NTT(φ_g(dᵢ)) is the NTT-domain permutation of the hoisted digit.
			r.AutomorphismNTT(digitNTT[i], g, perm)
			r.MulCoeffsShoupAdd(perm, key.K0[i], k0Shoup[i], acc0)
			r.MulCoeffsShoupAdd(perm, key.K1[i], k1Shoup[i], acc1)
		}
		r.INTT(acc0)
		r.INTT(acc1)
		out := NewCiphertext(ev.params, 2)
		r.Automorphism(ct.Polys[0], g, out.Polys[0])
		r.Add(out.Polys[0], acc0, out.Polys[0])
		acc1.CopyTo(out.Polys[1])
		outs[si] = out
	}
	return outs, nil
}

// ---- serialization ----------------------------------------------------

// gkMagic tags a Galois key set on the wire ("FVGK").
const gkMagic = uint32(0x4656474B)

// maxGaloisKeyCount bounds the number of rotation keys a decoder will
// accept: rotation sets are derived per model (a 5×5 conv window plus
// pooling needs a few dozen), so anything larger is hostile.
const maxGaloisKeyCount = 1024

// WriteGaloisKeys serializes gk in the seeded/bit-packed v2 codec: each
// digit ships its 32-byte K1 expansion seed plus K0 bit-packed at
// CoeffBits(q) bits per coefficient — about half the bytes of writing both
// NTT polynomials.
func WriteGaloisKeys(w io.Writer, gk *GaloisKeys) error {
	if gk == nil || !gk.Params.Valid() {
		return fmt.Errorf("he: cannot serialize nil or invalid galois keys")
	}
	if err := binary.Write(w, binary.LittleEndian, gkMagic); err != nil {
		return fmt.Errorf("he: write galois keys: %w", err)
	}
	if err := WriteParameters(w, gk.Params); err != nil {
		return err
	}
	for _, v := range []uint32{uint32(gk.BaseBits), uint32(len(gk.keys))} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("he: write galois keys header: %w", err)
		}
	}
	width := ring.CoeffBits(gk.Params.Q)
	for _, g := range gk.Elements() {
		key := gk.keys[g]
		if err := binary.Write(w, binary.LittleEndian, g); err != nil {
			return fmt.Errorf("he: write galois element: %w", err)
		}
		for i := range key.K0 {
			if _, err := w.Write(key.seeds[i][:]); err != nil {
				return fmt.Errorf("he: write galois seed: %w", err)
			}
			if err := ring.WritePolyPacked(w, key.K0[i], width); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadGaloisKeys deserializes a Galois key set, re-expanding each K1 from
// its seed. Counts are bounded before allocation: the key count is checked
// against both a hard cap and (when the reader exposes its remaining
// length, as the wire path's bytes.Reader does) the minimum encoded size
// per key, so a hostile header cannot force a large allocation.
func ReadGaloisKeys(r io.Reader) (*GaloisKeys, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("he: read galois keys: %w", err)
	}
	if magic != gkMagic {
		return nil, fmt.Errorf("he: bad galois keys magic %#x", magic)
	}
	params, err := ReadParameters(r)
	if err != nil {
		return nil, err
	}
	var baseBits, count uint32
	for _, v := range []*uint32{&baseBits, &count} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("he: read galois keys header: %w", err)
		}
	}
	if baseBits < 1 || baseBits > 60 {
		return nil, fmt.Errorf("he: galois decomposition base bits %d out of range", baseBits)
	}
	if count == 0 || count > maxGaloisKeyCount {
		return nil, fmt.Errorf("he: implausible galois key count %d", count)
	}
	digits := params.DecompDigitsFor(int(baseBits))
	width := ring.CoeffBits(params.Q)
	perKey := 8 + digits*(SeedSize+ring.PackedPolySize(params.N, width))
	if sizer, ok := r.(interface{ Len() int }); ok {
		if int(count) > sizer.Len()/perKey+1 {
			return nil, fmt.Errorf("he: galois key count %d exceeds payload (%d bytes, %d per key)",
				count, sizer.Len(), perKey)
		}
	}
	rr := params.Ring()
	m := uint64(2 * params.N)
	gk := &GaloisKeys{Params: params, BaseBits: int(baseBits), keys: make(map[uint64]*galoisKey, count)}
	for k := uint32(0); k < count; k++ {
		var g uint64
		if err := binary.Read(r, binary.LittleEndian, &g); err != nil {
			return nil, fmt.Errorf("he: read galois element: %w", err)
		}
		if g&1 == 0 || g == 1 || g >= m {
			return nil, fmt.Errorf("he: invalid galois element %d", g)
		}
		if _, ok := gk.keys[g]; ok {
			return nil, fmt.Errorf("he: duplicate galois element %d", g)
		}
		key := &galoisKey{
			K0:    make([]ring.Poly, digits),
			K1:    make([]ring.Poly, digits),
			seeds: make([][SeedSize]byte, digits),
		}
		for i := 0; i < digits; i++ {
			if _, err := io.ReadFull(r, key.seeds[i][:]); err != nil {
				return nil, fmt.Errorf("he: read galois seed: %w", err)
			}
			k0, err := ring.ReadPolyPacked(r, width)
			if err != nil {
				return nil, err
			}
			if err := rr.ValidatePoly(k0); err != nil {
				return nil, fmt.Errorf("he: galois key poly: %w", err)
			}
			a := rr.NewPoly()
			rr.UniformFromSeed(key.seeds[i], a)
			rr.NTT(a)
			key.K0[i] = k0
			key.K1[i] = a
		}
		gk.keys[g] = key
	}
	return gk, nil
}

// MarshalGaloisKeys renders gk to bytes.
func MarshalGaloisKeys(gk *GaloisKeys) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteGaloisKeys(&buf, gk); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalGaloisKeys parses gk from bytes (the wire decoder — counts are
// bounded against len(b) before allocation).
func UnmarshalGaloisKeys(b []byte) (*GaloisKeys, error) {
	return ReadGaloisKeys(bytes.NewReader(b))
}
