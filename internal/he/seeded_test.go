package he

import (
	"bytes"
	"testing"

	"hesgx/internal/ring"
)

func newSymmetricContext(t testing.TB, seed uint64) (*testContext, *SymmetricEncryptor) {
	t.Helper()
	tc := newTestContext(t, seed)
	senc, err := NewSymmetricEncryptor(tc.sk, ring.NewSeededSource(seed+100))
	if err != nil {
		t.Fatal(err)
	}
	return tc, senc
}

// TestSeededEncryptDecryptsLikePublicKey is the equivalence property behind
// the seeded upload path: a symmetric seed-compressed encryption, expanded
// on the receiver, must decrypt to exactly the plaintext that the public-key
// path produces — the two ciphertexts are interchangeable downstream.
func TestSeededEncryptDecryptsLikePublicKey(t *testing.T) {
	tc, senc := newSymmetricContext(t, 40)
	src := ring.NewSeededSource(41)
	for trial := 0; trial < 10; trial++ {
		pt := randomPlaintext(tc, src, 32)

		sc, err := senc.EncryptSeeded(pt)
		if err != nil {
			t.Fatal(err)
		}
		expanded, err := sc.Expand()
		if err != nil {
			t.Fatal(err)
		}
		fromSeeded := decryptOK(t, tc, expanded)

		ctPub, err := tc.enc.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		fromPub := decryptOK(t, tc, ctPub)

		if !fromSeeded.Poly.Equal(pt.Poly) {
			t.Fatal("seeded path lost the plaintext")
		}
		if !fromSeeded.Poly.Equal(fromPub.Poly) {
			t.Fatal("seeded and public-key paths decrypt differently")
		}
	}
}

// TestSeededExpandDeterministic pins the wire contract: the seed alone fully
// determines the expanded uniform polynomial, on any machine.
func TestSeededExpandDeterministic(t *testing.T) {
	tc, senc := newSymmetricContext(t, 50)
	pt := randomPlaintext(tc, ring.NewSeededSource(51), 16)
	sc, err := senc.EncryptSeeded(pt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Polys[1].Equal(b.Polys[1]) {
		t.Fatal("seed expansion is not deterministic")
	}
	// A different seed must give a different polynomial (overwhelmingly).
	sc.Seed[0] ^= 1
	c, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if c.Polys[1].Equal(a.Polys[1]) {
		t.Fatal("distinct seeds expanded to the same polynomial")
	}
}

// TestSeededNoiseBudgetMatchesPublicKey: seed compression must cost zero
// noise. A fresh symmetric ciphertext carries a single Gaussian error term,
// so its budget should be at least that of a public-key encryption (which
// adds u·e terms) — never lower by more than measurement jitter.
func TestSeededNoiseBudgetMatchesPublicKey(t *testing.T) {
	tc, senc := newSymmetricContext(t, 60)
	pt := randomPlaintext(tc, ring.NewSeededSource(61), 32)

	sc, err := senc.EncryptSeeded(pt)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	seededBudget, err := tc.dec.NoiseBudget(expanded)
	if err != nil {
		t.Fatal(err)
	}
	ctPub, err := tc.enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	pubBudget, err := tc.dec.NoiseBudget(ctPub)
	if err != nil {
		t.Fatal(err)
	}
	if seededBudget <= 0 {
		t.Fatalf("seeded ciphertext budget %.1f not positive", seededBudget)
	}
	if seededBudget < pubBudget-1 {
		t.Fatalf("seeded budget %.1f bits below public-key budget %.1f — seed compression is not noise-free",
			seededBudget, pubBudget)
	}
}

// TestSeededCiphertextWireRoundTrip: marshal → unmarshal → expand → decrypt
// recovers the plaintext, and the byte count matches PackedSize exactly.
func TestSeededCiphertextWireRoundTrip(t *testing.T) {
	tc, senc := newSymmetricContext(t, 70)
	pt := randomPlaintext(tc, ring.NewSeededSource(71), 32)
	sc, err := senc.EncryptSeeded(pt)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalSeededCiphertext(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != sc.PackedSize() {
		t.Fatalf("encoded %d bytes, PackedSize says %d", len(raw), sc.PackedSize())
	}
	got, err := UnmarshalSeededCiphertext(raw, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != sc.Seed || !got.C0.Equal(sc.C0) {
		t.Fatal("wire round trip changed the seeded ciphertext")
	}
	expanded, err := got.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if dec := decryptOK(t, tc, expanded); !dec.Poly.Equal(pt.Poly) {
		t.Fatal("round-tripped seeded ciphertext decrypts wrong")
	}
}

// TestSeededUploadHalvesBytes: the seeded form must be at most ~55% of the
// legacy fixed-width public-key ciphertext encoding at the same parameters.
func TestSeededUploadHalvesBytes(t *testing.T) {
	tc, senc := newSymmetricContext(t, 80)
	pt := randomPlaintext(tc, ring.NewSeededSource(81), 32)
	sc, err := senc.EncryptSeeded(pt)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := MarshalSeededCiphertext(sc)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tc.enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(legacy)) / float64(len(seeded))
	if ratio < 2 {
		t.Fatalf("seeded upload only %.2f× smaller (legacy %dB, seeded %dB)", ratio, len(legacy), len(seeded))
	}
}

// TestPackedCiphertextRoundTrip: the v2 bit-packed whole-ciphertext encoding
// decodes bit-identically via the version-dispatching reader, and the legacy
// v1 encoding still decodes through the same entry point.
func TestPackedCiphertextRoundTrip(t *testing.T) {
	tc := newTestContext(t, 90)
	ct, err := tc.enc.EncryptScalar(123)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := MarshalCiphertextPacked(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != ct.PackedSize() {
		t.Fatalf("packed %d bytes, PackedSize says %d", len(packed), ct.PackedSize())
	}
	legacy, err := MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(legacy) {
		t.Fatalf("packed encoding %dB not smaller than legacy %dB", len(packed), len(legacy))
	}
	fromPacked, err := UnmarshalCiphertextAny(packed, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	fromLegacy, err := UnmarshalCiphertextAny(legacy, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ct.Polys {
		if !fromPacked.Polys[i].Equal(ct.Polys[i]) {
			t.Fatalf("packed round trip changed poly %d", i)
		}
		if !fromLegacy.Polys[i].Equal(ct.Polys[i]) {
			t.Fatalf("legacy round trip changed poly %d", i)
		}
	}
}

// TestPackedSerializeNTTFormFailsLoudly extends the form gate to the v2
// encoders: an NTT-resident ciphertext must refuse packed serialization.
func TestPackedSerializeNTTFormFailsLoudly(t *testing.T) {
	tc := newTestContext(t, 95)
	ct, err := tc.enc.EncryptScalar(7)
	if err != nil {
		t.Fatal(err)
	}
	ct.ToNTT()
	var buf bytes.Buffer
	if err := ct.WritePacked(&buf); err == nil {
		t.Fatal("WritePacked accepted an NTT-form ciphertext")
	}
	if _, err := MarshalCiphertextPacked(ct); err == nil {
		t.Fatal("MarshalCiphertextPacked accepted an NTT-form ciphertext")
	}
}

// TestSeededCiphertextRejectsMismatch checks the hostile-input edges the
// fuzzer also covers: wrong magic, wrong params, truncation.
func TestSeededCiphertextRejectsMismatch(t *testing.T) {
	tc, senc := newSymmetricContext(t, 97)
	pt := randomPlaintext(tc, ring.NewSeededSource(98), 8)
	sc, err := senc.EncryptSeeded(pt)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalSeededCiphertext(sc)
	if err != nil {
		t.Fatal(err)
	}

	bad := bytes.Clone(raw)
	bad[0] ^= 0xFF
	if _, err := UnmarshalSeededCiphertext(bad, tc.params); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := UnmarshalSeededCiphertext(raw[:len(raw)/2], tc.params); err == nil {
		t.Fatal("truncated payload accepted")
	}
	other := tc.params
	other.T = tc.params.T + 2
	if _, err := UnmarshalSeededCiphertext(raw, other); err == nil {
		t.Fatal("mismatched parameters accepted")
	}
}

// TestSymmetricEncryptorValidation pins constructor error handling.
func TestSymmetricEncryptorValidation(t *testing.T) {
	if _, err := NewSymmetricEncryptor(nil, ring.NewSeededSource(1)); err == nil {
		t.Fatal("nil secret key accepted")
	}
	tc := newTestContext(t, 99)
	senc, err := NewSymmetricEncryptor(tc.sk, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A nil source must fall back to crypto randomness, not crash.
	pt := NewPlaintext(tc.params)
	pt.Poly.Coeffs[0] = 5
	sc, err := senc.EncryptSeeded(pt)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := sc.Expand()
	if err != nil {
		t.Fatal(err)
	}
	got := decryptOK(t, tc, expanded)
	if got.Poly.Coeffs[0] != 5 {
		t.Fatalf("decrypted %d, want 5", got.Poly.Coeffs[0])
	}
}
