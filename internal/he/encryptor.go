package he

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"hesgx/internal/ring"
)

// Encryptor encrypts plaintexts under an FV public key. Not safe for
// concurrent use (it owns a sampler); create one per goroutine.
type Encryptor struct {
	params  Parameters
	pk      *PublicKey
	sampler *ring.Sampler
	// p0NTT/p1NTT cache the public key in the evaluation domain, saving
	// two transforms per encryption.
	p0NTT ring.Poly
	p1NTT ring.Poly
}

// NewEncryptor builds an encryptor drawing randomness from src.
func NewEncryptor(pk *PublicKey, src ring.Source) (*Encryptor, error) {
	if pk == nil || !pk.Params.Valid() {
		return nil, fmt.Errorf("he: nil or invalid public key")
	}
	r := pk.Params.Ring()
	e := &Encryptor{
		params:  pk.Params,
		pk:      pk,
		sampler: ring.NewSampler(r, src),
		p0NTT:   pk.P0.Copy(),
		p1NTT:   pk.P1.Copy(),
	}
	r.NTT(e.p0NTT)
	r.NTT(e.p1NTT)
	return e, nil
}

// Encrypt computes ct = ([p0 u + e1 + Δm]_q, [p1 u + e2]_q), the Encrypt
// algorithm from §II-B.
func (e *Encryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	if err := pt.Validate(); err != nil {
		return nil, fmt.Errorf("he: encrypt: %w", err)
	}
	r := e.params.Ring()
	u := r.NewPoly()
	e1 := r.NewPoly()
	e2 := r.NewPoly()
	e.sampler.Ternary(u)
	e.sampler.Gaussian(e1)
	e.sampler.Gaussian(e2)

	ct := NewCiphertext(e.params, 2)
	// Transform u once; both products use the cached NTT-domain key.
	uNTT := u
	r.NTT(uNTT)
	// c0 = p0*u + e1 + delta*m
	r.MulCoeffs(e.p0NTT, uNTT, ct.Polys[0])
	r.INTT(ct.Polys[0])
	r.Add(ct.Polys[0], e1, ct.Polys[0])
	dm := r.NewPoly()
	r.MulScalar(pt.Poly, e.params.Delta(), dm)
	r.Add(ct.Polys[0], dm, ct.Polys[0])
	// c1 = p1*u + e2
	r.MulCoeffs(e.p1NTT, uNTT, ct.Polys[1])
	r.INTT(ct.Polys[1])
	r.Add(ct.Polys[1], e2, ct.Polys[1])
	return ct, nil
}

// EncryptScalar encrypts a single integer value (mod T) placed in the
// constant coefficient. Most callers should use an encoder instead.
func (e *Encryptor) EncryptScalar(v uint64) (*Ciphertext, error) {
	pt := NewPlaintext(e.params)
	pt.Poly.Coeffs[0] = v % e.params.T
	return e.Encrypt(pt)
}

// EncryptZero returns a fresh encryption of zero, used by the enclave's
// re-encryption path and by tests.
func (e *Encryptor) EncryptZero() (*Ciphertext, error) {
	return e.Encrypt(NewPlaintext(e.params))
}

// SymmetricEncryptor encrypts plaintexts directly under the FV secret key,
// producing seed-compressible ciphertexts: ct = (-(a·s + e) + Δm, a) where
// the uniform a is expanded from a 32-byte ChaCha8 seed, so only (c0, seed)
// needs to travel. Clients that already hold s — which ours do, the enclave
// delivers it in the attestation user-data field (§IV-B) — use this for
// uploads at roughly half the bytes of public-key encryptions, with the
// same noise term e. Not safe for concurrent use (it owns a sampler).
type SymmetricEncryptor struct {
	params  Parameters
	sk      *SecretKey
	sampler *ring.Sampler
	src     ring.Source
}

// NewSymmetricEncryptor builds a secret-key encryptor drawing error terms
// and expansion seeds from src. A nil src falls back to crypto randomness —
// the safe default for anything but reproducible tests.
func NewSymmetricEncryptor(sk *SecretKey, src ring.Source) (*SymmetricEncryptor, error) {
	if sk == nil || !sk.Params.Valid() {
		return nil, fmt.Errorf("he: nil or invalid secret key")
	}
	if src == nil {
		src = ring.NewCryptoSource()
	}
	if len(sk.sNTT.Coeffs) == 0 {
		sk.precompute()
	}
	return &SymmetricEncryptor{
		params:  sk.Params,
		sk:      sk,
		sampler: ring.NewSampler(sk.Params.Ring(), src),
		src:     src,
	}, nil
}

// EncryptSeeded computes the symmetric encryption ct = (-(a·s + e) + Δm, a)
// and returns it in seed-compressed form: c0 plus the seed that a expands
// from. Decryption sees c0 + a·s = Δm - e, i.e. exactly the noise profile of
// the Encrypt algorithm's error term — seeding costs no noise budget.
func (e *SymmetricEncryptor) EncryptSeeded(pt *Plaintext) (*SeededCiphertext, error) {
	if err := pt.Validate(); err != nil {
		return nil, fmt.Errorf("he: encrypt seeded: %w", err)
	}
	sc := &SeededCiphertext{Params: e.params}
	for i := 0; i < SeedSize; i += 8 {
		binary.LittleEndian.PutUint64(sc.Seed[i:], e.src.Uint64())
	}
	r := e.params.Ring()
	a := r.GetPoly()
	defer r.PutPoly(a)
	r.UniformFromSeed(sc.Seed, a)

	// c0 = -(a*s + e) + delta*m, with a*s via the cached NTT-domain secret.
	c0 := r.NewPoly()
	r.MulNTTLazy(a, e.sk.sNTT, c0)
	errPoly := r.GetPoly()
	defer r.PutPoly(errPoly)
	e.sampler.Gaussian(errPoly)
	r.Add(c0, errPoly, c0)
	r.Neg(c0, c0)
	r.MulScalarAdd(pt.Poly, e.params.Delta(), c0)
	sc.C0 = c0
	return sc, nil
}

// Encrypt is EncryptSeeded followed by expansion — a full two-polynomial
// symmetric ciphertext for callers that do not care about wire size.
func (e *SymmetricEncryptor) Encrypt(pt *Plaintext) (*Ciphertext, error) {
	sc, err := e.EncryptSeeded(pt)
	if err != nil {
		return nil, err
	}
	return sc.Expand()
}

// Decryptor decrypts FV ciphertexts with a secret key. Safe for concurrent
// use: decryption is deterministic and allocates its own scratch space.
type Decryptor struct {
	params Parameters
	sk     *SecretKey
}

// NewDecryptor builds a decryptor for sk.
func NewDecryptor(sk *SecretKey) (*Decryptor, error) {
	if sk == nil || !sk.Params.Valid() {
		return nil, fmt.Errorf("he: nil or invalid secret key")
	}
	if len(sk.sNTT.Coeffs) == 0 {
		sk.precompute()
	}
	return &Decryptor{params: sk.Params, sk: sk}, nil
}

// phase computes [c0 + c1 s (+ c2 s^2)]_q in coefficient domain.
func (d *Decryptor) phase(ct *Ciphertext) ring.Poly {
	r := d.params.Ring()
	acc := ct.Polys[1].Copy()
	r.NTT(acc)
	r.MulCoeffs(acc, d.sk.sNTT, acc)
	if ct.Size() == 3 {
		c2 := ct.Polys[2].Copy()
		r.NTT(c2)
		r.MulCoeffs(c2, d.sk.s2NTT, c2)
		r.Add(acc, c2, acc)
	}
	r.INTT(acc)
	r.Add(acc, ct.Polys[0], acc)
	return acc
}

// Decrypt recovers the plaintext: m = round(t*[c0+c1 s]_q / q) mod t,
// the Decrypt algorithm from §II-B.
func (d *Decryptor) Decrypt(ct *Ciphertext) (*Plaintext, error) {
	if err := ct.Validate(); err != nil {
		return nil, fmt.Errorf("he: decrypt: %w", err)
	}
	if ct.Form != CoeffForm {
		return nil, fmt.Errorf("he: decrypt: ciphertext is %v form; call ToCoeff first", ct.Form)
	}
	if !ct.Params.Equal(d.params) {
		return nil, fmt.Errorf("he: decrypt: ciphertext parameters mismatch")
	}
	w := d.phase(ct)
	pt := NewPlaintext(d.params)
	t := d.params.T
	q := d.params.Q
	for i, c := range w.Coeffs {
		// round(t*c/q) computed exactly; c < q < 2^58, t < 2^58.
		v := scaleRound(c, t, q)
		pt.Poly.Coeffs[i] = v % t
	}
	return pt, nil
}

// scaleRound returns round(c*t/q) for c < q using 128-bit exact arithmetic.
func scaleRound(c, t, q uint64) uint64 {
	hi, lo := bits.Mul64(c, t)
	lo, carry := bits.Add64(lo, q/2, 0)
	hi += carry
	// hi < q because c < q and t < q, so Div64's precondition holds.
	quo, _ := bits.Div64(hi, lo, q)
	return quo
}

// NoiseBudget returns the remaining invariant noise budget of ct in bits:
// log2(q/(2t)) - log2(|v|) where v is the centered decryption noise. A
// non-positive budget means decryption is no longer guaranteed correct.
// Requires the secret key, so only key owners (or the enclave) can call it.
func (d *Decryptor) NoiseBudget(ct *Ciphertext) (float64, error) {
	_, budget, err := d.DecryptWithBudget(ct)
	return budget, err
}

// DecryptWithBudget decrypts ct and simultaneously measures its remaining
// invariant noise budget from the same phase computation — the enclave's
// refresh path uses this so noise telemetry costs no extra NTTs beyond the
// decryption it already performs (§IV-E).
func (d *Decryptor) DecryptWithBudget(ct *Ciphertext) (*Plaintext, float64, error) {
	if err := ct.Validate(); err != nil {
		return nil, 0, fmt.Errorf("he: decrypt: %w", err)
	}
	if ct.Form != CoeffForm {
		return nil, 0, fmt.Errorf("he: decrypt: ciphertext is %v form; call ToCoeff first", ct.Form)
	}
	if !ct.Params.Equal(d.params) {
		return nil, 0, fmt.Errorf("he: decrypt: ciphertext parameters mismatch")
	}
	r := d.params.Ring()
	w := d.phase(ct)
	pt := NewPlaintext(d.params)
	t := d.params.T
	q := d.params.Q
	delta := d.params.Delta()
	maxAbs := int64(0)
	for i, c := range w.Coeffs {
		m := scaleRound(c, t, q) % t
		pt.Poly.Coeffs[i] = m
		// v = c - delta*m (centered) is the Δ-domain noise of this
		// coefficient; the budget is set by the worst one.
		vm := r.Mod.Sub(c, r.Mod.Mul(delta, m))
		v := r.Mod.Centered(vm)
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	budget := d.params.MaxNoiseBudget() - math.Log2(float64(maxAbs))
	return pt, budget, nil
}
