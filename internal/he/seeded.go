package he

import (
	"encoding/binary"
	"fmt"
	"io"

	"hesgx/internal/ring"
)

// seededCtMagic tags a seed-compressed symmetric ciphertext frame.
const seededCtMagic = uint32(0xC17E5EED)

// Seeded ciphertext wire-format flags.
const (
	// sctFlagPacked marks a bit-packed c0 vector (always set by this writer).
	sctFlagPacked byte = 1 << 0
)

// SeedSize is the byte length of the ChaCha8 expansion seed that replaces
// the uniform polynomial on the wire.
const SeedSize = 32

// SeededCiphertext is the seed-compressed form of a fresh symmetric FV
// encryption ct = (-(a·s + e) + Δm, a): instead of shipping both
// polynomials, the wire carries c0 plus the 32-byte ChaCha8 seed that `a`
// was expanded from. The receiver re-expands the seed once, roughly halving
// upload bytes with zero noise-budget cost (the noise term is the same e).
// Only fresh encryptions are seed-compressible — once an evaluator touches
// c1 the seed no longer describes it.
type SeededCiphertext struct {
	Params Parameters
	C0     ring.Poly
	Seed   [SeedSize]byte
}

// Expand reconstructs the full two-polynomial ciphertext by re-deriving
// a = Uniform(seed). The result is a coefficient-form ciphertext
// indistinguishable from one shipped whole.
func (sc *SeededCiphertext) Expand() (*Ciphertext, error) {
	if !sc.Params.Valid() {
		return nil, fmt.Errorf("he: seeded ciphertext has no parameters")
	}
	r := sc.Params.Ring()
	if err := r.ValidatePoly(sc.C0); err != nil {
		return nil, fmt.Errorf("he: seeded ciphertext c0: %w", err)
	}
	a := r.NewPoly()
	r.UniformFromSeed(sc.Seed, a)
	return &Ciphertext{Params: sc.Params, Polys: []ring.Poly{sc.C0, a}, Form: CoeffForm}, nil
}

// PackedSize returns the exact serialized size of Write for sc.
func (sc *SeededCiphertext) PackedSize() int {
	return SeededCiphertextWireSize(sc.Params)
}

// SeededCiphertextWireSize returns the encoded size of a seeded ciphertext
// under params. Every seeded frame for one parameter set is the same length,
// so decoders can bound an element count against the payload bytes actually
// present before allocating count-sized storage.
func SeededCiphertextWireSize(params Parameters) int {
	width := ring.CoeffBits(params.Q)
	return 25 + SeedSize + ring.PackedPolySize(params.N, width)
}

// Write serializes the seeded ciphertext:
// [magic u32][flags u8][n u32][q u64][t u64][seed 32B][packed c0].
func (sc *SeededCiphertext) Write(w io.Writer) error {
	hdr := []any{
		seededCtMagic,
		sctFlagPacked,
		uint32(sc.Params.N),
		sc.Params.Q,
		sc.Params.T,
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("he: write seeded ciphertext header: %w", err)
		}
	}
	if _, err := w.Write(sc.Seed[:]); err != nil {
		return fmt.Errorf("he: write seeded ciphertext seed: %w", err)
	}
	if err := ring.WritePolyPacked(w, sc.C0, ring.CoeffBits(sc.Params.Q)); err != nil {
		return fmt.Errorf("he: write seeded ciphertext c0: %w", err)
	}
	return nil
}

// ReadSeededCiphertext deserializes and validates a seeded ciphertext
// against params. Hostile seeds are harmless (any seed expands to some
// uniform polynomial); hostile lengths and coefficients error before use.
func ReadSeededCiphertext(r io.Reader, params Parameters) (*SeededCiphertext, error) {
	var (
		magic, n uint32
		flags    byte
		q, t     uint64
	)
	for _, v := range []any{&magic, &flags, &n, &q, &t} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("he: read seeded ciphertext header: %w", err)
		}
	}
	if magic != seededCtMagic {
		return nil, fmt.Errorf("he: bad seeded ciphertext magic %#x", magic)
	}
	if flags&sctFlagPacked == 0 {
		return nil, fmt.Errorf("he: seeded ciphertext without packed flag (flags %#x)", flags)
	}
	if int(n) != params.N || q != params.Q || t != params.T {
		return nil, fmt.Errorf("he: seeded ciphertext parameters (n=%d q=%d t=%d) do not match (n=%d q=%d t=%d)",
			n, q, t, params.N, params.Q, params.T)
	}
	sc := &SeededCiphertext{Params: params}
	if _, err := io.ReadFull(r, sc.Seed[:]); err != nil {
		return nil, fmt.Errorf("he: read seeded ciphertext seed: %w", err)
	}
	c0, err := ring.ReadPolyPacked(r, ring.CoeffBits(params.Q))
	if err != nil {
		return nil, fmt.Errorf("he: read seeded ciphertext c0: %w", err)
	}
	if err := params.Ring().ValidatePoly(c0); err != nil {
		return nil, fmt.Errorf("he: seeded ciphertext c0: %w", err)
	}
	sc.C0 = c0
	return sc, nil
}

// MarshalSeededCiphertext renders sc to bytes.
func MarshalSeededCiphertext(sc *SeededCiphertext) ([]byte, error) {
	buf := make([]byte, 0, sc.PackedSize())
	w := newAppendWriter(buf)
	if err := sc.Write(w); err != nil {
		return nil, err
	}
	return w.b, nil
}

// appendWriter is a minimal io.Writer over an append-grown slice, avoiding
// the bookkeeping of bytes.Buffer for size-precomputed encodes.
type appendWriter struct{ b []byte }

func newAppendWriter(b []byte) *appendWriter { return &appendWriter{b: b} }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
