package he

import (
	"fmt"
	"sync"

	"hesgx/internal/ring"
	"hesgx/internal/u128"
)

// tensorMode selects the ciphertext-multiplication backend.
type tensorMode int

const (
	// tensorRNS is the default: word-size RNS modulus-chain multiply
	// (ring.RNSMultiplier) — O(limbs) word operations per coefficient,
	// per-limb goroutine parallelism, every supported degree.
	tensorRNS tensorMode = iota
	// tensorOracle is the legacy single-modulus u128 path (Garner CRT into
	// a 128-bit accumulator), kept as a bit-exact correctness oracle;
	// selected by Parameters.WithTensorOracle, limited to n ≤ 4096.
	tensorOracle
	// tensorSchoolbook is the O(n²) integer-convolution reference.
	tensorSchoolbook
)

// Evaluator performs homomorphic operations on FV ciphertexts. It is
// immutable after construction (the lazily built multiplier is internally
// synchronized) and safe for concurrent use.
type Evaluator struct {
	params Parameters
	mode   tensorMode
	// tensor is the u128 oracle backend (tensorOracle mode only).
	tensor *ring.TensorMultiplier
	// rns is the default multiply backend, built on first use so
	// evaluators that never tensor (plaintext-only layers, hybrid refresh
	// paths) skip the auxiliary-basis construction entirely.
	rnsOnce sync.Once
	rns     *ring.RNSMultiplier
	rnsErr  error
}

// EvaluatorOption customizes evaluator construction.
type EvaluatorOption func(*evaluatorConfig)

type evaluatorConfig struct {
	schoolbook bool
}

// WithSchoolbookTensor forces the O(n^2) schoolbook path for ciphertext
// multiplication — the reference implementation, kept for ablation
// benchmarks and cross-checking (it is also the only exact oracle at
// n = 8192, where the u128 NTT-CRT path exceeds its 128-bit bound).
func WithSchoolbookTensor() EvaluatorOption {
	return func(c *evaluatorConfig) { c.schoolbook = true }
}

// NewEvaluator builds an evaluator for the parameter set. Multiplication
// dispatch: the RNS modulus chain by default, the u128 oracle when the
// parameters carry WithTensorOracle, the schoolbook reference under
// WithSchoolbookTensor (which wins over the params flag).
func NewEvaluator(params Parameters, opts ...EvaluatorOption) (*Evaluator, error) {
	if !params.Valid() {
		return nil, fmt.Errorf("he: invalid parameters")
	}
	cfg := evaluatorConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	ev := &Evaluator{params: params, mode: tensorRNS}
	switch {
	case cfg.schoolbook:
		ev.mode = tensorSchoolbook
	case params.TensorOracle:
		ev.mode = tensorOracle
		tm, err := ring.NewTensorMultiplier(params.N)
		if err != nil {
			return nil, fmt.Errorf("he: tensor multiplier: %w", err)
		}
		ev.tensor = tm
	}
	return ev, nil
}

// rnsMultiplier returns the lazily constructed RNS backend.
func (ev *Evaluator) rnsMultiplier() (*ring.RNSMultiplier, error) {
	ev.rnsOnce.Do(func() {
		ev.rns, ev.rnsErr = ring.NewRNSMultiplier(ev.params.Ring(), ev.params.T)
	})
	if ev.rnsErr != nil {
		return nil, fmt.Errorf("he: rns multiplier: %w", ev.rnsErr)
	}
	return ev.rns, nil
}

// tensorConvolve computes the exact negacyclic convolution of centered
// operands on the non-RNS backends.
func (ev *Evaluator) tensorConvolve(a, b []int64) ([]u128.Int128, error) {
	if ev.tensor != nil {
		return ev.tensor.MulExact(a, b)
	}
	return ring.NegacyclicConvolveInt(a, b), nil
}

func (ev *Evaluator) check(cts ...*Ciphertext) error {
	for _, ct := range cts {
		if ct == nil {
			return fmt.Errorf("he: nil ciphertext")
		}
		if !ct.Params.Equal(ev.params) {
			return fmt.Errorf("he: ciphertext parameter mismatch")
		}
	}
	return nil
}

// checkCoeff rejects evaluation-form inputs for ops only defined on
// coefficient-domain ciphertexts (tensor products, relinearization).
func checkCoeff(op string, cts ...*Ciphertext) error {
	for _, ct := range cts {
		if ct.Form != CoeffForm {
			return fmt.Errorf("he: %s requires coefficient-form ciphertexts; got %v form (call ToCoeff)", op, ct.Form)
		}
	}
	return nil
}

// Add returns ct0 + ct1 (the Add algorithm in §II-B), extended
// componentwise to size-3 ciphertexts. Addition is pointwise in either
// domain, but both operands must be in the same one.
func (ev *Evaluator) Add(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if err := ev.check(ct0, ct1); err != nil {
		return nil, err
	}
	if ct0.Form != ct1.Form {
		return nil, fmt.Errorf("he: Add form mismatch (%v vs %v)", ct0.Form, ct1.Form)
	}
	r := ev.params.Ring()
	size := max(ct0.Size(), ct1.Size())
	out := NewCiphertext(ev.params, size)
	out.Form = ct0.Form
	for i := 0; i < size; i++ {
		switch {
		case i < ct0.Size() && i < ct1.Size():
			r.Add(ct0.Polys[i], ct1.Polys[i], out.Polys[i])
		case i < ct0.Size():
			ct0.Polys[i].CopyTo(out.Polys[i])
		default:
			ct1.Polys[i].CopyTo(out.Polys[i])
		}
	}
	return out, nil
}

// Sub returns ct0 - ct1.
func (ev *Evaluator) Sub(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	neg, err := ev.Neg(ct1)
	if err != nil {
		return nil, err
	}
	return ev.Add(ct0, neg)
}

// Neg returns -ct. Negation is pointwise in either domain.
func (ev *Evaluator) Neg(ct *Ciphertext) (*Ciphertext, error) {
	if err := ev.check(ct); err != nil {
		return nil, err
	}
	r := ev.params.Ring()
	out := NewCiphertext(ev.params, ct.Size())
	out.Form = ct.Form
	for i := range ct.Polys {
		r.Neg(ct.Polys[i], out.Polys[i])
	}
	return out, nil
}

// AddPlain returns ct + pt: the plaintext is scaled by Δ and added to c0.
// Works on either form (the scaled plaintext is transformed to match).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	out := ct.Copy()
	if err := ev.AddPlainInto(out, pt); err != nil {
		return nil, err
	}
	return out, nil
}

// AddPlainInto computes ct += pt in place with pooled scratch — the
// allocation-free bias add of the linear layers. The scaled plaintext is
// lifted into ct's domain, so NTT-resident accumulators take the bias
// without leaving evaluation form.
func (ev *Evaluator) AddPlainInto(ct *Ciphertext, pt *Plaintext) error {
	if err := ev.check(ct); err != nil {
		return err
	}
	if err := pt.Validate(); err != nil {
		return fmt.Errorf("he: add plain: %w", err)
	}
	r := ev.params.Ring()
	dm := r.GetPoly()
	r.MulScalar(pt.Poly, ev.params.Delta(), dm)
	if ct.Form == NTTForm {
		r.NTT(dm)
	}
	r.Add(ct.Polys[0], dm, ct.Polys[0])
	r.PutPoly(dm)
	return nil
}

// SubPlain returns ct - pt.
func (ev *Evaluator) SubPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if err := ev.check(ct); err != nil {
		return nil, err
	}
	if err := pt.Validate(); err != nil {
		return nil, fmt.Errorf("he: sub plain: %w", err)
	}
	r := ev.params.Ring()
	out := ct.Copy()
	dm := r.GetPoly()
	r.MulScalar(pt.Poly, ev.params.Delta(), dm)
	if ct.Form == NTTForm {
		r.NTT(dm)
	}
	r.Sub(out.Polys[0], dm, out.Polys[0])
	r.PutPoly(dm)
	return out, nil
}

// liftPlain maps a plaintext into R_q with the noise-minimizing centered
// lift and returns it in NTT domain.
func (ev *Evaluator) liftPlain(pt *Plaintext) ring.Poly {
	r := ev.params.Ring()
	lifted := r.NewPoly()
	for i, c := range pt.Poly.Coeffs {
		lifted.Coeffs[i] = ev.params.LiftCentered(c)
	}
	r.NTT(lifted)
	return lifted
}

// MulPlain returns ct * pt (ciphertext × plaintext, the C×P operation the
// paper counts in Fig. 4). The plaintext is lifted centered into R_q.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if err := ev.check(ct); err != nil {
		return nil, err
	}
	if err := pt.Validate(); err != nil {
		return nil, fmt.Errorf("he: mul plain: %w", err)
	}
	return ev.mulPlainNTT(ct, ev.liftPlain(pt), nil)
}

// PlainOperand is a plaintext pre-lifted into NTT form, for repeated
// multiplication against many ciphertexts (encoded model weights). Shoup is
// the per-coefficient Shoup companion of NTT, precomputed so every pointwise
// product against the operand uses the cheaper MulShoup.
type PlainOperand struct {
	Params Parameters
	NTT    ring.Poly
	Shoup  []uint64
}

// PrepareOperand lifts and transforms pt once; MulPlainOperand then skips
// that work on every use.
func (ev *Evaluator) PrepareOperand(pt *Plaintext) (*PlainOperand, error) {
	if err := pt.Validate(); err != nil {
		return nil, fmt.Errorf("he: prepare operand: %w", err)
	}
	r := ev.params.Ring()
	lifted := ev.liftPlain(pt)
	return &PlainOperand{Params: ev.params, NTT: lifted, Shoup: r.ShoupPrecompute(lifted)}, nil
}

// MulPlainOperand multiplies ct by a prepared plaintext operand. A
// coefficient-form ct pays a forward+inverse NTT; an NTT-form ct multiplies
// pointwise with no transforms at all and stays in evaluation form.
func (ev *Evaluator) MulPlainOperand(ct *Ciphertext, op *PlainOperand) (*Ciphertext, error) {
	if err := ev.check(ct); err != nil {
		return nil, err
	}
	if !op.Params.Equal(ev.params) {
		return nil, fmt.Errorf("he: operand parameter mismatch")
	}
	return ev.mulPlainNTT(ct, op.NTT, op.Shoup)
}

// MulPlainOperandAddInto computes acc += ct * op entirely in evaluation
// form: one fused pointwise multiply-accumulate per component, zero NTTs,
// zero allocations. This is the inner-loop kernel of the NTT-resident
// conv/FC path; both acc and ct must already be NTT form and the same size.
func (ev *Evaluator) MulPlainOperandAddInto(acc, ct *Ciphertext, op *PlainOperand) error {
	if err := ev.check(acc, ct); err != nil {
		return err
	}
	if !op.Params.Equal(ev.params) {
		return fmt.Errorf("he: operand parameter mismatch")
	}
	if acc.Form != NTTForm || ct.Form != NTTForm {
		return fmt.Errorf("he: MulPlainOperandAddInto requires NTT-form ciphertexts (acc %v, ct %v)", acc.Form, ct.Form)
	}
	if acc.Size() != ct.Size() {
		return fmt.Errorf("he: MulPlainOperandAddInto size mismatch %d vs %d", acc.Size(), ct.Size())
	}
	r := ev.params.Ring()
	for i := range ct.Polys {
		r.MulCoeffsShoupAdd(ct.Polys[i], op.NTT, op.Shoup, acc.Polys[i])
	}
	return nil
}

// mulPlainNTT multiplies ct by an NTT-domain operand. mShoup may be nil
// (falls back to Barrett products); both give exact results mod q.
func (ev *Evaluator) mulPlainNTT(ct *Ciphertext, mNTT ring.Poly, mShoup []uint64) (*Ciphertext, error) {
	r := ev.params.Ring()
	out := NewCiphertext(ev.params, ct.Size())
	out.Form = ct.Form
	if ct.Form == NTTForm {
		for i := range ct.Polys {
			if mShoup != nil {
				r.MulCoeffsShoup(ct.Polys[i], mNTT, mShoup, out.Polys[i])
			} else {
				r.MulCoeffs(ct.Polys[i], mNTT, out.Polys[i])
			}
		}
		return out, nil
	}
	for i := range ct.Polys {
		r.MulNTTLazy(ct.Polys[i], mNTT, out.Polys[i])
	}
	return out, nil
}

// Mul returns the size-3 tensor product of two size-2 ciphertexts (the
// Multiply algorithm in §II-B): each output component is
// round(t/q * (c_i ⊛ d_j)) with exact integer convolution. Relinearize (or
// an enclave refresh) reduces the result back to size 2.
func (ev *Evaluator) Mul(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	if err := ev.check(ct0, ct1); err != nil {
		return nil, err
	}
	if ct0.Size() != 2 || ct1.Size() != 2 {
		return nil, fmt.Errorf("he: Mul requires size-2 ciphertexts (relinearize first); got %d and %d", ct0.Size(), ct1.Size())
	}
	if err := checkCoeff("Mul", ct0, ct1); err != nil {
		return nil, err
	}
	if ev.mode == tensorRNS {
		rm, err := ev.rnsMultiplier()
		if err != nil {
			return nil, err
		}
		out := NewCiphertext(ev.params, 3)
		rm.MulScaleRound(ct0.Polys[0], ct0.Polys[1], ct1.Polys[0], ct1.Polys[1],
			out.Polys[0], out.Polys[1], out.Polys[2])
		return out, nil
	}
	r := ev.params.Ring()
	t := ev.params.T
	q := ev.params.Q

	c0 := r.GetCentered()
	c1 := r.GetCentered()
	d0 := r.GetCentered()
	d1 := r.GetCentered()
	defer func() {
		r.PutCentered(c0)
		r.PutCentered(c1)
		r.PutCentered(d0)
		r.PutCentered(d1)
	}()
	r.CenteredInto(ct0.Polys[0], c0)
	r.CenteredInto(ct0.Polys[1], c1)
	r.CenteredInto(ct1.Polys[0], d0)
	r.CenteredInto(ct1.Polys[1], d1)

	out := NewCiphertext(ev.params, 3)
	// out0 = round(t/q * c0*d0)
	v00, err := ev.tensorConvolve(c0, d0)
	if err != nil {
		return nil, err
	}
	// out1 = round(t/q * (c0*d1 + c1*d0)) — sum the exact convolutions
	// before scaling so rounding happens once.
	x, err := ev.tensorConvolve(c0, d1)
	if err != nil {
		return nil, err
	}
	y, err := ev.tensorConvolve(c1, d0)
	if err != nil {
		return nil, err
	}
	// out2 = round(t/q * c1*d1)
	v11, err := ev.tensorConvolve(c1, d1)
	if err != nil {
		return nil, err
	}
	for k := range v00 {
		out.Polys[0].Coeffs[k] = v00[k].ScaleRoundMod(t, q, q)
		out.Polys[1].Coeffs[k] = x[k].Add(y[k]).ScaleRoundMod(t, q, q)
		out.Polys[2].Coeffs[k] = v11[k].ScaleRoundMod(t, q, q)
	}
	return out, nil
}

// Square returns ct*ct, saving one convolution versus Mul.
func (ev *Evaluator) Square(ct *Ciphertext) (*Ciphertext, error) {
	if err := ev.check(ct); err != nil {
		return nil, err
	}
	if ct.Size() != 2 {
		return nil, fmt.Errorf("he: Square requires a size-2 ciphertext")
	}
	if err := checkCoeff("Square", ct); err != nil {
		return nil, err
	}
	if ev.mode == tensorRNS {
		rm, err := ev.rnsMultiplier()
		if err != nil {
			return nil, err
		}
		out := NewCiphertext(ev.params, 3)
		rm.SquareScaleRound(ct.Polys[0], ct.Polys[1],
			out.Polys[0], out.Polys[1], out.Polys[2])
		return out, nil
	}
	r := ev.params.Ring()
	t := ev.params.T
	q := ev.params.Q
	c0 := r.GetCentered()
	c1 := r.GetCentered()
	defer func() {
		r.PutCentered(c0)
		r.PutCentered(c1)
	}()
	r.CenteredInto(ct.Polys[0], c0)
	r.CenteredInto(ct.Polys[1], c1)
	out := NewCiphertext(ev.params, 3)
	v00, err := ev.tensorConvolve(c0, c0)
	if err != nil {
		return nil, err
	}
	cross, err := ev.tensorConvolve(c0, c1)
	if err != nil {
		return nil, err
	}
	v11, err := ev.tensorConvolve(c1, c1)
	if err != nil {
		return nil, err
	}
	for k := range v00 {
		out.Polys[0].Coeffs[k] = v00[k].ScaleRoundMod(t, q, q)
		out.Polys[1].Coeffs[k] = cross[k].Add(cross[k]).ScaleRoundMod(t, q, q)
		out.Polys[2].Coeffs[k] = v11[k].ScaleRoundMod(t, q, q)
	}
	return out, nil
}

// Relinearize reduces a size-3 ciphertext to size 2 using evaluation keys:
// c2 is decomposed in base w and folded through the keys, trading ciphertext
// size for a small additive noise term. Size-2 inputs pass through unchanged.
func (ev *Evaluator) Relinearize(ct *Ciphertext, ek *EvaluationKeys) (*Ciphertext, error) {
	if err := ev.check(ct); err != nil {
		return nil, err
	}
	if ct.Size() == 2 {
		return ct.Copy(), nil
	}
	if err := checkCoeff("Relinearize", ct); err != nil {
		return nil, err
	}
	if ek == nil || !ek.Params.Equal(ev.params) {
		return nil, fmt.Errorf("he: missing or mismatched evaluation keys")
	}
	r := ev.params.Ring()
	digits := ev.params.DecompDigits()
	if len(ek.K0) < digits {
		return nil, fmt.Errorf("he: evaluation keys have %d digits, need %d", len(ek.K0), digits)
	}
	out := NewCiphertext(ev.params, 2)
	ct.Polys[0].CopyTo(out.Polys[0])
	ct.Polys[1].CopyTo(out.Polys[1])

	// Decompose c2 into base-w digits: c2 = sum_i digit_i * w^i. Each digit
	// is transformed once and folded through both key components with the
	// fused Shoup multiply-accumulate (tables precomputed lazily on the
	// keys), so the loop body is one NTT plus two MulShoup MAC passes —
	// pooled scratch, no per-digit allocation.
	k0Shoup, k1Shoup := ek.shoupTables(r)
	mask := (uint64(1) << uint(ev.params.DecompBaseBits)) - 1
	shift := uint(ev.params.DecompBaseBits)
	digitPoly := r.GetPoly()
	acc0 := r.GetPoly()
	acc1 := r.GetPoly()
	acc0.Zero()
	acc1.Zero()
	for i := 0; i < digits; i++ {
		for j, c := range ct.Polys[2].Coeffs {
			digitPoly.Coeffs[j] = (c >> (uint(i) * shift)) & mask
		}
		r.NTT(digitPoly)
		r.MulCoeffsShoupAdd(digitPoly, ek.K0[i], k0Shoup[i], acc0)
		r.MulCoeffsShoupAdd(digitPoly, ek.K1[i], k1Shoup[i], acc1)
	}
	r.INTT(acc0)
	r.INTT(acc1)
	r.Add(out.Polys[0], acc0, out.Polys[0])
	r.Add(out.Polys[1], acc1, out.Polys[1])
	r.PutPoly(digitPoly)
	r.PutPoly(acc0)
	r.PutPoly(acc1)
	return out, nil
}

// MulRelin multiplies and immediately relinearizes, the common composition
// in pure-HE inference.
func (ev *Evaluator) MulRelin(ct0, ct1 *Ciphertext, ek *EvaluationKeys) (*Ciphertext, error) {
	prod, err := ev.Mul(ct0, ct1)
	if err != nil {
		return nil, err
	}
	return ev.Relinearize(prod, ek)
}

// AddMany sums a non-empty slice of ciphertexts.
func (ev *Evaluator) AddMany(cts []*Ciphertext) (*Ciphertext, error) {
	if len(cts) == 0 {
		return nil, fmt.Errorf("he: AddMany of empty slice")
	}
	acc := cts[0].Copy()
	var err error
	for _, ct := range cts[1:] {
		acc, err = ev.Add(acc, ct)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// MulScalar multiplies a ciphertext by a small integer constant (mod T) by
// scaling every component; this is cheaper than MulPlain for scalars.
// Scalar multiplication is pointwise in either domain.
func (ev *Evaluator) MulScalar(ct *Ciphertext, k uint64) (*Ciphertext, error) {
	if err := ev.check(ct); err != nil {
		return nil, err
	}
	r := ev.params.Ring()
	lifted := ev.params.LiftCentered(k % ev.params.T)
	out := NewCiphertext(ev.params, ct.Size())
	out.Form = ct.Form
	for i := range ct.Polys {
		r.MulScalar(ct.Polys[i], lifted, out.Polys[i])
	}
	return out, nil
}

// MulScalarAddInto computes acc += k*ct in place — the fused
// multiply-accumulate the inference engines use for weighted sums, which
// avoids allocating a ciphertext per term. acc and ct must have the same
// size and form.
func (ev *Evaluator) MulScalarAddInto(acc, ct *Ciphertext, k uint64) error {
	if err := ev.check(acc, ct); err != nil {
		return err
	}
	if acc.Form != ct.Form {
		return fmt.Errorf("he: MulScalarAddInto form mismatch (%v vs %v)", acc.Form, ct.Form)
	}
	if acc.Size() != ct.Size() {
		return fmt.Errorf("he: MulScalarAddInto size mismatch %d vs %d", acc.Size(), ct.Size())
	}
	r := ev.params.Ring()
	lifted := ev.params.LiftCentered(k % ev.params.T)
	for i := range ct.Polys {
		r.MulScalarAdd(ct.Polys[i], lifted, acc.Polys[i])
	}
	return nil
}
