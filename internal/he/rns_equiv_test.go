package he

import (
	"testing"

	"hesgx/internal/ring"
)

// The RNS↔oracle equivalence suite: the default RNS modulus-chain multiply
// and the single-modulus u128 oracle path (Parameters.WithTensorOracle)
// must produce bit-identical ciphertexts for every tensor operation, at
// every supported degree the oracle serves. CI runs this under -race in the
// rns-core job.

// equivContext builds two evaluators over the same keys: the default (RNS)
// one and the oracle one.
func equivContext(t *testing.T, n int, tmod uint64, seed uint64) (*testContext, *Evaluator) {
	t.Helper()
	params, err := DefaultParameters(n, tmod)
	if err != nil {
		t.Fatalf("DefaultParameters(%d, %d): %v", n, tmod, err)
	}
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	ek := kg.GenEvaluationKeys(sk)
	enc, err := NewEncryptor(pk, ring.NewSeededSource(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecryptor(sk)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	oracleEval, err := NewEvaluator(params.WithTensorOracle())
	if err != nil {
		t.Fatal(err)
	}
	tc := &testContext{params: params, sk: sk, pk: pk, ek: ek, enc: enc, dec: dec, eval: eval}
	return tc, oracleEval
}

func ciphertextsEqual(a, b *Ciphertext) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(b.Polys[i]) {
			return false
		}
	}
	return true
}

// TestRNSMulMatchesOracleEvaluator pins Mul, Square, and MulRelin to the
// oracle bit-for-bit across degrees, and checks the product still decrypts
// to the plaintext product.
func TestRNSMulMatchesOracleEvaluator(t *testing.T) {
	degrees := []int{1024, 2048}
	if !testing.Short() {
		degrees = append(degrees, 4096)
	}
	for _, n := range degrees {
		tc, oracle := equivContext(t, n, 257, uint64(n))
		src := ring.NewSeededSource(uint64(n) + 7)
		a := randomPlaintext(tc, src, 16)
		b := randomPlaintext(tc, src, 16)
		cta, err := tc.enc.Encrypt(a)
		if err != nil {
			t.Fatal(err)
		}
		ctb, err := tc.enc.Encrypt(b)
		if err != nil {
			t.Fatal(err)
		}

		rnsProd, err := tc.eval.Mul(cta, ctb)
		if err != nil {
			t.Fatalf("n=%d rns Mul: %v", n, err)
		}
		oracleProd, err := oracle.Mul(cta, ctb)
		if err != nil {
			t.Fatalf("n=%d oracle Mul: %v", n, err)
		}
		if !ciphertextsEqual(rnsProd, oracleProd) {
			t.Fatalf("n=%d: RNS Mul diverges from oracle", n)
		}

		rnsSq, err := tc.eval.Square(cta)
		if err != nil {
			t.Fatal(err)
		}
		oracleSq, err := oracle.Square(cta)
		if err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(rnsSq, oracleSq) {
			t.Fatalf("n=%d: RNS Square diverges from oracle", n)
		}

		rnsMR, err := tc.eval.MulRelin(cta, ctb, tc.ek)
		if err != nil {
			t.Fatal(err)
		}
		oracleMR, err := oracle.MulRelin(cta, ctb, tc.ek)
		if err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(rnsMR, oracleMR) {
			t.Fatalf("n=%d: RNS MulRelin diverges from oracle", n)
		}

		// End-to-end: the RNS product decrypts to the plaintext product.
		got, err := tc.dec.Decrypt(rnsMR)
		if err != nil {
			t.Fatal(err)
		}
		want := NewPlaintext(tc.params)
		tmod := ring.MustModulus(tc.params.T)
		ac := make([]int64, n)
		bc := make([]int64, n)
		for i := 0; i < n; i++ {
			ac[i] = centeredModT(a.Poly.Coeffs[i], tc.params.T)
			bc[i] = centeredModT(b.Poly.Coeffs[i], tc.params.T)
		}
		conv := ring.NegacyclicConvolveInt(ac, bc)
		for i := range want.Poly.Coeffs {
			m := conv[i].Mag.Mod64(tc.params.T)
			if conv[i].Neg {
				m = tmod.Neg(m)
			}
			want.Poly.Coeffs[i] = m
		}
		for i := range want.Poly.Coeffs {
			if got.Poly.Coeffs[i] != want.Poly.Coeffs[i] {
				t.Fatalf("n=%d: decrypted product wrong at %d: got %d want %d",
					n, i, got.Poly.Coeffs[i], want.Poly.Coeffs[i])
			}
		}
	}
}

// centeredModT maps a residue mod t to its centered representative.
func centeredModT(c, t uint64) int64 {
	if c > t/2 {
		return int64(c) - int64(t)
	}
	return int64(c)
}

// TestRNSDeepChainMatchesOracle walks a multiplication chain (the pattern
// of stacked square activations in the paper CNN) on both backends.
func TestRNSDeepChainMatchesOracle(t *testing.T) {
	tc, oracle := equivContext(t, 2048, 257, 99)
	src := ring.NewSeededSource(17)
	pt := randomPlaintext(tc, src, 8)
	ct, err := tc.enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	rns, orc := ct, ct.Copy()
	for depth := 0; depth < 2; depth++ {
		if rns, err = tc.eval.Square(rns); err != nil {
			t.Fatal(err)
		}
		if rns, err = tc.eval.Relinearize(rns, tc.ek); err != nil {
			t.Fatal(err)
		}
		if orc, err = oracle.Square(orc); err != nil {
			t.Fatal(err)
		}
		if orc, err = oracle.Relinearize(orc, tc.ek); err != nil {
			t.Fatal(err)
		}
		if !ciphertextsEqual(rns, orc) {
			t.Fatalf("depth %d: chains diverge", depth)
		}
	}
}

// TestOracleModeRejectsLargeDegree: WithTensorOracle at n=8192 must fail at
// evaluator construction (the u128 accumulator cannot hold the tensor),
// while the default RNS evaluator serves the degree.
func TestOracleModeRejectsLargeDegree(t *testing.T) {
	params, err := DefaultParameters(8192, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(params.WithTensorOracle()); err == nil {
		t.Fatal("oracle evaluator at n=8192 accepted")
	}
	if _, err := NewEvaluator(params); err != nil {
		t.Fatalf("rns evaluator at n=8192 rejected: %v", err)
	}
}

// TestLargeDegreeMulDecrypts runs a real encrypt→Mul→Relin→decrypt cycle at
// n=8192 — the degree the tentpole unlocks — and checks the plaintext
// product, using the schoolbook evaluator as the independent exact oracle.
func TestLargeDegreeMulDecrypts(t *testing.T) {
	if testing.Short() {
		t.Skip("n=8192 key generation and schoolbook oracle are slow; skipped in -short")
	}
	params, err := DefaultParameters(8192, 257)
	if err != nil {
		t.Fatal(err)
	}
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(8192))
	if err != nil {
		t.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	ek := kg.GenEvaluationKeys(sk)
	enc, err := NewEncryptor(pk, ring.NewSeededSource(8193))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecryptor(sk)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	schoolbook, err := NewEvaluator(params, WithSchoolbookTensor())
	if err != nil {
		t.Fatal(err)
	}

	a := NewPlaintext(params)
	b := NewPlaintext(params)
	a.Poly.Coeffs[0], a.Poly.Coeffs[1], a.Poly.Coeffs[5] = 3, 7, 250
	b.Poly.Coeffs[0], b.Poly.Coeffs[2] = 11, 5
	cta, err := enc.Encrypt(a)
	if err != nil {
		t.Fatal(err)
	}
	ctb, err := enc.Encrypt(b)
	if err != nil {
		t.Fatal(err)
	}

	rnsProd, err := eval.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	sbProd, err := schoolbook.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	if !ciphertextsEqual(rnsProd, sbProd) {
		t.Fatal("n=8192: RNS Mul diverges from schoolbook oracle")
	}

	rel, err := eval.Relinearize(rnsProd, ek)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decrypt(rel)
	if err != nil {
		t.Fatal(err)
	}
	// (3 + 7x + 250x^5)(11 + 5x^2) mod 257, with 250 ≡ -7:
	// 33 + 77x + 15x^2 + 35x^3 - 77x^5 - 35x^7.
	want := map[int]uint64{0: 33, 1: 77, 2: 15, 3: 35, 5: 257 - 77, 7: 257 - 35}
	for i, c := range got.Poly.Coeffs {
		if c != want[i] {
			t.Fatalf("coeff %d: got %d, want %d", i, c, want[i])
		}
	}
}
