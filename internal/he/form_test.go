package he

import (
	"bytes"
	mrand "math/rand/v2"
	"testing"
)

// Tests for ciphertext domain-form tracking: conversions round-trip,
// coefficient-only operations fail loudly on evaluation-form inputs, and the
// NTT-resident fused kernels are bit-identical to the coefficient reference.

func TestToNTTToCoeffRoundTrip(t *testing.T) {
	tc := newTestContext(t, 100)
	ct, err := tc.enc.EncryptScalar(123)
	if err != nil {
		t.Fatal(err)
	}
	orig := ct.Copy()
	ct.ToNTT()
	if ct.Form != NTTForm {
		t.Fatalf("form after ToNTT = %v", ct.Form)
	}
	for i := range ct.Polys {
		if ct.Polys[i].Equal(orig.Polys[i]) {
			t.Fatalf("poly %d unchanged by ToNTT", i)
		}
	}
	// Converting an already-converted ciphertext is a no-op.
	snapshot := ct.Copy()
	ct.ToNTT()
	for i := range ct.Polys {
		if !ct.Polys[i].Equal(snapshot.Polys[i]) {
			t.Fatalf("double ToNTT mutated poly %d", i)
		}
	}
	ct.ToCoeff()
	if ct.Form != CoeffForm {
		t.Fatalf("form after ToCoeff = %v", ct.Form)
	}
	for i := range ct.Polys {
		if !ct.Polys[i].Equal(orig.Polys[i]) {
			t.Fatalf("poly %d does not round-trip", i)
		}
	}
	ct.ToCoeff()
	for i := range ct.Polys {
		if !ct.Polys[i].Equal(orig.Polys[i]) {
			t.Fatalf("double ToCoeff mutated poly %d", i)
		}
	}
}

func TestCopyPreservesForm(t *testing.T) {
	tc := newTestContext(t, 101)
	ct, err := tc.enc.EncryptScalar(7)
	if err != nil {
		t.Fatal(err)
	}
	ct.ToNTT()
	cp := ct.Copy()
	if cp.Form != NTTForm {
		t.Fatalf("Copy dropped form: %v", cp.Form)
	}
}

func TestSerializeNTTFormFailsLoudly(t *testing.T) {
	tc := newTestContext(t, 102)
	ct, err := tc.enc.EncryptScalar(9)
	if err != nil {
		t.Fatal(err)
	}
	ct.ToNTT()
	var buf bytes.Buffer
	if err := ct.Write(&buf); err == nil {
		t.Fatal("Write accepted an NTT-form ciphertext")
	}
	if buf.Len() != 0 {
		t.Fatalf("Write emitted %d bytes before failing", buf.Len())
	}
	if _, err := MarshalCiphertext(ct); err == nil {
		t.Fatal("MarshalCiphertext accepted an NTT-form ciphertext")
	}
	ct.ToCoeff()
	if err := ct.Write(&buf); err != nil {
		t.Fatalf("Write after ToCoeff: %v", err)
	}
}

func TestDecryptNTTFormFailsLoudly(t *testing.T) {
	tc := newTestContext(t, 103)
	ct, err := tc.enc.EncryptScalar(42)
	if err != nil {
		t.Fatal(err)
	}
	ct.ToNTT()
	if _, err := tc.dec.Decrypt(ct); err == nil {
		t.Fatal("Decrypt accepted an NTT-form ciphertext")
	}
	if _, err := tc.dec.NoiseBudget(ct); err == nil {
		t.Fatal("NoiseBudget accepted an NTT-form ciphertext")
	}
	ct.ToCoeff()
	pt, err := tc.dec.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Poly.Coeffs[0] != 42 {
		t.Fatalf("round-tripped value %d, want 42", pt.Poly.Coeffs[0])
	}
}

func TestCoeffOnlyOpsRejectNTTForm(t *testing.T) {
	tc := newTestContext(t, 104)
	a, _ := tc.enc.EncryptScalar(2)
	b, _ := tc.enc.EncryptScalar(3)
	a.ToNTT()
	if _, err := tc.eval.Mul(a, b); err == nil {
		t.Fatal("Mul accepted an NTT-form operand")
	}
	if _, err := tc.eval.Square(a); err == nil {
		t.Fatal("Square accepted an NTT-form operand")
	}
	if _, err := tc.eval.Add(a, b); err == nil {
		t.Fatal("Add accepted mixed-form operands")
	}
	if err := tc.eval.MulScalarAddInto(b, a, 5); err == nil {
		t.Fatal("MulScalarAddInto accepted mixed-form operands")
	}
	if err := tc.eval.MulPlainOperandAddInto(a, b, mustOperand(t, tc, 1)); err == nil {
		t.Fatal("MulPlainOperandAddInto accepted a coefficient-form ct")
	}
}

func mustOperand(t *testing.T, tc *testContext, seed uint64) *PlainOperand {
	t.Helper()
	rng := mrand.New(mrand.NewPCG(seed, seed))
	pt := NewPlaintext(tc.params)
	for i := range pt.Poly.Coeffs[:16] {
		pt.Poly.Coeffs[i] = rng.Uint64() % tc.params.T
	}
	op, err := tc.eval.PrepareOperand(pt)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestFusedAccumulateMatchesReference is the kernel-level equivalence
// property: for random ciphertexts and operands, hoisting to NTT form,
// accumulating with MulPlainOperandAddInto, and inverse-transforming once
// yields the exact polynomials of the coefficient path (per-product
// MulPlainOperand + Add). The two differ only in where the (linear) inverse
// NTT sits.
func TestFusedAccumulateMatchesReference(t *testing.T) {
	tc := newTestContext(t, 105)
	rng := mrand.New(mrand.NewPCG(105, 105))
	const terms = 7
	cts := make([]*Ciphertext, terms)
	ops := make([]*PlainOperand, terms)
	for i := range cts {
		ct, err := tc.enc.EncryptScalar(rng.Uint64() % tc.params.T)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
		ops[i] = mustOperand(t, tc, uint64(200+i))
	}

	// Coefficient reference: per-product NTT round trips, coeff-domain adds.
	var ref *Ciphertext
	for i := range cts {
		term, err := tc.eval.MulPlainOperand(cts[i], ops[i])
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = term
		} else if ref, err = tc.eval.Add(ref, term); err != nil {
			t.Fatal(err)
		}
	}

	// NTT-resident: hoist once, fuse all products, one inverse transform.
	acc := NewCiphertext(tc.params, cts[0].Size())
	acc.Form = NTTForm
	for i := range cts {
		ct := cts[i].Copy()
		ct.ToNTT()
		if err := tc.eval.MulPlainOperandAddInto(acc, ct, ops[i]); err != nil {
			t.Fatal(err)
		}
	}
	acc.ToCoeff()

	for i := range ref.Polys {
		if !acc.Polys[i].Equal(ref.Polys[i]) {
			t.Fatalf("fused poly %d differs from reference", i)
		}
	}
}

// TestAddPlainIntoNTTForm checks the bias add is domain-transparent: adding
// a plaintext to an NTT-form accumulator then converting down equals the
// coefficient-domain AddPlain bit for bit.
func TestAddPlainIntoNTTForm(t *testing.T) {
	tc := newTestContext(t, 106)
	ct, err := tc.enc.EncryptScalar(19)
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPlaintext(tc.params)
	pt.Poly.Coeffs[0] = 88

	ref, err := tc.eval.AddPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}

	got := ct.Copy()
	got.ToNTT()
	if err := tc.eval.AddPlainInto(got, pt); err != nil {
		t.Fatal(err)
	}
	got.ToCoeff()
	for i := range ref.Polys {
		if !got.Polys[i].Equal(ref.Polys[i]) {
			t.Fatalf("NTT-form AddPlainInto poly %d differs from AddPlain", i)
		}
	}

	// And the decrypted sum is right.
	dec, err := tc.dec.Decrypt(got)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Poly.Coeffs[0] != (19+88)%tc.params.T {
		t.Fatalf("decrypted %d, want %d", dec.Poly.Coeffs[0], (19+88)%tc.params.T)
	}
}

// TestMulPlainOperandNTTFormStaysResident checks the pointwise product path:
// multiplying an NTT-form ciphertext yields an NTT-form result equal (after
// conversion) to the coefficient-path product.
func TestMulPlainOperandNTTFormStaysResident(t *testing.T) {
	tc := newTestContext(t, 107)
	ct, err := tc.enc.EncryptScalar(33)
	if err != nil {
		t.Fatal(err)
	}
	op := mustOperand(t, tc, 300)
	ref, err := tc.eval.MulPlainOperand(ct, op)
	if err != nil {
		t.Fatal(err)
	}
	resident := ct.Copy()
	resident.ToNTT()
	got, err := tc.eval.MulPlainOperand(resident, op)
	if err != nil {
		t.Fatal(err)
	}
	if got.Form != NTTForm {
		t.Fatalf("product of NTT-form input has form %v", got.Form)
	}
	got.ToCoeff()
	for i := range ref.Polys {
		if !got.Polys[i].Equal(ref.Polys[i]) {
			t.Fatalf("resident product poly %d differs", i)
		}
	}
}
