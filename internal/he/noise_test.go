package he

import (
	"math/rand/v2"
	"testing"

	"hesgx/internal/ring"
)

// noiseRig is the machinery the accountant tests share: keys, an
// encryptor/decryptor pair, and an evaluator over one parameter set.
type noiseRig struct {
	params Parameters
	enc    *Encryptor
	dec    *Decryptor
	eval   *Evaluator
	ek     *EvaluationKeys
	rng    *rand.Rand
}

func newNoiseRig(t *testing.T, params Parameters) *noiseRig {
	t.Helper()
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(7))
	if err != nil {
		t.Fatalf("keygen: %v", err)
	}
	sk, pk := kg.GenKeyPair()
	enc, err := NewEncryptor(pk, ring.NewSeededSource(8))
	if err != nil {
		t.Fatalf("encryptor: %v", err)
	}
	dec, err := NewDecryptor(sk)
	if err != nil {
		t.Fatalf("decryptor: %v", err)
	}
	eval, err := NewEvaluator(params)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	return &noiseRig{
		params: params,
		enc:    enc,
		dec:    dec,
		eval:   eval,
		ek:     kg.GenEvaluationKeys(sk),
		rng:    rand.New(rand.NewPCG(9, 10)),
	}
}

// randomCT encrypts a fully random plaintext — every coefficient uniform
// mod t, so plaintext-space wraps are exercised constantly.
func (r *noiseRig) randomCT(t *testing.T) *Ciphertext {
	t.Helper()
	pt := NewPlaintext(r.params)
	for i := range pt.Poly.Coeffs {
		pt.Poly.Coeffs[i] = r.rng.Uint64() % r.params.T
	}
	ct, err := r.enc.Encrypt(pt)
	if err != nil {
		t.Fatalf("encrypt: %v", err)
	}
	return ct
}

// measured returns the real remaining budget of ct.
func (r *noiseRig) measured(t *testing.T, ct *Ciphertext) float64 {
	t.Helper()
	b, err := r.dec.NoiseBudget(ct)
	if err != nil {
		t.Fatalf("noise budget: %v", err)
	}
	return b
}

// assertConservative fails unless predicted <= measured: the static
// accountant must never promise more budget than the ciphertext has.
func assertConservative(t *testing.T, name string, predicted, measured float64) {
	t.Helper()
	if predicted > measured+1e-9 {
		t.Errorf("%s: predicted budget %.2f bits exceeds measured %.2f bits", name, predicted, measured)
	}
}

// noiseTestParams returns the two parameter regimes the accountant must
// cover: the low-lift inference tier (r_t(q) = 1) and the paper tier with a
// large lift (r_t(q) up to t), where wrap noise actually matters.
func noiseTestParams(t *testing.T) map[string]Parameters {
	t.Helper()
	lowLift, err := DefaultParametersLowLift(1024, 1<<20)
	if err != nil {
		t.Fatalf("low-lift params: %v", err)
	}
	paper, err := DefaultParameters(1024, 257)
	if err != nil {
		t.Fatalf("paper params: %v", err)
	}
	return map[string]Parameters{"lowlift": lowLift, "paper": paper}
}

func TestNoiseBoundConservative(t *testing.T) {
	for name, params := range noiseTestParams(t) {
		t.Run(name, func(t *testing.T) {
			rig := newNoiseRig(t, params)
			fresh := params.FreshNoiseBound()

			t.Run("fresh", func(t *testing.T) {
				if fresh.BudgetBits() <= 0 {
					t.Fatalf("fresh predicted budget %.2f bits must be positive", fresh.BudgetBits())
				}
				for i := 0; i < 20; i++ {
					ct := rig.randomCT(t)
					assertConservative(t, "fresh", fresh.BudgetBits(), rig.measured(t, ct))
				}
			})

			t.Run("add_chain", func(t *testing.T) {
				acc := rig.randomCT(t)
				model := fresh
				for i := 0; i < 15; i++ {
					var err error
					if acc, err = rig.eval.Add(acc, rig.randomCT(t)); err != nil {
						t.Fatalf("add: %v", err)
					}
					model = model.Add(fresh)
				}
				assertConservative(t, "add x16", model.BudgetBits(), rig.measured(t, acc))
			})

			t.Run("add_plain", func(t *testing.T) {
				pt := NewPlaintext(params)
				for i := range pt.Poly.Coeffs {
					pt.Poly.Coeffs[i] = rig.rng.Uint64() % params.T
				}
				ct, err := rig.eval.AddPlain(rig.randomCT(t), pt)
				if err != nil {
					t.Fatalf("add plain: %v", err)
				}
				assertConservative(t, "add_plain", fresh.AddPlain().BudgetBits(), rig.measured(t, ct))
			})

			t.Run("mul_scalar", func(t *testing.T) {
				for _, k := range []uint64{1, 7, 100, params.T - 3} {
					ct, err := rig.eval.MulScalar(rig.randomCT(t), k)
					if err != nil {
						t.Fatalf("mul scalar: %v", err)
					}
					absK := float64(k)
					if k > params.T/2 {
						absK = float64(params.T - k)
					}
					assertConservative(t, "mul_scalar", fresh.MulScalar(absK).BudgetBits(), rig.measured(t, ct))
				}
			})

			t.Run("mul_plain", func(t *testing.T) {
				// A sparse multi-coefficient operand with known centered ℓ1.
				pt := NewPlaintext(params)
				coeffs := []uint64{3, params.T - 2, 5, params.T - 7}
				for i, c := range coeffs {
					pt.Poly.Coeffs[i*17] = c
				}
				l1 := float64(3 + 2 + 5 + 7)
				ct, err := rig.eval.MulPlain(rig.randomCT(t), pt)
				if err != nil {
					t.Fatalf("mul plain: %v", err)
				}
				assertConservative(t, "mul_plain", fresh.MulPlain(l1, len(coeffs)).BudgetBits(), rig.measured(t, ct))
			})

			t.Run("weighted_sum", func(t *testing.T) {
				// Emulates one FC output: acc = Σ kᵢ·ctᵢ over 32 terms with
				// signed weights, exactly the engine's scalar fast path.
				const terms = 32
				var l1 float64
				var acc *Ciphertext
				for i := 0; i < terms; i++ {
					k := int64(rig.rng.IntN(63)) - 31
					if k >= 0 {
						l1 += float64(k)
					} else {
						l1 -= float64(k)
					}
					enc := uint64(k) % params.T
					if k < 0 {
						enc = params.T - uint64(-k)%params.T
					}
					ct := rig.randomCT(t)
					if acc == nil {
						var err error
						if acc, err = rig.eval.MulScalar(ct, enc); err != nil {
							t.Fatalf("mul scalar: %v", err)
						}
						continue
					}
					if err := rig.eval.MulScalarAddInto(acc, ct, enc); err != nil {
						t.Fatalf("mul scalar add into: %v", err)
					}
				}
				assertConservative(t, "weighted_sum", fresh.WeightedSum(l1, terms).BudgetBits(), rig.measured(t, acc))
			})

			t.Run("mul_relin", func(t *testing.T) {
				a, b := rig.randomCT(t), rig.randomCT(t)
				prod, err := rig.eval.Mul(a, b)
				if err != nil {
					t.Fatalf("mul: %v", err)
				}
				model := fresh.Mul(fresh)
				assertConservative(t, "mul", model.BudgetBits(), rig.measured(t, prod))
				relin, err := rig.eval.Relinearize(prod, rig.ek)
				if err != nil {
					t.Fatalf("relinearize: %v", err)
				}
				assertConservative(t, "mul+relin", model.Relinearize().BudgetBits(), rig.measured(t, relin))
			})

			t.Run("refresh", func(t *testing.T) {
				// Burn budget, then decrypt–re-encrypt: the accountant resets
				// to fresh and the measured budget agrees.
				ct, err := rig.eval.MulScalar(rig.randomCT(t), 100)
				if err != nil {
					t.Fatalf("mul scalar: %v", err)
				}
				model := fresh.MulScalar(100)
				pt, _, err := rig.dec.DecryptWithBudget(ct)
				if err != nil {
					t.Fatalf("decrypt with budget: %v", err)
				}
				again, err := rig.enc.Encrypt(pt)
				if err != nil {
					t.Fatalf("re-encrypt: %v", err)
				}
				assertConservative(t, "refresh", model.Refresh().BudgetBits(), rig.measured(t, again))
			})
		})
	}
}

// TestDecryptWithBudget checks the fused path agrees with the separate
// Decrypt and NoiseBudget calls it replaces inside the enclave.
func TestDecryptWithBudget(t *testing.T) {
	params, err := DefaultParametersLowLift(1024, 1<<20)
	if err != nil {
		t.Fatalf("params: %v", err)
	}
	rig := newNoiseRig(t, params)
	ct, err := rig.eval.MulScalar(rig.randomCT(t), 42)
	if err != nil {
		t.Fatalf("mul scalar: %v", err)
	}
	want, err := rig.dec.Decrypt(ct)
	if err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	wantBudget, err := rig.dec.NoiseBudget(ct)
	if err != nil {
		t.Fatalf("noise budget: %v", err)
	}
	got, gotBudget, err := rig.dec.DecryptWithBudget(ct)
	if err != nil {
		t.Fatalf("decrypt with budget: %v", err)
	}
	if gotBudget != wantBudget {
		t.Errorf("budget %v != %v", gotBudget, wantBudget)
	}
	for i, c := range want.Poly.Coeffs {
		if got.Poly.Coeffs[i] != c {
			t.Fatalf("coeff %d: %d != %d", i, got.Poly.Coeffs[i], c)
		}
	}
	// Exhaustion is visible: multiplying the budget away goes non-positive.
	b := params.FreshNoiseBound()
	for !b.Exhausted() {
		b = b.MulScalar(float64(params.T / 2))
	}
	if b.BudgetBits() > 0 {
		t.Errorf("exhausted bound reports %v bits", b.BudgetBits())
	}
}
