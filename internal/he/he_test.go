package he

import (
	"bytes"
	"testing"
	"testing/quick"

	"hesgx/internal/ring"
)

// testParams returns a small but real parameter set for fast tests.
func testParams(t testing.TB) Parameters {
	t.Helper()
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		t.Fatalf("GenerateNTTPrime: %v", err)
	}
	p, err := NewParameters(1024, q, 257, DefaultDecompositionBase)
	if err != nil {
		t.Fatalf("NewParameters: %v", err)
	}
	return p
}

type testContext struct {
	params Parameters
	sk     *SecretKey
	pk     *PublicKey
	ek     *EvaluationKeys
	enc    *Encryptor
	dec    *Decryptor
	eval   *Evaluator
}

func newTestContext(t testing.TB, seed uint64) *testContext {
	t.Helper()
	params := testParams(t)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	ek := kg.GenEvaluationKeys(sk)
	enc, err := NewEncryptor(pk, ring.NewSeededSource(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecryptor(sk)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	return &testContext{params: params, sk: sk, pk: pk, ek: ek, enc: enc, dec: dec, eval: eval}
}

// randomPlaintext fills a plaintext's low coefficients with values mod t.
func randomPlaintext(tc *testContext, src ring.Source, nonzero int) *Plaintext {
	pt := NewPlaintext(tc.params)
	for i := 0; i < nonzero; i++ {
		pt.Poly.Coeffs[i] = src.Uint64() % tc.params.T
	}
	return pt
}

func decryptOK(t *testing.T, tc *testContext, ct *Ciphertext) *Plaintext {
	t.Helper()
	pt, err := tc.dec.Decrypt(ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	return pt
}

func TestParametersValidation(t *testing.T) {
	q, _ := ring.GenerateNTTPrime(46, 1024)
	tests := []struct {
		name string
		n    int
		q, t uint64
		base int
	}{
		{"degree not power of two", 1000, q, 256, 16},
		{"degree too small", 8, q, 2, 16},
		{"t too small", 1024, q, 1, 16},
		{"t too close to q", 1024, q, q / 2, 16},
		{"bad base", 1024, q, 256, 0},
		{"composite q", 1024, q - 2, 256, 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewParameters(tt.n, tt.q, tt.t, tt.base); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestDefaultParameters(t *testing.T) {
	for _, n := range DefaultParameterOptions() {
		p, err := DefaultParameters(n, 256)
		if err != nil {
			t.Fatalf("DefaultParameters(%d): %v", n, err)
		}
		if p.N != n || !p.Valid() {
			t.Fatalf("bad params for n=%d: %+v", n, p)
		}
	}
	if _, err := DefaultParameters(1000, 256); err == nil {
		t.Fatal("unsupported degree should fail")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	tc := newTestContext(t, 100)
	src := ring.NewSeededSource(200)
	for trial := 0; trial < 10; trial++ {
		pt := randomPlaintext(tc, src, tc.params.N)
		ct, err := tc.enc.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		got := decryptOK(t, tc, ct)
		if !got.Poly.Equal(pt.Poly) {
			t.Fatalf("trial %d: decrypt != plaintext", trial)
		}
	}
}

func TestEncryptScalar(t *testing.T) {
	tc := newTestContext(t, 101)
	ct, err := tc.enc.EncryptScalar(123)
	if err != nil {
		t.Fatal(err)
	}
	pt := decryptOK(t, tc, ct)
	if pt.Poly.Coeffs[0] != 123 {
		t.Fatalf("scalar roundtrip: got %d", pt.Poly.Coeffs[0])
	}
}

func TestFreshNoiseBudgetPositive(t *testing.T) {
	tc := newTestContext(t, 102)
	ct, err := tc.enc.EncryptZero()
	if err != nil {
		t.Fatal(err)
	}
	budget, err := tc.dec.NoiseBudget(ct)
	if err != nil {
		t.Fatal(err)
	}
	if budget < 10 {
		t.Fatalf("fresh noise budget %.1f suspiciously low", budget)
	}
	if budget > tc.params.MaxNoiseBudget() {
		t.Fatalf("budget %.1f exceeds max %.1f", budget, tc.params.MaxNoiseBudget())
	}
}

func TestHomomorphicAdd(t *testing.T) {
	tc := newTestContext(t, 103)
	src := ring.NewSeededSource(300)
	a := randomPlaintext(tc, src, 32)
	b := randomPlaintext(tc, src, 32)
	cta, _ := tc.enc.Encrypt(a)
	ctb, _ := tc.enc.Encrypt(b)
	sum, err := tc.eval.Add(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	got := decryptOK(t, tc, sum)
	for i := range got.Poly.Coeffs {
		want := (a.Poly.Coeffs[i] + b.Poly.Coeffs[i]) % tc.params.T
		if got.Poly.Coeffs[i] != want {
			t.Fatalf("coeff %d: got %d want %d", i, got.Poly.Coeffs[i], want)
		}
	}
}

func TestHomomorphicSubNeg(t *testing.T) {
	tc := newTestContext(t, 104)
	cta, _ := tc.enc.EncryptScalar(100)
	ctb, _ := tc.enc.EncryptScalar(30)
	diff, err := tc.eval.Sub(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptOK(t, tc, diff).Poly.Coeffs[0]; got != 70 {
		t.Fatalf("100-30 = %d", got)
	}
	neg, err := tc.eval.Neg(ctb)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptOK(t, tc, neg).Poly.Coeffs[0]; got != tc.params.T-30 {
		t.Fatalf("-30 = %d, want %d", got, tc.params.T-30)
	}
}

func TestAddSubPlain(t *testing.T) {
	tc := newTestContext(t, 105)
	ct, _ := tc.enc.EncryptScalar(150)
	pt := NewPlaintext(tc.params)
	pt.Poly.Coeffs[0] = 77
	sum, err := tc.eval.AddPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptOK(t, tc, sum).Poly.Coeffs[0]; got != 227 {
		t.Fatalf("150+77 = %d", got)
	}
	diff, err := tc.eval.SubPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptOK(t, tc, diff).Poly.Coeffs[0]; got != 73 {
		t.Fatalf("150-77 = %d", got)
	}
}

func TestMulPlainScalarValues(t *testing.T) {
	tc := newTestContext(t, 106)
	tests := []struct {
		a, b uint64
	}{
		{3, 4},
		{100, 200},
		{0, 99},
		{1, 1},
		{tc.params.T - 1, 2}, // -1 * 2 = -2 mod t
	}
	for _, tt := range tests {
		ct, _ := tc.enc.EncryptScalar(tt.a)
		pt := NewPlaintext(tc.params)
		pt.Poly.Coeffs[0] = tt.b
		prod, err := tc.eval.MulPlain(ct, pt)
		if err != nil {
			t.Fatal(err)
		}
		want := (tt.a * tt.b) % tc.params.T
		if got := decryptOK(t, tc, prod).Poly.Coeffs[0]; got != want {
			t.Fatalf("%d*%d = %d, want %d", tt.a, tt.b, got, want)
		}
	}
}

func TestMulPlainOperandMatchesMulPlain(t *testing.T) {
	tc := newTestContext(t, 107)
	src := ring.NewSeededSource(400)
	ctIn := randomPlaintext(tc, src, 16)
	ct, _ := tc.enc.Encrypt(ctIn)
	pt := randomPlaintext(tc, src, 16)
	want, err := tc.eval.MulPlain(ct, pt)
	if err != nil {
		t.Fatal(err)
	}
	op, err := tc.eval.PrepareOperand(pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tc.eval.MulPlainOperand(ct, op)
	if err != nil {
		t.Fatal(err)
	}
	wantPt := decryptOK(t, tc, want)
	gotPt := decryptOK(t, tc, got)
	if !gotPt.Poly.Equal(wantPt.Poly) {
		t.Fatal("operand path decrypts differently")
	}
}

func TestHomomorphicMul(t *testing.T) {
	tc := newTestContext(t, 108)
	tests := []struct{ a, b uint64 }{
		{3, 4}, {25, 25}, {0, 7}, {123, 321},
	}
	for _, tt := range tests {
		cta, _ := tc.enc.EncryptScalar(tt.a)
		ctb, _ := tc.enc.EncryptScalar(tt.b)
		prod, err := tc.eval.Mul(cta, ctb)
		if err != nil {
			t.Fatal(err)
		}
		if prod.Size() != 3 {
			t.Fatalf("Mul size = %d, want 3", prod.Size())
		}
		want := (tt.a * tt.b) % tc.params.T
		if got := decryptOK(t, tc, prod).Poly.Coeffs[0]; got != want {
			t.Fatalf("%d*%d = %d, want %d", tt.a, tt.b, got, want)
		}
	}
}

func TestMulPolynomialPlaintexts(t *testing.T) {
	// Multiplication acts on the whole plaintext ring, so products are
	// negacyclic convolutions mod t.
	tc := newTestContext(t, 109)
	a := NewPlaintext(tc.params)
	a.Poly.Coeffs[0] = 3
	a.Poly.Coeffs[1] = 5 // 3 + 5x
	b := NewPlaintext(tc.params)
	b.Poly.Coeffs[0] = 7
	b.Poly.Coeffs[2] = 2 // 7 + 2x^2
	cta, _ := tc.enc.Encrypt(a)
	ctb, _ := tc.enc.Encrypt(b)
	prod, err := tc.eval.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	got := decryptOK(t, tc, prod)
	// (3+5x)(7+2x^2) = 21 + 35x + 6x^2 + 10x^3
	want := []uint64{21, 35, 6, 10}
	for i, w := range want {
		if got.Poly.Coeffs[i] != w {
			t.Fatalf("coeff %d: got %d want %d", i, got.Poly.Coeffs[i], w)
		}
	}
}

func TestRelinearizePreservesPlaintext(t *testing.T) {
	tc := newTestContext(t, 110)
	cta, _ := tc.enc.EncryptScalar(111)
	ctb, _ := tc.enc.EncryptScalar(222)
	prod, err := tc.eval.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	relin, err := tc.eval.Relinearize(prod, tc.ek)
	if err != nil {
		t.Fatal(err)
	}
	if relin.Size() != 2 {
		t.Fatalf("relinearized size = %d", relin.Size())
	}
	want := (111 * 222) % tc.params.T
	if got := decryptOK(t, tc, relin).Poly.Coeffs[0]; got != want {
		t.Fatalf("relin decrypt = %d, want %d", got, want)
	}
}

func TestSquareMatchesMul(t *testing.T) {
	tc := newTestContext(t, 111)
	ct, _ := tc.enc.EncryptScalar(73)
	viaMul, err := tc.eval.Mul(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	viaSq, err := tc.eval.Square(ct)
	if err != nil {
		t.Fatal(err)
	}
	a := decryptOK(t, tc, viaMul)
	b := decryptOK(t, tc, viaSq)
	if !a.Poly.Equal(b.Poly) {
		t.Fatal("Square != Mul(ct, ct)")
	}
	want := (73 * 73) % tc.params.T
	if a.Poly.Coeffs[0] != want {
		t.Fatalf("73^2 = %d, want %d", a.Poly.Coeffs[0], want)
	}
}

func TestMulRequiresSize2(t *testing.T) {
	tc := newTestContext(t, 112)
	cta, _ := tc.enc.EncryptScalar(1)
	ctb, _ := tc.enc.EncryptScalar(2)
	prod, _ := tc.eval.Mul(cta, ctb)
	if _, err := tc.eval.Mul(prod, cta); err == nil {
		t.Fatal("Mul with size-3 input should fail")
	}
	if _, err := tc.eval.Square(prod); err == nil {
		t.Fatal("Square with size-3 input should fail")
	}
}

func TestAddSize3Ciphertexts(t *testing.T) {
	tc := newTestContext(t, 113)
	cta, _ := tc.enc.EncryptScalar(5)
	ctb, _ := tc.enc.EncryptScalar(6)
	p1, _ := tc.eval.Mul(cta, ctb) // 30, size 3
	p2, _ := tc.eval.Mul(ctb, ctb) // 36, size 3
	sum, err := tc.eval.Add(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptOK(t, tc, sum).Poly.Coeffs[0]; got != 66 {
		t.Fatalf("30+36 = %d", got)
	}
	// Mixed sizes: size-3 + size-2.
	mixed, err := tc.eval.Add(p1, cta)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptOK(t, tc, mixed).Poly.Coeffs[0]; got != 35 {
		t.Fatalf("30+5 = %d", got)
	}
}

func TestAddMany(t *testing.T) {
	tc := newTestContext(t, 114)
	var cts []*Ciphertext
	want := uint64(0)
	for i := uint64(1); i <= 10; i++ {
		ct, _ := tc.enc.EncryptScalar(i)
		cts = append(cts, ct)
		want += i
	}
	sum, err := tc.eval.AddMany(cts)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptOK(t, tc, sum).Poly.Coeffs[0]; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if _, err := tc.eval.AddMany(nil); err == nil {
		t.Fatal("empty AddMany should fail")
	}
}

func TestMulScalar(t *testing.T) {
	tc := newTestContext(t, 115)
	ct, _ := tc.enc.EncryptScalar(21)
	out, err := tc.eval.MulScalar(ct, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptOK(t, tc, out).Poly.Coeffs[0]; got != 42 {
		t.Fatalf("21*2 = %d", got)
	}
	// Negative scalar representation: t-1 == -1 mod t.
	out2, err := tc.eval.MulScalar(ct, tc.params.T-1)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptOK(t, tc, out2).Poly.Coeffs[0]; got != tc.params.T-21 {
		t.Fatalf("21*(-1) = %d, want %d", got, tc.params.T-21)
	}
}

func TestNoiseGrowthOrdering(t *testing.T) {
	tc := newTestContext(t, 116)
	ct, _ := tc.enc.EncryptScalar(7)
	fresh, _ := tc.dec.NoiseBudget(ct)
	prod, _ := tc.eval.Mul(ct, ct)
	afterMul, _ := tc.dec.NoiseBudget(prod)
	relin, _ := tc.eval.Relinearize(prod, tc.ek)
	afterRelin, _ := tc.dec.NoiseBudget(relin)
	if !(fresh > afterMul) {
		t.Fatalf("budget should shrink after Mul: fresh=%.1f mul=%.1f", fresh, afterMul)
	}
	if afterRelin <= 0 {
		t.Fatalf("budget exhausted after relinearization: %.1f", afterRelin)
	}
	// Relinearization adds only a small amount of noise.
	if afterMul-afterRelin > 10 {
		t.Fatalf("relinearization cost too high: %.1f -> %.1f", afterMul, afterRelin)
	}
}

func TestDeepMultiplicationChain(t *testing.T) {
	// Multiply until the budget runs out, verifying correctness while
	// budget remains positive.
	tc := newTestContext(t, 117)
	ct, _ := tc.enc.EncryptScalar(2)
	want := uint64(2)
	for depth := 1; depth <= 4; depth++ {
		var err error
		ct, err = tc.eval.MulRelin(ct, ct, tc.ek)
		if err != nil {
			t.Fatal(err)
		}
		want = (want * want) % tc.params.T
		budget, _ := tc.dec.NoiseBudget(ct)
		if budget <= 1 {
			t.Logf("budget exhausted at depth %d, stopping", depth)
			break
		}
		if got := decryptOK(t, tc, ct).Poly.Coeffs[0]; got != want {
			t.Fatalf("depth %d: got %d want %d (budget %.1f)", depth, got, want, budget)
		}
	}
}

func TestDecryptWithWrongKeyFails(t *testing.T) {
	tc := newTestContext(t, 118)
	other := newTestContext(t, 999)
	ct, _ := tc.enc.EncryptScalar(42)
	pt, err := other.dec.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Poly.Coeffs[0] == 42 && pt.Poly.Coeffs[1] == 0 {
		t.Fatal("wrong key should not decrypt correctly")
	}
}

func TestEvaluatorRejectsMismatchedParams(t *testing.T) {
	tc := newTestContext(t, 119)
	otherParams, err := DefaultParameters(2048, 65537)
	if err != nil {
		t.Fatal(err)
	}
	foreign := NewCiphertext(otherParams, 2)
	if _, err := tc.eval.Add(tc.mustEncrypt(t, 1), foreign); err == nil {
		t.Fatal("mismatched parameters should fail")
	}
	if _, err := tc.eval.Add(nil, nil); err == nil {
		t.Fatal("nil ciphertext should fail")
	}
}

func (tc *testContext) mustEncrypt(t *testing.T, v uint64) *Ciphertext {
	t.Helper()
	ct, err := tc.enc.EncryptScalar(v)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestCiphertextSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, 120)
	ct, _ := tc.enc.EncryptScalar(77)
	b, err := MarshalCiphertext(ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCiphertext(b, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	if gotPt := decryptOK(t, tc, got); gotPt.Poly.Coeffs[0] != 77 {
		t.Fatalf("roundtrip decrypt = %d", gotPt.Poly.Coeffs[0])
	}
}

func TestCiphertextDeserializationRejectsCorruption(t *testing.T) {
	tc := newTestContext(t, 121)
	ct, _ := tc.enc.EncryptScalar(1)
	b, _ := MarshalCiphertext(ct)

	t.Run("bad magic", func(t *testing.T) {
		bad := bytes.Clone(b)
		bad[0] ^= 0xFF
		if _, err := UnmarshalCiphertext(bad, tc.params); err == nil {
			t.Fatal("corrupted magic accepted")
		}
	})
	t.Run("wrong params", func(t *testing.T) {
		other, _ := DefaultParameters(2048, 65537)
		if _, err := UnmarshalCiphertext(b, other); err == nil {
			t.Fatal("wrong params accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := UnmarshalCiphertext(b[:len(b)/2], tc.params); err == nil {
			t.Fatal("truncated ciphertext accepted")
		}
	})
	t.Run("out of range coefficient", func(t *testing.T) {
		bad := bytes.Clone(b)
		// Overwrite a coefficient with q (first poly data starts after the
		// 24-byte ct header + 4-byte poly length).
		off := 24 + 4
		for i := 0; i < 8; i++ {
			bad[off+i] = 0xFF
		}
		if _, err := UnmarshalCiphertext(bad, tc.params); err == nil {
			t.Fatal("out-of-range coefficient accepted")
		}
	})
}

func TestKeySerializationRoundTrips(t *testing.T) {
	tc := newTestContext(t, 122)

	t.Run("parameters", func(t *testing.T) {
		b, err := MarshalParameters(tc.params)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalParameters(b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(tc.params) {
			t.Fatal("parameters roundtrip mismatch")
		}
	})

	t.Run("secret key", func(t *testing.T) {
		b, err := MarshalSecretKey(tc.sk)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalSecretKey(b)
		if err != nil {
			t.Fatal(err)
		}
		// The deserialized key must decrypt ciphertexts made under the
		// original.
		dec, err := NewDecryptor(got)
		if err != nil {
			t.Fatal(err)
		}
		ct, _ := tc.enc.EncryptScalar(31337 % tc.params.T)
		pt, err := dec.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Poly.Coeffs[0] != 31337%tc.params.T {
			t.Fatal("deserialized secret key fails to decrypt")
		}
	})

	t.Run("public key", func(t *testing.T) {
		b, err := MarshalPublicKey(tc.pk)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPublicKey(b)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := NewEncryptor(got, ring.NewSeededSource(55))
		if err != nil {
			t.Fatal(err)
		}
		ct, err := enc.EncryptScalar(99)
		if err != nil {
			t.Fatal(err)
		}
		if pt := decryptOK(t, tc, ct); pt.Poly.Coeffs[0] != 99 {
			t.Fatal("deserialized public key produces bad ciphertexts")
		}
	})

	t.Run("evaluation keys", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteEvaluationKeys(&buf, tc.ek); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEvaluationKeys(&buf)
		if err != nil {
			t.Fatal(err)
		}
		cta, _ := tc.enc.EncryptScalar(12)
		ctb, _ := tc.enc.EncryptScalar(13)
		prod, _ := tc.eval.Mul(cta, ctb)
		relin, err := tc.eval.Relinearize(prod, got)
		if err != nil {
			t.Fatal(err)
		}
		if pt := decryptOK(t, tc, relin); pt.Poly.Coeffs[0] != 156 {
			t.Fatalf("relin with deserialized keys: %d", pt.Poly.Coeffs[0])
		}
	})
}

func TestPlaintextValidate(t *testing.T) {
	tc := newTestContext(t, 123)
	pt := NewPlaintext(tc.params)
	pt.Poly.Coeffs[5] = tc.params.T
	if err := pt.Validate(); err == nil {
		t.Fatal("coefficient == t should be rejected")
	}
	if _, err := tc.enc.Encrypt(pt); err == nil {
		t.Fatal("encrypting invalid plaintext should fail")
	}
}

func TestDecompDigits(t *testing.T) {
	tc := newTestContext(t, 124)
	digits := tc.params.DecompDigits()
	// 46-bit modulus with base 2^16 needs 3 digits.
	if digits != 3 {
		t.Fatalf("DecompDigits = %d, want 3", digits)
	}
	if len(tc.ek.K0) != digits || len(tc.ek.K1) != digits {
		t.Fatalf("evaluation keys have %d digits", len(tc.ek.K0))
	}
}

func TestSchoolbookTensorMatchesFastPath(t *testing.T) {
	tc := newTestContext(t, 130)
	slow, err := NewEvaluator(tc.params, WithSchoolbookTensor())
	if err != nil {
		t.Fatal(err)
	}
	src := ring.NewSeededSource(700)
	a := randomPlaintext(tc, src, tc.params.N)
	b := randomPlaintext(tc, src, tc.params.N)
	cta, _ := tc.enc.Encrypt(a)
	ctb, _ := tc.enc.Encrypt(b)

	fast, err := tc.eval.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := slow.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast.Polys {
		if !fast.Polys[i].Equal(ref.Polys[i]) {
			t.Fatalf("component %d differs between tensor paths", i)
		}
	}
	fastSq, err := tc.eval.Square(cta)
	if err != nil {
		t.Fatal(err)
	}
	refSq, err := slow.Square(cta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fastSq.Polys {
		if !fastSq.Polys[i].Equal(refSq.Polys[i]) {
			t.Fatalf("square component %d differs between tensor paths", i)
		}
	}
}

func TestMulScalarAddIntoMatchesSeparateOps(t *testing.T) {
	tc := newTestContext(t, 140)
	src := ring.NewSeededSource(800)
	for trial := 0; trial < 5; trial++ {
		a := randomPlaintext(tc, src, 8)
		b := randomPlaintext(tc, src, 8)
		cta, _ := tc.enc.Encrypt(a)
		ctb, _ := tc.enc.Encrypt(b)
		k := src.Uint64() % tc.params.T

		// acc = cta + k*ctb via the fused op.
		acc := cta.Copy()
		if err := tc.eval.MulScalarAddInto(acc, ctb, k); err != nil {
			t.Fatal(err)
		}
		// Reference: separate multiply and add.
		scaled, err := tc.eval.MulScalar(ctb, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tc.eval.Add(cta, scaled)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Polys {
			if !acc.Polys[i].Equal(want.Polys[i]) {
				t.Fatalf("trial %d: fused op differs in component %d", trial, i)
			}
		}
	}
}

func TestMulScalarAddIntoValidation(t *testing.T) {
	tc := newTestContext(t, 141)
	a, _ := tc.enc.EncryptScalar(1)
	b, _ := tc.enc.EncryptScalar(2)
	prod, _ := tc.eval.Mul(a, b) // size 3
	if err := tc.eval.MulScalarAddInto(prod, a, 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := tc.eval.MulScalarAddInto(nil, a, 1); err == nil {
		t.Fatal("nil acc accepted")
	}
}

func TestHomomorphismQuick(t *testing.T) {
	// Property: Dec(Enc(a) + Enc(b)) = a+b and Dec(Enc(a) * pt(b)) = a*b
	// for random scalars.
	tc := newTestContext(t, 142)
	f := func(a, b uint16) bool {
		av := uint64(a) % tc.params.T
		bv := uint64(b) % tc.params.T
		cta, err := tc.enc.EncryptScalar(av)
		if err != nil {
			return false
		}
		ctb, err := tc.enc.EncryptScalar(bv)
		if err != nil {
			return false
		}
		sum, err := tc.eval.Add(cta, ctb)
		if err != nil {
			return false
		}
		ptSum, err := tc.dec.Decrypt(sum)
		if err != nil || ptSum.Poly.Coeffs[0] != (av+bv)%tc.params.T {
			return false
		}
		ptB := NewPlaintext(tc.params)
		ptB.Poly.Coeffs[0] = bv
		prod, err := tc.eval.MulPlain(cta, ptB)
		if err != nil {
			return false
		}
		ptProd, err := tc.dec.Decrypt(prod)
		return err == nil && ptProd.Poly.Coeffs[0] == av*bv%tc.params.T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestParametersAccessors(t *testing.T) {
	tc := newTestContext(t, 150)
	if tc.params.String() == "" {
		t.Fatal("empty String()")
	}
	if tc.params.Delta() != tc.params.Q/tc.params.T {
		t.Fatal("Delta mismatch")
	}
	if tc.params.MaxNoiseBudget() <= 0 {
		t.Fatal("MaxNoiseBudget must be positive")
	}
	if got := tc.params.PlainLift(); got != tc.params.Q%tc.params.T {
		t.Fatalf("PlainLift = %d", got)
	}
	var zero Parameters
	if zero.Valid() {
		t.Fatal("zero parameters valid")
	}
}

func TestDefaultParametersLowLiftErrors(t *testing.T) {
	if _, err := DefaultParametersLowLift(1000, 256); err == nil {
		t.Fatal("unsupported degree accepted")
	}
	// A congruence modulus larger than the prime range must fail.
	if _, err := DefaultParametersLowLift(1024, 1<<45); err == nil {
		t.Fatal("oversized plaintext modulus accepted")
	}
}

func TestLiftCentered(t *testing.T) {
	tc := newTestContext(t, 151)
	p := tc.params
	if p.LiftCentered(3) != 3 {
		t.Fatal("small values lift unchanged")
	}
	// t-1 represents -1 and must lift to q-1.
	if p.LiftCentered(p.T-1) != p.Q-1 {
		t.Fatalf("LiftCentered(t-1) = %d, want q-1", p.LiftCentered(p.T-1))
	}
}
