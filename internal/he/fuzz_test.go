package he

import (
	"bytes"
	"testing"

	"hesgx/internal/ring"
)

// Fuzz targets for the deserialization attack surface: hostile bytes from
// the network must produce errors, never panics or out-of-range structures.

func fuzzParams(t *testing.F) Parameters {
	t.Helper()
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParameters(1024, q, 257, DefaultDecompositionBase)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func FuzzUnmarshalCiphertext(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(1))
	if err != nil {
		f.Fatal(err)
	}
	_, pk := kg.GenKeyPair()
	enc, err := NewEncryptor(pk, ring.NewSeededSource(2))
	if err != nil {
		f.Fatal(err)
	}
	ct, err := enc.EncryptScalar(42)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := MarshalCiphertext(ct)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:17])
	mutated := bytes.Clone(valid)
	mutated[30] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalCiphertext(data, params)
		if err != nil {
			return
		}
		// Anything accepted must be structurally valid.
		if verr := got.Validate(); verr != nil {
			t.Fatalf("accepted ciphertext fails validation: %v", verr)
		}
	})
}

func FuzzReadSecretKey(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(3))
	if err != nil {
		f.Fatal(err)
	}
	sk := kg.GenSecretKey()
	valid, err := MarshalSecretKey(sk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:9])
	f.Add([]byte("FVSKgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalSecretKey(data)
		if err != nil {
			return
		}
		if err := got.Params.Ring().ValidatePoly(got.S); err != nil {
			t.Fatalf("accepted secret key fails validation: %v", err)
		}
	})
}

func FuzzReadPublicKey(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(4))
	if err != nil {
		f.Fatal(err)
	}
	_, pk := kg.GenKeyPair()
	valid, err := MarshalPublicKey(pk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalPublicKey(data)
		if err != nil {
			return
		}
		r := got.Params.Ring()
		if err := r.ValidatePoly(got.P0); err != nil {
			t.Fatalf("accepted public key p0 invalid: %v", err)
		}
		if err := r.ValidatePoly(got.P1); err != nil {
			t.Fatalf("accepted public key p1 invalid: %v", err)
		}
	})
}
