package he

import (
	"bytes"
	"testing"

	"hesgx/internal/ring"
)

// Fuzz targets for the deserialization attack surface: hostile bytes from
// the network must produce errors, never panics or out-of-range structures.

func fuzzParams(t *testing.F) Parameters {
	t.Helper()
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParameters(1024, q, 257, DefaultDecompositionBase)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func FuzzUnmarshalCiphertext(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(1))
	if err != nil {
		f.Fatal(err)
	}
	_, pk := kg.GenKeyPair()
	enc, err := NewEncryptor(pk, ring.NewSeededSource(2))
	if err != nil {
		f.Fatal(err)
	}
	ct, err := enc.EncryptScalar(42)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := MarshalCiphertext(ct)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:17])
	mutated := bytes.Clone(valid)
	mutated[30] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalCiphertext(data, params)
		if err != nil {
			return
		}
		// Anything accepted must be structurally valid.
		if verr := got.Validate(); verr != nil {
			t.Fatalf("accepted ciphertext fails validation: %v", verr)
		}
	})
}

func FuzzReadSecretKey(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(3))
	if err != nil {
		f.Fatal(err)
	}
	sk := kg.GenSecretKey()
	valid, err := MarshalSecretKey(sk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:9])
	f.Add([]byte("FVSKgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalSecretKey(data)
		if err != nil {
			return
		}
		if err := got.Params.Ring().ValidatePoly(got.S); err != nil {
			t.Fatalf("accepted secret key fails validation: %v", err)
		}
	})
}

func FuzzReadPublicKey(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(4))
	if err != nil {
		f.Fatal(err)
	}
	_, pk := kg.GenKeyPair()
	valid, err := MarshalPublicKey(pk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalPublicKey(data)
		if err != nil {
			return
		}
		r := got.Params.Ring()
		if err := r.ValidatePoly(got.P0); err != nil {
			t.Fatalf("accepted public key p0 invalid: %v", err)
		}
		if err := r.ValidatePoly(got.P1); err != nil {
			t.Fatalf("accepted public key p1 invalid: %v", err)
		}
	})
}

// FuzzToNTTToCoeffRoundTrip checks the domain conversions are exact mutual
// inverses for arbitrary in-range polynomials, and that form-gated
// operations (serialize, decrypt) reject evaluation form however it was
// reached.
func FuzzToNTTToCoeffRoundTrip(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(5))
	if err != nil {
		f.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	enc, err := NewEncryptor(pk, ring.NewSeededSource(6))
	if err != nil {
		f.Fatal(err)
	}
	dec, err := NewDecryptor(sk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(0), uint64(1))
	f.Add(uint64(42), uint64(0xDEADBEEF))
	f.Add(params.T-1, params.Q-1)

	f.Fuzz(func(t *testing.T, v, seed uint64) {
		ct, err := enc.EncryptScalar(v % params.T)
		if err != nil {
			t.Fatal(err)
		}
		// Scribble deterministic in-range noise over the polys so the
		// round-trip is exercised on arbitrary ring elements, not just
		// well-formed encryptions.
		r := ct.Params.Ring()
		state := seed
		for _, p := range ct.Polys {
			for i := range p.Coeffs {
				state = state*6364136223846793005 + 1442695040888963407
				p.Coeffs[i] = state % r.Mod.Q
			}
		}
		orig := ct.Copy()
		ct.ToNTT()
		if _, err := MarshalCiphertext(ct); err == nil {
			t.Fatal("serialized an NTT-form ciphertext")
		}
		if _, err := dec.Decrypt(ct); err == nil {
			t.Fatal("decrypted an NTT-form ciphertext")
		}
		ct.ToCoeff()
		if ct.Form != CoeffForm {
			t.Fatalf("form after round trip: %v", ct.Form)
		}
		for i := range ct.Polys {
			if !ct.Polys[i].Equal(orig.Polys[i]) {
				t.Fatalf("poly %d does not round-trip", i)
			}
		}
	})
}
