package he

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hesgx/internal/ring"
)

// Fuzz targets for the deserialization attack surface: hostile bytes from
// the network must produce errors, never panics or out-of-range structures.

func fuzzParams(t *testing.F) Parameters {
	t.Helper()
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParameters(1024, q, 257, DefaultDecompositionBase)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func FuzzUnmarshalCiphertext(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(1))
	if err != nil {
		f.Fatal(err)
	}
	_, pk := kg.GenKeyPair()
	enc, err := NewEncryptor(pk, ring.NewSeededSource(2))
	if err != nil {
		f.Fatal(err)
	}
	ct, err := enc.EncryptScalar(42)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := MarshalCiphertext(ct)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:17])
	mutated := bytes.Clone(valid)
	mutated[30] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalCiphertext(data, params)
		if err != nil {
			return
		}
		// Anything accepted must be structurally valid.
		if verr := got.Validate(); verr != nil {
			t.Fatalf("accepted ciphertext fails validation: %v", verr)
		}
	})
}

func FuzzReadSecretKey(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(3))
	if err != nil {
		f.Fatal(err)
	}
	sk := kg.GenSecretKey()
	valid, err := MarshalSecretKey(sk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:9])
	f.Add([]byte("FVSKgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalSecretKey(data)
		if err != nil {
			return
		}
		if err := got.Params.Ring().ValidatePoly(got.S); err != nil {
			t.Fatalf("accepted secret key fails validation: %v", err)
		}
	})
}

func FuzzReadPublicKey(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(4))
	if err != nil {
		f.Fatal(err)
	}
	_, pk := kg.GenKeyPair()
	valid, err := MarshalPublicKey(pk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalPublicKey(data)
		if err != nil {
			return
		}
		r := got.Params.Ring()
		if err := r.ValidatePoly(got.P0); err != nil {
			t.Fatalf("accepted public key p0 invalid: %v", err)
		}
		if err := r.ValidatePoly(got.P1); err != nil {
			t.Fatalf("accepted public key p1 invalid: %v", err)
		}
	})
}

// FuzzToNTTToCoeffRoundTrip checks the domain conversions are exact mutual
// inverses for arbitrary in-range polynomials, and that form-gated
// operations (serialize, decrypt) reject evaluation form however it was
// reached.
func FuzzToNTTToCoeffRoundTrip(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(5))
	if err != nil {
		f.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	enc, err := NewEncryptor(pk, ring.NewSeededSource(6))
	if err != nil {
		f.Fatal(err)
	}
	dec, err := NewDecryptor(sk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(0), uint64(1))
	f.Add(uint64(42), uint64(0xDEADBEEF))
	f.Add(params.T-1, params.Q-1)

	f.Fuzz(func(t *testing.T, v, seed uint64) {
		ct, err := enc.EncryptScalar(v % params.T)
		if err != nil {
			t.Fatal(err)
		}
		// Scribble deterministic in-range noise over the polys so the
		// round-trip is exercised on arbitrary ring elements, not just
		// well-formed encryptions.
		r := ct.Params.Ring()
		state := seed
		for _, p := range ct.Polys {
			for i := range p.Coeffs {
				state = state*6364136223846793005 + 1442695040888963407
				p.Coeffs[i] = state % r.Mod.Q
			}
		}
		orig := ct.Copy()
		ct.ToNTT()
		if _, err := MarshalCiphertext(ct); err == nil {
			t.Fatal("serialized an NTT-form ciphertext")
		}
		if _, err := dec.Decrypt(ct); err == nil {
			t.Fatal("decrypted an NTT-form ciphertext")
		}
		ct.ToCoeff()
		if ct.Form != CoeffForm {
			t.Fatalf("form after round trip: %v", ct.Form)
		}
		for i := range ct.Polys {
			if !ct.Polys[i].Equal(orig.Polys[i]) {
				t.Fatalf("poly %d does not round-trip", i)
			}
		}
	})
}

// FuzzReadSeededCiphertext attacks the seeded-upload decoder: hostile bytes
// must error, never panic or build an invalid structure. Any accepted seed
// is harmless by construction (every seed expands to some uniform poly), so
// the invariants to defend are the c0 coefficient range and the length
// bounds.
func FuzzReadSeededCiphertext(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(7))
	if err != nil {
		f.Fatal(err)
	}
	sk := kg.GenSecretKey()
	senc, err := NewSymmetricEncryptor(sk, ring.NewSeededSource(8))
	if err != nil {
		f.Fatal(err)
	}
	pt := NewPlaintext(params)
	pt.Poly.Coeffs[0] = 99
	sc, err := senc.EncryptSeeded(pt)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := MarshalSeededCiphertext(sc)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:24])
	f.Add(valid[:len(valid)-3])
	mutated := bytes.Clone(valid)
	mutated[4] ^= 0xFF // flags byte
	f.Add(mutated)
	hostileLen := bytes.Clone(valid)
	copy(hostileLen[25+SeedSize:], []byte{0xFF, 0xFF, 0xFF, 0xFF}) // packed count
	f.Add(hostileLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalSeededCiphertext(data, params)
		if err != nil {
			return
		}
		if verr := params.Ring().ValidatePoly(got.C0); verr != nil {
			t.Fatalf("accepted seeded ciphertext with invalid c0: %v", verr)
		}
		ct, err := got.Expand()
		if err != nil {
			t.Fatalf("accepted seeded ciphertext fails to expand: %v", err)
		}
		if verr := ct.Validate(); verr != nil {
			t.Fatalf("expanded ciphertext fails validation: %v", verr)
		}
	})
}

// FuzzUnmarshalCiphertextAny drives the version-dispatching reader with both
// wire generations plus hostile mutations: v1 fixed-width, v2 bit-packed,
// and garbage must all decode-or-error without panicking.
func FuzzUnmarshalCiphertextAny(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(9))
	if err != nil {
		f.Fatal(err)
	}
	_, pk := kg.GenKeyPair()
	enc, err := NewEncryptor(pk, ring.NewSeededSource(10))
	if err != nil {
		f.Fatal(err)
	}
	ct, err := enc.EncryptScalar(7)
	if err != nil {
		f.Fatal(err)
	}
	v1, err := MarshalCiphertext(ct)
	if err != nil {
		f.Fatal(err)
	}
	v2, err := MarshalCiphertextPacked(ct)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v1)
	f.Add(v2)
	f.Add(v2[:30])
	crossed := bytes.Clone(v2)
	copy(crossed[:4], v1[:4]) // v1 magic on a v2 body
	f.Add(crossed)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalCiphertextAny(data, params)
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("accepted ciphertext fails validation: %v", verr)
		}
	})
}

// FuzzUnmarshalGaloisKeys drives the Galois-key wire decoder — the payload
// of the v2 key-upload message — with valid encodings, truncations, and
// header mutations. The decoder must bound the claimed key count against
// the payload length before allocating (the PR 4 OOM discipline) and must
// never panic or accept structurally invalid key material.
func FuzzUnmarshalGaloisKeys(f *testing.F) {
	params := fuzzParams(f)
	kg, err := NewKeyGenerator(params, ring.NewSeededSource(11))
	if err != nil {
		f.Fatal(err)
	}
	sk := kg.GenSecretKey()
	// A wide base keeps the corpus small (3 digits instead of 23) without
	// changing the wire layout the decoder has to defend.
	gk, err := kg.GenGaloisKeys(sk, []int{1, -1}, 16)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := MarshalGaloisKeys(gk)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:36])
	f.Add(valid[:len(valid)-5])
	hostileCount := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hostileCount[36:], 0xFFFFFFFF)
	f.Add(hostileCount)
	hostileBase := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hostileBase[32:], 0)
	f.Add(hostileBase)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalGaloisKeys(data)
		if err != nil {
			return
		}
		if !got.Params.Valid() {
			t.Fatal("accepted galois keys with invalid parameters")
		}
		if got.BaseBits < 1 || got.BaseBits > 60 {
			t.Fatalf("accepted out-of-range base bits %d", got.BaseBits)
		}
		els := got.Elements()
		if len(els) == 0 {
			t.Fatal("accepted empty galois key set")
		}
		for _, g := range els {
			if g&1 == 0 || g == 1 || g >= uint64(2*got.Params.N) {
				t.Fatalf("accepted invalid galois element %d", g)
			}
		}
	})
}
