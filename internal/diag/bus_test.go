package diag

import (
	"sync"
	"testing"
	"time"

	"hesgx/internal/stats"
)

func TestBusPublishStampsAndRetains(t *testing.T) {
	reg := stats.NewRegistry()
	b := NewBus(4, reg)
	for i := 0; i < 6; i++ {
		b.Publish(Event{Type: TypeManual, Message: "m"})
	}
	recent := b.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(recent))
	}
	// Oldest first, sequence numbers contiguous and monotone.
	for i, e := range recent {
		if want := uint64(3 + i); e.Seq != want {
			t.Errorf("recent[%d].Seq = %d, want %d", i, e.Seq, want)
		}
		if e.Time.IsZero() {
			t.Errorf("recent[%d] missing timestamp", i)
		}
		if e.Severity != SeverityWarn {
			t.Errorf("recent[%d].Severity = %q, want default warn", i, e.Severity)
		}
	}
	if got := reg.Counter("diag.events_published").Value(); got != 6 {
		t.Errorf("diag.events_published = %d, want 6", got)
	}
	if got := b.Recent(2); len(got) != 2 || got[1].Seq != 6 {
		t.Errorf("Recent(2) = %+v, want the two newest", got)
	}
}

func TestBusNilSafe(t *testing.T) {
	var b *Bus
	b.Publish(Event{Type: TypeManual}) // must not panic
	if got := b.Recent(0); got != nil {
		t.Errorf("nil bus Recent = %v, want nil", got)
	}
}

func TestBusSubscribeDelivery(t *testing.T) {
	b := NewBus(8, nil)
	ch, cancel := b.Subscribe(4)
	defer cancel()
	b.Publish(Event{Type: TypeWireFault, Stage: "frame_decode"})
	select {
	case e := <-ch:
		if e.Type != TypeWireFault || e.Stage != "frame_decode" {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("event not delivered")
	}
}

func TestBusSlowSubscriberDropsNotBlocks(t *testing.T) {
	reg := stats.NewRegistry()
	b := NewBus(8, reg)
	_, cancel := b.Subscribe(1) // nobody draining, buffer of one
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			b.Publish(Event{Type: TypeManual})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a full subscriber")
	}
	if got := reg.Counter("diag.events_dropped").Value(); got != 4 {
		t.Errorf("diag.events_dropped = %d, want 4", got)
	}
}

func TestBusSubscribeCancelRace(t *testing.T) {
	// Publishers fanning out while subscribers churn: with the fan-out
	// under the bus mutex there is no send-on-closed-channel window. Run
	// with -race.
	b := NewBus(16, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Publish(Event{Type: TypeManual})
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		ch, cancel := b.Subscribe(1)
		go func() {
			for range ch {
			}
		}()
		cancel()
	}
	close(stop)
	wg.Wait()
}
