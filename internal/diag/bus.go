package diag

import (
	"sync"
	"time"

	"hesgx/internal/stats"
)

// DefaultBusCapacity is the recent-event ring size when NewBus gets a
// non-positive capacity.
const DefaultBusCapacity = 256

// Bus is the process-wide diagnostic event fan-out: publishers record
// anomalies, subscribers (the capturer, tests) consume them, and a
// bounded ring retains the recent log for bundles. Publish never blocks:
// a subscriber that falls behind loses events (counted in
// diag.events_dropped) rather than stalling an alerting hot path. A nil
// *Bus is safe to publish into — instrumented code needs no nil checks.
type Bus struct {
	metrics *stats.Registry

	mu   sync.Mutex
	seq  uint64
	ring []Event
	pos  int
	n    int
	subs map[int]chan Event
	next int
}

// NewBus returns a bus retaining the last capacity events
// (DefaultBusCapacity when <= 0). The registry receives the bus's own
// health counters and may be nil.
func NewBus(capacity int, reg *stats.Registry) *Bus {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	return &Bus{metrics: reg, ring: make([]Event, capacity), subs: make(map[int]chan Event)}
}

// Publish stamps the event (sequence number; time and severity when the
// publisher left them zero) and fans it out. Safe on a nil bus.
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if e.Severity == "" {
		e.Severity = SeverityWarn
	}
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	b.ring[b.pos] = e
	b.pos = (b.pos + 1) % len(b.ring)
	if b.n < len(b.ring) {
		b.n++
	}
	var dropped int
	// Fan out under the mutex: the sends are non-blocking, and holding the
	// lock means cancel() can never close a channel mid-send.
	for _, ch := range b.subs {
		select {
		case ch <- e:
		default:
			dropped++
		}
	}
	b.mu.Unlock()
	b.metrics.Counter("diag.events_published").Inc()
	if dropped > 0 {
		b.metrics.Counter("diag.events_dropped").Add(int64(dropped))
	}
}

// Subscribe registers a buffered event channel. The returned cancel
// function unregisters it and closes the channel; events published while
// the buffer is full are dropped for this subscriber only.
func (b *Bus) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan Event, buf)
	b.mu.Lock()
	id := b.next
	b.next++
	b.subs[id] = ch
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		sub, ok := b.subs[id]
		delete(b.subs, id)
		b.mu.Unlock()
		if ok {
			close(sub)
		}
	}
	return ch, cancel
}

// Recent returns up to n retained events, oldest first (all when n <= 0).
// Safe on a nil bus (returns nil).
func (b *Bus) Recent(n int) []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 || n > b.n {
		n = b.n
	}
	out := make([]Event, 0, n)
	for i := b.n - n; i < b.n; i++ {
		out = append(out, b.ring[(b.pos-b.n+i+len(b.ring))%len(b.ring)])
	}
	return out
}
