package diag

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderIncident writes a human-readable incident report of a bundle:
// header and trigger, the event timeline, the metric deltas around the
// trigger, and the worst flight report in the window. Missing members
// degrade to "(not captured)" lines rather than errors — a partial bundle
// still tells part of the story.
func RenderIncident(w io.Writer, b *Bundle) error {
	bw := &errWriter{w: w}

	bw.printf("== hesgx incident report ==\n")
	if !b.Manifest.Created.IsZero() {
		bw.printf("captured: %s (bundle format v%d, %d members)\n",
			b.Manifest.Created.Format("2006-01-02 15:04:05 MST"), b.Manifest.FormatVersion, len(b.Files))
	}
	if info := b.Files["buildinfo.json"]; len(info) > 0 {
		bw.printf("build: %s\n", strings.TrimSpace(compactJSON(info)))
	}

	trigger := b.Trigger()
	bw.printf("\n-- trigger --\n")
	if trigger == nil {
		bw.printf("(on-demand capture: no triggering event)\n")
	} else {
		renderEvent(bw, *trigger)
	}

	bw.printf("\n-- event timeline --\n")
	events := b.Events()
	if len(events) == 0 {
		bw.printf("(no events captured)\n")
	}
	for _, e := range events {
		renderEvent(bw, e)
	}

	bw.printf("\n-- metrics around the trigger --\n")
	renderMetrics(bw, b, trigger)

	bw.printf("\n-- worst flight report --\n")
	renderWorstReport(bw, b, trigger)

	if g := b.Files["goroutines.txt"]; len(g) > 0 {
		bw.printf("\n-- runtime --\ngoroutines: %d (full dump in goroutines.txt)\n",
			bytes.Count(g, []byte("\ngoroutine "))+1)
	}
	if h := b.Files["heap.pprof"]; len(h) > 0 {
		bw.printf("heap profile: %d bytes (heap.pprof; inspect with go tool pprof)\n", len(h))
	}
	return bw.err
}

func renderEvent(bw *errWriter, e Event) {
	bw.printf("%s  #%d %-5s %-18s", e.Time.Format("15:04:05.000"), e.Seq, e.Severity, e.Type)
	if e.Stage != "" {
		bw.printf(" [%s]", e.Stage)
	}
	bw.printf(" %s", e.Message)
	if e.Threshold != 0 {
		bw.printf(" (value %.3g, threshold %.3g)", e.Value, e.Threshold)
	}
	if e.TraceID != 0 {
		bw.printf(" trace=%d", e.TraceID)
	}
	bw.printf("\n")
}

// renderMetrics prints the samples bracketing the trigger time (all when
// there is no trigger), focusing on the busiest rate series.
func renderMetrics(bw *errWriter, b *Bundle, trigger *Event) {
	samples := b.Metrics()
	if len(samples) == 0 {
		bw.printf("(no metric window captured)\n")
		return
	}
	bw.printf("window: %d samples, %s .. %s\n", len(samples),
		samples[0].T.Format("15:04:05"), samples[len(samples)-1].T.Format("15:04:05"))

	// T0 = the sample nearest the trigger; the tail of the window otherwise.
	t0 := len(samples) - 1
	if trigger != nil {
		for i, s := range samples {
			if !s.T.Before(trigger.Time) {
				t0 = i
				break
			}
		}
	}
	lo := t0 - 5
	if lo < 0 {
		lo = 0
	}
	hi := t0 + 5
	if hi >= len(samples) {
		hi = len(samples) - 1
	}

	// Rank rate series by their peak within the excerpt so the table shows
	// what actually moved.
	peak := map[string]float64{}
	for _, s := range samples[lo : hi+1] {
		for k, v := range s.Rates {
			if v > peak[k] {
				peak[k] = v
			}
		}
	}
	keys := make([]string, 0, len(peak))
	for k := range peak {
		if peak[k] > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if peak[keys[i]] != peak[keys[j]] {
			return peak[keys[i]] > peak[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > 8 {
		keys = keys[:8]
	}
	if len(keys) == 0 {
		bw.printf("(no rate activity in the excerpt)\n")
		return
	}
	bw.printf("%-12s", "t")
	for _, k := range keys {
		bw.printf(" %20s", shorten(k, 20))
	}
	bw.printf("  (per second)\n")
	for i := lo; i <= hi; i++ {
		s := samples[i]
		mark := " "
		if i == t0 && trigger != nil {
			mark = "*"
		}
		bw.printf("%s%-11s", mark, s.T.Format("15:04:05"))
		for _, k := range keys {
			bw.printf(" %20.2f", s.Rates[k])
		}
		bw.printf("\n")
	}
	if trigger != nil {
		bw.printf("(* = sample at the trigger)\n")
	}
}

func renderWorstReport(bw *errWriter, b *Bundle, trigger *Event) {
	all := b.Reports()
	reports := all[:0]
	for _, r := range all {
		if r != nil {
			reports = append(reports, r)
		}
	}
	if len(reports) == 0 {
		bw.printf("(no flight reports captured)\n")
		return
	}
	// Worst = the trigger's own trace when bundled; otherwise the tightest
	// measured noise budget, falling back to the slowest wall clock.
	worst := reports[0]
	matched := false
	if trigger != nil && trigger.TraceID != 0 {
		for _, r := range reports {
			if r != nil && r.TraceID == trigger.TraceID {
				worst = r
				matched = true
				bw.printf("(the trigger's own trace %d)\n", r.TraceID)
				break
			}
		}
	}
	if !matched {
		for _, r := range reports[1:] {
			if r == nil {
				continue
			}
			switch {
			case worse(r.MinMeasuredBudgetBits, worst.MinMeasuredBudgetBits):
				worst = r
			case budgetEq(r.MinMeasuredBudgetBits, worst.MinMeasuredBudgetBits) && r.WallMS > worst.WallMS:
				worst = r
			}
		}
	}
	if worst == nil {
		bw.printf("(no usable flight report)\n")
		return
	}
	bw.printf("trace %d %q: wall %.2fms queue %.2fms", worst.TraceID, worst.Name, worst.WallMS, worst.QueueWaitMS)
	if worst.Lanes > 0 {
		bw.printf(" lanes %d", worst.Lanes)
	}
	if v := worst.MinMeasuredBudgetBits; v != nil {
		bw.printf(" min_measured_budget %.2f bits", *v)
	}
	if v := worst.MinPredictedBudgetBits; v != nil {
		bw.printf(" min_predicted_budget %.2f bits", *v)
	}
	bw.printf("\n")
	for _, l := range worst.Layers {
		bw.printf("  %-16s %8.2fms", l.Label, l.WallMS)
		if l.Transitions > 0 {
			bw.printf("  transitions %d", l.Transitions)
		}
		if l.PageFaults > 0 {
			bw.printf("  page_faults %d", l.PageFaults)
		}
		if v := l.MeasuredBudgetMinBits; v != nil {
			bw.printf("  budget_min %.2f bits", *v)
		}
		bw.printf("\n")
	}
}

// worse reports whether budget a is strictly tighter than b (nil = not
// measured = never worse).
func worse(a, b *float64) bool {
	if a == nil {
		return false
	}
	return b == nil || *a < *b
}

func budgetEq(a, b *float64) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}

// compactJSON flattens a small JSON document to one log-friendly line.
func compactJSON(data []byte) string {
	var buf bytes.Buffer
	s := string(data)
	s = strings.ReplaceAll(s, "\n", " ")
	for strings.Contains(s, "  ") {
		s = strings.ReplaceAll(s, "  ", " ")
	}
	buf.WriteString(s)
	return buf.String()
}

// errWriter latches the first write error so render code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}
