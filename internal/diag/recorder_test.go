package diag

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hesgx/internal/stats"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestRecorder(reg *stats.Registry, capacity int) (*Recorder, *fakeClock) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	return NewRecorder(RecorderConfig{Registry: reg, Capacity: capacity, Now: clock.now}), clock
}

func TestRecorderRatesAndWindows(t *testing.T) {
	reg := stats.NewRegistry()
	rec, clock := newTestRecorder(reg, 16)

	reg.Counter("jobs").Add(100)
	rec.Tick() // baseline: no dt yet

	reg.Counter("jobs").Add(30)
	reg.Gauge("depth").Set(5)
	for i := 0; i < 20; i++ {
		reg.ObserveHistogram("lat_ms", 8.0)
	}
	clock.advance(2 * time.Second)
	s := rec.Tick()

	if s.DtSeconds != 2 {
		t.Fatalf("dt = %g, want 2", s.DtSeconds)
	}
	if got := s.Rates["jobs"]; got != 15 {
		t.Errorf("jobs rate = %g/s, want 15 (30 over 2s)", got)
	}
	if got := s.Gauges["depth"]; got != 5 {
		t.Errorf("depth gauge = %g, want 5", got)
	}
	if got := s.Rates["lat_ms.count"]; got != 10 {
		t.Errorf("lat_ms.count rate = %g/s, want 10", got)
	}
	w, ok := s.Windows["lat_ms"]
	if !ok || w.Count != 20 {
		t.Fatalf("lat_ms window = %+v, want count 20", w)
	}
	if w.Mean != 8.0 {
		t.Errorf("window mean = %g, want 8", w.Mean)
	}
	if w.P99 <= 0 || w.P99 > 16 {
		t.Errorf("window p99 = %g, want within the 8ms bucket span", w.P99)
	}
}

func TestRecorderWindowIsolatesTicks(t *testing.T) {
	// The quantile must describe just the tick's observations: a slow tick
	// after many fast ones reports slow quantiles immediately.
	reg := stats.NewRegistry()
	rec, clock := newTestRecorder(reg, 16)
	for i := 0; i < 1000; i++ {
		reg.ObserveHistogram("lat_ms", 1.0)
	}
	rec.Tick()
	for i := 0; i < 10; i++ {
		reg.ObserveHistogram("lat_ms", 900.0)
	}
	clock.advance(time.Second)
	s := rec.Tick()
	if w := s.Windows["lat_ms"]; w.P50 < 400 {
		t.Errorf("window p50 = %g, want the slow tick to dominate", w.P50)
	}
}

func TestRecorderCounterReset(t *testing.T) {
	reg := stats.NewRegistry()
	rec, clock := newTestRecorder(reg, 16)
	reg.Counter("jobs").Add(1000)
	rec.Tick()

	// Simulate a counter reset: the cumulative value goes backwards. The
	// rate must restart from the new total, not wrap to a huge delta.
	reg.Counter("jobs").Add(-1000 + 4)
	clock.advance(time.Second)
	s := rec.Tick()
	if got := s.Rates["jobs"]; got != 4 {
		t.Errorf("post-reset rate = %g/s, want 4 (restart from the new total)", got)
	}

	// Sample resets follow the same rule via the N regression check.
	if got := counterRate(100, 40, 2); got != 20 {
		t.Errorf("counterRate(100, 40, 2) = %g, want 20", got)
	}
	if got := counterRate(100, 140, 2); got != 20 {
		t.Errorf("counterRate(100, 140, 2) = %g, want 20", got)
	}
}

func TestRecorderRingAndSamples(t *testing.T) {
	reg := stats.NewRegistry()
	rec, clock := newTestRecorder(reg, 4)
	for i := 0; i < 7; i++ {
		clock.advance(time.Second)
		rec.Tick()
	}
	got := rec.Samples(0)
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want ring capacity 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i].T.After(got[i-1].T) {
			t.Fatalf("samples not oldest-first: %v then %v", got[i-1].T, got[i].T)
		}
	}
	if two := rec.Samples(2); len(two) != 2 || !two[1].T.Equal(got[3].T) {
		t.Errorf("Samples(2) did not return the newest two")
	}
}

func TestRecorderOnSampleHook(t *testing.T) {
	reg := stats.NewRegistry()
	rec, clock := newTestRecorder(reg, 8)
	var seen []MetricSample
	rec.OnSample(func(s MetricSample) { seen = append(seen, s) })
	rec.Tick()
	clock.advance(time.Second)
	rec.Tick()
	if len(seen) != 2 {
		t.Fatalf("hook ran %d times, want 2", len(seen))
	}
	if seen[1].DtSeconds != 1 {
		t.Errorf("hook sample dt = %g, want 1", seen[1].DtSeconds)
	}
}

// TestRecorderNeverBlocksHotPath hammers the registry's lock-free hot
// paths from many goroutines while the sampler ticks concurrently. Run
// with -race: the point is that Tick only copies under the registry mutex
// and the hot paths stay race-free and unblocked throughout.
func TestRecorderNeverBlocksHotPath(t *testing.T) {
	reg := stats.NewRegistry()
	rec, clock := newTestRecorder(reg, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("lat_%d_ms", g%4)
			for {
				select {
				case <-stop:
					return
				default:
					reg.ObserveHistogram(name, float64(g+1))
					reg.Counter("ops").Inc()
					reg.Gauge("depth").Add(1)
				}
			}
		}(g)
	}
	deadline := time.After(500 * time.Millisecond)
	ticks := 0
loop:
	for {
		select {
		case <-deadline:
			break loop
		default:
			clock.advance(time.Second)
			rec.Tick()
			ticks++
		}
	}
	close(stop)
	wg.Wait()
	if ticks == 0 {
		t.Fatal("sampler made no progress under load")
	}
	if rec.LastTickCost() <= 0 {
		t.Error("tick cost not recorded")
	}
}

// BenchmarkRecorderTick measures the per-tick sampling cost over a
// registry populated like a busy serving process (the <1% of a 1s cadence
// acceptance bar: a tick must stay well under 10ms).
func BenchmarkRecorderTick(b *testing.B) {
	reg := stats.NewRegistry()
	for i := 0; i < 60; i++ {
		reg.Counter(fmt.Sprintf("counter_%d", i)).Add(int64(i * 17))
	}
	for i := 0; i < 20; i++ {
		reg.Gauge(fmt.Sprintf("gauge_%d", i)).Set(int64(i))
	}
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("hist_%d_ms", i)
		for j := 0; j < 100; j++ {
			reg.ObserveHistogram(name, float64(j%37))
		}
	}
	rec := NewRecorder(RecorderConfig{Registry: reg})
	rec.Tick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Tick()
	}
	b.StopTimer()
	b.ReportMetric(float64(rec.LastTickCost().Nanoseconds()), "ns/tick")
}
