package diag

import (
	"testing"
	"time"
)

func shedSample(t time.Time, submitted, rejected float64) MetricSample {
	return MetricSample{
		T:         t,
		DtSeconds: 1,
		Rates: map[string]float64{
			"serve.jobs.submitted": submitted,
			"serve.jobs.rejected":  rejected,
		},
	}
}

func TestMonitorShedSpikeEdgeTriggered(t *testing.T) {
	bus := NewBus(32, nil)
	m := NewMonitor(MonitorConfig{Bus: bus, ShedRate: 0.10, MinEvents: 10})
	now := time.Unix(1_700_000_000, 0)

	// Healthy ticks: nothing published.
	for i := 0; i < 3; i++ {
		m.Observe(shedSample(now, 100, 0))
	}
	// Spike sustained over three ticks: exactly one event.
	for i := 0; i < 3; i++ {
		m.Observe(shedSample(now, 80, 20))
	}
	events := bus.Recent(0)
	if len(events) != 1 {
		t.Fatalf("sustained spike published %d events, want 1", len(events))
	}
	e := events[0]
	if e.Type != TypeShedSpike || e.Severity != SeverityWarn || e.Stage != "scheduler" {
		t.Fatalf("unexpected event %+v", e)
	}
	if e.Value != 0.20 || e.Threshold != 0.10 {
		t.Errorf("event value/threshold = %g/%g, want 0.2/0.1", e.Value, e.Threshold)
	}

	// Recovery, then a second spike: a second edge.
	m.Observe(shedSample(now, 100, 0))
	m.Observe(shedSample(now, 50, 50))
	if got := len(bus.Recent(0)); got != 2 {
		t.Fatalf("second spike: %d events total, want 2", got)
	}
}

func TestMonitorShedIgnoresQuietTicks(t *testing.T) {
	bus := NewBus(32, nil)
	m := NewMonitor(MonitorConfig{Bus: bus, ShedRate: 0.10, MinEvents: 10})
	// 100% shed of 3 offered jobs: below MinEvents, not judged.
	m.Observe(shedSample(time.Unix(0, 0), 0, 3))
	if got := len(bus.Recent(0)); got != 0 {
		t.Fatalf("quiet tick published %d events, want 0", got)
	}
}

func sgxSample(t time.Time, ecalls, transitions float64) MetricSample {
	return MetricSample{
		T:         t,
		DtSeconds: 1,
		Rates: map[string]float64{
			"ecall.sigmoid_ms.count": ecalls,
			"ecall.transitions":      transitions,
			"ecall.page_faults":      0,
		},
	}
}

func TestMonitorSGXAnomalyEdgeTriggered(t *testing.T) {
	bus := NewBus(32, nil)
	m := NewMonitor(MonitorConfig{Bus: bus, Factor: 3, Alpha: 0.2, WarmupTicks: 5, MinEvents: 10})
	now := time.Unix(1_700_000_000, 0)

	// Warmup: 2 transitions per ECALL, steady.
	for i := 0; i < 8; i++ {
		m.Observe(sgxSample(now, 100, 200))
	}
	if got := len(bus.Recent(0)); got != 0 {
		t.Fatalf("steady baseline published %d events, want 0", got)
	}

	// Excursion: 10 transitions per ECALL, 5x the baseline, held for three
	// ticks — one event, and the baseline must not absorb the excursion.
	for i := 0; i < 3; i++ {
		m.Observe(sgxSample(now, 100, 1000))
	}
	events := bus.Recent(0)
	if len(events) != 1 {
		t.Fatalf("sustained excursion published %d events, want 1", len(events))
	}
	e := events[0]
	if e.Type != TypeSGXAnomaly || e.Stage != "transitions" {
		t.Fatalf("unexpected event %+v", e)
	}
	if e.Value != 10 {
		t.Errorf("per-ECALL cost %g, want 10", e.Value)
	}

	// Back to baseline, then a second excursion: a second edge.
	for i := 0; i < 2; i++ {
		m.Observe(sgxSample(now, 100, 200))
	}
	m.Observe(sgxSample(now, 100, 900))
	if got := len(bus.Recent(0)); got != 2 {
		t.Fatalf("second excursion: %d events total, want 2", got)
	}
}

func TestMonitorNilBusIsNoop(t *testing.T) {
	m := NewMonitor(MonitorConfig{})
	m.Observe(shedSample(time.Unix(0, 0), 0, 1000)) // must not panic
}
