package diag

import (
	"encoding/json"

	"hesgx/internal/report"
	"hesgx/internal/trace"
)

// Canned bundle sources for the recorders every server already runs.

// ReportsSource bundles the recorder's last n flight reports as
// reports.json (all retained when n <= 0).
func ReportsSource(rec *report.Recorder, n int) Source {
	return Source{Name: "reports.json", Fn: func() ([]byte, error) {
		return json.MarshalIndent(rec.Last(n), "", "  ")
	}}
}

// TracesSource bundles the tracer's retained traces as traces.json in
// Chrome trace-event format — loadable in chrome://tracing or Perfetto
// straight out of the archive.
func TracesSource(tr *trace.Tracer, n int) Source {
	return Source{Name: "traces.json", Fn: func() ([]byte, error) {
		return trace.ChromeTrace(tr.Last(n))
	}}
}
