package diag

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path"
	"strings"

	"hesgx/internal/report"
)

// Bundle reading. Bundles cross trust boundaries — an operator copies one
// off a production box and feeds it to hesgx-diag — so the reader treats
// the archive as untrusted input: member counts and sizes are bounded
// before any allocation is sized from them, names are confined to the
// archive root, and the decompressed stream is capped regardless of what
// the headers claim (a gzip bomb hits the limit, not the heap).

const (
	// MaxBundleFiles bounds the member count.
	MaxBundleFiles = 256
	// MaxBundleFileBytes bounds one decompressed member.
	MaxBundleFileBytes = 16 << 20
	// MaxBundleBytes bounds the whole decompressed bundle.
	MaxBundleBytes = 64 << 20
)

// Bundle is a decoded postmortem bundle.
type Bundle struct {
	Manifest Manifest
	// Files maps member name to content, manifest included.
	Files map[string][]byte
}

// ReadBundleFile opens and decodes a bundle from disk.
func ReadBundleFile(p string) (*Bundle, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBundle(f)
}

// ReadBundle decodes a bundle from r with bounded resource usage. It
// fails on oversized, escaping, or non-regular members, and on a
// manifest from a future format version; a missing manifest is accepted
// (Manifest stays zero) so partial artifacts still render.
func ReadBundle(r io.Reader) (*Bundle, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("diag: bundle gzip: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	b := &Bundle{Files: make(map[string][]byte)}
	var total int64
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("diag: bundle tar: %w", err)
		}
		switch hdr.Typeflag {
		case tar.TypeReg:
		case tar.TypeDir, tar.TypeXGlobalHeader:
			continue
		default:
			return nil, fmt.Errorf("diag: bundle member %q: unsupported type %q", hdr.Name, hdr.Typeflag)
		}
		name := path.Clean(hdr.Name)
		if name == "." || name == ".." || strings.HasPrefix(name, "../") || path.IsAbs(name) {
			return nil, fmt.Errorf("diag: bundle member escapes archive root: %q", hdr.Name)
		}
		if len(b.Files) >= MaxBundleFiles {
			return nil, fmt.Errorf("diag: bundle has more than %d members", MaxBundleFiles)
		}
		if hdr.Size < 0 || hdr.Size > MaxBundleFileBytes {
			return nil, fmt.Errorf("diag: bundle member %q: size %d exceeds %d", hdr.Name, hdr.Size, int64(MaxBundleFileBytes))
		}
		if total += hdr.Size; total > MaxBundleBytes {
			return nil, fmt.Errorf("diag: bundle exceeds %d decompressed bytes", int64(MaxBundleBytes))
		}
		// The declared size is now within bounds, but read through a limit
		// anyway: the cap must hold even if the stream disagrees with the
		// header.
		data, err := io.ReadAll(io.LimitReader(tr, MaxBundleFileBytes+1))
		if err != nil {
			return nil, fmt.Errorf("diag: bundle member %q: %w", hdr.Name, err)
		}
		if int64(len(data)) > MaxBundleFileBytes {
			return nil, fmt.Errorf("diag: bundle member %q overruns its size bound", hdr.Name)
		}
		if _, dup := b.Files[name]; dup {
			return nil, fmt.Errorf("diag: duplicate bundle member %q", hdr.Name)
		}
		b.Files[name] = data
	}
	if man, ok := b.Files["manifest.json"]; ok {
		if err := json.Unmarshal(man, &b.Manifest); err != nil {
			return nil, fmt.Errorf("diag: bundle manifest: %w", err)
		}
		if b.Manifest.FormatVersion > BundleFormatVersion {
			return nil, fmt.Errorf("diag: bundle format version %d is newer than this reader (%d)",
				b.Manifest.FormatVersion, BundleFormatVersion)
		}
	}
	return b, nil
}

// Trigger returns the bundle's triggering event, preferring the manifest
// copy, falling back to event.json. Nil for on-demand bundles.
func (b *Bundle) Trigger() *Event {
	if b.Manifest.Trigger != nil {
		return b.Manifest.Trigger
	}
	data, ok := b.Files["event.json"]
	if !ok {
		return nil
	}
	var e Event
	if json.Unmarshal(data, &e) != nil {
		return nil
	}
	return &e
}

// Events returns the bundled recent-event log (nil when absent or
// malformed).
func (b *Bundle) Events() []Event {
	var out []Event
	if json.Unmarshal(b.Files["events.json"], &out) != nil {
		return nil
	}
	return out
}

// Metrics returns the bundled recorder window (nil when absent or
// malformed).
func (b *Bundle) Metrics() []MetricSample {
	var out []MetricSample
	if json.Unmarshal(b.Files["metrics.json"], &out) != nil {
		return nil
	}
	return out
}

// Reports returns the bundled flight reports (nil when absent or
// malformed).
func (b *Bundle) Reports() []*report.FlightReport {
	var out []*report.FlightReport
	if json.Unmarshal(b.Files["reports.json"], &out) != nil {
		return nil
	}
	return out
}
