package diag

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hesgx/internal/stats"
)

// The metric flight recorder: every second, snapshot the stats registry
// and fold the delta since the previous tick into a ring entry — counters
// become per-second rates, histograms become windowed quantile summaries
// (via per-bucket subtraction), gauges stay levels. 600 entries at 1s
// cover the trailing ten minutes; a bundle captured on an alert carries
// the whole window. Cost is one typed snapshot per second — a few map
// copies over a registry of at most a few hundred series — so the
// recorder stays on in production.

const (
	// DefaultRecorderInterval is the sampling cadence (the "1s" in the
	// 1-second flight recorder).
	DefaultRecorderInterval = time.Second
	// DefaultRecorderCapacity retains ten minutes at the default interval.
	DefaultRecorderCapacity = 600
)

// Window is the per-tick summary of one histogram (or plain sample): only
// the observations that arrived during the tick. For plain samples the
// quantile and max fields stay zero — count/sum accumulators cannot
// answer them for a window.
type Window struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// MetricSample is one recorder tick: the registry delta since the
// previous tick, rendered for humans and bundles.
type MetricSample struct {
	T time.Time `json:"t"`
	// DtSeconds is the wall time the delta covers (0 on the first tick).
	DtSeconds float64 `json:"dt_seconds"`
	// Gauges are instantaneous levels, copied as-is.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Rates are per-second deltas: counters under their own name, sample
	// and histogram observation counts under <name>.count. A counter that
	// went backwards (process restart) restarts its rate from zero.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Windows are per-histogram windowed summaries (quantiles of just this
	// tick), plus count/mean windows for plain samples.
	Windows map[string]Window `json:"windows,omitempty"`
}

// RecorderConfig assembles a Recorder.
type RecorderConfig struct {
	// Registry to sample. Required.
	Registry *stats.Registry
	// Interval between ticks; DefaultRecorderInterval when zero.
	Interval time.Duration
	// Capacity of the sample ring; DefaultRecorderCapacity when zero.
	Capacity int
	// Now overrides the clock (tests); time.Now when nil.
	Now func() time.Time
}

// Recorder is the always-on sampler. Tick and the read methods are safe
// for concurrent use; the sampled registry's hot paths (Observe, Inc) are
// never blocked — Tick holds only the registry mutex needed to copy the
// metric maps, which Observe-style calls take for name lookup only.
type Recorder struct {
	reg      *stats.Registry
	interval time.Duration
	now      func() time.Time

	mu       sync.Mutex
	prev     stats.RegistrySnapshot
	prevT    time.Time
	havePrev bool
	ring     []MetricSample
	pos, n   int
	onSample []func(MetricSample)

	tickCost atomic.Int64 // last Tick's cost in nanoseconds
}

// NewRecorder builds a recorder over cfg.Registry.
func NewRecorder(cfg RecorderConfig) *Recorder {
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultRecorderInterval
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Recorder{
		reg:      cfg.Registry,
		interval: interval,
		now:      now,
		ring:     make([]MetricSample, capacity),
	}
}

// Interval returns the sampling cadence (what Run sleeps between ticks).
func (r *Recorder) Interval() time.Duration { return r.interval }

// OnSample registers a per-tick hook (the anomaly monitor). Register
// before Run; hooks run on the ticking goroutine.
func (r *Recorder) OnSample(fn func(MetricSample)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onSample = append(r.onSample, fn)
}

// Tick takes one sample: snapshot, delta against the previous snapshot,
// append to the ring, run the hooks. Returns the appended sample.
func (r *Recorder) Tick() MetricSample {
	start := time.Now()
	now := r.now()
	cur := r.reg.TypedSnapshot()

	r.mu.Lock()
	s := MetricSample{T: now}
	if r.havePrev {
		s.DtSeconds = now.Sub(r.prevT).Seconds()
	}
	s.Gauges = make(map[string]float64, len(cur.Gauges))
	for k, v := range cur.Gauges {
		s.Gauges[k] = float64(v)
	}
	if dt := s.DtSeconds; dt > 0 {
		s.Rates = make(map[string]float64, len(cur.Counters))
		for k, v := range cur.Counters {
			s.Rates[k] = counterRate(r.prev.Counters[k], v, dt)
		}
		s.Windows = make(map[string]Window, len(cur.Histograms)+len(cur.Samples))
		for k, h := range cur.Histograms {
			d := h.DeltaFrom(r.prev.Histograms[k])
			s.Rates[k+".count"] = float64(d.Count) / dt
			if d.Count > 0 {
				s.Windows[k] = Window{
					Count: d.Count,
					Mean:  d.Mean(),
					P50:   d.Quantile(0.5),
					P99:   d.Quantile(0.99),
					Max:   d.Max,
				}
			}
		}
		for k, sm := range cur.Samples {
			p := r.prev.Samples[k]
			if sm.N < p.N {
				p = stats.SampleSnapshot{} // restarted accumulator
			}
			dN := sm.N - p.N
			s.Rates[k+".count"] = float64(dN) / dt
			if dN > 0 {
				w := Window{Count: uint64(dN)}
				if dSum := sm.Sum - p.Sum; dSum > 0 {
					w.Mean = dSum / float64(dN)
				}
				s.Windows[k] = w
			}
		}
	}
	r.prev = cur
	r.prevT = now
	r.havePrev = true
	r.ring[r.pos] = s
	r.pos = (r.pos + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	hooks := r.onSample
	r.mu.Unlock()

	for _, fn := range hooks {
		fn(s)
	}
	cost := time.Since(start)
	r.tickCost.Store(int64(cost))
	r.reg.Observe("diag.recorder.tick_us", float64(cost.Microseconds()))
	return s
}

// counterRate computes a per-second rate across a cumulative counter
// delta. A counter that went backwards was reset (process or registry
// restart): the rate restarts from zero, counting cur as the new total
// accumulated since the reset.
func counterRate(prev, cur int64, dtSeconds float64) float64 {
	if cur < prev {
		prev = 0
	}
	return float64(cur-prev) / dtSeconds
}

// Run ticks until ctx is done.
func (r *Recorder) Run(ctx context.Context) {
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			r.Tick()
		}
	}
}

// Samples returns up to n retained samples, oldest first (all when
// n <= 0).
func (r *Recorder) Samples(n int) []MetricSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]MetricSample, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.ring[(r.pos-r.n+i+len(r.ring))%len(r.ring)])
	}
	return out
}

// LastTickCost returns how long the most recent Tick took — the
// steady-state overhead figure (a tick under ~10ms is <1% of the default
// 1s cadence).
func (r *Recorder) LastTickCost() time.Duration {
	return time.Duration(r.tickCost.Load())
}
