package diag

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"
)

// Capturer turns bus events into postmortem bundles: a tar.gz with the
// triggering event, the recent event log, the recorder's metric window,
// goroutine and heap profiles, build info, and whatever extra sources the
// server registers (flight reports, trace trees, SLO state, config).
// Captures are debounced and rate-limited so an alert storm produces one
// artifact, not a disk full of them.

// BundleFormatVersion is written into every manifest; readers reject
// newer-than-known versions.
const BundleFormatVersion = 1

const (
	// DefaultDebounce is the minimum gap between triggered captures.
	DefaultDebounce = time.Minute
	// DefaultMaxPerHour caps triggered captures over a trailing hour.
	DefaultMaxPerHour = 6
	// DefaultSettle is how long a triggered capture waits before writing,
	// so the request that raised the alert can finish and its flight
	// report and trace land in the recorders.
	DefaultSettle = 500 * time.Millisecond
)

// Manifest indexes a bundle.
type Manifest struct {
	FormatVersion int       `json:"format_version"`
	Created       time.Time `json:"created"`
	// Trigger is the event that caused the capture; nil for on-demand
	// bundles.
	Trigger *Event `json:"trigger,omitempty"`
	// Files lists the member names written after the manifest.
	Files []string `json:"files"`
}

// Source is one pluggable bundle member: Fn renders the current state of
// some subsystem. A failing source contributes <name>.err.txt instead of
// aborting the bundle.
type Source struct {
	Name string
	Fn   func() ([]byte, error)
}

// JSONSource adapts a state-returning function into a Source by
// marshaling its value as indented JSON.
func JSONSource(name string, fn func() any) Source {
	return Source{Name: name, Fn: func() ([]byte, error) {
		return json.MarshalIndent(fn(), "", "  ")
	}}
}

// CaptureConfig assembles a Capturer.
type CaptureConfig struct {
	// Dir receives bundle files. Required for triggered captures; a
	// capturer with an empty Dir can still stream on-demand bundles.
	Dir string
	// Debounce is the minimum gap between triggered captures
	// (DefaultDebounce when zero; negative disables debouncing).
	Debounce time.Duration
	// MaxPerHour caps triggered captures over a trailing hour
	// (DefaultMaxPerHour when zero; negative removes the cap).
	MaxPerHour int
	// Settle delays a triggered capture so in-flight state lands
	// (DefaultSettle when zero; negative captures immediately).
	Settle time.Duration
	// Trigger decides which events capture. Default: severity warn or
	// worse.
	Trigger func(Event) bool
	// Now overrides the clock (tests); time.Now when nil.
	Now func() time.Time
}

// Capturer subscribes to a Bus and writes bundles. Safe for concurrent
// use.
type Capturer struct {
	bus *Bus
	rec *Recorder
	cfg CaptureConfig

	mu       sync.Mutex
	sources  []Source
	last     time.Time
	recent   []time.Time // capture times within the trailing hour
	captures int
	lastPath string
}

// NewCapturer wires a capturer to its bus and recorder (either may be
// nil: a nil bus means only on-demand captures, a nil recorder omits the
// metric window).
func NewCapturer(bus *Bus, rec *Recorder, cfg CaptureConfig) *Capturer {
	if cfg.Debounce == 0 {
		cfg.Debounce = DefaultDebounce
	}
	if cfg.MaxPerHour == 0 {
		cfg.MaxPerHour = DefaultMaxPerHour
	}
	if cfg.Settle == 0 {
		cfg.Settle = DefaultSettle
	}
	if cfg.Trigger == nil {
		cfg.Trigger = func(e Event) bool { return e.Severity.AtLeast(SeverityWarn) }
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Capturer{bus: bus, rec: rec, cfg: cfg}
}

// AddSource registers an extra bundle member.
func (c *Capturer) AddSource(s Source) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sources = append(c.sources, s)
}

// Captures returns how many triggered bundles have been written.
func (c *Capturer) Captures() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.captures
}

// LastPath returns the most recently written bundle path ("" when none).
func (c *Capturer) LastPath() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastPath
}

// Run consumes bus events until ctx is done, capturing on each one that
// passes the trigger, debounce and rate-limit gates.
func (c *Capturer) Run(ctx context.Context) {
	if c.bus == nil {
		return
	}
	ch, cancel := c.bus.Subscribe(32)
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			if !c.cfg.Trigger(e) || !c.admit() {
				continue
			}
			if c.cfg.Settle > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(c.cfg.Settle):
				}
			}
			if _, err := c.CaptureNow(&e); err != nil {
				c.bus.metrics.Counter("diag.capture_errors").Inc()
			}
		}
	}
}

// admit applies the debounce and rate-limit gates, reserving a capture
// slot when both pass.
func (c *Capturer) admit() bool {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Debounce > 0 && !c.last.IsZero() && now.Sub(c.last) < c.cfg.Debounce {
		return false
	}
	if c.cfg.MaxPerHour > 0 {
		keep := c.recent[:0]
		for _, t := range c.recent {
			if now.Sub(t) < time.Hour {
				keep = append(keep, t)
			}
		}
		c.recent = keep
		if len(c.recent) >= c.cfg.MaxPerHour {
			return false
		}
		c.recent = append(c.recent, now)
	}
	c.last = now
	return true
}

// CaptureNow writes one bundle to Dir, named by capture time and the
// trigger's sequence number. It does not consult the debounce gates — Run
// applies those before calling it; direct callers (tests, signal
// handlers) capture unconditionally.
func (c *Capturer) CaptureNow(trigger *Event) (string, error) {
	c.mu.Lock()
	dir := c.cfg.Dir
	c.mu.Unlock()
	if dir == "" {
		return "", fmt.Errorf("diag: no capture directory configured")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var seq uint64
	if trigger != nil {
		seq = trigger.Seq
	}
	name := fmt.Sprintf("bundle-%s-%d.tar.gz", c.cfg.Now().UTC().Format("20060102T150405"), seq)
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	err = c.WriteBundle(f, trigger)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	c.mu.Lock()
	c.captures++
	c.lastPath = path
	c.mu.Unlock()
	if c.bus != nil {
		c.bus.metrics.Counter("diag.bundles_written").Inc()
	}
	return path, nil
}

// WriteBundle streams one bundle to w (the /debug/bundle handler's path).
// A nil trigger marks an on-demand capture.
func (c *Capturer) WriteBundle(w io.Writer, trigger *Event) error {
	type member struct {
		name string
		data []byte
	}
	var members []member
	add := func(name string, data []byte, err error) {
		if err != nil {
			name += ".err.txt"
			data = []byte(err.Error())
		}
		members = append(members, member{name: name, data: data})
	}

	if trigger != nil {
		data, err := json.MarshalIndent(trigger, "", "  ")
		add("event.json", data, err)
	}
	if c.bus != nil {
		data, err := json.MarshalIndent(c.bus.Recent(0), "", "  ")
		add("events.json", data, err)
	}
	if c.rec != nil {
		data, err := json.MarshalIndent(c.rec.Samples(0), "", "  ")
		add("metrics.json", data, err)
	}
	gor, gerr := goroutineDump()
	add("goroutines.txt", gor, gerr)
	heap, herr := heapProfile()
	add("heap.pprof", heap, herr)
	data, err := json.MarshalIndent(buildInfo(), "", "  ")
	add("buildinfo.json", data, err)

	c.mu.Lock()
	sources := append([]Source(nil), c.sources...)
	c.mu.Unlock()
	for _, s := range sources {
		data, err := s.Fn()
		add(s.Name, data, err)
	}

	man := Manifest{FormatVersion: BundleFormatVersion, Created: c.cfg.Now().UTC(), Trigger: trigger}
	for _, m := range members {
		man.Files = append(man.Files, m.name)
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}

	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	writeMember := func(name string, data []byte) error {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: man.Created,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	if err := writeMember("manifest.json", manData); err != nil {
		return err
	}
	for _, m := range members {
		if err := writeMember(m.name, m.data); err != nil {
			return err
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

func goroutineDump() ([]byte, error) {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return nil, fmt.Errorf("goroutine profile unavailable")
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 2); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func heapProfile() ([]byte, error) {
	var buf bytes.Buffer
	runtime.GC() // fresh allocation accounting, as /debug/pprof/heap?gc=1 would
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildInfoRecord is the buildinfo.json schema.
type buildInfoRecord struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
	PID       int    `json:"pid"`
}

func buildInfo() buildInfoRecord {
	rec := buildInfoRecord{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		PID:       os.Getpid(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		rec.Path = bi.Main.Path
		rec.Version = bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				rec.Revision = s.Value
			}
		}
	}
	return rec
}
