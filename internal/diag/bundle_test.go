package diag

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"fmt"
	"strings"
	"testing"
	"time"
)

// makeBundle builds a tar.gz from name→content pairs, for adversarial
// inputs the Capturer would never write.
func makeBundle(t testing.TB, members [][2]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	for _, m := range members {
		if err := tw.WriteHeader(&tar.Header{
			Name: m[0], Mode: 0o644, Size: int64(len(m[1])), ModTime: time.Unix(0, 0),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write([]byte(m[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadBundleRejectsEscapingPaths(t *testing.T) {
	for _, name := range []string{"../evil", "/abs", "a/../../b", ".."} {
		raw := makeBundle(t, [][2]string{{name, "x"}})
		if _, err := ReadBundle(bytes.NewReader(raw)); err == nil {
			t.Errorf("member %q accepted", name)
		}
	}
	// Subdirectory members that stay inside the root are fine.
	raw := makeBundle(t, [][2]string{{"sub/ok.txt", "x"}})
	b, err := ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if string(b.Files["sub/ok.txt"]) != "x" {
		t.Error("nested member lost")
	}
}

func TestReadBundleRejectsDuplicates(t *testing.T) {
	raw := makeBundle(t, [][2]string{{"a.txt", "1"}, {"./a.txt", "2"}})
	if _, err := ReadBundle(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate members accepted: %v", err)
	}
}

func TestReadBundleRejectsTooManyMembers(t *testing.T) {
	members := make([][2]string, MaxBundleFiles+1)
	for i := range members {
		members[i] = [2]string{fmt.Sprintf("f%d", i), "x"}
	}
	raw := makeBundle(t, members)
	if _, err := ReadBundle(bytes.NewReader(raw)); err == nil {
		t.Fatal("oversized member count accepted")
	}
}

func TestReadBundleRejectsOversizedHeader(t *testing.T) {
	// A header claiming a huge size must be rejected before allocation;
	// the stream need not actually carry the bytes.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	if err := tw.WriteHeader(&tar.Header{Name: "big", Mode: 0o644, Size: MaxBundleFileBytes + 1}); err != nil {
		t.Fatal(err)
	}
	// Close without writing the body: flush what we have.
	gz.Close()
	if _, err := ReadBundle(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("member with an oversized size header accepted")
	}
}

func TestReadBundleRejectsNonRegularMembers(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	if err := tw.WriteHeader(&tar.Header{
		Name: "link", Typeflag: tar.TypeSymlink, Linkname: "/etc/passwd",
	}); err != nil {
		t.Fatal(err)
	}
	tw.Close()
	gz.Close()
	if _, err := ReadBundle(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("symlink member accepted")
	}
}

func TestReadBundleRejectsFutureFormat(t *testing.T) {
	man := fmt.Sprintf(`{"format_version": %d, "files": []}`, BundleFormatVersion+1)
	raw := makeBundle(t, [][2]string{{"manifest.json", man}})
	if _, err := ReadBundle(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future format accepted: %v", err)
	}
}

func TestReadBundleToleratesMissingManifest(t *testing.T) {
	raw := makeBundle(t, [][2]string{{"events.json", "[]"}})
	b, err := ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.FormatVersion != 0 {
		t.Error("missing manifest fabricated a version")
	}
	var out bytes.Buffer
	if err := RenderIncident(&out, b); err != nil {
		t.Fatalf("partial bundle must still render: %v", err)
	}
}

func TestReadBundleRejectsGarbage(t *testing.T) {
	if _, err := ReadBundle(bytes.NewReader([]byte("not a gzip stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// FuzzReadBundle feeds arbitrary bytes through the bounded decoder: it
// must never panic or allocate past its caps, and anything it does accept
// must also survive rendering.
func FuzzReadBundle(f *testing.F) {
	f.Add([]byte("plainly not a bundle"))
	f.Add(makeBundle(f, [][2]string{
		{"manifest.json", `{"format_version":1,"created":"2026-01-02T03:04:05Z","files":["events.json"]}`},
		{"events.json", `[{"seq":1,"type":"manual","severity":"warn","msg":"x"}]`},
		{"metrics.json", `[{"t":"2026-01-02T03:04:05Z","dt_seconds":1,"rates":{"a":2}}]`},
	}))
	f.Add(makeBundle(f, [][2]string{{"event.json", `{"type":"slo.page","trace_id":7}`}}))
	f.Add(makeBundle(f, [][2]string{{"../escape", "x"}}))
	// A truncated valid bundle exercises the tar/gzip error paths.
	whole := makeBundle(f, [][2]string{{"goroutines.txt", strings.Repeat("goroutine 1\n", 100)}})
	f.Add(whole[:len(whole)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBundle(bytes.NewReader(data))
		if err != nil {
			return
		}
		var total int
		for _, content := range b.Files {
			total += len(content)
		}
		if total > MaxBundleBytes {
			t.Fatalf("decoded %d bytes past the bundle cap", total)
		}
		if len(b.Files) > MaxBundleFiles {
			t.Fatalf("decoded %d members past the member cap", len(b.Files))
		}
		var out bytes.Buffer
		if err := RenderIncident(&out, b); err != nil {
			t.Fatalf("accepted bundle failed to render: %v", err)
		}
	})
}
