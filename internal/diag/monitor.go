package diag

import (
	"fmt"
	"strings"
)

// Monitor derives bus events from recorder ticks for the signals that
// exist only as metric deltas: admission shed-rate spikes and anomalous
// per-ECALL transition/paging costs. Both detectors are edge-triggered —
// an excursion publishes once when it starts, not once per tick it
// persists — and judge only ticks with enough events to be meaningful.

// MonitorConfig tunes the detectors. Zero values select the defaults.
type MonitorConfig struct {
	// Bus receives the events. Required (a nil bus makes the monitor a
	// no-op).
	Bus *Bus
	// ShedRate is the shed fraction (rejected / offered) within one tick
	// that counts as a spike. Default 0.10.
	ShedRate float64
	// MinEvents is the minimum offered jobs (for shed) or ECALLs (for SGX
	// anomalies) in a tick before the detector judges it. Default 10.
	MinEvents float64
	// Factor is how far above its smoothed baseline a per-ECALL cost must
	// move to be anomalous. Default 3.
	Factor float64
	// Alpha is the EWMA smoothing weight for the baselines. Default 0.2.
	Alpha float64
	// WarmupTicks is how many qualifying ticks a baseline must absorb
	// before its detector can fire. Default 5.
	WarmupTicks int
}

type ewmaState struct {
	mean   float64
	ticks  int
	firing bool
}

// Monitor consumes MetricSamples; register its Observe with
// Recorder.OnSample.
type Monitor struct {
	cfg      MonitorConfig
	shedHigh bool
	sgx      map[string]*ewmaState
}

// NewMonitor builds a monitor with defaults filled in.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.ShedRate <= 0 {
		cfg.ShedRate = 0.10
	}
	if cfg.MinEvents <= 0 {
		cfg.MinEvents = 10
	}
	if cfg.Factor <= 1 {
		cfg.Factor = 3
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.2
	}
	if cfg.WarmupTicks <= 0 {
		cfg.WarmupTicks = 5
	}
	return &Monitor{cfg: cfg, sgx: map[string]*ewmaState{
		"transitions": {},
		"page_faults": {},
	}}
}

// Observe judges one recorder tick. Runs on the recorder's goroutine.
func (m *Monitor) Observe(s MetricSample) {
	if m.cfg.Bus == nil || s.DtSeconds <= 0 {
		return
	}
	m.observeShed(s)
	m.observeSGX(s)
}

func (m *Monitor) observeShed(s MetricSample) {
	dt := s.DtSeconds
	rejected := s.Rates["serve.jobs.rejected"] * dt
	offered := s.Rates["serve.jobs.submitted"]*dt + rejected
	if offered < m.cfg.MinEvents {
		return
	}
	rate := rejected / offered
	high := rate >= m.cfg.ShedRate
	if high && !m.shedHigh {
		m.cfg.Bus.Publish(Event{
			Type:      TypeShedSpike,
			Severity:  SeverityWarn,
			Stage:     "scheduler",
			Time:      s.T,
			Value:     rate,
			Threshold: m.cfg.ShedRate,
			Message: fmt.Sprintf("admission shed rate %.1f%% over one tick (%.0f of %.0f offered)",
				rate*100, rejected, offered),
		})
	}
	m.shedHigh = high
}

func (m *Monitor) observeSGX(s MetricSample) {
	// ECALL volume this tick: every per-kind ecall.<kind>_ms histogram
	// counts one observation per ECALL.
	var ecalls float64
	for k, v := range s.Rates {
		if strings.HasPrefix(k, "ecall.") && strings.HasSuffix(k, "_ms.count") {
			ecalls += v * s.DtSeconds
		}
	}
	if ecalls < m.cfg.MinEvents {
		return
	}
	for metric, st := range m.sgx {
		cost := s.Rates["ecall."+metric] * s.DtSeconds / ecalls
		if st.ticks >= m.cfg.WarmupTicks && st.mean > 0 {
			anomalous := cost >= m.cfg.Factor*st.mean
			if anomalous && !st.firing {
				m.cfg.Bus.Publish(Event{
					Type:      TypeSGXAnomaly,
					Severity:  SeverityWarn,
					Stage:     metric,
					Time:      s.T,
					Value:     cost,
					Threshold: m.cfg.Factor * st.mean,
					Message: fmt.Sprintf("per-ECALL %s %.2f is %.1fx the smoothed baseline %.2f",
						metric, cost, cost/st.mean, st.mean),
				})
			}
			st.firing = anomalous
			if anomalous {
				// Keep the excursion out of the baseline so a sustained
				// plateau still reads as anomalous until it resolves.
				continue
			}
		}
		st.mean = (1-m.cfg.Alpha)*st.mean + m.cfg.Alpha*cost
		st.ticks++
	}
}
