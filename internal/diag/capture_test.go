package diag

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hesgx/internal/stats"
)

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestCapturerTriggeredBundleEndToEnd(t *testing.T) {
	dir := t.TempDir()
	reg := stats.NewRegistry()
	bus := NewBus(32, reg)
	rec := NewRecorder(RecorderConfig{Registry: reg, Capacity: 128})
	reg.Counter("serve.jobs.submitted").Add(42)
	for i := 0; i < 70; i++ {
		rec.Tick()
	}

	c := NewCapturer(bus, rec, CaptureConfig{
		Dir:      dir,
		Debounce: time.Hour, // one capture only, however many events land
		Settle:   -1,        // capture immediately: the test's state is already in place
	})
	c.AddSource(JSONSource("extra.json", func() any { return map[string]int{"n": 7} }))
	c.AddSource(Source{Name: "broken.bin", Fn: func() ([]byte, error) {
		return nil, os.ErrPermission
	}})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)

	// An info event must not trigger; a warn must. Publishing inside the
	// poll loop rides out the race with Run's subscription; the hour-long
	// debounce keeps the repeats from capturing twice.
	bus.Publish(Event{Type: TypeSLOResolved, Severity: SeverityInfo})
	ok := waitFor(t, 5*time.Second, func() bool {
		bus.Publish(Event{
			Type: TypeNoiseLowBudget, Severity: SeverityWarn, Stage: "sigmoid",
			TraceID: 0xABCD, Value: 3.5, Threshold: 10, Message: "budget low",
		})
		return c.Captures() == 1
	})
	if !ok {
		t.Fatalf("captures = %d, want exactly 1 (triggered, debounced)", c.Captures())
	}
	bus.Publish(Event{Type: TypeShedSpike, Severity: SeverityWarn}) // debounced away
	// Give the debounced third event a moment to (wrongly) capture.
	time.Sleep(50 * time.Millisecond)
	if got := c.Captures(); got != 1 {
		t.Fatalf("debounce failed: %d captures", got)
	}
	if got := reg.Counter("diag.bundles_written").Value(); got != 1 {
		t.Errorf("diag.bundles_written = %d, want 1", got)
	}

	path := c.LastPath()
	if path == "" || filepath.Dir(path) != dir {
		t.Fatalf("bundle path %q not in %q", path, dir)
	}
	b, err := ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.FormatVersion != BundleFormatVersion {
		t.Errorf("format version %d, want %d", b.Manifest.FormatVersion, BundleFormatVersion)
	}
	trig := b.Trigger()
	if trig == nil || trig.Type != TypeNoiseLowBudget || trig.TraceID != 0xABCD {
		t.Fatalf("trigger = %+v, want the noise.low_budget event", trig)
	}
	if events := b.Events(); len(events) < 2 {
		t.Errorf("bundled %d events, want the recent log", len(events))
	}
	if samples := b.Metrics(); len(samples) < 60 {
		t.Errorf("bundled %d metric samples, want >= 60", len(samples))
	}
	for _, name := range []string{"goroutines.txt", "heap.pprof", "buildinfo.json", "extra.json"} {
		if len(b.Files[name]) == 0 {
			t.Errorf("bundle missing %s", name)
		}
	}
	if !bytes.Contains(b.Files["goroutines.txt"], []byte("goroutine ")) {
		t.Error("goroutines.txt does not look like a goroutine dump")
	}
	var extra map[string]int
	if err := json.Unmarshal(b.Files["extra.json"], &extra); err != nil || extra["n"] != 7 {
		t.Errorf("extra.json = %s (%v)", b.Files["extra.json"], err)
	}
	// The failing source degrades to an .err.txt member, not a failed bundle.
	if msg := string(b.Files["broken.bin.err.txt"]); !strings.Contains(msg, "permission") {
		t.Errorf("broken source error member = %q", msg)
	}

	// The bundle renders.
	var out bytes.Buffer
	if err := RenderIncident(&out, b); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{"incident report", "noise.low_budget", "trace=43981", "goroutines:"} {
		if !strings.Contains(report, want) {
			t.Errorf("rendered report missing %q\n%s", want, report)
		}
	}
}

func TestCapturerRateLimit(t *testing.T) {
	dir := t.TempDir()
	bus := NewBus(8, nil)
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	c := NewCapturer(bus, nil, CaptureConfig{Dir: dir, Debounce: -1, MaxPerHour: 3, Now: clock})
	admitted := 0
	for i := 0; i < 10; i++ {
		if c.admit() {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d captures in one hour, want 3", admitted)
	}
	// An hour later the budget refills.
	now = now.Add(61 * time.Minute)
	if !c.admit() {
		t.Fatal("rate limit did not recover after the trailing hour")
	}
}

func TestCapturerDebounce(t *testing.T) {
	bus := NewBus(8, nil)
	now := time.Unix(1_700_000_000, 0)
	c := NewCapturer(bus, nil, CaptureConfig{
		Dir: t.TempDir(), Debounce: time.Minute, MaxPerHour: -1,
		Now: func() time.Time { return now },
	})
	if !c.admit() {
		t.Fatal("first capture refused")
	}
	now = now.Add(30 * time.Second)
	if c.admit() {
		t.Fatal("capture admitted inside the debounce window")
	}
	now = now.Add(31 * time.Second)
	if !c.admit() {
		t.Fatal("capture refused after the debounce window")
	}
}

func TestCaptureNowRequiresDir(t *testing.T) {
	c := NewCapturer(nil, nil, CaptureConfig{})
	if _, err := c.CaptureNow(nil); err == nil {
		t.Fatal("CaptureNow without a directory must error")
	}
}

func TestWriteBundleOnDemand(t *testing.T) {
	// The /debug/bundle path: no trigger, no bus, no recorder — still a
	// valid, readable bundle.
	c := NewCapturer(nil, nil, CaptureConfig{})
	var buf bytes.Buffer
	if err := c.WriteBundle(&buf, nil); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Trigger() != nil {
		t.Error("on-demand bundle has a trigger")
	}
	if len(b.Files["buildinfo.json"]) == 0 {
		t.Error("on-demand bundle missing buildinfo.json")
	}
	var out bytes.Buffer
	if err := RenderIncident(&out, b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "on-demand capture") {
		t.Error("rendered report does not mark the on-demand capture")
	}
}
