// Package diag is the black-box diagnostics layer: a process-wide event
// bus that every alerting signal publishes into, an always-on 1-second
// metric flight recorder over the stats registry, and a postmortem
// capturer that turns a firing event into a self-contained tar.gz bundle
// an operator can pull off the box after the fact. The package sits above
// stats/trace/report and below the subsystems that publish into it (slo,
// core, wire), so it must not import those publishers.
package diag

import "time"

// Type classifies an event. The taxonomy mirrors the signals the serving
// stack already computes; see DESIGN §16 for the catalogue.
type Type string

const (
	// TypeSLOPage: a page-severity burn-rate window started firing.
	TypeSLOPage Type = "slo.page"
	// TypeSLOTicket: a ticket-severity burn-rate window started firing.
	TypeSLOTicket Type = "slo.ticket"
	// TypeSLOResolved: a previously firing severity stopped firing.
	TypeSLOResolved Type = "slo.resolved"
	// TypeNoiseLowBudget: the enclave measured an invariant-noise budget
	// below the configured floor entering a refresh.
	TypeNoiseLowBudget Type = "noise.low_budget"
	// TypeShedSpike: the admission scheduler's shed rate jumped over the
	// monitor's threshold within one recorder tick.
	TypeShedSpike Type = "serve.shed_spike"
	// TypeWireFault: a connection-level protocol fault (unreadable frame,
	// partial reply frame, transport error).
	TypeWireFault Type = "wire.fault"
	// TypeSGXAnomaly: per-ECALL transition or paging cost departed from its
	// smoothed baseline.
	TypeSGXAnomaly Type = "sgx.anomaly"
	// TypeManual: an operator-requested capture (e.g. /debug/bundle).
	TypeManual Type = "manual"
)

// Severity orders events by operational urgency.
type Severity string

const (
	SeverityInfo Severity = "info"
	SeverityWarn Severity = "warn"
	SeverityPage Severity = "page"
)

// rank orders severities (unknown sorts lowest).
func (s Severity) rank() int {
	switch s {
	case SeverityPage:
		return 3
	case SeverityWarn:
		return 2
	case SeverityInfo:
		return 1
	}
	return 0
}

// AtLeast reports whether s is at least as urgent as min.
func (s Severity) AtLeast(min Severity) bool { return s.rank() >= min.rank() }

// Event is one diagnostic occurrence on the bus: what fired, where, how
// bad, and enough threshold context to reconstruct the judgement without
// the publisher's internal state.
type Event struct {
	// Seq is a process-wide publish sequence number, stamped by the bus.
	Seq uint64 `json:"seq"`
	// Time is when the event fired (stamped by the bus when zero).
	Time time.Time `json:"time"`
	Type Type      `json:"type"`
	// Severity defaults to warn when the publisher leaves it empty.
	Severity Severity `json:"severity"`
	// Stage names the pipeline stage or objective that fired ("request",
	// "square", "partial_frame", ...).
	Stage string `json:"stage,omitempty"`
	// TraceID links the event to a request trace when one was in scope.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Message is a one-line human rendering.
	Message string `json:"message"`
	// Value and Threshold capture the judgement: the observed reading and
	// the bound it crossed (burn rate vs factor, budget bits vs floor,
	// shed fraction vs limit).
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Attrs carries additional publisher-specific context.
	Attrs map[string]string `json:"attrs,omitempty"`
}
