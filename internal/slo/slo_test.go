package slo

import (
	"strings"
	"testing"
	"time"

	"hesgx/internal/stats"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("request:serve.request.total_ms:2s:0.99, queue:serve.job.queue_wait_ms:250ms:0.999")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objectives", len(objs))
	}
	want := Objective{Name: "request", Metric: "serve.request.total_ms", Threshold: 2 * time.Second, Target: 0.99}
	if objs[0] != want {
		t.Errorf("objective 0: %+v", objs[0])
	}
	if objs[1].Threshold != 250*time.Millisecond || objs[1].Target != 0.999 {
		t.Errorf("objective 1: %+v", objs[1])
	}
	for _, bad := range []string{
		"",
		"a:b:c",
		"a:b:2s:1.5",
		"a:b:2s:0",
		"a:b:-2s:0.9",
		"a:b:nope:0.9",
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) did not fail", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	reg := stats.NewRegistry()
	if _, err := New(Config{}); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := New(Config{Registry: reg, Objectives: []Objective{
		{Name: "a", Metric: "m", Threshold: time.Second, Target: 0.9},
		{Name: "a", Metric: "m2", Threshold: time.Second, Target: 0.9},
	}}); err == nil {
		t.Error("duplicate objective name accepted")
	}
	if _, err := New(Config{Registry: reg, Windows: []BurnWindow{{Short: time.Hour, Long: time.Minute, Factor: 1}}}); err == nil {
		t.Error("long < short window accepted")
	}
}

// fakeClock steps time manually so window arithmetic is deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// trackerFixture builds a tracker over one 100ms/0.9 objective with a
// single {short 1m, long 5m, factor 2} window at 10s sampling.
func trackerFixture(t *testing.T) (*stats.Registry, *Tracker, *fakeClock) {
	t.Helper()
	reg := stats.NewRegistry()
	clock := &fakeClock{t: time.Unix(1000000, 0)}
	tk, err := New(Config{
		Registry:   reg,
		Objectives: []Objective{{Name: "req", Metric: "lat_ms", Threshold: 100 * time.Millisecond, Target: 0.9}},
		Windows:    []BurnWindow{{Short: time.Minute, Long: 5 * time.Minute, Factor: 2, Severity: "page"}},
		Interval:   10 * time.Second,
		Now:        clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg, tk, clock
}

func TestTrackerBurnRates(t *testing.T) {
	reg, tk, clock := trackerFixture(t)

	// Minute 1: all good (latency 1ms << 100ms threshold).
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			reg.ObserveHistogram("lat_ms", 1.0)
		}
		clock.advance(10 * time.Second)
		tk.Tick()
	}
	st := tk.Status()
	if len(st) != 1 {
		t.Fatalf("got %d statuses", len(st))
	}
	if st[0].Compliance != 1 || st[0].Firing() {
		t.Fatalf("healthy tracker unhappy: %+v", st[0])
	}
	if st[0].Events != 60 || st[0].GoodEvents != 60 {
		t.Fatalf("events %d/%d, want 60/60", st[0].GoodEvents, st[0].Events)
	}

	// Minute 2: total outage — every request blows the threshold. Error
	// rate 1.0 against budget 0.1 is burn 10 >> factor 2 in both windows.
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			reg.ObserveHistogramExemplar("lat_ms", 5000.0, 0xBEEF)
		}
		clock.advance(10 * time.Second)
		tk.Tick()
	}
	st = tk.Status()
	w := st[0].Windows[0]
	if w.ShortBurn < 9 || w.ShortBurn > 10.5 {
		t.Errorf("short burn %.2f, want ~10", w.ShortBurn)
	}
	if w.LongBurn <= 2 {
		t.Errorf("long burn %.2f, want > 2", w.LongBurn)
	}
	if !w.Firing || !st[0].Firing() {
		t.Error("outage did not fire the page window")
	}
	if st[0].ExemplarTraceID != 0xBEEF {
		t.Errorf("exemplar %#x, want 0xBEEF", st[0].ExemplarTraceID)
	}
	if st[0].BudgetUsed < 4 { // 60 bad / 120 total / 0.1 budget = 5
		t.Errorf("budget used %.2f, want ~5", st[0].BudgetUsed)
	}

	// Minutes 3-7: recovery. The short window resets quickly; once the
	// trailing minute is clean the alert must stop firing even though the
	// long window still remembers the outage.
	for i := 0; i < 30; i++ {
		for j := 0; j < 10; j++ {
			reg.ObserveHistogram("lat_ms", 1.0)
		}
		clock.advance(10 * time.Second)
		tk.Tick()
	}
	st = tk.Status()
	w = st[0].Windows[0]
	if w.ShortBurn != 0 {
		t.Errorf("short burn after recovery %.2f, want 0", w.ShortBurn)
	}
	if w.Firing {
		t.Error("alert still firing after a clean short window")
	}
}

func TestTrackerNoTraffic(t *testing.T) {
	_, tk, clock := trackerFixture(t)
	clock.advance(10 * time.Minute)
	tk.Tick()
	st := tk.Status()
	if st[0].Compliance != 1 || st[0].Firing() || st[0].BudgetUsed != 0 {
		t.Fatalf("idle tracker unhappy: %+v", st[0])
	}
}

// TestWritePrometheusLint: every slo_* series must pass the strict
// exposition linter, for the default config and for a custom one with
// duplicate window durations and severities.
func TestWritePrometheusLint(t *testing.T) {
	reg := stats.NewRegistry()
	reg.ObserveHistogram("serve.request.total_ms", 1.0)
	tk, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	tk.WritePrometheus(&b)
	if err := stats.LintPrometheusText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("default config lint: %v\n%s", err, b.String())
	}
	for _, series := range []string{
		"slo_events_total", "slo_good_events_total", "slo_threshold_ms",
		"slo_target_ratio", "slo_compliance_ratio", "slo_error_budget_used_ratio",
		"slo_burn_rate", "slo_alert_active", "slo_exemplar_trace_id",
	} {
		if !strings.Contains(b.String(), series) {
			t.Errorf("exposition missing %s", series)
		}
	}

	// Degenerate custom config: same duration reused across window pairs
	// and one severity shared by both — must not emit duplicate series.
	tk2, err := New(Config{
		Registry: reg,
		Windows: []BurnWindow{
			{Short: time.Minute, Long: time.Hour, Factor: 10, Severity: "page"},
			{Short: time.Minute, Long: time.Hour, Factor: 2, Severity: "page"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	tk2.WritePrometheus(&b2)
	if err := stats.LintPrometheusText(strings.NewReader(b2.String())); err != nil {
		t.Fatalf("degenerate config lint: %v\n%s", err, b2.String())
	}

	var nilTracker *Tracker
	nilTracker.WritePrometheus(&b2) // must not panic
}
