package slo

import (
	"testing"
	"time"

	"hesgx/internal/diag"
	"hesgx/internal/stats"
)

// eventsOf filters the bus log by type.
func eventsOf(bus *diag.Bus, typ diag.Type) []diag.Event {
	var out []diag.Event
	for _, e := range bus.Recent(0) {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// TestTrackerPublishesOncePerTransition is the edge-trigger contract: a
// burn alert that stays firing across many ticks publishes exactly one
// page event when it starts and exactly one resolution when it stops —
// never one per tick.
func TestTrackerPublishesOncePerTransition(t *testing.T) {
	reg := stats.NewRegistry()
	bus := diag.NewBus(64, nil)
	clock := &fakeClock{t: time.Unix(1000000, 0)}
	tk, err := New(Config{
		Registry:   reg,
		Objectives: []Objective{{Name: "req", Metric: "lat_ms", Threshold: 100 * time.Millisecond, Target: 0.9}},
		Windows:    []BurnWindow{{Short: time.Minute, Long: 5 * time.Minute, Factor: 2, Severity: "page"}},
		Interval:   10 * time.Second,
		Now:        clock.now,
		Events:     bus,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Minute 1: healthy — no events at all.
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			reg.ObserveHistogram("lat_ms", 1.0)
		}
		clock.advance(10 * time.Second)
		tk.Tick()
	}
	if got := bus.Recent(0); len(got) != 0 {
		t.Fatalf("healthy tracker published %d events: %+v", len(got), got)
	}

	// Minutes 2-3: sustained outage. The alert fires on some tick and
	// stays firing; exactly one page event must come out.
	for i := 0; i < 12; i++ {
		for j := 0; j < 10; j++ {
			reg.ObserveHistogramExemplar("lat_ms", 5000.0, 0xBEEF)
		}
		clock.advance(10 * time.Second)
		tk.Tick()
	}
	pages := eventsOf(bus, diag.TypeSLOPage)
	if len(pages) != 1 {
		t.Fatalf("sustained outage published %d page events, want exactly 1", len(pages))
	}
	e := pages[0]
	if e.Severity != diag.SeverityPage || e.Stage != "req" {
		t.Errorf("page event %+v", e)
	}
	if e.TraceID != 0xBEEF {
		t.Errorf("page event trace %#x, want the slow exemplar 0xBEEF", e.TraceID)
	}
	if e.Value < 2 {
		t.Errorf("page event burn %.2f, want >= the factor", e.Value)
	}
	if e.Attrs["metric"] != "lat_ms" || e.Attrs["severity"] != "page" {
		t.Errorf("page event attrs %+v", e.Attrs)
	}
	if got := eventsOf(bus, diag.TypeSLOResolved); len(got) != 0 {
		t.Fatalf("resolution published while still firing: %+v", got)
	}

	// Minutes 4-9: recovery. One resolution event, and the page count must
	// not grow.
	for i := 0; i < 36; i++ {
		for j := 0; j < 10; j++ {
			reg.ObserveHistogram("lat_ms", 1.0)
		}
		clock.advance(10 * time.Second)
		tk.Tick()
	}
	resolved := eventsOf(bus, diag.TypeSLOResolved)
	if len(resolved) != 1 {
		t.Fatalf("recovery published %d resolution events, want exactly 1", len(resolved))
	}
	if resolved[0].Severity != diag.SeverityInfo || resolved[0].Attrs["severity"] != "page" {
		t.Errorf("resolution event %+v", resolved[0])
	}
	if got := eventsOf(bus, diag.TypeSLOPage); len(got) != 1 {
		t.Fatalf("page events grew to %d during recovery", len(got))
	}

	// A second outage is a new edge: a second page event, no more.
	for i := 0; i < 12; i++ {
		for j := 0; j < 10; j++ {
			reg.ObserveHistogram("lat_ms", 5000.0)
		}
		clock.advance(10 * time.Second)
		tk.Tick()
	}
	if got := eventsOf(bus, diag.TypeSLOPage); len(got) != 2 {
		t.Fatalf("second outage: %d page events total, want 2", len(got))
	}
}

// TestTrackerFoldsWindowsBySeverity checks that two burn windows sharing a
// severity produce one folded event stream, and distinct severities are
// tracked independently (a ticket and a page can each fire once).
func TestTrackerFoldsWindowsBySeverity(t *testing.T) {
	reg := stats.NewRegistry()
	bus := diag.NewBus(64, nil)
	clock := &fakeClock{t: time.Unix(1000000, 0)}
	tk, err := New(Config{
		Registry:   reg,
		Objectives: []Objective{{Name: "req", Metric: "lat_ms", Threshold: 100 * time.Millisecond, Target: 0.9}},
		Windows: []BurnWindow{
			{Short: time.Minute, Long: 2 * time.Minute, Factor: 2, Severity: "page"},
			{Short: time.Minute, Long: 4 * time.Minute, Factor: 2, Severity: "page"},
			{Short: 2 * time.Minute, Long: 6 * time.Minute, Factor: 1.5, Severity: "ticket"},
		},
		Interval: 10 * time.Second,
		Now:      clock.now,
		Events:   bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 36; i++ {
		for j := 0; j < 10; j++ {
			reg.ObserveHistogram("lat_ms", 5000.0)
		}
		clock.advance(10 * time.Second)
		tk.Tick()
	}
	if got := eventsOf(bus, diag.TypeSLOPage); len(got) != 1 {
		t.Fatalf("two page windows folded into %d events, want 1", len(got))
	}
	if got := eventsOf(bus, diag.TypeSLOTicket); len(got) != 1 {
		t.Fatalf("ticket severity fired %d events, want 1", len(got))
	}
}
