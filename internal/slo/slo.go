// Package slo turns the serving stack's latency histograms into
// SLO-grade accounting: per-stage latency objectives, multi-window
// burn-rate alerting, and error-budget tracking, in the style of the
// Google SRE workbook's multiwindow multi-burn-rate alerts.
//
// An Objective binds a stats histogram (milliseconds) to a latency
// threshold and a compliance target: an observation at or under the
// threshold is a good event. The Tracker samples cumulative good/total
// counts on a fixed interval into a ring, so any trailing window's error
// rate is a subtraction, not a second histogram. The burn rate of a window
// is its error rate divided by the budgeted error rate (1 - target);
// burning at rate 1 spends exactly the budget over the SLO period, at
// 14.4 a 99.9% monthly budget is gone in two days. An alert fires only
// when both the short and long window of a BurnWindow exceed its factor —
// the short window makes alerts reset quickly once the cause stops, the
// long window keeps a brief spike from paging.
package slo

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hesgx/internal/diag"
	"hesgx/internal/stats"
)

// Objective is one per-stage latency SLO: observations of Metric (a
// Registry histogram recording milliseconds) at or under Threshold are
// good events, and at least Target of all events should be good.
type Objective struct {
	// Name labels the objective in /slo JSON and Prometheus series.
	Name string `json:"name"`
	// Metric is the registry histogram name, e.g. "serve.request.total_ms".
	Metric string `json:"metric"`
	// Threshold is the latency bound for a good event. The histogram's
	// buckets double from 1µs, so thresholds on that grid (1ms, 2ms, ...
	// 250µs·2^k) account exactly; off-grid thresholds round down
	// (conservative).
	Threshold time.Duration `json:"threshold"`
	// Target is the objective compliance ratio in (0, 1), e.g. 0.99.
	Target float64 `json:"target"`
}

// ThresholdMS is the threshold in the histograms' native unit.
func (o Objective) ThresholdMS() float64 {
	return float64(o.Threshold) / float64(time.Millisecond)
}

// DefaultObjectives covers the serving pipeline's stages end to end:
// whole-request latency plus the two queueing stages a request can stall
// in before any HE work starts.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "request", Metric: "serve.request.total_ms", Threshold: 2 * time.Second, Target: 0.99},
		{Name: "queue", Metric: "serve.job.queue_wait_ms", Threshold: 250 * time.Millisecond, Target: 0.99},
		{Name: "lane", Metric: "serve.stage.lane_wait_ms", Threshold: 100 * time.Millisecond, Target: 0.99},
	}
}

// ParseObjectives parses a flag-style objective list:
// "name:metric:threshold:target[,...]", e.g.
// "request:serve.request.total_ms:2s:0.99,queue:serve.job.queue_wait_ms:250ms:0.99".
func ParseObjectives(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("slo: objective %q: want name:metric:threshold:target", part)
		}
		thr, err := time.ParseDuration(fields[2])
		if err != nil || thr <= 0 {
			return nil, fmt.Errorf("slo: objective %q: bad threshold %q", part, fields[2])
		}
		target, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || target <= 0 || target >= 1 {
			return nil, fmt.Errorf("slo: objective %q: target must be in (0,1), got %q", part, fields[3])
		}
		out = append(out, Objective{Name: fields[0], Metric: fields[1], Threshold: thr, Target: target})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: no objectives in %q", spec)
	}
	return out, nil
}

// BurnWindow is one multi-window burn-rate alert condition: fire when both
// the Short and Long trailing windows burn error budget faster than Factor.
type BurnWindow struct {
	Short    time.Duration `json:"short"`
	Long     time.Duration `json:"long"`
	Factor   float64       `json:"factor"`
	Severity string        `json:"severity"`
}

// DefaultWindows are the SRE-workbook pairings: a fast page and a slow
// ticket.
func DefaultWindows() []BurnWindow {
	return []BurnWindow{
		{Short: 5 * time.Minute, Long: time.Hour, Factor: 14.4, Severity: "page"},
		{Short: 30 * time.Minute, Long: 6 * time.Hour, Factor: 6, Severity: "ticket"},
	}
}

// DefaultInterval is the sampling cadence when Config.Interval is zero.
const DefaultInterval = 10 * time.Second

// Config assembles a Tracker.
type Config struct {
	// Registry is the metrics registry whose histograms feed the objectives.
	Registry *stats.Registry
	// Objectives to track; DefaultObjectives when empty.
	Objectives []Objective
	// Windows are the burn-rate alert conditions; DefaultWindows when empty.
	Windows []BurnWindow
	// Interval between samples; DefaultInterval when zero.
	Interval time.Duration
	// Now overrides the clock (tests); time.Now when nil.
	Now func() time.Time
	// Events optionally receives an edge-triggered diag event whenever an
	// objective's alert severity starts or stops firing — exactly one
	// event per transition, however long the level holds, unlike the
	// Firing levels /slo polls. Nil disables publication.
	Events *diag.Bus
}

// sample is one cumulative good/total reading.
type sample struct {
	t           time.Time
	good, total uint64
}

// objectiveState is the per-objective sample ring.
type objectiveState struct {
	obj  Objective
	ring []sample
	pos  int
	n    int
}

func (s *objectiveState) push(p sample) {
	s.ring[s.pos] = p
	s.pos = (s.pos + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// latest returns the newest sample (zero sample when none).
func (s *objectiveState) latest() sample {
	if s.n == 0 {
		return sample{}
	}
	return s.ring[(s.pos-1+len(s.ring))%len(s.ring)]
}

// at returns the newest sample at least window old relative to now, falling
// back to the oldest retained one (so early in a run every window sees the
// full history).
func (s *objectiveState) at(now time.Time, window time.Duration) sample {
	if s.n == 0 {
		return sample{}
	}
	for i := 1; i <= s.n; i++ {
		p := s.ring[(s.pos-i+len(s.ring))%len(s.ring)]
		if now.Sub(p.t) >= window {
			return p
		}
	}
	return s.ring[(s.pos-s.n+len(s.ring))%len(s.ring)]
}

// Tracker samples objective compliance on an interval and answers burn-rate
// and status queries. Tick and the read methods are safe to call
// concurrently (one mutex; sampling is cheap).
type Tracker struct {
	reg      *stats.Registry
	windows  []BurnWindow
	interval time.Duration
	now      func() time.Time
	events   *diag.Bus

	mu     sync.Mutex
	states []*objectiveState
	// firing is the per-(objective, severity) alert level as of the last
	// Tick — the state the edge detector diffs against.
	firing map[string]bool
}

// New builds a Tracker. The sample ring per objective is sized to cover the
// longest alert window at the configured interval.
func New(cfg Config) (*Tracker, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("slo: Config.Registry is required")
	}
	objs := cfg.Objectives
	if len(objs) == 0 {
		objs = DefaultObjectives()
	}
	seen := make(map[string]bool, len(objs))
	for _, o := range objs {
		if o.Name == "" || o.Metric == "" || o.Threshold <= 0 || o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("slo: invalid objective %+v", o)
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
	}
	windows := cfg.Windows
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	var longest time.Duration
	for _, w := range windows {
		if w.Short <= 0 || w.Long < w.Short || w.Factor <= 0 {
			return nil, fmt.Errorf("slo: invalid burn window %+v", w)
		}
		if w.Long > longest {
			longest = w.Long
		}
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ringLen := int(longest/interval) + 2
	t := &Tracker{reg: cfg.Registry, windows: windows, interval: interval, now: now,
		events: cfg.Events, firing: make(map[string]bool)}
	for _, o := range objs {
		t.states = append(t.states, &objectiveState{obj: o, ring: make([]sample, ringLen)})
	}
	t.Tick() // seed the ring so the first window query has a baseline
	return t, nil
}

// Interval returns the sampling cadence (what Run sleeps between ticks).
func (t *Tracker) Interval() time.Duration { return t.interval }

// Tick takes one compliance sample per objective, then runs the alert
// edge detector: every (objective, severity) whose burn-window condition
// flipped since the previous tick publishes exactly one diag event — a
// page/ticket on the rising edge, a resolution on the falling edge.
// Severities with several burn windows fold into one level (firing when
// any window is), matching the slo_alert_active series.
func (t *Tracker) Tick() {
	now := t.now()
	t.mu.Lock()
	var events []diag.Event
	for _, st := range t.states {
		snap := t.reg.Histogram(st.obj.Metric).Snapshot()
		cur := sample{t: now, good: snap.CountAtMost(st.obj.ThresholdMS()), total: snap.Count}
		st.push(cur)
		budget := 1 - st.obj.Target

		// Fold this objective's windows by severity, keeping the hottest
		// firing window's readings for the event's threshold context.
		type sevReading struct {
			firing bool
			burn   float64
			factor float64
			short  time.Duration
			long   time.Duration
		}
		order := make([]string, 0, len(t.windows))
		bySev := make(map[string]*sevReading, len(t.windows))
		for _, w := range t.windows {
			shortBurn := burnBetween(st.at(now, w.Short), cur, budget)
			longBurn := burnBetween(st.at(now, w.Long), cur, budget)
			firing := shortBurn >= w.Factor && longBurn >= w.Factor
			r, ok := bySev[w.Severity]
			if !ok {
				r = &sevReading{factor: w.Factor, short: w.Short, long: w.Long}
				bySev[w.Severity] = r
				order = append(order, w.Severity)
			}
			burn := shortBurn
			if longBurn < burn {
				burn = longBurn // the binding constraint of the AND
			}
			if firing && (!r.firing || burn > r.burn) {
				r.firing = true
				r.burn = burn
				r.factor = w.Factor
				r.short = w.Short
				r.long = w.Long
			} else if !r.firing && burn > r.burn {
				r.burn = burn
			}
		}
		for _, sev := range order {
			r := bySev[sev]
			key := st.obj.Name + "/" + sev
			if r.firing == t.firing[key] {
				continue
			}
			t.firing[key] = r.firing
			e := diag.Event{
				Time:      now,
				Stage:     st.obj.Name,
				TraceID:   snap.ExemplarAbove(st.obj.ThresholdMS()),
				Value:     r.burn,
				Threshold: r.factor,
				Attrs: map[string]string{
					"metric":   st.obj.Metric,
					"severity": sev,
					"short":    windowLabel(r.short),
					"long":     windowLabel(r.long),
				},
			}
			if r.firing {
				switch sev {
				case "page":
					e.Type, e.Severity = diag.TypeSLOPage, diag.SeverityPage
				case "ticket":
					e.Type, e.Severity = diag.TypeSLOTicket, diag.SeverityWarn
				default:
					e.Type, e.Severity = diag.Type("slo."+sev), diag.SeverityWarn
				}
				e.Message = fmt.Sprintf("%s objective burning %.1fx budget over %s/%s (factor %g)",
					st.obj.Name, r.burn, windowLabel(r.short), windowLabel(r.long), r.factor)
			} else {
				e.Type, e.Severity = diag.TypeSLOResolved, diag.SeverityInfo
				e.Message = fmt.Sprintf("%s objective %s alert resolved (burn %.1fx)",
					st.obj.Name, sev, r.burn)
			}
			events = append(events, e)
		}
	}
	t.mu.Unlock()
	for _, e := range events {
		t.events.Publish(e)
	}
}

// Run ticks until ctx is done.
func (t *Tracker) Run(ctx context.Context) {
	tick := time.NewTicker(t.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			t.Tick()
		}
	}
}

// WindowStatus is one burn-rate alert condition's current reading.
type WindowStatus struct {
	Severity  string        `json:"severity"`
	Short     time.Duration `json:"short"`
	Long      time.Duration `json:"long"`
	Factor    float64       `json:"factor"`
	ShortBurn float64       `json:"short_burn"`
	LongBurn  float64       `json:"long_burn"`
	Firing    bool          `json:"firing"`
}

// ObjectiveStatus is one objective's current standing.
type ObjectiveStatus struct {
	Objective
	// Events and GoodEvents are lifetime cumulative counts.
	Events     uint64 `json:"events"`
	GoodEvents uint64 `json:"good_events"`
	// Compliance is lifetime good/total (1 when no events yet).
	Compliance float64 `json:"compliance"`
	// BudgetUsed is the lifetime error budget consumed:
	// bad/(total·(1−target)); above 1 the objective is blown.
	BudgetUsed float64 `json:"budget_used"`
	// P50MS / P99MS are quantiles of the backing histogram.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// ExemplarTraceID is a concrete trace that exceeded the threshold
	// (0 when none recorded) — feed it to /traces/last tooling.
	ExemplarTraceID uint64         `json:"exemplar_trace_id"`
	Windows         []WindowStatus `json:"windows"`
}

// Firing reports whether any burn window is in alert.
func (s ObjectiveStatus) Firing() bool {
	for _, w := range s.Windows {
		if w.Firing {
			return true
		}
	}
	return false
}

// burnBetween computes the burn rate of the window starting at old and
// ending at cur for an objective with the given budget (1 - target).
func burnBetween(old, cur sample, budget float64) float64 {
	if cur.total < old.total || cur.total == old.total {
		return 0
	}
	dTotal := cur.total - old.total
	dBad := (cur.total - cur.good) - (old.total - old.good)
	return (float64(dBad) / float64(dTotal)) / budget
}

// Status returns every objective's current standing, in configuration
// order.
func (t *Tracker) Status() []ObjectiveStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]ObjectiveStatus, 0, len(t.states))
	for _, st := range t.states {
		snap := t.reg.Histogram(st.obj.Metric).Snapshot()
		cur := sample{t: now, good: snap.CountAtMost(st.obj.ThresholdMS()), total: snap.Count}
		budget := 1 - st.obj.Target
		os := ObjectiveStatus{
			Objective:       st.obj,
			Events:          cur.total,
			GoodEvents:      cur.good,
			Compliance:      1,
			P50MS:           snap.Quantile(0.5),
			P99MS:           snap.Quantile(0.99),
			ExemplarTraceID: snap.ExemplarAbove(st.obj.ThresholdMS()),
		}
		if cur.total > 0 {
			os.Compliance = float64(cur.good) / float64(cur.total)
			os.BudgetUsed = (float64(cur.total-cur.good) / float64(cur.total)) / budget
		}
		for _, w := range t.windows {
			ws := WindowStatus{Severity: w.Severity, Short: w.Short, Long: w.Long, Factor: w.Factor}
			ws.ShortBurn = burnBetween(st.at(now, w.Short), cur, budget)
			ws.LongBurn = burnBetween(st.at(now, w.Long), cur, budget)
			ws.Firing = ws.ShortBurn >= w.Factor && ws.LongBurn >= w.Factor
			os.Windows = append(os.Windows, ws)
		}
		out = append(out, os)
	}
	return out
}

// windowLabel renders a duration compactly for a Prometheus label ("5m",
// "1h", "6h").
func windowLabel(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}

// WritePrometheus renders the tracker's state as Prometheus 0.0.4 text —
// appended to the registry exposition by the admin endpoint. All series are
// labeled by objective, so each family is declared once; values that are
// trace IDs print as integers (they are < 2^53, exact in float64).
func (t *Tracker) WritePrometheus(w io.Writer) {
	if t == nil {
		return
	}
	statuses := t.Status()
	sorted := make([]ObjectiveStatus, len(statuses))
	copy(sorted, statuses)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	fmt.Fprintf(w, "# TYPE slo_events_total counter\n")
	for _, s := range sorted {
		fmt.Fprintf(w, "slo_events_total{objective=%q} %d\n", s.Name, s.Events)
	}
	fmt.Fprintf(w, "# TYPE slo_good_events_total counter\n")
	for _, s := range sorted {
		fmt.Fprintf(w, "slo_good_events_total{objective=%q} %d\n", s.Name, s.GoodEvents)
	}
	fmt.Fprintf(w, "# TYPE slo_threshold_ms gauge\n")
	for _, s := range sorted {
		fmt.Fprintf(w, "slo_threshold_ms{objective=%q} %g\n", s.Name, s.ThresholdMS())
	}
	fmt.Fprintf(w, "# TYPE slo_target_ratio gauge\n")
	for _, s := range sorted {
		fmt.Fprintf(w, "slo_target_ratio{objective=%q} %g\n", s.Name, s.Target)
	}
	fmt.Fprintf(w, "# TYPE slo_compliance_ratio gauge\n")
	for _, s := range sorted {
		fmt.Fprintf(w, "slo_compliance_ratio{objective=%q} %g\n", s.Name, s.Compliance)
	}
	fmt.Fprintf(w, "# TYPE slo_error_budget_used_ratio gauge\n")
	for _, s := range sorted {
		fmt.Fprintf(w, "slo_error_budget_used_ratio{objective=%q} %g\n", s.Name, s.BudgetUsed)
	}
	fmt.Fprintf(w, "# TYPE slo_burn_rate gauge\n")
	for _, s := range sorted {
		// Dedup window labels: a custom config may reuse one duration across
		// burn pairs, and duplicate series fail the exposition linter.
		emitted := make(map[string]bool, 4)
		for _, ws := range s.Windows {
			for _, wl := range []struct {
				label string
				burn  float64
			}{{windowLabel(ws.Short), ws.ShortBurn}, {windowLabel(ws.Long), ws.LongBurn}} {
				if emitted[wl.label] {
					continue
				}
				emitted[wl.label] = true
				fmt.Fprintf(w, "slo_burn_rate{objective=%q,window=%q} %g\n", s.Name, wl.label, wl.burn)
			}
		}
	}
	fmt.Fprintf(w, "# TYPE slo_alert_active gauge\n")
	for _, s := range sorted {
		// Fold windows sharing a severity into one series (firing if any is).
		order := make([]string, 0, len(s.Windows))
		firing := make(map[string]bool, len(s.Windows))
		for _, ws := range s.Windows {
			if _, ok := firing[ws.Severity]; !ok {
				order = append(order, ws.Severity)
			}
			firing[ws.Severity] = firing[ws.Severity] || ws.Firing
		}
		for _, sev := range order {
			v := 0
			if firing[sev] {
				v = 1
			}
			fmt.Fprintf(w, "slo_alert_active{objective=%q,severity=%q} %d\n", s.Name, sev, v)
		}
	}
	fmt.Fprintf(w, "# TYPE slo_exemplar_trace_id gauge\n")
	for _, s := range sorted {
		fmt.Fprintf(w, "slo_exemplar_trace_id{objective=%q} %d\n", s.Name, s.ExemplarTraceID)
	}
}
