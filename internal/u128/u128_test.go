package u128

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func bigFromUint128(u Uint128) *big.Int {
	b := new(big.Int).SetUint64(u.Hi)
	b.Lsh(b, 64)
	return b.Add(b, new(big.Int).SetUint64(u.Lo))
}

func bigFromInt128(i Int128) *big.Int {
	b := bigFromUint128(i.Mag)
	if i.Neg {
		b.Neg(b)
	}
	return b
}

func TestFromUint64(t *testing.T) {
	u := FromUint64(42)
	if u.Hi != 0 || u.Lo != 42 {
		t.Fatalf("FromUint64(42) = %+v", u)
	}
}

func TestUint128AddAgainstBig(t *testing.T) {
	f := func(aHi, aLo, bHi, bLo uint64) bool {
		a, b := Uint128{aHi, aLo}, Uint128{bHi, bLo}
		got := bigFromUint128(a.Add(b))
		want := new(big.Int).Add(bigFromUint128(a), bigFromUint128(b))
		mod := new(big.Int).Lsh(big.NewInt(1), 128)
		want.Mod(want, mod)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint128SubAgainstBig(t *testing.T) {
	f := func(aHi, aLo, bHi, bLo uint64) bool {
		a, b := Uint128{aHi, aLo}, Uint128{bHi, bLo}
		got := bigFromUint128(a.Sub(b))
		want := new(big.Int).Sub(bigFromUint128(a), bigFromUint128(b))
		mod := new(big.Int).Lsh(big.NewInt(1), 128)
		want.Mod(want, mod)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64AgainstBig(t *testing.T) {
	f := func(a, b uint64) bool {
		got := bigFromUint128(Mul64(a, b))
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmp(t *testing.T) {
	tests := []struct {
		name string
		a, b Uint128
		want int
	}{
		{"equal", Uint128{1, 2}, Uint128{1, 2}, 0},
		{"hi less", Uint128{1, 9}, Uint128{2, 0}, -1},
		{"hi greater", Uint128{3, 0}, Uint128{2, 9}, 1},
		{"lo less", Uint128{1, 1}, Uint128{1, 2}, -1},
		{"lo greater", Uint128{1, 3}, Uint128{1, 2}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Cmp(tt.b); got != tt.want {
				t.Fatalf("Cmp = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestInt128FromInt64(t *testing.T) {
	tests := []struct {
		in  int64
		neg bool
		mag uint64
	}{
		{0, false, 0},
		{5, false, 5},
		{-5, true, 5},
		{-9223372036854775808, true, 9223372036854775808},
	}
	for _, tt := range tests {
		got := FromInt64(tt.in)
		if got.Neg != tt.neg || got.Mag.Lo != tt.mag || got.Mag.Hi != 0 {
			t.Fatalf("FromInt64(%d) = %+v", tt.in, got)
		}
	}
}

func TestMulInt64AgainstBig(t *testing.T) {
	f := func(a, b int64) bool {
		got := bigFromInt128(MulInt64(a, b))
		want := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt128AddSubAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := MulInt64(rng.Int63()-rng.Int63(), rng.Int63()-rng.Int63())
		b := MulInt64(rng.Int63()-rng.Int63(), rng.Int63()-rng.Int63())
		gotAdd := bigFromInt128(a.Add(b))
		wantAdd := new(big.Int).Add(bigFromInt128(a), bigFromInt128(b))
		if gotAdd.Cmp(wantAdd) != 0 {
			t.Fatalf("Add mismatch: %v + %v: got %v want %v", a, b, gotAdd, wantAdd)
		}
		gotSub := bigFromInt128(a.Sub(b))
		wantSub := new(big.Int).Sub(bigFromInt128(a), bigFromInt128(b))
		if gotSub.Cmp(wantSub) != 0 {
			t.Fatalf("Sub mismatch: %v - %v: got %v want %v", a, b, gotSub, wantSub)
		}
	}
}

func TestAddMulInt64Accumulate(t *testing.T) {
	// Simulate a tensor-step inner loop and cross-check with big.Int.
	rng := rand.New(rand.NewSource(11))
	acc := Int128{}
	want := new(big.Int)
	for i := 0; i < 5000; i++ {
		a := rng.Int63n(1<<57) - 1<<56
		b := rng.Int63n(1<<57) - 1<<56
		acc = acc.AddMulInt64(a, b)
		want.Add(want, new(big.Int).Mul(big.NewInt(a), big.NewInt(b)))
	}
	if bigFromInt128(acc).Cmp(want) != 0 {
		t.Fatalf("accumulated %v, want %v", bigFromInt128(acc), want)
	}
}

func TestDivRound64(t *testing.T) {
	tests := []struct {
		u    Uint128
		d    uint64
		want Uint128
	}{
		{FromUint64(10), 4, FromUint64(3)}, // 2.5 rounds up
		{FromUint64(9), 4, FromUint64(2)},  // 2.25 rounds down
		{FromUint64(11), 4, FromUint64(3)}, // 2.75 rounds up
		{FromUint64(0), 7, FromUint64(0)},
		{Uint128{1, 0}, 2, Uint128{0, 1 << 63}},
	}
	for _, tt := range tests {
		if got := tt.u.DivRound64(tt.d); got != tt.want {
			t.Fatalf("DivRound64(%+v, %d) = %+v, want %+v", tt.u, tt.d, got, tt.want)
		}
	}
}

func TestDivRound64AgainstBig(t *testing.T) {
	f := func(hi, lo, d uint64) bool {
		if d == 0 {
			d = 1
		}
		u := Uint128{hi, lo}
		num := bigFromUint128(u)
		num.Add(num, new(big.Int).SetUint64(d/2))
		num.Div(num, new(big.Int).SetUint64(d))
		got := bigFromUint128(u.DivRound64(d))
		return got.Cmp(num) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulDivRoundAgainstBig(t *testing.T) {
	f := func(hi, lo, m, d uint64) bool {
		if d == 0 {
			d = 1
		}
		m %= d // keep quotient within 128 bits, as FV guarantees t < q
		u := Uint128{hi, lo}
		num := bigFromUint128(u)
		num.Mul(num, new(big.Int).SetUint64(m))
		num.Add(num, new(big.Int).SetUint64(d/2))
		num.Div(num, new(big.Int).SetUint64(d))
		got := bigFromUint128(u.MulDivRound(m, d))
		return got.Cmp(num) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMod64AgainstBig(t *testing.T) {
	f := func(hi, lo, d uint64) bool {
		if d == 0 {
			d = 1
		}
		u := Uint128{hi, lo}
		want := new(big.Int).Mod(bigFromUint128(u), new(big.Int).SetUint64(d)).Uint64()
		return u.Mod64(d) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleRoundMod(t *testing.T) {
	const q = 1099511627689 // 40-bit prime-ish modulus for the test
	tests := []struct {
		name string
		in   Int128
		m, d uint64
		want uint64
	}{
		{"zero", Int128{}, 3, 7, 0},
		{"positive small", FromInt64(14), 1, 7, 2},
		{"rounding up", FromInt64(15), 1, 7, 2},  // 15/7 = 2.14 -> 2
		{"rounding half", FromInt64(7), 2, 4, 4}, // 14/4 = 3.5 -> 4
		{"negative", FromInt64(-14), 1, 7, q - 2},
		{"negative rounds to zero", FromInt64(-1), 1, 7, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.in.ScaleRoundMod(tt.m, tt.d, q); got != tt.want {
				t.Fatalf("ScaleRoundMod = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestScaleRoundModAgainstBig(t *testing.T) {
	const q = (1 << 58) - 27
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		v := MulInt64(rng.Int63()-rng.Int63(), rng.Int63n(1<<57))
		m := uint64(rng.Int63n(1 << 20))
		d := uint64(rng.Int63n(1<<58-2)) + 1
		got := v.ScaleRoundMod(m, d, q)

		num := bigFromInt128(v)
		num.Mul(num, new(big.Int).SetUint64(m))
		// round-half-away-from-zero to match sign-magnitude rounding
		twice := new(big.Int).Lsh(num, 1)
		den := new(big.Int).SetUint64(d)
		half := new(big.Int).Rsh(den, 1)
		if num.Sign() < 0 {
			num.Neg(num)
			num.Add(num, half)
			num.Div(num, den)
			num.Neg(num)
		} else {
			num.Add(num, half)
			num.Div(num, den)
		}
		_ = twice
		num.Mod(num, new(big.Int).SetUint64(q))
		if num.Sign() < 0 {
			num.Add(num, new(big.Int).SetUint64(q))
		}
		if got != num.Uint64() {
			t.Fatalf("iter %d: ScaleRoundMod = %d, want %v", i, got, num)
		}
	}
}

func BenchmarkAddMulInt64(b *testing.B) {
	acc := Int128{}
	for i := 0; i < b.N; i++ {
		acc = acc.AddMulInt64(int64(i)*7919-3, int64(i)*104729+11)
	}
	_ = acc
}

func BenchmarkScaleRoundMod(b *testing.B) {
	v := MulInt64(123456789123, -987654321987)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = v.ScaleRoundMod(65537, (1<<58)-27, (1<<58)-27)
	}
	_ = sink
}
