// Package u128 provides fixed-width 128-bit unsigned and signed integer
// arithmetic built on math/bits primitives.
//
// The FV (Fan–Vercauteren) homomorphic multiplication tensors two ciphertext
// polynomials over the integers before scaling by t/q and rounding. With a
// coefficient modulus q < 2^58 and ring degree n <= 4096, the centered tensor
// coefficients are bounded by n*(q/2)^2 < 2^126, so exact signed 128-bit
// accumulation suffices and math/big is never needed on the hot path.
package u128

import "math/bits"

// Uint128 is an unsigned 128-bit integer. The zero value is 0.
type Uint128 struct {
	Hi uint64
	Lo uint64
}

// Int128 is a signed 128-bit integer in sign-magnitude form: Neg reports the
// sign and Mag holds the absolute value. The zero value is 0.
//
// Sign-magnitude is chosen over two's complement because the FV rescaling
// step needs |x| for the rounded division round(t*x/q), making the magnitude
// directly useful.
type Int128 struct {
	Neg bool
	Mag Uint128
}

// Zero128 is the unsigned zero value.
var Zero128 = Uint128{}

// FromUint64 widens v to 128 bits.
func FromUint64(v uint64) Uint128 {
	return Uint128{Lo: v}
}

// IsZero reports whether u is zero.
func (u Uint128) IsZero() bool {
	return u.Hi == 0 && u.Lo == 0
}

// Cmp compares u and v, returning -1, 0, or +1.
func (u Uint128) Cmp(v Uint128) int {
	switch {
	case u.Hi < v.Hi:
		return -1
	case u.Hi > v.Hi:
		return 1
	case u.Lo < v.Lo:
		return -1
	case u.Lo > v.Lo:
		return 1
	default:
		return 0
	}
}

// Add returns u+v, wrapping on overflow of 128 bits.
func (u Uint128) Add(v Uint128) Uint128 {
	lo, carry := bits.Add64(u.Lo, v.Lo, 0)
	hi, _ := bits.Add64(u.Hi, v.Hi, carry)
	return Uint128{Hi: hi, Lo: lo}
}

// Sub returns u-v, wrapping on underflow.
func (u Uint128) Sub(v Uint128) Uint128 {
	lo, borrow := bits.Sub64(u.Lo, v.Lo, 0)
	hi, _ := bits.Sub64(u.Hi, v.Hi, borrow)
	return Uint128{Hi: hi, Lo: lo}
}

// Mul64 returns the full 128-bit product a*b.
func Mul64(a, b uint64) Uint128 {
	hi, lo := bits.Mul64(a, b)
	return Uint128{Hi: hi, Lo: lo}
}

// IsZero reports whether i is zero.
func (i Int128) IsZero() bool {
	return i.Mag.IsZero()
}

// FromInt64 widens v to a signed 128-bit integer.
func FromInt64(v int64) Int128 {
	if v < 0 {
		// Negate via unsigned arithmetic so MinInt64 is handled.
		return Int128{Neg: true, Mag: FromUint64(-uint64(v))}
	}
	return Int128{Mag: FromUint64(uint64(v))}
}

// MulInt64 returns the signed 128-bit product a*b of two int64 values.
func MulInt64(a, b int64) Int128 {
	neg := (a < 0) != (b < 0)
	au := uint64(a)
	if a < 0 {
		au = -au
	}
	bu := uint64(b)
	if b < 0 {
		bu = -bu
	}
	m := Mul64(au, bu)
	if m.IsZero() {
		neg = false
	}
	return Int128{Neg: neg, Mag: m}
}

// Add returns i+v.
func (i Int128) Add(v Int128) Int128 {
	if i.Neg == v.Neg {
		return Int128{Neg: i.Neg, Mag: i.Mag.Add(v.Mag)}
	}
	// Opposite signs: subtract the smaller magnitude from the larger.
	switch i.Mag.Cmp(v.Mag) {
	case 0:
		return Int128{}
	case 1:
		return Int128{Neg: i.Neg, Mag: i.Mag.Sub(v.Mag)}
	default:
		return Int128{Neg: v.Neg, Mag: v.Mag.Sub(i.Mag)}
	}
}

// Sub returns i-v.
func (i Int128) Sub(v Int128) Int128 {
	return i.Add(Int128{Neg: !v.Neg || v.IsZero(), Mag: v.Mag})
}

// AddMulInt64 returns i + a*b without materializing the intermediate Int128
// separately; it is the accumulation primitive of the tensor step.
func (i Int128) AddMulInt64(a, b int64) Int128 {
	return i.Add(MulInt64(a, b))
}

// DivRound64 computes round(u/d) for a 128-bit unsigned numerator and a
// 64-bit divisor using round-half-up. It requires d > 0 and u + d/2 to fit
// in 192 bits (always true here).
func (u Uint128) DivRound64(d uint64) Uint128 {
	// Add d/2 with carry into a 192-bit value {c, hi, lo}.
	half := d / 2
	lo, carry := bits.Add64(u.Lo, half, 0)
	hi, c := bits.Add64(u.Hi, 0, carry)
	return divrem192by64(c, hi, lo, d)
}

// MulDivRound multiplies u by m (64-bit) and divides by d (64-bit) with
// round-half-up, exactly, via 192-bit intermediate arithmetic. It requires
// d > 0 and the true quotient to fit in 128 bits; quotients used by FV
// rescaling satisfy this because m = t < d = q.
func (u Uint128) MulDivRound(m, d uint64) Uint128 {
	// 192-bit product {p2, p1, p0} = u * m.
	h1, p0 := bits.Mul64(u.Lo, m)
	p2, l1 := bits.Mul64(u.Hi, m)
	p1, carry := bits.Add64(h1, l1, 0)
	p2 += carry
	// Add d/2 for rounding.
	half := d / 2
	p0, carry = bits.Add64(p0, half, 0)
	p1, carry = bits.Add64(p1, 0, carry)
	p2 += carry
	return divrem192by64(p2, p1, p0, d)
}

// divrem192by64 divides the 192-bit value {a2,a1,a0} by d, returning the low
// 128 bits of the quotient. The caller guarantees the quotient fits.
func divrem192by64(a2, a1, a0, d uint64) Uint128 {
	// Long division limb by limb. bits.Div64 requires hi < d; reduce the top
	// limb first so each step satisfies that precondition.
	q2 := a2 / d
	r := a2 % d
	q1, r := bits.Div64(r, a1, d)
	q0, _ := bits.Div64(r, a0, d)
	if q2 != 0 {
		// Quotient exceeds 128 bits; saturate. FV parameter validation keeps
		// this unreachable, but do not silently wrap.
		return Uint128{Hi: ^uint64(0), Lo: ^uint64(0)}
	}
	return Uint128{Hi: q1, Lo: q0}
}

// Mod64 returns u mod d for d > 0.
func (u Uint128) Mod64(d uint64) uint64 {
	r := u.Hi % d
	_, r = bits.Div64(r, u.Lo, d)
	return r
}

// ScaleRoundMod computes round(i * m / d) mod q for a signed 128-bit value,
// mapping negative results into [0, q). This is the per-coefficient FV
// rescaling primitive: i is a centered tensor coefficient, m = t, d = q = q.
func (i Int128) ScaleRoundMod(m, d, q uint64) uint64 {
	s := i.Mag.MulDivRound(m, d)
	r := s.Mod64(q)
	if i.Neg && r != 0 {
		return q - r
	}
	if i.Neg {
		return 0
	}
	return r
}
