package ring

import (
	"fmt"
	"math/big"
)

// maxAuxLimbs bounds the auxiliary basis. Three 57-bit limbs (~2^171)
// exceed the offset-lifted quotient bound for every legal parameter set
// (n ≤ 8192, q < 2^58, t < q gives |y| < 2^129), so the sizing loop below
// always terminates within this cap.
const maxAuxLimbs = 3

// RNSMultiplier computes the FV tensor step — out_i = round(t·z_i/q) mod q
// for the three tensor polynomials z_i of a ciphertext product — entirely in
// word arithmetic over an RNS basis {p_1, …, p_k, q}: the ciphertext modulus
// q is the last limb of the chain and k auxiliary word-size NTT primes
// carry the convolution headroom the single modulus lacks.
//
// The auxiliary count k is sized to the parameters, not fixed: the
// constructor computes the exact rounding-quotient bound
// |y| ≤ (2n·⌊q/2⌋²·t + ⌊q/2⌋)/q with big-integer arithmetic and takes the
// fewest 57-bit primes whose product holds the offset-lifted quotient.
// Small plaintext moduli — the paper's CRT residue channels and the SIMD
// serving tier — need only two auxiliary limbs, which cuts the per-multiply
// NTT work by a quarter against a fixed three-limb basis; the pathological
// t ≈ q/4 worst case still gets three.
//
// The pipeline per multiply is: CRT basis extension of the centered mod-q
// operands into the auxiliary limbs, per-limb negacyclic NTT convolution
// with the plaintext modulus t folded into the pointwise stage, and a
// DivRoundByLastModulus scaled rounding whose quotient is folded back to a
// single mod-q residue with Garner mixed-radix digits and Shoup
// multiplications — no 128-bit division anywhere on the path. The result is
// bit-exact with the u128.TensorMultiplier oracle (see the equivalence
// property tests): for odd q the oracle's sign-magnitude rounding
// sign(z)·floor((|z|·t + floor(q/2))/q) equals the RNS path's
// floor((z·t + floor(q/2))/q) identically.
//
// Unlike the oracle, the basis product p_1···p_k·q comfortably exceeds the
// tensor bound 2n·(q/2)²·t for every supported degree, so this path serves
// n = 8192 where the 128-bit accumulator cannot.
type RNSMultiplier struct {
	rr *RNSRing // limbs [p_1, …, p_k, q]; q shared with the ciphertext ring
	rq *Ring
	t  uint64

	// Fold precomputations: Garner mixed-radix reconstruction of the
	// offset-lifted quotient w = y + 2^offBit from its auxiliary residues,
	// evaluated directly mod q. With P_j = p_1···p_j (P_0 = 1), the digit
	// expansion is w = t_0 + t_1·P_1 + … + t_{k-1}·P_{k-1}.
	offBit        uint     // log2 of the lift offset; 2^offBit > |y|max
	prodInv       []uint64 // j ≥ 1: P_j^-1 mod p_{j+1}
	prodInvShoup  []uint64
	p1ModP3       uint64 // P_1 mod p_3 (k = 3 only)
	p1ModP3Shoup  uint64
	prodModQ      []uint64 // j ≥ 1: P_j mod q
	prodModQShoup []uint64
	offModAux     []uint64 // 2^offBit mod p_j
	offModQ       uint64   // 2^offBit mod q
}

// NewRNSMultiplier builds the auxiliary basis for the ciphertext ring rq and
// plaintext modulus t. The auxiliary primes are generated one bit below
// MaxModulusBits so they can never collide with a maximal-size ciphertext
// modulus; rq itself becomes the chain's last limb, which keeps NTT
// accounting for the q-limb attributed to the ciphertext ring. The
// constructor proves the rounding-quotient and Garner range bounds with
// exact big-integer arithmetic and refuses parameter sets that violate them.
func NewRNSMultiplier(rq *Ring, t uint64) (*RNSMultiplier, error) {
	if t == 0 || t >= rq.Mod.Q {
		return nil, fmt.Errorf("ring: rns multiplier plaintext modulus %d outside (0, q)", t)
	}

	// Exact range analysis. The worst tensor coefficient is the cross term:
	// |z| ≤ 2n·h² with h = floor(q/2) centered operands, so the scaled
	// value v = t·z satisfies |v| ≤ 2n·h²·t and the rounded quotient
	// y = floor((v + h)/q) satisfies |y| ≤ (2n·h²·t + h)/q. The offset lift
	// w = y + 2^offBit with 2^offBit > |y|max keeps w positive, and the
	// Garner fold needs w < p_1···p_k.
	q := new(big.Int).SetUint64(rq.Mod.Q)
	h := new(big.Int).Rsh(q, 1)
	vmax := new(big.Int).Mul(h, h)
	vmax.Mul(vmax, big.NewInt(int64(2*rq.N)))
	vmax.Mul(vmax, new(big.Int).SetUint64(t))
	ymax := new(big.Int).Add(vmax, h)
	ymax.Div(ymax, q)
	offBit := uint(ymax.BitLen())
	if offBit == 0 {
		offBit = 1
	}
	offset := new(big.Int).Lsh(big.NewInt(1), offBit)
	wmax := new(big.Int).Add(ymax, offset)

	// Size the basis: the fewest auxiliary limbs whose product holds the
	// lifted quotient.
	var aux []uint64
	var auxProd *big.Int
	for count := 1; ; count++ {
		if count > maxAuxLimbs {
			return nil, fmt.Errorf("ring: rns quotient lift exceeds %d auxiliary limbs for n=%d q=%d t=%d",
				maxAuxLimbs, rq.N, rq.Mod.Q, t)
		}
		chain, err := GenerateChain(MaxModulusBits-1, rq.N, count, rq.Mod.Q)
		if err != nil {
			return nil, fmt.Errorf("ring: rns auxiliary basis: %w", err)
		}
		if prod := ChainProduct(chain); prod.Cmp(wmax) > 0 {
			aux, auxProd = chain, prod
			break
		}
	}
	// The tensor value t·z must itself sit centered-uniquely inside the
	// full basis.
	if fullProd := new(big.Int).Mul(auxProd, q); new(big.Int).Lsh(vmax, 1).Cmp(fullProd) >= 0 {
		return nil, fmt.Errorf("ring: rns basis %d bits cannot hold tensor bound for n=%d q=%d t=%d",
			fullProd.BitLen(), rq.N, rq.Mod.Q, t)
	}

	limbs := make([]*Ring, 0, len(aux)+1)
	for _, p := range aux {
		r, err := NewRing(rq.N, p)
		if err != nil {
			return nil, fmt.Errorf("ring: rns auxiliary limb %d: %w", p, err)
		}
		limbs = append(limbs, r)
	}
	limbs = append(limbs, rq)
	rr, err := newRNSRingFromLimbs(limbs)
	if err != nil {
		return nil, err
	}

	ka := len(aux)
	rm := &RNSMultiplier{
		rr: rr, rq: rq, t: t, offBit: offBit,
		prodInv:       make([]uint64, ka),
		prodInvShoup:  make([]uint64, ka),
		prodModQ:      make([]uint64, ka),
		prodModQShoup: make([]uint64, ka),
		offModAux:     make([]uint64, ka),
	}
	mq := rq.Mod
	// P_j mod p_{j+1}, P_j^-1 mod p_{j+1}, and P_j mod q, built incrementally.
	for j := 1; j < ka; j++ {
		mj := limbs[j].Mod
		pModMj := uint64(1)
		for i := 0; i < j; i++ {
			pModMj = mj.Mul(pModMj, limbs[i].Mod.Q%mj.Q)
		}
		if rm.prodInv[j], err = mj.Inv(pModMj); err != nil {
			return nil, err
		}
		rm.prodInvShoup[j] = mj.Shoup(rm.prodInv[j])
		pModQ := uint64(1)
		for i := 0; i < j; i++ {
			pModQ = mq.Mul(pModQ, limbs[i].Mod.Q%mq.Q)
		}
		rm.prodModQ[j] = pModQ
		rm.prodModQShoup[j] = mq.Shoup(pModQ)
	}
	if ka == 3 {
		m3 := limbs[2].Mod
		rm.p1ModP3 = limbs[0].Mod.Q % m3.Q
		rm.p1ModP3Shoup = m3.Shoup(rm.p1ModP3)
	}
	for j := 0; j < ka; j++ {
		rm.offModAux[j] = limbs[j].Mod.Pow(2, uint64(offBit))
	}
	rm.offModQ = mq.Pow(2, uint64(offBit))
	return rm, nil
}

// Chain returns the full RNS basis [p_1, …, p_k, q].
func (rm *RNSMultiplier) Chain() []uint64 { return rm.rr.Chain() }

// extendInput lifts a mod-q ciphertext polynomial into a full RNS scratch
// polynomial: the residues are copied into the q limb and their centered
// values embedded into the auxiliary limbs by exact CRT basis extension.
func (rm *RNSMultiplier) extendInput(p Poly) RNSPoly {
	k := rm.rr.K()
	x := rm.rr.GetRNSPoly()
	copy(x.Limbs[k-1].Coeffs, p.Coeffs)
	rm.rr.ExtendCenteredFromLast(x)
	return x
}

// divRoundFold rounds one tensor polynomial (coefficient domain, full
// basis) to out = round(z/q) mod q in a single fused pass per coefficient:
// the DivRoundByLastModulus quotient y_j = (z_j + h_j − u)·q⁻¹ mod p_j is
// computed limb by limb in registers, lifted by 2^offBit, reconstructed
// into Garner mixed-radix digits, and evaluated directly mod q with Shoup
// multiplications — the quotient never round-trips through memory. The
// loop is specialized per auxiliary count: k ≤ 3 and the digit recurrences
// are short enough that unrolling beats a generic nested loop.
func (rm *RNSMultiplier) divRoundFold(z RNSPoly, out Poly) {
	rnsCRTExtends.Add(1)
	rr := rm.rr
	k := rr.K()
	last := rr.Limbs[k-1].Mod
	halfLast := rr.halfLast
	src := z.Limbs[k-1].Coeffs
	mq := rm.rq.Mod
	// quotient reads the lifted last-limb residue u = (z_q + h) mod q,
	// reduced into limb j by conditional subtraction (q < 4·p_j).
	quot := func(m Modulus, zj, hj, u, inv, invShoup uint64) uint64 {
		for u >= m.Q {
			u -= m.Q
		}
		return m.MulShoup(m.Sub(m.Add(zj, hj), u), inv, invShoup)
	}
	switch k - 1 {
	case 1:
		m1 := rr.Limbs[0].Mod
		z1 := z.Limbs[0].Coeffs
		inv1, invs1, h1 := rr.lastInv[0], rr.lastInvShoup[0], rr.halfModLimb[0]
		for i := range out.Coeffs {
			u := last.Add(src[i], halfLast)
			w1 := m1.Add(quot(m1, z1[i], h1, u, inv1, invs1), rm.offModAux[0])
			out.Coeffs[i] = mq.Sub(mq.reduce128(0, w1), rm.offModQ)
		}
	case 2:
		m1, m2 := rr.Limbs[0].Mod, rr.Limbs[1].Mod
		z1, z2 := z.Limbs[0].Coeffs, z.Limbs[1].Coeffs
		inv1, invs1, h1 := rr.lastInv[0], rr.lastInvShoup[0], rr.halfModLimb[0]
		inv2, invs2, h2 := rr.lastInv[1], rr.lastInvShoup[1], rr.halfModLimb[1]
		for i := range out.Coeffs {
			u := last.Add(src[i], halfLast)
			// w = y + 2^offBit in [0, p1·p2). The auxiliary primes share a
			// bit length, so w1 < p1 < 2·p2 reduces with one conditional
			// subtraction (ReduceLazy).
			w1 := m1.Add(quot(m1, z1[i], h1, u, inv1, invs1), rm.offModAux[0])
			w2 := m2.Add(quot(m2, z2[i], h2, u, inv2, invs2), rm.offModAux[1])
			// Mixed-radix digits: w = w1 + p1·t1.
			t1 := m2.MulShoup(m2.Sub(w2, m2.ReduceLazy(w1)), rm.prodInv[1], rm.prodInvShoup[1])
			r := mq.reduce128(0, w1)
			r = mq.Add(r, mq.MulShoup(t1, rm.prodModQ[1], rm.prodModQShoup[1]))
			out.Coeffs[i] = mq.Sub(r, rm.offModQ)
		}
	case 3:
		m1, m2, m3 := rr.Limbs[0].Mod, rr.Limbs[1].Mod, rr.Limbs[2].Mod
		z1, z2, z3 := z.Limbs[0].Coeffs, z.Limbs[1].Coeffs, z.Limbs[2].Coeffs
		inv1, invs1, h1 := rr.lastInv[0], rr.lastInvShoup[0], rr.halfModLimb[0]
		inv2, invs2, h2 := rr.lastInv[1], rr.lastInvShoup[1], rr.halfModLimb[1]
		inv3, invs3, h3 := rr.lastInv[2], rr.lastInvShoup[2], rr.halfModLimb[2]
		for i := range out.Coeffs {
			u := last.Add(src[i], halfLast)
			// w = y + 2^offBit in [0, p1·p2·p3).
			w1 := m1.Add(quot(m1, z1[i], h1, u, inv1, invs1), rm.offModAux[0])
			w2 := m2.Add(quot(m2, z2[i], h2, u, inv2, invs2), rm.offModAux[1])
			w3 := m3.Add(quot(m3, z3[i], h3, u, inv3, invs3), rm.offModAux[2])
			// Mixed-radix digits: w = w1 + p1·t1 + p1·p2·t2.
			t1 := m2.MulShoup(m2.Sub(w2, m2.ReduceLazy(w1)), rm.prodInv[1], rm.prodInvShoup[1])
			s := m3.Sub(m3.Sub(w3, m3.ReduceLazy(w1)), m3.MulShoup(t1, rm.p1ModP3, rm.p1ModP3Shoup))
			t2 := m3.MulShoup(s, rm.prodInv[2], rm.prodInvShoup[2])
			// Evaluate the expansion mod q and strip the offset.
			r := mq.reduce128(0, w1)
			r = mq.Add(r, mq.MulShoup(t1, rm.prodModQ[1], rm.prodModQShoup[1]))
			r = mq.Add(r, mq.MulShoup(t2, rm.prodModQ[2], rm.prodModQShoup[2]))
			out.Coeffs[i] = mq.Sub(r, rm.offModQ)
		}
	}
}

// MulScaleRound computes the full FV tensor product of ciphertexts (c0, c1)
// and (d0, d1): out0 = round(t·(c0⊛d0)/q), out1 = round(t·(c0⊛d1+c1⊛d0)/q),
// out2 = round(t·(c1⊛d1)/q), all mod q, where ⊛ is exact negacyclic
// convolution of the centered operands. Inputs are coefficient-domain mod-q
// polynomials and are not modified; outputs must not alias inputs.
//
// Per call this costs 4 forward and 3 inverse NTTs per limb — 12+9 on the
// two-auxiliary-limb basis the serving tiers get, versus 24 forward + 12
// inverse plus per-coefficient 128-bit divisions on the u128 oracle — and
// the pointwise stage runs limbs in parallel across worker goroutines. t is
// folded into the inverse transforms' 1/n normalization (INTTScaled), so
// the scaling costs nothing and the rounding stage is a pure
// DivRoundByLastModulus.
func (rm *RNSMultiplier) MulScaleRound(c0, c1, d0, d1, out0, out1, out2 Poly) {
	rr := rm.rr
	k := rr.K()
	a0, a1 := rm.extendInput(c0), rm.extendInput(c1)
	b0, b1 := rm.extendInput(d0), rm.extendInput(d1)
	z0, z1, z2 := rr.GetRNSPoly(), rr.GetRNSPoly(), rr.GetRNSPoly()

	// Everything between extension and rounding is limb-local: transform,
	// pointwise-multiply, and inverse-transform (scaling by t on the way
	// out) each limb in one parallel task.
	parallelLimbs(k, func(i int) {
		r := rr.Limbs[i]
		r.NTT(a0.Limbs[i])
		r.NTT(a1.Limbs[i])
		r.NTT(b0.Limbs[i])
		r.NTT(b1.Limbs[i])
		r.MulCoeffs(a0.Limbs[i], b0.Limbs[i], z0.Limbs[i])
		r.MulCoeffsPairAdd(a0.Limbs[i], b1.Limbs[i], a1.Limbs[i], b0.Limbs[i], z1.Limbs[i])
		r.MulCoeffs(a1.Limbs[i], b1.Limbs[i], z2.Limbs[i])
		r.INTTScaled(z0.Limbs[i], rm.t)
		r.INTTScaled(z1.Limbs[i], rm.t)
		r.INTTScaled(z2.Limbs[i], rm.t)
	})
	rnsLimbMuls.Add(uint64(4 * k))
	rr.PutRNSPoly(a0)
	rr.PutRNSPoly(a1)
	rr.PutRNSPoly(b0)
	rr.PutRNSPoly(b1)

	outs := [3]Poly{out0, out1, out2}
	zs := [3]RNSPoly{z0, z1, z2}
	parallelLimbs(3, func(o int) { rm.divRoundFold(zs[o], outs[o]) })
	rr.PutRNSPoly(z0)
	rr.PutRNSPoly(z1)
	rr.PutRNSPoly(z2)
}

// SquareScaleRound is MulScaleRound for a ciphertext times itself: half the
// forward transforms, and the doubled cross term of the square is absorbed
// into the inverse-transform scale (z1 leaves the NTT domain scaled by 2t
// where z0, z2 take t).
func (rm *RNSMultiplier) SquareScaleRound(c0, c1, out0, out1, out2 Poly) {
	rr := rm.rr
	k := rr.K()
	a0, a1 := rm.extendInput(c0), rm.extendInput(c1)
	z0, z1, z2 := rr.GetRNSPoly(), rr.GetRNSPoly(), rr.GetRNSPoly()

	parallelLimbs(k, func(i int) {
		r := rr.Limbs[i]
		r.NTT(a0.Limbs[i])
		r.NTT(a1.Limbs[i])
		r.MulCoeffs(a0.Limbs[i], a0.Limbs[i], z0.Limbs[i])
		r.MulCoeffs(a0.Limbs[i], a1.Limbs[i], z1.Limbs[i])
		r.MulCoeffs(a1.Limbs[i], a1.Limbs[i], z2.Limbs[i])
		r.INTTScaled(z0.Limbs[i], rm.t)
		r.INTTScaled(z1.Limbs[i], 2*rm.t)
		r.INTTScaled(z2.Limbs[i], rm.t)
	})
	rnsLimbMuls.Add(uint64(3 * k))
	rr.PutRNSPoly(a0)
	rr.PutRNSPoly(a1)

	outs := [3]Poly{out0, out1, out2}
	zs := [3]RNSPoly{z0, z1, z2}
	parallelLimbs(3, func(o int) { rm.divRoundFold(zs[o], outs[o]) })
	rr.PutRNSPoly(z0)
	rr.PutRNSPoly(z1)
	rr.PutRNSPoly(z2)
}
