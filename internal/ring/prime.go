package ring

import (
	"fmt"
	"math/bits"
)

// IsPrime reports whether n is prime using a deterministic Miller–Rabin test
// with a base set proven sufficient for all 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 = d * 2^s.
	d := n - 1
	s := uint(0)
	for d&1 == 0 {
		d >>= 1
		s++
	}
	// Sinclair's base set covers all n < 2^64.
	for _, a := range []uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022} {
		if !millerRabinWitness(n, a%n, d, s) {
			return false
		}
	}
	return true
}

func millerRabinWitness(n, a, d uint64, s uint) bool {
	if a == 0 {
		return true
	}
	x := powMod(a, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := uint(1); i < s; i++ {
		x = mulMod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

func mulMod(a, b, n uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi == 0 {
		return lo % n
	}
	_, r := bits.Div64(hi%n, lo, n)
	return r
}

func powMod(a, e, n uint64) uint64 {
	r := uint64(1)
	a %= n
	for e > 0 {
		if e&1 == 1 {
			r = mulMod(r, a, n)
		}
		a = mulMod(a, a, n)
		e >>= 1
	}
	return r
}

// GenerateNTTPrime returns the largest prime q with the requested bit length
// satisfying q ≡ 1 (mod 2n), which guarantees a primitive 2n-th root of
// unity exists mod q (required by the negacyclic NTT).
func GenerateNTTPrime(bitLen int, n int) (uint64, error) {
	if bitLen < 10 || bitLen > MaxModulusBits {
		return 0, fmt.Errorf("ring: unsupported prime bit length %d", bitLen)
	}
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("ring: degree %d is not a power of two", n)
	}
	m := uint64(2 * n)
	// Start at the largest value < 2^bitLen congruent to 1 mod 2n.
	upper := (uint64(1) << uint(bitLen)) - 1
	q := upper - (upper-1)%m // q ≡ 1 mod m
	lower := uint64(1) << uint(bitLen-1)
	for q > lower {
		if IsPrime(q) {
			return q, nil
		}
		q -= m
	}
	return 0, fmt.Errorf("ring: no %d-bit NTT prime for degree %d", bitLen, n)
}

// GenerateNTTPrimeCongruent returns the largest prime q of the given bit
// length with q ≡ 1 (mod lcm(2n, extra)). The 2n congruence makes q
// NTT-friendly; the extra congruence lets callers force q ≡ 1 (mod t) for a
// plaintext modulus t, which shrinks the FV "plain lift" noise term
// r_t(q) = q mod t to 1 — essential when plaintext values wrap mod t often
// (e.g. layers with many negative activations).
func GenerateNTTPrimeCongruent(bitLen, n int, extra uint64) (uint64, error) {
	if bitLen < 10 || bitLen > MaxModulusBits {
		return 0, fmt.Errorf("ring: unsupported prime bit length %d", bitLen)
	}
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("ring: degree %d is not a power of two", n)
	}
	if extra == 0 {
		extra = 1
	}
	m := lcm(uint64(2*n), extra)
	if m >= uint64(1)<<uint(bitLen-1) {
		return 0, fmt.Errorf("ring: congruence modulus %d too large for %d-bit primes", m, bitLen)
	}
	upper := (uint64(1) << uint(bitLen)) - 1
	q := upper - (upper-1)%m // q ≡ 1 mod m
	lower := uint64(1) << uint(bitLen-1)
	for q > lower {
		if IsPrime(q) {
			return q, nil
		}
		q -= m
	}
	return 0, fmt.Errorf("ring: no %d-bit prime ≡ 1 mod %d", bitLen, m)
}

func lcm(a, b uint64) uint64 {
	g := a
	x := b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}

// GenerateNTTPrimes returns count distinct NTT-friendly primes of the given
// bit length in decreasing order.
func GenerateNTTPrimes(bitLen, n, count int) ([]uint64, error) {
	if count <= 0 {
		return nil, fmt.Errorf("ring: prime count %d must be positive", count)
	}
	m := uint64(2 * n)
	primes := make([]uint64, 0, count)
	upper := (uint64(1) << uint(bitLen)) - 1
	q := upper - (upper-1)%m
	lower := uint64(1) << uint(bitLen-1)
	for q > lower && len(primes) < count {
		if IsPrime(q) {
			primes = append(primes, q)
		}
		q -= m
	}
	if len(primes) < count {
		return nil, fmt.Errorf("ring: found only %d of %d requested %d-bit NTT primes", len(primes), count, bitLen)
	}
	return primes, nil
}

// PrimitiveRoot2N finds a primitive 2n-th root of unity modulo q, where
// q ≡ 1 (mod 2n) and q is prime.
func PrimitiveRoot2N(mod Modulus, n int) (uint64, error) {
	q := mod.Q
	m := uint64(2 * n)
	if (q-1)%m != 0 {
		return 0, fmt.Errorf("ring: %d is not ≡ 1 mod %d", q, m)
	}
	exp := (q - 1) / m
	// Try small candidates; g^((q-1)/2n) is a 2n-th root of unity, primitive
	// iff its n-th power is -1.
	for g := uint64(2); g < q; g++ {
		psi := mod.Pow(g, exp)
		if mod.Pow(psi, uint64(n)) == q-1 {
			return psi, nil
		}
	}
	return 0, fmt.Errorf("ring: no primitive 2*%d-th root of unity mod %d", n, q)
}
