package ring

import (
	"math/big"
	"testing"
	"testing/quick"
)

const (
	testN = 64
)

func testRing(t testing.TB) *Ring {
	t.Helper()
	q, err := GenerateNTTPrime(50, testN)
	if err != nil {
		t.Fatalf("GenerateNTTPrime: %v", err)
	}
	r, err := NewRing(testN, q)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return r
}

func TestNewModulusRejectsBad(t *testing.T) {
	if _, err := NewModulus(0); err == nil {
		t.Error("NewModulus(0) should fail")
	}
	if _, err := NewModulus(1); err == nil {
		t.Error("NewModulus(1) should fail")
	}
	if _, err := NewModulus(1 << 60); err == nil {
		t.Error("NewModulus(2^60) should exceed the bit bound")
	}
}

func TestModulusArithmeticAgainstBig(t *testing.T) {
	q := MustModulus((1 << 57) + 29) // any valid odd modulus works here
	if !IsPrime(q.Q) {
		t.Skip("test constant not prime; adjust")
	}
	bigQ := new(big.Int).SetUint64(q.Q)
	f := func(a, b uint64) bool {
		a %= q.Q
		b %= q.Q
		ba, bb := new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)
		wantMul := new(big.Int).Mul(ba, bb)
		wantMul.Mod(wantMul, bigQ)
		if q.Mul(a, b) != wantMul.Uint64() {
			return false
		}
		wantAdd := new(big.Int).Add(ba, bb)
		wantAdd.Mod(wantAdd, bigQ)
		if q.Add(a, b) != wantAdd.Uint64() {
			return false
		}
		wantSub := new(big.Int).Sub(ba, bb)
		wantSub.Mod(wantSub, bigQ)
		if q.Sub(a, b) != wantSub.Uint64() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestModulusMulShoupMatchesMul(t *testing.T) {
	q := MustModulus((1 << 50) + 4*testN + 1)
	f := func(a, w uint64) bool {
		a %= q.Q
		w %= q.Q
		return q.MulShoup(a, w, q.Shoup(w)) == q.Mul(a, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestModulusPowInv(t *testing.T) {
	qv, err := GenerateNTTPrime(45, 1024)
	if err != nil {
		t.Fatal(err)
	}
	q := MustModulus(qv)
	for _, a := range []uint64{1, 2, 3, 12345, qv - 1, qv / 2} {
		inv, err := q.Inv(a)
		if err != nil {
			t.Fatalf("Inv(%d): %v", a, err)
		}
		if got := q.Mul(a, inv); got != 1 {
			t.Fatalf("a * a^-1 = %d, want 1", got)
		}
	}
	if _, err := q.Inv(0); err == nil {
		t.Error("Inv(0) should fail")
	}
}

func TestCenteredRoundTrip(t *testing.T) {
	q := MustModulus(97)
	for a := uint64(0); a < 97; a++ {
		c := q.Centered(a)
		if c > 48 || c < -48 {
			t.Fatalf("Centered(%d) = %d out of range", a, c)
		}
		if q.FromCentered(c) != a {
			t.Fatalf("FromCentered(Centered(%d)) = %d", a, q.FromCentered(c))
		}
	}
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 4: false, 5: true, 9: false, 97: true,
		561: false /* Carmichael */, 7919: true, 1 << 20: false,
		(1 << 32) + 15: true, 4294967297: false, /* Fermat F5 */
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestGenerateNTTPrime(t *testing.T) {
	for _, n := range []int{1024, 2048, 4096} {
		for _, b := range []int{30, 40, 50, 58} {
			q, err := GenerateNTTPrime(b, n)
			if err != nil {
				t.Fatalf("GenerateNTTPrime(%d, %d): %v", b, n, err)
			}
			if !IsPrime(q) {
				t.Fatalf("returned composite %d", q)
			}
			if q%uint64(2*n) != 1 {
				t.Fatalf("q=%d not ≡ 1 mod %d", q, 2*n)
			}
			if q>>(uint(b)-1) != 1 {
				t.Fatalf("q=%d not %d bits", q, b)
			}
		}
	}
	if _, err := GenerateNTTPrime(5, 1024); err == nil {
		t.Error("tiny bit length should fail")
	}
	if _, err := GenerateNTTPrime(40, 1000); err == nil {
		t.Error("non-power-of-two degree should fail")
	}
}

func TestGenerateNTTPrimesDistinct(t *testing.T) {
	ps, err := GenerateNTTPrimes(50, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, p := range ps {
		if seen[p] {
			t.Fatalf("duplicate prime %d", p)
		}
		seen[p] = true
		if p%2048 != 1 || !IsPrime(p) {
			t.Fatalf("bad prime %d", p)
		}
	}
}

func TestPrimitiveRoot(t *testing.T) {
	r := testRing(t)
	psi, err := PrimitiveRoot2N(r.Mod, r.N)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Mod.Pow(psi, uint64(2*r.N)); got != 1 {
		t.Fatalf("psi^2n = %d, want 1", got)
	}
	if got := r.Mod.Pow(psi, uint64(r.N)); got != r.Mod.Q-1 {
		t.Fatalf("psi^n = %d, want q-1", got)
	}
}

func TestNTTRoundTrip(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(1))
	for trial := 0; trial < 20; trial++ {
		p := r.NewPoly()
		s.Uniform(p)
		orig := p.Copy()
		r.NTT(p)
		if p.Equal(orig) && !orig.IsZero() {
			t.Fatal("NTT left poly unchanged")
		}
		r.INTT(p)
		if !p.Equal(orig) {
			t.Fatalf("trial %d: NTT/INTT roundtrip mismatch", trial)
		}
	}
}

// naiveNegacyclicMul is the O(n^2) big.Int oracle for ring multiplication.
func naiveNegacyclicMul(r *Ring, a, b Poly) Poly {
	n := r.N
	bigQ := new(big.Int).SetUint64(r.Mod.Q)
	acc := make([]*big.Int, n)
	for i := range acc {
		acc[i] = new(big.Int)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prod := new(big.Int).Mul(
				new(big.Int).SetUint64(a.Coeffs[i]),
				new(big.Int).SetUint64(b.Coeffs[j]),
			)
			k := i + j
			if k >= n {
				acc[k-n].Sub(acc[k-n], prod)
			} else {
				acc[k].Add(acc[k], prod)
			}
		}
	}
	out := r.NewPoly()
	for i := range acc {
		acc[i].Mod(acc[i], bigQ)
		if acc[i].Sign() < 0 {
			acc[i].Add(acc[i], bigQ)
		}
		out.Coeffs[i] = acc[i].Uint64()
	}
	return out
}

func TestMulNTTAgainstNaive(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(2))
	for trial := 0; trial < 10; trial++ {
		a, b := r.NewPoly(), r.NewPoly()
		s.Uniform(a)
		s.Uniform(b)
		got := r.NewPoly()
		r.MulNTT(a, b, got)
		want := naiveNegacyclicMul(r, a, b)
		if !got.Equal(want) {
			t.Fatalf("trial %d: MulNTT != naive", trial)
		}
	}
}

func TestMulNTTLazyMatchesMulNTT(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(3))
	a, b := r.NewPoly(), r.NewPoly()
	s.Uniform(a)
	s.Uniform(b)
	want := r.NewPoly()
	r.MulNTT(a, b, want)
	bNTT := b.Copy()
	r.NTT(bNTT)
	got := r.NewPoly()
	r.MulNTTLazy(a, bNTT, got)
	if !got.Equal(want) {
		t.Fatal("MulNTTLazy != MulNTT")
	}
}

func TestRingAxioms(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(4))
	randPoly := func() Poly {
		p := r.NewPoly()
		s.Uniform(p)
		return p
	}
	a, b, c := randPoly(), randPoly(), randPoly()

	t.Run("addition commutes", func(t *testing.T) {
		x, y := r.NewPoly(), r.NewPoly()
		r.Add(a, b, x)
		r.Add(b, a, y)
		if !x.Equal(y) {
			t.Fatal("a+b != b+a")
		}
	})
	t.Run("multiplication commutes", func(t *testing.T) {
		x, y := r.NewPoly(), r.NewPoly()
		r.MulNTT(a, b, x)
		r.MulNTT(b, a, y)
		if !x.Equal(y) {
			t.Fatal("a*b != b*a")
		}
	})
	t.Run("distributive", func(t *testing.T) {
		sum, left := r.NewPoly(), r.NewPoly()
		r.Add(b, c, sum)
		r.MulNTT(a, sum, left)
		ab, ac, right := r.NewPoly(), r.NewPoly(), r.NewPoly()
		r.MulNTT(a, b, ab)
		r.MulNTT(a, c, ac)
		r.Add(ab, ac, right)
		if !left.Equal(right) {
			t.Fatal("a(b+c) != ab+ac")
		}
	})
	t.Run("additive inverse", func(t *testing.T) {
		neg, sum := r.NewPoly(), r.NewPoly()
		r.Neg(a, neg)
		r.Add(a, neg, sum)
		if !sum.IsZero() {
			t.Fatal("a + (-a) != 0")
		}
	})
	t.Run("sub is add neg", func(t *testing.T) {
		x, y, neg := r.NewPoly(), r.NewPoly(), r.NewPoly()
		r.Sub(a, b, x)
		r.Neg(b, neg)
		r.Add(a, neg, y)
		if !x.Equal(y) {
			t.Fatal("a-b != a+(-b)")
		}
	})
	t.Run("scalar mul distributes", func(t *testing.T) {
		x, y, z, sum := r.NewPoly(), r.NewPoly(), r.NewPoly(), r.NewPoly()
		r.Add(a, b, sum)
		r.MulScalar(sum, 12345, x)
		r.MulScalar(a, 12345, y)
		r.MulScalar(b, 12345, z)
		r.Add(y, z, y)
		if !x.Equal(y) {
			t.Fatal("c(a+b) != ca+cb")
		}
	})
}

func TestMulExactScaleRoundIdentityScale(t *testing.T) {
	// With scaleNum = scaleDen = 1 the exact integer convolution reduced mod q
	// must agree with MulNTT.
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(5))
	a, b := r.NewPoly(), r.NewPoly()
	s.Uniform(a)
	s.Uniform(b)
	want := r.NewPoly()
	r.MulNTT(a, b, want)
	got := r.NewPoly()
	r.MulExactScaleRound(r.Centered(a), r.Centered(b), 1, 1, got)
	if !got.Equal(want) {
		t.Fatal("MulExactScaleRound(.,1,1) != MulNTT")
	}
}

func TestNegacyclicConvolveIntMatchesBig(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(6))
	a, b := r.NewPoly(), r.NewPoly()
	s.Uniform(a)
	s.Uniform(b)
	ca, cb := r.Centered(a), r.Centered(b)
	got := NegacyclicConvolveInt(ca, cb)
	n := r.N
	for k := 0; k < n; k++ {
		want := new(big.Int)
		for i := 0; i <= k; i++ {
			want.Add(want, new(big.Int).Mul(big.NewInt(ca[i]), big.NewInt(cb[k-i])))
		}
		for i := k + 1; i < n; i++ {
			want.Sub(want, new(big.Int).Mul(big.NewInt(ca[i]), big.NewInt(cb[n+k-i])))
		}
		gotBig := new(big.Int).SetUint64(got[k].Mag.Hi)
		gotBig.Lsh(gotBig, 64)
		gotBig.Add(gotBig, new(big.Int).SetUint64(got[k].Mag.Lo))
		if got[k].Neg {
			gotBig.Neg(gotBig)
		}
		if gotBig.Cmp(want) != 0 {
			t.Fatalf("coefficient %d: got %v want %v", k, gotBig, want)
		}
	}
}

func TestSamplerUniformInRange(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(7))
	p := r.NewPoly()
	s.Uniform(p)
	if err := r.ValidatePoly(p); err != nil {
		t.Fatal(err)
	}
	if p.IsZero() {
		t.Fatal("uniform sample of 64 coefficients should not be zero")
	}
}

func TestSamplerTernary(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(8))
	p := r.NewPoly()
	s.Ternary(p)
	counts := map[int64]int{}
	for _, c := range p.Coeffs {
		v := r.Mod.Centered(c)
		if v < -1 || v > 1 {
			t.Fatalf("ternary value %d", v)
		}
		counts[v]++
	}
	if len(counts) < 2 {
		t.Fatalf("suspiciously degenerate ternary sample: %v", counts)
	}
}

func TestSamplerGaussianBounded(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(9))
	sigma := float64(DefaultSigma)
	bound := int64(sigma*gaussianTailCut) + 1
	sum := 0.0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		p := r.NewPoly()
		s.Gaussian(p)
		for _, c := range p.Coeffs {
			v := r.Mod.Centered(c)
			if v > bound || v < -bound {
				t.Fatalf("gaussian sample %d beyond tail cut", v)
			}
			sum += float64(v) * float64(v)
		}
	}
	variance := sum / float64(trials*r.N)
	if variance < 5 || variance > 16 {
		t.Fatalf("empirical variance %.2f implausible for sigma=%.2f", variance, DefaultSigma)
	}
}

func TestSeededSourceDeterministic(t *testing.T) {
	a, b := NewSeededSource(42), NewSeededSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSeededSource(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestPolySerializationRoundTrip(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(10))
	p := r.NewPoly()
	s.Uniform(p)
	var buf []byte
	w := &sliceWriter{buf: &buf}
	if err := WritePoly(w, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoly(&sliceReader{buf: buf})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatal("serialization roundtrip mismatch")
	}
}

func TestReadPolyRejectsHostileLength(t *testing.T) {
	// length prefix of 2^31
	buf := []byte{0, 0, 0, 0x80}
	if _, err := ReadPoly(&sliceReader{buf: buf}); err == nil {
		t.Fatal("hostile length should be rejected")
	}
}

func TestValidatePolyRejectsOutOfRange(t *testing.T) {
	r := testRing(t)
	p := r.NewPoly()
	p.Coeffs[3] = r.Mod.Q
	if err := r.ValidatePoly(p); err == nil {
		t.Fatal("out-of-range coefficient should be rejected")
	}
	short := Poly{Coeffs: make([]uint64, r.N-1)}
	if err := r.ValidatePoly(short); err == nil {
		t.Fatal("wrong degree should be rejected")
	}
}

type sliceWriter struct{ buf *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

type sliceReader struct {
	buf []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, errEOF
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

var errEOF = &eofError{}

type eofError struct{}

func (*eofError) Error() string { return "EOF" }

func BenchmarkNTTForward(b *testing.B) {
	q, _ := GenerateNTTPrime(50, 1024)
	r, err := NewRing(1024, q)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSampler(r, NewSeededSource(1))
	p := r.NewPoly()
	s.Uniform(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NTT(p)
	}
}

func BenchmarkMulNTT1024(b *testing.B) {
	q, _ := GenerateNTTPrime(50, 1024)
	r, err := NewRing(1024, q)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSampler(r, NewSeededSource(1))
	x, y, out := r.NewPoly(), r.NewPoly(), r.NewPoly()
	s.Uniform(x)
	s.Uniform(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MulNTT(x, y, out)
	}
}

func BenchmarkMulExactScaleRound1024(b *testing.B) {
	q, _ := GenerateNTTPrime(50, 1024)
	r, err := NewRing(1024, q)
	if err != nil {
		b.Fatal(err)
	}
	s := NewSampler(r, NewSeededSource(1))
	x, y, out := r.NewPoly(), r.NewPoly(), r.NewPoly()
	s.Uniform(x)
	s.Uniform(y)
	cx, cy := r.Centered(x), r.Centered(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MulExactScaleRound(cx, cy, 64, q, out)
	}
}
