package ring

import (
	mrand "math/rand/v2"
	"testing"
)

// oracleScaleRound reproduces the evaluator's u128 reference semantics:
// round(t·(a⊛b [+ c⊛d])/q) mod q coefficient-wise via exact schoolbook
// convolution and sign-magnitude rounding.
func oracleScaleRound(a, b []int64, t, q uint64, out Poly) {
	conv := NegacyclicConvolveInt(a, b)
	for k := range conv {
		out.Coeffs[k] = conv[k].ScaleRoundMod(t, q, q)
	}
}

func oracleScaleRoundSum(a, b, c, d []int64, t, q uint64, out Poly) {
	x := NegacyclicConvolveInt(a, b)
	y := NegacyclicConvolveInt(c, d)
	for k := range x {
		out.Coeffs[k] = x[k].Add(y[k]).ScaleRoundMod(t, q, q)
	}
}

func randResidues(rng *mrand.Rand, r *Ring) Poly {
	p := r.NewPoly()
	for i := range p.Coeffs {
		p.Coeffs[i] = rng.Uint64() % r.Mod.Q
	}
	return p
}

// TestRNSMultiplierMatchesOracle pins bit-exact equivalence of the RNS
// tensor path against the u128 schoolbook reference on uniform random
// ciphertext components — the worst-case operand distribution.
func TestRNSMultiplierMatchesOracle(t *testing.T) {
	for _, n := range []int{64, 256} {
		q, err := GenerateNTTPrime(58, n)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := NewRing(n, q)
		if err != nil {
			t.Fatal(err)
		}
		// t at the largest magnitude params admit (t < q/4) plus a small one.
		for _, tmod := range []uint64{257, q/4 - 1} {
			rm, err := NewRNSMultiplier(rq, tmod)
			if err != nil {
				t.Fatalf("n=%d t=%d: %v", n, tmod, err)
			}
			rng := mrand.New(mrand.NewPCG(uint64(n), tmod))
			for trial := 0; trial < 3; trial++ {
				c0, c1 := randResidues(rng, rq), randResidues(rng, rq)
				d0, d1 := randResidues(rng, rq), randResidues(rng, rq)
				out0, out1, out2 := rq.NewPoly(), rq.NewPoly(), rq.NewPoly()
				rm.MulScaleRound(c0, c1, d0, d1, out0, out1, out2)

				cc0, cc1 := rq.Centered(c0), rq.Centered(c1)
				dc0, dc1 := rq.Centered(d0), rq.Centered(d1)
				want0, want1, want2 := rq.NewPoly(), rq.NewPoly(), rq.NewPoly()
				oracleScaleRound(cc0, dc0, tmod, q, want0)
				oracleScaleRoundSum(cc0, dc1, cc1, dc0, tmod, q, want1)
				oracleScaleRound(cc1, dc1, tmod, q, want2)
				for i, pair := range []struct{ got, want Poly }{{out0, want0}, {out1, want1}, {out2, want2}} {
					if !pair.got.Equal(pair.want) {
						t.Fatalf("n=%d t=%d trial=%d: output %d diverges from oracle", n, tmod, trial, i)
					}
				}
			}
		}
	}
}

// TestRNSSquareMatchesMul pins SquareScaleRound against MulScaleRound of a
// ciphertext with itself (which the oracle equivalence test already pins).
func TestRNSSquareMatchesMul(t *testing.T) {
	n := 128
	q, err := GenerateNTTPrime(58, n)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := NewRing(n, q)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewRNSMultiplier(rq, 65537)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(21, 22))
	c0, c1 := randResidues(rng, rq), randResidues(rng, rq)
	s0, s1, s2 := rq.NewPoly(), rq.NewPoly(), rq.NewPoly()
	m0, m1, m2 := rq.NewPoly(), rq.NewPoly(), rq.NewPoly()
	rm.SquareScaleRound(c0, c1, s0, s1, s2)
	rm.MulScaleRound(c0, c1, c0, c1, m0, m1, m2)
	if !s0.Equal(m0) || !s1.Equal(m1) || !s2.Equal(m2) {
		t.Fatal("SquareScaleRound diverges from MulScaleRound(ct, ct)")
	}
}

// TestRNSMultiplierLargeDegree exercises the degree the u128 tensor path
// cannot serve: at n=8192 with a maximal 58-bit modulus the RNS path must
// still match the (slow, but exact) schoolbook reference. One trial on one
// output keeps the O(n²) oracle affordable.
func TestRNSMultiplierLargeDegree(t *testing.T) {
	if testing.Short() {
		t.Skip("O(n²) schoolbook oracle at n=8192 is slow; skipped in -short")
	}
	n := 8192
	q, err := GenerateNTTPrime(58, n)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := NewRing(n, q)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewRNSMultiplier(rq, 1<<25)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(31, 32))
	c0, c1 := randResidues(rng, rq), randResidues(rng, rq)
	d0, d1 := randResidues(rng, rq), randResidues(rng, rq)
	out0, out1, out2 := rq.NewPoly(), rq.NewPoly(), rq.NewPoly()
	rm.MulScaleRound(c0, c1, d0, d1, out0, out1, out2)
	want := rq.NewPoly()
	// The cross term has the largest magnitude — if it matches, the bound
	// analysis holds with margin for the outer components.
	oracleScaleRoundSum(rq.Centered(c0), rq.Centered(d1), rq.Centered(c1), rq.Centered(d0), 1<<25, q, want)
	if !out1.Equal(want) {
		t.Fatal("n=8192 RNS cross term diverges from schoolbook oracle")
	}
}

func TestRNSMultiplierRejectsBadPlainModulus(t *testing.T) {
	rq, err := NewRing(64, MustModulus(7681).Q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRNSMultiplier(rq, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := NewRNSMultiplier(rq, 7681); err == nil {
		t.Error("t=q accepted")
	}
}

func TestRNSMultiplierAvoidsCiphertextModulus(t *testing.T) {
	n := 2048
	q, err := GenerateNTTPrime(57, n) // same bit length as the auxiliary basis
	if err != nil {
		t.Fatal(err)
	}
	rq, err := NewRing(n, q)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewRNSMultiplier(rq, 257)
	if err != nil {
		t.Fatal(err)
	}
	chain := rm.Chain()
	if chain[len(chain)-1] != q {
		t.Fatalf("last limb %d, want ciphertext modulus %d", chain[len(chain)-1], q)
	}
	for _, p := range chain[:len(chain)-1] {
		if p == q {
			t.Fatal("auxiliary basis collides with ciphertext modulus")
		}
	}
}

func TestNewTensorMultiplierRejectsLargeDegree(t *testing.T) {
	if _, err := NewTensorMultiplier(8192); err == nil {
		t.Fatal("n=8192 accepted by the u128 tensor path (exceeds the 128-bit bound)")
	}
	if _, err := NewTensorMultiplier(4096); err != nil {
		t.Fatalf("n=4096 rejected: %v", err)
	}
}

// TestRNSCountersAdvance checks the /metrics counters move when the RNS
// path runs.
func TestRNSCountersAdvance(t *testing.T) {
	limbs0, crt0 := RNSCounts()
	n := 64
	q, err := GenerateNTTPrime(58, n)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := NewRing(n, q)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewRNSMultiplier(rq, 257)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(41, 42))
	c0, c1 := randResidues(rng, rq), randResidues(rng, rq)
	out0, out1, out2 := rq.NewPoly(), rq.NewPoly(), rq.NewPoly()
	rm.MulScaleRound(c0, c1, c0, c1, out0, out1, out2)
	limbs1, crt1 := RNSCounts()
	if limbs1 <= limbs0 {
		t.Errorf("limb_muls did not advance (%d -> %d)", limbs0, limbs1)
	}
	if crt1 <= crt0 {
		t.Errorf("crt_extends did not advance (%d -> %d)", crt0, crt1)
	}
}
