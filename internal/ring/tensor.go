package ring

import (
	"fmt"

	"hesgx/internal/u128"
)

// TensorMultiplier computes exact (non-modular) negacyclic convolutions of
// centered operands in O(n log n): the multiplication is carried out in
// three independent NTT-friendly prime fields whose product exceeds the
// 2^127 coefficient bound, and each coefficient is reconstructed exactly
// with Garner's CRT algorithm into a signed 128-bit integer.
//
// It replaces the O(n^2) schoolbook path (NegacyclicConvolveInt) on the FV
// ciphertext-multiplication hot path; both are kept, as an ablation and as
// a cross-check oracle for tests.
type TensorMultiplier struct {
	n    int
	mods [3]Modulus
	ntts [3]*NTT
	// Garner precomputations.
	p1InvModP2  uint64 // p1^-1 mod p2
	p12InvModP3 uint64 // (p1*p2)^-1 mod p3
	p1TimesP2   u128.Uint128
	// offset C = 2^126 lifts centered values into [0, 2^127) before
	// reconstruction; offsetMod[i] = C mod p_i.
	offsetMod [3]uint64
}

// tensorOffsetBit is log2 of the lift offset C.
const tensorOffsetBit = 126

// NewTensorMultiplier builds the three prime fields for degree n. Degrees
// above 4096 are rejected: the exact coefficient bound n·(q/2)² reaches
// 2^127 at n = 8192 with a maximal 58-bit modulus, overflowing the signed
// 128-bit reconstruction — those degrees are served only by the RNS path
// (RNSMultiplier), whose basis has no such ceiling.
func NewTensorMultiplier(n int) (*TensorMultiplier, error) {
	if n > 4096 {
		return nil, fmt.Errorf("ring: tensor multiplier supports n <= 4096 (n=%d exceeds the 128-bit coefficient bound; use the RNS path)", n)
	}
	primes, err := GenerateNTTPrimes(MaxModulusBits, n, 3)
	if err != nil {
		return nil, fmt.Errorf("ring: tensor primes: %w", err)
	}
	tm := &TensorMultiplier{n: n}
	for i, p := range primes {
		m, err := NewModulus(p)
		if err != nil {
			return nil, err
		}
		ntt, err := NewNTT(m, n)
		if err != nil {
			return nil, err
		}
		tm.mods[i] = m
		tm.ntts[i] = ntt
	}
	p1, p2, p3 := tm.mods[0], tm.mods[1], tm.mods[2]
	if tm.p1InvModP2, err = p2.Inv(p1.Q % p2.Q); err != nil {
		return nil, err
	}
	p12ModP3 := p3.Mul(p1.Q%p3.Q, p2.Q%p3.Q)
	if tm.p12InvModP3, err = p3.Inv(p12ModP3); err != nil {
		return nil, err
	}
	tm.p1TimesP2 = u128.Mul64(p1.Q, p2.Q)
	// C = 2^126 mod p_i, computed by repeated squaring of 2.
	for i, m := range tm.mods {
		tm.offsetMod[i] = m.Pow(2, tensorOffsetBit)
	}
	return tm, nil
}

// N returns the supported ring degree.
func (tm *TensorMultiplier) N() int { return tm.n }

// residues maps centered int64 coefficients plus the lift offset into the
// i-th prime field.
func (tm *TensorMultiplier) residues(a []int64, i int) []uint64 {
	m := tm.mods[i]
	out := make([]uint64, len(a))
	for j, v := range a {
		var r uint64
		if v < 0 {
			r = m.Q - (uint64(-v) % m.Q)
			if r == m.Q {
				r = 0
			}
		} else {
			r = uint64(v) % m.Q
		}
		out[j] = r
	}
	return out
}

// MulExact computes the exact negacyclic convolution of centered operands
// a and b (|a_i|, |b_i| <= 2^57, n <= 4096 so the true coefficients are
// bounded by 2^126 in magnitude).
func (tm *TensorMultiplier) MulExact(a, b []int64) ([]u128.Int128, error) {
	if len(a) != tm.n || len(b) != tm.n {
		return nil, fmt.Errorf("ring: tensor operands length %d/%d, want %d", len(a), len(b), tm.n)
	}
	var prods [3][]uint64
	for i := 0; i < 3; i++ {
		ra := tm.residues(a, i)
		rb := tm.residues(b, i)
		tm.ntts[i].Forward(ra)
		tm.ntts[i].Forward(rb)
		m := tm.mods[i]
		for j := range ra {
			ra[j] = m.Mul(ra[j], rb[j])
		}
		tm.ntts[i].Inverse(ra)
		prods[i] = ra
	}
	// The true product coefficient x satisfies |x| < 2^126. Shift by
	// C = 2^126: y = x + C in [0, 2^127) is reconstructed exactly because
	// y < p1*p2*p3. The shift enters multiplicatively: conv(a, b) + C
	// corresponds to adding C mod p_i to each residue of the convolution.
	out := make([]u128.Int128, tm.n)
	offset := u128.Uint128{Hi: 1 << (tensorOffsetBit - 64)}
	for j := 0; j < tm.n; j++ {
		r1 := tm.mods[0].Add(prods[0][j], tm.offsetMod[0])
		r2 := tm.mods[1].Add(prods[1][j], tm.offsetMod[1])
		r3 := tm.mods[2].Add(prods[2][j], tm.offsetMod[2])
		y := tm.garner(r1, r2, r3)
		// x = y - C, in sign-magnitude form.
		if y.Cmp(offset) >= 0 {
			out[j] = u128.Int128{Mag: y.Sub(offset)}
		} else {
			out[j] = u128.Int128{Neg: true, Mag: offset.Sub(y)}
		}
	}
	return out, nil
}

// garner reconstructs y in [0, p1*p2*p3) from its residues, assuming
// y < 2^127 so the result fits in a Uint128.
func (tm *TensorMultiplier) garner(r1, r2, r3 uint64) u128.Uint128 {
	p1, p2, p3 := tm.mods[0], tm.mods[1], tm.mods[2]
	// t1 = (r2 - r1) * p1^-1 mod p2
	t1 := p2.Mul(p2.Sub(r2%p2.Q, r1%p2.Q), tm.p1InvModP2)
	// y12 = r1 + p1*t1  (< p1*p2 <= 2^116)
	y12 := u128.FromUint64(r1).Add(u128.Mul64(p1.Q, t1))
	// t2 = (r3 - y12) * (p1*p2)^-1 mod p3
	y12ModP3 := y12.Mod64(p3.Q)
	t2 := p3.Mul(p3.Sub(r3%p3.Q, y12ModP3), tm.p12InvModP3)
	// y = y12 + (p1*p2)*t2. Because y < 2^127, t2 is small enough that the
	// product fits; multiply the 128-bit p1*p2 by the 64-bit t2 keeping
	// the low 128 bits (exact under the bound).
	prodLo := u128.Mul64(tm.p1TimesP2.Lo, t2)
	prodHiLo := tm.p1TimesP2.Hi * t2 // low 64 bits; upper bits vanish under the bound
	return y12.Add(u128.Uint128{Hi: prodLo.Hi + prodHiLo, Lo: prodLo.Lo})
}
