package ring

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WritePoly serializes p as a little-endian coefficient vector preceded by a
// uint32 length.
func WritePoly(w io.Writer, p Poly) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Coeffs))); err != nil {
		return fmt.Errorf("ring: write poly length: %w", err)
	}
	buf := make([]byte, 8*len(p.Coeffs))
	for i, c := range p.Coeffs {
		binary.LittleEndian.PutUint64(buf[8*i:], c)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("ring: write poly coefficients: %w", err)
	}
	return nil
}

// maxPolyDegree bounds deserialized polynomial sizes to prevent hostile
// inputs from forcing huge allocations.
const maxPolyDegree = 1 << 16

// ReadPoly deserializes a polynomial written by WritePoly.
func ReadPoly(r io.Reader) (Poly, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return Poly{}, fmt.Errorf("ring: read poly length: %w", err)
	}
	if n == 0 || n > maxPolyDegree {
		return Poly{}, fmt.Errorf("ring: invalid poly length %d", n)
	}
	buf := make([]byte, 8*int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return Poly{}, fmt.Errorf("ring: read poly coefficients: %w", err)
	}
	p := Poly{Coeffs: make([]uint64, n)}
	for i := range p.Coeffs {
		p.Coeffs[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return p, nil
}

// ValidatePoly checks that p has the ring's degree and fully reduced
// coefficients, guarding deserialized data before use.
func (r *Ring) ValidatePoly(p Poly) error {
	if len(p.Coeffs) != r.N {
		return fmt.Errorf("ring: poly degree %d, want %d", len(p.Coeffs), r.N)
	}
	for i, c := range p.Coeffs {
		if c >= r.Mod.Q {
			return fmt.Errorf("ring: coefficient %d = %d out of range [0, %d)", i, c, r.Mod.Q)
		}
	}
	return nil
}
