package ring

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sync"
)

// bufPool recycles the intermediate byte buffers of poly (de)serialization.
// A cipher image moves hundreds of polynomials per request; without pooling
// every receive allocates 8·n bytes per poly just to shuttle bytes between
// the reader and the coefficient slice.
var bufPool sync.Pool // *[]byte

// getBuf returns a byte slice of length n (unspecified contents) from the
// pool, growing the pooled backing array when needed.
func getBuf(n int) []byte {
	if v := bufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putBuf returns a buffer obtained from getBuf to the pool.
func putBuf(b []byte) {
	b = b[:cap(b)]
	bufPool.Put(&b)
}

// WritePoly serializes p as a little-endian coefficient vector preceded by a
// uint32 length — the v1 (legacy) fixed 8-bytes-per-coefficient layout.
func WritePoly(w io.Writer, p Poly) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(p.Coeffs))); err != nil {
		return fmt.Errorf("ring: write poly length: %w", err)
	}
	buf := getBuf(8 * len(p.Coeffs))
	defer putBuf(buf)
	for i, c := range p.Coeffs {
		binary.LittleEndian.PutUint64(buf[8*i:], c)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("ring: write poly coefficients: %w", err)
	}
	return nil
}

// maxPolyDegree bounds deserialized polynomial sizes to prevent hostile
// inputs from forcing huge allocations.
const maxPolyDegree = 1 << 16

// ReadPoly deserializes a polynomial written by WritePoly.
func ReadPoly(r io.Reader) (Poly, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return Poly{}, fmt.Errorf("ring: read poly length: %w", err)
	}
	if n == 0 || n > maxPolyDegree {
		return Poly{}, fmt.Errorf("ring: invalid poly length %d", n)
	}
	buf := getBuf(8 * int(n))
	defer putBuf(buf)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Poly{}, fmt.Errorf("ring: read poly coefficients: %w", err)
	}
	p := Poly{Coeffs: make([]uint64, n)}
	for i := range p.Coeffs {
		p.Coeffs[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return p, nil
}

// CoeffBits returns the packed coefficient width for modulus q: the minimum
// number of bits that can hold every residue in [0, q).
func CoeffBits(q uint64) int {
	return bits.Len64(q - 1)
}

// packedBytes is the body size of a width-bit packed vector of n coefficients.
func packedBytes(n, width int) int {
	return (n*width + 7) / 8
}

// PackedPolySize returns the serialized size of WritePolyPacked for an
// n-coefficient polynomial at the given width, including the length prefix.
func PackedPolySize(n, width int) int {
	return 4 + packedBytes(n, width)
}

// packPad is the slack appended to packed buffers so the codec can always
// load/store aligned 64-bit windows without bounds gymnastics.
const packPad = 8

// WritePolyPacked serializes p with width bits per coefficient (little-endian
// bit order within the stream), preceded by a uint32 coefficient count. Every
// coefficient must fit in width bits; q < 2^58 rings need ceil(log2 q) ≤ 58
// bits instead of the 64 the legacy layout spends. The whole frame — prefix
// included — is packed and range-checked locally before any byte reaches w,
// so an out-of-range coefficient can never leave a half-written frame on a
// length-prefixed stream.
func WritePolyPacked(w io.Writer, p Poly, width int) error {
	if width < 1 || width > 63 {
		return fmt.Errorf("ring: packed width %d out of range [1, 63]", width)
	}
	n := len(p.Coeffs)
	size := packedBytes(n, width)
	buf := getBuf(4 + size + packPad)
	defer putBuf(buf)
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf, uint32(n))
	body := buf[4:]
	limit := uint64(1) << uint(width)
	for i, c := range p.Coeffs {
		if c >= limit {
			return fmt.Errorf("ring: coefficient %d = %d does not fit in %d bits", i, c, width)
		}
		bitOff := i * width
		byteOff := bitOff >> 3
		shift := uint(bitOff & 7)
		win := binary.LittleEndian.Uint64(body[byteOff:])
		binary.LittleEndian.PutUint64(body[byteOff:], win|c<<shift)
		if int(shift)+width > 64 {
			body[byteOff+8] |= byte(c >> (64 - shift))
		}
	}
	if _, err := w.Write(buf[:4+size]); err != nil {
		return fmt.Errorf("ring: write packed poly: %w", err)
	}
	return nil
}

// ReadPolyPacked deserializes a polynomial written by WritePolyPacked at the
// same width. Hostile lengths error before any large allocation.
func ReadPolyPacked(r io.Reader, width int) (Poly, error) {
	if width < 1 || width > 63 {
		return Poly{}, fmt.Errorf("ring: packed width %d out of range [1, 63]", width)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return Poly{}, fmt.Errorf("ring: read packed poly length: %w", err)
	}
	if n == 0 || n > maxPolyDegree {
		return Poly{}, fmt.Errorf("ring: invalid packed poly length %d", n)
	}
	size := packedBytes(int(n), width)
	buf := getBuf(size + packPad)
	defer putBuf(buf)
	if _, err := io.ReadFull(r, buf[:size]); err != nil {
		return Poly{}, fmt.Errorf("ring: read packed poly coefficients: %w", err)
	}
	for i := size; i < size+packPad; i++ {
		buf[i] = 0
	}
	mask := uint64(1)<<uint(width) - 1
	p := Poly{Coeffs: make([]uint64, n)}
	for i := range p.Coeffs {
		bitOff := i * width
		byteOff := bitOff >> 3
		shift := uint(bitOff & 7)
		v := binary.LittleEndian.Uint64(buf[byteOff:]) >> shift
		if int(shift)+width > 64 {
			v |= uint64(buf[byteOff+8]) << (64 - shift)
		}
		p.Coeffs[i] = v & mask
	}
	return p, nil
}

// maxRNSLimbs bounds deserialized limb counts; real chains carry a handful
// of word-size primes, so anything larger is hostile or corrupt.
const maxRNSLimbs = 16

// WriteRNSPolyPacked serializes an RNS polynomial limb-wise: a one-byte limb
// count, then per limb the modulus (uint64 little-endian) followed by the
// coefficients packed at CoeffBits(q) — so a chain of 57-bit primes spends
// 57 bits per coefficient per limb instead of 64. The limb moduli travel in
// the frame so the decoder can derive each limb's packing width and validate
// residue ranges without out-of-band parameters.
func WriteRNSPolyPacked(w io.Writer, p RNSPoly, chain []uint64) error {
	if len(chain) != len(p.Limbs) {
		return fmt.Errorf("ring: rns poly has %d limbs but chain has %d moduli", len(p.Limbs), len(chain))
	}
	if len(chain) == 0 || len(chain) > maxRNSLimbs {
		return fmt.Errorf("ring: rns limb count %d out of range [1, %d]", len(chain), maxRNSLimbs)
	}
	var hdr [9]byte
	hdr[0] = byte(len(chain))
	if _, err := w.Write(hdr[:1]); err != nil {
		return fmt.Errorf("ring: write rns limb count: %w", err)
	}
	for i, q := range chain {
		binary.LittleEndian.PutUint64(hdr[1:], q)
		if _, err := w.Write(hdr[1:]); err != nil {
			return fmt.Errorf("ring: write rns limb %d modulus: %w", i, err)
		}
		if err := WritePolyPacked(w, p.Limbs[i], CoeffBits(q)); err != nil {
			return fmt.Errorf("ring: rns limb %d: %w", i, err)
		}
	}
	return nil
}

// ReadRNSPolyPacked deserializes a polynomial written by WriteRNSPolyPacked,
// returning the limbs and the chain of limb moduli carried in the frame.
// Every residue is range-checked against its limb modulus; hostile limb
// counts and degrees error before any large allocation.
func ReadRNSPolyPacked(r io.Reader) (RNSPoly, []uint64, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return RNSPoly{}, nil, fmt.Errorf("ring: read rns limb count: %w", err)
	}
	k := int(hdr[0])
	if k == 0 || k > maxRNSLimbs {
		return RNSPoly{}, nil, fmt.Errorf("ring: rns limb count %d out of range [1, %d]", k, maxRNSLimbs)
	}
	chain := make([]uint64, k)
	p := RNSPoly{Limbs: make([]Poly, k)}
	for i := 0; i < k; i++ {
		if _, err := io.ReadFull(r, hdr[1:]); err != nil {
			return RNSPoly{}, nil, fmt.Errorf("ring: read rns limb %d modulus: %w", i, err)
		}
		q := binary.LittleEndian.Uint64(hdr[1:])
		if q < 2 {
			return RNSPoly{}, nil, fmt.Errorf("ring: rns limb %d modulus %d too small", i, q)
		}
		limb, err := ReadPolyPacked(r, CoeffBits(q))
		if err != nil {
			return RNSPoly{}, nil, fmt.Errorf("ring: rns limb %d: %w", i, err)
		}
		if i > 0 && len(limb.Coeffs) != len(p.Limbs[0].Coeffs) {
			return RNSPoly{}, nil, fmt.Errorf("ring: rns limb %d degree %d != %d",
				i, len(limb.Coeffs), len(p.Limbs[0].Coeffs))
		}
		for j, c := range limb.Coeffs {
			if c >= q {
				return RNSPoly{}, nil, fmt.Errorf("ring: rns limb %d coefficient %d = %d out of range [0, %d)", i, j, c, q)
			}
		}
		chain[i] = q
		p.Limbs[i] = limb
	}
	return p, chain, nil
}

// ValidatePoly checks that p has the ring's degree and fully reduced
// coefficients, guarding deserialized data before use.
func (r *Ring) ValidatePoly(p Poly) error {
	if len(p.Coeffs) != r.N {
		return fmt.Errorf("ring: poly degree %d, want %d", len(p.Coeffs), r.N)
	}
	for i, c := range p.Coeffs {
		if c >= r.Mod.Q {
			return fmt.Errorf("ring: coefficient %d = %d out of range [0, %d)", i, c, r.Mod.Q)
		}
	}
	return nil
}
