package ring

import (
	"testing"
)

// Tests for the NTT-residency support kernels: fused multiply-accumulate
// (Barrett and Shoup variants), Shoup precomputation, allocation-free
// centered lifts, the scratch pools, and the transform counters.

func TestMulCoeffsAddMatchesScalarLoop(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(10))
	a, b, acc := r.NewPoly(), r.NewPoly(), r.NewPoly()
	s.Uniform(a)
	s.Uniform(b)
	s.Uniform(acc)
	want := r.NewPoly()
	for i := 0; i < r.N; i++ {
		want.Coeffs[i] = r.Mod.Add(acc.Coeffs[i], r.Mod.Mul(a.Coeffs[i], b.Coeffs[i]))
	}
	r.MulCoeffsAdd(a, b, acc)
	if !acc.Equal(want) {
		t.Fatal("MulCoeffsAdd != coefficient-wise oracle")
	}
}

func TestMulCoeffsShoupMatchesBarrett(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(11))
	a, b := r.NewPoly(), r.NewPoly()
	s.Uniform(a)
	s.Uniform(b)
	bShoup := r.ShoupPrecompute(b)

	want := r.NewPoly()
	r.MulCoeffs(a, b, want)
	got := r.NewPoly()
	r.MulCoeffsShoup(a, b, bShoup, got)
	if !got.Equal(want) {
		t.Fatal("MulCoeffsShoup != MulCoeffs")
	}
}

func TestMulCoeffsShoupAddMatchesBarrettAdd(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(12))
	a, b := r.NewPoly(), r.NewPoly()
	s.Uniform(a)
	s.Uniform(b)
	bShoup := r.ShoupPrecompute(b)

	want, got := r.NewPoly(), r.NewPoly()
	s.Uniform(want)
	want.CopyTo(got)
	r.MulCoeffsAdd(a, b, want)
	r.MulCoeffsShoupAdd(a, b, bShoup, got)
	if !got.Equal(want) {
		t.Fatal("MulCoeffsShoupAdd != MulCoeffsAdd")
	}
}

// TestFusedAccumulateLinearity pins the algebra the NTT-resident layers rely
// on: accumulating k pointwise products then inverse-transforming once equals
// the sum of the k individually inverse-transformed products.
func TestFusedAccumulateLinearity(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(13))
	const terms = 5
	acc := r.NewPoly() // stays in the NTT domain
	want := r.NewPoly()
	for k := 0; k < terms; k++ {
		a, w := r.NewPoly(), r.NewPoly()
		s.Uniform(a)
		s.Uniform(w)

		term := r.NewPoly()
		r.MulNTT(a, w, term) // coefficient-domain product
		r.Add(want, term, want)

		aNTT, wNTT := a.Copy(), w.Copy()
		r.NTT(aNTT)
		r.NTT(wNTT)
		r.MulCoeffsShoupAdd(aNTT, wNTT, r.ShoupPrecompute(wNTT), acc)
	}
	r.INTT(acc)
	if !acc.Equal(want) {
		t.Fatal("fused NTT-domain accumulation != sum of coefficient products")
	}
}

func TestCenteredIntoMatchesCentered(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(14))
	a := r.NewPoly()
	s.Uniform(a)
	want := r.Centered(a)
	got := make([]int64, r.N)
	r.CenteredInto(a, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: CenteredInto %d != Centered %d", i, got[i], want[i])
		}
	}
}

func TestPolyPoolRoundTrip(t *testing.T) {
	r := testRing(t)
	p := r.GetPoly()
	if len(p.Coeffs) != r.N {
		t.Fatalf("GetPoly returned length %d, want %d", len(p.Coeffs), r.N)
	}
	for i := range p.Coeffs {
		p.Coeffs[i] = uint64(i) + 1
	}
	r.PutPoly(p)
	// Pooled buffers come back dirty by design; callers must overwrite or
	// Zero() them. The pool must never hand out a wrong-size buffer.
	q := r.GetPoly()
	if len(q.Coeffs) != r.N {
		t.Fatalf("recycled poly has length %d, want %d", len(q.Coeffs), r.N)
	}
	r.PutPoly(q)

	// Wrong-size buffers are dropped rather than poisoning the pool.
	r.PutPoly(Poly{Coeffs: make([]uint64, r.N/2)})
	if got := r.GetPoly(); len(got.Coeffs) != r.N {
		t.Fatalf("pool handed out wrong-size buffer of length %d", len(got.Coeffs))
	}
}

func TestCenteredPoolRoundTrip(t *testing.T) {
	r := testRing(t)
	v := r.GetCentered()
	if len(v) != r.N {
		t.Fatalf("GetCentered returned length %d, want %d", len(v), r.N)
	}
	r.PutCentered(v)
	r.PutCentered(make([]int64, r.N*2))
	if got := r.GetCentered(); len(got) != r.N {
		t.Fatalf("centered pool handed out wrong-size buffer of length %d", len(got))
	}
}

func TestNTTCountsTrackTransforms(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, NewSeededSource(15))
	f0, i0 := r.NTTCounts()
	p := r.NewPoly()
	s.Uniform(p)
	r.NTT(p)
	r.NTT(p)
	r.INTT(p)
	f1, i1 := r.NTTCounts()
	if f1-f0 != 2 || i1-i0 != 1 {
		t.Fatalf("counters recorded %d fwd / %d inv, want 2 / 1", f1-f0, i1-i0)
	}
}

func TestZeroClearsPoly(t *testing.T) {
	r := testRing(t)
	p := r.NewPoly()
	for i := range p.Coeffs {
		p.Coeffs[i] = 7
	}
	p.Zero()
	if !p.IsZero() {
		t.Fatal("Zero left nonzero coefficients")
	}
}
