package ring

import (
	mrand "math/rand/v2"
	"testing"

	"hesgx/internal/u128"
)

func randCentered(rng *mrand.Rand, n int, bits int) []int64 {
	out := make([]int64, n)
	half := int64(1) << (bits - 1)
	for i := range out {
		out[i] = rng.Int64N(2*half) - half
	}
	return out
}

func int128Equal(a, b u128.Int128) bool {
	if a.IsZero() && b.IsZero() {
		return true
	}
	return a.Neg == b.Neg && a.Mag == b.Mag
}

func TestTensorMultiplierMatchesSchoolbook(t *testing.T) {
	for _, n := range []int{64, 256} {
		tm, err := NewTensorMultiplier(n)
		if err != nil {
			t.Fatal(err)
		}
		rng := mrand.New(mrand.NewPCG(uint64(n), 99))
		for trial := 0; trial < 5; trial++ {
			// 57-bit centered operands, the worst case FV produces.
			a := randCentered(rng, n, 57)
			b := randCentered(rng, n, 57)
			want := NegacyclicConvolveInt(a, b)
			got, err := tm.MulExact(a, b)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if !int128Equal(got[k], want[k]) {
					t.Fatalf("n=%d trial=%d coeff %d: NTT-CRT %+v != schoolbook %+v",
						n, trial, k, got[k], want[k])
				}
			}
		}
	}
}

func TestTensorMultiplierSmallValues(t *testing.T) {
	tm, err := NewTensorMultiplier(64)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int64, 64)
	b := make([]int64, 64)
	a[0], a[1] = 3, -5 // 3 - 5x
	b[0], b[2] = -7, 2 // -7 + 2x^2
	got, err := tm.MulExact(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// (3 - 5x)(-7 + 2x^2) = -21 + 35x + 6x^2 - 10x^3
	want := []int64{-21, 35, 6, -10}
	for i, w := range want {
		if !int128Equal(got[i], u128.FromInt64(w)) {
			t.Fatalf("coeff %d: got %+v want %d", i, got[i], w)
		}
	}
	for i := 4; i < 64; i++ {
		if !got[i].IsZero() {
			t.Fatalf("coeff %d nonzero", i)
		}
	}
}

func TestTensorMultiplierNegacyclicWrap(t *testing.T) {
	n := 64
	tm, err := NewTensorMultiplier(n)
	if err != nil {
		t.Fatal(err)
	}
	// x^(n-1) * x = x^n = -1.
	a := make([]int64, n)
	b := make([]int64, n)
	a[n-1] = 1
	b[1] = 1
	got, err := tm.MulExact(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !int128Equal(got[0], u128.FromInt64(-1)) {
		t.Fatalf("x^(n-1)*x constant coeff = %+v, want -1", got[0])
	}
}

func TestTensorMultiplierRejectsWrongLength(t *testing.T) {
	tm, err := NewTensorMultiplier(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.MulExact(make([]int64, 32), make([]int64, 64)); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func BenchmarkTensorSchoolbook1024(b *testing.B) {
	rng := mrand.New(mrand.NewPCG(1, 2))
	x := randCentered(rng, 1024, 45)
	y := randCentered(rng, 1024, 45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NegacyclicConvolveInt(x, y)
	}
}

func BenchmarkTensorNTTCRT1024(b *testing.B) {
	tm, err := NewTensorMultiplier(1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(1, 2))
	x := randCentered(rng, 1024, 45)
	y := randCentered(rng, 1024, 45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tm.MulExact(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
