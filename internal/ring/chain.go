package ring

import (
	"fmt"
	"math/big"
	"math/bits"
)

// This file implements modulus chains: ordered lists of distinct word-size
// NTT-friendly primes over which RNS (residue number system) polynomials
// are limb-decomposed. A chain is the parameter-level description of an
// RNSRing; chains are generated deterministically from (bitLen, n), so two
// endpoints that agree on those inputs derive the identical prime list
// without any wire exchange.

// GenerateChain returns count distinct NTT-friendly primes (q ≡ 1 mod 2n)
// of the given bit length, in decreasing order, skipping any modulus listed
// in avoid. The avoid list exists so an auxiliary multiplication basis never
// collides with the ciphertext modulus it extends.
func GenerateChain(bitLen, n, count int, avoid ...uint64) ([]uint64, error) {
	if count <= 0 {
		return nil, fmt.Errorf("ring: chain length %d must be positive", count)
	}
	if bitLen < 10 || bitLen > MaxModulusBits {
		return nil, fmt.Errorf("ring: unsupported chain prime bit length %d", bitLen)
	}
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: degree %d is not a power of two", n)
	}
	skip := make(map[uint64]bool, len(avoid))
	for _, a := range avoid {
		skip[a] = true
	}
	m := uint64(2 * n)
	chain := make([]uint64, 0, count)
	upper := (uint64(1) << uint(bitLen)) - 1
	q := upper - (upper-1)%m
	lower := uint64(1) << uint(bitLen-1)
	for q > lower && len(chain) < count {
		if !skip[q] && IsPrime(q) {
			chain = append(chain, q)
		}
		q -= m
	}
	if len(chain) < count {
		return nil, fmt.Errorf("ring: found only %d of %d requested %d-bit chain primes for degree %d",
			len(chain), count, bitLen, n)
	}
	return chain, nil
}

// ValidateChain checks the structural invariants an RNS limb decomposition
// relies on: every modulus is a distinct NTT-friendly prime (q ≡ 1 mod 2n)
// within the word-size bound. CRT correctness needs only pairwise
// coprimality, which distinct primes give for free.
func ValidateChain(n int, chain []uint64) error {
	if len(chain) == 0 {
		return fmt.Errorf("ring: empty modulus chain")
	}
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("ring: degree %d is not a power of two", n)
	}
	seen := make(map[uint64]bool, len(chain))
	for i, q := range chain {
		if bits.Len64(q) > MaxModulusBits {
			return fmt.Errorf("ring: chain modulus %d (limb %d) exceeds %d bits", q, i, MaxModulusBits)
		}
		if !IsPrime(q) {
			return fmt.Errorf("ring: chain modulus %d (limb %d) is not prime", q, i)
		}
		if (q-1)%uint64(2*n) != 0 {
			return fmt.Errorf("ring: chain modulus %d (limb %d) is not ≡ 1 mod %d", q, i, 2*n)
		}
		if seen[q] {
			return fmt.Errorf("ring: chain modulus %d (limb %d) repeats", q, i)
		}
		seen[q] = true
	}
	return nil
}

// ChainBits returns the total modulus budget of the chain in bits,
// Σ_i bits(q_i) — the RNS analogue of bits(Q) for a composite Q = Π q_i.
func ChainBits(chain []uint64) int {
	total := 0
	for _, q := range chain {
		total += bits.Len64(q)
	}
	return total
}

// ChainProduct returns Π q_i as a big integer — the composite modulus the
// chain represents, and the range within which CRT reconstruction is unique.
func ChainProduct(chain []uint64) *big.Int {
	prod := big.NewInt(1)
	for _, q := range chain {
		prod.Mul(prod, new(big.Int).SetUint64(q))
	}
	return prod
}
