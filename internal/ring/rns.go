package ring

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the residue-number-system (RNS) view of ring
// arithmetic: a polynomial over a composite modulus Q = Π q_i is stored as
// one word-coefficient limb per chain prime, every ring operation maps to
// independent per-limb word operations, and the only cross-limb work is
// CRT basis extension and the scaled rounding of DivRoundByLastModulus.
// Limb independence is also the parallelism story: kernels fan limbs out
// across worker goroutines (see parallelLimbs).

// Package-level RNS kernel counters, exported on /metrics by the engine
// (ring.limb_muls, ring.crt_extends) alongside the per-ring NTT counters.
// They are global rather than per-RNSRing so the serving stack can report
// totals without threading every multiplier through the metrics snapshot.
var (
	rnsLimbMuls   atomic.Uint64
	rnsCRTExtends atomic.Uint64
	parTasks      atomic.Uint64
	parBusy       atomic.Int64
	parPeak       atomic.Int64
)

// RNSCounts returns the cumulative number of per-limb pointwise
// multiplication kernel passes and CRT basis-extension passes executed by
// all RNS rings in the process.
func RNSCounts() (limbMuls, crtExtends uint64) {
	return rnsLimbMuls.Load(), rnsCRTExtends.Load()
}

// ParallelCounts reports the limb worker-pool occupancy: total limb tasks
// dispatched to goroutines, workers busy right now, and the peak number of
// concurrently busy workers observed.
func ParallelCounts() (tasks uint64, busy, peak int64) {
	return parTasks.Load(), parBusy.Load(), parPeak.Load()
}

// parallelLimbs runs f(0..k-1), fanning out across goroutines when more
// than one CPU is available. Limb kernels are data-independent, so this is
// the per-limb parallelism of the RNS rewrite; on GOMAXPROCS=1 it degrades
// to the sequential loop with zero goroutine overhead.
func parallelLimbs(k int, f func(i int)) {
	if k <= 1 || runtime.GOMAXPROCS(0) == 1 {
		for i := 0; i < k; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(k)
	for i := 0; i < k; i++ {
		go func(i int) {
			defer wg.Done()
			parTasks.Add(1)
			busy := parBusy.Add(1)
			for {
				peak := parPeak.Load()
				if busy <= peak || parPeak.CompareAndSwap(peak, busy) {
					break
				}
			}
			defer parBusy.Add(-1)
			f(i)
		}(i)
	}
	wg.Wait()
}

// RNSRing is the ring R_Q = Z_Q[x]/(x^n+1) for a composite modulus
// Q = Π q_i, represented limb-wise over the chain of word-size NTT-friendly
// primes q_i. Each limb is a full *Ring (own NTT tables, scratch pools,
// counters); cross-limb precomputations cover the rescaling by the last
// modulus. Immutable after construction and safe for concurrent use.
type RNSRing struct {
	N     int
	Limbs []*Ring
	// Q = Π q_i (big, read-only).
	Q *big.Int

	// DivRoundByLastModulus precomputations (q_last = Limbs[k-1].Mod.Q):
	// halfLast = floor(q_last/2); per remaining limb j: q_last^-1 mod q_j
	// (with Shoup companion) and halfLast mod q_j.
	halfLast      uint64
	lastInv       []uint64
	lastInvShoup  []uint64
	halfModLimb   []uint64
	lastNegMod    []uint64 // q_j - (q_last mod q_j), for centered extension
	crtBasis      []*big.Int
	crtBasisInv   []uint64 // (Q/q_i)^-1 mod q_i, for big CRT reconstruction
	halfQ         *big.Int
}

// NewRNSRing builds the limb rings for the chain and the cross-limb
// precomputations. The chain must satisfy ValidateChain for degree n.
func NewRNSRing(n int, chain []uint64) (*RNSRing, error) {
	if err := ValidateChain(n, chain); err != nil {
		return nil, err
	}
	limbs := make([]*Ring, len(chain))
	for i, q := range chain {
		r, err := NewRing(n, q)
		if err != nil {
			return nil, fmt.Errorf("ring: rns limb %d: %w", i, err)
		}
		limbs[i] = r
	}
	return newRNSRingFromLimbs(limbs)
}

// newRNSRingFromLimbs assembles an RNSRing over pre-built limb rings of a
// shared degree. It lets a multiplier reuse an existing ciphertext ring as
// its last limb so NTT accounting stays attributed to that ring.
func newRNSRingFromLimbs(limbs []*Ring) (*RNSRing, error) {
	if len(limbs) == 0 {
		return nil, fmt.Errorf("ring: rns ring needs at least one limb")
	}
	n := limbs[0].N
	chain := make([]uint64, len(limbs))
	for i, r := range limbs {
		if r.N != n {
			return nil, fmt.Errorf("ring: rns limb %d degree %d != %d", i, r.N, n)
		}
		chain[i] = r.Mod.Q
	}
	if err := ValidateChain(n, chain); err != nil {
		return nil, err
	}
	rr := &RNSRing{N: n, Limbs: limbs, Q: ChainProduct(chain)}
	rr.halfQ = new(big.Int).Rsh(rr.Q, 1)

	k := len(limbs)
	last := limbs[k-1].Mod
	rr.halfLast = last.Q / 2
	rr.lastInv = make([]uint64, k-1)
	rr.lastInvShoup = make([]uint64, k-1)
	rr.halfModLimb = make([]uint64, k-1)
	rr.lastNegMod = make([]uint64, k-1)
	for j := 0; j < k-1; j++ {
		m := limbs[j].Mod
		inv, err := m.Inv(last.Q % m.Q)
		if err != nil {
			return nil, fmt.Errorf("ring: rns limb %d: %w", j, err)
		}
		rr.lastInv[j] = inv
		rr.lastInvShoup[j] = m.Shoup(inv)
		rr.halfModLimb[j] = rr.halfLast % m.Q
		rr.lastNegMod[j] = m.Q - last.Q%m.Q
		if rr.lastNegMod[j] == m.Q {
			rr.lastNegMod[j] = 0
		}
	}

	// CRT basis for big-integer reconstruction: y ≡ Σ y_i·(Q/q_i)·inv_i.
	rr.crtBasis = make([]*big.Int, k)
	rr.crtBasisInv = make([]uint64, k)
	for i, r := range limbs {
		qi := new(big.Int).SetUint64(r.Mod.Q)
		basis := new(big.Int).Div(rr.Q, qi)
		rr.crtBasis[i] = basis
		res := new(big.Int).Mod(basis, qi).Uint64()
		inv, err := r.Mod.Inv(res)
		if err != nil {
			return nil, fmt.Errorf("ring: rns crt basis %d: %w", i, err)
		}
		rr.crtBasisInv[i] = inv
	}
	return rr, nil
}

// K returns the number of limbs in the chain.
func (rr *RNSRing) K() int { return len(rr.Limbs) }

// Chain returns the prime chain, one modulus per limb.
func (rr *RNSRing) Chain() []uint64 {
	chain := make([]uint64, len(rr.Limbs))
	for i, r := range rr.Limbs {
		chain[i] = r.Mod.Q
	}
	return chain
}

// RNSPoly is a polynomial over the composite modulus, one word-coefficient
// limb per chain prime. Limbs share a degree; whether values are in
// coefficient or NTT domain is tracked by the caller, limb-uniformly.
type RNSPoly struct {
	Limbs []Poly
}

// NewRNSPoly allocates a zero polynomial with one limb per chain prime.
func (rr *RNSRing) NewRNSPoly() RNSPoly {
	limbs := make([]Poly, len(rr.Limbs))
	for i, r := range rr.Limbs {
		limbs[i] = r.NewPoly()
	}
	return RNSPoly{Limbs: limbs}
}

// GetRNSPoly assembles a scratch polynomial from the limb rings' pools.
// Contents are unspecified; return it with PutRNSPoly.
func (rr *RNSRing) GetRNSPoly() RNSPoly {
	limbs := make([]Poly, len(rr.Limbs))
	for i, r := range rr.Limbs {
		limbs[i] = r.GetPoly()
	}
	return RNSPoly{Limbs: limbs}
}

// PutRNSPoly returns a scratch polynomial's limbs to their pools.
func (rr *RNSRing) PutRNSPoly(p RNSPoly) {
	for i, r := range rr.Limbs {
		if i < len(p.Limbs) {
			r.PutPoly(p.Limbs[i])
		}
	}
}

// Equal reports whether two RNS polynomials agree limb-wise.
func (p RNSPoly) Equal(q RNSPoly) bool {
	if len(p.Limbs) != len(q.Limbs) {
		return false
	}
	for i := range p.Limbs {
		if !p.Limbs[i].Equal(q.Limbs[i]) {
			return false
		}
	}
	return true
}

// Add sets out = a + b limb-wise.
func (rr *RNSRing) Add(a, b, out RNSPoly) {
	parallelLimbs(rr.K(), func(i int) { rr.Limbs[i].Add(a.Limbs[i], b.Limbs[i], out.Limbs[i]) })
}

// Sub sets out = a - b limb-wise.
func (rr *RNSRing) Sub(a, b, out RNSPoly) {
	parallelLimbs(rr.K(), func(i int) { rr.Limbs[i].Sub(a.Limbs[i], b.Limbs[i], out.Limbs[i]) })
}

// Neg sets out = -a limb-wise.
func (rr *RNSRing) Neg(a, out RNSPoly) {
	parallelLimbs(rr.K(), func(i int) { rr.Limbs[i].Neg(a.Limbs[i], out.Limbs[i]) })
}

// NTT transforms every limb into the evaluation domain in place.
func (rr *RNSRing) NTT(a RNSPoly) {
	parallelLimbs(rr.K(), func(i int) { rr.Limbs[i].NTT(a.Limbs[i]) })
}

// INTT transforms every limb back to the coefficient domain in place.
func (rr *RNSRing) INTT(a RNSPoly) {
	parallelLimbs(rr.K(), func(i int) { rr.Limbs[i].INTT(a.Limbs[i]) })
}

// MulCoeffs sets out = a ⊙ b limb-wise (pointwise NTT-domain product).
func (rr *RNSRing) MulCoeffs(a, b, out RNSPoly) {
	rnsLimbMuls.Add(uint64(rr.K()))
	parallelLimbs(rr.K(), func(i int) { rr.Limbs[i].MulCoeffs(a.Limbs[i], b.Limbs[i], out.Limbs[i]) })
}

// MulCoeffsAdd sets out += a ⊙ b limb-wise.
func (rr *RNSRing) MulCoeffsAdd(a, b, out RNSPoly) {
	rnsLimbMuls.Add(uint64(rr.K()))
	parallelLimbs(rr.K(), func(i int) { rr.Limbs[i].MulCoeffsAdd(a.Limbs[i], b.Limbs[i], out.Limbs[i]) })
}

// SetCentered embeds signed coefficients (|v| < q_i for every limb) into
// every limb's residue field — the RNS analogue of Modulus.FromCentered.
func (rr *RNSRing) SetCentered(vals []int64, out RNSPoly) {
	parallelLimbs(rr.K(), func(i int) {
		m := rr.Limbs[i].Mod
		coeffs := out.Limbs[i].Coeffs
		for j, v := range vals {
			if v < 0 {
				r := m.Q - uint64(-v)%m.Q
				if r == m.Q {
					r = 0
				}
				coeffs[j] = r
			} else {
				coeffs[j] = uint64(v) % m.Q
			}
		}
	})
}

// ExtendCenteredFromLast is the CRT basis extension of the multiplier's
// front half: p's last limb holds residues mod q_last, which are read as
// centered integers in [-(q_last-1)/2, (q_last-1)/2] and embedded into
// every other limb. Exact (not an approximate fast base conversion): a
// single word residue determines its centered integer uniquely, so the
// other limbs receive true residues of that integer.
func (rr *RNSRing) ExtendCenteredFromLast(p RNSPoly) {
	k := rr.K()
	if k == 1 {
		return
	}
	rnsCRTExtends.Add(uint64(k - 1))
	last := rr.Limbs[k-1].Mod
	half := last.Q / 2
	src := p.Limbs[k-1].Coeffs
	parallelLimbs(k-1, func(j int) {
		m := rr.Limbs[j].Mod
		neg := rr.lastNegMod[j]
		coeffs := p.Limbs[j].Coeffs
		for i, a := range src {
			// Reduce a mod q_j: a < q_last < 4·q_j for same-magnitude
			// word primes, so conditional subtraction beats division.
			r := a
			for r >= m.Q {
				r -= m.Q
			}
			if a > half {
				// Centered value a - q_last: add q_j - (q_last mod q_j).
				r += neg
				if r >= m.Q {
					r -= m.Q
				}
			}
			coeffs[i] = r
		}
	})
}

// DivRoundByLastModulus computes out = round(p / q_last) limb-wise over the
// remaining chain, reading p as a centered integer polynomial. The division
// is exact, not approximate: with z the coefficient's integer value,
// u = (z + floor(q_last/2)) mod q_last is computed on the last limb, and
// round(z/q_last) = (z + floor(q_last/2) - u)/q_last is an exact integer
// division, evaluated per remaining limb as
// (z_j + h_j - u_j) · q_last^-1 mod q_j. p must be in coefficient domain;
// out needs K()-1 limbs and may alias p's leading limbs.
func (rr *RNSRing) DivRoundByLastModulus(p, out RNSPoly) {
	k := rr.K()
	if k < 2 {
		panic("ring: DivRoundByLastModulus needs at least two limbs")
	}
	last := rr.Limbs[k-1].Mod
	halfLast := rr.halfLast
	src := p.Limbs[k-1].Coeffs
	parallelLimbs(k-1, func(j int) {
		m := rr.Limbs[j].Mod
		inv, invShoup := rr.lastInv[j], rr.lastInvShoup[j]
		hj := rr.halfModLimb[j]
		in := p.Limbs[j].Coeffs
		dst := out.Limbs[j].Coeffs
		for i := range dst {
			u := last.Add(src[i], halfLast)
			// Reduce u (< q_last) into limb j by conditional subtraction.
			for u >= m.Q {
				u -= m.Q
			}
			v := m.Sub(m.Add(in[i], hj), u)
			dst[i] = m.MulShoup(v, inv, invShoup)
		}
	})
}

// ReconstructBig writes the centered CRT reconstruction of coefficient i
// into out: the unique integer y with |y| <= Q/2 and y ≡ p_j mod q_j.
// Test/diagnostic path — per-coefficient big arithmetic, not for hot loops.
func (rr *RNSRing) ReconstructBig(p RNSPoly, i int, out *big.Int) {
	out.SetInt64(0)
	term := new(big.Int)
	for j, r := range rr.Limbs {
		d := r.Mod.Mul(p.Limbs[j].Coeffs[i], rr.crtBasisInv[j])
		term.SetUint64(d)
		term.Mul(term, rr.crtBasis[j])
		out.Add(out, term)
	}
	out.Mod(out, rr.Q)
	if out.Cmp(rr.halfQ) > 0 {
		out.Sub(out, rr.Q)
	}
}
