package ring

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	mrand "math/rand/v2"
)

// DefaultSigma is the standard deviation of the RLWE error distribution,
// matching the SEAL 2.1 default of 3.19.
const DefaultSigma = 3.19

// gaussianTailCut truncates the discrete Gaussian at ±ceil(6*sigma), beyond
// which the probability mass is cryptographically negligible.
const gaussianTailCut = 6

// GaussianBound returns the hard per-coefficient bound of the truncated
// error distribution, ceil(sigma * tailcut). Every error polynomial the
// Sampler draws satisfies ‖e‖∞ <= GaussianBound() with certainty (the tail
// is cut, not just improbable), which is what makes the static noise
// accountant's per-op bounds sound rather than probabilistic.
func GaussianBound() float64 {
	return math.Ceil(DefaultSigma * gaussianTailCut)
}

// Source yields uniform random 64-bit words. Implementations must be safe
// for the single-goroutine use of a Sampler; Samplers themselves are not
// concurrency-safe.
type Source interface {
	Uint64() uint64
}

// cryptoSource draws from crypto/rand with buffering. The buffer is sized so
// that encrypting a full polynomial's worth of error terms costs a handful of
// getrandom calls rather than hundreds.
type cryptoSource struct {
	buf [8192]byte
	off int
}

func (s *cryptoSource) Uint64() uint64 {
	if s.off == 0 || s.off+8 > len(s.buf) {
		if _, err := io.ReadFull(rand.Reader, s.buf[:]); err != nil {
			// crypto/rand failure is unrecoverable for key material.
			panic(fmt.Sprintf("ring: crypto/rand unavailable: %v", err))
		}
		s.off = 0
	}
	v := binary.LittleEndian.Uint64(s.buf[s.off:])
	s.off += 8
	return v
}

// NewCryptoSource returns a cryptographically secure Source.
func NewCryptoSource() Source { return &cryptoSource{} }

// NewSeededSource returns a deterministic Source (ChaCha8 keyed by seed) for
// reproducible tests and benchmarks. It must not be used for real keys.
func NewSeededSource(seed uint64) Source {
	var key [32]byte
	binary.LittleEndian.PutUint64(key[:8], seed)
	binary.LittleEndian.PutUint64(key[8:16], seed^0x9e3779b97f4a7c15)
	return mrand.NewChaCha8(key)
}

// NewSource32 returns the deterministic ChaCha8 stream keyed by the full
// 32-byte seed. It is the expansion primitive of seed-compressible
// ciphertexts: both endpoints derive the identical uniform polynomial from
// the same seed, so only the seed crosses the wire.
func NewSource32(seed [32]byte) Source {
	return mrand.NewChaCha8(seed)
}

// UniformFromSeed deterministically fills p with uniform coefficients in
// [0, q) expanded from a 32-byte ChaCha8 seed. The rejection-sampling walk is
// fixed by (seed, q, len(p)), making the expansion a stable wire contract:
// a seeded ciphertext's `a` polynomial is reproduced exactly on receipt.
func (r *Ring) UniformFromSeed(seed [32]byte, p Poly) {
	src := NewSource32(seed)
	q := r.Mod.Q
	bound := ^uint64(0) - (^uint64(0) % q)
	for i := range p.Coeffs {
		for {
			v := src.Uint64()
			if v < bound {
				p.Coeffs[i] = v % q
				break
			}
		}
	}
}

// Sampler draws the random polynomials the FV scheme needs: uniform in R_q,
// uniform ternary secrets, and truncated discrete Gaussian errors.
type Sampler struct {
	ring *Ring
	src  Source
	// cdt is the cumulative distribution table of the half Gaussian,
	// scaled to 2^63; index i holds P(|X| <= i).
	cdt []uint64
}

// NewSampler builds a sampler over r drawing entropy from src.
func NewSampler(r *Ring, src Source) *Sampler {
	tail := int(math.Ceil(DefaultSigma * gaussianTailCut))
	probs := make([]float64, tail+1)
	total := 0.0
	for i := 0; i <= tail; i++ {
		p := math.Exp(-float64(i*i) / (2 * DefaultSigma * DefaultSigma))
		if i > 0 {
			p *= 2 // both signs
		}
		probs[i] = p
		total += p
	}
	cdt := make([]uint64, tail+1)
	cum := 0.0
	for i := 0; i <= tail; i++ {
		cum += probs[i] / total
		if cum > 1 {
			cum = 1
		}
		cdt[i] = uint64(cum * float64(1<<63))
	}
	cdt[tail] = 1 << 63
	return &Sampler{ring: r, src: src, cdt: cdt}
}

// Uniform fills p with independent uniform coefficients in [0, q) using
// rejection sampling to avoid modulo bias.
func (s *Sampler) Uniform(p Poly) {
	q := s.ring.Mod.Q
	// Rejection bound: largest multiple of q below 2^64.
	bound := ^uint64(0) - (^uint64(0) % q)
	for i := range p.Coeffs {
		for {
			v := s.src.Uint64()
			if v < bound {
				p.Coeffs[i] = v % q
				break
			}
		}
	}
}

// Ternary fills p with coefficients drawn uniformly from {-1, 0, 1}
// represented mod q. FV secret keys use this distribution.
func (s *Sampler) Ternary(p Poly) {
	mod := s.ring.Mod
	for i := range p.Coeffs {
		// Draw 2 random bits repeatedly; map 0,1,2 -> -1,0,1, reject 3.
		for {
			v := s.src.Uint64() & 3
			if v == 3 {
				continue
			}
			switch v {
			case 0:
				p.Coeffs[i] = mod.Q - 1 // -1
			case 1:
				p.Coeffs[i] = 0
			case 2:
				p.Coeffs[i] = 1
			}
			break
		}
	}
}

// Gaussian fills p with centered discrete Gaussian coefficients of standard
// deviation DefaultSigma, truncated at ±6σ, via inversion sampling against
// the precomputed CDF table.
func (s *Sampler) Gaussian(p Poly) {
	mod := s.ring.Mod
	for i := range p.Coeffs {
		mag := s.sampleHalfGaussian()
		if mag == 0 {
			p.Coeffs[i] = 0
			continue
		}
		if s.src.Uint64()&1 == 0 {
			p.Coeffs[i] = uint64(mag)
		} else {
			p.Coeffs[i] = mod.Q - uint64(mag)
		}
	}
}

func (s *Sampler) sampleHalfGaussian() int {
	u := s.src.Uint64() >> 1 // 63-bit uniform
	for i, c := range s.cdt {
		if u < c {
			return i
		}
	}
	return len(s.cdt) - 1
}
