// Package ring implements arithmetic over the quotient ring
// R_q = Z_q[x]/(x^n + 1) used by the FV homomorphic encryption scheme:
// word-size modular arithmetic with Barrett and Shoup reductions, negacyclic
// number-theoretic transforms, exact integer (non-modular) negacyclic
// convolution for the FV tensor step, and the random samplers the scheme
// requires (uniform, ternary, truncated discrete Gaussian).
package ring

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits bounds supported coefficient moduli. Keeping q below 2^58
// guarantees that centered FV tensor coefficients (bounded by n*(q/2)^2 for
// n <= 4096) fit in a signed 128-bit accumulator.
const MaxModulusBits = 58

// Modulus wraps an odd prime q < 2^58 with precomputed Barrett constants for
// fast reduction of 128-bit products.
type Modulus struct {
	Q uint64
	// brHi/brLo hold floor(2^128 / q), the Barrett constant.
	brHi uint64
	brLo uint64
}

// NewModulus validates q and precomputes reduction constants.
func NewModulus(q uint64) (Modulus, error) {
	if q < 2 {
		return Modulus{}, fmt.Errorf("ring: modulus %d too small", q)
	}
	if bits.Len64(q) > MaxModulusBits {
		return Modulus{}, fmt.Errorf("ring: modulus %d exceeds %d bits", q, MaxModulusBits)
	}
	m := Modulus{Q: q}
	// floor(2^128 / q) by long division of the limbs {1, 0, 0} base 2^64.
	h := uint64(1) % q           // remainder after the (zero) top quotient limb
	qh, r := bits.Div64(h, 0, q) // quotient limb for bits [64, 128)
	ql, _ := bits.Div64(r, 0, q) // quotient limb for bits [0, 64)
	m.brHi, m.brLo = qh, ql
	return m, nil
}

// MustModulus is NewModulus for known-good constants; it panics on error and
// is intended for package-level defaults and tests.
func MustModulus(q uint64) Modulus {
	m, err := NewModulus(q)
	if err != nil {
		panic(err)
	}
	return m
}

// Add returns a+b mod q for a, b < q.
func (m Modulus) Add(a, b uint64) uint64 {
	s := a + b
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// Sub returns a-b mod q for a, b < q.
func (m Modulus) Sub(a, b uint64) uint64 {
	d := a - b
	if d > a { // borrow
		d += m.Q
	}
	return d
}

// Neg returns -a mod q for a < q.
func (m Modulus) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Reduce maps an arbitrary uint64 into [0, q).
func (m Modulus) Reduce(a uint64) uint64 {
	return a % m.Q
}

// Mul returns a*b mod q using Barrett reduction of the 128-bit product.
func (m Modulus) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.reduce128(hi, lo)
}

// reduce128 reduces a 128-bit value {hi, lo} modulo q via Barrett.
func (m Modulus) reduce128(hi, lo uint64) uint64 {
	// Estimate quotient: qhat = floor(x * floor(2^128/q) / 2^128).
	// x = hi*2^64 + lo; br = brHi*2^64 + brLo.
	// x*br has 256 bits; we need bits [128, 192) of the product.
	p1hi, _ := bits.Mul64(lo, m.brLo)
	p2hi, p2lo := bits.Mul64(lo, m.brHi)
	p3hi, p3lo := bits.Mul64(hi, m.brLo)
	p4hi, p4lo := bits.Mul64(hi, m.brHi)

	// Sum the partial products; we want limb 2 (bits 128..191) of the total.
	// limb1 = p1hi + p2lo + p3lo (with carries into limb2)
	l1, c1 := bits.Add64(p1hi, p2lo, 0)
	l1, c2 := bits.Add64(l1, p3lo, 0)
	_ = l1
	// limb2 = p2hi + p3hi + p4lo + carries
	l2, c3 := bits.Add64(p2hi, p3hi, 0)
	l2, c4 := bits.Add64(l2, p4lo, c1)
	l2, c5 := bits.Add64(l2, c2, 0)
	_ = p4hi // limb3 not needed: quotient < 2^64 because x < q*2^64
	_ = c3
	_ = c4
	_ = c5

	qhat := l2
	// r = x - qhat*q; correct by at most two subtractions.
	qqHi, qqLo := bits.Mul64(qhat, m.Q)
	rLo, borrow := bits.Sub64(lo, qqLo, 0)
	rHi, _ := bits.Sub64(hi, qqHi, borrow)
	r := rLo
	// rHi is 0 or reflects small positive residue overflow; fold.
	for rHi != 0 || r >= m.Q {
		rLo, borrow = bits.Sub64(r, m.Q, 0)
		rHi, _ = bits.Sub64(rHi, 0, borrow)
		r = rLo
	}
	return r
}

// Pow returns a^e mod q by square-and-multiply.
func (m Modulus) Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := a % m.Q
	for e > 0 {
		if e&1 == 1 {
			result = m.Mul(result, base)
		}
		base = m.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a mod q (q prime), or an error
// if a ≡ 0.
func (m Modulus) Inv(a uint64) (uint64, error) {
	a %= m.Q
	if a == 0 {
		return 0, fmt.Errorf("ring: zero has no inverse mod %d", m.Q)
	}
	// Fermat: a^(q-2) mod q.
	return m.Pow(a, m.Q-2), nil
}

// Shoup precomputes floor(w * 2^64 / q) enabling the fast Shoup modular
// multiplication MulShoup(a, w, wShoup) when w is a fixed operand (NTT
// twiddle factors).
func (m Modulus) Shoup(w uint64) uint64 {
	hi, _ := bits.Div64(w%m.Q, 0, m.Q)
	return hi
}

// MulShoup returns a*w mod q given wShoup = Shoup(w). Requires w < q.
func (m Modulus) MulShoup(a, w, wShoup uint64) uint64 {
	qhat, _ := bits.Mul64(a, wShoup)
	r := a*w - qhat*m.Q // low 64 bits are exact
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MulShoupLazy is MulShoup without the final conditional subtraction: the
// result lies in the lazy range [0, 2q). Callers that immediately feed the
// value into another reduction (or sum a small number of lazy terms below
// 2^63) skip a branch per coefficient; fold back with ReduceLazy.
func (m Modulus) MulShoupLazy(a, w, wShoup uint64) uint64 {
	qhat, _ := bits.Mul64(a, wShoup)
	return a*w - qhat*m.Q
}

// ReduceLazy folds a lazy value in [0, 2q) into [0, q).
func (m Modulus) ReduceLazy(a uint64) uint64 {
	if a >= m.Q {
		a -= m.Q
	}
	return a
}

// MulAdd2 returns (a*b + c*d) mod q for fully reduced operands using a
// single deferred Barrett reduction of the 128-bit sum — the lazy-reduction
// fused multiply-accumulate of the RNS tensor cross term. The sum
// 2(q-1)^2 < q*2^64 keeps the Barrett quotient within one word.
func (m Modulus) MulAdd2(a, b, c, d uint64) uint64 {
	h1, l1 := bits.Mul64(a, b)
	h2, l2 := bits.Mul64(c, d)
	lo, carry := bits.Add64(l1, l2, 0)
	hi, _ := bits.Add64(h1, h2, carry)
	return m.reduce128(hi, lo)
}

// Centered maps a residue in [0, q) to its centered representative in
// (-q/2, q/2].
func (m Modulus) Centered(a uint64) int64 {
	if a > m.Q/2 {
		return int64(a) - int64(m.Q)
	}
	return int64(a)
}

// FromCentered maps a signed value with |v| < q into [0, q).
func (m Modulus) FromCentered(v int64) uint64 {
	if v < 0 {
		return uint64(v + int64(m.Q))
	}
	return uint64(v)
}
