package ring

import (
	"testing"
)

func uniformPoly(t *testing.T, r *Ring, seed uint64) Poly {
	t.Helper()
	s := NewSampler(r, NewSeededSource(seed))
	p := r.NewPoly()
	s.Uniform(p)
	return p
}

// The NTT-domain automorphism must be the transform conjugate of the
// coefficient-domain one: NTT(φ_g(a)) == AutomorphismNTT(NTT(a), g), across
// degrees, moduli, and every Galois element in a planned-rotation-sized set.
func TestAutomorphismNTTMatchesCoefficientDomain(t *testing.T) {
	for _, n := range []int{16, 64, 2048} {
		for _, bits := range []int{30, 50} {
			q, err := GenerateNTTPrime(bits, n)
			if err != nil {
				t.Fatalf("GenerateNTTPrime(%d, %d): %v", bits, n, err)
			}
			r, err := NewRing(n, q)
			if err != nil {
				t.Fatalf("NewRing: %v", err)
			}
			a := uniformPoly(t, r, uint64(n*bits))
			for _, step := range []int{0, 1, 2, 5, n/2 - 1, -1, -3} {
				g := GaloisElement(step, n)
				// coefficient-domain reference
				want := r.NewPoly()
				r.Automorphism(a, g, want)
				r.NTT(want)
				// NTT-domain permutation
				got := r.NewPoly()
				aNTT := a.Copy()
				r.NTT(aNTT)
				r.AutomorphismNTT(aNTT, g, got)
				if !got.Equal(want) {
					t.Fatalf("n=%d bits=%d step=%d g=%d: NTT-domain automorphism != coefficient-domain reference", n, bits, step, g)
				}
			}
		}
	}
}

func TestAutomorphismIdentity(t *testing.T) {
	r := testRing(t)
	a := uniformPoly(t, r, 7)
	aNTT := a.Copy()
	r.NTT(aNTT)
	out := r.NewPoly()
	r.AutomorphismNTT(aNTT, GaloisElement(0, r.N), out)
	if !out.Equal(aNTT) {
		t.Fatal("φ_1 must be the identity permutation")
	}
}

// φ_g ∘ φ_h = φ_{gh mod 2n}: rotating by one step r times equals rotating
// by r, and a step composed with its inverse is the identity.
func TestAutomorphismComposition(t *testing.T) {
	r := testRing(t)
	n := r.N
	a := uniformPoly(t, r, 11)
	r.NTT(a)

	g1 := GaloisElement(1, n)
	g3 := GaloisElement(3, n)
	tmp, tmp2, out := r.NewPoly(), r.NewPoly(), r.NewPoly()
	r.AutomorphismNTT(a, g1, tmp)
	r.AutomorphismNTT(tmp, g1, tmp2)
	r.AutomorphismNTT(tmp2, g1, tmp)
	r.AutomorphismNTT(a, g3, out)
	if !tmp.Equal(out) {
		t.Fatal("three single-step rotations must equal one triple-step rotation")
	}

	inv := GaloisElement(-3, n)
	r.AutomorphismNTT(out, inv, tmp)
	if !tmp.Equal(a) {
		t.Fatal("rotation composed with its inverse must be the identity")
	}
}

func TestGaloisElementProperties(t *testing.T) {
	for _, n := range []int{16, 2048} {
		m := uint64(2 * n)
		if g := GaloisElement(0, n); g != 1 {
			t.Fatalf("n=%d: GaloisElement(0) = %d, want 1", n, g)
		}
		if g := GaloisElement(1, n); g != 5 {
			t.Fatalf("n=%d: GaloisElement(1) = %d, want 5", n, g)
		}
		// 5 generates a subgroup of order n/2 in (Z/2n)^*: stepping a full
		// row length wraps to the identity.
		if g := GaloisElement(n/2, n); g != 1 {
			t.Fatalf("n=%d: GaloisElement(n/2) = %d, want 1", n, g)
		}
		fwd, back := GaloisElement(7, n), GaloisElement(-7, n)
		if fwd*back%m != 1 {
			t.Fatalf("n=%d: 5^7 · 5^-7 = %d mod %d, want 1", n, fwd*back%m, m)
		}
	}
}

func TestAutomorphismRejectsEvenExponent(t *testing.T) {
	r := testRing(t)
	a := r.NewPoly()
	out := r.NewPoly()
	defer func() {
		if recover() == nil {
			t.Fatal("even Galois exponent must panic")
		}
	}()
	r.AutomorphismNTT(a, 2, out)
}

func TestRotationCountAdvances(t *testing.T) {
	r := testRing(t)
	a := uniformPoly(t, r, 13)
	r.NTT(a)
	out := r.NewPoly()
	before := RotationCount()
	r.AutomorphismNTT(a, GaloisElement(1, r.N), out)
	r.AutomorphismNTT(a, GaloisElement(2, r.N), out)
	if got := RotationCount() - before; got != 2 {
		t.Fatalf("RotationCount advanced by %d, want 2", got)
	}
}

// The RNS automorphism must agree with applying the permutation limb by
// limb — and, because the layout is modulus-independent, every limb uses
// the same permutation table.
func TestRNSAutomorphismMatchesPerLimb(t *testing.T) {
	n := 64
	chain, err := GenerateChain(50, n, 3)
	if err != nil {
		t.Fatalf("GenerateChain: %v", err)
	}
	rr, err := NewRNSRing(n, chain)
	if err != nil {
		t.Fatalf("NewRNSRing: %v", err)
	}
	a := rr.NewRNSPoly()
	for i, lr := range rr.Limbs {
		s := NewSampler(lr, NewSeededSource(uint64(100+i)))
		s.Uniform(a.Limbs[i])
	}
	rr.NTT(a)
	g := GaloisElement(5, n)
	got := rr.NewRNSPoly()
	rr.AutomorphismNTT(a, g, got)
	for i, lr := range rr.Limbs {
		want := lr.NewPoly()
		lr.AutomorphismNTT(a.Limbs[i], g, want)
		if !got.Limbs[i].Equal(want) {
			t.Fatalf("limb %d: RNS automorphism != per-limb automorphism", i)
		}
	}
}
