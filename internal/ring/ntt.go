package ring

import (
	"fmt"
	"math/bits"
)

// NTT holds precomputed tables for the negacyclic number-theoretic transform
// over Z_q[x]/(x^n+1): powers of a primitive 2n-th root of unity psi in
// bit-reversed order, with Shoup precomputations for fast fixed-operand
// modular multiplication.
type NTT struct {
	mod Modulus
	n   int
	// psiPow[i] = psi^brv(i), psiInvPow[i] = psi^-brv(i), bit-reversed.
	psiPow      []uint64
	psiPowShoup []uint64
	psiInv      []uint64
	psiInvShoup []uint64
	nInv        uint64
	nInvShoup   uint64
}

// NewNTT builds transform tables for degree n (a power of two) and modulus q
// with q ≡ 1 mod 2n.
func NewNTT(mod Modulus, n int) (*NTT, error) {
	if n <= 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: NTT degree %d is not a power of two > 1", n)
	}
	psi, err := PrimitiveRoot2N(mod, n)
	if err != nil {
		return nil, err
	}
	psiInv, err := mod.Inv(psi)
	if err != nil {
		return nil, err
	}
	t := &NTT{
		mod:         mod,
		n:           n,
		psiPow:      make([]uint64, n),
		psiPowShoup: make([]uint64, n),
		psiInv:      make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	logN := bits.TrailingZeros(uint(n))
	fwd, inv := uint64(1), uint64(1)
	powers := make([]uint64, n)
	invPowers := make([]uint64, n)
	for i := 0; i < n; i++ {
		powers[i] = fwd
		invPowers[i] = inv
		fwd = mod.Mul(fwd, psi)
		inv = mod.Mul(inv, psiInv)
	}
	for i := 0; i < n; i++ {
		r := reverseBits(uint64(i), logN)
		t.psiPow[i] = powers[r]
		t.psiPowShoup[i] = mod.Shoup(powers[r])
		t.psiInv[i] = invPowers[r]
		t.psiInvShoup[i] = mod.Shoup(invPowers[r])
	}
	t.nInv, err = mod.Inv(uint64(n))
	if err != nil {
		return nil, err
	}
	t.nInvShoup = mod.Shoup(t.nInv)
	return t, nil
}

func reverseBits(v uint64, width int) uint64 {
	return bits.Reverse64(v) >> (64 - uint(width))
}

// Forward transforms coefficients in place into the NTT (evaluation) domain.
// The input is in standard order; the output is in bit-reversed order, which
// is transparent to callers because Inverse consumes the same layout and
// pointwise products are order-independent.
func (t *NTT) Forward(a []uint64) {
	mod := t.mod
	q := mod.Q
	qq := q << 1
	n := t.n
	// Cooley–Tukey butterflies, decimation in time, following Longa–Naehrig
	// for the negacyclic case, with Harvey-style lazy reduction: butterfly
	// operands live in [0, 4q) and only the top operand is conditionally
	// folded below 2q before the add/sub pair, so each butterfly spends one
	// branch instead of three. q < 2^58 keeps 4q well inside a word.
	idx := 1
	for m := 1; m < n>>1; m <<= 1 {
		step := n / (2 * m)
		for i := 0; i < m; i++ {
			w := t.psiPow[idx]
			ws := t.psiPowShoup[idx]
			idx++
			base := 2 * i * step
			// Three-index slice windows let the compiler drop the bounds
			// checks from the butterfly loop.
			x := a[base : base+step : base+step]
			y := a[base+step : base+2*step : base+2*step]
			for j := range x {
				u := x[j]
				if u >= qq {
					u -= qq
				}
				v := mod.MulShoupLazy(y[j], w, ws) // < 2q
				x[j] = u + v                       // < 4q
				y[j] = u + qq - v                  // < 4q
			}
		}
	}
	// Last level (step == 1) with the canonical fold fused in, so the lazy
	// range [0, 4q) collapses to [0, q) without a separate pass over a.
	for i := 0; i < n>>1; i++ {
		w := t.psiPow[idx]
		ws := t.psiPowShoup[idx]
		idx++
		u := a[2*i]
		if u >= qq {
			u -= qq
		}
		v := mod.MulShoupLazy(a[2*i+1], w, ws)
		s := u + v // < 4q
		if s >= qq {
			s -= qq
		}
		if s >= q {
			s -= q
		}
		d := u + qq - v // < 4q
		if d >= qq {
			d -= qq
		}
		if d >= q {
			d -= q
		}
		a[2*i] = s
		a[2*i+1] = d
	}
}

// Inverse transforms NTT-domain values in place back to coefficients,
// including the 1/n scaling and the psi^-i twist.
func (t *NTT) Inverse(a []uint64) {
	t.inverse(a, t.nInv, t.nInvShoup)
}

// InverseScaled is Inverse with the final 1/n normalization replaced by
// s/n: the extra scalar rides the scaling pass every inverse transform
// already pays, so multiplying a polynomial while leaving the NTT domain
// is free. The RNS tensor multiply uses it to fold the plaintext modulus t
// into the transform instead of running a separate MulScalar pass per limb.
func (t *NTT) InverseScaled(a []uint64, s uint64) {
	scale := t.mod.Mul(t.nInv, s%t.mod.Q)
	t.inverse(a, scale, t.mod.Shoup(scale))
}

func (t *NTT) inverse(a []uint64, scale, scaleShoup uint64) {
	mod := t.mod
	qq := mod.Q << 1
	n := t.n
	// Gentleman–Sande butterflies mirror Forward, again with lazy reduction:
	// the invariant is values < 2q at every level (inputs arrive canonical),
	// the sum u+v < 4q is folded below 2q with one branch, and the rotated
	// difference u+2q-v < 4q feeds MulShoupLazy, which lands back in [0, 2q).
	for m := n / 2; m >= 1; m >>= 1 {
		step := n / (2 * m)
		// inverse twiddles consumed in reverse order
		localIdx := m
		for i := 0; i < m; i++ {
			w := t.psiInv[localIdx]
			ws := t.psiInvShoup[localIdx]
			localIdx++
			base := 2 * i * step
			x := a[base : base+step : base+step]
			y := a[base+step : base+2*step : base+2*step]
			for j := range x {
				u := x[j]
				v := y[j]
				s := u + v // < 4q
				if s >= qq {
					s -= qq
				}
				x[j] = s
				y[j] = mod.MulShoupLazy(u+qq-v, w, ws)
			}
		}
	}
	// The scaling pass fully reduces the lazy values: MulShoup accepts any
	// 64-bit multiplicand and returns a canonical residue.
	for i := range a {
		a[i] = mod.MulShoup(a[i], scale, scaleShoup)
	}
}
