package ring

import (
	"fmt"
	"math/bits"
)

// NTT holds precomputed tables for the negacyclic number-theoretic transform
// over Z_q[x]/(x^n+1): powers of a primitive 2n-th root of unity psi in
// bit-reversed order, with Shoup precomputations for fast fixed-operand
// modular multiplication.
type NTT struct {
	mod Modulus
	n   int
	// psiPow[i] = psi^brv(i), psiInvPow[i] = psi^-brv(i), bit-reversed.
	psiPow      []uint64
	psiPowShoup []uint64
	psiInv      []uint64
	psiInvShoup []uint64
	nInv        uint64
	nInvShoup   uint64
}

// NewNTT builds transform tables for degree n (a power of two) and modulus q
// with q ≡ 1 mod 2n.
func NewNTT(mod Modulus, n int) (*NTT, error) {
	if n <= 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: NTT degree %d is not a power of two > 1", n)
	}
	psi, err := PrimitiveRoot2N(mod, n)
	if err != nil {
		return nil, err
	}
	psiInv, err := mod.Inv(psi)
	if err != nil {
		return nil, err
	}
	t := &NTT{
		mod:         mod,
		n:           n,
		psiPow:      make([]uint64, n),
		psiPowShoup: make([]uint64, n),
		psiInv:      make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	logN := bits.TrailingZeros(uint(n))
	fwd, inv := uint64(1), uint64(1)
	powers := make([]uint64, n)
	invPowers := make([]uint64, n)
	for i := 0; i < n; i++ {
		powers[i] = fwd
		invPowers[i] = inv
		fwd = mod.Mul(fwd, psi)
		inv = mod.Mul(inv, psiInv)
	}
	for i := 0; i < n; i++ {
		r := reverseBits(uint64(i), logN)
		t.psiPow[i] = powers[r]
		t.psiPowShoup[i] = mod.Shoup(powers[r])
		t.psiInv[i] = invPowers[r]
		t.psiInvShoup[i] = mod.Shoup(invPowers[r])
	}
	t.nInv, err = mod.Inv(uint64(n))
	if err != nil {
		return nil, err
	}
	t.nInvShoup = mod.Shoup(t.nInv)
	return t, nil
}

func reverseBits(v uint64, width int) uint64 {
	return bits.Reverse64(v) >> (64 - uint(width))
}

// Forward transforms coefficients in place into the NTT (evaluation) domain.
// The input is in standard order; the output is in bit-reversed order, which
// is transparent to callers because Inverse consumes the same layout and
// pointwise products are order-independent.
func (t *NTT) Forward(a []uint64) {
	mod := t.mod
	n := t.n
	// Cooley–Tukey butterflies, decimation in time, gentleman-sande layout
	// following Longa–Naehrig for the negacyclic case.
	idx := 1
	for m := 1; m < n; m <<= 1 {
		step := n / (2 * m)
		for i := 0; i < m; i++ {
			w := t.psiPow[idx]
			ws := t.psiPowShoup[idx]
			idx++
			base := 2 * i * step
			for j := base; j < base+step; j++ {
				u := a[j]
				v := mod.MulShoup(a[j+step], w, ws)
				a[j] = mod.Add(u, v)
				a[j+step] = mod.Sub(u, v)
			}
		}
	}
}

// Inverse transforms NTT-domain values in place back to coefficients,
// including the 1/n scaling and the psi^-i twist.
func (t *NTT) Inverse(a []uint64) {
	mod := t.mod
	n := t.n
	// Gentleman–Sande butterflies mirror Forward.
	for m := n / 2; m >= 1; m >>= 1 {
		step := n / (2 * m)
		// inverse twiddles consumed in reverse order
		localIdx := m
		for i := 0; i < m; i++ {
			w := t.psiInv[localIdx]
			ws := t.psiInvShoup[localIdx]
			localIdx++
			base := 2 * i * step
			for j := base; j < base+step; j++ {
				u := a[j]
				v := a[j+step]
				a[j] = mod.Add(u, v)
				a[j+step] = mod.MulShoup(mod.Sub(u, v), w, ws)
			}
		}
	}
	for i := range a {
		a[i] = mod.MulShoup(a[i], t.nInv, t.nInvShoup)
	}
}
