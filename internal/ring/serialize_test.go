package ring

import (
	"bytes"
	"math/bits"
	"testing"
)

func testSerializeRing(t testing.TB, n int) *Ring {
	t.Helper()
	q, err := GenerateNTTPrime(46, n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, q)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPackedPolyMatchesLegacy is the codec equivalence property: for random
// in-range polynomials, packed encode → decode yields coefficients
// bit-identical to the legacy 8-byte path, at the predicted smaller size.
func TestPackedPolyMatchesLegacy(t *testing.T) {
	r := testSerializeRing(t, 256)
	width := CoeffBits(r.Mod.Q)
	s := NewSampler(r, NewSeededSource(7))
	for trial := 0; trial < 20; trial++ {
		p := r.NewPoly()
		s.Uniform(p)

		var legacy bytes.Buffer
		if err := WritePoly(&legacy, p); err != nil {
			t.Fatal(err)
		}
		var packed bytes.Buffer
		if err := WritePolyPacked(&packed, p, width); err != nil {
			t.Fatal(err)
		}
		if got, want := packed.Len(), PackedPolySize(r.N, width); got != want {
			t.Fatalf("packed size %d, PackedPolySize says %d", got, want)
		}
		if packed.Len() >= legacy.Len() {
			t.Fatalf("packed %dB not smaller than legacy %dB", packed.Len(), legacy.Len())
		}

		fromLegacy, err := ReadPoly(&legacy)
		if err != nil {
			t.Fatal(err)
		}
		fromPacked, err := ReadPolyPacked(&packed, width)
		if err != nil {
			t.Fatal(err)
		}
		if !fromLegacy.Equal(p) || !fromPacked.Equal(p) {
			t.Fatal("decoded polynomial differs from original")
		}
	}
}

// TestPackedPolyEdgeWidths exercises widths at both extremes, including the
// >57-bit case where a coefficient straddles a 64-bit window boundary.
func TestPackedPolyEdgeWidths(t *testing.T) {
	for _, width := range []int{1, 7, 8, 9, 31, 33, 57, 58, 63} {
		limit := uint64(1) << uint(width)
		p := Poly{Coeffs: make([]uint64, 64)}
		state := uint64(width)
		for i := range p.Coeffs {
			state = state*6364136223846793005 + 1442695040888963407
			p.Coeffs[i] = state % limit
		}
		// Force extremes into the vector.
		p.Coeffs[0] = limit - 1
		p.Coeffs[1] = 0
		p.Coeffs[len(p.Coeffs)-1] = limit - 1

		var buf bytes.Buffer
		if err := WritePolyPacked(&buf, p, width); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		got, err := ReadPolyPacked(&buf, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if !got.Equal(p) {
			t.Fatalf("width %d: round trip mismatch", width)
		}
	}
}

func TestPackedPolyRejectsOversizedCoefficient(t *testing.T) {
	// The oversized coefficient sits last so an eager writer would have
	// emitted the length prefix (and most of the body) before noticing.
	p := Poly{Coeffs: []uint64{1, 2, 3, 1 << 10}}
	var buf bytes.Buffer
	if err := WritePolyPacked(&buf, p, 10); err == nil {
		t.Fatal("coefficient wider than width accepted")
	}
	// The failure must happen before any byte reaches the stream: a partial
	// frame inside a length-prefixed framing would desync the connection.
	if buf.Len() != 0 {
		t.Fatalf("%d bytes written before range check failed", buf.Len())
	}
}

func TestPackedPolyRejectsBadWidth(t *testing.T) {
	p := Poly{Coeffs: []uint64{1}}
	var buf bytes.Buffer
	for _, w := range []int{0, -1, 64, 99} {
		if err := WritePolyPacked(&buf, p, w); err == nil {
			t.Fatalf("width %d accepted by writer", w)
		}
		if _, err := ReadPolyPacked(bytes.NewReader([]byte{1, 0, 0, 0, 0}), w); err == nil {
			t.Fatalf("width %d accepted by reader", w)
		}
	}
}

func TestReadPolyPackedRejectsHostileLength(t *testing.T) {
	// Length prefix far beyond maxPolyDegree must error without allocating.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadPolyPacked(bytes.NewReader(hostile), 46); err == nil {
		t.Fatal("hostile length accepted")
	}
	if _, err := ReadPolyPacked(bytes.NewReader([]byte{0, 0, 0, 0}), 46); err == nil {
		t.Fatal("zero length accepted")
	}
	// Truncated body.
	if _, err := ReadPolyPacked(bytes.NewReader([]byte{4, 0, 0, 0, 1, 2}), 46); err == nil {
		t.Fatal("truncated body accepted")
	}
}

// TestCoeffBits pins the width formula the wire format depends on.
func TestCoeffBits(t *testing.T) {
	for _, q := range []uint64{2, 3, 255, 256, 257, 1 << 45, (1 << 58) - 27} {
		if got, want := CoeffBits(q), bits.Len64(q-1); got != want {
			t.Fatalf("CoeffBits(%d) = %d, want %d", q, got, want)
		}
	}
}

// TestSerializeBufferReuse checks the pooled scratch path stays correct
// under interleaved encode/decode traffic (pool reuse must never leak bytes
// between polys).
func TestSerializeBufferReuse(t *testing.T) {
	r := testSerializeRing(t, 128)
	s := NewSampler(r, NewSeededSource(9))
	width := CoeffBits(r.Mod.Q)
	polys := make([]Poly, 8)
	var legacy, packed bytes.Buffer
	for i := range polys {
		polys[i] = r.NewPoly()
		s.Uniform(polys[i])
		if err := WritePoly(&legacy, polys[i]); err != nil {
			t.Fatal(err)
		}
		if err := WritePolyPacked(&packed, polys[i], width); err != nil {
			t.Fatal(err)
		}
	}
	for i := range polys {
		a, err := ReadPoly(&legacy)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ReadPolyPacked(&packed, width)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(polys[i]) || !b.Equal(polys[i]) {
			t.Fatalf("poly %d corrupted by buffer reuse", i)
		}
	}
}
