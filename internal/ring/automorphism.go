package ring

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements the Galois automorphisms φ_g : a(x) → a(x^g) of
// R_q = Z_q[x]/(x^n+1) for odd g, the algebraic substrate of slot rotation.
// In coefficient form φ_g is a signed index permutation (x^i → ±x^(ig mod n),
// negated when ig mod 2n lands in the upper half). In the NTT domain it is a
// pure, sign-free permutation of evaluation points: position p holds
// a(ψ^e(p)) for the transform's root-exponent map e, and φ_g(a)(ψ^e) =
// a(ψ^(e·g)), so out[p] = in[pos[e(p)·g mod 2n]]. The permutation depends
// only on the degree (the butterfly layout is modulus-independent), so it is
// derived once per n, cached, and shared by the q-ring, the slot ring over
// t, and every RNS limb — rotations never round-trip through coefficient
// form.

// ringRotations counts NTT-domain automorphism applications process-wide,
// exported on /metrics by the engine as ring.rotations (one count per limb
// pass, mirroring ring.limb_muls accounting).
var ringRotations atomic.Uint64

// RotationCount returns the cumulative number of NTT-domain automorphism
// (rotation) permutation passes executed by all rings in the process.
func RotationCount() uint64 { return ringRotations.Load() }

// GaloisElement returns the automorphism exponent g = 5^step mod 2n whose
// NTT-domain permutation rotates each row of the 2×(n/2) slot layout left
// by step positions. Negative steps rotate right; steps are reduced modulo
// the row length's generator order n/2.
func GaloisElement(step, n int) uint64 {
	order := n / 2
	step = ((step % order) + order) % order
	m := uint64(2 * n)
	g := uint64(1)
	for i := 0; i < step; i++ {
		g = g * 5 % m
	}
	return g
}

// nttLayout captures the modulus-independent slot layout of the transform
// for one degree: exp[p] is the (odd) root exponent evaluated at output
// position p, pos[k] the inverse map, and perms the per-g permutation cache.
type nttLayout struct {
	exp   []int    // position -> root exponent, odd values in [1, 2n)
	pos   []int32  // root exponent -> position; -1 for even exponents
	perms sync.Map // uint64 g -> []int32 with out[p] = in[perm[p]]
}

// nttLayoutCache maps degree n -> *nttLayout. The layout is a function of
// the butterfly structure alone, so one entry serves every modulus.
var nttLayoutCache sync.Map

// layout returns the root-exponent map of this ring's transform, deriving it
// empirically on first use per degree: Forward applied to the monomial x
// yields ψ^e(p) at position p, and a discrete-log table of ψ's 2n powers
// recovers e. PrimitiveRoot2N is deterministic, so the ψ recomputed here is
// the one the NTT tables were built from.
func (r *Ring) layout() *nttLayout {
	if l, ok := nttLayoutCache.Load(r.N); ok {
		return l.(*nttLayout)
	}
	n := r.N
	psi, err := PrimitiveRoot2N(r.Mod, n)
	if err != nil {
		// NewRing already found a root for this (mod, n); unreachable.
		panic(fmt.Sprintf("ring: automorphism layout: %v", err))
	}
	dlog := make(map[uint64]int, 2*n)
	p := uint64(1)
	for k := 0; k < 2*n; k++ {
		dlog[p] = k
		p = r.Mod.Mul(p, psi)
	}
	a := make([]uint64, n)
	a[1] = 1
	r.ntt.Forward(a)
	l := &nttLayout{exp: make([]int, n), pos: make([]int32, 2*n)}
	for i := range l.pos {
		l.pos[i] = -1
	}
	for i, v := range a {
		k, ok := dlog[v]
		if !ok {
			panic("ring: automorphism layout: NTT output is not a power of psi")
		}
		l.exp[i] = k
		l.pos[k] = int32(i)
	}
	actual, _ := nttLayoutCache.LoadOrStore(n, l)
	return actual.(*nttLayout)
}

// perm returns (building and caching on first use) the NTT-domain index
// permutation of φ_g: out[p] = in[perm[p]]. g must be odd.
func (l *nttLayout) perm(g uint64) []int32 {
	if p, ok := l.perms.Load(g); ok {
		return p.([]int32)
	}
	if g&1 == 0 {
		panic(fmt.Sprintf("ring: automorphism exponent %d must be odd", g))
	}
	n := len(l.exp)
	mask := uint64(2*n - 1)
	perm := make([]int32, n)
	for p := 0; p < n; p++ {
		perm[p] = l.pos[(uint64(l.exp[p])*g)&mask]
	}
	actual, _ := l.perms.LoadOrStore(g, perm)
	return actual.([]int32)
}

// NTTExponents returns a copy of the transform's root-exponent map for this
// ring's degree: Forward output position p holds the evaluation a(ψ^e) with
// e = NTTExponents()[p]. The packed encoder uses it to address slots by
// root exponent instead of raw transform position.
func (r *Ring) NTTExponents() []int {
	l := r.layout()
	out := make([]int, len(l.exp))
	copy(out, l.exp)
	return out
}

// Automorphism sets out = φ_g(a) for a in coefficient domain: the signed
// permutation out[(i·g) mod n] = ±a[i], negated when (i·g) mod 2n ≥ n.
// g must be odd; out must not alias a.
func (r *Ring) Automorphism(a Poly, g uint64, out Poly) {
	if g&1 == 0 {
		panic(fmt.Sprintf("ring: automorphism exponent %d must be odd", g))
	}
	mod := r.Mod
	n := uint64(r.N)
	mask := 2*n - 1
	for i := uint64(0); i < n; i++ {
		j := (i * g) & mask
		c := a.Coeffs[i]
		if j >= n {
			c = mod.Neg(c)
		}
		out.Coeffs[j&(n-1)] = c
	}
}

// AutomorphismNTT sets out = φ_g(a) for a in the NTT domain — a pure index
// permutation with no sign flips and no transform round-trip, the rotation
// primitive of the packed-convolution hot path. g must be odd; out must not
// alias a.
func (r *Ring) AutomorphismNTT(a Poly, g uint64, out Poly) {
	ringRotations.Add(1)
	perm := r.layout().perm(g)
	for p, src := range perm {
		out.Coeffs[p] = a.Coeffs[src]
	}
}

// AutomorphismNTT applies φ_g limb-wise to an NTT-domain RNS polynomial,
// fanning limbs out across the worker pool. The permutation is shared
// across limbs (it depends only on the degree), so each limb pays a single
// cache lookup plus the copy. out must not alias a.
func (rr *RNSRing) AutomorphismNTT(a RNSPoly, g uint64, out RNSPoly) {
	parallelLimbs(rr.K(), func(i int) {
		rr.Limbs[i].AutomorphismNTT(a.Limbs[i], g, out.Limbs[i])
	})
}
