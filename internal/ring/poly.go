package ring

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hesgx/internal/u128"
)

// Ring bundles a power-of-two degree n, a coefficient modulus, and the NTT
// tables for R_q = Z_q[x]/(x^n + 1). Its arithmetic tables are immutable
// after construction; the scratch pools and transform counters it carries
// are internally synchronized, so a Ring is safe for concurrent use.
type Ring struct {
	N   int
	Mod Modulus
	ntt *NTT

	// scratch pools recycle the temporaries of the multiply hot path so
	// steady-state ring arithmetic allocates (almost) nothing.
	polyPool sync.Pool // *[]uint64 of length N
	i64Pool  sync.Pool // *[]int64 of length N

	// transform and pool counters, exposed for per-layer NTT accounting
	// (internal/stats surfaces them on /metrics).
	nttForward atomic.Uint64
	nttInverse atomic.Uint64
	polyMiss   atomic.Uint64
	i64Miss    atomic.Uint64
}

// NewRing constructs the ring of degree n modulo q. q must be an NTT-friendly
// prime (q ≡ 1 mod 2n) below 2^58.
func NewRing(n int, q uint64) (*Ring, error) {
	mod, err := NewModulus(q)
	if err != nil {
		return nil, err
	}
	if !IsPrime(q) {
		return nil, fmt.Errorf("ring: modulus %d is not prime", q)
	}
	ntt, err := NewNTT(mod, n)
	if err != nil {
		return nil, err
	}
	r := &Ring{N: n, Mod: mod, ntt: ntt}
	r.polyPool.New = func() any {
		r.polyMiss.Add(1)
		s := make([]uint64, n)
		return &s
	}
	r.i64Pool.New = func() any {
		r.i64Miss.Add(1)
		s := make([]int64, n)
		return &s
	}
	return r, nil
}

// GetPoly returns a scratch polynomial from the ring's pool. Its contents
// are unspecified — callers must overwrite every coefficient (or call
// Poly.Zero) before reading. Return it with PutPoly when done.
func (r *Ring) GetPoly() Poly {
	return Poly{Coeffs: *r.polyPool.Get().(*[]uint64)}
}

// PutPoly returns a polynomial obtained from GetPoly to the pool. Polys of
// the wrong degree are dropped rather than poisoning the pool.
func (r *Ring) PutPoly(p Poly) {
	if len(p.Coeffs) != r.N {
		return
	}
	c := p.Coeffs
	r.polyPool.Put(&c)
}

// GetCentered returns a pooled scratch slice for centered representations.
// Contents are unspecified; return it with PutCentered.
func (r *Ring) GetCentered() []int64 {
	return *r.i64Pool.Get().(*[]int64)
}

// PutCentered returns a scratch slice obtained from GetCentered to the pool.
func (r *Ring) PutCentered(v []int64) {
	if len(v) != r.N {
		return
	}
	r.i64Pool.Put(&v)
}

// NTTCounts returns the cumulative number of forward and inverse transforms
// this ring has executed — the denominator of the "NTTs per inference"
// metric the engine reports.
func (r *Ring) NTTCounts() (forward, inverse uint64) {
	return r.nttForward.Load(), r.nttInverse.Load()
}

// PoolMisses returns how many scratch allocations fell through the poly and
// centered pools (steady-state hot-path traffic should keep both flat).
func (r *Ring) PoolMisses() (poly, centered uint64) {
	return r.polyMiss.Load(), r.i64Miss.Load()
}

// Poly is a polynomial of degree < n with coefficients in [0, q), stored
// densely. Whether the values are in coefficient or NTT domain is tracked by
// the caller (the he package keeps ciphertexts in coefficient domain at rest).
type Poly struct {
	Coeffs []uint64
}

// NewPoly allocates a zero polynomial for the ring.
func (r *Ring) NewPoly() Poly {
	return Poly{Coeffs: make([]uint64, r.N)}
}

// Copy returns a deep copy of p.
func (p Poly) Copy() Poly {
	c := make([]uint64, len(p.Coeffs))
	copy(c, p.Coeffs)
	return Poly{Coeffs: c}
}

// CopyTo copies p's coefficients into dst, which must have the same length.
func (p Poly) CopyTo(dst Poly) {
	copy(dst.Coeffs, p.Coeffs)
}

// Equal reports whether p and q have identical coefficients.
func (p Poly) Equal(q Poly) bool {
	if len(p.Coeffs) != len(q.Coeffs) {
		return false
	}
	for i, c := range p.Coeffs {
		if c != q.Coeffs[i] {
			return false
		}
	}
	return true
}

// Zero sets every coefficient to zero.
func (p Poly) Zero() {
	for i := range p.Coeffs {
		p.Coeffs[i] = 0
	}
}

// IsZero reports whether all coefficients are zero.
func (p Poly) IsZero() bool {
	for _, c := range p.Coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

// Add sets out = a + b.
func (r *Ring) Add(a, b, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Add(a.Coeffs[i], b.Coeffs[i])
	}
}

// Sub sets out = a - b.
func (r *Ring) Sub(a, b, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Sub(a.Coeffs[i], b.Coeffs[i])
	}
}

// Neg sets out = -a.
func (r *Ring) Neg(a, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Neg(a.Coeffs[i])
	}
}

// AddScalar sets out = a + c (constant term only is wrong for ring addition
// of a scalar embedding; the scalar is added to every slot's constant, i.e.
// only coefficient 0).
func (r *Ring) AddScalar(a Poly, c uint64, out Poly) {
	a.CopyTo(out)
	out.Coeffs[0] = r.Mod.Add(a.Coeffs[0], c%r.Mod.Q)
}

// MulScalar sets out = c * a.
func (r *Ring) MulScalar(a Poly, c uint64, out Poly) {
	mod := r.Mod
	c %= mod.Q
	cs := mod.Shoup(c)
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.MulShoup(a.Coeffs[i], c, cs)
	}
}

// MulScalarAdd sets out += c * a, the fused multiply-accumulate of the
// homomorphic convolution inner loop (no intermediate allocation).
func (r *Ring) MulScalarAdd(a Poly, c uint64, out Poly) {
	mod := r.Mod
	c %= mod.Q
	cs := mod.Shoup(c)
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Add(out.Coeffs[i], mod.MulShoup(a.Coeffs[i], c, cs))
	}
}

// NTT transforms a into the evaluation domain in place.
func (r *Ring) NTT(a Poly) {
	r.nttForward.Add(1)
	r.ntt.Forward(a.Coeffs)
}

// INTT transforms a back to the coefficient domain in place.
func (r *Ring) INTT(a Poly) {
	r.nttInverse.Add(1)
	r.ntt.Inverse(a.Coeffs)
}

// INTTScaled transforms a back to the coefficient domain and multiplies it
// by the scalar s in the same pass — the s/n normalization rides the 1/n
// scaling every inverse transform already performs, so the product costs
// nothing over a plain INTT.
func (r *Ring) INTTScaled(a Poly, s uint64) {
	r.nttInverse.Add(1)
	r.ntt.InverseScaled(a.Coeffs, s)
}

// MulCoeffs sets out = a ⊙ b, the pointwise product of NTT-domain values.
func (r *Ring) MulCoeffs(a, b, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Mul(a.Coeffs[i], b.Coeffs[i])
	}
}

// MulCoeffsAdd sets out += a ⊙ b, fusing the pointwise product with the
// accumulation so NTT-resident layers never materialize the product.
func (r *Ring) MulCoeffsAdd(a, b, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Add(out.Coeffs[i], mod.Mul(a.Coeffs[i], b.Coeffs[i]))
	}
}

// MulCoeffsPairAdd sets out = a ⊙ b + c ⊙ d in one pass with one deferred
// Barrett reduction per coefficient (Modulus.MulAdd2) — the fused
// multiply-accumulate kernel of the RNS multiplier's cross term
// t·(c0⊙d1 + c1⊙d0), which otherwise pays two reductions and an add.
func (r *Ring) MulCoeffsPairAdd(a, b, c, d, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.MulAdd2(a.Coeffs[i], b.Coeffs[i], c.Coeffs[i], d.Coeffs[i])
	}
}

// ShoupPrecompute returns the Shoup companion table of a, enabling
// MulCoeffsShoup* against a as the fixed operand. Every a.Coeffs[i] must be
// fully reduced (< q).
func (r *Ring) ShoupPrecompute(a Poly) []uint64 {
	mod := r.Mod
	out := make([]uint64, len(a.Coeffs))
	for i, c := range a.Coeffs {
		out[i] = mod.Shoup(c)
	}
	return out
}

// MulCoeffsShoup sets out = a ⊙ b where bShoup = ShoupPrecompute(b).
func (r *Ring) MulCoeffsShoup(a, b Poly, bShoup []uint64, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.MulShoup(a.Coeffs[i], b.Coeffs[i], bShoup[i])
	}
}

// MulCoeffsShoupAdd sets out += a ⊙ b where bShoup = ShoupPrecompute(b) —
// the fused multiply-accumulate kernel of the NTT-resident conv/FC inner
// loop.
func (r *Ring) MulCoeffsShoupAdd(a, b Poly, bShoup []uint64, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Add(out.Coeffs[i], mod.MulShoup(a.Coeffs[i], b.Coeffs[i], bShoup[i]))
	}
}

// MulNTT sets out = a * b in R_q using the NTT. a and b are in coefficient
// domain and are not modified. Scratch comes from the ring's pool, so the
// steady state allocates nothing.
func (r *Ring) MulNTT(a, b, out Poly) {
	ta, tb := r.GetPoly(), r.GetPoly()
	a.CopyTo(ta)
	b.CopyTo(tb)
	r.NTT(ta)
	r.NTT(tb)
	r.MulCoeffs(ta, tb, out)
	r.INTT(out)
	r.PutPoly(ta)
	r.PutPoly(tb)
}

// MulNTTLazy multiplies a (coefficient domain) by bNTT (already transformed),
// writing the coefficient-domain product to out. Used for repeated products
// against a fixed operand such as encoded model weights.
func (r *Ring) MulNTTLazy(a, bNTT, out Poly) {
	ta := r.GetPoly()
	a.CopyTo(ta)
	r.NTT(ta)
	r.MulCoeffs(ta, bNTT, out)
	r.INTT(out)
	r.PutPoly(ta)
}

// Centered returns the centered representation of a as int64 values in
// (-q/2, q/2].
func (r *Ring) Centered(a Poly) []int64 {
	out := make([]int64, len(a.Coeffs))
	r.CenteredInto(a, out)
	return out
}

// CenteredInto writes the centered representation of a into out, which must
// have length N. Pair with GetCentered/PutCentered to keep the ciphertext
// multiply path allocation-free.
func (r *Ring) CenteredInto(a Poly, out []int64) {
	for i, c := range a.Coeffs {
		out[i] = r.Mod.Centered(c)
	}
}

// MulExactScaleRound computes the FV tensor product of centered operands:
// out = round(scaleNum * (a ⊛ b) / scaleDen) mod q, where ⊛ is negacyclic
// convolution over the integers (no modular wraparound). a and b are given
// in centered int64 form with |coef| <= q/2; the exact intermediate uses
// 128-bit accumulation (see package u128).
func (r *Ring) MulExactScaleRound(a, b []int64, scaleNum, scaleDen uint64, out Poly) {
	n := r.N
	q := r.Mod.Q
	for k := 0; k < n; k++ {
		acc := u128.Int128{}
		// x^k coefficient of negacyclic a*b:
		//   sum_{i<=k} a[i]b[k-i]  -  sum_{i>k} a[i]b[n+k-i]
		for i := 0; i <= k; i++ {
			acc = acc.AddMulInt64(a[i], b[k-i])
		}
		for i := k + 1; i < n; i++ {
			acc = acc.Sub(u128.MulInt64(a[i], b[n+k-i]))
		}
		out.Coeffs[k] = acc.ScaleRoundMod(scaleNum, scaleDen, q)
	}
}

// NegacyclicConvolveInt computes the exact negacyclic convolution of centered
// operands over the integers, returning 128-bit coefficients. It is the
// reference implementation backing MulExactScaleRound and the Karatsuba
// variant's test oracle.
func NegacyclicConvolveInt(a, b []int64) []u128.Int128 {
	n := len(a)
	out := make([]u128.Int128, n)
	for k := 0; k < n; k++ {
		acc := u128.Int128{}
		for i := 0; i <= k; i++ {
			acc = acc.AddMulInt64(a[i], b[k-i])
		}
		for i := k + 1; i < n; i++ {
			acc = acc.Sub(u128.MulInt64(a[i], b[n+k-i]))
		}
		out[k] = acc
	}
	return out
}
