package ring

import (
	"fmt"

	"hesgx/internal/u128"
)

// Ring bundles a power-of-two degree n, a coefficient modulus, and the NTT
// tables for R_q = Z_q[x]/(x^n + 1). It is immutable after construction and
// safe for concurrent use.
type Ring struct {
	N   int
	Mod Modulus
	ntt *NTT
}

// NewRing constructs the ring of degree n modulo q. q must be an NTT-friendly
// prime (q ≡ 1 mod 2n) below 2^58.
func NewRing(n int, q uint64) (*Ring, error) {
	mod, err := NewModulus(q)
	if err != nil {
		return nil, err
	}
	if !IsPrime(q) {
		return nil, fmt.Errorf("ring: modulus %d is not prime", q)
	}
	ntt, err := NewNTT(mod, n)
	if err != nil {
		return nil, err
	}
	return &Ring{N: n, Mod: mod, ntt: ntt}, nil
}

// Poly is a polynomial of degree < n with coefficients in [0, q), stored
// densely. Whether the values are in coefficient or NTT domain is tracked by
// the caller (the he package keeps ciphertexts in coefficient domain at rest).
type Poly struct {
	Coeffs []uint64
}

// NewPoly allocates a zero polynomial for the ring.
func (r *Ring) NewPoly() Poly {
	return Poly{Coeffs: make([]uint64, r.N)}
}

// Copy returns a deep copy of p.
func (p Poly) Copy() Poly {
	c := make([]uint64, len(p.Coeffs))
	copy(c, p.Coeffs)
	return Poly{Coeffs: c}
}

// CopyTo copies p's coefficients into dst, which must have the same length.
func (p Poly) CopyTo(dst Poly) {
	copy(dst.Coeffs, p.Coeffs)
}

// Equal reports whether p and q have identical coefficients.
func (p Poly) Equal(q Poly) bool {
	if len(p.Coeffs) != len(q.Coeffs) {
		return false
	}
	for i, c := range p.Coeffs {
		if c != q.Coeffs[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether all coefficients are zero.
func (p Poly) IsZero() bool {
	for _, c := range p.Coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

// Add sets out = a + b.
func (r *Ring) Add(a, b, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Add(a.Coeffs[i], b.Coeffs[i])
	}
}

// Sub sets out = a - b.
func (r *Ring) Sub(a, b, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Sub(a.Coeffs[i], b.Coeffs[i])
	}
}

// Neg sets out = -a.
func (r *Ring) Neg(a, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Neg(a.Coeffs[i])
	}
}

// AddScalar sets out = a + c (constant term only is wrong for ring addition
// of a scalar embedding; the scalar is added to every slot's constant, i.e.
// only coefficient 0).
func (r *Ring) AddScalar(a Poly, c uint64, out Poly) {
	a.CopyTo(out)
	out.Coeffs[0] = r.Mod.Add(a.Coeffs[0], c%r.Mod.Q)
}

// MulScalar sets out = c * a.
func (r *Ring) MulScalar(a Poly, c uint64, out Poly) {
	mod := r.Mod
	c %= mod.Q
	cs := mod.Shoup(c)
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.MulShoup(a.Coeffs[i], c, cs)
	}
}

// MulScalarAdd sets out += c * a, the fused multiply-accumulate of the
// homomorphic convolution inner loop (no intermediate allocation).
func (r *Ring) MulScalarAdd(a Poly, c uint64, out Poly) {
	mod := r.Mod
	c %= mod.Q
	cs := mod.Shoup(c)
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Add(out.Coeffs[i], mod.MulShoup(a.Coeffs[i], c, cs))
	}
}

// NTT transforms a into the evaluation domain in place.
func (r *Ring) NTT(a Poly) { r.ntt.Forward(a.Coeffs) }

// INTT transforms a back to the coefficient domain in place.
func (r *Ring) INTT(a Poly) { r.ntt.Inverse(a.Coeffs) }

// MulCoeffs sets out = a ⊙ b, the pointwise product of NTT-domain values.
func (r *Ring) MulCoeffs(a, b, out Poly) {
	mod := r.Mod
	for i := range out.Coeffs {
		out.Coeffs[i] = mod.Mul(a.Coeffs[i], b.Coeffs[i])
	}
}

// MulNTT sets out = a * b in R_q using the NTT. a and b are in coefficient
// domain and are not modified.
func (r *Ring) MulNTT(a, b, out Poly) {
	ta, tb := a.Copy(), b.Copy()
	r.NTT(ta)
	r.NTT(tb)
	r.MulCoeffs(ta, tb, out)
	r.INTT(out)
}

// MulNTTLazy multiplies a (coefficient domain) by bNTT (already transformed),
// writing the coefficient-domain product to out. Used for repeated products
// against a fixed operand such as encoded model weights.
func (r *Ring) MulNTTLazy(a, bNTT, out Poly) {
	ta := a.Copy()
	r.NTT(ta)
	r.MulCoeffs(ta, bNTT, out)
	r.INTT(out)
}

// Centered returns the centered representation of a as int64 values in
// (-q/2, q/2].
func (r *Ring) Centered(a Poly) []int64 {
	out := make([]int64, len(a.Coeffs))
	for i, c := range a.Coeffs {
		out[i] = r.Mod.Centered(c)
	}
	return out
}

// MulExactScaleRound computes the FV tensor product of centered operands:
// out = round(scaleNum * (a ⊛ b) / scaleDen) mod q, where ⊛ is negacyclic
// convolution over the integers (no modular wraparound). a and b are given
// in centered int64 form with |coef| <= q/2; the exact intermediate uses
// 128-bit accumulation (see package u128).
func (r *Ring) MulExactScaleRound(a, b []int64, scaleNum, scaleDen uint64, out Poly) {
	n := r.N
	q := r.Mod.Q
	for k := 0; k < n; k++ {
		acc := u128.Int128{}
		// x^k coefficient of negacyclic a*b:
		//   sum_{i<=k} a[i]b[k-i]  -  sum_{i>k} a[i]b[n+k-i]
		for i := 0; i <= k; i++ {
			acc = acc.AddMulInt64(a[i], b[k-i])
		}
		for i := k + 1; i < n; i++ {
			acc = acc.Sub(u128.MulInt64(a[i], b[n+k-i]))
		}
		out.Coeffs[k] = acc.ScaleRoundMod(scaleNum, scaleDen, q)
	}
}

// NegacyclicConvolveInt computes the exact negacyclic convolution of centered
// operands over the integers, returning 128-bit coefficients. It is the
// reference implementation backing MulExactScaleRound and the Karatsuba
// variant's test oracle.
func NegacyclicConvolveInt(a, b []int64) []u128.Int128 {
	n := len(a)
	out := make([]u128.Int128, n)
	for k := 0; k < n; k++ {
		acc := u128.Int128{}
		for i := 0; i <= k; i++ {
			acc = acc.AddMulInt64(a[i], b[k-i])
		}
		for i := k + 1; i < n; i++ {
			acc = acc.Sub(u128.MulInt64(a[i], b[n+k-i]))
		}
		out[k] = acc
	}
	return out
}
