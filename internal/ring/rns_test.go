package ring

import (
	"bytes"
	"math/big"
	mrand "math/rand/v2"
	"math/bits"
	"testing"

	"hesgx/internal/u128"
)

func TestGenerateChainProperties(t *testing.T) {
	for _, n := range []int{1024, 4096} {
		for _, bitLen := range []int{50, 57} {
			chain, err := GenerateChain(bitLen, n, 3)
			if err != nil {
				t.Fatalf("GenerateChain(%d, %d, 3): %v", bitLen, n, err)
			}
			if len(chain) != 3 {
				t.Fatalf("got %d primes, want 3", len(chain))
			}
			if err := ValidateChain(n, chain); err != nil {
				t.Fatalf("generated chain fails its own validation: %v", err)
			}
			wantBits := 0
			for i, q := range chain {
				if bits.Len64(q) != bitLen {
					t.Errorf("prime %d = %d has %d bits, want %d", i, q, bits.Len64(q), bitLen)
				}
				if i > 0 && chain[i-1] <= q {
					t.Errorf("chain not strictly decreasing at %d: %d <= %d", i, chain[i-1], q)
				}
				if (q-1)%uint64(2*n) != 0 {
					t.Errorf("prime %d = %d not ≡ 1 mod %d", i, q, 2*n)
				}
				if !IsPrime(q) {
					t.Errorf("chain element %d = %d is composite", i, q)
				}
				wantBits += bitLen
			}
			if got := ChainBits(chain); got != wantBits {
				t.Errorf("ChainBits = %d, want %d", got, wantBits)
			}
			prod := ChainProduct(chain)
			want := big.NewInt(1)
			for _, q := range chain {
				want.Mul(want, new(big.Int).SetUint64(q))
			}
			if prod.Cmp(want) != 0 {
				t.Errorf("ChainProduct mismatch")
			}
		}
	}
}

func TestGenerateChainHonorsAvoid(t *testing.T) {
	n := 2048
	base, err := GenerateChain(57, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := GenerateChain(57, n, 3, base[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range chain {
		if q == base[0] {
			t.Fatalf("avoid list ignored: %d appears in chain", q)
		}
	}
}

func TestValidateChainRejects(t *testing.T) {
	n := 1024
	good, err := GenerateChain(50, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]uint64{
		"empty":            {},
		"composite":        {good[0], 4097},    // 17·241, ≡ 1 mod 2048 but not prime
		"wrong congruence": {good[0], 1000003}, // prime but not ≡ 1 mod 2048
		"repeat":           {good[0], good[0]},
	}
	for name, chain := range cases {
		if err := ValidateChain(n, chain); err == nil {
			t.Errorf("%s chain accepted", name)
		}
	}
	if err := ValidateChain(1000, good); err == nil {
		t.Error("non-power-of-two degree accepted")
	}
}

// TestRNSRingReconstruct pins the CRT round trip: embedding centered values
// limb-wise and reconstructing recovers them exactly.
func TestRNSRingReconstruct(t *testing.T) {
	n := 64
	chain, err := GenerateChain(57, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRNSRing(n, chain)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(8, 1))
	vals := randCentered(rng, n, 56)
	p := rr.NewRNSPoly()
	rr.SetCentered(vals, p)
	got := new(big.Int)
	for i, v := range vals {
		rr.ReconstructBig(p, i, got)
		if got.Int64() != v {
			t.Fatalf("coeff %d: reconstructed %v, want %d", i, got, v)
		}
	}
}

// TestRNSReconstructMatchesU128Garner cross-checks the two CRT
// reconstructions on the same residues: the RNS ring's big-integer
// reconstruction and the u128 Garner path inside TensorMultiplier must
// agree on every value below the 2^127 lift bound.
func TestRNSReconstructMatchesU128Garner(t *testing.T) {
	n := 64
	tm, err := NewTensorMultiplier(n)
	if err != nil {
		t.Fatal(err)
	}
	chain := []uint64{tm.mods[0].Q, tm.mods[1].Q, tm.mods[2].Q}
	rr, err := NewRNSRing(16, chain)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(9, 2))
	p := rr.NewRNSPoly()
	want := new(big.Int)
	got := new(big.Int)
	for trial := 0; trial < 200; trial++ {
		// Random y < 2^126 (the magnitude both reconstructions must cover).
		y := u128.Uint128{Hi: rng.Uint64() & ((1 << 62) - 1), Lo: rng.Uint64()}
		r1, r2, r3 := y.Mod64(chain[0]), y.Mod64(chain[1]), y.Mod64(chain[2])
		g := tm.garner(r1, r2, r3)
		if g != y {
			t.Fatalf("trial %d: u128 garner %+v != input %+v", trial, g, y)
		}
		p.Limbs[0].Coeffs[0], p.Limbs[1].Coeffs[0], p.Limbs[2].Coeffs[0] = r1, r2, r3
		rr.ReconstructBig(p, 0, got)
		want.SetUint64(y.Hi)
		want.Lsh(want, 64)
		want.Or(want, new(big.Int).SetUint64(y.Lo))
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: rns reconstruct %v != garner %v", trial, got, want)
		}
	}
}

// TestExtendCenteredFromLast checks the exact basis extension: residues of
// the last limb, read centered, land on the correct residues of every other
// limb.
func TestExtendCenteredFromLast(t *testing.T) {
	n := 64
	q, err := GenerateNTTPrime(58, n)
	if err != nil {
		t.Fatal(err)
	}
	aux, err := GenerateChain(57, n, 3, q)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRNSRing(n, append(aux, q))
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(3, 4))
	p := rr.GetRNSPoly()
	defer rr.PutRNSPoly(p)
	last := rr.Limbs[3].Mod
	for i := 0; i < n; i++ {
		p.Limbs[3].Coeffs[i] = rng.Uint64() % q
	}
	rr.ExtendCenteredFromLast(p)
	for j := 0; j < 3; j++ {
		m := rr.Limbs[j].Mod
		for i := 0; i < n; i++ {
			want := m.FromCentered(last.Centered(p.Limbs[3].Coeffs[i]) % int64(m.Q))
			if p.Limbs[j].Coeffs[i] != want {
				t.Fatalf("limb %d coeff %d: got %d, want %d", j, i, p.Limbs[j].Coeffs[i], want)
			}
		}
	}
}

// TestDivRoundByLastModulus pins the scaled rounding against exact
// big-integer arithmetic: out = floor((v + floor(q/2)) / q) for the
// centered value v of every coefficient.
func TestDivRoundByLastModulus(t *testing.T) {
	n := 64
	chain, err := GenerateChain(57, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRNSRing(n, chain)
	if err != nil {
		t.Fatal(err)
	}
	outRing, err := NewRNSRing(n, chain[:3])
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(5, 6))
	vals := randCentered(rng, n, 62)
	vals[0], vals[1], vals[2] = 0, 1, -1 // rounding boundary spot checks
	p := rr.NewRNSPoly()
	rr.SetCentered(vals, p)
	out := outRing.NewRNSPoly()
	rr.DivRoundByLastModulus(p, out)

	qLast := new(big.Int).SetUint64(chain[3])
	half := new(big.Int).Rsh(qLast, 1)
	got := new(big.Int)
	want := new(big.Int)
	for i, v := range vals {
		want.SetInt64(v)
		want.Add(want, half)
		// big.Int Div is floor division, matching the rounding identity.
		want.Div(want, qLast)
		outRing.ReconstructBig(out, i, got)
		if got.Cmp(want) != 0 {
			t.Fatalf("coeff %d (v=%d): got %v, want %v", i, v, got, want)
		}
	}
}

func TestRNSKernelsMatchPerLimb(t *testing.T) {
	n := 32
	chain, err := GenerateChain(50, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRNSRing(n, chain)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(7, 8))
	a, b := rr.NewRNSPoly(), rr.NewRNSPoly()
	for j, r := range rr.Limbs {
		for i := 0; i < n; i++ {
			a.Limbs[j].Coeffs[i] = rng.Uint64() % r.Mod.Q
			b.Limbs[j].Coeffs[i] = rng.Uint64() % r.Mod.Q
		}
	}
	got, want := rr.NewRNSPoly(), rr.NewRNSPoly()
	rr.Add(a, b, got)
	for j, r := range rr.Limbs {
		r.Add(a.Limbs[j], b.Limbs[j], want.Limbs[j])
	}
	if !got.Equal(want) {
		t.Fatal("RNS Add disagrees with per-limb Add")
	}
	rr.MulCoeffs(a, b, got)
	for j, r := range rr.Limbs {
		r.MulCoeffs(a.Limbs[j], b.Limbs[j], want.Limbs[j])
	}
	if !got.Equal(want) {
		t.Fatal("RNS MulCoeffs disagrees with per-limb MulCoeffs")
	}
	// NTT/INTT round trip limb-wise.
	c := rr.NewRNSPoly()
	for j := range c.Limbs {
		a.Limbs[j].CopyTo(c.Limbs[j])
	}
	rr.NTT(c)
	rr.INTT(c)
	if !c.Equal(a) {
		t.Fatal("RNS NTT/INTT round trip changed coefficients")
	}
}

func TestRNSPolySerializeRoundTrip(t *testing.T) {
	n := 128
	chain, err := GenerateChain(57, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRNSRing(n, chain)
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewPCG(11, 12))
	p := rr.NewRNSPoly()
	for j, r := range rr.Limbs {
		for i := 0; i < n; i++ {
			p.Limbs[j].Coeffs[i] = rng.Uint64() % r.Mod.Q
		}
	}
	var buf bytes.Buffer
	if err := WriteRNSPolyPacked(&buf, p, chain); err != nil {
		t.Fatal(err)
	}
	// Packed limbs must beat the legacy 8-byte layout.
	legacy := len(chain) * (4 + 8*n)
	if buf.Len() >= legacy {
		t.Errorf("packed rns frame %dB not smaller than legacy %dB", buf.Len(), legacy)
	}
	got, gotChain, err := ReadRNSPolyPacked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotChain) != len(chain) {
		t.Fatalf("chain length %d, want %d", len(gotChain), len(chain))
	}
	for i := range chain {
		if gotChain[i] != chain[i] {
			t.Fatalf("chain[%d] = %d, want %d", i, gotChain[i], chain[i])
		}
	}
	if !got.Equal(p) {
		t.Fatal("rns poly round trip changed coefficients")
	}
}

func TestRNSPolySerializeRejects(t *testing.T) {
	var buf bytes.Buffer
	p := RNSPoly{Limbs: []Poly{{Coeffs: []uint64{1, 2}}}}
	if err := WriteRNSPolyPacked(&buf, p, []uint64{17, 19}); err == nil {
		t.Error("limb/chain mismatch accepted")
	}
	if err := WriteRNSPolyPacked(&buf, RNSPoly{}, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, _, err := ReadRNSPolyPacked(bytes.NewReader([]byte{0})); err == nil {
		t.Error("zero limb count accepted")
	}
	if _, _, err := ReadRNSPolyPacked(bytes.NewReader([]byte{maxRNSLimbs + 1})); err == nil {
		t.Error("oversized limb count accepted")
	}
}

// FuzzReadRNSPolyPacked feeds hostile bytes to the limb-poly decoder: it
// must error or return a fully validated poly (residues in range, uniform
// degree), never panic, and accepted frames must round-trip stably.
func FuzzReadRNSPolyPacked(f *testing.F) {
	p := RNSPoly{Limbs: []Poly{
		{Coeffs: []uint64{0, 1, 15, 7}},
		{Coeffs: []uint64{3, 0, 11, 12}},
	}}
	var good bytes.Buffer
	if err := WriteRNSPolyPacked(&good, p, []uint64{17, 13}); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{0xFF})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 17, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, chain, err := ReadRNSPolyPacked(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(got.Limbs) == 0 || len(got.Limbs) > maxRNSLimbs || len(got.Limbs) != len(chain) {
			t.Fatalf("decoder accepted inconsistent limb count %d (chain %d)", len(got.Limbs), len(chain))
		}
		for j, limb := range got.Limbs {
			if len(limb.Coeffs) != len(got.Limbs[0].Coeffs) {
				t.Fatal("decoder accepted ragged limb degrees")
			}
			for i, c := range limb.Coeffs {
				if c >= chain[j] {
					t.Fatalf("limb %d coeff %d = %d ≥ modulus %d", j, i, c, chain[j])
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteRNSPolyPacked(&buf, got, chain); err != nil {
			t.Fatalf("re-encoding accepted poly: %v", err)
		}
		again, chain2, err := ReadRNSPolyPacked(&buf)
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if !again.Equal(got) {
			t.Fatal("re-encode round trip changed coefficients")
		}
		for i := range chain {
			if chain2[i] != chain[i] {
				t.Fatal("re-encode round trip changed chain")
			}
		}
	})
}
