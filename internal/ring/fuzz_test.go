package ring

import (
	"bytes"
	"testing"
)

// FuzzReadPolyPacked feeds hostile bytes to the packed-poly decoder: it must
// return an error or a valid poly, never panic, and never allocate beyond
// the bounded maxPolyDegree regardless of the claimed length prefix.
func FuzzReadPolyPacked(f *testing.F) {
	// Seed with a well-formed packed poly at a realistic width.
	p := Poly{Coeffs: []uint64{0, 1, (1 << 46) - 1, 12345, 0, 7, 1 << 40, 3}}
	var good bytes.Buffer
	if err := WritePolyPacked(&good, p, 46); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes(), 46)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 46)      // hostile length
	f.Add([]byte{0, 0, 0, 0}, 46)                  // zero coeffs
	f.Add([]byte{8, 0, 0, 0, 1, 2, 3}, 1)          // truncated body
	f.Add(good.Bytes(), 63)                        // wrong width for the data
	f.Add(good.Bytes(), 0)                         // invalid width
	f.Fuzz(func(t *testing.T, data []byte, width int) {
		got, err := ReadPolyPacked(bytes.NewReader(data), width)
		if err != nil {
			return
		}
		if len(got.Coeffs) == 0 || len(got.Coeffs) > maxPolyDegree {
			t.Fatalf("decoder accepted out-of-bounds degree %d", len(got.Coeffs))
		}
		limit := uint64(1) << uint(width)
		for i, c := range got.Coeffs {
			if c >= limit {
				t.Fatalf("coeff %d = %d exceeds width %d", i, c, width)
			}
		}
		// Accepted polys must re-encode to a decodable form (round-trip
		// stability of the accepted subset).
		var buf bytes.Buffer
		if err := WritePolyPacked(&buf, got, width); err != nil {
			t.Fatalf("re-encoding accepted poly: %v", err)
		}
		again, err := ReadPolyPacked(&buf, width)
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if !again.Equal(got) {
			t.Fatal("re-encode round trip changed coefficients")
		}
	})
}
