package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Model serialization: a tagged binary format holding the architecture and
// all weights, so trained models can move between the trainer, the server,
// and tests.

const modelMagic = uint32(0x4E4E4D31) // "NNM1"

// Layer type tags in the serialized format.
const (
	tagConv2D = uint8(1)
	tagFC     = uint8(2)
	tagPool   = uint8(3)
	tagAct    = uint8(4)
	tagFlat   = uint8(5)
)

// Save writes the network to w.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, modelMagic); err != nil {
		return fmt.Errorf("nn: save magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(n.Layers))); err != nil {
		return fmt.Errorf("nn: save layer count: %w", err)
	}
	for i, l := range n.Layers {
		if err := saveLayer(bw, l); err != nil {
			return fmt.Errorf("nn: save layer %d (%s): %w", i, l.Name(), err)
		}
	}
	return bw.Flush()
}

func saveLayer(w io.Writer, l Layer) error {
	switch v := l.(type) {
	case *Conv2D:
		if err := writeVals(w, tagConv2D, uint32(v.InC), uint32(v.OutC), uint32(v.K), uint32(v.Stride)); err != nil {
			return err
		}
		if err := writeFloats(w, v.Weight.W.Data); err != nil {
			return err
		}
		return writeFloats(w, v.Bias.W.Data)
	case *FullyConnected:
		if err := writeVals(w, tagFC, uint32(v.In), uint32(v.Out)); err != nil {
			return err
		}
		if err := writeFloats(w, v.Weight.W.Data); err != nil {
			return err
		}
		return writeFloats(w, v.Bias.W.Data)
	case *Pool2D:
		return writeVals(w, tagPool, uint32(v.Kind), uint32(v.K))
	case *Activation:
		return writeVals(w, tagAct, uint32(v.Kind))
	case *Flatten:
		return writeVals(w, tagFlat)
	default:
		return fmt.Errorf("unsupported layer type %T", l)
	}
}

func writeVals(w io.Writer, vals ...any) error {
	for _, v := range vals {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeFloats(w io.Writer, xs []float64) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(xs))); err != nil {
		return err
	}
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	_, err := w.Write(buf)
	return err
}

// maxModelFloats bounds a single weight blob during deserialization.
const maxModelFloats = 64 << 20

func readFloats(r io.Reader) ([]float64, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxModelFloats {
		return nil, fmt.Errorf("implausible float count %d", n)
	}
	buf := make([]byte, 8*int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// Load reads a network saved by Save.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("nn: load magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("nn: bad model magic %#x", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("nn: load layer count: %w", err)
	}
	if count > 1024 {
		return nil, fmt.Errorf("nn: implausible layer count %d", count)
	}
	net := &Network{}
	for i := 0; i < int(count); i++ {
		l, err := loadLayer(br)
		if err != nil {
			return nil, fmt.Errorf("nn: load layer %d: %w", i, err)
		}
		net.Layers = append(net.Layers, l)
	}
	return net, nil
}

func loadLayer(r io.Reader) (Layer, error) {
	var tag uint8
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, err
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	switch tag {
	case tagConv2D:
		var dims [4]uint32
		for i := range dims {
			v, err := readU32()
			if err != nil {
				return nil, err
			}
			dims[i] = v
		}
		inC, outC, k, stride := int(dims[0]), int(dims[1]), int(dims[2]), int(dims[3])
		if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || inC > 1<<12 || outC > 1<<12 || k > 1<<10 {
			return nil, fmt.Errorf("invalid conv dims %v", dims)
		}
		c := NewConv2D(inC, outC, k, stride, nil)
		w, err := readFloats(r)
		if err != nil {
			return nil, err
		}
		b, err := readFloats(r)
		if err != nil {
			return nil, err
		}
		if len(w) != outC*inC*k*k || len(b) != outC {
			return nil, fmt.Errorf("conv weight sizes %d/%d mismatch dims", len(w), len(b))
		}
		copy(c.Weight.W.Data, w)
		copy(c.Bias.W.Data, b)
		return c, nil
	case tagFC:
		inN, err := readU32()
		if err != nil {
			return nil, err
		}
		outN, err := readU32()
		if err != nil {
			return nil, err
		}
		if inN == 0 || outN == 0 || inN > 1<<24 || outN > 1<<20 {
			return nil, fmt.Errorf("invalid fc dims %dx%d", inN, outN)
		}
		f := NewFullyConnected(int(inN), int(outN), nil)
		w, err := readFloats(r)
		if err != nil {
			return nil, err
		}
		b, err := readFloats(r)
		if err != nil {
			return nil, err
		}
		if len(w) != int(inN*outN) || len(b) != int(outN) {
			return nil, fmt.Errorf("fc weight sizes mismatch")
		}
		copy(f.Weight.W.Data, w)
		copy(f.Bias.W.Data, b)
		return f, nil
	case tagPool:
		kind, err := readU32()
		if err != nil {
			return nil, err
		}
		k, err := readU32()
		if err != nil {
			return nil, err
		}
		if k == 0 || k > 1<<10 {
			return nil, fmt.Errorf("invalid pool window %d", k)
		}
		pk := PoolKind(kind)
		if pk != MeanPool && pk != MaxPool && pk != SumPool {
			return nil, fmt.Errorf("invalid pool kind %d", kind)
		}
		return NewPool2D(pk, int(k)), nil
	case tagAct:
		kind, err := readU32()
		if err != nil {
			return nil, err
		}
		ak := ActKind(kind)
		switch ak {
		case Sigmoid, ReLU, Tanh, LeakyReLU, Square:
			return NewActivation(ak), nil
		default:
			return nil, fmt.Errorf("invalid activation kind %d", kind)
		}
	case tagFlat:
		return &Flatten{}, nil
	default:
		return nil, fmt.Errorf("unknown layer tag %d", tag)
	}
}

// SaveFile writes the model to path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create %s: %w", path, err)
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("nn: sync %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
