package nn

import (
	"math"
	mrand "math/rand/v2"
)

// Layer is one stage of a network. Forward consumes the previous
// activation; Backward consumes dL/d(output), accumulates parameter
// gradients, and returns dL/d(input).
type Layer interface {
	Name() string
	Forward(in *Tensor) (*Tensor, error)
	Backward(grad *Tensor) (*Tensor, error)
	Params() []*Param
}

// Param couples a weight tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *Tensor
	Grad *Tensor
}

// zeroGrad clears the accumulated gradient.
func (p *Param) zeroGrad() {
	for i := range p.Grad.Data {
		p.Grad.Data[i] = 0
	}
}

// initUniform fills w with Glorot-style uniform values.
func initUniform(w *Tensor, fanIn, fanOut int, rng *mrand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}
