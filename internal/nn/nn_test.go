package nn

import (
	"bytes"
	"math"
	mrand "math/rand/v2"
	"testing"
)

func rng(seed uint64) *mrand.Rand {
	return mrand.New(mrand.NewPCG(seed, seed^0xabcdef))
}

func randTensor(r *mrand.Rand, shape ...int) *Tensor {
	t := NewTensor(shape...)
	for i := range t.Data {
		t.Data[i] = r.Float64()*2 - 1
	}
	return t
}

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d", x.Len())
	}
	x.Set3(1, 2, 3, 7)
	if x.At3(1, 2, 3) != 7 {
		t.Fatal("At3/Set3 mismatch")
	}
	c := x.Clone()
	c.Data[0] = 99
	if x.Data[0] == 99 {
		t.Fatal("Clone aliases data")
	}
	if !x.SameShape(c) {
		t.Fatal("clone shape differs")
	}
	if x.SameShape(NewTensor(2, 3)) {
		t.Fatal("different rank considered same shape")
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
	x, err := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x.Data[3] != 4 {
		t.Fatal("data not adopted")
	}
}

func TestArgMax(t *testing.T) {
	x, _ := FromSlice([]float64{1, 5, 3, 5}, 4)
	if got := x.ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of ties)", got)
	}
}

func TestMaxAbsAndScale(t *testing.T) {
	x, _ := FromSlice([]float64{-3, 2}, 2)
	if x.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %g", x.MaxAbs())
	}
	x.Scale(2)
	if x.Data[0] != -6 || x.Data[1] != 4 {
		t.Fatal("Scale wrong")
	}
}

func TestAddInPlace(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2}, 2)
	b, _ := FromSlice([]float64{10, 20}, 2)
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.Data[0] != 11 || a.Data[1] != 22 {
		t.Fatal("AddInPlace wrong")
	}
	if err := a.AddInPlace(NewTensor(3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestConvForwardKnownValues(t *testing.T) {
	c := NewConv2D(1, 1, 2, 1, nil)
	// Kernel [[1, 2], [3, 4]], bias 10.
	copy(c.Weight.W.Data, []float64{1, 2, 3, 4})
	c.Bias.W.Data[0] = 10
	in, _ := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	// window (0,0): 1*1+2*2+3*4+4*5 = 37 +10 = 47
	want := []float64{47, 57, 77, 87}
	for i, w := range want {
		if math.Abs(out.Data[i]-w) > 1e-12 {
			t.Fatalf("out[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
	if out.Shape[0] != 1 || out.Shape[1] != 2 || out.Shape[2] != 2 {
		t.Fatalf("out shape %v", out.Shape)
	}
}

func TestConvStride(t *testing.T) {
	c := NewConv2D(1, 1, 2, 2, nil)
	copy(c.Weight.W.Data, []float64{1, 1, 1, 1})
	in := NewTensor(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = 1
	}
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[1] != 2 || out.Shape[2] != 2 {
		t.Fatalf("stride-2 out shape %v", out.Shape)
	}
	for _, v := range out.Data {
		if v != 4 {
			t.Fatalf("stride conv value %g", v)
		}
	}
}

func TestConvRejectsBadInput(t *testing.T) {
	c := NewConv2D(2, 1, 3, 1, nil)
	if _, err := c.Forward(NewTensor(1, 5, 5)); err == nil {
		t.Fatal("wrong channel count accepted")
	}
	if _, err := c.Forward(NewTensor(2, 2, 2)); err == nil {
		t.Fatal("kernel larger than input accepted")
	}
	if _, err := c.Backward(NewTensor(1, 1, 1)); err == nil {
		t.Fatal("backward before forward accepted")
	}
}

func TestFullyConnectedKnownValues(t *testing.T) {
	f := NewFullyConnected(3, 2, nil)
	copy(f.Weight.W.Data, []float64{1, 2, 3, 4, 5, 6})
	f.Bias.W.Data[0] = 0.5
	in, _ := FromSlice([]float64{1, 1, 1}, 3)
	out, err := f.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Data[0]-6.5) > 1e-12 || math.Abs(out.Data[1]-15) > 1e-12 {
		t.Fatalf("fc out %v", out.Data)
	}
}

func TestPoolForward(t *testing.T) {
	in, _ := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	tests := []struct {
		kind PoolKind
		want []float64
	}{
		{MeanPool, []float64{3.5, 5.5, 11.5, 13.5}},
		{MaxPool, []float64{6, 8, 14, 16}},
		{SumPool, []float64{14, 22, 46, 54}},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			p := NewPool2D(tt.kind, 2)
			out, err := p.Forward(in)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range tt.want {
				if math.Abs(out.Data[i]-w) > 1e-12 {
					t.Fatalf("out[%d] = %g, want %g", i, out.Data[i], w)
				}
			}
		})
	}
}

func TestPoolRejectsIndivisible(t *testing.T) {
	p := NewPool2D(MeanPool, 3)
	if _, err := p.Forward(NewTensor(1, 4, 4)); err == nil {
		t.Fatal("indivisible pool accepted")
	}
}

func TestSumPoolMagnification(t *testing.T) {
	// The scaled mean-pool magnifies outputs by k^2 relative to mean-pool,
	// the numerical diffusion §III-A describes.
	in := randTensor(rng(3), 1, 4, 4)
	mean, _ := NewPool2D(MeanPool, 2).Forward(in)
	sum, _ := NewPool2D(SumPool, 2).Forward(in)
	for i := range mean.Data {
		if math.Abs(sum.Data[i]-4*mean.Data[i]) > 1e-12 {
			t.Fatalf("sum != 4*mean at %d", i)
		}
	}
}

func TestActivationValues(t *testing.T) {
	tests := []struct {
		kind ActKind
		in   float64
		want float64
	}{
		{Sigmoid, 0, 0.5},
		{ReLU, -2, 0},
		{ReLU, 3, 3},
		{Tanh, 0, 0},
		{LeakyReLU, -1, -0.01},
		{LeakyReLU, 2, 2},
		{Square, -3, 9},
	}
	for _, tt := range tests {
		if got := tt.kind.Apply(tt.in); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("%v(%g) = %g, want %g", tt.kind, tt.in, got, tt.want)
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits, _ := FromSlice([]float64{1, 2, 3}, 3)
	loss, grad, err := SoftmaxCrossEntropy(logits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss = %g", loss)
	}
	// Gradient sums to zero.
	sum := 0.0
	for _, g := range grad.Data {
		sum += g
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("grad sum = %g", sum)
	}
	if _, _, err := SoftmaxCrossEntropy(logits, 5); err == nil {
		t.Fatal("bad target accepted")
	}
}

// numericalGradCheck compares analytic parameter gradients of a layer stack
// against finite differences.
func numericalGradCheck(t *testing.T, net *Network, in *Tensor, target int) {
	t.Helper()
	logits, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := SoftmaxCrossEntropy(logits, target)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Params() {
		p.zeroGrad()
	}
	if err := net.backward(grad); err != nil {
		t.Fatal(err)
	}
	lossAt := func() float64 {
		logits, err := net.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		loss, _, err := SoftmaxCrossEntropy(logits, target)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	const eps = 1e-5
	for _, p := range net.Params() {
		// Check a sample of coordinates to keep the test fast.
		step := len(p.W.Data)/7 + 1
		for i := 0; i < len(p.W.Data); i += step {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			up := lossAt()
			p.W.Data[i] = orig - eps
			down := lossAt()
			p.W.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestGradCheckConvSigmoidPoolFC(t *testing.T) {
	r := rng(11)
	net := NewNetwork(
		NewConv2D(1, 2, 3, 1, r),
		NewActivation(Sigmoid),
		NewPool2D(MeanPool, 2),
		&Flatten{},
		NewFullyConnected(2*3*3, 4, r),
	)
	in := randTensor(r, 1, 8, 8)
	numericalGradCheck(t, net, in, 1)
}

func TestGradCheckSquareSumPool(t *testing.T) {
	r := rng(12)
	net := NewNetwork(
		NewConv2D(1, 2, 3, 1, r),
		NewActivation(Square),
		NewPool2D(SumPool, 2),
		&Flatten{},
		NewFullyConnected(2*3*3, 3, r),
	)
	in := randTensor(r, 1, 8, 8)
	numericalGradCheck(t, net, in, 2)
}

func TestGradCheckMaxPoolReLUTanh(t *testing.T) {
	r := rng(13)
	net := NewNetwork(
		NewConv2D(1, 2, 3, 1, r),
		NewActivation(ReLU),
		NewPool2D(MaxPool, 2),
		&Flatten{},
		NewFullyConnected(2*3*3, 3, r),
		NewActivation(Tanh),
	)
	in := randTensor(r, 1, 8, 8)
	numericalGradCheck(t, net, in, 0)
}

func TestGradCheckLeakyReLU(t *testing.T) {
	r := rng(14)
	net := NewNetwork(
		NewFullyConnected(6, 4, r),
		NewActivation(LeakyReLU),
		NewFullyConnected(4, 3, r),
	)
	in := randTensor(r, 6)
	numericalGradCheck(t, net, in, 1)
}

func TestTrainingLearnsToyProblem(t *testing.T) {
	// Learn a linearly separable 2-class problem with a small MLP.
	r := rng(21)
	var examples []Example
	for i := 0; i < 200; i++ {
		x := randTensor(r, 4)
		label := 0
		if x.Data[0]+x.Data[1]-x.Data[2] > 0 {
			label = 1
		}
		examples = append(examples, Example{Input: x, Label: label})
	}
	net := NewNetwork(
		NewFullyConnected(4, 8, r),
		NewActivation(Tanh),
		NewFullyConnected(8, 2, r),
	)
	trainer := &SGD{LR: 0.5, BatchSize: 8}
	var lastLoss float64
	for epoch := 0; epoch < 30; epoch++ {
		loss, err := trainer.TrainEpoch(net, examples)
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = loss
	}
	acc, err := Accuracy(net, examples)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("training accuracy %.2f (loss %.3f)", acc, lastLoss)
	}
}

func TestPaperCNNShapes(t *testing.T) {
	// Table VI: 1×28×28 -> conv -> 6×24×24 -> sigmoid -> 6×24×24 ->
	// pool -> 6×12×12 -> fc -> 10.
	net := PaperCNN(rng(31))
	in := NewTensor(1, 28, 28)
	x := in
	wantShapes := [][]int{
		{6, 24, 24},
		{6, 24, 24},
		{6, 12, 12},
		{864},
		{10},
	}
	for i, l := range net.Layers {
		var err error
		x, err = l.Forward(x)
		if err != nil {
			t.Fatalf("layer %d: %v", i, err)
		}
		want := wantShapes[i]
		if len(x.Shape) != len(want) {
			t.Fatalf("layer %d shape %v, want %v", i, x.Shape, want)
		}
		for j := range want {
			if x.Shape[j] != want[j] {
				t.Fatalf("layer %d shape %v, want %v", i, x.Shape, want)
			}
		}
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	r := rng(41)
	net := PaperCNN(r)
	in := randTensor(r, 1, 28, 28)
	wantOut, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotOut, err := got.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantOut.Data {
		if wantOut.Data[i] != gotOut.Data[i] {
			t.Fatalf("output %d differs after roundtrip", i)
		}
	}
}

func TestModelLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	net := NewNetwork(&Flatten{})
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[0] ^= 0xFF
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupted magic accepted")
	}
}

func TestQuantizedConvMatchesFloat(t *testing.T) {
	r := rng(51)
	c := NewConv2D(1, 3, 5, 1, r)
	const scale = 1 << 10
	q, err := QuantizeConv(c, scale, 255)
	if err != nil {
		t.Fatal(err)
	}
	img := randTensor(r, 1, 12, 12)
	for i := range img.Data {
		img.Data[i] = math.Abs(img.Data[i]) // pixels in [0, 1]
	}
	floatOut, err := c.Forward(img)
	if err != nil {
		t.Fatal(err)
	}
	intIn := QuantizeImage(img, 255)
	intOut, oh, ow, err := q.Forward(intIn, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	if oh != 8 || ow != 8 {
		t.Fatalf("quantized out %dx%d", oh, ow)
	}
	outScale := scale * 255.0
	for i := range intOut {
		approx := float64(intOut[i]) / outScale
		if math.Abs(approx-floatOut.Data[i]) > 0.05 {
			t.Fatalf("element %d: quantized %g vs float %g", i, approx, floatOut.Data[i])
		}
	}
}

func TestQuantizedFCMatchesFloat(t *testing.T) {
	r := rng(52)
	f := NewFullyConnected(20, 5, r)
	const scale = 1 << 12
	q, err := QuantizeFC(f, scale, 1000)
	if err != nil {
		t.Fatal(err)
	}
	in := randTensor(r, 20)
	floatOut, err := f.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	intIn := make([]int64, 20)
	for i, v := range in.Data {
		intIn[i] = int64(math.Round(v * 1000))
	}
	intOut, err := q.Forward(intIn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range intOut {
		approx := float64(intOut[i]) / (scale * 1000)
		if math.Abs(approx-floatOut.Data[i]) > 0.02 {
			t.Fatalf("element %d: quantized %g vs float %g", i, approx, floatOut.Data[i])
		}
	}
}

func TestQuantizedArgmaxPreserved(t *testing.T) {
	// The key §VII-B property: quantization at reasonable scales preserves
	// the predicted class.
	r := rng(53)
	f := NewFullyConnected(10, 4, r)
	q, err := QuantizeFC(f, 1<<14, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		in := randTensor(r, 10)
		floatOut, _ := f.Forward(in)
		intIn := make([]int64, 10)
		for i, v := range in.Data {
			intIn[i] = int64(math.Round(v * (1 << 10)))
		}
		intOut, _ := q.Forward(intIn)
		intArg, intBest := 0, int64(math.MinInt64)
		for i, v := range intOut {
			if v > intBest {
				intArg, intBest = i, v
			}
		}
		if intArg != floatOut.ArgMax() {
			t.Fatalf("trial %d: quantized argmax %d != float %d", trial, intArg, floatOut.ArgMax())
		}
	}
}

func TestMaxOutputMagnitudeBounds(t *testing.T) {
	r := rng(54)
	c := NewConv2D(1, 2, 3, 1, r)
	q, _ := QuantizeConv(c, 100, 255)
	bound := q.MaxOutputMagnitude(255)
	in := make([]int64, 64)
	for i := range in {
		in[i] = 255
	}
	out, _, _, err := q.Forward(in, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if abs64(v) > bound {
			t.Fatalf("output %d exceeds bound %d", v, bound)
		}
	}
}

func TestQuantizeRejectsBadScale(t *testing.T) {
	c := NewConv2D(1, 1, 2, 1, nil)
	if _, err := QuantizeConv(c, 0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	f := NewFullyConnected(2, 2, nil)
	if _, err := QuantizeFC(f, 1, -1); err == nil {
		t.Fatal("negative input scale accepted")
	}
}

func TestMomentumSGDLearnsFaster(t *testing.T) {
	// With momentum, the same toy problem should reach a lower loss in the
	// same number of epochs (deterministic data and init, so comparable).
	makeData := func() []Example {
		r := rng(91)
		var examples []Example
		for i := 0; i < 150; i++ {
			x := randTensor(r, 4)
			label := 0
			if x.Data[0]-x.Data[3] > 0.1 {
				label = 1
			}
			examples = append(examples, Example{Input: x, Label: label})
		}
		return examples
	}
	train := func(momentum float64) float64 {
		r := rng(92)
		net := NewNetwork(
			NewFullyConnected(4, 8, r),
			NewActivation(Tanh),
			NewFullyConnected(8, 2, r),
		)
		trainer := &SGD{LR: 0.05, BatchSize: 8, Momentum: momentum}
		examples := makeData()
		var loss float64
		for epoch := 0; epoch < 10; epoch++ {
			var err error
			loss, err = trainer.TrainEpoch(net, examples)
			if err != nil {
				t.Fatal(err)
			}
		}
		return loss
	}
	plain := train(0)
	momentum := train(0.9)
	if momentum >= plain {
		t.Fatalf("momentum loss %.4f not better than plain %.4f", momentum, plain)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	r := rng(93)
	var examples []Example
	for i := 0; i < 50; i++ {
		examples = append(examples, Example{Input: randTensor(r, 4), Label: i % 2})
	}
	norm := func(decay float64) float64 {
		rr := rng(94)
		net := NewNetwork(NewFullyConnected(4, 2, rr))
		trainer := &SGD{LR: 0.1, BatchSize: 8, WeightDecay: decay}
		for epoch := 0; epoch < 20; epoch++ {
			if _, err := trainer.TrainEpoch(net, examples); err != nil {
				t.Fatal(err)
			}
		}
		total := 0.0
		for _, p := range net.Params() {
			for _, w := range p.W.Data {
				total += w * w
			}
		}
		return total
	}
	if decayed, plain := norm(0.1), norm(0); decayed >= plain {
		t.Fatalf("weight decay did not shrink weights: %.4f vs %.4f", decayed, plain)
	}
}
