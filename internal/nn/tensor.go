// Package nn implements the plaintext CNN substrate the paper's framework
// evaluates: tensors, the four layer families of §II-A (convolutional,
// pooling, fully connected, activation), forward inference, SGD
// backpropagation training, model serialization, and fixed-point
// quantization for the homomorphic pipeline.
package nn

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 tensor. CNN activations use the shape
// convention [channels, height, width]; vectors use [n].
type Tensor struct {
	Shape []int
	Data  []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("nn: invalid dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice builds a tensor that adopts data (not copied).
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		return nil, fmt.Errorf("nn: %d values do not fill shape %v", len(data), shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}, nil
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// At3 reads element (c, y, x) of a [C, H, W] tensor.
func (t *Tensor) At3(c, y, x int) float64 {
	return t.Data[(c*t.Shape[1]+y)*t.Shape[2]+x]
}

// Set3 writes element (c, y, x) of a [C, H, W] tensor.
func (t *Tensor) Set3(c, y, x int, v float64) {
	t.Data[(c*t.Shape[1]+y)*t.Shape[2]+x] = v
}

// ArgMax returns the index of the largest element (first on ties).
func (t *Tensor) ArgMax() int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range t.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every element in place.
func (t *Tensor) Scale(f float64) {
	for i := range t.Data {
		t.Data[i] *= f
	}
}

// AddInPlace adds o element-wise; shapes must match.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("nn: shape mismatch %v vs %v", t.Shape, o.Shape)
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
	return nil
}
