package nn

import (
	"fmt"
	mrand "math/rand/v2"
)

// Conv2D is a valid (no padding) 2D convolution with square kernels, the
// first layer family of §II-A. Weights have shape
// [outC, inC, k, k]; bias has shape [outC].
type Conv2D struct {
	InC, OutC int
	K         int
	Stride    int

	Weight *Param
	Bias   *Param

	lastIn *Tensor
}

// NewConv2D builds a convolution layer with Glorot-initialized weights.
func NewConv2D(inC, outC, k, stride int, rng *mrand.Rand) *Conv2D {
	w := NewTensor(outC, inC, k, k)
	if rng != nil {
		initUniform(w, inC*k*k, outC*k*k, rng)
	}
	return &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride,
		Weight: &Param{Name: "conv.weight", W: w, Grad: NewTensor(outC, inC, k, k)},
		Bias:   &Param{Name: "conv.bias", W: NewTensor(outC), Grad: NewTensor(outC)},
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutSize returns the output spatial size for an input of spatial size in.
func (c *Conv2D) OutSize(in int) int {
	return (in-c.K)/c.Stride + 1
}

func (c *Conv2D) wAt(o, i, ky, kx int) float64 {
	return c.Weight.W.Data[((o*c.InC+i)*c.K+ky)*c.K+kx]
}

// Forward implements Layer.
func (c *Conv2D) Forward(in *Tensor) (*Tensor, error) {
	if len(in.Shape) != 3 || in.Shape[0] != c.InC {
		return nil, fmt.Errorf("nn: conv2d expects [%d, h, w], got %v", c.InC, in.Shape)
	}
	h, w := in.Shape[1], in.Shape[2]
	if h < c.K || w < c.K {
		return nil, fmt.Errorf("nn: conv2d kernel %d exceeds input %dx%d", c.K, h, w)
	}
	oh, ow := c.OutSize(h), c.OutSize(w)
	out := NewTensor(c.OutC, oh, ow)
	for o := 0; o < c.OutC; o++ {
		bias := c.Bias.W.Data[o]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := bias
				for i := 0; i < c.InC; i++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky
						for kx := 0; kx < c.K; kx++ {
							acc += c.wAt(o, i, ky, kx) * in.At3(i, iy, ox*c.Stride+kx)
						}
					}
				}
				out.Set3(o, oy, ox, acc)
			}
		}
	}
	c.lastIn = in
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Tensor) (*Tensor, error) {
	in := c.lastIn
	if in == nil {
		return nil, fmt.Errorf("nn: conv2d backward before forward")
	}
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := c.OutSize(h), c.OutSize(w)
	if len(grad.Shape) != 3 || grad.Shape[0] != c.OutC || grad.Shape[1] != oh || grad.Shape[2] != ow {
		return nil, fmt.Errorf("nn: conv2d backward shape %v, want [%d %d %d]", grad.Shape, c.OutC, oh, ow)
	}
	din := NewTensor(c.InC, h, w)
	for o := 0; o < c.OutC; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := grad.At3(o, oy, ox)
				if g == 0 {
					continue
				}
				c.Bias.Grad.Data[o] += g
				for i := 0; i < c.InC; i++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride + ky
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride + kx
							idx := ((o*c.InC+i)*c.K+ky)*c.K + kx
							c.Weight.Grad.Data[idx] += g * in.At3(i, iy, ix)
							din.Data[(i*h+iy)*w+ix] += g * c.wAt(o, i, ky, kx)
						}
					}
				}
			}
		}
	}
	return din, nil
}

// FullyConnected maps a flattened input of size In to Out logits, the
// classifier layer of §II-A. The paper implements it as a convolution whose
// kernel equals the input feature map; mathematically it is a weight matrix
// [Out, In] plus bias.
type FullyConnected struct {
	In, Out int
	Weight  *Param
	Bias    *Param
	lastIn  *Tensor
}

// NewFullyConnected builds an FC layer with Glorot-initialized weights.
func NewFullyConnected(in, out int, rng *mrand.Rand) *FullyConnected {
	w := NewTensor(out, in)
	if rng != nil {
		initUniform(w, in, out, rng)
	}
	return &FullyConnected{
		In: in, Out: out,
		Weight: &Param{Name: "fc.weight", W: w, Grad: NewTensor(out, in)},
		Bias:   &Param{Name: "fc.bias", W: NewTensor(out), Grad: NewTensor(out)},
	}
}

// Name implements Layer.
func (f *FullyConnected) Name() string { return "fully_connected" }

// Params implements Layer.
func (f *FullyConnected) Params() []*Param { return []*Param{f.Weight, f.Bias} }

// Forward implements Layer. Any input shape with In total elements is
// accepted (implicit flatten).
func (f *FullyConnected) Forward(in *Tensor) (*Tensor, error) {
	if in.Len() != f.In {
		return nil, fmt.Errorf("nn: fully connected expects %d inputs, got %d (shape %v)", f.In, in.Len(), in.Shape)
	}
	out := NewTensor(f.Out)
	for o := 0; o < f.Out; o++ {
		acc := f.Bias.W.Data[o]
		row := f.Weight.W.Data[o*f.In : (o+1)*f.In]
		for i, x := range in.Data {
			acc += row[i] * x
		}
		out.Data[o] = acc
	}
	f.lastIn = in
	return out, nil
}

// Backward implements Layer.
func (f *FullyConnected) Backward(grad *Tensor) (*Tensor, error) {
	if f.lastIn == nil {
		return nil, fmt.Errorf("nn: fully connected backward before forward")
	}
	if grad.Len() != f.Out {
		return nil, fmt.Errorf("nn: fully connected backward expects %d grads, got %d", f.Out, grad.Len())
	}
	din := NewTensor(f.lastIn.Shape...)
	for o := 0; o < f.Out; o++ {
		g := grad.Data[o]
		f.Bias.Grad.Data[o] += g
		row := f.Weight.W.Data[o*f.In : (o+1)*f.In]
		growRow := f.Weight.Grad.Data[o*f.In : (o+1)*f.In]
		for i, x := range f.lastIn.Data {
			growRow[i] += g * x
			din.Data[i] += g * row[i]
		}
	}
	return din, nil
}

// Flatten reshapes [C, H, W] activations to a vector, preserving order.
type Flatten struct {
	lastShape []int
}

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(in *Tensor) (*Tensor, error) {
	f.lastShape = append([]int(nil), in.Shape...)
	return &Tensor{Shape: []int{in.Len()}, Data: in.Data}, nil
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *Tensor) (*Tensor, error) {
	if f.lastShape == nil {
		return nil, fmt.Errorf("nn: flatten backward before forward")
	}
	return &Tensor{Shape: append([]int(nil), f.lastShape...), Data: grad.Data}, nil
}
