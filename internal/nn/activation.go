package nn

import (
	"fmt"
	"math"
)

// ActKind selects the activation function (§II-A4). Square is the
// polynomial stand-in CryptoNets uses when the true non-polynomial
// functions cannot be evaluated under HE.
type ActKind int

// Activation variants.
const (
	Sigmoid ActKind = iota + 1
	ReLU
	Tanh
	LeakyReLU
	Square
)

func (k ActKind) String() string {
	switch k {
	case Sigmoid:
		return "sigmoid"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case LeakyReLU:
		return "leaky_relu"
	case Square:
		return "square"
	default:
		return fmt.Sprintf("ActKind(%d)", int(k))
	}
}

// leakySlope is the negative-side slope of LeakyReLU.
const leakySlope = 0.01

// Apply evaluates the activation on a scalar.
func (k ActKind) Apply(x float64) float64 {
	switch k {
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case ReLU:
		return math.Max(0, x)
	case Tanh:
		return math.Tanh(x)
	case LeakyReLU:
		if x < 0 {
			return leakySlope * x
		}
		return x
	case Square:
		return x * x
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(k)))
	}
}

// derivativeFromIO computes d(act)/dx given the input x and output y, which
// avoids recomputing transcendentals where the output suffices.
func (k ActKind) derivativeFromIO(x, y float64) float64 {
	switch k {
	case Sigmoid:
		return y * (1 - y)
	case ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case LeakyReLU:
		if x < 0 {
			return leakySlope
		}
		return 1
	case Square:
		return 2 * x
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", int(k)))
	}
}

// Activation applies an element-wise non-linearity.
type Activation struct {
	Kind    ActKind
	lastIn  *Tensor
	lastOut *Tensor
}

// NewActivation builds an activation layer.
func NewActivation(kind ActKind) *Activation {
	return &Activation{Kind: kind}
}

// Name implements Layer.
func (a *Activation) Name() string { return a.Kind.String() }

// Params implements Layer.
func (a *Activation) Params() []*Param { return nil }

// Forward implements Layer.
func (a *Activation) Forward(in *Tensor) (*Tensor, error) {
	out := NewTensor(in.Shape...)
	for i, x := range in.Data {
		out.Data[i] = a.Kind.Apply(x)
	}
	a.lastIn, a.lastOut = in, out
	return out, nil
}

// Backward implements Layer.
func (a *Activation) Backward(grad *Tensor) (*Tensor, error) {
	if a.lastIn == nil {
		return nil, fmt.Errorf("nn: activation backward before forward")
	}
	if !grad.SameShape(a.lastIn) {
		return nil, fmt.Errorf("nn: activation backward shape %v, want %v", grad.Shape, a.lastIn.Shape)
	}
	din := NewTensor(grad.Shape...)
	for i := range grad.Data {
		din.Data[i] = grad.Data[i] * a.Kind.derivativeFromIO(a.lastIn.Data[i], a.lastOut.Data[i])
	}
	return din, nil
}
