package nn

import (
	"fmt"
	"math"
)

// Quantization for the homomorphic pipeline (§IV-B): FV plaintexts hold
// integers mod t, so model weights are converted to fixed-point integers
// w_int = round(w * Scale) once, at weight-encoding time. Linear layers then
// run exactly over the integers, and the enclave rescales when it decrypts
// for a non-linear layer. Exactness of the integer pipeline (no wrap mod t)
// is what makes the hybrid scheme's predictions identical to plaintext
// predictions, the accuracy claim of §VII-B.

// QuantizedConv is the integer form of a Conv2D layer.
type QuantizedConv struct {
	InC, OutC, K, Stride int
	// W is [outC * inC * k * k] in the same order as Conv2D.
	W []int64
	// B is [outC], already scaled by Scale * InputScale.
	B []int64
	// Scale is the weight quantization scale.
	Scale float64
}

// QuantizedFC is the integer form of a FullyConnected layer.
type QuantizedFC struct {
	In, Out int
	W       []int64
	B       []int64
	Scale   float64
}

// QuantizeConv converts a trained convolution to integers. inputScale is
// the scale of the integer activations this layer will receive, needed to
// place the bias on the output scale (Scale * inputScale).
func QuantizeConv(c *Conv2D, scale, inputScale float64) (*QuantizedConv, error) {
	if scale <= 0 || inputScale <= 0 {
		return nil, fmt.Errorf("nn: quantization scales must be positive")
	}
	q := &QuantizedConv{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride,
		W:     make([]int64, len(c.Weight.W.Data)),
		B:     make([]int64, len(c.Bias.W.Data)),
		Scale: scale,
	}
	for i, w := range c.Weight.W.Data {
		q.W[i] = int64(math.Round(w * scale))
	}
	for i, b := range c.Bias.W.Data {
		q.B[i] = int64(math.Round(b * scale * inputScale))
	}
	return q, nil
}

// QuantizeFC converts a trained fully connected layer to integers.
func QuantizeFC(f *FullyConnected, scale, inputScale float64) (*QuantizedFC, error) {
	if scale <= 0 || inputScale <= 0 {
		return nil, fmt.Errorf("nn: quantization scales must be positive")
	}
	q := &QuantizedFC{
		In: f.In, Out: f.Out,
		W:     make([]int64, len(f.Weight.W.Data)),
		B:     make([]int64, len(f.Bias.W.Data)),
		Scale: scale,
	}
	for i, w := range f.Weight.W.Data {
		q.W[i] = int64(math.Round(w * scale))
	}
	for i, b := range f.Bias.W.Data {
		q.B[i] = int64(math.Round(b * scale * inputScale))
	}
	return q, nil
}

// OutSize returns the output spatial size for input spatial size in.
func (q *QuantizedConv) OutSize(in int) int {
	return (in-q.K)/q.Stride + 1
}

// WAt reads weight (o, i, ky, kx).
func (q *QuantizedConv) WAt(o, i, ky, kx int) int64 {
	return q.W[((o*q.InC+i)*q.K+ky)*q.K+kx]
}

// Forward runs the integer convolution over an integer activation tensor
// of shape [InC, h, w] (flat, row-major). It is the exact plaintext
// reference for the homomorphic convolution.
func (q *QuantizedConv) Forward(in []int64, h, w int) ([]int64, int, int, error) {
	if len(in) != q.InC*h*w {
		return nil, 0, 0, fmt.Errorf("nn: quantized conv input %d != %d*%d*%d", len(in), q.InC, h, w)
	}
	if h < q.K || w < q.K {
		return nil, 0, 0, fmt.Errorf("nn: quantized conv kernel %d exceeds input %dx%d", q.K, h, w)
	}
	oh, ow := q.OutSize(h), q.OutSize(w)
	out := make([]int64, q.OutC*oh*ow)
	for o := 0; o < q.OutC; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := q.B[o]
				for i := 0; i < q.InC; i++ {
					for ky := 0; ky < q.K; ky++ {
						iy := oy*q.Stride + ky
						base := (i*h + iy) * w
						for kx := 0; kx < q.K; kx++ {
							acc += q.WAt(o, i, ky, kx) * in[base+ox*q.Stride+kx]
						}
					}
				}
				out[(o*oh+oy)*ow+ox] = acc
			}
		}
	}
	return out, oh, ow, nil
}

// Forward runs the integer FC layer.
func (q *QuantizedFC) Forward(in []int64) ([]int64, error) {
	if len(in) != q.In {
		return nil, fmt.Errorf("nn: quantized fc input %d != %d", len(in), q.In)
	}
	out := make([]int64, q.Out)
	for o := 0; o < q.Out; o++ {
		acc := q.B[o]
		row := q.W[o*q.In : (o+1)*q.In]
		for i, x := range in {
			acc += row[i] * x
		}
		out[o] = acc
	}
	return out, nil
}

// MaxOutputMagnitude bounds |output| given a bound on |input| values, used
// to validate that the plaintext modulus t is large enough for exactness.
func (q *QuantizedConv) MaxOutputMagnitude(maxIn int64) int64 {
	var worst int64
	for o := 0; o < q.OutC; o++ {
		sum := abs64(q.B[o])
		for i := 0; i < q.InC; i++ {
			for ky := 0; ky < q.K; ky++ {
				for kx := 0; kx < q.K; kx++ {
					sum += abs64(q.WAt(o, i, ky, kx)) * maxIn
				}
			}
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

// MaxKernelL1 returns the largest ℓ1 norm over output-channel kernels,
// max_o Σ|W[o,·]| — the weighted-sum amplification factor the noise
// accountant charges the worst conv output with.
func (q *QuantizedConv) MaxKernelL1() int64 {
	var worst int64
	for o := 0; o < q.OutC; o++ {
		var sum int64
		for i := 0; i < q.InC; i++ {
			for ky := 0; ky < q.K; ky++ {
				for kx := 0; kx < q.K; kx++ {
					sum += abs64(q.WAt(o, i, ky, kx))
				}
			}
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

// MaxOutputMagnitude bounds |output| for the FC layer.
func (q *QuantizedFC) MaxOutputMagnitude(maxIn int64) int64 {
	var worst int64
	for o := 0; o < q.Out; o++ {
		sum := abs64(q.B[o])
		for _, w := range q.W[o*q.In : (o+1)*q.In] {
			sum += abs64(w) * maxIn
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

// MaxRowL1 returns the largest ℓ1 norm over FC weight rows, max_o Σ|W[o,·]|
// — the noise-amplification factor of the worst FC output.
func (q *QuantizedFC) MaxRowL1() int64 {
	var worst int64
	for o := 0; o < q.Out; o++ {
		var sum int64
		for _, w := range q.W[o*q.In : (o+1)*q.In] {
			sum += abs64(w)
		}
		if sum > worst {
			worst = sum
		}
	}
	return worst
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// QuantizeImage converts float pixels in [0, 1] to integers at the given
// scale (e.g. 255 to recover 8-bit grey levels).
func QuantizeImage(t *Tensor, scale float64) []int64 {
	out := make([]int64, t.Len())
	for i, v := range t.Data {
		out[i] = int64(math.Round(v * scale))
	}
	return out
}
