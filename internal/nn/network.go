package nn

import (
	"fmt"
	"math"
	mrand "math/rand/v2"
)

// Network is an ordered stack of layers.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a network from layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{Layers: layers}
}

// Forward runs inference, returning the final activation (logits).
func (n *Network) Forward(in *Tensor) (*Tensor, error) {
	x := in
	for i, l := range n.Layers {
		var err error
		x, err = l.Forward(x)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Name(), err)
		}
	}
	return x, nil
}

// Predict returns the argmax class for the input.
func (n *Network) Predict(in *Tensor) (int, error) {
	out, err := n.Forward(in)
	if err != nil {
		return 0, err
	}
	return out.ArgMax(), nil
}

// Params collects all trainable parameters.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// backward propagates dL/d(logits) through the stack.
func (n *Network) backward(grad *Tensor) error {
	g := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		var err error
		g, err = n.Layers[i].Backward(g)
		if err != nil {
			return fmt.Errorf("nn: backward layer %d (%s): %w", i, n.Layers[i].Name(), err)
		}
	}
	return nil
}

// SoftmaxCrossEntropy computes the loss and dL/d(logits) for a target class.
func SoftmaxCrossEntropy(logits *Tensor, target int) (float64, *Tensor, error) {
	if target < 0 || target >= logits.Len() {
		return 0, nil, fmt.Errorf("nn: target %d out of range [0, %d)", target, logits.Len())
	}
	maxV := math.Inf(-1)
	for _, v := range logits.Data {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	probs := make([]float64, logits.Len())
	for i, v := range logits.Data {
		probs[i] = math.Exp(v - maxV)
		sum += probs[i]
	}
	grad := NewTensor(logits.Shape...)
	for i := range probs {
		probs[i] /= sum
		grad.Data[i] = probs[i]
	}
	grad.Data[target] -= 1
	loss := -math.Log(math.Max(probs[target], 1e-300))
	return loss, grad, nil
}

// SGD is a stochastic-gradient-descent trainer with optional classical
// momentum and L2 weight decay.
type SGD struct {
	LR        float64
	BatchSize int
	// Momentum in [0, 1); 0 disables the velocity term.
	Momentum float64
	// WeightDecay is the L2 regularization coefficient; 0 disables it.
	WeightDecay float64

	// velocity is keyed by parameter identity, allocated lazily.
	velocity map[*Param][]float64
}

// Example pairs an input tensor with its class label.
type Example struct {
	Input *Tensor
	Label int
}

// TrainEpoch runs one epoch of minibatch SGD over examples (in the order
// given; shuffle first if desired) and returns the mean loss.
func (s *SGD) TrainEpoch(n *Network, examples []Example) (float64, error) {
	if s.BatchSize <= 0 {
		s.BatchSize = 1
	}
	params := n.Params()
	totalLoss := 0.0
	count := 0
	for start := 0; start < len(examples); start += s.BatchSize {
		end := min(start+s.BatchSize, len(examples))
		for _, p := range params {
			p.zeroGrad()
		}
		for _, ex := range examples[start:end] {
			logits, err := n.Forward(ex.Input)
			if err != nil {
				return 0, err
			}
			loss, grad, err := SoftmaxCrossEntropy(logits, ex.Label)
			if err != nil {
				return 0, err
			}
			totalLoss += loss
			count++
			if err := n.backward(grad); err != nil {
				return 0, err
			}
		}
		scale := s.LR / float64(end-start)
		for _, p := range params {
			if s.Momentum > 0 && s.velocity == nil {
				s.velocity = make(map[*Param][]float64)
			}
			var vel []float64
			if s.Momentum > 0 {
				vel = s.velocity[p]
				if vel == nil {
					vel = make([]float64, len(p.W.Data))
					s.velocity[p] = vel
				}
			}
			for i := range p.W.Data {
				g := scale * p.Grad.Data[i]
				if s.WeightDecay > 0 {
					g += s.LR * s.WeightDecay * p.W.Data[i]
				}
				if s.Momentum > 0 {
					vel[i] = s.Momentum*vel[i] - g
					p.W.Data[i] += vel[i]
				} else {
					p.W.Data[i] -= g
				}
			}
		}
	}
	if count == 0 {
		return 0, nil
	}
	return totalLoss / float64(count), nil
}

// Accuracy evaluates top-1 accuracy over examples.
func Accuracy(n *Network, examples []Example) (float64, error) {
	if len(examples) == 0 {
		return 0, nil
	}
	correct := 0
	for _, ex := range examples {
		pred, err := n.Predict(ex.Input)
		if err != nil {
			return 0, err
		}
		if pred == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples)), nil
}

// Shuffle permutes examples in place with the given RNG.
func Shuffle(examples []Example, rng *mrand.Rand) {
	rng.Shuffle(len(examples), func(i, j int) {
		examples[i], examples[j] = examples[j], examples[i]
	})
}

// PaperCNN builds the Fig. 7 network: conv 6×(5×5) stride 1 → Sigmoid →
// 2×2 mean-pool → fully connected to 10 classes, for 28×28 single-channel
// input (Table VI).
func PaperCNN(rng *mrand.Rand) *Network {
	return NewNetwork(
		NewConv2D(1, 6, 5, 1, rng),
		NewActivation(Sigmoid),
		NewPool2D(MeanPool, 2),
		&Flatten{},
		NewFullyConnected(6*12*12, 10, rng),
	)
}

// CryptoNetsCNN builds the HE-friendly variant used by the Encrypted
// baseline: Square activation and scaled mean-pool (SumPool), as in
// CryptoNets [16].
func CryptoNetsCNN(rng *mrand.Rand) *Network {
	return NewNetwork(
		NewConv2D(1, 6, 5, 1, rng),
		NewActivation(Square),
		NewPool2D(SumPool, 2),
		&Flatten{},
		NewFullyConnected(6*12*12, 10, rng),
	)
}
