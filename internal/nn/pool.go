package nn

import "fmt"

// PoolKind selects the pooling function (§II-A2). SumPool is the "scaled
// mean-pool" CryptoNets substitutes for mean pooling under HE: it omits the
// division, magnifying activations by k² (the numerical diffusion §III-A
// warns about).
type PoolKind int

// Pooling variants.
const (
	MeanPool PoolKind = iota + 1
	MaxPool
	SumPool
)

func (k PoolKind) String() string {
	switch k {
	case MeanPool:
		return "mean"
	case MaxPool:
		return "max"
	case SumPool:
		return "sum"
	default:
		return fmt.Sprintf("PoolKind(%d)", int(k))
	}
}

// Pool2D downsamples each channel with non-overlapping k×k windows.
type Pool2D struct {
	Kind PoolKind
	K    int

	lastIn  *Tensor
	lastMax []int // argmax indices for MaxPool backward
}

// NewPool2D builds a pooling layer.
func NewPool2D(kind PoolKind, k int) *Pool2D {
	return &Pool2D{Kind: kind, K: k}
}

// Name implements Layer.
func (p *Pool2D) Name() string { return p.Kind.String() + "_pool" }

// Params implements Layer.
func (p *Pool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *Pool2D) Forward(in *Tensor) (*Tensor, error) {
	if len(in.Shape) != 3 {
		return nil, fmt.Errorf("nn: pool expects [c, h, w], got %v", in.Shape)
	}
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	if h%p.K != 0 || w%p.K != 0 {
		return nil, fmt.Errorf("nn: pool window %d does not divide input %dx%d", p.K, h, w)
	}
	oh, ow := h/p.K, w/p.K
	out := NewTensor(c, oh, ow)
	if p.Kind == MaxPool {
		p.lastMax = make([]int, out.Len())
	}
	area := float64(p.K * p.K)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				switch p.Kind {
				case MaxPool:
					best := in.At3(ch, oy*p.K, ox*p.K)
					bestIdx := (ch*h+oy*p.K)*w + ox*p.K
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := (ch*h+oy*p.K+ky)*w + ox*p.K + kx
							if v := in.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Set3(ch, oy, ox, best)
					p.lastMax[(ch*oh+oy)*ow+ox] = bestIdx
				default: // MeanPool, SumPool
					sum := 0.0
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							sum += in.At3(ch, oy*p.K+ky, ox*p.K+kx)
						}
					}
					if p.Kind == MeanPool {
						sum /= area
					}
					out.Set3(ch, oy, ox, sum)
				}
			}
		}
	}
	p.lastIn = in
	return out, nil
}

// Backward implements Layer.
func (p *Pool2D) Backward(grad *Tensor) (*Tensor, error) {
	in := p.lastIn
	if in == nil {
		return nil, fmt.Errorf("nn: pool backward before forward")
	}
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := h/p.K, w/p.K
	if len(grad.Shape) != 3 || grad.Shape[0] != c || grad.Shape[1] != oh || grad.Shape[2] != ow {
		return nil, fmt.Errorf("nn: pool backward shape %v, want [%d %d %d]", grad.Shape, c, oh, ow)
	}
	din := NewTensor(c, h, w)
	area := float64(p.K * p.K)
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := grad.At3(ch, oy, ox)
				switch p.Kind {
				case MaxPool:
					din.Data[p.lastMax[(ch*oh+oy)*ow+ox]] += g
				case MeanPool:
					share := g / area
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							din.Data[(ch*h+oy*p.K+ky)*w+ox*p.K+kx] += share
						}
					}
				case SumPool:
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							din.Data[(ch*h+oy*p.K+ky)*w+ox*p.K+kx] += g
						}
					}
				}
			}
		}
	}
	return din, nil
}
