package attest

import (
	"bytes"
	"errors"
	"testing"

	"hesgx/internal/sgx"
)

func testEnclave(t *testing.T) *sgx.Enclave {
	t.Helper()
	p, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Launch(sgx.Definition{
		Name:    "keyvault",
		Version: "1.0",
		ECalls: map[string]sgx.ECallFunc{
			"noop": func(*sgx.Context, []byte) ([]byte, error) { return nil, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQuoteVerifyHappyPath(t *testing.T) {
	e := testEnclave(t)
	nonce, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	userData := []byte("serialized HE public key")
	q, err := GenerateQuote(e, nonce, userData)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService()
	svc.RegisterPlatform(e.Platform().AttestationPublicKey())
	svc.TrustMeasurement(e.Measurement())
	if err := svc.Verify(q, nonce); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !bytes.Equal(q.UserData, userData) {
		t.Fatal("user data not carried through")
	}
}

func TestVerifyRejectsWrongNonce(t *testing.T) {
	e := testEnclave(t)
	nonce, _ := NewNonce()
	q, _ := GenerateQuote(e, nonce, nil)
	svc := NewService()
	svc.RegisterPlatform(e.Platform().AttestationPublicKey())
	svc.TrustMeasurement(e.Measurement())
	other, _ := NewNonce()
	if err := svc.Verify(q, other); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("got %v, want nonce mismatch", err)
	}
}

func TestVerifyRejectsUntrustedMeasurement(t *testing.T) {
	e := testEnclave(t)
	nonce, _ := NewNonce()
	q, _ := GenerateQuote(e, nonce, nil)
	svc := NewService()
	svc.RegisterPlatform(e.Platform().AttestationPublicKey())
	// measurement deliberately not trusted
	if err := svc.Verify(q, nonce); !errors.Is(err, ErrUntrustedMeasure) {
		t.Fatalf("got %v, want untrusted measurement", err)
	}
}

func TestVerifyRejectsUnregisteredPlatform(t *testing.T) {
	e := testEnclave(t)
	nonce, _ := NewNonce()
	q, _ := GenerateQuote(e, nonce, nil)
	svc := NewService()
	svc.TrustMeasurement(e.Measurement())
	if err := svc.Verify(q, nonce); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("got %v, want unknown platform", err)
	}
}

func TestVerifyRejectsForeignPlatformSignature(t *testing.T) {
	e := testEnclave(t)
	foreign := testEnclave(t) // different platform, same definition
	nonce, _ := NewNonce()
	q, _ := GenerateQuote(e, nonce, nil)
	svc := NewService()
	svc.RegisterPlatform(foreign.Platform().AttestationPublicKey())
	svc.TrustMeasurement(e.Measurement())
	if err := svc.Verify(q, nonce); !errors.Is(err, ErrSignatureInvalid) {
		t.Fatalf("got %v, want signature invalid", err)
	}
}

func TestVerifyRejectsTamperedUserData(t *testing.T) {
	e := testEnclave(t)
	nonce, _ := NewNonce()
	q, _ := GenerateQuote(e, nonce, []byte("legit key material"))
	svc := NewService()
	svc.RegisterPlatform(e.Platform().AttestationPublicKey())
	svc.TrustMeasurement(e.Measurement())

	q.UserData[0] ^= 0xFF // MITM swaps the delivered key
	if err := svc.Verify(q, nonce); !errors.Is(err, ErrSignatureInvalid) {
		t.Fatalf("got %v, want signature invalid after tamper", err)
	}
}

func TestVerifyRejectsTamperedMeasurement(t *testing.T) {
	e := testEnclave(t)
	nonce, _ := NewNonce()
	q, _ := GenerateQuote(e, nonce, nil)
	svc := NewService()
	svc.RegisterPlatform(e.Platform().AttestationPublicKey())
	svc.TrustMeasurement(e.Measurement())
	q.Measurement[0] ^= 1
	err := svc.Verify(q, nonce)
	if err == nil {
		t.Fatal("tampered measurement accepted")
	}
}

func TestVerifyMalformed(t *testing.T) {
	svc := NewService()
	var nonce [32]byte
	if err := svc.Verify(nil, nonce); !errors.Is(err, ErrMalformedQuote) {
		t.Fatalf("nil quote: %v", err)
	}
	if err := svc.Verify(&Quote{}, nonce); !errors.Is(err, ErrMalformedQuote) {
		t.Fatalf("empty quote: %v", err)
	}
}

func TestQuoteSerializationRoundTrip(t *testing.T) {
	e := testEnclave(t)
	nonce, _ := NewNonce()
	q, _ := GenerateQuote(e, nonce, []byte("payload"))
	b, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalQuote(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Measurement != q.Measurement || got.Nonce != q.Nonce ||
		!bytes.Equal(got.UserData, q.UserData) || !bytes.Equal(got.Signature, q.Signature) {
		t.Fatal("quote roundtrip mismatch")
	}
	// The roundtripped quote still verifies.
	svc := NewService()
	svc.RegisterPlatform(e.Platform().AttestationPublicKey())
	svc.TrustMeasurement(e.Measurement())
	if err := svc.Verify(got, nonce); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalQuoteRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalQuote([]byte("short")); err == nil {
		t.Fatal("short quote accepted")
	}
	// Hostile length field.
	b := make([]byte, 32+32+4)
	b[64] = 0xFF
	b[65] = 0xFF
	b[66] = 0xFF
	b[67] = 0xFF
	if _, err := UnmarshalQuote(b); err == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	e := testEnclave(t)
	pub := e.Platform().AttestationPublicKey()
	b := MarshalPublicKey(pub)
	got, err := UnmarshalPublicKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Cmp(pub.X) != 0 || got.Y.Cmp(pub.Y) != 0 {
		t.Fatal("public key roundtrip mismatch")
	}
	if _, err := UnmarshalPublicKey([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage key accepted")
	}
}
