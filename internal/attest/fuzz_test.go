package attest

import (
	"testing"

	"hesgx/internal/sgx"
)

// FuzzUnmarshalQuote: hostile quote bytes must produce errors, never
// panics, and any parsed quote must re-marshal consistently.
func FuzzUnmarshalQuote(f *testing.F) {
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(1))
	if err != nil {
		f.Fatal(err)
	}
	enclave, err := platform.Launch(sgx.Definition{
		Name:    "fuzz",
		Version: "1",
		ECalls: map[string]sgx.ECallFunc{
			"noop": func(*sgx.Context, []byte) ([]byte, error) { return nil, nil },
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	nonce, err := NewNonce()
	if err != nil {
		f.Fatal(err)
	}
	q, err := GenerateQuote(enclave, nonce, []byte("key material"))
	if err != nil {
		f.Fatal(err)
	}
	valid, err := q.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:40])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalQuote(data)
		if err != nil {
			return
		}
		again, err := got.Marshal()
		if err != nil {
			t.Fatalf("parsed quote cannot re-marshal: %v", err)
		}
		back, err := UnmarshalQuote(again)
		if err != nil {
			t.Fatalf("re-marshalled quote rejected: %v", err)
		}
		if back.Measurement != got.Measurement || back.Nonce != got.Nonce {
			t.Fatal("quote does not round-trip")
		}
	})
}
