// Package attest implements the remote-attestation flow of §IV-A: the
// enclave proves its identity to a remote user through a signed quote, and
// the quote's user-data field carries the freshly generated homomorphic
// keys — so SGX plays the role of the trusted third party that pure-HE
// deployments need for key distribution (Fig. 1 vs Fig. 2 of the paper).
//
// The structure mirrors Intel DCAP: a platform-held attestation key signs
// (measurement, user data, challenge nonce); a verification service —
// standing in for the Intel provisioning/attestation infrastructure — holds
// the registered platform keys and the expected enclave measurements, and
// accepts or rejects quotes.
package attest

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"hesgx/internal/sgx"
)

// Static errors callers can match with errors.Is.
var (
	ErrUnknownPlatform  = errors.New("attest: quote not signed by any registered platform")
	ErrUntrustedMeasure = errors.New("attest: enclave measurement not trusted")
	ErrNonceMismatch    = errors.New("attest: quote nonce does not match challenge")
	ErrMalformedQuote   = errors.New("attest: malformed quote")
	ErrSignatureInvalid = errors.New("attest: quote signature invalid")
)

// Quote is the attestation evidence: the enclave's measurement, caller
// user data (here: serialized HE key material), the verifier's challenge
// nonce, and the platform signature over all of it.
type Quote struct {
	Measurement [32]byte
	Nonce       [32]byte
	UserData    []byte
	Signature   []byte
}

// quoteDigest hashes the signed portion of a quote.
func quoteDigest(measurement, nonce [32]byte, userData []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("hesgx/attest/quote/v1"))
	h.Write(measurement[:])
	h.Write(nonce[:])
	var l [8]byte
	binary.LittleEndian.PutUint64(l[:], uint64(len(userData)))
	h.Write(l[:])
	h.Write(userData)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// GenerateQuote produces a quote for the enclave binding userData and the
// verifier-supplied nonce, signed by the hosting platform's attestation key
// (the quoting-enclave role).
func GenerateQuote(e *sgx.Enclave, nonce [32]byte, userData []byte) (*Quote, error) {
	if e == nil {
		return nil, fmt.Errorf("attest: nil enclave")
	}
	m := e.Measurement()
	digest := quoteDigest(m, nonce, userData)
	sig, err := e.Platform().SignQuoteDigest(digest)
	if err != nil {
		return nil, fmt.Errorf("attest: signing quote: %w", err)
	}
	return &Quote{
		Measurement: m,
		Nonce:       nonce,
		UserData:    bytes.Clone(userData),
		Signature:   sig,
	}, nil
}

// NewNonce returns a fresh random challenge.
func NewNonce() ([32]byte, error) {
	var n [32]byte
	if _, err := io.ReadFull(rand.Reader, n[:]); err != nil {
		return n, fmt.Errorf("attest: generating nonce: %w", err)
	}
	return n, nil
}

// Service verifies quotes. It stands in for the Intel attestation
// infrastructure: platforms are enrolled with their attestation public
// keys, and relying parties declare which enclave measurements they trust.
// Safe for concurrent use.
type Service struct {
	mu           sync.RWMutex
	platformKeys []*ecdsa.PublicKey
	measurements map[[32]byte]bool
}

// NewService returns an empty verification service.
func NewService() *Service {
	return &Service{measurements: make(map[[32]byte]bool)}
}

// RegisterPlatform enrolls a platform attestation public key.
func (s *Service) RegisterPlatform(pub *ecdsa.PublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.platformKeys = append(s.platformKeys, pub)
}

// TrustMeasurement marks an enclave measurement as expected. Quotes from
// other measurements are rejected even when the platform signature is good.
func (s *Service) TrustMeasurement(m [32]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.measurements[m] = true
}

// Verify checks a quote against the expected nonce: signature by a
// registered platform, trusted measurement, nonce freshness.
func (s *Service) Verify(q *Quote, expectedNonce [32]byte) error {
	if q == nil || len(q.Signature) == 0 {
		return ErrMalformedQuote
	}
	if q.Nonce != expectedNonce {
		return ErrNonceMismatch
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.measurements[q.Measurement] {
		return ErrUntrustedMeasure
	}
	digest := quoteDigest(q.Measurement, q.Nonce, q.UserData)
	for _, pub := range s.platformKeys {
		if ecdsa.VerifyASN1(pub, digest[:], q.Signature) {
			return nil
		}
	}
	if len(s.platformKeys) == 0 {
		return ErrUnknownPlatform
	}
	return ErrSignatureInvalid
}

// Marshal serializes a quote for the wire.
func (q *Quote) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(q.Measurement[:])
	buf.Write(q.Nonce[:])
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(q.UserData)))
	buf.Write(l[:])
	buf.Write(q.UserData)
	binary.LittleEndian.PutUint32(l[:], uint32(len(q.Signature)))
	buf.Write(l[:])
	buf.Write(q.Signature)
	return buf.Bytes(), nil
}

// maxQuoteField bounds deserialized field sizes against hostile input.
const maxQuoteField = 64 << 20

// UnmarshalQuote parses a quote serialized by Marshal.
func UnmarshalQuote(b []byte) (*Quote, error) {
	r := bytes.NewReader(b)
	q := &Quote{}
	if _, err := io.ReadFull(r, q.Measurement[:]); err != nil {
		return nil, fmt.Errorf("%w: measurement: %v", ErrMalformedQuote, err)
	}
	if _, err := io.ReadFull(r, q.Nonce[:]); err != nil {
		return nil, fmt.Errorf("%w: nonce: %v", ErrMalformedQuote, err)
	}
	readField := func(name string) ([]byte, error) {
		var l [4]byte
		if _, err := io.ReadFull(r, l[:]); err != nil {
			return nil, fmt.Errorf("%w: %s length: %v", ErrMalformedQuote, name, err)
		}
		n := binary.LittleEndian.Uint32(l[:])
		if n > maxQuoteField {
			return nil, fmt.Errorf("%w: %s too large (%d)", ErrMalformedQuote, name, n)
		}
		out := make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			return nil, fmt.Errorf("%w: %s body: %v", ErrMalformedQuote, name, err)
		}
		return out, nil
	}
	var err error
	if q.UserData, err = readField("user data"); err != nil {
		return nil, err
	}
	if q.Signature, err = readField("signature"); err != nil {
		return nil, err
	}
	return q, nil
}

// MarshalPublicKey encodes a platform attestation public key
// (uncompressed P-256 point) for enrollment over the wire.
func MarshalPublicKey(pub *ecdsa.PublicKey) []byte {
	return elliptic.Marshal(elliptic.P256(), pub.X, pub.Y)
}

// UnmarshalPublicKey reverses MarshalPublicKey.
func UnmarshalPublicKey(b []byte) (*ecdsa.PublicKey, error) {
	x, y := elliptic.Unmarshal(elliptic.P256(), b)
	if x == nil {
		return nil, fmt.Errorf("attest: invalid public key encoding")
	}
	return &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}, nil
}
