package trace

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceEscaping feeds hostile span and trace names — embedded
// quotes, newlines, backslashes, control bytes, invalid UTF-8 — through the
// Chrome export and requires the output to survive a strict JSON round
// trip with the names intact (modulo the UTF-8 replacement encoding/json
// documents for invalid bytes).
func TestChromeTraceEscaping(t *testing.T) {
	names := []string{
		`span "with quotes"`,
		"span\nwith\nnewlines",
		`span\with\backslashes`,
		"span\twith\x00control\x1fbytes",
		"span with invalid utf8 \xff\xfe",
		"ünïcødé 層",
	}
	tr := NewTrace(7, "req \"q\"\nline2")
	ctx := With(context.Background(), tr)
	for _, n := range names {
		_, span := StartSpan(ctx, n, "engine")
		span.Arg("bytes", 12).End()
	}
	tr.Finish()

	raw, err := ChromeTrace([]*Trace{tr, nil})
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if !json.Valid(raw) {
		t.Fatalf("export is not valid JSON: %s", raw)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	got := make(map[string]bool)
	for _, ev := range file.TraceEvents {
		got[ev.Name] = true
	}
	for _, n := range names[:4] { // valid-UTF-8 names survive byte-for-byte
		if !got[n] {
			t.Errorf("span name %q lost in export", n)
		}
	}
	if !got["ünïcødé 層"] {
		t.Error("unicode span name lost in export")
	}
	// The invalid-UTF-8 name must still be present in some replacement form.
	found := false
	for n := range got {
		if strings.HasPrefix(n, "span with invalid utf8") {
			found = true
		}
	}
	if !found {
		t.Error("invalid-utf8 span name dropped entirely")
	}
}
