package trace

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTrace(1, "req")
	ctx := With(context.Background(), tr)
	ctx1, outer := StartSpan(ctx, "outer", "serve")
	_, inner := StartSpan(ctx1, "inner", "engine")
	inner.Arg("cts", 4).End()
	outer.End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["req"]
	if !ok || root.ID != rootID || root.Parent != 0 {
		t.Fatalf("bad root span: %+v", root)
	}
	if byName["outer"].Parent != root.ID {
		t.Fatalf("outer parent = %d, want root %d", byName["outer"].Parent, root.ID)
	}
	if byName["inner"].Parent != byName["outer"].ID {
		t.Fatalf("inner parent = %d, want outer %d", byName["inner"].Parent, byName["outer"].ID)
	}
	if len(byName["inner"].Args) != 1 || byName["inner"].Args[0].Key != "cts" {
		t.Fatalf("inner args = %+v", byName["inner"].Args)
	}
}

func TestNilSafety(t *testing.T) {
	var tracer *Tracer
	tr := tracer.Start("x")
	if tr != nil {
		t.Fatal("nil tracer started a trace")
	}
	tracer.Finish(tr)
	tr.Finish()
	if tr.Spans() != nil || tr.Wall() != 0 || tr.Finished() {
		t.Fatal("nil trace not inert")
	}
	ctx := With(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil trace attached")
	}
	ctx2, h := StartSpan(ctx, "s", "c")
	if h != nil || ctx2 != ctx {
		t.Fatal("span started without a trace")
	}
	h.Arg("k", 1)
	h.End()
}

func TestJoinFansOutToAllTraces(t *testing.T) {
	trA, trB := NewTrace(1, "a"), NewTrace(2, "b")
	ctxA, spA := StartSpan(With(context.Background(), trA), "waitA", "serve")
	ctxB, spB := StartSpan(With(context.Background(), trB), "waitB", "serve")

	joined := Join(context.Background(), ctxA, ctxB)
	_, shared := StartSpan(joined, "ecall", "sgx")
	shared.Arg("requests", 2).End()
	spA.End()
	spB.End()
	trA.Finish()
	trB.Finish()

	for _, tc := range []struct {
		tr     *Trace
		parent string
	}{{trA, "waitA"}, {trB, "waitB"}} {
		byName := map[string]Span{}
		for _, s := range tc.tr.Spans() {
			byName[s.Name] = s
		}
		ecall, ok := byName["ecall"]
		if !ok {
			t.Fatalf("trace %s missing shared ecall span", tc.tr.Name)
		}
		if ecall.Parent != byName[tc.parent].ID {
			t.Fatalf("trace %s: ecall parent %d, want %s (%d)",
				tc.tr.Name, ecall.Parent, tc.parent, byName[tc.parent].ID)
		}
	}
}

func TestJoinWithoutTracesIsBase(t *testing.T) {
	base := context.Background()
	if got := Join(base, context.Background(), nil); got != base {
		t.Fatal("Join invented scopes")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace(1, "req")
	_, h := StartSpan(With(context.Background(), tr), "s", "c")
	h.End()
	h.End()
	tr.Finish()
	tr.Finish()
	n := 0
	for _, s := range tr.Spans() {
		if s.Name == "s" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("span recorded %d times", n)
	}
	if len(tr.Spans()) != 2 {
		t.Fatalf("double Finish duplicated the root: %d spans", len(tr.Spans()))
	}
}

func TestTracerRingKeepsLastN(t *testing.T) {
	tracer := NewTracer(3)
	for i := 0; i < 5; i++ {
		tracer.Finish(tracer.Start("req"))
	}
	last := tracer.Last(0)
	if len(last) != 3 {
		t.Fatalf("ring holds %d, want 3", len(last))
	}
	// Oldest-first: IDs 3, 4, 5 survive.
	for i, tr := range last {
		if want := uint64(i + 3); tr.ID != want {
			t.Fatalf("ring[%d].ID = %d, want %d", i, tr.ID, want)
		}
	}
	if got := tracer.Last(1); len(got) != 1 || got[0].ID != 5 {
		t.Fatalf("Last(1) = %+v", got)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTrace(1, "req")
	ctx := With(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, h := StartSpan(ctx, "work", "test")
				h.End()
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Spans()); got != 8*50+1 {
		t.Fatalf("got %d spans, want %d", got, 8*50+1)
	}
	seen := map[SpanID]bool{}
	for _, s := range tr.Spans() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestChromeTraceExport(t *testing.T) {
	tracer := NewTracer(4)
	tr := tracer.Start("req")
	ctx, h := StartSpan(With(context.Background(), tr), "layer.conv", "engine")
	_, h2 := StartSpan(ctx, "ecall.sigmoid", "sgx")
	time.Sleep(time.Millisecond)
	h2.Arg("transitions", 1).End()
	h.End()
	tracer.Finish(tr)

	raw, err := ChromeTrace(tracer.Last(0))
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.Unit)
	}
	// 1 metadata + 3 spans.
	if len(f.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(f.TraceEvents))
	}
	var sawRoot, sawECall bool
	for _, ev := range f.TraceEvents {
		switch ev["name"] {
		case "req":
			sawRoot = true
		case "ecall.sigmoid":
			sawECall = true
			args := ev["args"].(map[string]any)
			if args["transitions"].(float64) != 1 {
				t.Fatalf("ecall args = %+v", args)
			}
			if ev["dur"].(float64) < 900 { // µs
				t.Fatalf("ecall dur = %v µs, expected ≥ 900", ev["dur"])
			}
		}
	}
	if !sawRoot || !sawECall {
		t.Fatalf("missing events: root=%v ecall=%v", sawRoot, sawECall)
	}
}

func TestSpansCoverWallClock(t *testing.T) {
	// The root span is the request wall-clock by construction; children
	// must fall inside it.
	tr := NewTrace(1, "req")
	ctx := With(context.Background(), tr)
	_, h := StartSpan(ctx, "child", "serve")
	time.Sleep(2 * time.Millisecond)
	h.End()
	tr.Finish()
	var root, child Span
	for _, s := range tr.Spans() {
		if s.ID == rootID {
			root = s
		} else {
			child = s
		}
	}
	if root.Dur < child.Dur {
		t.Fatalf("root %v shorter than child %v", root.Dur, child.Dur)
	}
	if child.Start.Before(root.Start) {
		t.Fatal("child starts before root")
	}
	if tr.Wall() != root.Dur {
		t.Fatalf("Wall %v != root dur %v", tr.Wall(), root.Dur)
	}
}
