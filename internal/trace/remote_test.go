package trace

import (
	"context"
	"testing"
)

func finishedTrace(id uint64) *Trace {
	tr := NewTrace(id, "server")
	ctx := With(context.Background(), tr)
	ctx1, queue := StartSpan(ctx, "queue.wait", "serve")
	queue.End()
	_, layer := StartSpan(ctx1, "layer.conv", "engine")
	layer.Arg("lanes", 2).End()
	tr.Finish()
	return tr
}

func TestSnapshotRoundTrip(t *testing.T) {
	tr := finishedTrace(42)
	snap := tr.TakeSnapshot()
	if snap.ID != 42 || snap.Name != "server" || len(snap.Spans) != 3 {
		t.Fatalf("snapshot %+v", snap)
	}
	raw, err := MarshalSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != snap.ID || len(back.Spans) != len(snap.Spans) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i, s := range back.Spans {
		orig := snap.Spans[i]
		if s.ID != orig.ID || s.Parent != orig.Parent || s.Name != orig.Name ||
			s.Cat != orig.Cat || s.Dur != orig.Dur || len(s.Args) != len(orig.Args) {
			t.Errorf("span %d: %+v != %+v", i, s, orig)
		}
	}
	var nilTrace *Trace
	if nilTrace.TakeSnapshot() != nil {
		t.Fatal("nil trace produced a snapshot")
	}
}

func TestUnmarshalSnapshotBounds(t *testing.T) {
	if _, err := UnmarshalSnapshot([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	big := &Snapshot{ID: 1, Spans: make([]Span, MaxSnapshotSpans+1)}
	raw, err := MarshalSnapshot(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSnapshot(raw); err == nil {
		t.Fatal("oversized snapshot accepted")
	}
}

// TestGraft splices a server snapshot into a client trace: every remote
// span must be renumbered into the local ID space with the tree shape
// preserved, and the remote root must hang off the requested parent.
func TestGraft(t *testing.T) {
	remote := finishedTrace(7).TakeSnapshot()

	local := NewTrace(7, "client.infer")
	ctx := With(context.Background(), local)
	_, enc := StartSpan(ctx, "client.encrypt", "client")
	enc.End()
	grafted := local.Graft(remote, RootSpanID)
	if grafted == 0 {
		t.Fatal("graft returned 0")
	}
	local.Finish()

	spans := local.Spans()
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	// client.encrypt + 3 remote + root
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5: %+v", len(spans), spans)
	}
	srvRoot, ok := byName["server"]
	if !ok || srvRoot.ID != grafted || srvRoot.Parent != RootSpanID {
		t.Fatalf("server root not grafted under client root: %+v", srvRoot)
	}
	if byName["queue.wait"].Parent != srvRoot.ID {
		t.Fatalf("queue.wait parent = %d, want %d", byName["queue.wait"].Parent, srvRoot.ID)
	}
	if byName["layer.conv"].Parent != byName["queue.wait"].ID {
		t.Fatalf("layer.conv parent = %d, want %d", byName["layer.conv"].Parent, byName["queue.wait"].ID)
	}
	// Remote IDs were renumbered: no collisions with local span IDs.
	seen := map[SpanID]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d after graft", s.ID)
		}
		seen[s.ID] = true
	}
	// Nil-safety and empty snapshots.
	var nilTrace *Trace
	if nilTrace.Graft(remote, RootSpanID) != 0 {
		t.Fatal("nil trace grafted")
	}
	if local.Graft(nil, RootSpanID) != 0 || local.Graft(&Snapshot{}, RootSpanID) != 0 {
		t.Fatal("empty snapshot grafted")
	}
}

func TestStartRemote(t *testing.T) {
	tracer := NewTracer(4)
	tr := tracer.StartRemote(99, "request")
	if tr == nil || tr.ID != 99 {
		t.Fatalf("StartRemote: %+v", tr)
	}
	tracer.Finish(tr)
	last := tracer.Last(1)
	if len(last) != 1 || last[0].ID != 99 {
		t.Fatalf("remote trace not retained: %+v", last)
	}
	var nilTracer *Tracer
	if nilTracer.StartRemote(1, "x") != nil {
		t.Fatal("nil tracer started a remote trace")
	}
}

func TestFinishIdempotent(t *testing.T) {
	tracer := NewTracer(4)
	tr := tracer.Start("req")
	tracer.Finish(tr)
	tracer.Finish(tr) // second finish must not double-insert
	if got := len(tracer.Last(0)); got != 1 {
		t.Fatalf("double finish retained %d traces, want 1", got)
	}
}

func TestNewClientTracerIDs(t *testing.T) {
	tracer := NewClientTracer(4)
	for i := 0; i < 4; i++ {
		tr := tracer.Start("client.infer")
		if tr.ID == 0 {
			t.Fatal("client trace ID is 0")
		}
		// Exact in float64: survives JSON and exemplar round trips.
		if tr.ID != uint64(float64(tr.ID)) {
			t.Fatalf("client trace ID %d not exact in float64", tr.ID)
		}
		tracer.Finish(tr)
	}
}
