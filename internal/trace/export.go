package trace

import (
	"encoding/json"
	"time"
)

// Chrome trace_event export: the JSON Array/Object format chrome://tracing
// and Perfetto load directly. Each trace becomes one "process" row (pid =
// trace ID) whose complete ("X") events nest by time containment, so the
// span tree reads as a flame graph per request.

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the Object-format wrapper.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders traces as Chrome trace_event JSON. Timestamps are
// microseconds relative to the earliest trace start, so concurrent
// requests align on one timeline.
func ChromeTrace(traces []*Trace) ([]byte, error) {
	var base time.Time
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		if base.IsZero() || tr.Start.Before(base) {
			base = tr.Start
		}
	}
	events := make([]chromeEvent, 0, 16*len(traces))
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		events = append(events, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  tr.ID,
			Args: map[string]any{"name": tr.Name},
		})
		for _, s := range tr.Spans() {
			ev := chromeEvent{
				Name: s.Name,
				Cat:  s.Cat,
				Ph:   "X",
				Ts:   float64(s.Start.Sub(base).Nanoseconds()) / 1e3,
				Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
				Pid:  tr.ID,
				Tid:  1,
			}
			args := map[string]any{"span_id": uint32(s.ID), "parent_id": uint32(s.Parent)}
			for _, a := range s.Args {
				args[a.Key] = a.Val
			}
			ev.Args = args
			events = append(events, ev)
		}
	}
	return json.Marshal(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
