// Package trace is the serving stack's low-overhead request tracer. Every
// inference request gets one Trace; the stages it flows through — wire
// accept, scheduler queue wait, per-layer engine execution, batcher flush,
// the ECALL itself — record Spans into it, forming a tree that decomposes
// the request's wall-clock the way the paper's §VIII figures decompose
// inference latency (HE linear time vs. enclave transition cost vs.
// in-enclave compute).
//
// Spans attach through the context: With puts a Trace into a context,
// StartSpan opens a child of the current span and returns a derived
// context, and Join fans a fresh context out over several requests'
// traces — the mechanism by which one cross-request batched ECALL is
// attributed to every request that shared it.
//
// Everything is nil-safe: a nil *Tracer starts nil *Traces, a context
// without a trace yields a nil *SpanHandle, and all methods on nil
// receivers no-op, so instrumented code carries no conditionals.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one trace. The root span is always ID 1;
// 0 means "no parent".
type SpanID uint32

// rootID is the span ID reserved for a trace's root (request) span.
const rootID SpanID = 1

// Arg is one numeric annotation on a span (enclave transition counts,
// ciphertext counts, injected overhead, ...).
type Arg struct {
	Key string  `json:"k"`
	Val float64 `json:"v"`
}

// Span is one finished timed region of a request. The json tags define the
// wire form used when a server ships its span subtree back to the client
// inside a traced reply (see Snapshot in remote.go).
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Cat groups spans for filtering: "request", "wire", "serve",
	// "engine", "sgx", "client".
	Cat   string        `json:"cat"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
	Args  []Arg         `json:"args,omitempty"`
}

// Trace collects the span tree of one request. Safe for concurrent span
// recording (batched ECALLs record from the flush goroutine while the
// request goroutine records its own spans).
type Trace struct {
	ID    uint64
	Name  string
	Start time.Time

	next atomic.Uint32

	mu    sync.Mutex
	spans []Span
	end   time.Time
}

// NewTrace opens a trace whose root span starts now.
func NewTrace(id uint64, name string) *Trace {
	tr := &Trace{ID: id, Name: name, Start: time.Now()}
	tr.next.Store(uint32(rootID)) // reserve the root span ID
	return tr
}

func (t *Trace) newID() SpanID { return SpanID(t.next.Add(1)) }

func (t *Trace) record(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Finish closes the trace: the root span's duration becomes the request
// wall-clock. Idempotent; nil-safe.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.end.IsZero() {
		return
	}
	t.end = time.Now()
	t.spans = append(t.spans, Span{
		ID:    rootID,
		Name:  t.Name,
		Cat:   "request",
		Start: t.Start,
		Dur:   t.end.Sub(t.Start),
	})
}

// Finished reports whether Finish has run.
func (t *Trace) Finished() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.end.IsZero()
}

// Wall returns the request wall-clock (zero until Finish).
func (t *Trace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		return 0
	}
	return t.end.Sub(t.Start)
}

// Spans returns a copy of the spans recorded so far.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// scope is one attachment point for new spans: a trace and the span that
// becomes their parent.
type scope struct {
	tr     *Trace
	parent SpanID
}

type ctxKey struct{}

// With returns a context carrying tr; spans started from it become
// children of tr's root span. A nil trace returns ctx unchanged.
func With(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, []scope{{tr: tr, parent: rootID}})
}

// FromContext returns the trace attached to ctx (the first one, if a Join
// attached several), or nil.
func FromContext(ctx context.Context) *Trace {
	scopes, _ := ctx.Value(ctxKey{}).([]scope)
	if len(scopes) == 0 {
		return nil
	}
	return scopes[0].tr
}

// ID returns the ID of the trace attached to ctx, or 0 — the correlation
// key log records carry so structured logs join against trace exports.
func ID(ctx context.Context) uint64 {
	if tr := FromContext(ctx); tr != nil {
		return tr.ID
	}
	return 0
}

// Join returns a context derived from base that records spans into every
// trace attached to the given contexts — how one shared batched ECALL is
// attributed to all the requests waiting on it. Each span lands in each
// trace under that trace's own current parent span. Cancellation and
// values of the joined contexts are NOT inherited; only their trace
// attachments are.
func Join(base context.Context, ctxs ...context.Context) context.Context {
	var all []scope
	seen := make(map[*Trace]bool)
	for _, c := range ctxs {
		if c == nil {
			continue
		}
		scopes, _ := c.Value(ctxKey{}).([]scope)
		for _, sc := range scopes {
			if !seen[sc.tr] {
				seen[sc.tr] = true
				all = append(all, sc)
			}
		}
	}
	if len(all) == 0 {
		return base
	}
	return context.WithValue(base, ctxKey{}, all)
}

// spanPart is one trace's share of an in-flight span (a joined span has
// one part per trace).
type spanPart struct {
	tr     *Trace
	id     SpanID
	parent SpanID
}

// SpanHandle is an open span returned by StartSpan; End records it.
// Nil-safe: all methods on a nil handle no-op.
type SpanHandle struct {
	name  string
	cat   string
	start time.Time
	parts []spanPart

	mu   sync.Mutex
	args []Arg
	done bool
}

// Arg annotates the span with a numeric value; returns the handle for
// chaining.
func (h *SpanHandle) Arg(key string, v float64) *SpanHandle {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	h.args = append(h.args, Arg{Key: key, Val: v})
	h.mu.Unlock()
	return h
}

// End closes the span and records it into every attached trace.
// Idempotent.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	h.done = true
	args := h.args
	h.mu.Unlock()
	dur := time.Since(h.start)
	for _, p := range h.parts {
		p.tr.record(Span{
			ID:     p.id,
			Parent: p.parent,
			Name:   h.name,
			Cat:    h.cat,
			Start:  h.start,
			Dur:    dur,
			Args:   args,
		})
	}
}

// StartSpan opens a span under the current span of every trace attached
// to ctx and returns a derived context under which further spans nest
// inside it. Without an attached trace it returns (ctx, nil) — and the
// nil handle's methods no-op.
func StartSpan(ctx context.Context, name, cat string) (context.Context, *SpanHandle) {
	scopes, _ := ctx.Value(ctxKey{}).([]scope)
	if len(scopes) == 0 {
		return ctx, nil
	}
	h := &SpanHandle{name: name, cat: cat, start: time.Now(), parts: make([]spanPart, len(scopes))}
	child := make([]scope, len(scopes))
	for i, sc := range scopes {
		id := sc.tr.newID()
		h.parts[i] = spanPart{tr: sc.tr, id: id, parent: sc.parent}
		child[i] = scope{tr: sc.tr, parent: id}
	}
	return context.WithValue(ctx, ctxKey{}, child), h
}

// DefaultBufferSize is the Tracer ring capacity when none is given.
const DefaultBufferSize = 64

// Tracer hands out request traces and retains the last N finished ones in
// a ring buffer — the always-on flight recorder the admin endpoint serves
// from. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	capacity int
	nextID   atomic.Uint64
	onFinish atomic.Value // of func(*Trace)

	mu   sync.Mutex
	ring []*Trace
	pos  int
	n    int
}

// NewTracer returns a tracer retaining the last capacity finished traces
// (DefaultBufferSize if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultBufferSize
	}
	return &Tracer{capacity: capacity, ring: make([]*Trace, capacity)}
}

// Start opens a new request trace. Nil-safe: a nil tracer returns a nil
// trace, which every downstream call ignores.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	return NewTrace(t.nextID.Add(1), name)
}

// SetOnFinish installs a hook invoked synchronously (from Finish's caller)
// for every finished trace — how the flight-report recorder observes
// requests without the serving path importing it. A nil fn clears the hook.
func (t *Tracer) SetOnFinish(fn func(*Trace)) {
	if t == nil {
		return
	}
	t.onFinish.Store(fn)
}

// Finish closes tr and retains it in the ring buffer. Idempotent: a trace
// already finished (e.g. closed early so its snapshot could ride the reply,
// then hit again by a deferred safety Finish) is not re-inserted.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	if tr.Finished() {
		return
	}
	tr.Finish()
	t.mu.Lock()
	t.ring[t.pos] = tr
	t.pos = (t.pos + 1) % t.capacity
	if t.n < t.capacity {
		t.n++
	}
	t.mu.Unlock()
	if fn, _ := t.onFinish.Load().(func(*Trace)); fn != nil {
		fn(tr)
	}
}

// Last returns up to n finished traces, oldest first (n <= 0: all
// retained).
func (t *Tracer) Last(n int) []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]*Trace, 0, n)
	for i := t.n - n; i < t.n; i++ {
		out = append(out, t.ring[(t.pos-t.n+i+2*t.capacity)%t.capacity])
	}
	return out
}
