package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"
)

// Distributed tracing across the wire: one inference's latency lives in two
// processes — the client encrypts/uploads/decrypts, the server queues,
// lane-packs and runs the engine. The client mints the trace ID, carries it
// in the request envelope, the server records its span tree under that ID
// (StartRemote), and the reply carries the server tree back as a Snapshot
// the client grafts into its own trace (Graft) — producing one end-to-end
// tree per request: encrypt → upload → queue → lane → engine layers →
// decrypt, exportable as a single Chrome trace.
//
// Timestamps are absolute wall-clock per process; on one machine (tests,
// soaks) they align exactly, across machines the client's wait span brackets
// the server subtree so skew reads as gap, never as overlap corruption.

// Snapshot is the serializable form of a trace's span tree — what a server
// ships back to the client inside a traced reply envelope.
type Snapshot struct {
	ID     uint64    `json:"id"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	WallNS int64     `json:"wall_ns"`
	Spans  []Span    `json:"spans"`
}

// TakeSnapshot copies the trace's identity and spans recorded so far into a
// Snapshot. Nil-safe: a nil trace yields a nil snapshot.
func (t *Trace) TakeSnapshot() *Snapshot {
	if t == nil {
		return nil
	}
	return &Snapshot{
		ID:     t.ID,
		Name:   t.Name,
		Start:  t.Start,
		WallNS: t.Wall().Nanoseconds(),
		Spans:  t.Spans(),
	}
}

// MarshalSnapshot renders a snapshot as JSON for the wire.
func MarshalSnapshot(s *Snapshot) ([]byte, error) {
	return json.Marshal(s)
}

// RootSpanID is the ID of every trace's root span — the graft point for a
// server subtree returned over the wire.
const RootSpanID = rootID

// MaxSnapshotSpans bounds a decoded snapshot: even a deep CNN trace is a
// few hundred spans, so anything past this is a hostile or corrupted blob.
const MaxSnapshotSpans = 1 << 16

// UnmarshalSnapshot parses a wire snapshot, bounding the span count before
// the caller grafts it anywhere.
func UnmarshalSnapshot(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("trace: decoding snapshot: %w", err)
	}
	if len(s.Spans) > MaxSnapshotSpans {
		return nil, fmt.Errorf("trace: snapshot carries %d spans, limit %d", len(s.Spans), MaxSnapshotSpans)
	}
	return &s, nil
}

// Graft splices a remote snapshot into t as a subtree under parent: every
// remote span is renumbered into t's ID space, parent links are remapped,
// and spans whose parent is absent from the snapshot (the remote root) hang
// off the given parent span. Returns the grafted root's new ID (0 when
// nothing was grafted). Nil-safe on both receiver and snapshot.
func (t *Trace) Graft(snap *Snapshot, parent SpanID) SpanID {
	if t == nil || snap == nil || len(snap.Spans) == 0 {
		return 0
	}
	idMap := make(map[SpanID]SpanID, len(snap.Spans))
	for _, s := range snap.Spans {
		if _, dup := idMap[s.ID]; dup {
			continue // corrupted snapshot; keep the first occurrence's mapping
		}
		idMap[s.ID] = t.newID()
	}
	for _, s := range snap.Spans {
		ns := s
		ns.ID = idMap[s.ID]
		if p, ok := idMap[s.Parent]; ok && s.Parent != 0 && s.Parent != s.ID {
			ns.Parent = p
		} else {
			ns.Parent = parent
		}
		t.record(ns)
	}
	return idMap[rootID]
}

// StartRemote opens a trace that joins a distributed trace minted elsewhere:
// the ID is the caller's (normally carried in from the wire), not drawn from
// this tracer's counter. The trace is finished and retained through the same
// Finish path as local traces. Nil-safe: a nil tracer returns a nil trace.
func (t *Tracer) StartRemote(id uint64, name string) *Trace {
	if t == nil {
		return nil
	}
	return NewTrace(id, name)
}

// clientIDMask keeps client-minted trace IDs below 2^52: exact in float64
// (metric exemplars, JSON) with headroom for the per-tracer counter.
const clientIDMask = 1<<52 - 1

// NewClientTracer returns a tracer for the client side of the wire. Its
// trace IDs start from a random base instead of 1, so IDs minted by
// independent clients landing in one server's flight recorder are unique
// with overwhelming probability, while staying below 2^53 so they survive
// float64 round-trips (exemplars, JSON tooling) exactly.
func NewClientTracer(capacity int) *Tracer {
	t := NewTracer(capacity)
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		t.nextID.Store(binary.LittleEndian.Uint64(b[:]) & clientIDMask)
	}
	return t
}
