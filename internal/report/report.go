// Package report turns finished request traces into per-layer "flight
// reports": for every inference, how long each layer took, what it cost in
// NTTs, enclave transitions and EPC paging, and — the paper's central
// resource — how much invariant-noise budget the ciphertexts had left, both
// as the static accountant predicted at plan time and as the enclave
// measured at each SGX refresh (§IV-E). The Recorder observes traces as the
// Tracer finishes them, retains the last N reports for the admin endpoint's
// /inference/last, and folds per-layer series into the metrics registry.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hesgx/internal/trace"
)

// Layer is one engine step of a request, with everything attributed to it.
type Layer struct {
	Step  int    `json:"step"`
	Kind  string `json:"kind"`
	Label string `json:"label"`

	WallMS float64 `json:"wall_ms"`
	CtsIn  int     `json:"cts_in"`
	CtsOut int     `json:"cts_out"`

	// NTT transform counts (linear layers only; see the engine's caveat on
	// concurrent attribution).
	NTTForward int `json:"ntt_forward,omitempty"`
	NTTInverse int `json:"ntt_inverse,omitempty"`

	// RNS modulus-chain kernel activity: per-limb pointwise multiply
	// passes and CRT basis conversions this layer triggered (same
	// approximate attribution as the NTT counters). Zero on layers that
	// never tensor and in hybrid mode, where squares refresh in-enclave.
	LimbMuls   int `json:"limb_muls,omitempty"`
	CRTExtends int `json:"crt_extends,omitempty"`

	// Rotation-keyed packed execution (slot-packed images only): Galois
	// key-switches this layer performed and how many of its rotations rode
	// a shared hoisted decomposition instead of paying a full key-switch
	// each. Zero on scalar-layout layers.
	KeySwitchOps     int `json:"keyswitch_ops,omitempty"`
	HoistedRotations int `json:"hoisted_rotations,omitempty"`

	// Simulated SGX costs summed over the ECALLs this layer triggered.
	Transitions     int     `json:"transitions,omitempty"`
	PageFaults      int     `json:"page_faults,omitempty"`
	ECallOverheadMS float64 `json:"ecall_overhead_ms,omitempty"`
	ECallComputeMS  float64 `json:"ecall_compute_ms,omitempty"`

	// SharedRequests is the peak occupancy of the cross-request batches
	// this layer's ECALLs rode in (0: unbatched). Budget summaries below
	// cover the whole flushed batch, so under shared batches they are
	// approximate per-request attribution — exact when 1.
	SharedRequests int `json:"shared_requests,omitempty"`

	// PredictedBudgetBits is the static noise accountant's conservative
	// bound: for linear layers the budget of the outputs, for enclave
	// layers the budget entering the refresh.
	PredictedBudgetBits *float64 `json:"predicted_budget_bits,omitempty"`
	// MeasuredBudgetMinBits/MeanBits summarize the budget the enclave
	// measured on the ciphertexts it decrypted for this layer; nil when the
	// layer never crossed into the enclave.
	MeasuredBudgetMinBits  *float64 `json:"measured_budget_min_bits,omitempty"`
	MeasuredBudgetMeanBits *float64 `json:"measured_budget_mean_bits,omitempty"`
	// MeasuredCts counts the decrypted ciphertexts the summary covers.
	MeasuredCts int `json:"measured_cts,omitempty"`
}

// LaneStage summarizes one enclave repack stage of a slot-batched request
// (lane_pack or lane_demux): its SGX costs and the noise budget the enclave
// measured on the ciphertexts it decrypted. Shared by every request in the
// packed pass, so the costs are per-pass, not per-request.
type LaneStage struct {
	Transitions     int     `json:"transitions,omitempty"`
	PageFaults      int     `json:"page_faults,omitempty"`
	ECallOverheadMS float64 `json:"ecall_overhead_ms,omitempty"`
	ECallComputeMS  float64 `json:"ecall_compute_ms,omitempty"`

	MeasuredBudgetMinBits  *float64 `json:"measured_budget_min_bits,omitempty"`
	MeasuredBudgetMeanBits *float64 `json:"measured_budget_mean_bits,omitempty"`
	MeasuredCts            int      `json:"measured_cts,omitempty"`
}

// FlightReport is the per-request attribution document served at
// /inference/last.
type FlightReport struct {
	TraceID uint64    `json:"trace_id"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	WallMS  float64   `json:"wall_ms"`

	QueueWaitMS  float64 `json:"queue_wait_ms,omitempty"`
	RequestBytes int     `json:"request_bytes,omitempty"`
	ReplyBytes   int     `json:"reply_bytes,omitempty"`

	// Lane scheduling attribution (slot-batched serving mode). LaneWaitMS is
	// the time this request sat in the lane packer's bucket waiting for
	// company; Lane is its slot index within the shared pass (nil when the
	// request ran scalar) and Lanes the pass occupancy. LanePack / LaneDemux
	// attribute the enclave repack stages that bracket the shared engine
	// pass.
	LaneWaitMS float64    `json:"lane_wait_ms,omitempty"`
	Lane       *int       `json:"lane,omitempty"`
	Lanes      int        `json:"lanes,omitempty"`
	LanePack   *LaneStage `json:"lane_pack,omitempty"`
	LaneDemux  *LaneStage `json:"lane_demux,omitempty"`

	Layers []Layer `json:"layers"`

	// MinPredictedBudgetBits / MinMeasuredBudgetBits are the tightest spots
	// of the whole pipeline — the headroom number an operator watches.
	MinPredictedBudgetBits *float64 `json:"min_predicted_budget_bits,omitempty"`
	MinMeasuredBudgetBits  *float64 `json:"min_measured_budget_bits,omitempty"`
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

func argVal(s trace.Span, key string) (float64, bool) {
	for _, a := range s.Args {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// FromTrace assembles the flight report of a finished trace, attributing
// ECALL and batch spans to their enclosing engine layer by walking span
// parentage. Returns nil for a nil or unfinished trace.
func FromTrace(tr *trace.Trace) *FlightReport {
	if tr == nil || !tr.Finished() {
		return nil
	}
	spans := tr.Spans()
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	// layerOf climbs the parent chain to the enclosing engine layer span.
	layerOf := func(s trace.Span) (trace.SpanID, bool) {
		for depth := 0; depth < 64; depth++ {
			p, ok := byID[s.Parent]
			if !ok {
				return 0, false
			}
			if p.Cat == "engine" && strings.HasPrefix(p.Name, "layer.") {
				return p.ID, true
			}
			s = p
		}
		return 0, false
	}

	rep := &FlightReport{TraceID: tr.ID, Name: tr.Name, Start: tr.Start, WallMS: durMS(tr.Wall())}
	layers := make(map[trace.SpanID]*Layer)
	for _, s := range spans {
		switch {
		case s.Cat == "engine" && strings.HasPrefix(s.Name, "layer."):
			l := &Layer{Kind: strings.TrimPrefix(s.Name, "layer."), WallMS: durMS(s.Dur)}
			if v, ok := argVal(s, "step"); ok {
				l.Step = int(v)
			}
			l.Label = fmt.Sprintf("%02d_%s", l.Step, l.Kind)
			if v, ok := argVal(s, "cts_in"); ok {
				l.CtsIn = int(v)
			}
			if v, ok := argVal(s, "cts_out"); ok {
				l.CtsOut = int(v)
			}
			if v, ok := argVal(s, "ntt_fwd"); ok {
				l.NTTForward = int(v)
			}
			if v, ok := argVal(s, "ntt_inv"); ok {
				l.NTTInverse = int(v)
			}
			if v, ok := argVal(s, "limb_muls"); ok {
				l.LimbMuls = int(v)
			}
			if v, ok := argVal(s, "crt_extends"); ok {
				l.CRTExtends = int(v)
			}
			if v, ok := argVal(s, "keyswitch_ops"); ok {
				l.KeySwitchOps = int(v)
			}
			if v, ok := argVal(s, "hoisted_rotations"); ok {
				l.HoistedRotations = int(v)
			}
			if v, ok := argVal(s, "pred_budget_bits"); ok {
				p := v
				l.PredictedBudgetBits = &p
			}
			layers[s.ID] = l
		case s.Cat == "serve" && s.Name == "queue.wait":
			rep.QueueWaitMS += durMS(s.Dur)
		case s.Cat == "serve" && s.Name == "lane.wait":
			rep.LaneWaitMS += durMS(s.Dur)
			if v, ok := argVal(s, "lane"); ok {
				lane := int(v)
				rep.Lane = &lane
			}
			if v, ok := argVal(s, "lanes"); ok {
				rep.Lanes = int(v)
			}
		case s.Cat == "serve" && (s.Name == "lane.flush" || s.Name == "lane.batch"):
			if v, ok := argVal(s, "lanes"); ok && rep.Lanes == 0 {
				rep.Lanes = int(v)
			}
		case s.Cat == "wire" && s.Name == "wire.decode":
			if v, ok := argVal(s, "bytes"); ok {
				rep.RequestBytes += int(v)
			}
		case s.Cat == "wire" && s.Name == "wire.encode":
			if v, ok := argVal(s, "bytes"); ok {
				rep.ReplyBytes += int(v)
			}
		}
	}
	// Second pass: fold ECALL and batching spans into their layers. Lane
	// repack ECALLs run outside any engine layer (they bracket the whole
	// packed pass), so they fold into the report's LanePack/LaneDemux stages
	// instead of climbing to a layer span.
	for _, s := range spans {
		switch {
		case s.Cat == "sgx" && s.Name == "ecall.lane_pack":
			rep.LanePack = foldLaneStage(rep.LanePack, s)
		case s.Cat == "sgx" && s.Name == "ecall.lane_demux":
			rep.LaneDemux = foldLaneStage(rep.LaneDemux, s)
		case s.Cat == "sgx" && strings.HasPrefix(s.Name, "ecall."):
			id, ok := layerOf(s)
			if !ok {
				continue
			}
			l := layers[id]
			if v, ok := argVal(s, "transitions"); ok {
				l.Transitions += int(v)
			}
			if v, ok := argVal(s, "page_faults"); ok {
				l.PageFaults += int(v)
			}
			if v, ok := argVal(s, "overhead_ms"); ok {
				l.ECallOverheadMS += v
			}
			if v, ok := argVal(s, "compute_ms"); ok {
				l.ECallComputeMS += v
			}
			n, ok := argVal(s, "budget_cts")
			if !ok || n <= 0 {
				continue
			}
			if v, ok := argVal(s, "budget_min_bits"); ok {
				if l.MeasuredBudgetMinBits == nil || v < *l.MeasuredBudgetMinBits {
					m := v
					l.MeasuredBudgetMinBits = &m
				}
			}
			if v, ok := argVal(s, "budget_mean_bits"); ok {
				// Accumulate a count-weighted mean across this layer's
				// (possibly several) ECALLs.
				total := float64(l.MeasuredCts)
				m := (totalMean(l)*total + v*n) / (total + n)
				l.MeasuredBudgetMeanBits = &m
			}
			l.MeasuredCts += int(n)
		case s.Name == "batch.wait":
			id, ok := layerOf(s)
			if !ok {
				continue
			}
			if v, ok := argVal(s, "shared_requests"); ok && int(v) > layers[id].SharedRequests {
				layers[id].SharedRequests = int(v)
			}
		}
	}

	rep.Layers = make([]Layer, 0, len(layers))
	for _, l := range layers {
		rep.Layers = append(rep.Layers, *l)
	}
	sort.Slice(rep.Layers, func(i, j int) bool { return rep.Layers[i].Step < rep.Layers[j].Step })
	for i := range rep.Layers {
		l := &rep.Layers[i]
		if p := l.PredictedBudgetBits; p != nil {
			if rep.MinPredictedBudgetBits == nil || *p < *rep.MinPredictedBudgetBits {
				v := *p
				rep.MinPredictedBudgetBits = &v
			}
		}
		if m := l.MeasuredBudgetMinBits; m != nil {
			if rep.MinMeasuredBudgetBits == nil || *m < *rep.MinMeasuredBudgetBits {
				v := *m
				rep.MinMeasuredBudgetBits = &v
			}
		}
	}
	// The lane repack stages decrypt real ciphertexts too; their measured
	// minima count toward the pipeline-wide tightest spot.
	for _, st := range []*LaneStage{rep.LanePack, rep.LaneDemux} {
		if st == nil || st.MeasuredBudgetMinBits == nil {
			continue
		}
		if rep.MinMeasuredBudgetBits == nil || *st.MeasuredBudgetMinBits < *rep.MinMeasuredBudgetBits {
			v := *st.MeasuredBudgetMinBits
			rep.MinMeasuredBudgetBits = &v
		}
	}
	return rep
}

// foldLaneStage accumulates one lane repack ECALL span into a stage
// summary, creating it on first sight.
func foldLaneStage(st *LaneStage, s trace.Span) *LaneStage {
	if st == nil {
		st = &LaneStage{}
	}
	if v, ok := argVal(s, "transitions"); ok {
		st.Transitions += int(v)
	}
	if v, ok := argVal(s, "page_faults"); ok {
		st.PageFaults += int(v)
	}
	if v, ok := argVal(s, "overhead_ms"); ok {
		st.ECallOverheadMS += v
	}
	if v, ok := argVal(s, "compute_ms"); ok {
		st.ECallComputeMS += v
	}
	n, ok := argVal(s, "budget_cts")
	if !ok || n <= 0 {
		return st
	}
	if v, ok := argVal(s, "budget_min_bits"); ok {
		if st.MeasuredBudgetMinBits == nil || v < *st.MeasuredBudgetMinBits {
			m := v
			st.MeasuredBudgetMinBits = &m
		}
	}
	if v, ok := argVal(s, "budget_mean_bits"); ok {
		total := float64(st.MeasuredCts)
		prev := 0.0
		if st.MeasuredBudgetMeanBits != nil {
			prev = *st.MeasuredBudgetMeanBits
		}
		m := (prev*total + v*n) / (total + n)
		st.MeasuredBudgetMeanBits = &m
	}
	st.MeasuredCts += int(n)
	return st
}

func totalMean(l *Layer) float64 {
	if l.MeasuredBudgetMeanBits == nil {
		return 0
	}
	return *l.MeasuredBudgetMeanBits
}
