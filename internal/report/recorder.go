package report

import (
	"sync"

	"hesgx/internal/stats"
	"hesgx/internal/trace"
)

// DefaultCapacity is the Recorder ring size when none is given.
const DefaultCapacity = 16

// Recorder retains the last N flight reports and folds per-layer series
// into a metrics registry. Wire it to a Tracer with SetOnFinish(r.Observe).
// Safe for concurrent use; a nil *Recorder no-ops.
type Recorder struct {
	metrics *stats.Registry

	mu   sync.Mutex
	ring []*FlightReport
	pos  int
	n    int
}

// NewRecorder returns a recorder keeping the last capacity reports
// (DefaultCapacity if capacity <= 0). metrics may be nil.
func NewRecorder(capacity int, metrics *stats.Registry) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{metrics: metrics, ring: make([]*FlightReport, capacity)}
}

// Observe builds the flight report of a finished trace and retains it.
// Traces without engine layer spans (health checks, non-inference
// requests) are ignored.
func (r *Recorder) Observe(tr *trace.Trace) {
	if r == nil {
		return
	}
	rep := FromTrace(tr)
	if rep == nil || len(rep.Layers) == 0 {
		return
	}
	r.mu.Lock()
	r.ring[r.pos] = rep
	r.pos = (r.pos + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
	r.record(rep)
}

// record folds one report into the registry: per-layer wall time and noise
// budgets keyed by the stable layer label, plus the predicted-vs-measured
// gap — how much headroom the conservative accountant leaves on the table.
func (r *Recorder) record(rep *FlightReport) {
	if r.metrics == nil {
		return
	}
	for i := range rep.Layers {
		l := &rep.Layers[i]
		key := "layer." + l.Label
		r.metrics.ObserveHistogram(key+".wall_ms", l.WallMS)
		if l.PredictedBudgetBits != nil {
			r.metrics.Observe(key+".pred_budget_bits", *l.PredictedBudgetBits)
		}
		if l.MeasuredBudgetMinBits != nil {
			r.metrics.Observe(key+".budget_min_bits", *l.MeasuredBudgetMinBits)
			if l.PredictedBudgetBits != nil {
				r.metrics.Observe("noise.predicted_gap_bits", *l.MeasuredBudgetMinBits-*l.PredictedBudgetBits)
			}
		}
	}
}

// Last returns up to n retained reports, most recent first (n <= 0: all).
func (r *Recorder) Last(n int) []*FlightReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]*FlightReport, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.ring[(r.pos-i+2*len(r.ring))%len(r.ring)])
	}
	return out
}
