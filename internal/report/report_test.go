package report

import (
	"context"
	"encoding/json"
	"testing"

	"hesgx/internal/stats"
	"hesgx/internal/trace"
)

// buildTrace assembles a synthetic two-layer inference trace: a conv layer
// with NTT counts and an act layer whose ECALL carries measured budgets.
func buildTrace(tracer *trace.Tracer) *trace.Trace {
	tr := tracer.Start("request")
	ctx := trace.With(context.Background(), tr)

	_, dec := trace.StartSpan(ctx, "wire.decode", "wire")
	dec.Arg("bytes", 4096).End()

	_, qs := trace.StartSpan(ctx, "queue.wait", "serve")
	qs.End()

	cctx, conv := trace.StartSpan(ctx, "layer.conv", "engine")
	conv.Arg("step", 0).Arg("cts_in", 64).Arg("pred_budget_bits", 20.5).
		Arg("ntt_fwd", 12).Arg("ntt_inv", 3).Arg("cts_out", 25)
	_ = cctx
	conv.End()

	actx, act := trace.StartSpan(ctx, "layer.act", "engine")
	act.Arg("step", 1).Arg("cts_in", 25).Arg("pred_budget_bits", 10.25)
	bctx, bw := trace.StartSpan(actx, "batch.wait", "serve")
	bw.Arg("shared_requests", 3)
	_, ec := trace.StartSpan(bctx, "ecall.sigmoid", "sgx")
	ec.Arg("cts", 25).Arg("transitions", 2).Arg("page_faults", 7).
		Arg("overhead_ms", 1.5).Arg("compute_ms", 0.5).
		Arg("budget_min_bits", 14.0).Arg("budget_mean_bits", 16.0).
		Arg("budget_cts", 25)
	ec.End()
	bw.End()
	act.Arg("cts_out", 25).End()

	_, enc := trace.StartSpan(ctx, "wire.encode", "wire")
	enc.Arg("bytes", 2048).End()

	tracer.Finish(tr)
	return tr
}

func TestFromTrace(t *testing.T) {
	if FromTrace(nil) != nil {
		t.Fatal("nil trace must yield nil report")
	}
	if FromTrace(trace.NewTrace(9, "open")) != nil {
		t.Fatal("unfinished trace must yield nil report")
	}

	tracer := trace.NewTracer(4)
	rep := FromTrace(buildTrace(tracer))
	if rep == nil {
		t.Fatal("nil report for finished trace")
	}
	if rep.RequestBytes != 4096 || rep.ReplyBytes != 2048 {
		t.Errorf("wire bytes = %d/%d, want 4096/2048", rep.RequestBytes, rep.ReplyBytes)
	}
	if len(rep.Layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(rep.Layers))
	}
	conv, act := rep.Layers[0], rep.Layers[1]
	if conv.Kind != "conv" || conv.Label != "00_conv" || conv.NTTForward != 12 || conv.NTTInverse != 3 {
		t.Errorf("conv layer mismatch: %+v", conv)
	}
	if conv.MeasuredBudgetMinBits != nil {
		t.Error("conv layer must have no measured budget")
	}
	if act.Kind != "act" || act.Label != "01_act" {
		t.Errorf("act layer mismatch: %+v", act)
	}
	if act.Transitions != 2 || act.PageFaults != 7 || act.SharedRequests != 3 {
		t.Errorf("ecall attribution mismatch: %+v", act)
	}
	if act.MeasuredBudgetMinBits == nil || *act.MeasuredBudgetMinBits != 14.0 {
		t.Errorf("measured min = %v, want 14", act.MeasuredBudgetMinBits)
	}
	if act.MeasuredBudgetMeanBits == nil || *act.MeasuredBudgetMeanBits != 16.0 {
		t.Errorf("measured mean = %v, want 16", act.MeasuredBudgetMeanBits)
	}
	if act.MeasuredCts != 25 {
		t.Errorf("measured cts = %d, want 25", act.MeasuredCts)
	}
	if act.PredictedBudgetBits == nil || *act.PredictedBudgetBits != 10.25 {
		t.Errorf("predicted = %v, want 10.25", act.PredictedBudgetBits)
	}
	if rep.MinPredictedBudgetBits == nil || *rep.MinPredictedBudgetBits != 10.25 {
		t.Errorf("min predicted = %v, want 10.25", rep.MinPredictedBudgetBits)
	}
	if rep.MinMeasuredBudgetBits == nil || *rep.MinMeasuredBudgetBits != 14.0 {
		t.Errorf("min measured = %v, want 14", rep.MinMeasuredBudgetBits)
	}

	// The report must serialize as valid JSON with its documented keys.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, key := range []string{"trace_id", "wall_ms", "layers", "min_measured_budget_bits"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
}

func TestRecorder(t *testing.T) {
	reg := stats.NewRegistry()
	rec := NewRecorder(2, reg)
	tracer := trace.NewTracer(8)
	tracer.SetOnFinish(rec.Observe)

	// Traces without engine layers (health checks) are ignored.
	empty := tracer.Start("probe")
	tracer.Finish(empty)
	if got := rec.Last(0); len(got) != 0 {
		t.Fatalf("recorder retained %d reports for layer-less trace", len(got))
	}

	var ids []uint64
	for i := 0; i < 3; i++ {
		ids = append(ids, buildTrace(tracer).ID)
	}
	got := rec.Last(0)
	if len(got) != 2 {
		t.Fatalf("retained %d reports, want capacity 2", len(got))
	}
	// Most recent first; the oldest of the three was evicted.
	if got[0].TraceID != ids[2] || got[1].TraceID != ids[1] {
		t.Errorf("retained trace IDs %d,%d; want %d,%d", got[0].TraceID, got[1].TraceID, ids[2], ids[1])
	}
	if got := rec.Last(1); len(got) != 1 || got[0].TraceID != ids[2] {
		t.Errorf("Last(1) = %+v, want most recent %d", got, ids[2])
	}

	snap := reg.Snapshot()
	if snap["layer.01_act.budget_min_bits.count"] != 3 {
		t.Errorf("budget_min_bits count = %v, want 3", snap["layer.01_act.budget_min_bits.count"])
	}
	if snap["layer.01_act.budget_min_bits.min"] != 14.0 {
		t.Errorf("budget_min_bits min = %v, want 14", snap["layer.01_act.budget_min_bits.min"])
	}
	if snap["noise.predicted_gap_bits.mean"] != 14.0-10.25 {
		t.Errorf("predicted gap = %v, want %v", snap["noise.predicted_gap_bits.mean"], 14.0-10.25)
	}
	if snap["layer.00_conv.wall_ms.count"] != 3 {
		t.Errorf("conv wall count = %v, want 3", snap["layer.00_conv.wall_ms.count"])
	}

	// Nil recorder and nil registry are safe.
	var nilRec *Recorder
	nilRec.Observe(tracer.Start("x"))
	if nilRec.Last(0) != nil {
		t.Error("nil recorder Last must be nil")
	}
	NewRecorder(0, nil).Observe(buildTrace(tracer))
}
