// Package loadgen is the soak/load-generation harness: it drives a live
// hesgx edge server over TCP with a configurable mix of encrypted
// inference requests — closed-loop (a fixed fleet of always-busy clients)
// or open-loop (a fixed arrival rate, the shed-behaviour-honest mode) —
// streams a per-second status line, and grades the run against latency,
// shed-rate, and trace-completeness SLOs. cmd/hesgx-loadgen is the CLI;
// the soak tests and CI drive Run directly against an in-process selftest
// server.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/nn"
	"hesgx/internal/stats"
	"hesgx/internal/trace"
	"hesgx/internal/wire"
)

// Shape is one entry of the request-shape mix.
type Shape struct {
	// C, H, W are the image dimensions (must match the served model).
	C, H, W int
	// Weight is the relative frequency of this shape in the mix.
	Weight float64
}

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// ParseShapes parses a shape-mix spec: "CxHxW[:weight][,...]", e.g.
// "1x8x8:4,1x16x16:1". Omitted weights default to 1.
func ParseShapes(spec string) ([]Shape, error) {
	var out []Shape
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		weight := 1.0
		if i := strings.IndexByte(part, ':'); i >= 0 {
			w, err := strconv.ParseFloat(part[i+1:], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("loadgen: shape %q: bad weight", part)
			}
			weight = w
			part = part[:i]
		}
		dims := strings.Split(part, "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("loadgen: shape %q: want CxHxW", part)
		}
		var s Shape
		for i, dst := range []*int{&s.C, &s.H, &s.W} {
			v, err := strconv.Atoi(dims[i])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("loadgen: shape %q: bad dimension %q", part, dims[i])
			}
			*dst = v
		}
		s.Weight = weight
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: no shapes in %q", spec)
	}
	return out, nil
}

// Config tunes one load-generation run.
type Config struct {
	// Addr is the edge server's TCP address.
	Addr string
	// Clients is the connection fleet size (default 4). In closed-loop
	// mode it is also the concurrency; in open-loop mode it bounds how
	// many arrivals can be in flight.
	Clients int
	// Rate selects open-loop mode when positive: arrivals are generated at
	// this many requests/second regardless of completions, and latency is
	// measured from the scheduled arrival (queueing in the generator
	// counts against the server, as a real open system would experience).
	// Zero selects closed-loop mode: every client issues its next request
	// the moment the previous one resolves.
	Rate float64
	// Duration bounds the run (default 10s).
	Duration time.Duration
	// Shapes is the request-shape mix (default 1x8x8 weight 1).
	Shapes []Shape
	// PixelScale is the fixed-point pixel scale (default 63).
	PixelScale uint64
	// Legacy forces the v1 wire encoding.
	Legacy bool
	// Trace turns on distributed tracing: every request carries a
	// client-minted trace ID and the per-stage server latencies come back
	// in flight reports (default true via cmd; the zero value here is
	// untraced).
	Trace bool
	// StatusInterval is the cadence of the streamed status line (default
	// 1s; negative disables).
	StatusInterval time.Duration
	// Out receives the status stream (nil: discarded).
	Out io.Writer
	// Seed makes the shape mix and image contents reproducible (default 1).
	Seed uint64

	// SLOP50 / SLOP99 fail the run when the end-to-end latency quantile
	// exceeds them (0: unchecked).
	SLOP50, SLOP99 time.Duration
	// MaxShedRate fails the run when shed/(ok+shed) exceeds it; 0 demands
	// a shed-free run. Negative: unchecked.
	MaxShedRate float64
	// RequireJoined fails the run unless every traced request assembled a
	// fully-joined end-to-end trace (client spans + server serve/engine
	// spans under one trace ID). Implies nothing when Trace is off.
	RequireJoined bool
}

// Summary is the graded outcome of a run.
type Summary struct {
	Duration   time.Duration `json:"duration"`
	Sent       int64         `json:"sent"`
	OK         int64         `json:"ok"`
	Shed       int64         `json:"shed"`
	Failed     int64         `json:"failed"`
	Throughput float64       `json:"throughput_img_per_s"`
	P50        time.Duration `json:"p50"`
	P99        time.Duration `json:"p99"`
	Max        time.Duration `json:"max"`
	ShedRate   float64       `json:"shed_rate"`
	// MeanLanes is the mean server-side lane occupancy over traced
	// requests (0 when untraced).
	MeanLanes float64 `json:"mean_lanes"`
	// JoinedTraces counts traced requests whose assembled trace contained
	// both client-side and server-side spans.
	JoinedTraces int64 `json:"joined_traces"`
	// ServerQueueP99MS / ServerLaneWaitP99MS are per-stage p99s from the
	// flight reports (0 when untraced).
	ServerQueueP99MS    float64 `json:"server_queue_p99_ms"`
	ServerLaneWaitP99MS float64 `json:"server_lane_wait_p99_ms"`
	// Violations lists every SLO the run broke; empty means the run
	// passed.
	Violations []string `json:"violations,omitempty"`
	// FirstError is the first outright failure's message (diagnosis aid;
	// empty when nothing failed).
	FirstError string `json:"first_error,omitempty"`
}

// result is one request's outcome flowing to the aggregator.
type result struct {
	latency time.Duration
	shed    bool
	failed  bool
	err     error
	// traced fields (zero when tracing is off):
	joined      bool
	lanes       int
	queueWaitMS float64
	laneWaitMS  float64
}

// aggregator folds results and answers status/summary queries.
type aggregator struct {
	mu        sync.Mutex
	sent      int64
	ok        int64
	shed      int64
	failed    int64
	joined    int64
	traced    int64
	laneSum   float64
	laneN     int64
	latency   *stats.Histogram
	queueMS   *stats.Histogram
	laneMS    *stats.Histogram
	firstErr  error
	windowOK  int64 // completions since the last status line
	windowBad int64 // sheds+failures since the last status line
}

func newAggregator() *aggregator {
	return &aggregator{latency: &stats.Histogram{}, queueMS: &stats.Histogram{}, laneMS: &stats.Histogram{}}
}

func (a *aggregator) record(r result) {
	a.mu.Lock()
	a.sent++
	switch {
	case r.shed:
		a.shed++
		a.windowBad++
	case r.failed:
		a.failed++
		a.windowBad++
		if a.firstErr == nil && r.err != nil {
			a.firstErr = r.err
		}
	default:
		a.ok++
		a.windowOK++
		a.latency.Observe(float64(r.latency.Microseconds()) / 1000.0)
	}
	if r.lanes > 0 {
		a.laneSum += float64(r.lanes)
		a.laneN++
	}
	if !r.shed && !r.failed {
		if r.queueWaitMS > 0 {
			a.queueMS.Observe(r.queueWaitMS)
		}
		if r.laneWaitMS > 0 {
			a.laneMS.Observe(r.laneWaitMS)
		}
		if r.joined {
			a.joined++
		}
	}
	a.mu.Unlock()
}

func (a *aggregator) recordTraced() {
	a.mu.Lock()
	a.traced++
	a.mu.Unlock()
}

// statusLine renders one per-second progress line and resets the window
// counters.
func (a *aggregator) statusLine(interval time.Duration) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := a.latency.Snapshot()
	shedRate := 0.0
	if a.windowOK+a.windowBad > 0 {
		shedRate = float64(a.windowBad) / float64(a.windowOK+a.windowBad)
	}
	meanLanes := 0.0
	if a.laneN > 0 {
		meanLanes = a.laneSum / float64(a.laneN)
	}
	line := fmt.Sprintf("%8.1f img/s  p50 %8.2fms  p99 %8.2fms  shed %5.1f%%  lanes %5.2f  ok %d shed %d fail %d",
		float64(a.windowOK)/interval.Seconds(),
		snap.Quantile(0.5), snap.Quantile(0.99),
		100*shedRate, meanLanes, a.ok, a.shed, a.failed)
	a.windowOK, a.windowBad = 0, 0
	return line
}

func (a *aggregator) summary(cfg Config, elapsed time.Duration) *Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := a.latency.Snapshot()
	s := &Summary{
		Duration:     elapsed,
		Sent:         a.sent,
		OK:           a.ok,
		Shed:         a.shed,
		Failed:       a.failed,
		Throughput:   float64(a.ok) / elapsed.Seconds(),
		P50:          time.Duration(snap.Quantile(0.5) * float64(time.Millisecond)),
		P99:          time.Duration(snap.Quantile(0.99) * float64(time.Millisecond)),
		Max:          time.Duration(snap.Max * float64(time.Millisecond)),
		JoinedTraces: a.joined,
	}
	if a.ok == 0 {
		s.Max = 0
	}
	if a.ok+a.shed > 0 {
		s.ShedRate = float64(a.shed) / float64(a.ok+a.shed)
	}
	if a.laneN > 0 {
		s.MeanLanes = a.laneSum / float64(a.laneN)
	}
	if qs := a.queueMS.Snapshot(); !qs.Empty() {
		s.ServerQueueP99MS = qs.Quantile(0.99)
	}
	if ls := a.laneMS.Snapshot(); !ls.Empty() {
		s.ServerLaneWaitP99MS = ls.Quantile(0.99)
	}
	if a.firstErr != nil {
		s.FirstError = a.firstErr.Error()
	}
	// Grade the run.
	if a.failed > 0 {
		v := fmt.Sprintf("%d requests failed outright", a.failed)
		if s.FirstError != "" {
			v += " (first: " + s.FirstError + ")"
		}
		s.Violations = append(s.Violations, v)
	}
	if cfg.SLOP50 > 0 && s.P50 > cfg.SLOP50 {
		s.Violations = append(s.Violations, fmt.Sprintf("p50 %v exceeds SLO %v", s.P50, cfg.SLOP50))
	}
	if cfg.SLOP99 > 0 && s.P99 > cfg.SLOP99 {
		s.Violations = append(s.Violations, fmt.Sprintf("p99 %v exceeds SLO %v", s.P99, cfg.SLOP99))
	}
	if cfg.MaxShedRate >= 0 && s.ShedRate > cfg.MaxShedRate {
		s.Violations = append(s.Violations, fmt.Sprintf("shed rate %.3f exceeds limit %.3f", s.ShedRate, cfg.MaxShedRate))
	}
	if cfg.Trace && cfg.RequireJoined && a.joined < a.ok {
		s.Violations = append(s.Violations,
			fmt.Sprintf("only %d/%d successful traced requests assembled a joined end-to-end trace", a.joined, a.ok))
	}
	return s
}

// joinedTrace reports whether an assembled trace carries both sides of the
// wire: client-category spans and server-side serve or engine spans.
func joinedTrace(tr *trace.Trace) bool {
	if tr == nil {
		return false
	}
	var client, server bool
	for _, sp := range tr.Spans() {
		switch sp.Cat {
		case "client":
			client = true
		case "serve", "engine", "sgx":
			server = true
		}
	}
	return client && server
}

// Run executes one load-generation run and returns its graded summary. An
// error means the run itself could not execute (dial/attest failure);
// SLO violations are reported in Summary.Violations, not as errors.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("loadgen: Config.Addr is required")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if len(cfg.Shapes) == 0 {
		cfg.Shapes = []Shape{{C: 1, H: 8, W: 8, Weight: 1}}
	}
	if cfg.PixelScale == 0 {
		cfg.PixelScale = 63
	}
	if cfg.StatusInterval == 0 {
		cfg.StatusInterval = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	// Dial and attest the fleet before the clock starts: connection setup
	// is not the phenomenon under test.
	clients := make([]*wire.Client, cfg.Clients)
	for i := range clients {
		opts := []wire.ClientOption{wire.WithLegacyFormat(cfg.Legacy)}
		if cfg.Trace {
			opts = append(opts, wire.WithClientTracer(nil))
		}
		c, err := wire.Dial(cfg.Addr, attest.NewService(), opts...)
		if err != nil {
			return nil, fmt.Errorf("loadgen: client %d: %w", i, err)
		}
		defer c.Close()
		if err := c.FetchTrustBundle(); err != nil {
			return nil, fmt.Errorf("loadgen: client %d trust bundle: %w", i, err)
		}
		if err := c.Attest(); err != nil {
			return nil, fmt.Errorf("loadgen: client %d attest: %w", i, err)
		}
		clients[i] = c
	}

	agg := newAggregator()
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()

	// Status streamer.
	var statusWG sync.WaitGroup
	if cfg.StatusInterval > 0 && cfg.Out != nil {
		statusWG.Add(1)
		go func() {
			defer statusWG.Done()
			tick := time.NewTicker(cfg.StatusInterval)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-tick.C:
					fmt.Fprintln(cfg.Out, agg.statusLine(cfg.StatusInterval))
				}
			}
		}()
	}

	// Open-loop arrivals: a ticker feeds timestamps into a bounded channel;
	// a full channel means the generator itself is the bottleneck and the
	// arrival is dropped (counted as shed against the run, honestly — an
	// open system would have queued it against the server).
	var arrivals chan time.Time
	if cfg.Rate > 0 {
		arrivals = make(chan time.Time, cfg.Clients*4)
		statusWG.Add(1)
		go func() {
			defer statusWG.Done()
			defer close(arrivals)
			period := time.Duration(float64(time.Second) / cfg.Rate)
			if period <= 0 {
				period = time.Microsecond
			}
			tick := time.NewTicker(period)
			defer tick.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case t := <-tick.C:
					select {
					case arrivals <- t:
					default:
						agg.record(result{shed: true})
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(id int, c *wire.Client) {
			defer wg.Done()
			rng := mrand.New(mrand.NewPCG(cfg.Seed, uint64(id)))
			for {
				var arrived time.Time
				if arrivals != nil {
					var ok bool
					select {
					case <-runCtx.Done():
						return
					case arrived, ok = <-arrivals:
						if !ok {
							return
						}
					}
				} else {
					if runCtx.Err() != nil {
						return
					}
					arrived = time.Now()
				}
				agg.record(runOne(c, cfg, rng, arrived, agg))
			}
		}(i, c)
	}
	wg.Wait()
	cancel()
	statusWG.Wait()
	return agg.summary(cfg, time.Since(start)), nil
}

// runOne issues a single inference and classifies its outcome.
func runOne(c *wire.Client, cfg Config, rng *mrand.Rand, arrived time.Time, agg *aggregator) result {
	shape := pickShape(cfg.Shapes, rng)
	img := nn.NewTensor(shape.C, shape.H, shape.W)
	for i := range img.Data {
		img.Data[i] = rng.Float64()
	}
	if cfg.Trace {
		agg.recordTraced()
	}
	_, err := c.Infer(img, cfg.PixelScale)
	r := result{latency: time.Since(arrived)}
	if err != nil {
		var serr *wire.ServerError
		if errors.As(err, &serr) && (serr.Code == wire.CodeOverloaded || serr.Code == wire.CodeDeadline) {
			r.shed = true
		} else {
			r.failed = true
			r.err = err
		}
		return r
	}
	if cfg.Trace {
		r.joined = joinedTrace(c.LastTrace())
		if rep := c.LastReport(); rep != nil {
			r.lanes = rep.Lanes
			r.queueWaitMS = rep.QueueWaitMS
			r.laneWaitMS = rep.LaneWaitMS
		}
	}
	return r
}

// pickShape draws one shape from the weighted mix.
func pickShape(shapes []Shape, rng *mrand.Rand) Shape {
	if len(shapes) == 1 {
		return shapes[0]
	}
	var total float64
	for _, s := range shapes {
		total += s.Weight
	}
	x := rng.Float64() * total
	for _, s := range shapes {
		if x < s.Weight {
			return s
		}
		x -= s.Weight
	}
	return shapes[len(shapes)-1]
}
