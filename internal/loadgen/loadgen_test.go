package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestParseShapes(t *testing.T) {
	shapes, err := ParseShapes("1x8x8:4, 1x16x16")
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 2 {
		t.Fatalf("got %d shapes", len(shapes))
	}
	if shapes[0] != (Shape{C: 1, H: 8, W: 8, Weight: 4}) {
		t.Errorf("shape 0: %+v", shapes[0])
	}
	if shapes[1] != (Shape{C: 1, H: 16, W: 16, Weight: 1}) {
		t.Errorf("shape 1: %+v", shapes[1])
	}
	for _, bad := range []string{"", "8x8", "1x8x8:0", "1x8x8:-1", "axbxc", "1x8x8:x"} {
		if _, err := ParseShapes(bad); err == nil {
			t.Errorf("ParseShapes(%q) did not fail", bad)
		}
	}
}

// TestSoakSelftest is the in-process soak: a short closed-loop run against
// the selftest server must complete shed-free with every request's trace
// fully joined (client and server spans under one client-minted ID).
func TestSoakSelftest(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	srv, err := StartSelftest(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var status strings.Builder
	sum, err := Run(context.Background(), Config{
		Addr:           srv.Addr(),
		Clients:        3,
		Duration:       3 * time.Second,
		Trace:          true,
		StatusInterval: time.Second,
		Out:            &status,
		MaxShedRate:    0,
		RequireJoined:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK == 0 {
		t.Fatal("soak completed zero requests")
	}
	if len(sum.Violations) > 0 {
		t.Fatalf("soak violated SLOs: %v", sum.Violations)
	}
	if sum.Shed != 0 || sum.Failed != 0 {
		t.Fatalf("soak shed %d / failed %d requests", sum.Shed, sum.Failed)
	}
	if sum.JoinedTraces != sum.OK {
		t.Fatalf("only %d/%d traces joined", sum.JoinedTraces, sum.OK)
	}
	if sum.MeanLanes < 1 {
		t.Errorf("mean lane occupancy %.2f, want >= 1", sum.MeanLanes)
	}
	if !strings.Contains(status.String(), "img/s") {
		t.Errorf("status stream missing progress lines: %q", status.String())
	}
	// The server-side tracer must also have retained traces.
	if traced := srv.Metrics().Counter("wire.requests_traced").Value(); traced == 0 {
		t.Error("server counted zero traced requests")
	}
}

// TestOpenLoop drives the arrival-rate mode at a modest rate and checks
// that requests flow and latency is measured from arrival.
func TestOpenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	srv, err := StartSelftest(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sum, err := Run(context.Background(), Config{
		Addr:           srv.Addr(),
		Clients:        2,
		Rate:           5,
		Duration:       2 * time.Second,
		StatusInterval: -1,
		MaxShedRate:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK == 0 {
		t.Fatal("open loop completed zero requests")
	}
	// ~5 req/s for 2s: the generator must not have free-run far past the
	// scheduled arrivals.
	if sum.Sent > 20 {
		t.Errorf("open loop sent %d requests at rate 5 over 2s", sum.Sent)
	}
}
