package loadgen

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	mrand "math/rand/v2"
	"net"
	"os"
	"time"

	"hesgx/internal/core"
	"hesgx/internal/diag"
	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
	"hesgx/internal/serve"
	"hesgx/internal/sgx"
	"hesgx/internal/stats"
	"hesgx/internal/wire"
)

// Selftest is an in-process edge server the load generator can point at
// itself: CI soaks and `hesgx-loadgen -selftest` exercise the full wire
// path (TCP, attestation, traced envelopes, lane packing) without an
// external deployment.
type Selftest struct {
	addr     string
	service  *serve.Service
	metrics  *stats.Registry
	bus      *diag.Bus
	capturer *diag.Capturer
	diagDir  string
	cancel   context.CancelFunc
	done     chan error
}

// Addr is the TCP address the selftest server listens on.
func (s *Selftest) Addr() string { return s.addr }

// Metrics exposes the server-side registry for post-run assertions.
func (s *Selftest) Metrics() *stats.Registry { return s.metrics }

// Service exposes the serving pipeline (scheduler + lane packer).
func (s *Selftest) Service() *serve.Service { return s.service }

// Events returns the diagnostic event log accumulated during the run,
// oldest first. A healthy soak returns an empty slice.
func (s *Selftest) Events() []diag.Event { return s.bus.Recent(0) }

// Captures returns how many postmortem bundles the run triggered. A
// healthy soak captures none; see DiagDir for the bundles of an unhealthy
// one.
func (s *Selftest) Captures() int { return s.capturer.Captures() }

// DiagDir is where triggered bundles land. The directory is removed on
// Close when no bundle was captured and kept (for postmortem inspection)
// when one was.
func (s *Selftest) DiagDir() string { return s.diagDir }

// Close shuts the server down and waits for the accept loop to drain.
func (s *Selftest) Close() error {
	s.cancel()
	var err error
	select {
	case err = <-s.done:
	case <-time.After(5 * time.Second):
		err = fmt.Errorf("loadgen: selftest server did not shut down")
	}
	s.service.Close()
	if s.diagDir != "" && s.capturer.Captures() == 0 {
		os.RemoveAll(s.diagDir)
	}
	return err
}

// StartSelftest builds the reference serving stack — batching-capable
// parameters (N=1024), a zero-cost deterministic SGX platform, the small
// conv→sigmoid→pool→FC model used across the repo's integration tests,
// and the lane scheduler — and serves it on 127.0.0.1:0. The model accepts
// 1x8x8 images (the loadgen default shape).
func StartSelftest(logw io.Writer) (*Selftest, error) {
	tm, err := core.SIMDBatchingModulus(1024, 20)
	if err != nil {
		return nil, fmt.Errorf("loadgen: selftest modulus: %w", err)
	}
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		return nil, fmt.Errorf("loadgen: selftest prime: %w", err)
	}
	params, err := he.NewParameters(1024, q, tm, he.DefaultDecompositionBase)
	if err != nil {
		return nil, fmt.Errorf("loadgen: selftest parameters: %w", err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(1))
	if err != nil {
		return nil, fmt.Errorf("loadgen: selftest platform: %w", err)
	}
	metrics := stats.NewRegistry()
	bus := diag.NewBus(diag.DefaultBusCapacity, metrics)
	// The toy N=1024 batching parameters are sized to land exact results
	// with essentially zero noise headroom at the end of the pipeline
	// (lane_demux routinely measures ~0 bits while the serve-package
	// equivalence tests prove the results exact). A budget floor at this
	// tier would alert on healthy runs, so the noise alert is disabled;
	// the soak's zero-bundle gate covers the load-dependent signals (shed
	// spikes, wire faults, SGX anomalies, SLO pages).
	svc, err := core.NewEnclaveService(platform, params,
		core.WithKeySource(ring.NewSeededSource(31)), core.WithEventBus(bus),
		core.WithNoiseWarnThreshold(-1))
	if err != nil {
		return nil, fmt.Errorf("loadgen: selftest enclave: %w", err)
	}
	r := mrand.New(mrand.NewPCG(3, 4))
	model := nn.NewNetwork(
		nn.NewConv2D(1, 2, 3, 1, r),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(2*3*3, 4, r),
	)
	engine, err := core.NewEngine(svc, model,
		core.WithScales(63, 16, 256), core.WithPoolStrategy(core.PoolSGXDiv))
	if err != nil {
		return nil, fmt.Errorf("loadgen: selftest engine: %w", err)
	}
	if err := engine.EncodeWeights(); err != nil {
		return nil, fmt.Errorf("loadgen: selftest weights: %w", err)
	}
	service := serve.NewService(engine, svc,
		serve.WithMetrics(metrics),
		serve.WithSchedulerConfig(serve.SchedulerConfig{Workers: 2, QueueDepth: 64}),
		serve.WithLaneConfig(serve.LaneConfig{MaxLanes: 16, MinLanes: 2, Window: 10 * time.Millisecond}))
	if logw == nil {
		logw = io.Discard
	}
	srv, err := wire.NewServer(svc, engine, slog.New(slog.NewTextHandler(logw, nil)),
		wire.WithMetrics(metrics), wire.WithService(service),
		wire.WithTracer(service.Tracer), wire.WithEventBus(bus))
	if err != nil {
		service.Close()
		return nil, fmt.Errorf("loadgen: selftest server: %w", err)
	}
	// The full diagnostics loop runs armed, exactly as a production server
	// would: a healthy soak must end with zero captured bundles, and an
	// unhealthy one leaves a postmortem bundle behind to debug from.
	diagDir, err := os.MkdirTemp("", "hesgx-loadgen-diag-*")
	if err != nil {
		service.Close()
		return nil, fmt.Errorf("loadgen: selftest diag dir: %w", err)
	}
	recorder := diag.NewRecorder(diag.RecorderConfig{Registry: metrics})
	monitor := diag.NewMonitor(diag.MonitorConfig{Bus: bus})
	recorder.OnSample(monitor.Observe)
	capturer := diag.NewCapturer(bus, recorder, diag.CaptureConfig{Dir: diagDir})
	capturer.AddSource(diag.TracesSource(service.Tracer, 0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		service.Close()
		os.RemoveAll(diagDir)
		return nil, fmt.Errorf("loadgen: selftest listener: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go recorder.Run(ctx)
	go capturer.Run(ctx)
	go func() { done <- srv.Serve(ctx, ln) }()
	return &Selftest{
		addr:     ln.Addr().String(),
		service:  service,
		metrics:  metrics,
		bus:      bus,
		capturer: capturer,
		diagDir:  diagDir,
		cancel:   cancel,
		done:     done,
	}, nil
}
