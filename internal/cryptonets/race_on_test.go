//go:build race

package cryptonets

// raceEnabled reports whether the race detector is compiled in; heavyweight
// large-degree tests skip under it (the -race memory model multiplies their
// runtime several-fold without adding coverage the small-degree equivalence
// tests lack).
const raceEnabled = true
