package cryptonets

import (
	"testing"

	"hesgx/internal/ring"
)

// TestFullCNNLargeDegree runs the complete paper CNN — conv, square
// activation, pool, FC — end to end at n = 8192 with a maximal 58-bit
// coefficient modulus, a degree only the RNS modulus-chain multiplier can
// serve (the u128 tensor path rejects it), and pins every decrypted logit
// to the exact-integer plaintext oracle. This is the acceptance test for
// the tentpole: params build, the full-CNN equivalence holds, and an
// end-to-end inference completes at the new degree.
func TestFullCNNLargeDegree(t *testing.T) {
	if testing.Short() {
		t.Skip("n=8192 full-CNN inference is slow; skipped in -short")
	}
	if raceEnabled {
		t.Skip("n=8192 full-CNN inference under -race multiplies runtime; covered un-raced")
	}
	cfg := testConfig()
	cfg.N = 8192
	cfg.QBits = 58

	kb, ek, err := GenerateKeys(cfg, ring.NewSeededSource(81))
	if err != nil {
		t.Fatal(err)
	}
	model := tinyCryptoNet(82)
	engine, err := NewEngine(model, cfg, ek)
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(83)
	ci, err := kb.EncryptImage(img, cfg.PixelScale, ring.NewSeededSource(84))
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.Infer(ci)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kb.DecryptCRT(results)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.ReferenceForward(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d logits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: encrypted %d != plaintext oracle %d", i, got[i], want[i])
		}
	}
}
