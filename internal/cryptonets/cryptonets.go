// Package cryptonets implements the pure-HE baseline the paper compares
// against (the "Encrypted" scheme of Fig. 8): CryptoNets-style inference
// [Gilad-Bachrach et al., ICML'16] where every layer runs homomorphically —
// the Sigmoid is replaced by the polynomial Square activation (ct×ct
// multiplication followed by relinearization) and mean pooling by the
// scaled mean-pool (window sum, no division).
//
// Like CryptoNets, the plaintext space is the CRT product of several small
// coprime moduli: each modulus gets its own FV instance (keeping
// multiplication noise manageable), the pipeline runs once per modulus, and
// the client reconstructs exact integer logits with the Chinese Remainder
// Theorem.
package cryptonets

import (
	"fmt"
	"math/big"

	"hesgx/internal/encoding"
	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
)

// Config tunes the baseline.
type Config struct {
	// N and QBits select the FV ring (CryptoNets needs a deeper circuit
	// than the hybrid, so the default tier is n=4096).
	N     int
	QBits int
	// DecompBaseBits is the relinearization decomposition base (small
	// bases add less relinearization noise at more key material).
	DecompBaseBits int
	// Moduli are the pairwise-coprime plaintext moduli.
	Moduli []uint64
	// PixelScale and WeightScale quantize inputs and weights.
	PixelScale  uint64
	WeightScale uint64
	// TruePlainMul forces full C×P products for weight multiplication.
	TruePlainMul bool
}

// DefaultConfig returns parameters tuned for the Fig. 7 CryptoNets variant.
func DefaultConfig() Config {
	return Config{
		N:              4096,
		QBits:          58,
		DecompBaseBits: 8,
		Moduli:         []uint64{113, 127, 131, 137, 139, 149},
		PixelScale:     8,
		WeightScale:    8,
	}
}

// Parameters builds the per-modulus FV parameter sets.
func (c Config) Parameters() ([]he.Parameters, error) {
	if len(c.Moduli) == 0 {
		return nil, fmt.Errorf("cryptonets: no plaintext moduli")
	}
	for i, a := range c.Moduli {
		for _, b := range c.Moduli[i+1:] {
			if gcd(a, b) != 1 {
				return nil, fmt.Errorf("cryptonets: moduli %d and %d are not coprime", a, b)
			}
		}
	}
	q, err := ring.GenerateNTTPrime(c.QBits, c.N)
	if err != nil {
		return nil, fmt.Errorf("cryptonets: generating modulus: %w", err)
	}
	out := make([]he.Parameters, len(c.Moduli))
	for i, t := range c.Moduli {
		p, err := he.NewParameters(c.N, q, t, c.DecompBaseBits)
		if err != nil {
			return nil, fmt.Errorf("cryptonets: parameters for t=%d: %w", t, err)
		}
		out[i] = p
	}
	return out, nil
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// KeyBundle is the client-held key material: one FV keypair per modulus.
type KeyBundle struct {
	Params []he.Parameters
	SKs    []*he.SecretKey
	PKs    []*he.PublicKey
}

// EvalKeys is the server-held material: relinearization keys per modulus.
// Unlike the hybrid framework, the pure-HE baseline cannot avoid shipping
// these (§III-A "Relinearization").
type EvalKeys struct {
	Params []he.Parameters
	EKs    []*he.EvaluationKeys
}

// GenerateKeys creates all per-modulus key material.
func GenerateKeys(cfg Config, src ring.Source) (*KeyBundle, *EvalKeys, error) {
	params, err := cfg.Parameters()
	if err != nil {
		return nil, nil, err
	}
	kb := &KeyBundle{Params: params}
	ek := &EvalKeys{Params: params}
	for _, p := range params {
		kg, err := he.NewKeyGenerator(p, src)
		if err != nil {
			return nil, nil, err
		}
		sk, pk := kg.GenKeyPair()
		kb.SKs = append(kb.SKs, sk)
		kb.PKs = append(kb.PKs, pk)
		ek.EKs = append(ek.EKs, kg.GenEvaluationKeys(sk))
	}
	return kb, ek, nil
}

// CipherImage is the per-modulus encryption of one image: CTs[m][p] is
// pixel p under modulus m.
type CipherImage struct {
	Channels, Height, Width int
	CTs                     [][]*he.Ciphertext
}

// EncryptImage encrypts an image under every modulus.
func (kb *KeyBundle) EncryptImage(img *nn.Tensor, pixelScale uint64, src ring.Source) (*CipherImage, error) {
	if len(img.Shape) != 3 {
		return nil, fmt.Errorf("cryptonets: image must be [c, h, w]")
	}
	ints := nn.QuantizeImage(img, float64(pixelScale))
	ci := &CipherImage{Channels: img.Shape[0], Height: img.Shape[1], Width: img.Shape[2]}
	for m, pk := range kb.PKs {
		enc, err := he.NewEncryptor(pk, src)
		if err != nil {
			return nil, err
		}
		scalar, err := encoding.NewScalarEncoder(kb.Params[m])
		if err != nil {
			return nil, err
		}
		cts := make([]*he.Ciphertext, len(ints))
		for i, v := range ints {
			ct, err := enc.Encrypt(scalar.Encode(v))
			if err != nil {
				return nil, fmt.Errorf("cryptonets: encrypting pixel %d under modulus %d: %w", i, m, err)
			}
			cts[i] = ct
		}
		ci.CTs = append(ci.CTs, cts)
	}
	return ci, nil
}

// DecryptCRT decrypts per-modulus result vectors and reconstructs the
// exact integers with the CRT, centered in (-M/2, M/2] for M = prod(t_i).
func (kb *KeyBundle) DecryptCRT(results [][]*he.Ciphertext) ([]int64, error) {
	if len(results) != len(kb.SKs) {
		return nil, fmt.Errorf("cryptonets: %d result vectors for %d moduli", len(results), len(kb.SKs))
	}
	if len(results) == 0 || len(results[0]) == 0 {
		return nil, fmt.Errorf("cryptonets: empty results")
	}
	count := len(results[0])
	// Residues per output index.
	residues := make([][]uint64, count)
	for i := range residues {
		residues[i] = make([]uint64, len(results))
	}
	for m, cts := range results {
		if len(cts) != count {
			return nil, fmt.Errorf("cryptonets: modulus %d returned %d values, want %d", m, len(cts), count)
		}
		dec, err := he.NewDecryptor(kb.SKs[m])
		if err != nil {
			return nil, err
		}
		for i, ct := range cts {
			pt, err := dec.Decrypt(ct)
			if err != nil {
				return nil, fmt.Errorf("cryptonets: decrypting output %d modulus %d: %w", i, m, err)
			}
			residues[i][m] = pt.Poly.Coeffs[0]
		}
	}
	moduli := make([]uint64, len(kb.Params))
	for i, p := range kb.Params {
		moduli[i] = p.T
	}
	out := make([]int64, count)
	for i, rs := range residues {
		v, err := crtReconstruct(rs, moduli)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// crtReconstruct solves x ≡ r_i (mod m_i), returning the centered value.
func crtReconstruct(rs, ms []uint64) (int64, error) {
	bigM := big.NewInt(1)
	for _, m := range ms {
		bigM.Mul(bigM, new(big.Int).SetUint64(m))
	}
	x := new(big.Int)
	for i, m := range ms {
		mi := new(big.Int).SetUint64(m)
		Mi := new(big.Int).Div(bigM, mi)
		inv := new(big.Int).ModInverse(Mi, mi)
		if inv == nil {
			return 0, fmt.Errorf("cryptonets: moduli not coprime")
		}
		term := new(big.Int).SetUint64(rs[i])
		term.Mul(term, Mi)
		term.Mul(term, inv)
		x.Add(x, term)
	}
	x.Mod(x, bigM)
	// Center.
	half := new(big.Int).Rsh(bigM, 1)
	if x.Cmp(half) > 0 {
		x.Sub(x, bigM)
	}
	if !x.IsInt64() {
		return 0, fmt.Errorf("cryptonets: CRT value exceeds int64")
	}
	return x.Int64(), nil
}

// CRTRange returns the product of the plaintext moduli; exact recovery
// needs |value| < CRTRange/2.
func (cfg Config) CRTRange() *big.Int {
	m := big.NewInt(1)
	for _, t := range cfg.Moduli {
		m.Mul(m, new(big.Int).SetUint64(t))
	}
	return m
}
