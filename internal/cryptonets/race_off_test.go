//go:build !race

package cryptonets

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
