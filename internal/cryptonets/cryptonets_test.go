package cryptonets

import (
	"math"
	mrand "math/rand/v2"
	"testing"

	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
)

// testConfig is a small, fast configuration for the tiny test CNN.
func testConfig() Config {
	return Config{
		N:              512,
		QBits:          46,
		DecompBaseBits: 8,
		Moduli:         []uint64{113, 127, 131, 137},
		PixelScale:     8,
		WeightScale:    8,
	}
}

func tinyCryptoNet(seed uint64) *nn.Network {
	r := mrand.New(mrand.NewPCG(seed, seed^3))
	return nn.NewNetwork(
		nn.NewConv2D(1, 2, 3, 1, r),
		nn.NewActivation(nn.Square),
		nn.NewPool2D(nn.SumPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(2*3*3, 4, r),
	)
}

func tinyImage(seed uint64) *nn.Tensor {
	r := mrand.New(mrand.NewPCG(seed, seed^4))
	img := nn.NewTensor(1, 8, 8)
	for i := range img.Data {
		img.Data[i] = r.Float64()
	}
	return img
}

func TestConfigParameters(t *testing.T) {
	cfg := testConfig()
	params, err := cfg.Parameters()
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 4 {
		t.Fatalf("got %d parameter sets", len(params))
	}
	for i, p := range params {
		if p.T != cfg.Moduli[i] {
			t.Fatalf("params %d has t=%d", i, p.T)
		}
	}
}

func TestConfigRejectsNonCoprimeModuli(t *testing.T) {
	cfg := testConfig()
	cfg.Moduli = []uint64{6, 9}
	if _, err := cfg.Parameters(); err == nil {
		t.Fatal("non-coprime moduli accepted")
	}
	cfg.Moduli = nil
	if _, err := cfg.Parameters(); err == nil {
		t.Fatal("empty moduli accepted")
	}
}

func TestCRTReconstruct(t *testing.T) {
	ms := []uint64{3, 5, 7}
	tests := []int64{0, 1, -1, 17, -17, 52, -52}
	for _, want := range tests {
		rs := make([]uint64, len(ms))
		for i, m := range ms {
			r := want % int64(m)
			if r < 0 {
				r += int64(m)
			}
			rs[i] = uint64(r)
		}
		got, err := crtReconstruct(rs, ms)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("CRT(%d) = %d", want, got)
		}
	}
}

func TestGenerateKeys(t *testing.T) {
	cfg := testConfig()
	kb, ek, err := GenerateKeys(cfg, ring.NewSeededSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(kb.SKs) != 4 || len(kb.PKs) != 4 || len(ek.EKs) != 4 {
		t.Fatal("wrong key counts")
	}
}

func TestEngineValidatesModel(t *testing.T) {
	cfg := testConfig()
	_, ek, err := GenerateKeys(cfg, ring.NewSeededSource(2))
	if err != nil {
		t.Fatal(err)
	}
	r := mrand.New(mrand.NewPCG(9, 9))

	sigmoidModel := nn.NewNetwork(nn.NewConv2D(1, 1, 3, 1, r), nn.NewActivation(nn.Sigmoid))
	if _, err := NewEngine(sigmoidModel, cfg, ek); err == nil {
		t.Fatal("Sigmoid accepted by pure-HE engine")
	}
	meanModel := nn.NewNetwork(nn.NewConv2D(1, 1, 3, 1, r), nn.NewPool2D(nn.MeanPool, 2))
	if _, err := NewEngine(meanModel, cfg, ek); err == nil {
		t.Fatal("MeanPool accepted by pure-HE engine")
	}
	if _, err := NewEngine(tinyCryptoNet(1), cfg, nil); err == nil {
		t.Fatal("nil evaluation keys accepted")
	}
}

func TestEngineRejectsInsufficientCRTRange(t *testing.T) {
	cfg := testConfig()
	cfg.Moduli = []uint64{3, 5} // range 15, far below the pipeline values
	_, ek, err := GenerateKeys(cfg, ring.NewSeededSource(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(tinyCryptoNet(2), cfg, ek); err == nil {
		t.Fatal("insufficient CRT range accepted")
	}
}

func TestPureHEInferenceMatchesReference(t *testing.T) {
	cfg := testConfig()
	kb, ek, err := GenerateKeys(cfg, ring.NewSeededSource(4))
	if err != nil {
		t.Fatal(err)
	}
	model := tinyCryptoNet(5)
	engine, err := NewEngine(model, cfg, ek)
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(5)
	ci, err := kb.EncryptImage(img, cfg.PixelScale, ring.NewSeededSource(6))
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.Infer(ci)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kb.DecryptCRT(results)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.ReferenceForward(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d logits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: encrypted %d != reference %d", i, got[i], want[i])
		}
	}
}

func TestPureHEArgmaxMatchesFloat(t *testing.T) {
	cfg := testConfig()
	kb, ek, err := GenerateKeys(cfg, ring.NewSeededSource(7))
	if err != nil {
		t.Fatal(err)
	}
	model := tinyCryptoNet(8)
	engine, err := NewEngine(model, cfg, ek)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		img := tinyImage(uint64(50 + trial))
		floatOut, err := model.Forward(img)
		if err != nil {
			t.Fatal(err)
		}
		ci, _ := kb.EncryptImage(img, cfg.PixelScale, ring.NewSeededSource(uint64(60+trial)))
		results, err := engine.Infer(ci)
		if err != nil {
			t.Fatal(err)
		}
		got, err := kb.DecryptCRT(results)
		if err != nil {
			t.Fatal(err)
		}
		arg, best := 0, int64(math.MinInt64)
		for i, v := range got {
			if v > best {
				arg, best = i, v
			}
		}
		if arg == floatOut.ArgMax() {
			agree++
		}
	}
	if agree < trials-1 {
		t.Fatalf("only %d/%d argmax agreements", agree, trials)
	}
}

func TestNoiseBudgetSurvivesPipeline(t *testing.T) {
	cfg := testConfig()
	kb, ek, err := GenerateKeys(cfg, ring.NewSeededSource(10))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(tinyCryptoNet(11), cfg, ek)
	if err != nil {
		t.Fatal(err)
	}
	img := tinyImage(11)
	ci, _ := kb.EncryptImage(img, cfg.PixelScale, ring.NewSeededSource(12))
	results, err := engine.Infer(ci)
	if err != nil {
		t.Fatal(err)
	}
	for m := range results {
		dec, err := he.NewDecryptor(kb.SKs[m])
		if err != nil {
			t.Fatal(err)
		}
		budget, err := dec.NoiseBudget(results[m][0])
		if err != nil {
			t.Fatal(err)
		}
		if budget <= 0 {
			t.Fatalf("modulus %d budget exhausted: %.1f", m, budget)
		}
		t.Logf("modulus t=%d final budget: %.1f bits", kb.Params[m].T, budget)
	}
}

func TestDecryptCRTValidation(t *testing.T) {
	cfg := testConfig()
	kb, _, err := GenerateKeys(cfg, ring.NewSeededSource(13))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kb.DecryptCRT(nil); err == nil {
		t.Fatal("nil results accepted")
	}
	if _, err := kb.DecryptCRT([][]*he.Ciphertext{{}, {}, {}, {}}); err == nil {
		t.Fatal("empty results accepted")
	}
}

func TestInferRejectsWrongImage(t *testing.T) {
	cfg := testConfig()
	_, ek, err := GenerateKeys(cfg, ring.NewSeededSource(14))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(tinyCryptoNet(15), cfg, ek)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Infer(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := engine.Infer(&CipherImage{CTs: make([][]*he.Ciphertext, 1)}); err == nil {
		t.Fatal("wrong modulus count accepted")
	}
}
