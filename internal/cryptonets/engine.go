package cryptonets

import (
	"fmt"
	"math/big"

	"hesgx/internal/encoding"
	"hesgx/internal/he"
	"hesgx/internal/nn"
)

// stepKind enumerates pipeline stages.
type stepKind int

const (
	stepConv stepKind = iota + 1
	stepSquare
	stepSumPool
	stepFC
	stepFlatten
)

// planStep is one stage of the pure-HE pipeline.
type planStep struct {
	kind   stepKind
	conv   *nn.QuantizedConv
	fc     *nn.QuantizedFC
	window int
}

// Engine runs CryptoNets-style inference: all layers homomorphic, one pass
// per CRT modulus. The supported layer sequence is Conv2D, Square
// activation, SumPool, Flatten, FullyConnected.
type Engine struct {
	cfg    Config
	params []he.Parameters
	evals  []*he.Evaluator
	scals  []*encoding.ScalarEncoder
	eks    []*he.EvaluationKeys
	steps  []*planStep
	// maxRef bounds the exact output magnitude, for CRT range validation.
	maxRef *big.Int
}

// NewEngine plans the baseline execution of model with the server-side
// evaluation keys.
func NewEngine(model *nn.Network, cfg Config, evalKeys *EvalKeys) (*Engine, error) {
	if evalKeys == nil || len(evalKeys.EKs) != len(cfg.Moduli) {
		return nil, fmt.Errorf("cryptonets: evaluation keys missing or mismatched")
	}
	params := evalKeys.Params
	e := &Engine{cfg: cfg, params: params, eks: evalKeys.EKs}
	for _, p := range params {
		ev, err := he.NewEvaluator(p)
		if err != nil {
			return nil, err
		}
		sc, err := encoding.NewScalarEncoder(p)
		if err != nil {
			return nil, err
		}
		e.evals = append(e.evals, ev)
		e.scals = append(e.scals, sc)
	}

	maxMag := new(big.Int).SetUint64(cfg.PixelScale)
	// scale tracks the fixed-point scale of the integer activations so
	// biases land on the right scale at each layer.
	scale := float64(cfg.PixelScale)
	for i, l := range model.Layers {
		switch v := l.(type) {
		case *nn.Conv2D:
			q, err := nn.QuantizeConv(v, float64(cfg.WeightScale), scale)
			if err != nil {
				return nil, err
			}
			e.steps = append(e.steps, &planStep{kind: stepConv, conv: q})
			maxMag = bigConvBound(q, maxMag)
			scale *= float64(cfg.WeightScale)
		case *nn.Activation:
			if v.Kind != nn.Square {
				return nil, fmt.Errorf("cryptonets: layer %d: pure HE supports only the Square activation, got %s (use the hybrid engine for %s)", i, v.Kind, v.Kind)
			}
			e.steps = append(e.steps, &planStep{kind: stepSquare})
			maxMag.Mul(maxMag, maxMag)
			scale *= scale
		case *nn.Pool2D:
			if v.Kind != nn.SumPool {
				return nil, fmt.Errorf("cryptonets: layer %d: pure HE supports only the scaled mean-pool (SumPool), got %s", i, v.Kind)
			}
			e.steps = append(e.steps, &planStep{kind: stepSumPool, window: v.K})
			maxMag.Mul(maxMag, big.NewInt(int64(v.K*v.K)))
		case *nn.Flatten:
			e.steps = append(e.steps, &planStep{kind: stepFlatten})
		case *nn.FullyConnected:
			q, err := nn.QuantizeFC(v, float64(cfg.WeightScale), scale)
			if err != nil {
				return nil, err
			}
			e.steps = append(e.steps, &planStep{kind: stepFC, fc: q})
			maxMag = bigFCBound(q, maxMag)
			scale *= float64(cfg.WeightScale)
		default:
			return nil, fmt.Errorf("cryptonets: unsupported layer %T at %d", l, i)
		}
	}
	e.maxRef = maxMag
	// Exact CRT recovery requires 2*maxRef < prod(moduli).
	doubled := new(big.Int).Lsh(maxMag, 1)
	if doubled.Cmp(cfg.CRTRange()) >= 0 {
		return nil, fmt.Errorf("cryptonets: worst-case output magnitude %v exceeds CRT range %v; add moduli or lower scales",
			maxMag, cfg.CRTRange())
	}
	// The int64 reference pipeline must not overflow.
	if maxMag.BitLen() > 62 {
		return nil, fmt.Errorf("cryptonets: worst-case magnitude needs %d bits; lower the scales", maxMag.BitLen())
	}
	return e, nil
}

func bigConvBound(q *nn.QuantizedConv, maxIn *big.Int) *big.Int {
	worst := new(big.Int)
	for o := 0; o < q.OutC; o++ {
		sum := new(big.Int).SetInt64(absInt64(q.B[o]))
		for i := 0; i < q.InC; i++ {
			for ky := 0; ky < q.K; ky++ {
				for kx := 0; kx < q.K; kx++ {
					term := new(big.Int).SetInt64(absInt64(q.WAt(o, i, ky, kx)))
					term.Mul(term, maxIn)
					sum.Add(sum, term)
				}
			}
		}
		if sum.Cmp(worst) > 0 {
			worst = sum
		}
	}
	return worst
}

func bigFCBound(q *nn.QuantizedFC, maxIn *big.Int) *big.Int {
	worst := new(big.Int)
	for o := 0; o < q.Out; o++ {
		sum := new(big.Int).SetInt64(absInt64(q.B[o]))
		for _, w := range q.W[o*q.In : (o+1)*q.In] {
			term := new(big.Int).SetInt64(absInt64(w))
			term.Mul(term, maxIn)
			sum.Add(sum, term)
		}
		if sum.Cmp(worst) > 0 {
			worst = sum
		}
	}
	return worst
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Infer runs the full pure-HE pipeline over every modulus instance,
// returning per-modulus encrypted logits for the client's DecryptCRT.
func (e *Engine) Infer(img *CipherImage) ([][]*he.Ciphertext, error) {
	if img == nil {
		return nil, fmt.Errorf("cryptonets: nil cipher image")
	}
	if len(img.CTs) != len(e.params) {
		return nil, fmt.Errorf("cryptonets: image encrypted under %d moduli, engine has %d", len(img.CTs), len(e.params))
	}
	out := make([][]*he.Ciphertext, len(e.params))
	for m := range e.params {
		logits, err := e.inferModulus(m, img.CTs[m], img.Channels, img.Height, img.Width)
		if err != nil {
			return nil, fmt.Errorf("cryptonets: modulus %d (t=%d): %w", m, e.params[m].T, err)
		}
		out[m] = logits
	}
	return out, nil
}

// InferModulus runs one modulus instance (exposed for benchmarking a
// single pass).
func (e *Engine) InferModulus(m int, cts []*he.Ciphertext, c, h, w int) ([]*he.Ciphertext, error) {
	return e.inferModulus(m, cts, c, h, w)
}

func (e *Engine) inferModulus(m int, in []*he.Ciphertext, c, h, w int) ([]*he.Ciphertext, error) {
	cts := in
	var err error
	for i, s := range e.steps {
		switch s.kind {
		case stepConv:
			cts, c, h, w, err = e.runConv(m, s, cts, c, h, w)
		case stepSquare:
			cts, err = e.runSquare(m, cts)
		case stepSumPool:
			cts, h, w, err = e.runSumPool(m, s, cts, c, h, w)
		case stepFlatten:
			// no-op on the flat slice
		case stepFC:
			cts, err = e.runFC(m, s, cts)
			c, h, w = len(cts), 1, 1
		}
		if err != nil {
			return nil, fmt.Errorf("step %d: %w", i, err)
		}
	}
	return cts, nil
}

func (e *Engine) mulWeight(m int, ct *he.Ciphertext, w int64) (*he.Ciphertext, error) {
	if e.cfg.TruePlainMul {
		return e.evals[m].MulPlain(ct, e.scals[m].Encode(w))
	}
	return e.evals[m].MulScalar(ct, e.scals[m].EncodeValue(w))
}

func (e *Engine) runConv(m int, s *planStep, in []*he.Ciphertext, c, h, w int) ([]*he.Ciphertext, int, int, int, error) {
	q := s.conv
	if c != q.InC || len(in) != c*h*w {
		return nil, 0, 0, 0, fmt.Errorf("conv input %d cts (%dx%dx%d), want inC=%d", len(in), c, h, w, q.InC)
	}
	oh, ow := q.OutSize(h), q.OutSize(w)
	out := make([]*he.Ciphertext, q.OutC*oh*ow)
	eval := e.evals[m]
	for o := 0; o < q.OutC; o++ {
		biasPt := e.scals[m].Encode(q.B[o])
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc *he.Ciphertext
				for i := 0; i < q.InC; i++ {
					for ky := 0; ky < q.K; ky++ {
						iy := oy*q.Stride + ky
						for kx := 0; kx < q.K; kx++ {
							wv := q.WAt(o, i, ky, kx)
							if wv == 0 && !e.cfg.TruePlainMul {
								continue
							}
							ct := in[(i*h+iy)*w+ox*q.Stride+kx]
							var err error
							switch {
							case acc == nil:
								acc, err = e.mulWeight(m, ct, wv)
							case e.cfg.TruePlainMul:
								var term *he.Ciphertext
								if term, err = e.mulWeight(m, ct, wv); err == nil {
									acc, err = eval.Add(acc, term)
								}
							default:
								err = eval.MulScalarAddInto(acc, ct, e.scals[m].EncodeValue(wv))
							}
							if err != nil {
								return nil, 0, 0, 0, err
							}
						}
					}
				}
				var err error
				if acc == nil {
					if acc, err = eval.MulScalar(in[0], 0); err != nil {
						return nil, 0, 0, 0, err
					}
				}
				if acc, err = eval.AddPlain(acc, biasPt); err != nil {
					return nil, 0, 0, 0, err
				}
				out[(o*oh+oy)*ow+ox] = acc
			}
		}
	}
	return out, q.OutC, oh, ow, nil
}

// runSquare is the polynomial activation: ct×ct followed by
// relinearization, the EncryptSigmoid path of Fig. 5.
func (e *Engine) runSquare(m int, in []*he.Ciphertext) ([]*he.Ciphertext, error) {
	eval := e.evals[m]
	out := make([]*he.Ciphertext, len(in))
	for i, ct := range in {
		sq, err := eval.Square(ct)
		if err != nil {
			return nil, fmt.Errorf("square %d: %w", i, err)
		}
		if out[i], err = eval.Relinearize(sq, e.eks[m]); err != nil {
			return nil, fmt.Errorf("relinearize %d: %w", i, err)
		}
	}
	return out, nil
}

func (e *Engine) runSumPool(m int, s *planStep, in []*he.Ciphertext, c, h, w int) ([]*he.Ciphertext, int, int, error) {
	k := s.window
	if h%k != 0 || w%k != 0 {
		return nil, 0, 0, fmt.Errorf("pool window %d does not divide %dx%d", k, h, w)
	}
	oh, ow := h/k, w/k
	out := make([]*he.Ciphertext, c*oh*ow)
	eval := e.evals[m]
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc *he.Ciphertext
				var err error
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						ct := in[(ch*h+oy*k+ky)*w+ox*k+kx]
						if acc == nil {
							acc = ct
						} else if acc, err = eval.Add(acc, ct); err != nil {
							return nil, 0, 0, err
						}
					}
				}
				out[(ch*oh+oy)*ow+ox] = acc
			}
		}
	}
	return out, oh, ow, nil
}

func (e *Engine) runFC(m int, s *planStep, in []*he.Ciphertext) ([]*he.Ciphertext, error) {
	q := s.fc
	if len(in) != q.In {
		return nil, fmt.Errorf("fc input %d cts, want %d", len(in), q.In)
	}
	eval := e.evals[m]
	out := make([]*he.Ciphertext, q.Out)
	for o := 0; o < q.Out; o++ {
		var acc *he.Ciphertext
		var err error
		for i, ct := range in {
			wv := q.W[o*q.In+i]
			if wv == 0 && !e.cfg.TruePlainMul {
				continue
			}
			switch {
			case acc == nil:
				acc, err = e.mulWeight(m, ct, wv)
			case e.cfg.TruePlainMul:
				var term *he.Ciphertext
				if term, err = e.mulWeight(m, ct, wv); err == nil {
					acc, err = eval.Add(acc, term)
				}
			default:
				err = eval.MulScalarAddInto(acc, ct, e.scals[m].EncodeValue(wv))
			}
			if err != nil {
				return nil, err
			}
		}
		if acc == nil {
			if acc, err = eval.MulScalar(in[0], 0); err != nil {
				return nil, err
			}
		}
		if acc, err = eval.AddPlain(acc, e.scals[m].Encode(q.B[o])); err != nil {
			return nil, err
		}
		out[o] = acc
	}
	return out, nil
}

// ReferenceForward runs the exact integer pipeline in plaintext; encrypted
// results must CRT-reconstruct to exactly these values.
func (e *Engine) ReferenceForward(img *nn.Tensor) ([]int64, error) {
	vals := nn.QuantizeImage(img, float64(e.cfg.PixelScale))
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	for i, s := range e.steps {
		switch s.kind {
		case stepConv:
			out, oh, ow, err := s.conv.Forward(vals, h, w)
			if err != nil {
				return nil, fmt.Errorf("cryptonets: reference step %d: %w", i, err)
			}
			vals, c, h, w = out, s.conv.OutC, oh, ow
		case stepSquare:
			for j, v := range vals {
				vals[j] = v * v
			}
		case stepSumPool:
			k := s.window
			oh, ow := h/k, w/k
			out := make([]int64, c*oh*ow)
			for ch := 0; ch < c; ch++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						var sum int64
						for ky := 0; ky < k; ky++ {
							for kx := 0; kx < k; kx++ {
								sum += vals[(ch*h+oy*k+ky)*w+ox*k+kx]
							}
						}
						out[(ch*oh+oy)*ow+ox] = sum
					}
				}
			}
			vals, h, w = out, oh, ow
		case stepFlatten:
		case stepFC:
			out, err := s.fc.Forward(vals)
			if err != nil {
				return nil, fmt.Errorf("cryptonets: reference step %d: %w", i, err)
			}
			vals = out
			c, h, w = len(vals), 1, 1
		}
	}
	return vals, nil
}
