package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"io"
)

// sealWithKey encrypts data with AES-256-GCM under key, producing
// nonce || ciphertext. This models SGX sealed blobs (EGETKEY + AES-GCM).
func sealWithKey(key [32]byte, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: seal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: seal GCM: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("sgx: seal nonce: %w", err)
	}
	return gcm.Seal(nonce, nonce, data, nil), nil
}

// unsealWithKey reverses sealWithKey, failing on any tampering.
func unsealWithKey(key [32]byte, blob []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: unseal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: unseal GCM: %w", err)
	}
	if len(blob) < gcm.NonceSize() {
		return nil, fmt.Errorf("sgx: sealed blob too short")
	}
	nonce, ct := blob[:gcm.NonceSize()], blob[gcm.NonceSize():]
	out, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("sgx: unseal: %w", err)
	}
	return out, nil
}
