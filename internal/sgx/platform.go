package sgx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math"
	mrand "math/rand/v2"
	"sync"
	"time"
)

// Platform models one SGX-capable machine: it owns the cost model, a
// platform sealing secret (fused into real CPUs), and the attestation key
// a quoting enclave would use. Create enclaves on it with Launch.
type Platform struct {
	cost CostModel

	sealSecret [32]byte
	attKey     *ecdsa.PrivateKey

	mu     sync.Mutex
	jitter *mrand.Rand

	statsMu sync.Mutex
	stats   Stats
}

// Stats aggregates simulated-overhead accounting across a platform's
// enclaves, so experiments can report how much time the SGX tax added.
type Stats struct {
	ECalls           uint64
	OCalls           uint64
	PageFaults       uint64
	InjectedOverhead time.Duration
	EnclaveCompute   time.Duration
}

// Transitions counts enclave boundary crossings (ECALLs + OCALLs) — the
// resource cross-request batching amortizes.
func (s Stats) Transitions() uint64 { return s.ECalls + s.OCalls }

// Sub returns the accounting delta s - prev, for before/after measurements
// around a workload.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		ECalls:           s.ECalls - prev.ECalls,
		OCalls:           s.OCalls - prev.OCalls,
		PageFaults:       s.PageFaults - prev.PageFaults,
		InjectedOverhead: s.InjectedOverhead - prev.InjectedOverhead,
		EnclaveCompute:   s.EnclaveCompute - prev.EnclaveCompute,
	}
}

// PlatformOption customizes platform construction.
type PlatformOption func(*platformConfig)

type platformConfig struct {
	rng        io.Reader
	jitterSeed uint64
}

// WithEntropy overrides the entropy source for key and secret generation
// (tests use a deterministic reader).
func WithEntropy(r io.Reader) PlatformOption {
	return func(c *platformConfig) { c.rng = r }
}

// WithJitterSeed makes the injected timing jitter deterministic.
func WithJitterSeed(seed uint64) PlatformOption {
	return func(c *platformConfig) { c.jitterSeed = seed }
}

// NewPlatform builds a platform with the given cost model.
func NewPlatform(cost CostModel, opts ...PlatformOption) (*Platform, error) {
	cfg := platformConfig{rng: rand.Reader, jitterSeed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	p := &Platform{
		cost:   cost.normalized(),
		jitter: mrand.New(mrand.NewPCG(cfg.jitterSeed, cfg.jitterSeed^0xda7a)),
	}
	if _, err := io.ReadFull(cfg.rng, p.sealSecret[:]); err != nil {
		return nil, fmt.Errorf("sgx: generating platform seal secret: %w", err)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), cfg.rng)
	if err != nil {
		return nil, fmt.Errorf("sgx: generating attestation key: %w", err)
	}
	p.attKey = key
	return p, nil
}

// Cost returns the platform's cost model.
func (p *Platform) Cost() CostModel { return p.cost }

// AttestationPublicKey returns the public half of the platform's quoting
// key; a verification service registers it (Intel's provisioning role).
func (p *Platform) AttestationPublicKey() *ecdsa.PublicKey {
	return &p.attKey.PublicKey
}

// signQuote signs digest with the platform attestation key. Only package
// attest calls this, via Quote generation.
func (p *Platform) signQuote(digest []byte) ([]byte, error) {
	return ecdsa.SignASN1(rand.Reader, p.attKey, digest)
}

// SignQuoteDigest signs a quote digest (measurement, user data and nonce
// already hashed). It simulates the quoting enclave's EPID/ECDSA signing.
func (p *Platform) SignQuoteDigest(digest [32]byte) ([]byte, error) {
	return p.signQuote(digest[:])
}

// Snapshot returns a copy of the accumulated overhead statistics.
func (p *Platform) Snapshot() Stats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.stats
}

// ResetStats zeroes the accumulated statistics.
func (p *Platform) ResetStats() {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	p.stats = Stats{}
}

func (p *Platform) recordECall(overhead, compute time.Duration, faults uint64) {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	p.stats.ECalls++
	p.stats.PageFaults += faults
	p.stats.InjectedOverhead += overhead
	p.stats.EnclaveCompute += compute
}

func (p *Platform) recordOCall(overhead time.Duration) {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	p.stats.OCalls++
	p.stats.InjectedOverhead += overhead
}

// jittered perturbs d multiplicatively with the model's jitter fraction.
func (p *Platform) jittered(d time.Duration) time.Duration {
	if p.cost.JitterFraction <= 0 || d <= 0 {
		return d
	}
	p.mu.Lock()
	f := 1 + p.cost.JitterFraction*p.jitter.NormFloat64()
	p.mu.Unlock()
	if f < 0.1 {
		f = 0.1
	}
	return time.Duration(float64(d) * f)
}

// inject burns wall-clock time to model SGX overhead. Short delays busy-wait
// for accuracy; longer ones sleep.
func inject(d time.Duration) {
	if d <= 0 {
		return
	}
	if d > 500*time.Microsecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// sealKey derives the sealing key for a measurement, binding sealed blobs
// to (platform, enclave identity) like MRENCLAVE-policy sealing.
func (p *Platform) sealKey(measurement [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("hesgx/sgx/seal-key/v1"))
	h.Write(p.sealSecret[:])
	h.Write(measurement[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// overheadFor computes the extra time an enclave execution of length
// compute with the given working set should cost.
func (p *Platform) overheadFor(compute time.Duration, workingSet int) (time.Duration, uint64) {
	c := p.cost
	over := c.TransitionLatency
	if c.InEnclaveSlowdown > 1 {
		over += time.Duration(float64(compute) * (c.InEnclaveSlowdown - 1))
	}
	var faults uint64
	if workingSet > c.EPCBytes {
		excess := workingSet - c.EPCBytes
		faults = uint64((excess + c.PageBytes - 1) / c.PageBytes)
		over += time.Duration(faults) * c.PagingLatency
	}
	if over < 0 || float64(over) > math.MaxInt64/2 {
		over = 0
	}
	return p.jittered(over), faults
}
