package sgx

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ECallFunc is trusted code: it runs "inside" the enclave with access to a
// Context for memory accounting and OCALLs. Input and output cross the
// enclave boundary as opaque bytes, as with real EDL-generated bridges.
type ECallFunc func(ctx *Context, input []byte) ([]byte, error)

// Definition declares an enclave before launch: its name, version, and the
// ECALL table. The measurement (MRENCLAVE analogue) hashes all of it, so
// any change to the declared identity changes the measurement.
type Definition struct {
	Name    string
	Version string
	ECalls  map[string]ECallFunc
}

// Enclave is a launched enclave instance. It is safe for concurrent ECALLs.
type Enclave struct {
	platform    *Platform
	name        string
	measurement [32]byte
	ecalls      map[string]ECallFunc

	mu        sync.Mutex
	destroyed bool
}

// Launch creates an enclave on the platform and computes its measurement.
func (p *Platform) Launch(def Definition) (*Enclave, error) {
	if def.Name == "" {
		return nil, fmt.Errorf("sgx: enclave needs a name")
	}
	if len(def.ECalls) == 0 {
		return nil, fmt.Errorf("sgx: enclave %q declares no ECALLs", def.Name)
	}
	e := &Enclave{
		platform: p,
		name:     def.Name,
		ecalls:   make(map[string]ECallFunc, len(def.ECalls)),
	}
	h := sha256.New()
	h.Write([]byte("hesgx/sgx/measurement/v1"))
	writeLenPrefixed(h, []byte(def.Name))
	writeLenPrefixed(h, []byte(def.Version))
	names := make([]string, 0, len(def.ECalls))
	for name, fn := range def.ECalls {
		if fn == nil {
			return nil, fmt.Errorf("sgx: ECALL %q is nil", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeLenPrefixed(h, []byte(name))
		e.ecalls[name] = def.ECalls[name]
	}
	copy(e.measurement[:], h.Sum(nil))
	return e, nil
}

func writeLenPrefixed(h interface{ Write([]byte) (int, error) }, b []byte) {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(b)))
	h.Write(l[:])
	h.Write(b)
}

// Measurement returns the enclave's identity hash (MRENCLAVE analogue).
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// Name returns the enclave's name.
func (e *Enclave) Name() string { return e.name }

// Platform returns the platform hosting this enclave.
func (e *Enclave) Platform() *Platform { return e.platform }

// Destroy tears the enclave down; subsequent ECALLs fail.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.destroyed = true
}

// Context is passed to trusted code during an ECALL.
type Context struct {
	enclave *Enclave
	// workingSet accumulates bytes Touch()ed during the call for the EPC
	// paging model.
	workingSet int
	// ocalls / ocallOverhead attribute boundary exits made during this
	// call to it (CallStats). Trusted code runs an ECALL on one
	// goroutine, so plain fields suffice.
	ocalls        uint64
	ocallOverhead time.Duration
}

// Touch informs the EPC model that trusted code worked over n bytes of
// enclave memory during this call.
func (c *Context) Touch(n int) {
	if n > 0 {
		c.workingSet += n
	}
}

// Measurement returns the enclosing enclave's measurement, which trusted
// code may embed in reports.
func (c *Context) Measurement() [32]byte { return c.enclave.measurement }

// Seal encrypts data under the enclave's sealing identity.
func (c *Context) Seal(data []byte) ([]byte, error) {
	return sealWithKey(c.enclave.platform.sealKey(c.enclave.measurement), data)
}

// Unseal decrypts a blob sealed by this enclave identity on this platform.
func (c *Context) Unseal(blob []byte) ([]byte, error) {
	return unsealWithKey(c.enclave.platform.sealKey(c.enclave.measurement), blob)
}

// OCall leaves the enclave to run untrusted code, charging a boundary
// transition in each direction. Real enclaves need this for every syscall —
// one of the interaction risks §III-B describes.
func (c *Context) OCall(fn func() error) error {
	p := c.enclave.platform
	over := p.jittered(p.cost.TransitionLatency)
	inject(over)
	p.recordOCall(over)
	c.ocalls++
	c.ocallOverhead += over
	return fn()
}

// CallStats attributes one ECALL's simulated SGX cost to its caller, so
// per-request traces can decompose enclave time the way the platform-wide
// Stats aggregate does.
type CallStats struct {
	// OCalls counts boundary exits trusted code made during the call.
	OCalls uint64
	// PageFaults counts EPC paging events charged to the call.
	PageFaults uint64
	// Overhead is the injected SGX tax: the ECALL transition, in-enclave
	// slowdown, paging, plus any OCALL transitions.
	Overhead time.Duration
	// Compute is the trusted code's wall-clock (including time spent in
	// OCALLs it issued).
	Compute time.Duration
}

// Transitions counts the boundary crossings the call paid: the ECALL
// itself plus its OCALLs.
func (cs CallStats) Transitions() uint64 { return 1 + cs.OCalls }

// ECallContext is ECall with cancellation at the boundary: if ctx is
// already done the call fails before paying the enclave transition.
// Trusted code cannot be preempted once entered (real enclaves run ECALLs
// to completion), so cancellation mid-call is not attempted — the check
// keeps cancelled requests from queueing new transitions.
func (e *Enclave) ECallContext(ctx context.Context, name string, input []byte) ([]byte, error) {
	out, _, err := e.ECallContextStats(ctx, name, input)
	return out, err
}

// ECallContextStats is ECallContext returning the call's attributed cost.
func (e *Enclave) ECallContextStats(ctx context.Context, name string, input []byte) ([]byte, CallStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, CallStats{}, fmt.Errorf("sgx: ECALL %q not entered: %w", name, err)
	}
	return e.ECallStats(name, input)
}

// ECall invokes a named entry point inside the enclave: the input crosses
// the boundary, trusted code runs under the cost model (slowdown, paging,
// jitter), and the output crosses back.
func (e *Enclave) ECall(name string, input []byte) ([]byte, error) {
	out, _, err := e.ECallStats(name, input)
	return out, err
}

// ECallStats is ECall returning the call's attributed cost, whether or
// not the trusted code succeeded (a failed call still paid its
// transitions).
func (e *Enclave) ECallStats(name string, input []byte) ([]byte, CallStats, error) {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return nil, CallStats{}, fmt.Errorf("sgx: enclave %q is destroyed", e.name)
	}
	fn, ok := e.ecalls[name]
	e.mu.Unlock()
	if !ok {
		return nil, CallStats{}, fmt.Errorf("sgx: enclave %q has no ECALL %q", e.name, name)
	}

	ctx := &Context{enclave: e}
	ctx.Touch(len(input))
	start := time.Now()
	out, err := fn(ctx, input)
	compute := time.Since(start)
	ctx.Touch(len(out))

	overhead, faults := e.platform.overheadFor(compute, ctx.workingSet)
	inject(overhead)
	e.platform.recordECall(overhead, compute, faults)
	cs := CallStats{
		OCalls:     ctx.ocalls,
		PageFaults: faults,
		Overhead:   overhead + ctx.ocallOverhead,
		Compute:    compute,
	}
	if err != nil {
		return nil, cs, fmt.Errorf("sgx: ECALL %q: %w", name, err)
	}
	return out, cs, nil
}
