package sgx

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func zeroPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(ZeroCost(), WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func echoDef() Definition {
	return Definition{
		Name:    "echo",
		Version: "1.0",
		ECalls: map[string]ECallFunc{
			"echo": func(_ *Context, in []byte) ([]byte, error) {
				out := make([]byte, len(in))
				copy(out, in)
				return out, nil
			},
		},
	}
}

func TestLaunchValidation(t *testing.T) {
	p := zeroPlatform(t)
	if _, err := p.Launch(Definition{Name: "", ECalls: echoDef().ECalls}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := p.Launch(Definition{Name: "x"}); err == nil {
		t.Fatal("no ecalls accepted")
	}
	if _, err := p.Launch(Definition{Name: "x", ECalls: map[string]ECallFunc{"f": nil}}); err == nil {
		t.Fatal("nil ecall accepted")
	}
}

func TestECallRoundTrip(t *testing.T) {
	p := zeroPlatform(t)
	e, err := p.Launch(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.ECall("echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello" {
		t.Fatalf("echo returned %q", out)
	}
	if _, err := e.ECall("missing", nil); err == nil {
		t.Fatal("unknown ecall accepted")
	}
}

func TestECallErrorPropagates(t *testing.T) {
	p := zeroPlatform(t)
	sentinel := errors.New("trusted failure")
	e, err := p.Launch(Definition{
		Name: "failer",
		ECalls: map[string]ECallFunc{
			"fail": func(*Context, []byte) ([]byte, error) { return nil, sentinel },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ECall("fail", nil); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want wrapped sentinel", err)
	}
}

func TestDestroyedEnclaveRejectsECalls(t *testing.T) {
	p := zeroPlatform(t)
	e, _ := p.Launch(echoDef())
	e.Destroy()
	if _, err := e.ECall("echo", nil); err == nil {
		t.Fatal("destroyed enclave accepted ECALL")
	}
}

func TestMeasurementDeterministicAndSensitive(t *testing.T) {
	p := zeroPlatform(t)
	e1, _ := p.Launch(echoDef())
	e2, _ := p.Launch(echoDef())
	if e1.Measurement() != e2.Measurement() {
		t.Fatal("same definition produced different measurements")
	}

	changedVersion := echoDef()
	changedVersion.Version = "2.0"
	e3, _ := p.Launch(changedVersion)
	if e3.Measurement() == e1.Measurement() {
		t.Fatal("version change did not change measurement")
	}

	changedCalls := echoDef()
	changedCalls.ECalls["extra"] = func(*Context, []byte) ([]byte, error) { return nil, nil }
	e4, _ := p.Launch(changedCalls)
	if e4.Measurement() == e1.Measurement() {
		t.Fatal("ECALL table change did not change measurement")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p := zeroPlatform(t)
	var blob []byte
	def := Definition{
		Name: "sealer",
		ECalls: map[string]ECallFunc{
			"seal": func(ctx *Context, in []byte) ([]byte, error) {
				return ctx.Seal(in)
			},
			"unseal": func(ctx *Context, in []byte) ([]byte, error) {
				return ctx.Unseal(in)
			},
		},
	}
	e, err := p.Launch(def)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("model weights")
	blob, err = e.ECall("seal", secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, secret) {
		t.Fatal("sealed blob leaks plaintext")
	}
	got, err := e.ECall("unseal", blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("unseal mismatch")
	}

	t.Run("tampered blob rejected", func(t *testing.T) {
		bad := bytes.Clone(blob)
		bad[len(bad)-1] ^= 1
		if _, err := e.ECall("unseal", bad); err == nil {
			t.Fatal("tampered blob unsealed")
		}
	})

	t.Run("different enclave identity cannot unseal", func(t *testing.T) {
		other := def
		other.Name = "impostor"
		e2, err := p.Launch(other)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e2.ECall("unseal", blob); err == nil {
			t.Fatal("different measurement unsealed the blob")
		}
	})

	t.Run("different platform cannot unseal", func(t *testing.T) {
		p2 := zeroPlatform(t)
		e3, err := p2.Launch(def)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e3.ECall("unseal", blob); err == nil {
			t.Fatal("foreign platform unsealed the blob")
		}
	})
}

func TestCostModelInjectsTransitionLatency(t *testing.T) {
	cost := ZeroCost()
	cost.TransitionLatency = 2 * time.Millisecond
	p, err := NewPlatform(cost, WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := p.Launch(echoDef())
	start := time.Now()
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := e.ECall("echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < calls*cost.TransitionLatency {
		t.Fatalf("elapsed %v < %v, transition latency not injected", elapsed, calls*cost.TransitionLatency)
	}
	stats := p.Snapshot()
	if stats.ECalls != calls {
		t.Fatalf("ECalls = %d", stats.ECalls)
	}
	if stats.InjectedOverhead < calls*cost.TransitionLatency {
		t.Fatalf("InjectedOverhead = %v", stats.InjectedOverhead)
	}
}

func TestCostModelSlowdown(t *testing.T) {
	cost := ZeroCost()
	cost.InEnclaveSlowdown = 3.0
	p, err := NewPlatform(cost, WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	work := 5 * time.Millisecond
	e, _ := p.Launch(Definition{
		Name: "worker",
		ECalls: map[string]ECallFunc{
			"work": func(*Context, []byte) ([]byte, error) {
				deadline := time.Now().Add(work)
				for time.Now().Before(deadline) {
				}
				return nil, nil
			},
		},
	})
	start := time.Now()
	if _, err := e.ECall("work", nil); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 3x slowdown means total >= ~3*work.
	if elapsed < 2*work {
		t.Fatalf("elapsed %v, expected ~3x of %v", elapsed, work)
	}
}

func TestEPCPagingCharged(t *testing.T) {
	cost := ZeroCost()
	cost.EPCBytes = 1 << 20 // 1 MiB EPC
	cost.PageBytes = 4096
	cost.PagingLatency = time.Microsecond
	p, err := NewPlatform(cost, WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := p.Launch(Definition{
		Name: "big",
		ECalls: map[string]ECallFunc{
			"touch": func(ctx *Context, _ []byte) ([]byte, error) {
				ctx.Touch(3 << 20) // 3 MiB working set
				return nil, nil
			},
		},
	})
	if _, err := e.ECall("touch", nil); err != nil {
		t.Fatal(err)
	}
	stats := p.Snapshot()
	// 2 MiB excess over 1 MiB EPC = 512 pages.
	if stats.PageFaults != 512 {
		t.Fatalf("PageFaults = %d, want 512", stats.PageFaults)
	}
}

func TestNoPagingWithinEPC(t *testing.T) {
	p := zeroPlatform(t)
	e, _ := p.Launch(echoDef())
	if _, err := e.ECall("echo", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if faults := p.Snapshot().PageFaults; faults != 0 {
		t.Fatalf("PageFaults = %d within EPC", faults)
	}
}

func TestOCallChargesTransition(t *testing.T) {
	cost := ZeroCost()
	cost.TransitionLatency = time.Millisecond
	p, err := NewPlatform(cost, WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	e, _ := p.Launch(Definition{
		Name: "syscaller",
		ECalls: map[string]ECallFunc{
			"io": func(ctx *Context, _ []byte) ([]byte, error) {
				return nil, ctx.OCall(func() error {
					ran = true
					return nil
				})
			},
		},
	})
	if _, err := e.ECall("io", nil); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("OCall body did not run")
	}
	stats := p.Snapshot()
	if stats.OCalls != 1 {
		t.Fatalf("OCalls = %d", stats.OCalls)
	}
}

func TestResetStats(t *testing.T) {
	p := zeroPlatform(t)
	e, _ := p.Launch(echoDef())
	_, _ = e.ECall("echo", nil)
	p.ResetStats()
	if s := p.Snapshot(); s.ECalls != 0 || s.InjectedOverhead != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestJitterVariesOverhead(t *testing.T) {
	cost := ZeroCost()
	cost.TransitionLatency = 200 * time.Microsecond
	cost.JitterFraction = 0.2
	p, err := NewPlatform(cost, WithJitterSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	e, _ := p.Launch(echoDef())
	var durations []time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		_, _ = e.ECall("echo", nil)
		durations = append(durations, time.Since(start))
	}
	allEqual := true
	for _, d := range durations[1:] {
		if d/time.Microsecond != durations[0]/time.Microsecond {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("jitter produced identical timings")
	}
}

func TestAttestationKeyStable(t *testing.T) {
	p := zeroPlatform(t)
	k1 := p.AttestationPublicKey()
	k2 := p.AttestationPublicKey()
	if k1.X.Cmp(k2.X) != 0 || k1.Y.Cmp(k2.Y) != 0 {
		t.Fatal("attestation key changed")
	}
	p2 := zeroPlatform(t)
	if p.AttestationPublicKey().X.Cmp(p2.AttestationPublicKey().X) == 0 {
		t.Fatal("two platforms share an attestation key")
	}
}

func TestConcurrentECalls(t *testing.T) {
	p := zeroPlatform(t)
	e, _ := p.Launch(echoDef())
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := e.ECall("echo", []byte("concurrent"))
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Snapshot().ECalls; got != 16 {
		t.Fatalf("ECalls = %d", got)
	}
}

func TestCalibratedModelShape(t *testing.T) {
	c := Calibrated()
	if c.InEnclaveSlowdown <= 1 {
		t.Fatal("calibrated slowdown must exceed 1")
	}
	if c.TransitionLatency <= 0 || c.PagingLatency <= 0 {
		t.Fatal("calibrated latencies must be positive")
	}
	if c.JitterFraction <= 0 {
		t.Fatal("calibrated jitter must be positive (paper: in-SGX timings are noisier)")
	}
}

func TestCostModelNormalization(t *testing.T) {
	n := CostModel{InEnclaveSlowdown: 0.5, JitterFraction: -1}.normalized()
	if n.InEnclaveSlowdown != 1.0 {
		t.Fatalf("slowdown normalized to %f", n.InEnclaveSlowdown)
	}
	if n.PageBytes != 4096 || n.EPCBytes <= 0 {
		t.Fatalf("paging defaults not applied: %+v", n)
	}
	if n.JitterFraction != 0 {
		t.Fatalf("negative jitter not clamped: %f", n.JitterFraction)
	}
}

func TestEnclaveAccessors(t *testing.T) {
	p := zeroPlatform(t)
	e, _ := p.Launch(echoDef())
	if e.Name() != "echo" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Platform() != p {
		t.Fatal("Platform accessor wrong")
	}
	if p.Cost().PageBytes != 4096 {
		t.Fatalf("Cost accessor: %+v", p.Cost())
	}
}

func TestECallStatsAttribution(t *testing.T) {
	// A tiny EPC forces paging; an OCALL inside the call must be
	// attributed to it; the platform aggregate must match the per-call
	// deltas.
	cost := CostModel{
		TransitionLatency: 100 * time.Microsecond,
		InEnclaveSlowdown: 1.0,
		EPCBytes:          4096,
		PageBytes:         4096,
		PagingLatency:     10 * time.Microsecond,
	}
	p, err := NewPlatform(cost, WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Launch(Definition{
		Name:    "attr",
		Version: "1.0",
		ECalls: map[string]ECallFunc{
			"work": func(ctx *Context, in []byte) ([]byte, error) {
				ctx.Touch(64 << 10) // 64 KiB working set: faults against the 4 KiB EPC
				if err := ctx.OCall(func() error { return nil }); err != nil {
					return nil, err
				}
				return in, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := p.Snapshot()
	_, cs, err := e.ECallStats("work", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if cs.OCalls != 1 {
		t.Fatalf("OCalls = %d, want 1", cs.OCalls)
	}
	if cs.Transitions() != 2 {
		t.Fatalf("Transitions = %d, want 2", cs.Transitions())
	}
	if cs.PageFaults == 0 {
		t.Fatal("expected page faults with a 4 KiB EPC")
	}
	if cs.Overhead <= 0 || cs.Compute < 0 {
		t.Fatalf("overhead/compute = %v/%v", cs.Overhead, cs.Compute)
	}
	delta := p.Snapshot().Sub(before)
	if delta.ECalls != 1 || delta.OCalls != cs.OCalls || delta.PageFaults != cs.PageFaults {
		t.Fatalf("platform delta %+v disagrees with call stats %+v", delta, cs)
	}
	if delta.InjectedOverhead != cs.Overhead {
		t.Fatalf("platform overhead %v != attributed %v", delta.InjectedOverhead, cs.Overhead)
	}
}

func TestECallStatsOnError(t *testing.T) {
	p := zeroPlatform(t)
	e, err := p.Launch(Definition{
		Name:    "failing",
		Version: "1.0",
		ECalls: map[string]ECallFunc{
			"boom": func(_ *Context, _ []byte) ([]byte, error) {
				return nil, errors.New("trusted failure")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, cs, err := e.ECallStats("boom", nil)
	if err == nil {
		t.Fatal("expected error")
	}
	// The failed call still paid its transition.
	if cs.Transitions() != 1 {
		t.Fatalf("Transitions = %d, want 1", cs.Transitions())
	}
}
