// Package sgx simulates an Intel SGX platform in software: enclaves with a
// measured identity, an ECALL/OCALL boundary with transition costs, a
// bounded EPC with paging penalties, sealed storage, and per-platform
// attestation keys (quoted by package attest).
//
// No SGX silicon is available in this environment, so the paper's
// SGX-related findings — in-enclave execution is slower and noisier,
// boundary crossings cost about a millisecond, memory pressure triggers
// expensive paging, per-datum ECALLs are catastrophic while batched ECALLs
// amortize — are reproduced by a parameterized cost model that injects real
// wall-clock delay around genuinely executed Go code. The trust semantics
// (measurement, sealing, attestation) are implemented for real at the
// protocol level; only the timing is modeled. Calibration constants derive
// from Tables I, IV and V of the paper.
package sgx

import "time"

// CostModel parameterizes the simulated overheads of SGX execution.
// The zero value means "free" (no injected cost), which is what unit tests
// use; benchmarks use Calibrated.
type CostModel struct {
	// TransitionLatency is charged once per ECALL or OCALL for the
	// enter+exit pair (ring transition, TLB flush, register scrubbing).
	TransitionLatency time.Duration
	// InEnclaveSlowdown multiplies the measured duration of code executed
	// inside the enclave (MEE encryption overhead on memory traffic).
	// 1.0 means no slowdown; the calibrated value reproduces the paper's
	// inside/outside ratios.
	InEnclaveSlowdown float64
	// EPCBytes is the usable enclave page cache. Working sets beyond it
	// page against untrusted memory.
	EPCBytes int
	// PageBytes is the paging granularity (4 KiB on real hardware).
	PageBytes int
	// PagingLatency is charged per page evicted+reloaded when the working
	// set exceeds EPCBytes (EWB/ELDU encryption and integrity checks).
	PagingLatency time.Duration
	// JitterFraction is the relative standard deviation of multiplicative
	// noise on injected overhead, reproducing the paper's observation that
	// in-SGX timings have visibly higher variance (Table I, Table V).
	JitterFraction float64
}

// ZeroCost returns a model with no injected overhead, for functional tests.
func ZeroCost() CostModel {
	return CostModel{InEnclaveSlowdown: 1.0, EPCBytes: 93 << 20, PageBytes: 4096}
}

// Calibrated returns the cost model used by the benchmark harness. The
// constants are scaled from the paper's measurements on a Xeon E3-1225 v6
// (SGX1, ~93 MiB usable EPC):
//
//   - Table I: keygen 49.593 ms inside vs 20.201 ms outside -> slowdown ≈ 2.45
//   - §VI-A: entering+exiting SGX costs about 1 ms on their hardware; our
//     HE substrate is roughly 10x faster than SEAL 2.1 on theirs, so the
//     transition is scaled to 100 µs to preserve relative shape
//   - Table I/V: inside-SGX standard deviation ≈ 7% of mean vs ≈ 3.8%
//     outside -> jitter 6% on injected overhead
func Calibrated() CostModel {
	return CostModel{
		TransitionLatency: 100 * time.Microsecond,
		InEnclaveSlowdown: 2.45,
		EPCBytes:          93 << 20,
		PageBytes:         4096,
		PagingLatency:     4 * time.Microsecond,
		JitterFraction:    0.06,
	}
}

// normalized returns a copy with zero fields replaced by sane defaults so
// user-constructed literals behave.
func (c CostModel) normalized() CostModel {
	if c.InEnclaveSlowdown < 1.0 {
		c.InEnclaveSlowdown = 1.0
	}
	if c.PageBytes <= 0 {
		c.PageBytes = 4096
	}
	if c.EPCBytes <= 0 {
		c.EPCBytes = 93 << 20
	}
	if c.JitterFraction < 0 {
		c.JitterFraction = 0
	}
	return c
}
