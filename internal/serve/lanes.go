package serve

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/stats"
	"hesgx/internal/trace"
)

// lanePacker is the slot-lane admission stage ahead of the bounded queue:
// it buckets concurrent same-shape scalar requests, and when a bucket fills
// (MaxLanes) or its window expires with at least MinLanes waiting, the
// enclave repacks the requests into the CRT slot lanes of shared
// ciphertexts (one lane_pack ECALL), one packed engine pass serves all of
// them, and a lane_demux ECALL splits per-lane logits back out (§VIII
// applied across clients: n=2048 slots ⇒ up to 2048 images per HE op).
// Buckets that miss the fill floor fall back to scalar passes, so low-load
// latency stays a single window away from the scalar path.
type lanePacker struct {
	svc     core.NonlinearCaller
	sched   *Scheduler
	cfg     LaneConfig
	metrics *stats.Registry
	logger  *slog.Logger

	mu      sync.Mutex
	pending map[laneKey]*laneBucket
	closed  bool
}

// laneKey buckets requests that can share one packed pass: identical
// geometry, identical fixed-point scale, identical ciphertext count.
type laneKey struct {
	channels, height, width int
	scale                   uint64
	cts                     int
}

// laneResult delivers one waiter's demultiplexed share of a flushed bucket.
type laneResult struct {
	res *Result
	err error
}

// laneWaiter is one request parked in a bucket.
type laneWaiter struct {
	img  *core.CipherImage
	done chan laneResult // buffered; flush never blocks on delivery
	// ctx carries the waiter's trace attachment; the flush joins every
	// waiter's context so the shared pack/infer/demux spans land in each
	// trace.
	ctx context.Context
}

// laneBucket accumulates waiters for one shape key.
type laneBucket struct {
	key     laneKey
	waiters []*laneWaiter
	timer   *time.Timer
}

func newLanePacker(svc core.NonlinearCaller, sched *Scheduler, cfg LaneConfig, reg *stats.Registry, logger *slog.Logger) *lanePacker {
	return &lanePacker{
		svc:     svc,
		sched:   sched,
		cfg:     cfg,
		metrics: reg,
		logger:  logger,
		pending: make(map[laneKey]*laneBucket),
	}
}

// infer parks the request in its shape bucket and blocks until the bucket
// flushes — as a shared packed pass or as individual scalar fallbacks.
func (p *lanePacker) infer(ctx context.Context, img *core.CipherImage) (*Result, error) {
	key := laneKey{channels: img.Channels, height: img.Height, width: img.Width,
		scale: img.Scale, cts: len(img.CTs)}
	wctx, wspan := trace.StartSpan(ctx, "lane.wait", "serve")
	w := &laneWaiter{img: img, done: make(chan laneResult, 1), ctx: wctx}
	p.metrics.Counter("serve.lanes.requests").Inc()
	waitStart := time.Now()
	// Stage timer for the SLO tracker: time from bucket admission until the
	// waiter resolves (flush, error, or abandonment), exemplar = trace ID.
	defer func() {
		p.metrics.ObserveHistogramExemplar("serve.stage.lane_wait_ms",
			float64(time.Since(waitStart).Microseconds())/1000.0, trace.ID(ctx))
	}()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		wspan.End()
		return p.scalarPass(ctx, img)
	}
	bkt, ok := p.pending[key]
	if !ok {
		bkt = &laneBucket{key: key}
		p.pending[key] = bkt
		// The first waiter arms the flush window for this bucket.
		bkt.timer = time.AfterFunc(p.cfg.Window, func() { p.flushKey(key, bkt) })
	}
	bkt.waiters = append(bkt.waiters, w)
	if len(bkt.waiters) >= p.cfg.MaxLanes {
		// The request that fills the bucket carries the flush.
		delete(p.pending, key)
		bkt.timer.Stop()
		p.mu.Unlock()
		p.flush(bkt)
	} else {
		p.mu.Unlock()
	}

	select {
	case r := <-w.done:
		if r.err != nil {
			wspan.Arg("error", 1).End()
			return nil, r.err
		}
		wspan.Arg("lane", float64(r.res.Lane)).Arg("lanes", float64(r.res.Lanes)).End()
		return r.res, nil
	case <-ctx.Done():
		// The shared pass still executes (other lanes need it); this caller
		// just stops waiting for its share.
		wspan.Arg("abandoned", 1).End()
		return nil, ctx.Err()
	}
}

// scalarPass runs one request through the scheduler as its own engine pass.
func (p *lanePacker) scalarPass(ctx context.Context, img *core.CipherImage) (*Result, error) {
	p.metrics.Counter("serve.lanes.fallback_requests").Inc()
	res, err := p.sched.Infer(ctx, img)
	if err != nil {
		return nil, err
	}
	return &Result{Logits: res.Logits, OutScale: res.OutScale, Mode: ModeScalar, Lanes: 1}, nil
}

// flushKey flushes bkt if it is still the pending bucket for key (the
// timer path; a size-triggered flush may already have detached it).
func (p *lanePacker) flushKey(key laneKey, bkt *laneBucket) {
	p.mu.Lock()
	cur, ok := p.pending[key]
	if !ok || cur != bkt {
		p.mu.Unlock()
		return
	}
	delete(p.pending, key)
	p.mu.Unlock()
	p.flush(bkt)
}

// flush resolves one detached bucket: a packed pass when enough requests
// are waiting, scalar fallbacks otherwise.
func (p *lanePacker) flush(bkt *laneBucket) {
	k := len(bkt.waiters)
	if k < p.cfg.MinLanes {
		// Low load: the window expired before the bucket filled. Each
		// waiter runs its own scalar pass under its own context, so
		// per-request deadlines and cancellations apply individually.
		for _, w := range bkt.waiters {
			go func(w *laneWaiter) {
				res, err := p.scalarPass(w.ctx, w.img)
				w.done <- laneResult{res: res, err: err}
			}(w)
		}
		return
	}
	p.metrics.Counter("serve.lanes.flushes").Inc()
	p.metrics.Counter("serve.lanes.packed_requests").Add(int64(k))
	p.metrics.ObserveHistogram("serve.lane.occupancy", float64(k))

	// The shared pass runs under its own context: individual callers may
	// have been cancelled, but the remaining lanes still need the result.
	// Joining the waiters' contexts attributes the pack/infer/demux spans
	// to every request's trace without inheriting any caller's
	// cancellation.
	wctxs := make([]context.Context, 0, k)
	positions := bkt.key.cts
	all := make([]*core.CipherImage, 0, k)
	for _, w := range bkt.waiters {
		wctxs = append(wctxs, w.ctx)
		all = append(all, w.img)
	}
	fctx, fspan := trace.StartSpan(trace.Join(context.Background(), wctxs...), "lane.flush", "serve")
	fspan.Arg("lanes", float64(k)).Arg("cts", float64(k*positions))

	results, err := p.runPacked(fctx, bkt.key, all)
	fspan.End()
	if err != nil {
		p.logger.Warn("lane-packed pass failed",
			"lanes", k,
			"cts", k*positions,
			"err", err)
		for _, w := range bkt.waiters {
			w.done <- laneResult{err: err}
		}
		return
	}
	for i, w := range bkt.waiters {
		w.done <- laneResult{res: results[i]}
	}
}

// runPacked executes the pack → infer → demux lifecycle over the bucket's
// images and slices per-lane results.
func (p *lanePacker) runPacked(ctx context.Context, key laneKey, imgs []*core.CipherImage) ([]*Result, error) {
	k := len(imgs)
	flat := make([]*he.Ciphertext, 0, k*key.cts)
	for _, img := range imgs {
		flat = append(flat, img.CTs...)
	}
	packed, err := p.svc.Nonlinear(ctx, core.NonlinearOp{Kind: core.OpLanePack, Lanes: k}, flat)
	if err != nil {
		return nil, fmt.Errorf("serve: lane pack: %w", err)
	}
	if len(packed) != key.cts {
		return nil, fmt.Errorf("serve: lane pack returned %d ciphertexts for %d positions", len(packed), key.cts)
	}
	pimg := &core.CipherImage{
		Channels: key.channels, Height: key.height, Width: key.width,
		CTs: packed, Scale: key.scale, Lanes: k,
	}
	res, err := p.sched.Infer(ctx, pimg)
	if err != nil {
		return nil, err
	}
	outs, err := p.svc.Nonlinear(ctx, core.NonlinearOp{Kind: core.OpLaneDemux, Lanes: k}, res.Logits)
	if err != nil {
		return nil, fmt.Errorf("serve: lane demux: %w", err)
	}
	l := len(res.Logits)
	if len(outs) != k*l {
		return nil, fmt.Errorf("serve: lane demux returned %d ciphertexts for %d lanes × %d logits", len(outs), k, l)
	}
	results := make([]*Result, k)
	for i := range results {
		results[i] = &Result{
			Logits:   outs[i*l : (i+1)*l],
			OutScale: res.OutScale,
			Mode:     ModeLane,
			Lanes:    k,
			Lane:     i,
		}
	}
	return results, nil
}

// Close flushes every pending bucket and routes subsequent requests to
// scalar passes.
func (p *lanePacker) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	buckets := make([]*laneBucket, 0, len(p.pending))
	for key, bkt := range p.pending {
		bkt.timer.Stop()
		buckets = append(buckets, bkt)
		delete(p.pending, key)
	}
	p.mu.Unlock()
	for _, bkt := range buckets {
		p.flush(bkt)
	}
}
