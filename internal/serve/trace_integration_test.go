package serve

import (
	"context"
	"testing"

	"hesgx/internal/nn"
	"hesgx/internal/trace"
)

// TestTraceSpanTreeMatchesTransitions runs one real inference through the
// full pipeline and checks the recorded trace end to end: the span tree is
// well-formed (unique IDs, parents resolve, spans inside the request
// window), the pipeline stages all appear, and the number of "sgx"-category
// ECALL spans equals the platform's enclave transition delta — every
// boundary crossing the cost model charged is visible in the trace.
func TestTraceSpanTreeMatchesTransitions(t *testing.T) {
	st := newStack(t, 77)
	tracer := trace.NewTracer(4)
	p := NewService(st.engine, st.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: 1, QueueDepth: 4}),
		WithTracer(tracer),
		WithoutLanes(),
	)
	defer p.Close()

	img := testImage(7)
	ci, err := st.client.EncryptImages([]*nn.Tensor{img}, serveConfig().PixelScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.engine.EncodeWeights(); err != nil {
		t.Fatal(err)
	}

	before := st.platform.Snapshot()
	if _, err := p.Infer(context.Background(), Request{Image: ci}); err != nil {
		t.Fatal(err)
	}
	delta := st.platform.Snapshot().Sub(before)
	if delta.OCalls != 0 {
		t.Fatalf("unexpected OCalls during inference: %d", delta.OCalls)
	}

	traces := tracer.Last(1)
	if len(traces) != 1 {
		t.Fatalf("tracer retained %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if !tr.Finished() {
		t.Fatal("trace not finished after Infer returned")
	}
	spans := tr.Spans()

	// Structural checks: IDs unique, every non-root parent resolves to a
	// recorded span, and every span lies within the root's window.
	var root *trace.Span
	byID := make(map[trace.SpanID]*trace.Span, len(spans))
	for i := range spans {
		s := &spans[i]
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("duplicate span ID %d (%s)", s.ID, s.Name)
		}
		byID[s.ID] = s
		if s.Parent == 0 {
			if root != nil {
				t.Fatalf("two roots: %s and %s", root.Name, s.Name)
			}
			root = s
		}
	}
	if root == nil {
		t.Fatal("no root span")
	}
	rootEnd := root.Start.Add(root.Dur)
	for i := range spans {
		s := &spans[i]
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; !ok {
				t.Errorf("span %s: parent %d not recorded", s.Name, s.Parent)
			}
		}
		if s.Start.Before(root.Start) || s.Start.Add(s.Dur).After(rootEnd) {
			t.Errorf("span %s [%v +%v] escapes request window [%v +%v]",
				s.Name, s.Start, s.Dur, root.Start, root.Dur)
		}
	}

	// Every pipeline stage must have left at least one span.
	names := make(map[string]int, len(spans))
	for i := range spans {
		names[spans[i].Name]++
	}
	for _, want := range []string{"queue.wait", "infer.run", "layer.conv", "layer.act", "batch.wait", "batch.flush"} {
		if names[want] == 0 {
			t.Errorf("no %q span recorded; got %v", want, names)
		}
	}

	// The ECALL spans account for every enclave transition of the request.
	ecallSpans := 0
	for i := range spans {
		if spans[i].Cat == "sgx" {
			ecallSpans++
		}
	}
	if uint64(ecallSpans) != delta.Transitions() {
		t.Fatalf("trace has %d ECALL spans, platform charged %d transitions", ecallSpans, delta.Transitions())
	}
}

// TestPipelineTraceCoversWallClock verifies the acceptance bound: the
// request's spans cover (essentially all of) the measured wall-clock,
// because the root span opens before scheduling and closes after the
// result is delivered.
func TestPipelineTraceCoversWallClock(t *testing.T) {
	st := newStack(t, 78)
	tracer := trace.NewTracer(4)
	p := NewService(st.engine, st.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: 1, QueueDepth: 4}),
		WithTracer(tracer),
		WithoutLanes(),
	)
	defer p.Close()

	ci, err := st.client.EncryptImages([]*nn.Tensor{testImage(9)}, serveConfig().PixelScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.engine.EncodeWeights(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Infer(context.Background(), Request{Image: ci}); err != nil {
		t.Fatal(err)
	}
	tr := tracer.Last(1)[0]
	var root *trace.Span
	spans := tr.Spans()
	for i := range spans {
		if spans[i].Parent == 0 {
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatal("no root span")
	}
	if cover := root.Dur.Seconds() / tr.Wall().Seconds(); cover < 0.95 {
		t.Fatalf("root span covers %.1f%% of trace wall-clock, want >= 95%%", cover*100)
	}
}
