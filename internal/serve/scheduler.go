package serve

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"hesgx/internal/core"
	"hesgx/internal/stats"
	"hesgx/internal/trace"
)

// Scheduler admission errors.
var (
	// ErrQueueFull reports backpressure: the bounded admission queue is
	// at capacity and the job was rejected immediately rather than queued
	// into unbounded memory.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrClosed reports a scheduler that has shut down.
	ErrClosed = errors.New("serve: scheduler closed")
)

// InferBackend is the inference executor the scheduler drives —
// *core.HybridEngine in production, fakes in tests.
type InferBackend interface {
	InferContext(ctx context.Context, img *core.CipherImage) (*core.InferenceResult, error)
}

// SchedulerConfig tunes the serving scheduler.
type SchedulerConfig struct {
	// Workers is the number of concurrent inferences (default NumCPU).
	// More workers give the batching proxy more coalescing opportunities;
	// past the point where the enclave saturates they only add contention.
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64). A full
	// queue rejects new jobs with ErrQueueFull — load sheds at admission
	// instead of stacking latency.
	QueueDepth int
	// Deadline is the default per-job deadline applied when the caller's
	// context has none (0: no default). Jobs whose deadline expires while
	// queued are dropped without ever entering the enclave.
	Deadline time.Duration
	// Metrics receives queue/job counters and latency samples (nil: none).
	Metrics *stats.Registry
	// Logger receives structured records for shed and expired jobs with
	// the request's trace ID (nil: silent).
	Logger *slog.Logger
}

// DefaultSchedulerConfig returns the serving defaults.
func DefaultSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{Workers: runtime.NumCPU(), QueueDepth: 64}
}

// jobResult carries an inference outcome to the submitting goroutine.
type jobResult struct {
	res *core.InferenceResult
	err error
}

// job is one admitted inference request.
type job struct {
	ctx      context.Context
	img      *core.CipherImage
	res      chan jobResult // buffered; workers never block on delivery
	enqueued time.Time
	// qspan traces the queue wait: opened at submission, closed when a
	// worker picks the job up (or it expires in the queue).
	qspan *trace.SpanHandle
}

// Scheduler admits inference jobs through a bounded queue and runs them on
// a fixed worker pool. Combined with a Batcher on the engine's enclave
// path, concurrent jobs reaching the same non-linear layer share enclave
// transitions.
type Scheduler struct {
	backend  InferBackend
	queue    chan *job
	deadline time.Duration
	metrics  *stats.Registry
	logger   *slog.Logger

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewScheduler starts a scheduler over backend. Zero config fields fall
// back to DefaultSchedulerConfig.
func NewScheduler(backend InferBackend, cfg SchedulerConfig) *Scheduler {
	def := DefaultSchedulerConfig()
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = def.QueueDepth
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	s := &Scheduler{
		backend:  backend,
		queue:    make(chan *job, cfg.QueueDepth),
		deadline: cfg.Deadline,
		metrics:  cfg.Metrics,
		logger:   cfg.Logger,
		closed:   make(chan struct{}),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Infer submits an encrypted image and blocks until the result, the
// caller's context, or the per-job deadline resolves it. Admission is
// non-blocking: a full queue returns ErrQueueFull immediately.
func (s *Scheduler) Infer(ctx context.Context, img *core.CipherImage) (*core.InferenceResult, error) {
	if s.deadline > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.deadline)
			defer cancel()
		}
	}
	// queue.wait is a leaf span: the job keeps the submitter's context, so
	// the inference run traces as its sibling, not its child.
	_, qspan := trace.StartSpan(ctx, "queue.wait", "serve")
	j := &job{ctx: ctx, img: img, res: make(chan jobResult, 1), enqueued: time.Now(), qspan: qspan}

	select {
	case <-s.closed:
		qspan.Arg("rejected", 1).End()
		return nil, ErrClosed
	default:
	}
	select {
	case s.queue <- j:
		s.metrics.Counter("serve.jobs.submitted").Inc()
		s.metrics.Gauge("serve.queue.depth").Set(int64(len(s.queue)))
	default:
		s.metrics.Counter("serve.jobs.rejected").Inc()
		// Stage timer for the SLO tracker: how long the request lived before
		// being shed, with its trace ID as the exemplar.
		s.metrics.ObserveHistogramExemplar("serve.stage.shed_ms",
			float64(time.Since(j.enqueued).Microseconds())/1000.0, trace.ID(ctx))
		qspan.Arg("rejected", 1).End()
		s.logger.Warn("request shed at admission",
			"reason", "queue_full",
			"queue_depth", cap(s.queue),
			"trace_id", trace.ID(ctx))
		return nil, ErrQueueFull
	}

	select {
	case r := <-j.res:
		return r.res, r.err
	case <-ctx.Done():
		// The worker sees the same context: if the job is still queued it
		// is skipped; if it is running, the engine abandons it at the next
		// step or enclave boundary.
		return nil, ctx.Err()
	}
}

// worker executes queued jobs until shutdown.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case j := <-s.queue:
			s.run(j)
		}
	}
}

// run executes one job and delivers its result.
func (s *Scheduler) run(j *job) {
	s.metrics.Gauge("serve.queue.depth").Set(int64(len(s.queue)))
	queueWaitMS := float64(time.Since(j.enqueued).Microseconds()) / 1000.0
	s.metrics.ObserveHistogramExemplar("serve.job.queue_wait_ms", queueWaitMS, trace.ID(j.ctx))
	if err := j.ctx.Err(); err != nil {
		// Deadline or disconnect while queued: never enter the enclave.
		s.metrics.Counter("serve.jobs.expired").Inc()
		s.metrics.ObserveHistogramExemplar("serve.stage.deadline_miss_ms", queueWaitMS, trace.ID(j.ctx))
		j.qspan.Arg("expired", 1).End()
		s.logger.Warn("queued request expired before running",
			"queue_wait_ms", queueWaitMS,
			"err", err,
			"trace_id", trace.ID(j.ctx))
		j.res <- jobResult{err: err}
		return
	}
	j.qspan.End()
	s.metrics.Gauge("serve.jobs.inflight").Add(1)
	ictx, ispan := trace.StartSpan(j.ctx, "infer.run", "serve")
	start := time.Now()
	res, err := s.backend.InferContext(ictx, j.img)
	ispan.End()
	s.metrics.Gauge("serve.jobs.inflight").Add(-1)
	if err != nil {
		s.metrics.Counter("serve.jobs.failed").Inc()
	} else {
		s.metrics.Counter("serve.jobs.completed").Inc()
		s.metrics.ObserveHistogram("serve.job.latency_ms", float64(time.Since(start).Microseconds())/1000.0)
	}
	j.res <- jobResult{res: res, err: err}
}

// Close stops the workers, fails jobs still waiting in the queue with
// ErrClosed, and waits for in-flight inferences to finish.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.wg.Wait()
		for {
			select {
			case j := <-s.queue:
				j.qspan.Arg("closed", 1).End()
				j.res <- jobResult{err: ErrClosed}
			default:
				return
			}
		}
	})
}
