package serve

import (
	"context"
	"errors"
	mrand "math/rand/v2"
	"sync"
	"testing"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
	"hesgx/internal/sgx"
)

// newBatchStack is newStack over batching-capable parameters (prime
// t ≡ 1 mod 2n), the configuration where the lane packer activates.
func newBatchStack(t testing.TB, seed uint64) *stack {
	t.Helper()
	tm, err := core.SIMDBatchingModulus(1024, 20)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		t.Fatal(err)
	}
	params, err := he.NewParameters(1024, q, tm, he.DefaultDecompositionBase)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	model := laneModel(seed)
	engine, err := core.NewEngine(svc, model,
		core.WithScales(63, 16, 256), core.WithPoolStrategy(core.PoolSGXDiv))
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	verifier := attest.NewService()
	verifier.RegisterPlatform(platform.AttestationPublicKey())
	verifier.TrustMeasurement(svc.Enclave().Measurement())
	if _, err := client.RunKeyExchange(svc, verifier); err != nil {
		t.Fatal(err)
	}
	if err := engine.EncodeWeights(); err != nil {
		t.Fatal(err)
	}
	return &stack{platform: platform, svc: svc, engine: engine, client: client, model: model}
}

func laneModel(seed uint64) *nn.Network {
	r := mrand.New(mrand.NewPCG(seed, seed^1))
	return nn.NewNetwork(
		nn.NewConv2D(1, 2, 3, 1, r),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(2*3*3, 4, r),
	)
}

// checkAgainstReference asserts the decrypted logits are bit-identical to
// the plaintext fixed-point oracle — the same oracle a scalar pass
// reproduces exactly, so equality here proves lane == scalar.
func checkAgainstReference(t *testing.T, st *stack, img *nn.Tensor, res *Result) {
	t.Helper()
	got, err := st.client.DecryptValues(res.Logits)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.engine.ReferenceForward(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d logits, want %d", len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("logit %d: lane result %d != scalar reference %d", j, got[j], want[j])
		}
	}
}

// TestServiceLanePackedMatchesScalar is the oracle-equivalence property:
// K concurrent requests packed into one shared slot-lane pass must each
// decrypt to exactly the result a lone scalar pass produces.
func TestServiceLanePackedMatchesScalar(t *testing.T) {
	const k = 6
	st := newBatchStack(t, 71)
	s := NewService(st.engine, st.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: 2, QueueDepth: 16}),
		// MaxLanes == k: the k-th arrival triggers the flush, no window wait.
		WithLaneConfig(LaneConfig{MaxLanes: k, MinLanes: 2, Window: 5 * time.Second}))
	defer s.Close()

	imgs := make([]*nn.Tensor, k)
	cis := make([]*core.CipherImage, k)
	for i := range imgs {
		imgs[i] = testImage(uint64(500 + i))
		ci, err := st.client.EncryptImages([]*nn.Tensor{imgs[i]}, serveConfig().PixelScale)
		if err != nil {
			t.Fatal(err)
		}
		cis[i] = ci
	}

	var wg sync.WaitGroup
	results := make([]*Result, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Infer(context.Background(), Request{Image: cis[i], Tenant: "cav"})
		}(i)
	}
	wg.Wait()

	lanesSeen := make(map[int]bool)
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Mode != ModeLane {
			t.Fatalf("request %d ran %q, want %q", i, results[i].Mode, ModeLane)
		}
		if results[i].Lanes != k {
			t.Fatalf("request %d reports %d lanes, want %d", i, results[i].Lanes, k)
		}
		if lanesSeen[results[i].Lane] {
			t.Fatalf("lane %d assigned twice", results[i].Lane)
		}
		lanesSeen[results[i].Lane] = true
		checkAgainstReference(t, st, imgs[i], results[i])
	}
	if flushes := s.Metrics.Counter("serve.lanes.flushes").Value(); flushes != 1 {
		t.Fatalf("serve.lanes.flushes = %d, want 1 shared pass", flushes)
	}
	if packed := s.Metrics.Counter("serve.lanes.packed_requests").Value(); packed != k {
		t.Fatalf("serve.lanes.packed_requests = %d, want %d", packed, k)
	}
	if s.Metrics.Counter("serve.tenant.cav.requests").Value() != k {
		t.Fatal("tenant counter mismatch")
	}
}

// TestServiceLowLoadFallsBackToScalar: a lone request whose lane window
// expires below the fill floor must run a scalar pass — and its deadline
// must keep holding across the wait.
func TestServiceLowLoadFallsBackToScalar(t *testing.T) {
	st := newBatchStack(t, 72)
	s := NewService(st.engine, st.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: 1, QueueDepth: 4}),
		WithLaneConfig(LaneConfig{MaxLanes: 8, MinLanes: 2, Window: 10 * time.Millisecond}))
	defer s.Close()

	img := testImage(600)
	ci, err := st.client.EncryptImages([]*nn.Tensor{img}, serveConfig().PixelScale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Infer(context.Background(), Request{Image: ci, Deadline: time.Now().Add(time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeScalar || res.Lanes != 1 {
		t.Fatalf("lone request ran mode=%q lanes=%d, want scalar fallback", res.Mode, res.Lanes)
	}
	checkAgainstReference(t, st, img, res)
	if fb := s.Metrics.Counter("serve.lanes.fallback_requests").Value(); fb != 1 {
		t.Fatalf("serve.lanes.fallback_requests = %d, want 1", fb)
	}
	if s.Metrics.Counter("serve.lanes.flushes").Value() != 0 {
		t.Fatal("low-load request counted as a packed flush")
	}

	// An already-expired deadline must surface immediately — not after the
	// lane window, not after a queue wait.
	_, err = s.Infer(context.Background(), Request{Image: ci, Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want DeadlineExceeded", err)
	}
}

// TestServiceLanesDisabledOnNonBatchingModulus: with t not ≡ 1 mod 2n the
// lane stage must disable itself and serve every request scalar.
func TestServiceLanesDisabledOnNonBatchingModulus(t *testing.T) {
	st := newStack(t, 73) // t = 2^20: no CRT slots
	if err := st.engine.EncodeWeights(); err != nil {
		t.Fatal(err)
	}
	s := NewService(st.engine, st.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: 1, QueueDepth: 4}))
	defer s.Close()
	if s.lanes != nil {
		t.Fatal("lane packer built over a non-batching modulus")
	}
	if s.Metrics.Gauge("serve.lanes.enabled").Value() != 0 {
		t.Fatal("serve.lanes.enabled gauge not zeroed")
	}
	img := testImage(700)
	ci, err := st.client.EncryptImages([]*nn.Tensor{img}, serveConfig().PixelScale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Infer(context.Background(), Request{Image: ci})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeScalar {
		t.Fatalf("mode %q, want scalar", res.Mode)
	}
	checkAgainstReference(t, st, img, res)
}

// TestServicePrePackedImageBypassesPacker: a caller-packed batch
// (EncryptImages, Lanes > 1) must run one engine pass without entering the
// lane packer, and its slot lanes must decrypt to per-image references.
func TestServicePrePackedImageBypassesPacker(t *testing.T) {
	const k = 3
	st := newBatchStack(t, 74)
	s := NewService(st.engine, st.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: 1, QueueDepth: 4}))
	defer s.Close()

	imgs := make([]*nn.Tensor, k)
	for i := range imgs {
		imgs[i] = testImage(uint64(800 + i))
	}
	ci, err := st.client.EncryptImages(imgs, serveConfig().PixelScale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Infer(context.Background(), Request{Image: ci})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeLane || res.Lanes != k || res.Lane != -1 {
		t.Fatalf("pre-packed ran mode=%q lanes=%d lane=%d, want lane/%d/-1", res.Mode, res.Lanes, res.Lane, k)
	}
	if s.Metrics.Counter("serve.lanes.requests").Value() != 0 {
		t.Fatal("pre-packed image entered the lane packer")
	}
	vals, err := st.client.DecryptValueBatch(res.Logits, k)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range imgs {
		want, err := st.engine.ReferenceForward(img)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if vals[i][j] != want[j] {
				t.Fatalf("image %d logit %d: packed %d != reference %d", i, j, vals[i][j], want[j])
			}
		}
	}
}

// TestLaneSchedulerConcurrent64 drives 64 concurrent clients through the
// full service — the load shape behind the slot-batched serving mode's
// throughput claim and the CI -race target for the lane scheduler.
func TestLaneSchedulerConcurrent64(t *testing.T) {
	const n = 64
	st := newBatchStack(t, 75)
	s := NewService(st.engine, st.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: 4, QueueDepth: n}),
		WithLaneConfig(LaneConfig{MaxLanes: 16, MinLanes: 2, Window: 50 * time.Millisecond}))
	defer s.Close()

	imgs := make([]*nn.Tensor, n)
	cis := make([]*core.CipherImage, n)
	for i := range imgs {
		imgs[i] = testImage(uint64(900 + i))
		ci, err := st.client.EncryptImages([]*nn.Tensor{imgs[i]}, serveConfig().PixelScale)
		if err != nil {
			t.Fatal(err)
		}
		cis[i] = ci
	}

	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = s.Infer(context.Background(), Request{Image: cis[i]})
		}(i)
	}
	close(start)
	wg.Wait()

	laneServed := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Mode == ModeLane {
			laneServed++
		}
		checkAgainstReference(t, st, imgs[i], results[i])
	}
	t.Logf("%d/%d requests lane-served across %d flushes",
		laneServed, n, s.Metrics.Counter("serve.lanes.flushes").Value())
	if laneServed == 0 {
		t.Fatal("no request was lane-served at 64-way concurrency")
	}
}
