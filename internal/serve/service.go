package serve

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/stats"
	"hesgx/internal/trace"
)

// Option customizes Service construction.
type Option func(*options)

type options struct {
	scheduler       SchedulerConfig
	batcher         BatcherConfig
	disableBatching bool
	lanes           LaneConfig
	disableLanes    bool
	metrics         *stats.Registry
	tracer          *trace.Tracer
	logger          *slog.Logger
}

// WithSchedulerConfig tunes the admission scheduler (workers, queue depth,
// default deadline).
func WithSchedulerConfig(cfg SchedulerConfig) Option {
	return func(o *options) { o.scheduler = cfg }
}

// WithBatcherConfig tunes the cross-request ECALL batching proxy.
func WithBatcherConfig(cfg BatcherConfig) Option {
	return func(o *options) { o.batcher = cfg }
}

// WithoutBatching runs the scheduler without the cross-request batching
// proxy (the ablation/control configuration).
func WithoutBatching() Option {
	return func(o *options) { o.disableBatching = true }
}

// WithLaneConfig tunes the slot-lane packing admission stage.
func WithLaneConfig(cfg LaneConfig) Option {
	return func(o *options) { o.lanes = cfg }
}

// WithoutLanes disables the lane-packing admission stage: every request
// runs a scalar engine pass of its own.
func WithoutLanes() Option {
	return func(o *options) { o.disableLanes = true }
}

// WithMetrics shares a registry across every serving stage (nil: a new
// registry is created).
func WithMetrics(reg *stats.Registry) Option {
	return func(o *options) { o.metrics = reg }
}

// WithTracer retains per-request span traces (nil: a tracer with the
// default ring-buffer size is created).
func WithTracer(tr *trace.Tracer) Option {
	return func(o *options) { o.tracer = tr }
}

// WithLogger receives shed/expiry/flush failure records (nil: silent).
func WithLogger(l *slog.Logger) Option {
	return func(o *options) { o.logger = l }
}

// LaneConfig tunes the slot-lane packing admission stage.
type LaneConfig struct {
	// MaxLanes caps how many requests share one packed engine pass
	// (default 64). It is clamped to the parameter set's slot count.
	MaxLanes int
	// MinLanes is the fill floor: a bucket that reaches its flush window
	// with fewer waiters falls back to scalar passes instead of paying the
	// pack/demux repack for too little sharing (default 2).
	MinLanes int
	// Window bounds how long the first request in a bucket waits for
	// company before the bucket flushes (default 5ms) — the fill-or-
	// deadline policy's deadline half.
	Window time.Duration
}

// DefaultLaneConfig returns the serving defaults.
func DefaultLaneConfig() LaneConfig {
	return LaneConfig{MaxLanes: 64, MinLanes: 2, Window: 5 * time.Millisecond}
}

// Request is one inference submission: the encrypted image plus the serving
// metadata the scheduler works with. Whether the request runs in its own
// scalar engine pass or shares a slot-lane-packed pass with other requests
// is an internal scheduling decision; callers only see the Result.
type Request struct {
	// Image is the encrypted input. Scalar-encoded images are eligible for
	// lane packing; an image the caller already slot-packed
	// (Image.Lanes > 1, from Client.EncryptImages) bypasses the packer and
	// runs one engine pass carrying the caller's own lanes.
	Image *core.CipherImage
	// Tenant optionally attributes the request in per-tenant metrics.
	Tenant string
	// Deadline optionally bounds the whole serving path (queue wait
	// included). Zero means the scheduler's default deadline applies.
	Deadline time.Time
}

// Execution modes reported in Result.Mode.
const (
	// ModeScalar: the request ran its own engine pass.
	ModeScalar = "scalar"
	// ModeLane: the request shared a slot-lane-packed engine pass.
	ModeLane = "lane"
	// ModePacked: the request arrived slot-packed (one ciphertext per
	// feature-map channel, Client.EncryptImagePacked) and ran the engine's
	// rotation-keyed packed prefix.
	ModePacked = "packed"
)

// Result is one inference outcome.
type Result struct {
	// Logits are the encrypted class scores — scalar ciphertexts for this
	// request's lane, or the caller's own packed ciphertexts when the
	// request arrived pre-packed.
	Logits []*he.Ciphertext
	// OutScale is the fixed-point scale of the logits.
	OutScale float64
	// Mode records how the request executed (ModeScalar or ModeLane).
	Mode string
	// Lanes is how many requests shared the engine pass (1 for scalar).
	Lanes int
	// Lane is this request's slot index within the shared pass (0 for
	// scalar; -1 when the caller owns all lanes of a pre-packed image).
	Lane int
}

// Service is the serving surface of the edge server: one Infer entrypoint
// over the full stack — lane packer, admission scheduler, cross-request
// ECALL batcher, hybrid engine, enclave. Construction wires the stages;
// options tune them.
type Service struct {
	sched   *Scheduler
	batcher *Batcher    // nil when batching is disabled
	lanes   *lanePacker // nil when lanes are disabled or unsupported
	Metrics *stats.Registry
	Tracer  *trace.Tracer
	logger  *slog.Logger
}

// NewService wires engine and its enclave service into a serving stack:
// per-layer engine metrics and spans, per-ECALL cost attribution, the
// batching proxy on the engine's enclave path, the admission scheduler,
// and — when the parameter set supports CRT slot batching — the lane
// packer that merges concurrent scalar requests into shared slot-packed
// engine passes. With a non-batching plaintext modulus the lane stage
// disables itself and every request runs scalar, so one construction works
// across parameter tiers. The engine must not serve traffic through other
// paths afterwards — the service re-routes its non-linear calls.
func NewService(engine *core.HybridEngine, svc *core.EnclaveService, opts ...Option) *Service {
	o := options{scheduler: SchedulerConfig{}, batcher: BatcherConfig{}, lanes: DefaultLaneConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	reg := o.metrics
	if reg == nil {
		reg = stats.NewRegistry()
	}
	tracer := o.tracer
	if tracer == nil {
		tracer = trace.NewTracer(trace.DefaultBufferSize)
	}
	logger := o.logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	engine.SetMetrics(reg)
	svc.SetMetrics(reg)
	s := &Service{Metrics: reg, Tracer: tracer, logger: logger}
	if !o.disableBatching {
		bcfg := o.batcher
		bcfg.Metrics = reg
		bcfg.Logger = o.logger
		s.batcher = NewBatcher(svc, bcfg)
		engine.SetNonlinearCaller(s.batcher)
	} else {
		engine.SetNonlinearCaller(svc)
	}
	scfg := o.scheduler
	scfg.Metrics = reg
	scfg.Logger = o.logger
	s.sched = NewScheduler(engine, scfg)

	if !o.disableLanes {
		slots, err := core.SlotCapacity(svc.Params())
		if err != nil {
			// Non-batching modulus: lane packing is impossible, serve scalar.
			reg.Gauge("serve.lanes.enabled").Set(0)
			logger.Info("lane packing disabled: parameters do not support slot batching", "err", err)
		} else {
			lcfg := o.lanes
			def := DefaultLaneConfig()
			if lcfg.MaxLanes <= 0 {
				lcfg.MaxLanes = def.MaxLanes
			}
			if lcfg.MaxLanes > slots {
				lcfg.MaxLanes = slots
			}
			if lcfg.MinLanes < 2 {
				lcfg.MinLanes = def.MinLanes
			}
			if lcfg.MinLanes > lcfg.MaxLanes {
				lcfg.MinLanes = lcfg.MaxLanes
			}
			if lcfg.Window <= 0 {
				lcfg.Window = def.Window
			}
			reg.Gauge("serve.lanes.enabled").Set(1)
			s.lanes = newLanePacker(svc, s.sched, lcfg, reg, logger)
		}
	}
	return s
}

// Infer submits one request through the serving stack. Lane vs scalar
// execution is decided here: scalar-encoded images join the lane packer
// when it is enabled (falling back to a scalar pass under low load),
// pre-packed images go straight to the scheduler, and everything else runs
// scalar. If the caller did not attach a request trace (the wire server
// does), the service starts one so direct users get the same
// flight-recorder coverage.
func (s *Service) Infer(ctx context.Context, req Request) (res *Result, err error) {
	img := req.Image
	if img == nil || len(img.CTs) == 0 {
		return nil, fmt.Errorf("serve: empty request image")
	}
	if trace.FromContext(ctx) == nil {
		tr := s.Tracer.Start("infer")
		ctx = trace.With(ctx, tr)
		defer s.Tracer.Finish(tr)
	}
	// Whole-pipeline stage timer (lane wait + queue wait + engine) for the
	// request SLO, with the trace ID as exemplar. Failures are excluded: the
	// error paths (shed, deadline miss) have stage timers of their own, and a
	// fast rejection would otherwise count as a "good" latency event.
	start := time.Now()
	defer func() {
		if err == nil {
			s.Metrics.ObserveHistogramExemplar("serve.request.total_ms",
				float64(time.Since(start).Microseconds())/1000.0, trace.ID(ctx))
		}
	}()
	if req.Tenant != "" {
		s.Metrics.Counter("serve.tenant." + req.Tenant + ".requests").Inc()
	}
	if !req.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, req.Deadline)
		defer cancel()
	}
	if img.Packed {
		// Slot-packed feature maps are incompatible with lane packing (both
		// claim the slot dimension): straight to the scheduler, where the
		// engine's rotation-keyed prefix runs them.
		bctx, span := trace.StartSpan(ctx, "packed.image", "serve")
		res, err := s.sched.Infer(bctx, img)
		span.End()
		if err != nil {
			return nil, err
		}
		return &Result{Logits: res.Logits, OutScale: res.OutScale, Mode: ModePacked, Lanes: 1}, nil
	}
	if img.Lanes > 1 {
		// The caller packed its own batch (Client.EncryptImages): one engine
		// pass, caller-owned lanes. The span's lanes arg feeds the flight
		// report's occupancy attribution.
		bctx, span := trace.StartSpan(ctx, "lane.batch", "serve")
		res, err := s.sched.Infer(bctx, img)
		span.Arg("lanes", float64(img.Lanes)).End()
		if err != nil {
			return nil, err
		}
		return &Result{Logits: res.Logits, OutScale: res.OutScale, Mode: ModeLane, Lanes: img.Lanes, Lane: -1}, nil
	}
	if s.lanes != nil {
		return s.lanes.infer(ctx, img)
	}
	sres, err := s.sched.Infer(ctx, img)
	if err != nil {
		return nil, err
	}
	return &Result{Logits: sres.Logits, OutScale: sres.OutScale, Mode: ModeScalar, Lanes: 1}, nil
}

// Close shuts the service down: the lane packer flushes pending buckets,
// then the scheduler stops admitting and drains, then the batcher flushes
// any stragglers.
func (s *Service) Close() {
	if s.lanes != nil {
		s.lanes.Close()
	}
	s.sched.Close()
	if s.batcher != nil {
		s.batcher.Close()
	}
}
