package serve

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/stats"
	"hesgx/internal/trace"
)

// Batcher is a batching proxy in front of an enclave service: it coalesces
// element-wise non-linear calls (Sigmoid / Activation / PoolDivide /
// Refresh) from different in-flight inferences into shared enclave
// transitions. The paper's Fig. 8 shows batching ciphertexts per ECALL
// amortizes the dominant boundary-crossing cost *within* one inference;
// the Batcher extends the same amortization *across* concurrent requests:
// N clients at the same layer pay one transition instead of N.
//
// Calls whose NonlinearOp values compare equal compute the same function,
// so their batches concatenate safely; the results demultiplex back to the
// waiting requests by offset. A pending batch flushes when it reaches
// MaxBatch ciphertexts or when the oldest call has waited Window — so a
// lone request never stalls longer than the flush window.
//
// Whole-map pooling ops (OpPoolFull/OpPoolMax) pass through unbatched:
// their output depends on element positions within the batch.
type Batcher struct {
	svc      core.NonlinearCaller
	maxBatch int
	window   time.Duration
	metrics  *stats.Registry
	logger   *slog.Logger

	mu      sync.Mutex
	pending map[core.NonlinearOp]*bucket
	closed  bool
}

// BatcherConfig tunes the batching proxy.
type BatcherConfig struct {
	// MaxBatch flushes a pending batch once it holds this many ciphertexts
	// (default 256). Larger batches amortize the transition further but
	// grow the enclave working set.
	MaxBatch int
	// Window bounds how long the first call in a batch waits for company
	// (default 2ms). This is the latency the slowest path trades for
	// throughput; it should stay within an order of magnitude of the
	// modelled transition cost.
	Window time.Duration
	// Metrics receives batching counters and occupancy samples (nil: none).
	Metrics *stats.Registry
	// Logger receives structured records for failed flushes (nil: silent).
	Logger *slog.Logger
}

// DefaultBatcherConfig returns the serving defaults.
func DefaultBatcherConfig() BatcherConfig {
	return BatcherConfig{MaxBatch: 256, Window: 2 * time.Millisecond}
}

// flushResult carries one waiter's demultiplexed share of a flushed batch.
type flushResult struct {
	outs []*he.Ciphertext
	// requests is the batch occupancy: how many callers shared the flush.
	requests int
	err      error
}

// waiter is one caller blocked on a pending batch.
type waiter struct {
	cts  []*he.Ciphertext
	done chan flushResult // buffered; flush never blocks on delivery
	// ctx carries the waiter's trace attachment; the flush joins every
	// waiter's context so the shared ECALL span lands in each trace.
	ctx context.Context
}

// bucket accumulates waiters for one op value.
type bucket struct {
	op      core.NonlinearOp
	waiters []*waiter
	count   int // total ciphertexts across waiters
	timer   *time.Timer
}

// NewBatcher wraps svc (normally the *core.EnclaveService) in a batching
// proxy. Zero config fields fall back to DefaultBatcherConfig.
func NewBatcher(svc core.NonlinearCaller, cfg BatcherConfig) *Batcher {
	def := DefaultBatcherConfig()
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = def.MaxBatch
	}
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	return &Batcher{
		svc:      svc,
		maxBatch: cfg.MaxBatch,
		window:   cfg.Window,
		metrics:  cfg.Metrics,
		logger:   cfg.Logger,
		pending:  make(map[core.NonlinearOp]*bucket),
	}
}

// Nonlinear implements core.NonlinearCaller. Batchable ops join (or open)
// the pending batch for their op value and block until it flushes;
// non-batchable ops call straight through.
func (b *Batcher) Nonlinear(ctx context.Context, op core.NonlinearOp, cts []*he.Ciphertext) ([]*he.Ciphertext, error) {
	if !op.Batchable() || len(cts) == 0 || len(cts) >= b.maxBatch {
		b.metrics.Counter("serve.ecalls.direct").Inc()
		return b.svc.Nonlinear(ctx, op, cts)
	}
	wctx, wspan := trace.StartSpan(ctx, "batch.wait", "serve")
	w := &waiter{cts: cts, done: make(chan flushResult, 1), ctx: wctx}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		wspan.End()
		b.metrics.Counter("serve.ecalls.direct").Inc()
		return b.svc.Nonlinear(ctx, op, cts)
	}
	bkt, ok := b.pending[op]
	if !ok {
		bkt = &bucket{op: op}
		b.pending[op] = bkt
		// The first waiter arms the flush window for this bucket.
		bkt.timer = time.AfterFunc(b.window, func() { b.flushOp(op, bkt) })
	}
	bkt.waiters = append(bkt.waiters, w)
	bkt.count += len(cts)
	if bkt.count >= b.maxBatch {
		// The call that tips the batch over carries the flush.
		delete(b.pending, op)
		bkt.timer.Stop()
		b.mu.Unlock()
		b.flush(bkt)
	} else {
		b.mu.Unlock()
	}

	select {
	case r := <-w.done:
		wspan.Arg("shared_requests", float64(r.requests)).End()
		return r.outs, r.err
	case <-ctx.Done():
		// The batch still executes (other waiters need it); this caller
		// just stops waiting for its share.
		wspan.Arg("abandoned", 1).End()
		return nil, ctx.Err()
	}
}

// flushOp flushes bkt if it is still the pending bucket for op (the timer
// path; a size-triggered flush may already have detached it).
func (b *Batcher) flushOp(op core.NonlinearOp, bkt *bucket) {
	b.mu.Lock()
	cur, ok := b.pending[op]
	if !ok || cur != bkt {
		b.mu.Unlock()
		return
	}
	delete(b.pending, op)
	b.mu.Unlock()
	b.flush(bkt)
}

// flush executes one coalesced ECALL and demultiplexes the results.
func (b *Batcher) flush(bkt *bucket) {
	all := make([]*he.Ciphertext, 0, bkt.count)
	wctxs := make([]context.Context, 0, len(bkt.waiters))
	for _, w := range bkt.waiters {
		all = append(all, w.cts...)
		wctxs = append(wctxs, w.ctx)
	}
	b.metrics.Counter("serve.ecalls.batched").Inc()
	b.metrics.Counter("serve.ecalls.saved").Add(int64(len(bkt.waiters) - 1))
	b.metrics.ObserveHistogram("serve.batch.occupancy_requests", float64(len(bkt.waiters)))
	b.metrics.ObserveHistogram("serve.batch.occupancy_cts", float64(len(all)))

	// The flush runs under its own context: individual callers may have
	// been cancelled, but the remaining waiters still need the result.
	// Joining the waiters' contexts attributes the shared ECALL span (and
	// its transition cost) to every request's trace without inheriting
	// any caller's cancellation.
	fctx, fspan := trace.StartSpan(trace.Join(context.Background(), wctxs...), "batch.flush", "serve")
	fspan.Arg("requests", float64(len(bkt.waiters))).Arg("cts", float64(len(all)))
	outs, err := b.svc.Nonlinear(fctx, bkt.op, all)
	fspan.End()
	if err == nil && len(outs) != len(all) {
		err = fmt.Errorf("serve: batched %s returned %d ciphertexts for %d inputs", bkt.op.Kind, len(outs), len(all))
	}
	if err != nil {
		// One failed flush fails every sharing request; log once with the
		// batch shape rather than once per waiter.
		b.logger.Warn("batched enclave call failed",
			"op", bkt.op.Kind.String(),
			"requests", len(bkt.waiters),
			"cts", len(all),
			"err", err)
	}
	off := 0
	for _, w := range bkt.waiters {
		if err != nil {
			w.done <- flushResult{requests: len(bkt.waiters), err: err}
			continue
		}
		w.done <- flushResult{outs: outs[off : off+len(w.cts)], requests: len(bkt.waiters)}
		off += len(w.cts)
	}
}

// Close flushes every pending batch and routes subsequent calls straight
// through to the underlying service.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	buckets := make([]*bucket, 0, len(b.pending))
	for op, bkt := range b.pending {
		bkt.timer.Stop()
		buckets = append(buckets, bkt)
		delete(b.pending, op)
	}
	b.mu.Unlock()
	for _, bkt := range buckets {
		b.flush(bkt)
	}
}
