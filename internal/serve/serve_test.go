package serve

import (
	"context"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
	"hesgx/internal/sgx"
	"hesgx/internal/stats"
)

// --- Batcher unit tests over a fake caller ---

// fakeCaller records underlying Nonlinear invocations and echoes inputs.
type fakeCaller struct {
	mu    sync.Mutex
	calls []int // batch sizes, in call order
	err   error
	delay time.Duration
}

func (f *fakeCaller) Nonlinear(ctx context.Context, op core.NonlinearOp, cts []*he.Ciphertext) ([]*he.Ciphertext, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	f.calls = append(f.calls, len(cts))
	f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	out := make([]*he.Ciphertext, len(cts))
	copy(out, cts)
	return out, nil
}

func (f *fakeCaller) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

func dummyCTs(n int) []*he.Ciphertext {
	out := make([]*he.Ciphertext, n)
	for i := range out {
		out[i] = &he.Ciphertext{}
	}
	return out
}

func TestBatcherCoalescesConcurrentCalls(t *testing.T) {
	fake := &fakeCaller{}
	reg := stats.NewRegistry()
	// 4 callers × 2 cts fill MaxBatch exactly; the last arrival flushes.
	b := NewBatcher(fake, BatcherConfig{MaxBatch: 8, Window: time.Minute, Metrics: reg})
	defer b.Close()
	op := core.NonlinearOp{Kind: core.OpSigmoid, InScale: 2, OutScale: 2}

	var wg sync.WaitGroup
	results := make([][]*he.Ciphertext, 4)
	inputs := make([][]*he.Ciphertext, 4)
	for i := 0; i < 4; i++ {
		inputs[i] = dummyCTs(2)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.Nonlinear(context.Background(), op, inputs[i])
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = out
		}(i)
	}
	wg.Wait()

	if got := fake.callCount(); got != 1 {
		t.Fatalf("underlying called %d times, want 1", got)
	}
	if fake.calls[0] != 8 {
		t.Fatalf("coalesced batch size %d, want 8", fake.calls[0])
	}
	// Each caller must get exactly its own ciphertexts back, in order.
	for i := range results {
		if len(results[i]) != 2 {
			t.Fatalf("caller %d got %d cts", i, len(results[i]))
		}
		for j := range results[i] {
			if results[i][j] != inputs[i][j] {
				t.Fatalf("caller %d result %d demultiplexed wrong ciphertext", i, j)
			}
		}
	}
	if saved := reg.Counter("serve.ecalls.saved").Value(); saved != 3 {
		t.Fatalf("ecalls.saved = %d, want 3", saved)
	}
}

func TestBatcherWindowFlushesLoneCall(t *testing.T) {
	fake := &fakeCaller{}
	b := NewBatcher(fake, BatcherConfig{MaxBatch: 1 << 20, Window: 5 * time.Millisecond})
	defer b.Close()
	op := core.NonlinearOp{Kind: core.OpRefresh}
	start := time.Now()
	out, err := b.Nonlinear(context.Background(), op, dummyCTs(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d cts", len(out))
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("lone call waited %v for a window of 5ms", waited)
	}
	if fake.callCount() != 1 {
		t.Fatalf("underlying called %d times", fake.callCount())
	}
}

func TestBatcherKeepsDistinctOpsApart(t *testing.T) {
	fake := &fakeCaller{}
	b := NewBatcher(fake, BatcherConfig{MaxBatch: 4, Window: 5 * time.Millisecond})
	defer b.Close()
	var wg sync.WaitGroup
	for _, divisor := range []uint64{4, 9} {
		wg.Add(1)
		go func(d uint64) {
			defer wg.Done()
			op := core.NonlinearOp{Kind: core.OpPoolDivide, Divisor: d}
			if _, err := b.Nonlinear(context.Background(), op, dummyCTs(2)); err != nil {
				t.Error(err)
			}
		}(divisor)
	}
	wg.Wait()
	// Different divisors compute different functions: two flushes.
	if got := fake.callCount(); got != 2 {
		t.Fatalf("underlying called %d times, want 2", got)
	}
}

func TestBatcherPassesThroughNonBatchableOps(t *testing.T) {
	fake := &fakeCaller{}
	b := NewBatcher(fake, BatcherConfig{MaxBatch: 1 << 20, Window: time.Minute})
	defer b.Close()
	op := core.NonlinearOp{Kind: core.OpPoolMax, Geometry: core.Geometry{Channels: 1, Height: 2, Width: 2, Window: 2}}
	if _, err := b.Nonlinear(context.Background(), op, dummyCTs(4)); err != nil {
		t.Fatal(err)
	}
	// A minute-long window would have hung a batched call; pass-through
	// returns immediately.
	if fake.callCount() != 1 {
		t.Fatalf("underlying called %d times", fake.callCount())
	}
}

func TestBatcherPropagatesErrorsToAllWaiters(t *testing.T) {
	boom := errors.New("enclave on fire")
	fake := &fakeCaller{err: boom}
	b := NewBatcher(fake, BatcherConfig{MaxBatch: 4, Window: time.Minute})
	defer b.Close()
	op := core.NonlinearOp{Kind: core.OpSigmoid, InScale: 1, OutScale: 1}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Nonlinear(context.Background(), op, dummyCTs(2)); !errors.Is(err, boom) {
				t.Errorf("got %v, want underlying error", err)
			}
		}()
	}
	wg.Wait()
}

func TestBatcherHonoursCallerCancellation(t *testing.T) {
	fake := &fakeCaller{}
	b := NewBatcher(fake, BatcherConfig{MaxBatch: 1 << 20, Window: time.Minute})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Nonlinear(ctx, core.NonlinearOp{Kind: core.OpRefresh}, dummyCTs(1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled caller still blocked")
	}
}

// --- Scheduler unit tests over a fake backend ---

// fakeBackend blocks every inference until released.
type fakeBackend struct {
	release chan struct{}
	runs    atomic.Int64
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{release: make(chan struct{})}
}

func (f *fakeBackend) InferContext(ctx context.Context, img *core.CipherImage) (*core.InferenceResult, error) {
	f.runs.Add(1)
	select {
	case <-f.release:
		return &core.InferenceResult{OutScale: 1}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func waitForCounter(t *testing.T, reg *stats.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter(name).Value() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d (at %d)", name, want, reg.Counter(name).Value())
}

func TestSchedulerRejectsWhenQueueFull(t *testing.T) {
	backend := newFakeBackend()
	reg := stats.NewRegistry()
	s := NewScheduler(backend, SchedulerConfig{Workers: 1, QueueDepth: 1, Metrics: reg})
	defer func() { close(backend.release); s.Close() }()

	img := &core.CipherImage{}
	errs := make(chan error, 2)
	// First job occupies the lone worker...
	go func() { _, err := s.Infer(context.Background(), img); errs <- err }()
	deadline := time.Now().Add(5 * time.Second)
	for backend.runs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// ...second fills the queue...
	go func() { _, err := s.Infer(context.Background(), img); errs <- err }()
	waitForCounter(t, reg, "serve.jobs.submitted", 2)
	// ...third must be shed immediately.
	if _, err := s.Infer(context.Background(), img); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	if reg.Counter("serve.jobs.rejected").Value() != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestSchedulerExpiresQueuedJobDeadline(t *testing.T) {
	backend := newFakeBackend()
	reg := stats.NewRegistry()
	s := NewScheduler(backend, SchedulerConfig{Workers: 1, QueueDepth: 4, Metrics: reg})

	img := &core.CipherImage{}
	first := make(chan error, 1)
	go func() { _, err := s.Infer(context.Background(), img); first <- err }()
	deadline := time.Now().Add(5 * time.Second)
	for backend.runs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// The second job's deadline expires while it waits behind the first.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Infer(ctx, img); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}

	close(backend.release)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The expired job must never have entered the backend.
	if got := backend.runs.Load(); got != 1 {
		t.Fatalf("backend ran %d jobs, want 1", got)
	}
	if reg.Counter("serve.jobs.expired").Value() != 1 {
		t.Fatal("expiry not counted")
	}
}

func TestSchedulerAppliesDefaultDeadline(t *testing.T) {
	backend := newFakeBackend()
	defer close(backend.release)
	s := NewScheduler(backend, SchedulerConfig{Workers: 1, QueueDepth: 4, Deadline: 30 * time.Millisecond})
	defer s.Close()
	// The lone worker blocks on this job until its default deadline fires.
	if _, err := s.Infer(context.Background(), &core.CipherImage{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded from default deadline", err)
	}
}

func TestSchedulerClosedRejects(t *testing.T) {
	backend := newFakeBackend()
	close(backend.release)
	s := NewScheduler(backend, SchedulerConfig{Workers: 1, QueueDepth: 1})
	s.Close()
	if _, err := s.Infer(context.Background(), &core.CipherImage{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// --- End-to-end: the pipeline over a real enclave service ---

// stack is a full engine + service + client over a zero-cost platform.
type stack struct {
	platform *sgx.Platform
	svc      *core.EnclaveService
	engine   *core.HybridEngine
	client   *core.Client
	model    *nn.Network
}

func serveConfig() core.Config {
	// SGXDiv pooling keeps every enclave call on a batchable op, the
	// configuration the cross-request amortization targets.
	return core.Config{PixelScale: 63, WeightScale: 16, ActScale: 256, Pool: core.PoolSGXDiv}
}

func newStack(t testing.TB, seed uint64) *stack {
	t.Helper()
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		t.Fatal(err)
	}
	params, err := he.NewParameters(1024, q, 1<<20, he.DefaultDecompositionBase)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	r := mrand.New(mrand.NewPCG(seed, seed^1))
	model := nn.NewNetwork(
		nn.NewConv2D(1, 2, 3, 1, r),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(2*3*3, 4, r),
	)
	engine, err := core.NewEngine(svc, model,
		core.WithScales(63, 16, 256), core.WithPoolStrategy(core.PoolSGXDiv))
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	verifier := attest.NewService()
	verifier.RegisterPlatform(platform.AttestationPublicKey())
	verifier.TrustMeasurement(svc.Enclave().Measurement())
	if _, err := client.RunKeyExchange(svc, verifier); err != nil {
		t.Fatal(err)
	}
	return &stack{platform: platform, svc: svc, engine: engine, client: client, model: model}
}

func testImage(seed uint64) *nn.Tensor {
	r := mrand.New(mrand.NewPCG(seed, seed^2))
	img := nn.NewTensor(1, 8, 8)
	for i := range img.Data {
		img.Data[i] = r.Float64()
	}
	return img
}

// runConcurrent pushes n distinct images through the serving stack at once
// and verifies every decrypted result against the plaintext reference. It
// returns the enclave transition count consumed by the inferences.
func runConcurrent(t *testing.T, st *stack, s *Service, n int) uint64 {
	t.Helper()
	imgs := make([]*nn.Tensor, n)
	cis := make([]*core.CipherImage, n)
	for i := range imgs {
		imgs[i] = testImage(uint64(100 + i))
		ci, err := st.client.EncryptImages([]*nn.Tensor{imgs[i]}, serveConfig().PixelScale)
		if err != nil {
			t.Fatal(err)
		}
		cis[i] = ci
	}
	if err := st.engine.EncodeWeights(); err != nil {
		t.Fatal(err)
	}
	before := st.platform.Snapshot()

	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = s.Infer(context.Background(), Request{Image: cis[i]})
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("inference %d: %v", i, errs[i])
		}
		got, err := st.client.DecryptValues(results[i].Logits)
		if err != nil {
			t.Fatal(err)
		}
		want, err := st.engine.ReferenceForward(imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("inference %d: %d logits, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("inference %d logit %d: encrypted %d != reference %d", i, j, got[j], want[j])
			}
		}
	}
	return st.platform.Snapshot().Sub(before).Transitions()
}

func TestPipelineBatchingReducesTransitions(t *testing.T) {
	const n = 8

	direct := newStack(t, 41)
	pDirect := NewService(direct.engine, direct.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: n, QueueDepth: n}),
		WithoutBatching(),
		WithoutLanes(), // scalar passes: the ECALL-amortization property under test
	)
	directTransitions := runConcurrent(t, direct, pDirect, n)
	pDirect.Close()

	batched := newStack(t, 42)
	pBatched := NewService(batched.engine, batched.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: n, QueueDepth: n}),
		// A generous window so even a slow CI box coalesces all n jobs.
		WithBatcherConfig(BatcherConfig{MaxBatch: 1 << 14, Window: 100 * time.Millisecond}),
		WithoutLanes(),
	)
	batchedTransitions := runConcurrent(t, batched, pBatched, n)
	pBatched.Close()

	// The model has two enclave layers (sigmoid, pool-divide): direct mode
	// pays 2n transitions; cross-request batching must pay fewer.
	t.Logf("transitions for %d concurrent inferences: direct=%d batched=%d", n, directTransitions, batchedTransitions)
	if directTransitions != 2*n {
		t.Fatalf("direct mode made %d transitions, want %d", directTransitions, 2*n)
	}
	if batchedTransitions >= directTransitions {
		t.Fatalf("batching did not amortize: %d >= %d transitions", batchedTransitions, directTransitions)
	}
	if saved := pBatched.Metrics.Counter("serve.ecalls.saved").Value(); saved <= 0 {
		t.Fatalf("ecalls.saved = %d, want > 0", saved)
	}
	if pBatched.Metrics.Counter("serve.jobs.completed").Value() != n {
		t.Fatal("completed-job counter mismatch")
	}
}

func TestPipelineSequentialStillCorrect(t *testing.T) {
	st := newStack(t, 43)
	p := NewService(st.engine, st.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: 2, QueueDepth: 4}),
		WithBatcherConfig(BatcherConfig{Window: 2 * time.Millisecond}),
		WithoutLanes(),
	)
	defer p.Close()
	// One at a time: every batch flushes on the window with occupancy 1.
	for i := 0; i < 3; i++ {
		img := testImage(uint64(200 + i))
		ci, err := st.client.EncryptImages([]*nn.Tensor{img}, serveConfig().PixelScale)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Infer(context.Background(), Request{Image: ci})
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.client.DecryptValues(res.Logits)
		if err != nil {
			t.Fatal(err)
		}
		want, err := st.engine.ReferenceForward(img)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("solo inference %d logit %d mismatch", i, j)
			}
		}
	}
}

func TestPipelineCancelledJobSkipsEnclave(t *testing.T) {
	st := newStack(t, 44)
	p := NewService(st.engine, st.svc,
		WithSchedulerConfig(SchedulerConfig{Workers: 1, QueueDepth: 4}),
		WithoutLanes(),
	)
	defer p.Close()
	ci, err := st.client.EncryptImages([]*nn.Tensor{testImage(300)}, serveConfig().PixelScale)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Infer(ctx, Request{Image: ci}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestOpValidation pins the unified op API's argument checking.
func TestOpValidation(t *testing.T) {
	cases := []struct {
		op core.NonlinearOp
		ok bool
	}{
		{core.NonlinearOp{Kind: core.OpSigmoid, InScale: 1, OutScale: 1}, true},
		{core.NonlinearOp{Kind: core.OpSigmoid}, false},
		{core.NonlinearOp{Kind: core.OpPoolDivide, Divisor: 4}, true},
		{core.NonlinearOp{Kind: core.OpPoolDivide}, false},
		{core.NonlinearOp{Kind: core.OpPoolFull, Geometry: core.Geometry{Channels: 1, Height: 4, Width: 4, Window: 2}}, true},
		{core.NonlinearOp{Kind: core.OpPoolFull, Geometry: core.Geometry{Channels: 1, Height: 4, Width: 4, Window: 3}}, false},
		{core.NonlinearOp{Kind: core.OpPoolMax}, false},
		{core.NonlinearOp{Kind: core.OpRefresh}, true},
		{core.NonlinearOp{Kind: core.OpKind(99)}, false},
	}
	for i, c := range cases {
		err := c.op.Validate()
		if c.ok && err != nil {
			t.Errorf("case %d (%s): unexpected error %v", i, c.op.Kind, err)
		}
		if !c.ok && err == nil {
			t.Errorf("case %d (%s): validation passed, want error", i, c.op.Kind)
		}
	}
	if fmt.Sprint(core.OpSigmoid, core.OpRefresh) != "sigmoid refresh" {
		t.Error("op kind names changed")
	}
}
