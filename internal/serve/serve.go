// Package serve is the concurrent serving pipeline of the edge server:
//
//	wire.Server ──► Scheduler (bounded queue, worker pool, deadlines)
//	                   │ engine.InferContext per job
//	                   ▼
//	            core.HybridEngine ──► Batcher (cross-request ECALL coalescing)
//	                                     │ one shared transition per flush
//	                                     ▼
//	                              core.EnclaveService ──► sgx.Enclave
//
// The paper's central performance result (§VIII, Fig. 8) is that batching
// ciphertexts per enclave transition amortizes the ~1 ms ECALL cost. The
// seed repo only batched within one inference; under N concurrent clients
// the enclave still paid N transitions per non-linear layer. This package
// closes that gap: the Scheduler bounds concurrency and sheds load at
// admission, and the Batcher merges same-op non-linear calls from
// different in-flight inferences into shared ECALLs, so transitions per
// inference fall as concurrency rises.
package serve

import (
	"context"

	"hesgx/internal/core"
	"hesgx/internal/stats"
)

// Config assembles a full serving pipeline.
type Config struct {
	Scheduler SchedulerConfig
	Batcher   BatcherConfig
	// DisableBatching runs the scheduler without the cross-request
	// batching proxy (the ablation/control configuration).
	DisableBatching bool
	// Metrics is the registry shared by every pipeline stage (nil: a new
	// registry is created).
	Metrics *stats.Registry
}

// Pipeline owns the serving stages wired over one engine.
type Pipeline struct {
	Scheduler *Scheduler
	Batcher   *Batcher // nil when batching is disabled
	Metrics   *stats.Registry
}

// NewPipeline wires engine and its enclave service into a serving
// pipeline: per-layer engine metrics, the batching proxy on the engine's
// enclave path (unless disabled), and the admission scheduler on top.
// The engine must not serve traffic through other paths afterwards — the
// pipeline re-routes its non-linear calls.
func NewPipeline(engine *core.HybridEngine, svc *core.EnclaveService, cfg Config) *Pipeline {
	reg := cfg.Metrics
	if reg == nil {
		reg = stats.NewRegistry()
	}
	engine.SetMetrics(reg)
	p := &Pipeline{Metrics: reg}
	if !cfg.DisableBatching {
		bcfg := cfg.Batcher
		bcfg.Metrics = reg
		p.Batcher = NewBatcher(svc, bcfg)
		engine.SetNonlinearCaller(p.Batcher)
	} else {
		engine.SetNonlinearCaller(svc)
	}
	scfg := cfg.Scheduler
	scfg.Metrics = reg
	p.Scheduler = NewScheduler(engine, scfg)
	return p
}

// Infer submits an inference through the pipeline.
func (p *Pipeline) Infer(ctx context.Context, img *core.CipherImage) (*core.InferenceResult, error) {
	return p.Scheduler.Infer(ctx, img)
}

// Close shuts the pipeline down: the scheduler stops admitting and drains,
// then the batcher flushes any stragglers.
func (p *Pipeline) Close() {
	p.Scheduler.Close()
	if p.Batcher != nil {
		p.Batcher.Close()
	}
}
