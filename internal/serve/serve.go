// Package serve is the concurrent serving pipeline of the edge server:
//
//	wire.Server ──► Service.Infer(ctx, Request)
//	                   │
//	                   ▼
//	            lanePacker (slot-lane admission: fill-or-deadline buckets,
//	                   │    enclave lane_pack/lane_demux repack, scalar
//	                   │    fallback under low load)
//	                   ▼
//	            Scheduler (bounded queue, worker pool, deadlines)
//	                   │ engine.InferContext per job
//	                   ▼
//	            core.HybridEngine ──► Batcher (cross-request ECALL coalescing)
//	                                     │ one shared transition per flush
//	                                     ▼
//	                              core.EnclaveService ──► sgx.Enclave
//
// The paper's central performance result (§VIII, Fig. 8) is that batching
// ciphertexts per enclave transition amortizes the ~1 ms ECALL cost. The
// seed repo only batched within one inference; under N concurrent clients
// the enclave still paid N transitions per non-linear layer. This package
// closes that gap: the Scheduler bounds concurrency and sheds load at
// admission, and the Batcher merges same-op non-linear calls from
// different in-flight inferences into shared ECALLs, so transitions per
// inference fall as concurrency rises.
package serve

import (
	"context"
	"log/slog"

	"hesgx/internal/core"
	"hesgx/internal/stats"
	"hesgx/internal/trace"
)

// Config assembles a full serving pipeline.
//
// Deprecated: use NewService with Option values (WithSchedulerConfig,
// WithBatcherConfig, WithoutBatching, WithMetrics, WithTracer, WithLogger).
// Config remains as a thin shim for one release.
type Config struct {
	Scheduler SchedulerConfig
	Batcher   BatcherConfig
	// DisableBatching runs the scheduler without the cross-request
	// batching proxy (the ablation/control configuration).
	DisableBatching bool
	// Metrics is the registry shared by every pipeline stage (nil: a new
	// registry is created).
	Metrics *stats.Registry
	// Tracer retains per-request span traces (nil: a tracer with the
	// default ring-buffer size is created — tracing is always on; its
	// per-span cost is negligible against HE layer times).
	Tracer *trace.Tracer
	// Logger is handed to the scheduler and batcher for shed/expiry/flush
	// failure records (nil: silent).
	Logger *slog.Logger
}

// Pipeline owns the serving stages wired over one engine.
//
// Deprecated: use Service, whose Infer(ctx, Request) entrypoint carries
// deadline and tenant metadata and schedules lane-packed execution.
// Pipeline remains as a thin shim over a lane-less Service for one release.
type Pipeline struct {
	Scheduler *Scheduler
	Batcher   *Batcher // nil when batching is disabled
	Metrics   *stats.Registry
	Tracer    *trace.Tracer

	svc *Service
}

// NewPipeline wires engine and its enclave service into a serving
// pipeline: per-layer engine metrics and spans, per-ECALL cost
// attribution, the batching proxy on the engine's enclave path (unless
// disabled), and the admission scheduler on top. The engine must not
// serve traffic through other paths afterwards — the pipeline re-routes
// its non-linear calls.
//
// Deprecated: use NewService, which adds the lane-packing admission stage.
// NewPipeline builds a lane-less Service, preserving the PR 1 behavior of
// one engine pass per request.
func NewPipeline(engine *core.HybridEngine, svc *core.EnclaveService, cfg Config) *Pipeline {
	opts := []Option{
		WithSchedulerConfig(cfg.Scheduler),
		WithBatcherConfig(cfg.Batcher),
		WithoutLanes(),
	}
	if cfg.DisableBatching {
		opts = append(opts, WithoutBatching())
	}
	if cfg.Metrics != nil {
		opts = append(opts, WithMetrics(cfg.Metrics))
	}
	if cfg.Tracer != nil {
		opts = append(opts, WithTracer(cfg.Tracer))
	}
	if cfg.Logger != nil {
		opts = append(opts, WithLogger(cfg.Logger))
	}
	s := NewService(engine, svc, opts...)
	return &Pipeline{Scheduler: s.sched, Batcher: s.batcher, Metrics: s.Metrics, Tracer: s.Tracer, svc: s}
}

// Infer submits an inference through the pipeline. If the caller did not
// attach a request trace (the wire server does), the pipeline starts one
// so direct users get the same flight-recorder coverage.
func (p *Pipeline) Infer(ctx context.Context, img *core.CipherImage) (*core.InferenceResult, error) {
	res, err := p.svc.Infer(ctx, Request{Image: img})
	if err != nil {
		return nil, err
	}
	return &core.InferenceResult{Logits: res.Logits, OutScale: res.OutScale}, nil
}

// Close shuts the pipeline down: the scheduler stops admitting and drains,
// then the batcher flushes any stragglers.
func (p *Pipeline) Close() {
	p.svc.Close()
}
