// Package serve is the concurrent serving pipeline of the edge server:
//
//	wire.Server ──► Service.Infer(ctx, Request)
//	                   │
//	                   ▼
//	            lanePacker (slot-lane admission: fill-or-deadline buckets,
//	                   │    enclave lane_pack/lane_demux repack, scalar
//	                   │    fallback under low load)
//	                   ▼
//	            Scheduler (bounded queue, worker pool, deadlines)
//	                   │ engine.InferContext per job
//	                   ▼
//	            core.HybridEngine ──► Batcher (cross-request ECALL coalescing)
//	                                     │ one shared transition per flush
//	                                     ▼
//	                              core.EnclaveService ──► sgx.Enclave
//
// The paper's central performance result (§VIII, Fig. 8) is that batching
// ciphertexts per enclave transition amortizes the ~1 ms ECALL cost. The
// seed repo only batched within one inference; under N concurrent clients
// the enclave still paid N transitions per non-linear layer. This package
// closes that gap: the Scheduler bounds concurrency and sheds load at
// admission, and the Batcher merges same-op non-linear calls from
// different in-flight inferences into shared ECALLs, so transitions per
// inference fall as concurrency rises.
package serve
