package encoding

import (
	"fmt"

	"hesgx/internal/he"
	"hesgx/internal/ring"
)

// BatchEncoder packs n independent Z_t values ("slots") into one plaintext
// using the CRT factorization of x^n+1 mod t, which exists when t is a
// prime ≡ 1 (mod 2n). Homomorphic addition and multiplication then act
// slot-wise (SIMD), the batching §VIII of the paper credits with
// thousands-fold throughput gains.
type BatchEncoder struct {
	params he.Parameters
	// slotRing is Z_t[x]/(x^n+1) with its own NTT; encoding is an inverse
	// transform, decoding a forward transform.
	slotRing *ring.Ring
}

// NewBatchEncoder builds a batch encoder. It fails if the plaintext modulus
// does not support batching.
func NewBatchEncoder(params he.Parameters) (*BatchEncoder, error) {
	if !params.Valid() {
		return nil, fmt.Errorf("encoding: invalid parameters")
	}
	t := params.T
	if t%uint64(2*params.N) != 1 {
		return nil, fmt.Errorf("encoding: plaintext modulus %d is not ≡ 1 mod %d; batching unsupported", t, 2*params.N)
	}
	if !ring.IsPrime(t) {
		return nil, fmt.Errorf("encoding: plaintext modulus %d is not prime; batching unsupported", t)
	}
	sr, err := ring.NewRing(params.N, t)
	if err != nil {
		return nil, fmt.Errorf("encoding: building slot ring: %w", err)
	}
	return &BatchEncoder{params: params, slotRing: sr}, nil
}

// SlotCount returns the number of independent slots (the ring degree).
func (e *BatchEncoder) SlotCount() int { return e.params.N }

// Encode packs values (len <= SlotCount, remaining slots zero) into a
// plaintext. Values are reduced mod t; negative values wrap.
func (e *BatchEncoder) Encode(values []int64) (*he.Plaintext, error) {
	if len(values) > e.params.N {
		return nil, fmt.Errorf("encoding: %d values exceed %d slots", len(values), e.params.N)
	}
	pt := he.NewPlaintext(e.params)
	t := int64(e.params.T)
	for i, v := range values {
		r := v % t
		if r < 0 {
			r += t
		}
		pt.Poly.Coeffs[i] = uint64(r)
	}
	// Slots are NTT-domain values; the plaintext polynomial is their
	// inverse transform.
	e.slotRing.INTT(pt.Poly)
	return pt, nil
}

// Decode unpacks a plaintext into its slot values, centered in
// (-t/2, t/2].
func (e *BatchEncoder) Decode(pt *he.Plaintext) ([]int64, error) {
	if err := pt.Validate(); err != nil {
		return nil, fmt.Errorf("encoding: batch decode: %w", err)
	}
	p := pt.Poly.Copy()
	e.slotRing.NTT(p)
	out := make([]int64, e.params.N)
	for i, c := range p.Coeffs {
		out[i] = e.slotRing.Mod.Centered(c)
	}
	return out, nil
}

// BatchingPlaintextModulus returns a prime t ≡ 1 mod 2n of the requested
// bit length, suitable for NewBatchEncoder.
func BatchingPlaintextModulus(n, bitLen int) (uint64, error) {
	return ring.GenerateNTTPrime(bitLen, n)
}
