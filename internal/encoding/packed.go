package encoding

import (
	"fmt"

	"hesgx/internal/he"
	"hesgx/internal/ring"
)

// PackedEncoder is the rotation-aware sibling of BatchEncoder. Both pack n
// Z_t values into the CRT slots of x^n+1 mod t, but BatchEncoder addresses
// slots by raw transform position, where a Galois automorphism scatters
// them unpredictably. PackedEncoder instead addresses slots by root
// exponent, arranged as the standard 2×(n/2) hypercube: row 0 slot j holds
// the evaluation at ζ^(5^j mod 2n), row 1 slot j the evaluation at
// ζ^(-5^j mod 2n). Under this layout the automorphism φ_(5^r) — applied in
// the NTT domain as a pure index permutation (see ring.AutomorphismNTT) —
// rotates each row left by r slots, which is what the packed conv/pool
// kernels are built on.
type PackedEncoder struct {
	params   he.Parameters
	slotRing *ring.Ring
	rowLen   int
	// pos[row][j] is the transform position of the slot (row, j).
	pos [2][]int32
}

// NewPackedEncoder builds a packed encoder. The plaintext modulus must
// support batching (prime t ≡ 1 mod 2n), same as NewBatchEncoder.
func NewPackedEncoder(params he.Parameters) (*PackedEncoder, error) {
	if !params.Valid() {
		return nil, fmt.Errorf("encoding: invalid parameters")
	}
	n := params.N
	t := params.T
	if t%uint64(2*n) != 1 {
		return nil, fmt.Errorf("encoding: plaintext modulus %d is not ≡ 1 mod %d; batching unsupported", t, 2*n)
	}
	if !ring.IsPrime(t) {
		return nil, fmt.Errorf("encoding: plaintext modulus %d is not prime; batching unsupported", t)
	}
	sr, err := ring.NewRing(n, t)
	if err != nil {
		return nil, fmt.Errorf("encoding: building slot ring: %w", err)
	}
	// Invert the transform's root-exponent map, then walk the two orbits of
	// ⟨5⟩ ⊂ (Z/2n)^*: exponents 5^j land in row 0, their negations in row 1.
	exp := sr.NTTExponents()
	posByExp := make([]int32, 2*n)
	for i := range posByExp {
		posByExp[i] = -1
	}
	for p, e := range exp {
		posByExp[e] = int32(p)
	}
	m := uint64(2 * n)
	enc := &PackedEncoder{params: params, slotRing: sr, rowLen: n / 2}
	enc.pos[0] = make([]int32, n/2)
	enc.pos[1] = make([]int32, n/2)
	g := uint64(1)
	for j := 0; j < n/2; j++ {
		p0, p1 := posByExp[g], posByExp[m-g]
		if p0 < 0 || p1 < 0 {
			return nil, fmt.Errorf("encoding: exponent %d missing from transform layout", g)
		}
		enc.pos[0][j] = p0
		enc.pos[1][j] = p1
		g = g * 5 % m
	}
	return enc, nil
}

// SlotCount returns the total number of slots (the ring degree).
func (e *PackedEncoder) SlotCount() int { return e.params.N }

// RowLen returns the length n/2 of each of the two rotation rows.
// Rotation by r (ring.GaloisElement(r, n)) maps slot (row, j) to
// (row, (j+r) mod RowLen()) — rows rotate independently and never mix.
func (e *PackedEncoder) RowLen() int { return e.rowLen }

// Encode packs values (len ≤ SlotCount, remaining slots zero) into a
// plaintext, row-major: values[0:n/2] fill row 0, values[n/2:n] row 1.
// Values are reduced mod t; negative values wrap.
func (e *PackedEncoder) Encode(values []int64) (*he.Plaintext, error) {
	n := e.params.N
	if len(values) > n {
		return nil, fmt.Errorf("encoding: %d values exceed %d slots", len(values), n)
	}
	pt := he.NewPlaintext(e.params)
	t := int64(e.params.T)
	for i, v := range values {
		r := v % t
		if r < 0 {
			r += t
		}
		row, j := i/e.rowLen, i%e.rowLen
		pt.Poly.Coeffs[e.pos[row][j]] = uint64(r)
	}
	e.slotRing.INTT(pt.Poly)
	return pt, nil
}

// Decode unpacks a plaintext into its slot values in row-major order,
// centered in (-t/2, t/2].
func (e *PackedEncoder) Decode(pt *he.Plaintext) ([]int64, error) {
	if err := pt.Validate(); err != nil {
		return nil, fmt.Errorf("encoding: packed decode: %w", err)
	}
	p := pt.Poly.Copy()
	e.slotRing.NTT(p)
	out := make([]int64, e.params.N)
	for i := range out {
		row, j := i/e.rowLen, i%e.rowLen
		out[i] = e.slotRing.Mod.Centered(p.Coeffs[e.pos[row][j]])
	}
	return out, nil
}
