// Package encoding maps application values (integers, fixed-point reals,
// SIMD vectors) into FV plaintext polynomials and back, mirroring the
// encoder family of SEAL 2.1 that the paper's implementation used: an
// IntegerEncoder (binary expansion), a FractionalEncoder (integer and
// fractional parts split across the polynomial), a ScalarEncoder (constant
// coefficient, the exact mod-t path the inference engines use), and a
// BatchEncoder (CRT/SIMD slots, §VIII's throughput discussion).
package encoding

import (
	"fmt"
	"math"

	"hesgx/internal/he"
)

// IntegerEncoder encodes signed integers as binary-expansion polynomials:
// v = Σ b_i 2^i becomes Σ b_i x^i, with negative values encoded by negating
// each coefficient mod t. Homomorphic addition and multiplication then act
// on the encoded integers as long as coefficients never wrap mod t.
type IntegerEncoder struct {
	params he.Parameters
}

// NewIntegerEncoder builds an integer encoder for the parameter set.
func NewIntegerEncoder(params he.Parameters) (*IntegerEncoder, error) {
	if !params.Valid() {
		return nil, fmt.Errorf("encoding: invalid parameters")
	}
	return &IntegerEncoder{params: params}, nil
}

// Encode converts v into a plaintext polynomial.
func (e *IntegerEncoder) Encode(v int64) (*he.Plaintext, error) {
	pt := he.NewPlaintext(e.params)
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	if bitsLen(u) > e.params.N {
		return nil, fmt.Errorf("encoding: integer %d needs more than %d coefficients", v, e.params.N)
	}
	t := e.params.T
	for i := 0; u != 0; i++ {
		if u&1 == 1 {
			if neg {
				pt.Poly.Coeffs[i] = t - 1
			} else {
				pt.Poly.Coeffs[i] = 1
			}
		}
		u >>= 1
	}
	return pt, nil
}

// Decode evaluates the polynomial at x=2 with centered coefficients,
// recovering the integer as long as no coefficient wrapped mod t and the
// result fits in an int64.
func (e *IntegerEncoder) Decode(pt *he.Plaintext) (int64, error) {
	if err := pt.Validate(); err != nil {
		return 0, fmt.Errorf("encoding: decode: %w", err)
	}
	t := e.params.T
	half := t / 2
	var acc int64
	// Horner evaluation from the top coefficient down.
	for i := len(pt.Poly.Coeffs) - 1; i >= 0; i-- {
		c := pt.Poly.Coeffs[i]
		var signed int64
		if c > half {
			signed = int64(c) - int64(t)
		} else {
			signed = int64(c)
		}
		next := acc*2 + signed
		if acc > 0 && next < acc && i > 0 {
			return 0, fmt.Errorf("encoding: decoded value overflows int64")
		}
		acc = next
	}
	return acc, nil
}

func bitsLen(u uint64) int {
	n := 0
	for u != 0 {
		n++
		u >>= 1
	}
	return n
}

// ScalarEncoder places a value mod t in the constant coefficient. It is the
// exact arithmetic path the inference engines use: all homomorphic sums and
// products stay in the constant coefficient, and correctness is plain
// modular arithmetic (no digit-carry headroom to manage).
type ScalarEncoder struct {
	params he.Parameters
}

// NewScalarEncoder builds a scalar encoder.
func NewScalarEncoder(params he.Parameters) (*ScalarEncoder, error) {
	if !params.Valid() {
		return nil, fmt.Errorf("encoding: invalid parameters")
	}
	return &ScalarEncoder{params: params}, nil
}

// T returns the plaintext modulus values are reduced by.
func (e *ScalarEncoder) T() uint64 { return e.params.T }

// Encode maps a signed integer into [0, t) in the constant coefficient.
func (e *ScalarEncoder) Encode(v int64) *he.Plaintext {
	pt := he.NewPlaintext(e.params)
	pt.Poly.Coeffs[0] = e.EncodeValue(v)
	return pt
}

// EncodeValue reduces v into [0, t).
func (e *ScalarEncoder) EncodeValue(v int64) uint64 {
	t := int64(e.params.T)
	r := v % t
	if r < 0 {
		r += t
	}
	return uint64(r)
}

// Decode returns the centered value of the constant coefficient; values
// above t/2 are interpreted as negative.
func (e *ScalarEncoder) Decode(pt *he.Plaintext) int64 {
	return e.DecodeValue(pt.Poly.Coeffs[0])
}

// DecodeValue centers a residue in [0, t).
func (e *ScalarEncoder) DecodeValue(c uint64) int64 {
	t := e.params.T
	if c > t/2 {
		return int64(c) - int64(t)
	}
	return int64(c)
}

// FractionalEncoder encodes fixed-point reals the way SEAL 2.1's fractional
// encoder did: the integer part occupies the low coefficients in binary, and
// fractional bits b_1..b_k (of 1/2, 1/4, ...) occupy the top coefficients
// with negated sign, exploiting x^n ≡ -1 so that x^(n-i) acts as -x^(-i).
type FractionalEncoder struct {
	params       he.Parameters
	fractionBits int
	integerBits  int
}

// NewFractionalEncoder builds a fractional encoder devoting fractionBits
// top coefficients to the fraction and integerBits low coefficients to the
// integer part.
func NewFractionalEncoder(params he.Parameters, integerBits, fractionBits int) (*FractionalEncoder, error) {
	if !params.Valid() {
		return nil, fmt.Errorf("encoding: invalid parameters")
	}
	if integerBits < 1 || fractionBits < 1 || integerBits+fractionBits > params.N {
		return nil, fmt.Errorf("encoding: integer bits %d + fraction bits %d must fit in degree %d",
			integerBits, fractionBits, params.N)
	}
	return &FractionalEncoder{params: params, integerBits: integerBits, fractionBits: fractionBits}, nil
}

// Encode converts v to a fixed-point plaintext. Precision beyond
// fractionBits binary digits is truncated toward zero.
func (e *FractionalEncoder) Encode(v float64) (*he.Plaintext, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, fmt.Errorf("encoding: cannot encode %v", v)
	}
	limit := math.Exp2(float64(e.integerBits))
	if math.Abs(v) >= limit {
		return nil, fmt.Errorf("encoding: |%g| exceeds integer capacity 2^%d", v, e.integerBits)
	}
	pt := he.NewPlaintext(e.params)
	t := e.params.T
	neg := v < 0
	av := math.Abs(v)
	ip, fp := math.Modf(av)
	// Integer part: binary in low coefficients.
	u := uint64(ip)
	for i := 0; u != 0; i++ {
		if u&1 == 1 {
			if neg {
				pt.Poly.Coeffs[i] = t - 1
			} else {
				pt.Poly.Coeffs[i] = 1
			}
		}
		u >>= 1
	}
	// Fractional part: bit i (weight 2^-i) goes to coefficient n-i with
	// negated sign.
	n := e.params.N
	for i := 1; i <= e.fractionBits; i++ {
		fp *= 2
		if fp >= 1 {
			fp -= 1
			if neg {
				pt.Poly.Coeffs[n-i] = 1
			} else {
				pt.Poly.Coeffs[n-i] = t - 1
			}
		}
	}
	return pt, nil
}

// Decode recovers the fixed-point value, interpreting all n coefficients so
// that products of encodings (whose digits spread) still decode correctly.
func (e *FractionalEncoder) Decode(pt *he.Plaintext) (float64, error) {
	if err := pt.Validate(); err != nil {
		return 0, fmt.Errorf("encoding: decode: %w", err)
	}
	t := e.params.T
	half := t / 2
	n := e.params.N
	// Coefficients near the top are fractional digits (negated); the split
	// point places fraction digits in the top quarter, which is ample for
	// single multiplications of properly ranged values.
	split := n - n/4
	var value float64
	for i, c := range pt.Poly.Coeffs {
		if c == 0 {
			continue
		}
		var signed float64
		if c > half {
			signed = float64(int64(c) - int64(t))
		} else {
			signed = float64(c)
		}
		if i >= split {
			value -= signed * math.Exp2(float64(i-n))
		} else {
			value += signed * math.Exp2(float64(i))
		}
	}
	return value, nil
}
