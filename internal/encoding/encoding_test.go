package encoding

import (
	"math"
	"testing"
	"testing/quick"

	"hesgx/internal/he"
	"hesgx/internal/ring"
)

func testParams(t testing.TB, plainMod uint64) he.Parameters {
	return testParamsN(t, 1024, 46, plainMod)
}

func testParamsN(t testing.TB, n, qBits int, plainMod uint64) he.Parameters {
	t.Helper()
	q, err := ring.GenerateNTTPrime(qBits, n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := he.NewParameters(n, q, plainMod, he.DefaultDecompositionBase)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

type cryptoContext struct {
	params he.Parameters
	enc    *he.Encryptor
	dec    *he.Decryptor
	eval   *he.Evaluator
}

func newCryptoContext(t testing.TB, params he.Parameters, seed uint64) *cryptoContext {
	t.Helper()
	kg, err := he.NewKeyGenerator(params, ring.NewSeededSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	sk, pk := kg.GenKeyPair()
	enc, err := he.NewEncryptor(pk, ring.NewSeededSource(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := he.NewDecryptor(sk)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := he.NewEvaluator(params)
	if err != nil {
		t.Fatal(err)
	}
	return &cryptoContext{params: params, enc: enc, dec: dec, eval: eval}
}

func TestIntegerEncoderRoundTrip(t *testing.T) {
	params := testParams(t, 257)
	e, err := NewIntegerEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, 1, -1, 2, 127, -128, 1 << 20, -(1 << 20), 123456789, -987654321} {
		pt, err := e.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%d): %v", v, err)
		}
		got, err := e.Decode(pt)
		if err != nil {
			t.Fatalf("Decode(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("roundtrip %d -> %d", v, got)
		}
	}
}

func TestIntegerEncoderQuick(t *testing.T) {
	params := testParams(t, 257)
	e, _ := NewIntegerEncoder(params)
	f := func(v int32) bool {
		pt, err := e.Encode(int64(v))
		if err != nil {
			return false
		}
		got, err := e.Decode(pt)
		return err == nil && got == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntegerEncoderHomomorphicAdd(t *testing.T) {
	params := testParams(t, 257)
	cc := newCryptoContext(t, params, 7)
	e, _ := NewIntegerEncoder(params)
	// Binary digit coefficients stay below t=257 for a few additions.
	pa, _ := e.Encode(100)
	pb, _ := e.Encode(37)
	cta, _ := cc.enc.Encrypt(pa)
	ctb, _ := cc.enc.Encrypt(pb)
	sum, err := cc.eval.Add(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := cc.dec.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Decode(dt)
	if err != nil {
		t.Fatal(err)
	}
	if got != 137 {
		t.Fatalf("100+37 = %d", got)
	}
}

func TestIntegerEncoderHomomorphicMul(t *testing.T) {
	params := testParams(t, 257)
	cc := newCryptoContext(t, params, 8)
	e, _ := NewIntegerEncoder(params)
	pa, _ := e.Encode(12)
	pb, _ := e.Encode(-5)
	cta, _ := cc.enc.Encrypt(pa)
	ctb, _ := cc.enc.Encrypt(pb)
	prod, err := cc.eval.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := cc.dec.Decrypt(prod)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Decode(dt)
	if err != nil {
		t.Fatal(err)
	}
	if got != -60 {
		t.Fatalf("12*-5 = %d", got)
	}
}

func TestScalarEncoderRoundTrip(t *testing.T) {
	params := testParams(t, 65537)
	e, err := NewScalarEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, 1, -1, 32768, -32768, 100, -200} {
		pt := e.Encode(v)
		if got := e.Decode(pt); got != v {
			t.Fatalf("roundtrip %d -> %d", v, got)
		}
	}
}

func TestScalarEncoderModularWrap(t *testing.T) {
	params := testParams(t, 257)
	e, _ := NewScalarEncoder(params)
	// 300 mod 257 = 43
	if got := e.EncodeValue(300); got != 43 {
		t.Fatalf("EncodeValue(300) = %d", got)
	}
	if got := e.EncodeValue(-1); got != 256 {
		t.Fatalf("EncodeValue(-1) = %d", got)
	}
	if got := e.DecodeValue(256); got != -1 {
		t.Fatalf("DecodeValue(256) = %d", got)
	}
}

func TestScalarEncoderHomomorphic(t *testing.T) {
	params := testParams(t, 65537)
	cc := newCryptoContext(t, params, 9)
	e, _ := NewScalarEncoder(params)
	cta, _ := cc.enc.Encrypt(e.Encode(-40))
	pb := e.Encode(25)
	prod, err := cc.eval.MulPlain(cta, pb)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := cc.dec.Decrypt(prod)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Decode(dt); got != -1000 {
		t.Fatalf("-40*25 = %d", got)
	}
}

func TestFractionalEncoderRoundTrip(t *testing.T) {
	params := testParams(t, 65537)
	e, err := NewFractionalEncoder(params, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1, -1, 0.5, -0.5, 3.141592, -2.71828, 511.25, -511.75} {
		pt, err := e.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%g): %v", v, err)
		}
		got, err := e.Decode(pt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-v) > 1e-5 {
			t.Fatalf("roundtrip %g -> %g", v, got)
		}
	}
}

func TestFractionalEncoderRejectsBadInput(t *testing.T) {
	params := testParams(t, 65537)
	e, _ := NewFractionalEncoder(params, 10, 20)
	for _, v := range []float64{math.NaN(), math.Inf(1), 2000} {
		if _, err := e.Encode(v); err == nil {
			t.Fatalf("Encode(%g) should fail", v)
		}
	}
	if _, err := NewFractionalEncoder(params, 900, 100); err != nil {
		t.Fatal("900+100 coefficients fit in 1024")
	}
	if _, err := NewFractionalEncoder(params, 1020, 100); err == nil {
		t.Fatal("overflowing split should fail")
	}
}

func TestFractionalEncoderHomomorphicMul(t *testing.T) {
	params := testParams(t, 65537)
	cc := newCryptoContext(t, params, 10)
	e, _ := NewFractionalEncoder(params, 8, 16)
	pa, _ := e.Encode(1.5)
	pb, _ := e.Encode(-2.25)
	cta, _ := cc.enc.Encrypt(pa)
	prod, err := cc.eval.MulPlain(cta, pb)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := cc.dec.Decrypt(prod)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Decode(dt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-3.375)) > 1e-4 {
		t.Fatalf("1.5 * -2.25 = %g", got)
	}
}

func TestBatchEncoderRoundTrip(t *testing.T) {
	params := testParams(t, 40961) // 40961 ≡ 1 mod 2048, prime
	e, err := NewBatchEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	if e.SlotCount() != 1024 {
		t.Fatalf("SlotCount = %d", e.SlotCount())
	}
	values := make([]int64, e.SlotCount())
	for i := range values {
		values[i] = int64(i) - 512
	}
	pt, err := e.Encode(values)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Decode(pt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], values[i])
		}
	}
}

func TestBatchEncoderSIMDOperations(t *testing.T) {
	// Multiplication with a batching modulus t=40961 needs the n=2048
	// parameter tier for noise headroom (40961 ≡ 1 mod 4096 as well).
	params := testParamsN(t, 2048, 56, 40961)
	cc := newCryptoContext(t, params, 11)
	e, _ := NewBatchEncoder(params)
	a := []int64{1, 2, 3, 4, 5, -6, 7, 0}
	b := []int64{10, 20, 30, 40, 50, 60, -70, 5}
	pa, _ := e.Encode(a)
	pb, _ := e.Encode(b)
	cta, _ := cc.enc.Encrypt(pa)

	t.Run("slotwise add plain", func(t *testing.T) {
		sum, err := cc.eval.AddPlain(cta, pb)
		if err != nil {
			t.Fatal(err)
		}
		dt, _ := cc.dec.Decrypt(sum)
		got, err := e.Decode(dt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if got[i] != a[i]+b[i] {
				t.Fatalf("slot %d: %d + %d = %d", i, a[i], b[i], got[i])
			}
		}
	})

	t.Run("slotwise mul plain", func(t *testing.T) {
		prod, err := cc.eval.MulPlain(cta, pb)
		if err != nil {
			t.Fatal(err)
		}
		dt, _ := cc.dec.Decrypt(prod)
		got, err := e.Decode(dt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if got[i] != a[i]*b[i] {
				t.Fatalf("slot %d: %d * %d = %d", i, a[i], b[i], got[i])
			}
		}
	})

	t.Run("slotwise ct mul", func(t *testing.T) {
		ctb, _ := cc.enc.Encrypt(pb)
		prod, err := cc.eval.Mul(cta, ctb)
		if err != nil {
			t.Fatal(err)
		}
		dt, _ := cc.dec.Decrypt(prod)
		got, err := e.Decode(dt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if got[i] != a[i]*b[i] {
				t.Fatalf("slot %d: %d * %d = %d", i, a[i], b[i], got[i])
			}
		}
	})
}

func TestBatchEncoderRejectsUnsupportedModulus(t *testing.T) {
	params := testParams(t, 257) // 257 mod 2048 != 1
	if _, err := NewBatchEncoder(params); err == nil {
		t.Fatal("non-batching modulus accepted")
	}
}

func TestBatchEncoderRejectsTooManyValues(t *testing.T) {
	params := testParams(t, 40961)
	e, _ := NewBatchEncoder(params)
	if _, err := e.Encode(make([]int64, params.N+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestBatchingPlaintextModulus(t *testing.T) {
	tm, err := BatchingPlaintextModulus(1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tm%2048 != 1 || !ring.IsPrime(tm) {
		t.Fatalf("bad batching modulus %d", tm)
	}
}
