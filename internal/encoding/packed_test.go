package encoding

import (
	"testing"

	"hesgx/internal/he"
	"hesgx/internal/ring"
)

func TestPackedEncoderRoundTrip(t *testing.T) {
	params := testParams(t, 40961)
	e, err := NewPackedEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	if e.RowLen() != params.N/2 {
		t.Fatalf("RowLen = %d, want %d", e.RowLen(), params.N/2)
	}
	values := make([]int64, e.SlotCount())
	for i := range values {
		values[i] = int64(i) - 512
	}
	pt, err := e.Encode(values)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Decode(pt)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if got[i] != v {
			t.Fatalf("slot %d: got %d, want %d", i, got[i], v)
		}
	}
}

func TestPackedEncoderRejectsUnsupportedModulus(t *testing.T) {
	params := testParams(t, 257)
	if _, err := NewPackedEncoder(params); err == nil {
		t.Fatal("non-batching modulus accepted")
	}
}

// The layout contract: applying φ_(5^r) to the plaintext polynomial rotates
// each of the two rows left by r slots, independently, for every r. This is
// the property Evaluator.Rotate relies on.
func TestPackedEncoderRotationLayout(t *testing.T) {
	params := testParams(t, 40961)
	e, err := NewPackedEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	n := params.N
	row := e.RowLen()
	slotRing, err := ring.NewRing(n, params.T)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, n)
	for i := range values {
		values[i] = int64((i*37+11)%2000) - 1000
	}
	pt, err := e.Encode(values)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 1, 2, 7, row - 1, -1, -5} {
		g := ring.GaloisElement(r, n)
		rot := pt.Copy()
		slotRing.Automorphism(pt.Poly, g, rot.Poly)
		got, err := e.Decode(rot)
		if err != nil {
			t.Fatal(err)
		}
		rr := ((r % row) + row) % row
		for i := range got {
			rowIdx, j := i/row, i%row
			want := values[rowIdx*row+(j+rr)%row]
			if got[i] != want {
				t.Fatalf("r=%d slot (%d,%d): got %d, want %d", r, rowIdx, j, got[i], want)
			}
		}
	}
}

// End-to-end rotation property over a planned rotation set:
// Decode(Decrypt(Rotate(Encrypt(Encode(v)), r))) must equal v with each row
// rotated left by r, for random r drawn from the set the keys were planned
// for — the slot-level contract the packed conv/pool kernels rely on.
func TestRotateCiphertextRotatesSlots(t *testing.T) {
	params := testParamsN(t, 2048, 56, 40961)
	cc := newCryptoContext(t, params, 21)
	e, err := NewPackedEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	// newCryptoContext derives its keys from seed 21; regenerate the same
	// secret so the rotation keys match the encryptor's key pair.
	kg, err := he.NewKeyGenerator(params, ring.NewSeededSource(21))
	if err != nil {
		t.Fatal(err)
	}
	sk := kg.GenSecretKey()
	planned := []int{1, 28, 29, 56, 112, -1}
	gk, err := kg.GenGaloisKeys(sk, planned, 0)
	if err != nil {
		t.Fatal(err)
	}
	row := e.RowLen()
	values := make([]int64, e.SlotCount())
	for i := range values {
		values[i] = int64((i*13+7)%4001) - 2000
	}
	pt, err := e.Encode(values)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := cc.enc.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	src := ring.NewSeededSource(23)
	for trial := 0; trial < 4; trial++ {
		r := planned[src.Uint64()%uint64(len(planned))]
		rot, err := cc.eval.Rotate(ct, r, gk)
		if err != nil {
			t.Fatalf("Rotate(%d): %v", r, err)
		}
		dec, err := cc.dec.Decrypt(rot)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Decode(dec)
		if err != nil {
			t.Fatal(err)
		}
		rr := ((r % row) + row) % row
		for i := range got {
			rowIdx, j := i/row, i%row
			want := values[rowIdx*row+(j+rr)%row]
			if got[i] != want {
				t.Fatalf("r=%d slot (%d,%d): got %d, want %d", r, rowIdx, j, got[i], want)
			}
		}
	}
}
