package wire

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/report"
	"hesgx/internal/trace"
)

// Client is the smart-device side of the protocol: it attests the edge
// server's enclave, receives HE keys over the attested channel, and
// submits encrypted inference queries. Uploads default to the v2 seeded
// format (c0 + 32-byte expansion seed per pixel, bit-packed coefficients),
// roughly half the bytes of the legacy encoding; the WithLegacyFormat dial
// option forces the v1 format for compatibility testing and ablation.
type Client struct {
	conn     net.Conn
	inner    *core.Client
	verifier *attest.Service
	legacy   bool
	// readBuf is reused across Infer replies so steady-state querying pays
	// one reply-sized allocation per connection, not per request.
	readBuf []byte
	// tracer, when set (WithClientTracer), makes every inference a
	// distributed trace: the client mints the trace ID, wraps the request
	// in a MsgTraced envelope, and grafts the server's span subtree from
	// the reply into one end-to-end trace.
	tracer *trace.Tracer

	mu         sync.Mutex
	lastTrace  *trace.Trace
	lastReport *report.FlightReport
}

// ClientOption customizes a Client at Dial time.
type ClientOption func(*Client)

// WithLegacyFormat forces v1 fixed-width public-key uploads instead of the
// seeded v2 default — the compatibility path a pre-v2 client exercises.
func WithLegacyFormat(on bool) ClientOption {
	return func(c *Client) { c.legacy = on }
}

// WithClientTracer turns on distributed tracing: the client mints a trace
// ID per inference, carries it to the server in a MsgTraced envelope, and
// assembles the returned server span subtree with its own encrypt/upload/
// wait/decrypt spans into one end-to-end trace, readable via LastTrace and
// exportable as a single Chrome trace. Pass nil to get a fresh
// default-sized client tracer. Servers predating the envelope answer
// traced requests with a bad-request error; clients that must talk to such
// servers should construct without a tracer.
func WithClientTracer(tr *trace.Tracer) ClientOption {
	return func(c *Client) {
		if tr == nil {
			tr = trace.NewClientTracer(trace.DefaultBufferSize)
		}
		c.tracer = tr
	}
}

// Tracer returns the client's tracer (nil when tracing is off) — its ring
// holds the last assembled end-to-end traces.
func (c *Client) Tracer() *trace.Tracer { return c.tracer }

// LastTrace returns the most recent inference's assembled end-to-end trace
// (nil when tracing is off or nothing ran yet). The trace is finished and
// safe to export.
func (c *Client) LastTrace() *trace.Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastTrace
}

// LastReport returns the server flight report carried back by the most
// recent traced inference (nil when tracing is off, the server has tracing
// disabled, or nothing ran yet).
func (c *Client) LastReport() *report.FlightReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastReport
}

// retire finishes a client trace into the tracer ring and publishes it as
// the last trace. Nil-safe.
func (c *Client) retire(tr *trace.Trace) {
	if tr == nil {
		return
	}
	c.tracer.Finish(tr)
	c.mu.Lock()
	c.lastTrace = tr
	c.mu.Unlock()
}

// absorbTracedBlob grafts the server's span subtree under the client
// trace's root span and stores the flight report. A malformed or oversized
// blob is dropped: observability must never fail a request that already
// succeeded.
func (c *Client) absorbTracedBlob(tr *trace.Trace, blob []byte) {
	if tr == nil || len(blob) == 0 {
		return
	}
	var tb tracedBlob
	if err := json.Unmarshal(blob, &tb); err != nil {
		return
	}
	if tb.Trace != nil && len(tb.Trace.Spans) <= trace.MaxSnapshotSpans {
		tr.Graft(tb.Trace, trace.RootSpanID)
	}
	if tb.Report != nil {
		c.mu.Lock()
		c.lastReport = tb.Report
		c.mu.Unlock()
	}
}

// Dial connects to an edge server. The verifier must already trust the
// server platform's attestation key and the expected enclave measurement;
// FetchTrustBundle can bootstrap that for demos.
func Dial(addr string, verifier *attest.Service, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	inner, err := core.NewClient()
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	c := &Client{conn: conn, inner: inner, verifier: verifier}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// FetchTrustBundle asks the server for its measurement and platform key
// and registers them with the verifier. This is trust-on-first-use and
// belongs in demos only; production deployments pin these values.
func (c *Client) FetchTrustBundle() error {
	if err := WriteFrame(c.conn, MsgTrustRequest, nil); err != nil {
		return err
	}
	t, payload, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	if t != MsgTrustBundle {
		return fmt.Errorf("wire: expected trust bundle, got type %d", t)
	}
	if len(payload) < 33 {
		return fmt.Errorf("wire: trust bundle too short")
	}
	var m [32]byte
	copy(m[:], payload[:32])
	pub, err := attest.UnmarshalPublicKey(payload[32:])
	if err != nil {
		return err
	}
	c.verifier.TrustMeasurement(m)
	c.verifier.RegisterPlatform(pub)
	return nil
}

// Attest runs the remote-attestation key exchange: challenge nonce out,
// quote back, verification, key installation.
func (c *Client) Attest() error {
	nonce, err := attest.NewNonce()
	if err != nil {
		return err
	}
	payload := append(nonce[:], c.inner.ECDHPublicKey()...)
	if err := WriteFrame(c.conn, MsgAttestRequest, payload); err != nil {
		return err
	}
	t, reply, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	if t == MsgError {
		return DecodeError(reply)
	}
	if t != MsgAttestReply {
		return fmt.Errorf("wire: expected attest reply, got type %d", t)
	}
	quote, err := attest.UnmarshalQuote(reply)
	if err != nil {
		return err
	}
	return c.inner.CompleteKeyExchange(quote, nonce, c.verifier)
}

// Ready reports whether attestation completed and keys are installed.
func (c *Client) Ready() bool { return c.inner.Ready() }

// Params returns the HE parameters received during attestation.
func (c *Client) Params() he.Parameters { return c.inner.Params }

// UploadGaloisKeys generates rotation key-switching keys for the given
// slot-rotation steps under the client's secret key and installs them on
// the server for slot-packed inference (InferPacked). baseBits 0 selects
// the default decomposition. Servers whose engine has no packed plan
// answer with a bad-request *ServerError.
func (c *Client) UploadGaloisKeys(steps []int, baseBits int) error {
	if !c.Ready() {
		return fmt.Errorf("wire: attest before uploading keys")
	}
	gk, err := c.inner.GenerateGaloisKeys(steps, baseBits)
	if err != nil {
		return err
	}
	payload, err := he.MarshalGaloisKeys(gk)
	if err != nil {
		return err
	}
	if err := WriteFrame(c.conn, MsgGaloisKeys, payload); err != nil {
		return err
	}
	t, reply, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	if t == MsgError {
		return DecodeError(reply)
	}
	if t != MsgGaloisKeysAck {
		return fmt.Errorf("wire: expected galois keys ack, got type %d", t)
	}
	return nil
}

// InferPacked slot-packs the image into one ciphertext per channel
// (Client.EncryptImagePacked's layout: pixel (y, x) at slot y·W + x),
// submits it, and returns decrypted logits. The server must run an engine
// planned with packed convolution; uploading Galois keys first
// (UploadGaloisKeys) saves it an enclave key-generation round trip. The
// v1 wire format cannot carry the slot-packed layout, so a legacy-format
// client cannot use this path.
func (c *Client) InferPacked(img *nn.Tensor, pixelScale uint64) ([]float64, error) {
	if !c.Ready() {
		return nil, fmt.Errorf("wire: attest before inferring")
	}
	if c.legacy {
		return nil, fmt.Errorf("wire: slot-packed images need the v2 wire format")
	}
	tr := c.tracer.Start("client.infer_packed")
	defer c.retire(tr)
	ctx := trace.With(context.Background(), tr)
	reqType, reqHdr := c.requestFraming(tr, MsgInferRequest)

	_, espan := trace.StartSpan(ctx, "client.encrypt", "client")
	ci, err := c.inner.EncryptImagePacked(img, pixelScale)
	if err != nil {
		espan.End()
		return nil, err
	}
	espan.Arg("cts", float64(len(ci.CTs))).End()

	_, uspan := trace.StartSpan(ctx, "client.upload", "client")
	size := len(reqHdr) + core.CipherImagePackedSize(ci)
	err = WriteFrameFunc(c.conn, reqType, size, func(w io.Writer) error {
		if len(reqHdr) > 0 {
			if _, werr := w.Write(reqHdr); werr != nil {
				return werr
			}
		}
		return core.WriteCipherImagePacked(w, ci)
	})
	uspan.Arg("bytes", float64(size)).End()
	if err != nil {
		var partial *PartialFrameError
		if errors.As(err, &partial) {
			_ = c.conn.Close()
		}
		return nil, err
	}

	_, wspan := trace.StartSpan(ctx, "client.wait", "client")
	t, reply, err := ReadFrameReuse(c.conn, c.readBuf)
	wspan.End()
	if err != nil {
		return nil, err
	}
	if cap(reply) > cap(c.readBuf) {
		c.readBuf = reply[:cap(reply)]
	}
	t, reply, err = c.openReply(tr, t, reply)
	if err != nil {
		return nil, err
	}
	if t == MsgError {
		return nil, DecodeError(reply)
	}
	if t != MsgInferReply {
		return nil, fmt.Errorf("wire: expected infer reply, got type %d", t)
	}
	if len(reply) < 8 {
		return nil, fmt.Errorf("wire: infer reply too short")
	}
	outScale := math.Float64frombits(binary.LittleEndian.Uint64(reply[:8]))
	if outScale <= 0 || math.IsNaN(outScale) || math.IsInf(outScale, 0) {
		return nil, fmt.Errorf("wire: invalid output scale %g", outScale)
	}
	_, dspan := trace.StartSpan(ctx, "client.decrypt", "client")
	defer dspan.End()
	logits, err := core.UnmarshalCiphertextBatchAny(reply[8:], c.inner.Params)
	if err != nil {
		return nil, err
	}
	return c.inner.DecryptLogits(logits, outScale)
}

// Infer encrypts the image, submits it, and returns decrypted logits
// (float, rescaled by the server-reported output scale). The default upload
// path encrypts under the secret key in seed-compressed form and streams
// the request straight to the socket; the server answers in the same wire
// version it received.
func (c *Client) Infer(img *nn.Tensor, pixelScale uint64) ([]float64, error) {
	if !c.Ready() {
		return nil, fmt.Errorf("wire: attest before inferring")
	}
	// With a tracer every call is a distributed trace: spans for the
	// client-side stages, the trace ID carried in a MsgTraced envelope, the
	// server subtree grafted back from the reply. Without one, tr is nil
	// and every span/envelope step no-ops into exactly the untraced wire
	// exchange.
	tr := c.tracer.Start("client.infer")
	defer c.retire(tr)
	ctx := trace.With(context.Background(), tr)
	reqType, reqHdr := c.requestFraming(tr, MsgInferRequest)

	_, espan := trace.StartSpan(ctx, "client.encrypt", "client")
	var upload func() (int, error)
	if c.legacy {
		ci, err := c.inner.EncryptImages([]*nn.Tensor{img}, pixelScale)
		if err != nil {
			espan.End()
			return nil, err
		}
		payload, err := core.MarshalCipherImage(ci)
		if err != nil {
			espan.End()
			return nil, err
		}
		buf := append(reqHdr, payload...)
		upload = func() (int, error) { return len(buf), WriteFrame(c.conn, reqType, buf) }
	} else {
		si, err := c.inner.EncryptImageSeeded(img, pixelScale)
		if err != nil {
			espan.End()
			return nil, err
		}
		size := len(reqHdr) + core.SeededCipherImageSize(si)
		upload = func() (int, error) {
			return size, WriteFrameFunc(c.conn, reqType, size, func(w io.Writer) error {
				if len(reqHdr) > 0 {
					if _, werr := w.Write(reqHdr); werr != nil {
						return werr
					}
				}
				return core.WriteSeededCipherImage(w, si)
			})
		}
	}
	espan.End()

	_, uspan := trace.StartSpan(ctx, "client.upload", "client")
	n, err := upload()
	uspan.Arg("bytes", float64(n)).End()
	if err != nil {
		// An upload that died mid-stream desynchronized the framing; no
		// further request can be framed on this connection.
		var partial *PartialFrameError
		if errors.As(err, &partial) {
			_ = c.conn.Close()
		}
		return nil, err
	}

	_, wspan := trace.StartSpan(ctx, "client.wait", "client")
	t, reply, err := ReadFrameReuse(c.conn, c.readBuf)
	wspan.End()
	if err != nil {
		return nil, err
	}
	if cap(reply) > cap(c.readBuf) {
		c.readBuf = reply[:cap(reply)]
	}
	t, reply, err = c.openReply(tr, t, reply)
	if err != nil {
		return nil, err
	}
	if t == MsgError {
		// Surface the typed failure: callers branch on *ServerError (e.g.
		// back off when Code is CodeOverloaded) via errors.As.
		return nil, DecodeError(reply)
	}
	if t != MsgInferReply {
		return nil, fmt.Errorf("wire: expected infer reply, got type %d", t)
	}
	if len(reply) < 8 {
		return nil, fmt.Errorf("wire: infer reply too short")
	}
	outScale := math.Float64frombits(binary.LittleEndian.Uint64(reply[:8]))
	if outScale <= 0 || math.IsNaN(outScale) || math.IsInf(outScale, 0) {
		return nil, fmt.Errorf("wire: invalid output scale %g", outScale)
	}
	_, dspan := trace.StartSpan(ctx, "client.decrypt", "client")
	defer dspan.End()
	logits, err := core.UnmarshalCiphertextBatchAny(reply[8:], c.inner.Params)
	if err != nil {
		return nil, err
	}
	return c.inner.DecryptLogits(logits, outScale)
}

// requestFraming resolves a request's frame type and envelope header: the
// traced envelope when tr is live, the plain inner type otherwise.
func (c *Client) requestFraming(tr *trace.Trace, inner MsgType) (MsgType, []byte) {
	if tr == nil {
		return inner, nil
	}
	return MsgTraced, AppendTracedHeader(nil, inner, tr.ID, TracedFlagReturnSpans)
}

// openReply unwraps a MsgTracedReply envelope: the blob is absorbed into
// the client trace and the inner type/payload are returned. Plain frames
// (including MsgError — servers never envelope errors) pass through
// untouched.
func (c *Client) openReply(tr *trace.Trace, t MsgType, reply []byte) (MsgType, []byte, error) {
	if t != MsgTracedReply {
		return t, reply, nil
	}
	inner, blob, rest, err := ParseTracedReplyHeader(reply)
	if err != nil {
		return 0, nil, err
	}
	c.absorbTracedBlob(tr, blob)
	return inner, rest, nil
}

// InferBatch slot-packs a batch of same-shape images into shared
// ciphertexts (one ciphertext per pixel position, image k in CRT slot k),
// submits them as one lane-batched request, and returns per-image logits:
// result[image][class], rescaled by the server-reported output scale. The
// whole batch costs one engine pass server-side. Requires a
// batching-capable plaintext modulus (prime t ≡ 1 mod 2n); a batch of one
// degrades to a scalar Infer round trip.
func (c *Client) InferBatch(imgs []*nn.Tensor, pixelScale uint64) ([][]float64, error) {
	if !c.Ready() {
		return nil, fmt.Errorf("wire: attest before inferring")
	}
	if len(imgs) == 0 {
		return nil, fmt.Errorf("wire: empty image batch")
	}
	if len(imgs) == 1 {
		logits, err := c.Infer(imgs[0], pixelScale)
		if err != nil {
			return nil, err
		}
		return [][]float64{logits}, nil
	}
	tr := c.tracer.Start("client.infer_batch")
	defer c.retire(tr)
	ctx := trace.With(context.Background(), tr)
	reqType, reqHdr := c.requestFraming(tr, MsgInferBatchRequest)

	_, espan := trace.StartSpan(ctx, "client.encrypt", "client")
	ci, err := c.inner.EncryptImages(imgs, pixelScale)
	if err != nil {
		espan.End()
		return nil, err
	}
	lanes := ci.Lanes
	var laneHdr [4]byte
	binary.LittleEndian.PutUint32(laneHdr[:], uint32(lanes))
	var upload func() (int, error)
	if c.legacy {
		payload, err := core.MarshalCipherImage(ci)
		if err != nil {
			espan.End()
			return nil, err
		}
		buf := make([]byte, 0, len(reqHdr)+4+len(payload))
		buf = append(buf, reqHdr...)
		buf = append(buf, laneHdr[:]...)
		buf = append(buf, payload...)
		upload = func() (int, error) { return len(buf), WriteFrame(c.conn, reqType, buf) }
	} else {
		size := len(reqHdr) + 4 + core.CipherImagePackedSize(ci)
		upload = func() (int, error) {
			return size, WriteFrameFunc(c.conn, reqType, size, func(w io.Writer) error {
				if len(reqHdr) > 0 {
					if _, werr := w.Write(reqHdr); werr != nil {
						return werr
					}
				}
				if _, werr := w.Write(laneHdr[:]); werr != nil {
					return werr
				}
				return core.WriteCipherImagePacked(w, ci)
			})
		}
	}
	espan.Arg("lanes", float64(lanes)).End()

	_, uspan := trace.StartSpan(ctx, "client.upload", "client")
	n, err := upload()
	uspan.Arg("bytes", float64(n)).End()
	if err != nil {
		// An upload that died mid-stream desynchronized the framing; no
		// further request can be framed on this connection.
		var partial *PartialFrameError
		if errors.As(err, &partial) {
			_ = c.conn.Close()
		}
		return nil, err
	}

	_, wspan := trace.StartSpan(ctx, "client.wait", "client")
	t, reply, err := ReadFrameReuse(c.conn, c.readBuf)
	wspan.End()
	if err != nil {
		return nil, err
	}
	if cap(reply) > cap(c.readBuf) {
		c.readBuf = reply[:cap(reply)]
	}
	t, reply, err = c.openReply(tr, t, reply)
	if err != nil {
		return nil, err
	}
	if t == MsgError {
		return nil, DecodeError(reply)
	}
	if t != MsgInferBatchReply {
		return nil, fmt.Errorf("wire: expected infer batch reply, got type %d", t)
	}
	if len(reply) < 12 {
		return nil, fmt.Errorf("wire: infer batch reply too short")
	}
	gotLanes := int(binary.LittleEndian.Uint32(reply[:4]))
	if gotLanes != lanes {
		return nil, fmt.Errorf("wire: reply carries %d lanes, sent %d", gotLanes, lanes)
	}
	outScale := math.Float64frombits(binary.LittleEndian.Uint64(reply[4:12]))
	if outScale <= 0 || math.IsNaN(outScale) || math.IsInf(outScale, 0) {
		return nil, fmt.Errorf("wire: invalid output scale %g", outScale)
	}
	_, dspan := trace.StartSpan(ctx, "client.decrypt", "client")
	defer dspan.End()
	cts, err := core.UnmarshalCiphertextBatchAny(reply[12:], c.inner.Params)
	if err != nil {
		return nil, err
	}
	vals, err := c.inner.DecryptValueBatch(cts, lanes)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, lanes)
	for i, row := range vals {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			out[i][j] = float64(v) / outScale
		}
	}
	return out, nil
}

// Predict returns the argmax class for an image.
func (c *Client) Predict(img *nn.Tensor, pixelScale uint64) (int, error) {
	logits, err := c.Infer(img, pixelScale)
	if err != nil {
		return 0, err
	}
	best, bestV := 0, math.Inf(-1)
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, nil
}

// appendFloat64 appends the IEEE-754 bits of f in little-endian order.
func appendFloat64(b []byte, f float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	return append(b, tmp[:]...)
}
