package wire

import (
	"strings"
	"sync"
	"testing"

	"hesgx/internal/nn"
	"hesgx/internal/trace"
)

// spanIndex folds a trace's spans into name → span with parent-chain
// helpers for tree assertions.
type spanIndex map[string]trace.Span

func indexSpans(t *testing.T, tr *trace.Trace) spanIndex {
	t.Helper()
	if tr == nil {
		t.Fatal("no trace assembled")
	}
	idx := spanIndex{}
	for _, s := range tr.Spans() {
		idx[s.Name] = s
	}
	return idx
}

// chainsToRoot walks parent links from the named span to the trace root.
func (idx spanIndex) chainsToRoot(t *testing.T, name string) {
	t.Helper()
	s, ok := idx[name]
	if !ok {
		t.Fatalf("span %q missing; have %v", name, idx.names())
	}
	byID := map[trace.SpanID]trace.Span{}
	for _, sp := range idx {
		byID[sp.ID] = sp
	}
	for hops := 0; s.Parent != 0; hops++ {
		if hops > len(idx) {
			t.Fatalf("span %q: parent cycle", name)
		}
		parent, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %q: dangling parent %d", name, s.Parent)
		}
		s = parent
	}
	if s.ID != trace.RootSpanID {
		t.Fatalf("span %q does not chain to the root span", name)
	}
}

func (idx spanIndex) names() []string {
	out := make([]string, 0, len(idx))
	for n := range idx {
		out = append(out, n)
	}
	return out
}

// TestEndToEndTrace is the PR's acceptance test: two concurrent traced
// clients over real TCP must each assemble ONE trace tree under their own
// client-minted ID containing both client-side spans (encrypt, upload,
// wait, decrypt) and server-side spans (queue, lane, engine layers), and
// the server's flight recorder must retain the same client-minted IDs.
func TestEndToEndTrace(t *testing.T) {
	addr, _, service, shutdown := testStackLanes(t)
	defer shutdown()

	const clients = 2
	traces := make([]*trace.Trace, clients)
	ids := make([]uint64, clients)
	var ready, done sync.WaitGroup
	start := make(chan struct{})
	ready.Add(clients)
	done.Add(clients)
	for i := 0; i < clients; i++ {
		client := attestedClient(t, addr, WithClientTracer(nil))
		go func(i int, client *Client) {
			defer done.Done()
			ready.Done()
			<-start // attest first, infer together: the lane packs both
			img := testImage(uint64(10 + i))
			if _, err := client.Infer(img, 63); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			traces[i] = client.LastTrace()
			if rep := client.LastReport(); rep == nil {
				t.Errorf("client %d: no flight report returned", i)
			} else if rep.Lanes < 1 {
				t.Errorf("client %d: report lanes %d", i, rep.Lanes)
			}
		}(i, client)
	}
	ready.Wait()
	close(start)
	done.Wait()

	for i, tr := range traces {
		idx := indexSpans(t, tr)
		ids[i] = tr.ID
		// Client-side spans.
		for _, name := range []string{"client.encrypt", "client.upload", "client.wait", "client.decrypt"} {
			idx.chainsToRoot(t, name)
			if idx[name].Cat != "client" {
				t.Errorf("span %s cat %q, want client", name, idx[name].Cat)
			}
		}
		// Server-side spans, grafted under the same root.
		for _, name := range []string{"queue.wait", "infer.run"} {
			idx.chainsToRoot(t, name)
		}
		var layers int
		for name, s := range idx {
			if strings.HasPrefix(name, "layer.") && s.Cat == "engine" {
				layers++
				idx.chainsToRoot(t, name)
			}
		}
		if layers < 5 {
			t.Errorf("trace %d: %d engine layer spans, want the full model (5)", i, layers)
		}
	}
	if ids[0] == ids[1] {
		t.Fatalf("both clients minted trace ID %d", ids[0])
	}

	// The server's flight recorder retained the same client-minted IDs.
	retained := map[uint64]bool{}
	for _, tr := range service.Tracer.Last(0) {
		retained[tr.ID] = true
	}
	for i, id := range ids {
		if !retained[id] {
			t.Errorf("server flight recorder missing client %d's trace ID %d", i, id)
		}
	}
}

// TestLegacyClientStillTraced: an untraced (pre-PR7) client is served
// exactly as before, while the server still records a server-minted trace
// for its request.
func TestLegacyClientStillTraced(t *testing.T) {
	addr, _, service, shutdown := testStackLanes(t)
	defer shutdown()
	client := attestedClient(t, addr) // no WithClientTracer: plain frames

	out, err := client.Infer(testImage(5), 63)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d logits", len(out))
	}
	if client.LastTrace() != nil {
		t.Fatal("untraced client assembled a trace")
	}
	last := service.Tracer.Last(1)
	if len(last) != 1 {
		t.Fatal("server recorded no trace for the legacy request")
	}
	idx := indexSpans(t, last[0])
	if _, ok := idx["queue.wait"]; !ok {
		t.Errorf("server-side trace missing queue.wait: %v", idx.names())
	}
}

// TestTracedBatchRoundTrip: the traced envelope composes with client-side
// lane batches and returns a joined trace for the batch.
func TestTracedBatchRoundTrip(t *testing.T) {
	addr, _, _, shutdown := testStackLanes(t)
	defer shutdown()
	client := attestedClient(t, addr, WithClientTracer(nil))

	imgs := []*nn.Tensor{testImage(21), testImage(22), testImage(23)}
	rows, err := client.InferBatch(imgs, 63)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(imgs) {
		t.Fatalf("got %d rows", len(rows))
	}
	idx := indexSpans(t, client.LastTrace())
	for _, name := range []string{"client.encrypt", "client.upload", "client.wait", "client.decrypt", "infer.run"} {
		idx.chainsToRoot(t, name)
	}
	if rep := client.LastReport(); rep == nil || rep.Lanes != len(imgs) {
		t.Fatalf("batch flight report %+v, want lanes %d", rep, len(imgs))
	}
}

// TestTracedHeaderRoundTrip exercises the envelope codec edges.
func TestTracedHeaderRoundTrip(t *testing.T) {
	hdr := AppendTracedHeader(nil, MsgInferRequest, 0xABCD, TracedFlagReturnSpans)
	hdr = append(hdr, 1, 2, 3)
	inner, id, flags, rest, err := ParseTracedHeader(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if inner != MsgInferRequest || id != 0xABCD || flags != TracedFlagReturnSpans || len(rest) != 3 {
		t.Fatalf("round trip: inner=%d id=%#x flags=%d rest=%d", inner, id, flags, len(rest))
	}
	if _, _, _, _, err := ParseTracedHeader(hdr[:5]); err == nil {
		t.Error("short header accepted")
	}
	if _, _, _, _, err := ParseTracedHeader(AppendTracedHeader(nil, MsgInferRequest, 0, 0)); err == nil {
		t.Error("zero trace ID accepted")
	}

	blob := []byte(`{"trace":null}`)
	reply := append([]byte{byte(MsgInferReply), 14, 0, 0, 0}, blob...)
	reply = append(reply, 9, 9)
	rinner, rblob, rrest, err := ParseTracedReplyHeader(reply)
	if err != nil {
		t.Fatal(err)
	}
	if rinner != MsgInferReply || string(rblob) != string(blob) || len(rrest) != 2 {
		t.Fatalf("reply round trip: %d %q %d", rinner, rblob, len(rrest))
	}
	if _, _, _, err := ParseTracedReplyHeader([]byte{byte(MsgInferReply), 200, 0, 0, 0, 1}); err == nil {
		t.Error("blob length past payload accepted")
	}
}
