package wire

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"math"
	mrand "math/rand/v2"
	"net"
	"testing"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
	"hesgx/internal/sgx"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, MsgInferRequest, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgInferRequest || !bytes.Equal(got, payload) {
		t.Fatalf("frame roundtrip: type %d payload %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgTrustRequest, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgTrustRequest || len(got) != 0 {
		t.Fatal("empty payload roundtrip failed")
	}
}

func TestReadFrameRejectsHostileLength(t *testing.T) {
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF, 1}
	if _, _, err := ReadFrame(bytes.NewReader(buf)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader([]byte{5})); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// testStack spins up a full in-process edge server on a random port.
func testStack(t *testing.T) (addr string, svc *core.EnclaveService, model *nn.Network, shutdown func()) {
	t.Helper()
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		t.Fatal(err)
	}
	params, err := he.NewParameters(1024, q, 1<<20, he.DefaultDecompositionBase)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err = core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	r := mrand.New(mrand.NewPCG(3, 4))
	model = nn.NewNetwork(
		nn.NewConv2D(1, 2, 3, 1, r),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(2*3*3, 4, r),
	)
	engine, err := core.NewHybridEngine(svc, model, core.Config{
		PixelScale: 63, WeightScale: 16, ActScale: 256, Pool: core.PoolAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(svc, engine, slog.New(slog.NewTextHandler(testWriter{t}, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return ln.Addr().String(), svc, model, func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(bytes.TrimSpace(p)))
	return len(p), nil
}

func testImage(seed uint64) *nn.Tensor {
	r := mrand.New(mrand.NewPCG(seed, seed))
	img := nn.NewTensor(1, 8, 8)
	for i := range img.Data {
		img.Data[i] = r.Float64()
	}
	return img
}

func TestEndToEndAttestAndInfer(t *testing.T) {
	addr, svc, model, shutdown := testStack(t)
	defer shutdown()

	verifier := attest.NewService()
	client, err := Dial(addr, verifier)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.FetchTrustBundle(); err != nil {
		t.Fatal(err)
	}
	if err := client.Attest(); err != nil {
		t.Fatal(err)
	}
	if !client.Ready() {
		t.Fatal("client not ready after attest")
	}
	if !client.Params().Equal(svc.Params()) {
		t.Fatal("client params differ from enclave params")
	}

	img := testImage(5)
	logits, err := client.Infer(img, 63)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != 4 {
		t.Fatalf("got %d logits", len(logits))
	}
	// The remote prediction should match the local float model's argmax
	// (quantization is mild at these scales).
	floatOut, err := model.Forward(img)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := client.Predict(img, 63)
	if err != nil {
		t.Fatal(err)
	}
	if pred != floatOut.ArgMax() {
		t.Logf("warning: remote pred %d vs float %d (acceptable quantization drift)", pred, floatOut.ArgMax())
	}
	best, bestV := 0, math.Inf(-1)
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best != pred {
		t.Fatal("Predict disagrees with Infer argmax")
	}
}

func TestInferWithoutAttestFails(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	client, err := Dial(addr, attest.NewService())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Infer(testImage(1), 63); err == nil {
		t.Fatal("inference without keys accepted")
	}
}

func TestAttestFailsWithoutTrust(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	client, err := Dial(addr, attest.NewService()) // nothing trusted
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Attest(); err == nil {
		t.Fatal("attestation succeeded with empty trust store")
	}
}

func TestServerRejectsGarbageInferPayload(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgInferRequest, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("expected error frame, got %d (%q)", typ, payload)
	}
}

func TestServerRejectsUnknownMessage(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgType(99), nil); err != nil {
		t.Fatal(err)
	}
	typ, _, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("expected error frame, got %d", typ)
	}
}

func TestMultipleConcurrentClients(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	const clients = 3
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(seed uint64) {
			verifier := attest.NewService()
			client, err := Dial(addr, verifier)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			if err := client.FetchTrustBundle(); err != nil {
				errs <- err
				return
			}
			if err := client.Attest(); err != nil {
				errs <- err
				return
			}
			_, err = client.Infer(testImage(seed), 63)
			errs <- err
		}(uint64(i + 10))
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerValidationRejectsNil(t *testing.T) {
	if _, err := NewServer(nil, nil, nil); err == nil {
		t.Fatal("nil components accepted")
	}
}
