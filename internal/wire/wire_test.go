package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"math"
	mrand "math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
	"hesgx/internal/serve"
	"hesgx/internal/sgx"
	"hesgx/internal/stats"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, MsgInferRequest, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgInferRequest || !bytes.Equal(got, payload) {
		t.Fatalf("frame roundtrip: type %d payload %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgTrustRequest, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgTrustRequest || len(got) != 0 {
		t.Fatal("empty payload roundtrip failed")
	}
}

func TestReadFrameRejectsHostileLength(t *testing.T) {
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF, 1}
	if _, _, err := ReadFrame(bytes.NewReader(buf)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader([]byte{5})); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// testStack spins up a full in-process edge server on a random port.
func testStack(t *testing.T) (addr string, svc *core.EnclaveService, model *nn.Network, shutdown func()) {
	t.Helper()
	addr, st, shutdown := testStackPipeline(t, nil)
	return addr, st.svc, st.model, shutdown
}

// pipelineStack bundles the server-side components for tests that need
// direct access past the network boundary.
type pipelineStack struct {
	svc     *core.EnclaveService
	engine  *core.HybridEngine
	model   *nn.Network
	service *serve.Service
	metrics *stats.Registry
}

// testStackPipeline spins up an edge server. The inference path always
// runs through the serving stack (the engine-direct server path was
// retired with the legacy constructor); svcOpts refine the stack.
func testStackPipeline(t *testing.T, svcOpts []serve.Option) (addr string, st *pipelineStack, shutdown func()) {
	t.Helper()
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		t.Fatal(err)
	}
	params, err := he.NewParameters(1024, q, 1<<20, he.DefaultDecompositionBase)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	r := mrand.New(mrand.NewPCG(3, 4))
	model := nn.NewNetwork(
		nn.NewConv2D(1, 2, 3, 1, r),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(2*3*3, 4, r),
	)
	engine, err := core.NewEngine(svc, model, core.WithScales(63, 16, 256))
	if err != nil {
		t.Fatal(err)
	}
	st = &pipelineStack{svc: svc, engine: engine, model: model, metrics: stats.NewRegistry()}
	st.service = serve.NewService(engine, svc, append(svcOpts, serve.WithoutLanes())...)
	opts := []ServerOption{WithMetrics(st.metrics), WithService(st.service)}
	srv, err := NewServer(svc, engine, slog.New(slog.NewTextHandler(testWriter{t}, nil)), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return ln.Addr().String(), st, func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
		if st.service != nil {
			st.service.Close()
		}
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(bytes.TrimSpace(p)))
	return len(p), nil
}

func testImage(seed uint64) *nn.Tensor {
	r := mrand.New(mrand.NewPCG(seed, seed))
	img := nn.NewTensor(1, 8, 8)
	for i := range img.Data {
		img.Data[i] = r.Float64()
	}
	return img
}

func TestEndToEndAttestAndInfer(t *testing.T) {
	addr, svc, model, shutdown := testStack(t)
	defer shutdown()

	verifier := attest.NewService()
	client, err := Dial(addr, verifier)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.FetchTrustBundle(); err != nil {
		t.Fatal(err)
	}
	if err := client.Attest(); err != nil {
		t.Fatal(err)
	}
	if !client.Ready() {
		t.Fatal("client not ready after attest")
	}
	if !client.Params().Equal(svc.Params()) {
		t.Fatal("client params differ from enclave params")
	}

	img := testImage(5)
	logits, err := client.Infer(img, 63)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != 4 {
		t.Fatalf("got %d logits", len(logits))
	}
	// The remote prediction should match the local float model's argmax
	// (quantization is mild at these scales).
	floatOut, err := model.Forward(img)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := client.Predict(img, 63)
	if err != nil {
		t.Fatal(err)
	}
	if pred != floatOut.ArgMax() {
		t.Logf("warning: remote pred %d vs float %d (acceptable quantization drift)", pred, floatOut.ArgMax())
	}
	best, bestV := 0, math.Inf(-1)
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best != pred {
		t.Fatal("Predict disagrees with Infer argmax")
	}
}

func TestInferWithoutAttestFails(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	client, err := Dial(addr, attest.NewService())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Infer(testImage(1), 63); err == nil {
		t.Fatal("inference without keys accepted")
	}
}

func TestAttestFailsWithoutTrust(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	client, err := Dial(addr, attest.NewService()) // nothing trusted
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Attest(); err == nil {
		t.Fatal("attestation succeeded with empty trust store")
	}
}

func TestServerRejectsGarbageInferPayload(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgInferRequest, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("expected error frame, got %d (%q)", typ, payload)
	}
}

func TestServerRejectsUnknownMessage(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgType(99), nil); err != nil {
		t.Fatal(err)
	}
	typ, _, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("expected error frame, got %d", typ)
	}
}

func TestMultipleConcurrentClients(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	const clients = 3
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(seed uint64) {
			verifier := attest.NewService()
			client, err := Dial(addr, verifier)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			if err := client.FetchTrustBundle(); err != nil {
				errs <- err
				return
			}
			if err := client.Attest(); err != nil {
				errs <- err
				return
			}
			_, err = client.Infer(testImage(seed), 63)
			errs <- err
		}(uint64(i + 10))
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerValidationRejectsNil(t *testing.T) {
	if _, err := NewServer(nil, nil, nil); err == nil {
		t.Fatal("nil components accepted")
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	payload := EncodeError(CodeOverloaded, "queue full")
	se := DecodeError(payload)
	if se.Code != CodeOverloaded || se.Msg != "queue full" {
		t.Fatalf("decoded %+v", se)
	}
	if !se.Temporary() {
		t.Fatal("overloaded should be temporary")
	}
	if se := DecodeError(nil); se.Code != CodeUnknown {
		t.Fatalf("empty payload decoded to %v", se.Code)
	}
	if DecodeError(EncodeError(CodeBadRequest, "nope")).Temporary() {
		t.Fatal("bad request should not be temporary")
	}
	if CodeDeadline.String() != "deadline" || CodeShutdown.String() != "shutdown" {
		t.Fatal("error code names changed")
	}
}

func TestErrorCodeClassification(t *testing.T) {
	cases := []struct {
		err  error
		want ErrCode
	}{
		{serve.ErrQueueFull, CodeOverloaded},
		{serve.ErrClosed, CodeShutdown},
		{context.DeadlineExceeded, CodeDeadline},
		{context.Canceled, CodeShutdown},
		{&badRequestError{errors.New("garbled")}, CodeBadRequest},
		{errors.New("disk fell out"), CodeInternal},
	}
	for _, c := range cases {
		if got := errorCode(c.err); got != c.want {
			t.Errorf("errorCode(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestGarbageInferPayloadReturnsBadRequestCode(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, MsgInferRequest, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("expected error frame, got %d", typ)
	}
	if se := DecodeError(payload); se.Code != CodeBadRequest {
		t.Fatalf("got code %v (%q), want bad-request", se.Code, se.Msg)
	}
}

// dialAttested connects, bootstraps trust, and completes attestation.
func dialAttested(t *testing.T, addr string, opts ...ClientOption) *Client {
	t.Helper()
	client, err := Dial(addr, attest.NewService(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	if err := client.FetchTrustBundle(); err != nil {
		t.Fatal(err)
	}
	if err := client.Attest(); err != nil {
		t.Fatal(err)
	}
	return client
}

// TestScheduledServerConcurrentClients drives N parallel clients through a
// pipeline-backed server (bounded queue + cross-request batching) and
// checks every result against a sequential reference run — decryption is
// exact, so batched and unbatched serving must agree bit for bit.
func TestScheduledServerConcurrentClients(t *testing.T) {
	const clients = 8
	addr, _, shutdown := testStackPipeline(t, []serve.Option{
		serve.WithSchedulerConfig(serve.SchedulerConfig{Workers: clients, QueueDepth: 2 * clients}),
		serve.WithBatcherConfig(serve.BatcherConfig{MaxBatch: 1 << 14, Window: 20 * time.Millisecond}),
	})
	defer shutdown()

	// Sequential reference pass over the same images.
	ref := dialAttested(t, addr)
	want := make([][]float64, clients)
	for i := range want {
		logits, err := ref.Infer(testImage(uint64(50+i)), 63)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = logits
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := Dial(addr, attest.NewService())
			if err != nil {
				errs[i] = err
				return
			}
			defer client.Close()
			if err := client.FetchTrustBundle(); err != nil {
				errs[i] = err
				return
			}
			if err := client.Attest(); err != nil {
				errs[i] = err
				return
			}
			logits, err := client.Infer(testImage(uint64(50+i)), 63)
			if err != nil {
				errs[i] = err
				return
			}
			if len(logits) != len(want[i]) {
				errs[i] = errors.New("logit count mismatch")
				return
			}
			for j := range logits {
				if logits[j] != want[i][j] {
					errs[i] = errors.New("concurrent result diverged from sequential reference")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

// TestClosedPipelineSurfacesTypedShutdownError checks the full loop: the
// scheduler rejects with ErrClosed, the server encodes CodeShutdown, and
// the client surfaces a *ServerError the caller can branch on.
func TestClosedPipelineSurfacesTypedShutdownError(t *testing.T) {
	addr, st, shutdown := testStackPipeline(t, []serve.Option{
		serve.WithSchedulerConfig(serve.SchedulerConfig{Workers: 1, QueueDepth: 1}),
	})
	defer shutdown()
	client := dialAttested(t, addr)
	st.service.Close() // server still up; scheduler drained

	_, err := client.Infer(testImage(77), 63)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *ServerError", err)
	}
	if se.Code != CodeShutdown {
		t.Fatalf("got code %v (%q), want shutdown", se.Code, se.Msg)
	}
}

// TestLegacyClientTalksToNewServer is the version-negotiation property: a
// pre-v2 client (fixed-width public-key uploads) and a v2 client (seeded
// bit-packed uploads) get identical answers from the same server, and the
// server's version counters attribute each request to the right format.
func TestLegacyClientTalksToNewServer(t *testing.T) {
	addr, st, shutdown := testStackPipeline(t, nil)
	defer shutdown()

	img := testImage(60)

	legacy := dialAttested(t, addr, WithLegacyFormat(true))
	fromLegacy, err := legacy.Infer(img, 63)
	if err != nil {
		t.Fatal(err)
	}

	modern := dialAttested(t, addr)
	fromModern, err := modern.Infer(img, 63)
	if err != nil {
		t.Fatal(err)
	}

	if len(fromLegacy) != len(fromModern) {
		t.Fatalf("logit counts differ: %d vs %d", len(fromLegacy), len(fromModern))
	}
	for i := range fromLegacy {
		if fromLegacy[i] != fromModern[i] {
			t.Fatalf("logit %d differs across wire versions: %g vs %g", i, fromLegacy[i], fromModern[i])
		}
	}
	if got := st.metrics.Counter("wire.requests_v1").Value(); got != 1 {
		t.Fatalf("wire.requests_v1 = %d, want 1", got)
	}
	if got := st.metrics.Counter("wire.requests_v2").Value(); got != 1 {
		t.Fatalf("wire.requests_v2 = %d, want 1", got)
	}
}

// TestSeededUploadSmallerOnWire measures the actual transport payloads: the
// v2 seeded request histogram must sit at least 2× below a legacy request
// for the same image.
func TestSeededUploadSmallerOnWire(t *testing.T) {
	addr, st, shutdown := testStackPipeline(t, nil)
	defer shutdown()
	img := testImage(61)

	modern := dialAttested(t, addr)
	if _, err := modern.Infer(img, 63); err != nil {
		t.Fatal(err)
	}
	snap := st.metrics.Histogram("wire.request_bytes").Snapshot()
	v2Bytes := snap.Max

	legacy := dialAttested(t, addr, WithLegacyFormat(true))
	if _, err := legacy.Infer(img, 63); err != nil {
		t.Fatal(err)
	}
	snap = st.metrics.Histogram("wire.request_bytes").Snapshot()
	v1Bytes := snap.Max
	if v1Bytes <= v2Bytes {
		t.Fatalf("legacy request (%g B) not larger than seeded (%g B)", v1Bytes, v2Bytes)
	}
	if ratio := v1Bytes / v2Bytes; ratio < 2 {
		t.Fatalf("wire-level upload reduction %.2f× below 2× (v1 %g B, v2 %g B)", ratio, v1Bytes, v2Bytes)
	}
	if st.metrics.Counter("wire.bytes_in").Value() <= 0 ||
		st.metrics.Counter("wire.bytes_out").Value() <= 0 {
		t.Fatal("transport byte counters did not record traffic")
	}
	if st.metrics.Histogram("wire.reply_bytes").Snapshot().Count != 2 {
		t.Fatal("reply size histogram missed observations")
	}
}

// TestWriteFrameFuncStreamsAndVerifiesLength: the streaming writer produces
// frames indistinguishable from WriteFrame and refuses payload writers that
// do not emit exactly the declared byte count.
func TestWriteFrameFuncStreamsAndVerifiesLength(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	var direct, streamed bytes.Buffer
	if err := WriteFrame(&direct, MsgInferReply, payload); err != nil {
		t.Fatal(err)
	}
	err := WriteFrameFunc(&streamed, MsgInferReply, len(payload), func(w io.Writer) error {
		// Write in uneven chunks to exercise the counting path.
		if _, err := w.Write(payload[:123]); err != nil {
			return err
		}
		_, err := w.Write(payload[123:])
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), streamed.Bytes()) {
		t.Fatal("streamed frame differs from direct frame")
	}

	var buf bytes.Buffer
	err = WriteFrameFunc(&buf, MsgInferReply, 10, func(w io.Writer) error {
		_, werr := w.Write([]byte("short"))
		return werr
	})
	if err == nil {
		t.Fatal("under-delivering payload writer accepted")
	}
	if err := WriteFrameFunc(&buf, MsgInferReply, MaxFrameBytes, func(io.Writer) error { return nil }); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized declared length: got %v", err)
	}
}

// TestWriteFrameFuncPartialWriteIsTransportFatal pins the desync contract:
// a payload failure before anything is flushed leaves the transport
// untouched and returns a plain error (the connection can still carry an
// error frame), while a failure after bytes have hit the transport comes
// back as *PartialFrameError — the caller must close the connection instead
// of framing anything else onto a truncated frame.
func TestWriteFrameFuncPartialWriteIsTransportFatal(t *testing.T) {
	boom := errors.New("boom")

	// Small payload: the 32KB buffer absorbs everything, so nothing reaches
	// the transport and the failure is recoverable.
	var conn bytes.Buffer
	err := WriteFrameFunc(&conn, MsgInferReply, 100, func(w io.Writer) error {
		_, _ = w.Write(make([]byte, 10))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
	var partial *PartialFrameError
	if errors.As(err, &partial) {
		t.Fatal("unflushed failure reported as partial frame")
	}
	if conn.Len() != 0 {
		t.Fatalf("%d bytes leaked to the transport on a recoverable failure", conn.Len())
	}

	// Multi-buffer payload: the buffer flushes mid-payload, so the same
	// failure now leaves a truncated frame on the wire.
	conn.Reset()
	err = WriteFrameFunc(&conn, MsgInferReply, 100<<10, func(w io.Writer) error {
		if _, werr := w.Write(make([]byte, 64<<10)); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.As(err, &partial) {
		t.Fatalf("got %v, want *PartialFrameError", err)
	}
	if !errors.Is(err, boom) {
		t.Fatal("partial frame error lost its cause")
	}
	if conn.Len() == 0 {
		t.Fatal("test expected flushed bytes before the failure")
	}

	// An under-delivering writer after a flush is the same class of failure.
	conn.Reset()
	err = WriteFrameFunc(&conn, MsgInferReply, 100<<10, func(w io.Writer) error {
		_, werr := w.Write(make([]byte, 64<<10))
		return werr
	})
	if !errors.As(err, &partial) {
		t.Fatalf("under-delivery after flush: got %v, want *PartialFrameError", err)
	}
}

// TestReadFrameReuse pins the pooled-read contract: a large enough buffer is
// reused in place, a small one is replaced by a larger allocation.
func TestReadFrameReuse(t *testing.T) {
	var stream bytes.Buffer
	first := bytes.Repeat([]byte{1}, 64)
	second := bytes.Repeat([]byte{2}, 16)
	if err := WriteFrame(&stream, MsgInferRequest, first); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&stream, MsgInferRequest, second); err != nil {
		t.Fatal(err)
	}

	_, p1, err := ReadFrameReuse(&stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, first) {
		t.Fatal("first payload corrupted")
	}
	buf := p1[:cap(p1)]
	_, p2, err := ReadFrameReuse(&stream, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p2, second) {
		t.Fatal("second payload corrupted")
	}
	if &p2[0] != &buf[0] {
		t.Fatal("sufficient buffer was not reused")
	}
}
