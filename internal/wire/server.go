package wire

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"

	"hesgx/internal/attest"
	"hesgx/internal/core"
)

// Server is the edge-server endpoint: it owns the enclave service and the
// hybrid engine and answers attestation and inference requests over TCP.
type Server struct {
	svc    *core.EnclaveService
	engine *core.HybridEngine
	logger *slog.Logger

	wg sync.WaitGroup
}

// NewServer wires an enclave service and a planned engine into a network
// endpoint.
func NewServer(svc *core.EnclaveService, engine *core.HybridEngine, logger *slog.Logger) (*Server, error) {
	if svc == nil || engine == nil {
		return nil, fmt.Errorf("wire: server needs an enclave service and an engine")
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{svc: svc, engine: engine, logger: logger}, nil
}

// Serve accepts connections until ctx is cancelled or the listener fails.
// It closes the listener on return and waits for in-flight connections.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer s.wg.Wait()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil // graceful shutdown
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if err := s.handle(ctx, conn); err != nil &&
				!errors.Is(err, net.ErrClosed) && !errors.Is(err, context.Canceled) {
				s.logger.Warn("connection error", "remote", conn.RemoteAddr(), "err", err)
			}
		}()
	}
}

// handle serves one connection: a sequence of frames until EOF.
func (s *Server) handle(ctx context.Context, conn net.Conn) error {
	// Close the connection when the server shuts down so blocked reads
	// unwind.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return nil // client closed or garbled; nothing more to do
		}
		if err := s.dispatch(conn, t, payload); err != nil {
			// Protocol-level errors go back to the client; transport errors
			// end the connection.
			if werr := WriteFrame(conn, MsgError, []byte(err.Error())); werr != nil {
				return werr
			}
		}
	}
}

func (s *Server) dispatch(conn net.Conn, t MsgType, payload []byte) error {
	switch t {
	case MsgTrustRequest:
		return s.handleTrust(conn)
	case MsgAttestRequest:
		return s.handleAttest(conn, payload)
	case MsgInferRequest:
		return s.handleInfer(conn, payload)
	default:
		return fmt.Errorf("wire: unexpected message type %d", t)
	}
}

func (s *Server) handleTrust(conn net.Conn) error {
	m := s.svc.Enclave().Measurement()
	pub := attest.MarshalPublicKey(s.svc.Enclave().Platform().AttestationPublicKey())
	payload := append(m[:], pub...)
	return WriteFrame(conn, MsgTrustBundle, payload)
}

func (s *Server) handleAttest(conn net.Conn, payload []byte) error {
	if len(payload) < 33 {
		return fmt.Errorf("wire: attest request too short")
	}
	var nonce [32]byte
	copy(nonce[:], payload[:32])
	userPub := payload[32:]
	provision, err := s.svc.ProvisionKeys(userPub)
	if err != nil {
		return fmt.Errorf("wire: provisioning: %w", err)
	}
	quote, err := attest.GenerateQuote(s.svc.Enclave(), nonce, provision)
	if err != nil {
		return fmt.Errorf("wire: quoting: %w", err)
	}
	qb, err := quote.Marshal()
	if err != nil {
		return err
	}
	s.logger.Info("attestation served", "remote", conn.RemoteAddr())
	return WriteFrame(conn, MsgAttestReply, qb)
}

func (s *Server) handleInfer(conn net.Conn, payload []byte) error {
	img, err := core.UnmarshalCipherImage(payload, s.svc.Params())
	if err != nil {
		return fmt.Errorf("wire: decoding cipher image: %w", err)
	}
	res, err := s.engine.Infer(img)
	if err != nil {
		return fmt.Errorf("wire: inference: %w", err)
	}
	batch, err := core.MarshalCiphertextBatch(res.Logits)
	if err != nil {
		return err
	}
	var out []byte
	out = appendFloat64(out, res.OutScale)
	out = append(out, batch...)
	s.logger.Info("inference served", "remote", conn.RemoteAddr(), "logits", len(res.Logits))
	return WriteFrame(conn, MsgInferReply, out)
}
