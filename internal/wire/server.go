package wire

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/diag"
	"hesgx/internal/he"
	"hesgx/internal/report"
	"hesgx/internal/serve"
	"hesgx/internal/stats"
	"hesgx/internal/trace"
)

// ServiceInferrer is the serving surface: one entrypoint whose Request
// carries the image plus serving metadata, with lane-packed vs scalar
// execution decided inside. *serve.Service is the production
// implementation.
type ServiceInferrer interface {
	Infer(ctx context.Context, req serve.Request) (*serve.Result, error)
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithService routes inference requests through the serving stack —
// normally a *serve.Service, which adds lane-packed execution of
// concurrent requests. Required: NewServer fails without it.
func WithService(svc ServiceInferrer) ServerOption {
	return func(s *Server) { s.service = svc }
}

// WithTracer records one end-to-end trace per inference request — from
// frame decode through scheduler, engine, batcher and ECALLs back to the
// reply — into the tracer's ring buffer. Normally the serving pipeline's
// tracer, so the admin endpoint serves both from one place.
func WithTracer(t *trace.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// WithMetrics records transport-level traffic into reg: wire.bytes_in /
// wire.bytes_out counters over all frames plus per-request payload-size
// histograms (wire.request_bytes, wire.reply_bytes) — the numbers behind
// the ~2× seeded-upload reduction, visible on /metrics. Normally the
// serving pipeline's registry.
func WithMetrics(reg *stats.Registry) ServerOption {
	return func(s *Server) { s.metrics = reg }
}

// WithEventBus publishes a diag event for every connection-level fault —
// unreadable frames, partial reply frames, transport errors — feeding the
// postmortem capturer.
func WithEventBus(b *diag.Bus) ServerOption {
	return func(s *Server) { s.events = b }
}

// Server is the edge-server endpoint: it owns the enclave service and the
// hybrid engine and answers attestation and inference requests over TCP.
type Server struct {
	svc     *core.EnclaveService
	engine  *core.HybridEngine
	service ServiceInferrer // the serving path (required)
	tracer  *trace.Tracer   // nil: request tracing disabled at the wire
	metrics *stats.Registry // nil-safe: a nil registry no-ops
	events  *diag.Bus       // nil-safe: a nil bus drops publishes
	logger  *slog.Logger

	wg sync.WaitGroup
}

// NewServer wires an enclave service and a planned engine into a network
// endpoint. A serving Service (WithService) is required: the wire layer
// never calls the engine directly.
func NewServer(svc *core.EnclaveService, engine *core.HybridEngine, logger *slog.Logger, opts ...ServerOption) (*Server, error) {
	if svc == nil || engine == nil {
		return nil, fmt.Errorf("wire: server needs an enclave service and an engine")
	}
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{svc: svc, engine: engine, logger: logger}
	for _, opt := range opts {
		opt(s)
	}
	if s.service == nil {
		return nil, fmt.Errorf("wire: server needs a serving Service (WithService)")
	}
	return s, nil
}

// Serve accepts connections until ctx is cancelled or the listener fails.
// It closes the listener on return and waits for in-flight connections.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer s.wg.Wait()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil // graceful shutdown
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if err := s.handle(ctx, conn); err != nil &&
				!errors.Is(err, net.ErrClosed) && !errors.Is(err, context.Canceled) {
				s.logger.Warn("connection error",
					"remote", conn.RemoteAddr(),
					"trace_id", traceIDOf(err),
					"err", err)
				s.events.Publish(diag.Event{
					Type:     diag.TypeWireFault,
					Severity: diag.SeverityWarn,
					Stage:    "connection",
					TraceID:  traceIDOf(err),
					Message:  fmt.Sprintf("connection to %s failed: %v", conn.RemoteAddr(), err),
				})
			}
		}()
	}
}

// handle serves one connection: a sequence of frames until EOF.
func (s *Server) handle(ctx context.Context, conn net.Conn) error {
	// Close the connection when the server shuts down so blocked reads
	// unwind and any in-flight enclave work for this connection is
	// cancelled.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	// One payload buffer per connection, reused across frames: requests on a
	// connection are handled sequentially and decoders copy what they keep,
	// so each client pays one cipher-image-sized allocation per connection
	// instead of one per request.
	var payloadBuf []byte
	for {
		t, payload, err := ReadFrameReuse(conn, payloadBuf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
				return nil // clean close (client done, or shutdown)
			}
			// A garbled or truncated frame has no request context yet, so the
			// record carries trace_id=0; the remote address is what makes
			// pre-handshake failures attributable.
			s.logger.Warn("dropping connection on unreadable frame",
				"remote", conn.RemoteAddr(),
				"trace_id", uint64(0),
				"err", err)
			s.events.Publish(diag.Event{
				Type:     diag.TypeWireFault,
				Severity: diag.SeverityWarn,
				Stage:    "frame_decode",
				Message:  fmt.Sprintf("dropping connection to %s on unreadable frame: %v", conn.RemoteAddr(), err),
			})
			return nil
		}
		if cap(payload) > cap(payloadBuf) {
			payloadBuf = payload[:cap(payload)]
		}
		s.metrics.Counter("wire.bytes_in").Add(int64(len(payload)) + frameHeaderSize)
		if err := s.dispatch(ctx, conn, t, payload); err != nil {
			// A reply that died mid-stream left a truncated frame on the
			// wire; the connection's framing is unrecoverable, so close it
			// rather than write a MsgError into the middle of that frame.
			var partial *PartialFrameError
			if errors.As(err, &partial) {
				s.logger.Warn("closing connection after partial reply frame",
					"remote", conn.RemoteAddr(),
					"trace_id", traceIDOf(err),
					"err", err)
				s.events.Publish(diag.Event{
					Type:     diag.TypeWireFault,
					Severity: diag.SeverityWarn,
					Stage:    "partial_frame",
					TraceID:  traceIDOf(err),
					Message:  fmt.Sprintf("closing connection to %s after partial reply frame: %v", conn.RemoteAddr(), err),
				})
				return err
			}
			// Protocol-level errors go back to the client as typed error
			// frames; transport errors end the connection.
			code := errorCode(err)
			s.logger.Warn("request failed",
				"remote", conn.RemoteAddr(),
				"code", code,
				"trace_id", traceIDOf(err),
				"err", err)
			if werr := s.writeFrame(conn, MsgError, EncodeError(code, err.Error())); werr != nil {
				return werr
			}
		}
	}
}

// frameHeaderSize is the fixed framing overhead counted into byte totals.
const frameHeaderSize = 5

// writeFrame writes a frame and accounts its bytes.
func (s *Server) writeFrame(conn net.Conn, t MsgType, payload []byte) error {
	err := WriteFrame(conn, t, payload)
	if err == nil {
		s.metrics.Counter("wire.bytes_out").Add(int64(len(payload)) + frameHeaderSize)
	}
	return err
}

// errorCode classifies a handler error for the MsgError frame.
func errorCode(err error) ErrCode {
	var bad *badRequestError
	switch {
	case errors.As(err, &bad):
		return CodeBadRequest
	case errors.Is(err, serve.ErrQueueFull):
		return CodeOverloaded
	case errors.Is(err, serve.ErrClosed):
		return CodeShutdown
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeShutdown
	default:
		return CodeInternal
	}
}

// badRequestError marks a client-side (payload) fault.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// tracedError tags a request error with the trace ID of the request that
// produced it, so connection-level log records join against the trace
// flight recorder. Unwrap keeps errors.Is/As classification intact.
type tracedError struct {
	traceID uint64
	err     error
}

func (e *tracedError) Error() string { return e.err.Error() }
func (e *tracedError) Unwrap() error { return e.err }

// traceIDOf extracts the tagged trace ID from an error chain (0: none).
func traceIDOf(err error) uint64 {
	var te *tracedError
	if errors.As(err, &te) {
		return te.traceID
	}
	return 0
}

func (s *Server) dispatch(ctx context.Context, conn net.Conn, t MsgType, payload []byte) error {
	switch t {
	case MsgTrustRequest:
		return s.handleTrust(conn)
	case MsgAttestRequest:
		return s.handleAttest(conn, payload)
	case MsgInferRequest:
		return s.handleInfer(ctx, conn, payload)
	case MsgInferBatchRequest:
		return s.handleInferBatch(ctx, conn, payload)
	case MsgTraced:
		return s.handleTraced(ctx, conn, payload)
	case MsgGaloisKeys:
		return s.handleGaloisKeys(conn, payload)
	default:
		return &badRequestError{fmt.Errorf("wire: unexpected message type %d", t)}
	}
}

// handleGaloisKeys installs a client-generated rotation key set on the
// engine so its packed-convolution prefix rotates under the client's keys
// without an enclave key-generation round trip. Decode failures, parameter
// mismatches, and engines without a packed plan are all client faults: the
// bytes (or the session) are wrong, and retrying them cannot succeed.
func (s *Server) handleGaloisKeys(conn net.Conn, payload []byte) error {
	gk, err := he.UnmarshalGaloisKeys(payload)
	if err != nil {
		return &badRequestError{fmt.Errorf("wire: decoding galois keys: %w", err)}
	}
	if err := s.engine.InstallGaloisKeys(gk); err != nil {
		return &badRequestError{fmt.Errorf("wire: installing galois keys: %w", err)}
	}
	s.metrics.Counter("wire.galois_key_uploads").Inc()
	s.logger.Info("galois keys installed",
		"remote", conn.RemoteAddr(),
		"rotations", len(gk.Elements()))
	return s.writeFrame(conn, MsgGaloisKeysAck, nil)
}

func (s *Server) handleTrust(conn net.Conn) error {
	m := s.svc.Enclave().Measurement()
	pub := attest.MarshalPublicKey(s.svc.Enclave().Platform().AttestationPublicKey())
	payload := append(m[:], pub...)
	return s.writeFrame(conn, MsgTrustBundle, payload)
}

func (s *Server) handleAttest(conn net.Conn, payload []byte) error {
	if len(payload) < 33 {
		return &badRequestError{fmt.Errorf("wire: attest request too short")}
	}
	var nonce [32]byte
	copy(nonce[:], payload[:32])
	userPub := payload[32:]
	provision, err := s.svc.ProvisionKeys(userPub)
	if err != nil {
		return fmt.Errorf("wire: provisioning: %w", err)
	}
	quote, err := attest.GenerateQuote(s.svc.Enclave(), nonce, provision)
	if err != nil {
		return fmt.Errorf("wire: quoting: %w", err)
	}
	qb, err := quote.Marshal()
	if err != nil {
		return err
	}
	s.logger.Info("attestation served", "remote", conn.RemoteAddr())
	return s.writeFrame(conn, MsgAttestReply, qb)
}

func (s *Server) handleInfer(ctx context.Context, conn net.Conn, payload []byte) error {
	// The request trace opens before decode and finishes after the reply
	// frame is written, so its root span is the full server-side
	// wall-clock of the request.
	tr := s.tracer.Start("request")
	ctx = trace.With(ctx, tr)
	defer s.tracer.Finish(tr)
	if err := s.serveInfer(ctx, conn, payload, nil); err != nil {
		return &tracedError{traceID: trace.ID(ctx), err: err}
	}
	return nil
}

// handleTraced serves a distributed-trace envelope: the server's span tree
// joins the client-minted trace ID, and the reply (enveloped as
// MsgTracedReply) carries the server's spans + flight report back for the
// client to graft into its own trace.
func (s *Server) handleTraced(ctx context.Context, conn net.Conn, payload []byte) error {
	inner, id, flags, rest, err := ParseTracedHeader(payload)
	if err != nil {
		return &badRequestError{err}
	}
	s.metrics.Counter("wire.requests_traced").Inc()
	tr := s.tracer.StartRemote(id, "request")
	ctx = trace.With(ctx, tr)
	// Safety net: the reply path finishes the trace itself (its snapshot
	// must ride the reply), making this a no-op; on error paths it retains
	// the partial trace.
	defer s.tracer.Finish(tr)
	env := &replyEnvelope{srv: s, tr: tr, withSpans: flags&TracedFlagReturnSpans != 0}
	switch inner {
	case MsgInferRequest:
		err = s.serveInfer(ctx, conn, rest, env)
	case MsgInferBatchRequest:
		err = s.serveInferBatch(ctx, conn, rest, env)
	default:
		err = &badRequestError{fmt.Errorf("wire: message type %d cannot carry trace context", inner)}
	}
	if err != nil {
		return &tracedError{traceID: id, err: err}
	}
	return nil
}

// replyEnvelope carries the traced-request reply context: when set, the
// serve paths wrap their reply in MsgTracedReply with the trace blob.
type replyEnvelope struct {
	srv       *Server
	tr        *trace.Trace
	withSpans bool
}

// tracedBlob is the JSON payload of a MsgTracedReply envelope.
type tracedBlob struct {
	Trace  *trace.Snapshot      `json:"trace,omitempty"`
	Report *report.FlightReport `json:"report,omitempty"`
}

// prefix renders the MsgTracedReply header + blob for an inner reply type.
// It finishes the trace first (through the tracer, so the flight recorder
// and report hook see it) — the snapshot must be complete before the reply
// frame carrying it is encoded, which is why a traced trace's span tree
// ends at the reply-encode boundary rather than after it: the client's
// wait span covers the encode + network time from the outside.
func (e *replyEnvelope) prefix(inner MsgType) []byte {
	var blob []byte
	if e.withSpans && e.tr != nil {
		e.srv.tracer.Finish(e.tr)
		b := tracedBlob{Trace: e.tr.TakeSnapshot(), Report: report.FromTrace(e.tr)}
		if j, err := json.Marshal(b); err == nil {
			blob = j
		}
	}
	p := make([]byte, TracedReplyHeaderSize, TracedReplyHeaderSize+len(blob))
	p[0] = byte(inner)
	binary.LittleEndian.PutUint32(p[1:5], uint32(len(blob)))
	return append(p, blob...)
}

// replyFraming resolves how a serve path frames its reply: enveloped with
// the trace blob when env is set, the plain inner type otherwise.
func (e *replyEnvelope) replyFraming(inner MsgType) (MsgType, []byte) {
	if e == nil {
		return inner, nil
	}
	return MsgTracedReply, e.prefix(inner)
}

func (s *Server) serveInfer(ctx context.Context, conn net.Conn, payload []byte, env *replyEnvelope) error {
	// Version negotiation happens per request: the decoder reports which
	// wire format arrived (legacy fixed-width v1 or seeded/packed v2) and
	// the reply mirrors it, so legacy clients keep talking to this server
	// while v2 clients get packed replies.
	_, dspan := trace.StartSpan(ctx, "wire.decode", "wire")
	img, version, err := core.UnmarshalCipherImageAuto(payload, s.svc.Params())
	dspan.Arg("bytes", float64(len(payload))).End()
	s.metrics.ObserveHistogram("wire.request_bytes", float64(len(payload)))
	if err != nil {
		return &badRequestError{fmt.Errorf("wire: decoding cipher image: %w", err)}
	}
	if version == core.WireV2 {
		s.metrics.Counter("wire.requests_v2").Inc()
	} else {
		s.metrics.Counter("wire.requests_v1").Inc()
	}
	logits, outScale, err := s.runInfer(ctx, img)
	if err != nil {
		return fmt.Errorf("wire: inference: %w", err)
	}
	// For traced requests the envelope prefix is rendered first: it finishes
	// the trace and snapshots it, so the blob reflects the complete server
	// span tree before any reply byte hits the wire.
	replyType, prefix := env.replyFraming(MsgInferReply)
	_, espan := trace.StartSpan(ctx, "wire.encode", "wire")
	var replyLen int
	if version == core.WireV2 {
		// Packed batch, streamed straight to the connection: the exact size
		// is known up front, so no intermediate buffer is materialized.
		replyLen = len(prefix) + 8 + core.CiphertextBatchPackedSize(logits)
		err = WriteFrameFunc(conn, replyType, replyLen, func(w io.Writer) error {
			if len(prefix) > 0 {
				if _, werr := w.Write(prefix); werr != nil {
					return werr
				}
			}
			if _, werr := w.Write(float64Bytes(outScale)); werr != nil {
				return werr
			}
			return core.WriteCiphertextBatchPacked(w, logits)
		})
	} else {
		var batch []byte
		if batch, err = core.MarshalCiphertextBatch(logits); err != nil {
			espan.End()
			return err
		}
		out := make([]byte, 0, len(prefix)+8+len(batch))
		out = append(out, prefix...)
		out = appendFloat64(out, outScale)
		out = append(out, batch...)
		replyLen = len(out)
		err = WriteFrame(conn, replyType, out)
	}
	espan.Arg("bytes", float64(replyLen)).End()
	if err != nil {
		return err
	}
	s.metrics.Counter("wire.bytes_out").Add(int64(replyLen) + frameHeaderSize)
	s.metrics.ObserveHistogram("wire.reply_bytes", float64(replyLen))
	s.logger.Info("inference served",
		"remote", conn.RemoteAddr(),
		"logits", len(logits),
		"trace_id", trace.ID(ctx))
	return nil
}

// runInfer executes one decoded request on the serving stack.
func (s *Server) runInfer(ctx context.Context, img *core.CipherImage) ([]*he.Ciphertext, float64, error) {
	res, err := s.service.Infer(ctx, serve.Request{Image: img})
	if err != nil {
		return nil, 0, err
	}
	return res.Logits, res.OutScale, nil
}

func (s *Server) handleInferBatch(ctx context.Context, conn net.Conn, payload []byte) error {
	tr := s.tracer.Start("request")
	ctx = trace.With(ctx, tr)
	defer s.tracer.Finish(tr)
	if err := s.serveInferBatch(ctx, conn, payload, nil); err != nil {
		return &tracedError{traceID: trace.ID(ctx), err: err}
	}
	return nil
}

// serveInferBatch answers a client-packed lane batch: the payload's lane
// count is stamped onto the decoded image so the engine runs one
// slot-vector pass, and the reply echoes the lane count ahead of the
// packed logits, mirroring the request's wire version.
func (s *Server) serveInferBatch(ctx context.Context, conn net.Conn, payload []byte, env *replyEnvelope) error {
	_, dspan := trace.StartSpan(ctx, "wire.decode", "wire")
	if len(payload) < 4 {
		dspan.End()
		return &badRequestError{fmt.Errorf("wire: infer batch request too short")}
	}
	lanes := int(binary.LittleEndian.Uint32(payload[:4]))
	img, version, err := core.UnmarshalCipherImageAuto(payload[4:], s.svc.Params())
	dspan.Arg("bytes", float64(len(payload))).Arg("lanes", float64(lanes)).End()
	s.metrics.ObserveHistogram("wire.request_bytes", float64(len(payload)))
	if err != nil {
		return &badRequestError{fmt.Errorf("wire: decoding cipher image: %w", err)}
	}
	if lanes < 1 || lanes > s.svc.Params().N {
		return &badRequestError{fmt.Errorf("wire: lane count %d out of range [1, %d]", lanes, s.svc.Params().N)}
	}
	img.Lanes = lanes
	if version == core.WireV2 {
		s.metrics.Counter("wire.requests_v2").Inc()
	} else {
		s.metrics.Counter("wire.requests_v1").Inc()
	}
	logits, outScale, err := s.runInfer(ctx, img)
	if err != nil {
		return fmt.Errorf("wire: inference: %w", err)
	}
	replyType, prefix := env.replyFraming(MsgInferBatchReply)
	_, espan := trace.StartSpan(ctx, "wire.encode", "wire")
	var laneHdr [4]byte
	binary.LittleEndian.PutUint32(laneHdr[:], uint32(lanes))
	var replyLen int
	if version == core.WireV2 {
		replyLen = len(prefix) + 4 + 8 + core.CiphertextBatchPackedSize(logits)
		err = WriteFrameFunc(conn, replyType, replyLen, func(w io.Writer) error {
			if len(prefix) > 0 {
				if _, werr := w.Write(prefix); werr != nil {
					return werr
				}
			}
			if _, werr := w.Write(laneHdr[:]); werr != nil {
				return werr
			}
			if _, werr := w.Write(float64Bytes(outScale)); werr != nil {
				return werr
			}
			return core.WriteCiphertextBatchPacked(w, logits)
		})
	} else {
		var batch []byte
		if batch, err = core.MarshalCiphertextBatch(logits); err != nil {
			espan.End()
			return err
		}
		out := make([]byte, 0, len(prefix)+4+8+len(batch))
		out = append(out, prefix...)
		out = append(out, laneHdr[:]...)
		out = appendFloat64(out, outScale)
		out = append(out, batch...)
		replyLen = len(out)
		err = WriteFrame(conn, replyType, out)
	}
	espan.Arg("bytes", float64(replyLen)).End()
	if err != nil {
		return err
	}
	s.metrics.Counter("wire.bytes_out").Add(int64(replyLen) + frameHeaderSize)
	s.metrics.ObserveHistogram("wire.reply_bytes", float64(replyLen))
	s.logger.Info("lane-batched inference served",
		"remote", conn.RemoteAddr(),
		"lanes", lanes,
		"logits", len(logits),
		"trace_id", trace.ID(ctx))
	return nil
}

// float64Bytes renders the IEEE-754 bits of f in little-endian order.
func float64Bytes(f float64) []byte {
	return appendFloat64(nil, f)
}
