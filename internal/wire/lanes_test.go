package wire

import (
	"context"
	"log/slog"
	mrand "math/rand/v2"
	"net"
	"testing"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/he"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
	"hesgx/internal/serve"
	"hesgx/internal/sgx"
	"hesgx/internal/stats"
)

// testStackLanes spins up an edge server over batching-capable parameters
// with the full serving stack (lane packer included) behind WithService.
func testStackLanes(t *testing.T) (addr string, st *pipelineStack, service *serve.Service, shutdown func()) {
	t.Helper()
	tm, err := core.SIMDBatchingModulus(1024, 20)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ring.GenerateNTTPrime(46, 1024)
	if err != nil {
		t.Fatal(err)
	}
	params, err := he.NewParameters(1024, q, tm, he.DefaultDecompositionBase)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	r := mrand.New(mrand.NewPCG(3, 4))
	model := nn.NewNetwork(
		nn.NewConv2D(1, 2, 3, 1, r),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(2*3*3, 4, r),
	)
	engine, err := core.NewEngine(svc, model,
		core.WithScales(63, 16, 256), core.WithPoolStrategy(core.PoolSGXDiv))
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.EncodeWeights(); err != nil {
		t.Fatal(err)
	}
	st = &pipelineStack{svc: svc, engine: engine, model: model, metrics: stats.NewRegistry()}
	service = serve.NewService(engine, svc,
		serve.WithMetrics(st.metrics),
		serve.WithSchedulerConfig(serve.SchedulerConfig{Workers: 2, QueueDepth: 64}),
		serve.WithLaneConfig(serve.LaneConfig{MaxLanes: 16, MinLanes: 2, Window: 10 * time.Millisecond}))
	srv, err := NewServer(svc, engine, slog.New(slog.NewTextHandler(testWriter{t}, nil)),
		WithMetrics(st.metrics), WithService(service), WithTracer(service.Tracer))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return ln.Addr().String(), st, service, func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
		service.Close()
	}
}

func attestedClient(t *testing.T, addr string, opts ...ClientOption) *Client {
	t.Helper()
	client, err := Dial(addr, attest.NewService(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	if err := client.FetchTrustBundle(); err != nil {
		t.Fatal(err)
	}
	if err := client.Attest(); err != nil {
		t.Fatal(err)
	}
	return client
}

// TestInferBatchRoundTrip: a client-packed lane batch over the wire must
// decrypt to exactly the per-image results of scalar round trips.
func TestInferBatchRoundTrip(t *testing.T) {
	addr, st, _, shutdown := testStackLanes(t)
	defer shutdown()
	client := attestedClient(t, addr)

	const k = 4
	imgs := make([]*nn.Tensor, k)
	for i := range imgs {
		imgs[i] = testImage(uint64(10 + i))
	}
	batched, err := client.InferBatch(imgs, 63)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != k {
		t.Fatalf("got %d result rows, want %d", len(batched), k)
	}
	for i, img := range imgs {
		scalar, err := client.Infer(img, 63)
		if err != nil {
			t.Fatal(err)
		}
		if len(batched[i]) != len(scalar) {
			t.Fatalf("image %d: %d batched logits vs %d scalar", i, len(batched[i]), len(scalar))
		}
		for j := range scalar {
			if batched[i][j] != scalar[j] {
				t.Fatalf("image %d logit %d: batched %g != scalar %g", i, j, batched[i][j], scalar[j])
			}
		}
	}
	if st.metrics.Counter("wire.requests_v2").Value() == 0 {
		t.Fatal("batch request not counted as v2")
	}
}

// TestInferBatchLegacyFormat drives the same round trip over the v1 wire
// encoding (WithLegacyFormat at Dial), verifying version mirroring.
func TestInferBatchLegacyFormat(t *testing.T) {
	addr, st, _, shutdown := testStackLanes(t)
	defer shutdown()
	client := attestedClient(t, addr, WithLegacyFormat(true))

	imgs := []*nn.Tensor{testImage(20), testImage(21)}
	batched, err := client.InferBatch(imgs, 63)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != 2 || len(batched[0]) != 4 {
		t.Fatalf("unexpected result shape %dx%d", len(batched), len(batched[0]))
	}
	if st.metrics.Counter("wire.requests_v1").Value() == 0 {
		t.Fatal("legacy batch request not counted as v1")
	}
}

// TestInferBatchOfOneDegradesToScalar: the unified API accepts a batch of
// one everywhere — it rides the scalar round trip.
func TestInferBatchOfOneDegradesToScalar(t *testing.T) {
	addr, _, _, shutdown := testStackLanes(t)
	defer shutdown()
	client := attestedClient(t, addr)
	res, err := client.InferBatch([]*nn.Tensor{testImage(30)}, 63)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0]) != 4 {
		t.Fatalf("unexpected result shape")
	}
}

// TestServerRejectsBadLaneCount: a lane count exceeding the ring degree is
// a bad request, not a server fault.
func TestServerRejectsBadLaneCount(t *testing.T) {
	addr, _, _, shutdown := testStackLanes(t)
	defer shutdown()
	client := attestedClient(t, addr)

	ci, err := clientInner(client).EncryptImages([]*nn.Tensor{testImage(40), testImage(41)}, 63)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4)
	payload[0] = 0xff
	payload[1] = 0xff
	payload[2] = 0xff
	payload[3] = 0x7f
	body, err := core.MarshalCipherImage(ci)
	if err != nil {
		t.Fatal(err)
	}
	payload = append(payload, body...)
	if err := WriteFrame(clientConn(client), MsgInferBatchRequest, payload); err != nil {
		t.Fatal(err)
	}
	mt, reply, err := ReadFrame(clientConn(client))
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgError {
		t.Fatalf("got message type %d, want error frame", mt)
	}
	if serr := DecodeError(reply); serr.Code != CodeBadRequest {
		t.Fatalf("got %v, want bad-request server error", serr)
	}
}

// Accessors for white-box poking from the same package.
func clientInner(c *Client) *core.Client { return c.inner }
func clientConn(c *Client) net.Conn      { return c.conn }
