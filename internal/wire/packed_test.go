package wire

import (
	"context"
	"errors"
	"log/slog"
	mrand "math/rand/v2"
	"net"
	"strings"
	"testing"
	"time"

	"hesgx/internal/attest"
	"hesgx/internal/core"
	"hesgx/internal/nn"
	"hesgx/internal/ring"
	"hesgx/internal/serve"
	"hesgx/internal/sgx"
	"hesgx/internal/stats"
)

// testStackPacked spins up an edge server whose engine has an active
// packed-convolution plan: batching-capable parameters, a conv→act→pool
// prefix, and WeightScale 8 (inside the key-switched noise budget).
func testStackPacked(t *testing.T) (addr string, st *pipelineStack, shutdown func()) {
	t.Helper()
	params, err := core.DefaultSIMDParameters()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.ZeroCost(), sgx.WithJitterSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.NewEnclaveService(platform, params, core.WithKeySource(ring.NewSeededSource(37)))
	if err != nil {
		t.Fatal(err)
	}
	r := mrand.New(mrand.NewPCG(5, 6))
	model := nn.NewNetwork(
		nn.NewConv2D(1, 2, 3, 1, r),
		nn.NewActivation(nn.Sigmoid),
		nn.NewPool2D(nn.MeanPool, 2),
		&nn.Flatten{},
		nn.NewFullyConnected(2*3*3, 4, r),
	)
	engine, err := core.NewEngine(svc, model,
		core.WithScales(63, 8, 256), core.WithPackedConv(true))
	if err != nil {
		t.Fatal(err)
	}
	if info := engine.PackedInfo(); !info.Active {
		t.Fatalf("packed plan inactive: %s", info.Reason)
	}
	st = &pipelineStack{svc: svc, engine: engine, model: model, metrics: stats.NewRegistry()}
	st.service = serve.NewService(engine, svc, serve.WithMetrics(st.metrics), serve.WithoutLanes())
	srv, err := NewServer(svc, engine, slog.New(slog.NewTextHandler(testWriter{t}, nil)),
		WithMetrics(st.metrics), WithService(st.service), WithTracer(st.service.Tracer))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ctx, ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return ln.Addr().String(), st, func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
		st.service.Close()
	}
}

// packedRotationSteps is the rotation set a client derives from the model
// geometry it queries: 3×3 conv taps at slot stride 8 (the 2×2 pool
// offsets {1, 8, 9} are a subset).
func packedRotationSteps() []int {
	steps := []int{}
	for ky := 0; ky < 3; ky++ {
		for kx := 0; kx < 3; kx++ {
			if s := ky*8 + kx; s != 0 {
				steps = append(steps, s)
			}
		}
	}
	return steps
}

// The full network path: attest, upload client-generated Galois keys, run a
// slot-packed inference, and require answers identical to the scalar-layout
// path — same integers decrypted at the same scale.
func TestEndToEndPackedInfer(t *testing.T) {
	addr, st, shutdown := testStackPacked(t)
	defer shutdown()

	verifier := attest.NewService()
	client, err := Dial(addr, verifier, WithClientTracer(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.FetchTrustBundle(); err != nil {
		t.Fatal(err)
	}
	if err := client.Attest(); err != nil {
		t.Fatal(err)
	}

	if err := client.UploadGaloisKeys(packedRotationSteps(), 0); err != nil {
		t.Fatal(err)
	}
	if got := st.metrics.Counter("wire.galois_key_uploads").Value(); got != 1 {
		t.Fatalf("wire.galois_key_uploads = %d, want 1", got)
	}

	img := testImage(9)
	packed, err := client.InferPacked(img, 63)
	if err != nil {
		t.Fatal(err)
	}
	// The flight report carried back in the traced reply must attribute the
	// rotation work to the packed prefix's layers.
	rep := client.LastReport()
	if rep == nil {
		t.Fatal("no flight report after traced packed inference")
	}
	ksOps := 0
	for _, l := range rep.Layers {
		ksOps += l.KeySwitchOps
	}
	if ksOps == 0 {
		t.Error("flight report attributes no key-switch ops to any layer")
	}
	scalar, err := client.Infer(img, 63)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 4 || len(scalar) != 4 {
		t.Fatalf("logit counts: packed %d scalar %d, want 4", len(packed), len(scalar))
	}
	for i := range packed {
		if packed[i] != scalar[i] {
			t.Fatalf("logit %d: packed %g != scalar %g", i, packed[i], scalar[i])
		}
	}

	// The rotation accounting must surface on the shared registry — and the
	// exposition carrying the new names must stay promlint-clean.
	for _, name := range []string{"ring.rotations", "he.keyswitch_ops", "he.hoisted_rotations"} {
		if st.metrics.Gauge(name).Value() == 0 {
			t.Errorf("gauge %s is zero after a packed inference", name)
		}
	}
	var sb strings.Builder
	st.metrics.WritePrometheus(&sb)
	if err := stats.LintPrometheusText(strings.NewReader(sb.String())); err != nil {
		t.Errorf("metrics exposition fails promlint: %v", err)
	}
}

// Without a pre-uploaded key set the server generates rotation keys inside
// the enclave on first use — the round trip must still succeed.
func TestPackedInferWithoutKeyUpload(t *testing.T) {
	addr, _, shutdown := testStackPacked(t)
	defer shutdown()

	client := dialAttested(t, addr)
	defer client.Close()
	img := testImage(13)
	packed, err := client.InferPacked(img, 63)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := client.Infer(img, 63)
	if err != nil {
		t.Fatal(err)
	}
	for i := range packed {
		if packed[i] != scalar[i] {
			t.Fatalf("logit %d: packed %g != scalar %g", i, packed[i], scalar[i])
		}
	}
}

// A server whose engine has no packed plan must reject a key upload as the
// client's fault (wrong session), not an internal error.
func TestGaloisKeyUploadRejectedWithoutPackedPlan(t *testing.T) {
	addr, _, _, shutdown := testStack(t)
	defer shutdown()

	client := dialAttested(t, addr)
	defer client.Close()
	err := client.UploadGaloisKeys(packedRotationSteps(), 0)
	if err == nil {
		t.Fatal("key upload accepted by a server without a packed plan")
	}
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeBadRequest {
		t.Fatalf("want bad-request ServerError, got %v", err)
	}
}

// Garbage key bytes must come back as a typed bad-request, and the
// connection must remain usable afterwards.
func TestGaloisKeyUploadGarbageRejected(t *testing.T) {
	addr, _, shutdown := testStackPacked(t)
	defer shutdown()

	client := dialAttested(t, addr)
	defer client.Close()
	if err := WriteFrame(client.conn, MsgGaloisKeys, []byte("not a key set")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(client.conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("want MsgError, got type %d", typ)
	}
	if se := DecodeError(payload); se.Code != CodeBadRequest {
		t.Fatalf("want bad-request, got %v", se)
	}
	if _, err := client.Infer(testImage(17), 63); err != nil {
		t.Fatalf("connection unusable after rejected upload: %v", err)
	}
}
