package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame: arbitrary network bytes must never panic the framing
// layer, and any frame accepted must round-trip through WriteFrame.
func FuzzReadFrame(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteFrame(&valid, MsgInferRequest, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("accepted frame cannot be rewritten: %v", err)
		}
		typ2, payload2, err := ReadFrame(&buf)
		if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame does not round-trip: %v", err)
		}
	})
}
