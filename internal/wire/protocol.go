// Package wire implements the network protocol between smart-device
// clients and the CAV edge server of §VII: a length-prefixed binary framing
// over TCP carrying the attestation handshake (challenge → quote with
// encrypted HE keys) and encrypted inference round trips.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType tags a protocol frame.
type MsgType uint8

// Protocol message types.
const (
	// MsgAttestRequest: client → server. Payload: 32-byte nonce followed by
	// the client's ephemeral ECDH public key.
	MsgAttestRequest MsgType = iota + 1
	// MsgAttestReply: server → client. Payload: serialized attestation
	// quote whose user data carries the encrypted HE key material.
	MsgAttestReply
	// MsgInferRequest: client → server. Payload: serialized cipher image.
	MsgInferRequest
	// MsgInferReply: server → client. Payload: 8-byte output scale (IEEE
	// float64 bits) followed by the encrypted logits batch.
	MsgInferReply
	// MsgError: server → client. Payload: 1-byte ErrCode followed by a
	// UTF-8 error message (see EncodeError / DecodeError).
	MsgError
	// MsgTrustBundle: server → client. Payload: enclave measurement (32
	// bytes) + platform attestation public key. Served for demo
	// first-use provisioning; production clients must pin these out of
	// band instead of trusting the network.
	MsgTrustBundle
	// MsgTrustRequest: client → server, empty payload.
	MsgTrustRequest
	// MsgInferBatchRequest: client → server. Payload: 4-byte lane count
	// (little-endian uint32) followed by a serialized cipher image whose
	// ciphertexts carry that many images in their CRT slot lanes
	// (Client.EncryptImages). Either wire version of the image encoding is
	// accepted; the reply mirrors the request version.
	MsgInferBatchRequest
	// MsgInferBatchReply: server → client. Payload: 4-byte lane count
	// (echoed), 8-byte output scale (IEEE float64 bits), then the encrypted
	// slot-packed logits batch — slot k of each logit ciphertext belongs to
	// lane k.
	MsgInferBatchReply
	// MsgTraced: client → server. Distributed-trace envelope around an
	// inference request: [inner MsgType u8][trace ID u64 LE, nonzero]
	// [flags u8][inner payload]. The server joins its span tree under the
	// client-minted trace ID instead of minting its own. Only
	// MsgInferRequest and MsgInferBatchRequest may be wrapped. Servers
	// predating this envelope answer it with a bad-request MsgError, which
	// clients treat as "speak untraced to this server".
	MsgTraced
	// MsgTracedReply: server → client. Envelope around the inner reply:
	// [inner MsgType u8][blob length u32 LE][JSON blob][inner reply
	// payload]. The blob carries the server's span subtree and flight
	// report ({"trace": ..., "report": ...}); length 0 means the server had
	// tracing disabled or the request did not ask for spans. Errors are
	// never enveloped — a failed traced request gets a plain MsgError.
	MsgTracedReply
)

// Traced-envelope framing constants.
const (
	// TracedHeaderSize is the MsgTraced header: inner type (1) + trace ID
	// (8) + flags (1).
	TracedHeaderSize = 10
	// TracedReplyHeaderSize is the MsgTracedReply fixed header: inner type
	// (1) + blob length (4).
	TracedReplyHeaderSize = 5
	// TracedFlagReturnSpans asks the server to ship its span subtree and
	// flight report back in the reply envelope.
	TracedFlagReturnSpans = 1 << 0
)

// AppendTracedHeader appends a MsgTraced envelope header for the given
// inner message.
func AppendTracedHeader(dst []byte, inner MsgType, traceID uint64, flags uint8) []byte {
	dst = append(dst, byte(inner))
	dst = binary.LittleEndian.AppendUint64(dst, traceID)
	return append(dst, flags)
}

// ParseTracedHeader splits a MsgTraced payload into its envelope fields and
// the inner payload. The inner payload aliases p.
func ParseTracedHeader(p []byte) (inner MsgType, traceID uint64, flags uint8, rest []byte, err error) {
	if len(p) < TracedHeaderSize {
		return 0, 0, 0, nil, fmt.Errorf("wire: traced envelope needs %d header bytes, got %d", TracedHeaderSize, len(p))
	}
	inner = MsgType(p[0])
	traceID = binary.LittleEndian.Uint64(p[1:9])
	if traceID == 0 {
		return 0, 0, 0, nil, fmt.Errorf("wire: traced envelope carries zero trace ID")
	}
	return inner, traceID, p[9], p[TracedHeaderSize:], nil
}

// ParseTracedReplyHeader splits a MsgTracedReply payload into the inner
// reply type, the trace/report blob, and the inner reply payload. Both
// returned slices alias p.
func ParseTracedReplyHeader(p []byte) (inner MsgType, blob, rest []byte, err error) {
	if len(p) < TracedReplyHeaderSize {
		return 0, nil, nil, fmt.Errorf("wire: traced reply needs %d header bytes, got %d", TracedReplyHeaderSize, len(p))
	}
	inner = MsgType(p[0])
	n := binary.LittleEndian.Uint32(p[1:5])
	if int(n) > len(p)-TracedReplyHeaderSize {
		return 0, nil, nil, fmt.Errorf("wire: traced reply declares %d blob bytes, only %d remain", n, len(p)-TracedReplyHeaderSize)
	}
	return inner, p[TracedReplyHeaderSize : TracedReplyHeaderSize+int(n)], p[TracedReplyHeaderSize+int(n):], nil
}

// ErrCode classifies a MsgError frame so clients can distinguish their own
// mistakes from server-side load shedding or shutdown without parsing
// message text.
type ErrCode uint8

// Error codes carried in MsgError frames.
const (
	// CodeUnknown is an unclassified server error.
	CodeUnknown ErrCode = iota
	// CodeBadRequest: the request payload failed to decode or validate.
	// Retrying the same bytes will fail again.
	CodeBadRequest
	// CodeInternal: the server failed while processing a well-formed
	// request.
	CodeInternal
	// CodeOverloaded: the admission queue was full and the request was
	// shed. The request never entered the enclave; retry after backoff.
	CodeOverloaded
	// CodeDeadline: the request's serving deadline expired before a result
	// was produced.
	CodeDeadline
	// CodeShutdown: the server is draining and no longer accepts work.
	CodeShutdown
)

// String names the code for logs.
func (c ErrCode) String() string {
	switch c {
	case CodeBadRequest:
		return "bad-request"
	case CodeInternal:
		return "internal"
	case CodeOverloaded:
		return "overloaded"
	case CodeDeadline:
		return "deadline"
	case CodeShutdown:
		return "shutdown"
	default:
		return "unknown"
	}
}

// ServerError is a decoded MsgError frame: the failure a server reported
// for one request. Clients can branch on Code (e.g. back off on
// CodeOverloaded) via errors.As.
type ServerError struct {
	Code ErrCode
	Msg  string
}

// Error implements the error interface.
func (e *ServerError) Error() string {
	return fmt.Sprintf("wire: server error (%s): %s", e.Code, e.Msg)
}

// Temporary reports whether retrying later may succeed.
func (e *ServerError) Temporary() bool {
	return e.Code == CodeOverloaded || e.Code == CodeDeadline
}

// EncodeError renders a MsgError payload: [code u8][utf-8 message].
func EncodeError(code ErrCode, msg string) []byte {
	out := make([]byte, 0, 1+len(msg))
	out = append(out, byte(code))
	return append(out, msg...)
}

// DecodeError parses a MsgError payload into a *ServerError. An empty
// payload (never produced by this server, but legal on the wire) decodes
// to CodeUnknown.
func DecodeError(payload []byte) *ServerError {
	if len(payload) == 0 {
		return &ServerError{Code: CodeUnknown, Msg: "unspecified server error"}
	}
	return &ServerError{Code: ErrCode(payload[0]), Msg: string(payload[1:])}
}

// MaxFrameBytes bounds a frame (hybrid cipher images run to tens of MB:
// 784 pixels × 2 polys × n coefficients × 8 bytes).
const MaxFrameBytes = 1 << 30

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// WriteFrame writes [len u32][type u8][payload].
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload)+1 > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// PartialFrameError reports a streamed frame that failed after some of its
// bytes had already reached the transport: a truncated frame sits on the
// stream, so its framing is desynchronized for good and writing anything
// else (a MsgError, the next request) would land mid-frame and garble the
// peer. The only safe recovery is closing the connection.
type PartialFrameError struct{ Err error }

// Error implements the error interface.
func (e *PartialFrameError) Error() string {
	return fmt.Sprintf("wire: frame aborted after partial write: %v", e.Err)
}

// Unwrap exposes the underlying failure.
func (e *PartialFrameError) Unwrap() error { return e.Err }

// WriteFrameFunc writes a frame whose payload is produced by streaming
// directly into the connection instead of materializing a []byte first.
// payloadLen must be the exact number of bytes write will emit — cipher
// images know their encoded size up front, so multi-megabyte requests and
// replies never pass through an intermediate buffer copy. The writer handed
// to write is buffered; WriteFrameFunc flushes it before returning.
//
// Errors raised before anything is flushed leave w untouched and come back
// plain — the caller may still frame other messages. Once any byte has been
// flushed to w (the 32KB buffer flushes mid-payload on multi-MB frames), a
// failure is wrapped in *PartialFrameError: the stream now holds a truncated
// frame and must be closed, not written to again.
func WriteFrameFunc(w io.Writer, t MsgType, payloadLen int, write func(io.Writer) error) error {
	if payloadLen+1 > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(payloadLen+1))
	hdr[4] = byte(t)
	flushed := &countingWriter{w: w}
	bw := bufio.NewWriterSize(flushed, 32<<10)
	fail := func(err error) error {
		if flushed.n > 0 {
			return &PartialFrameError{Err: err}
		}
		return err
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail(fmt.Errorf("wire: writing frame header: %w", err))
	}
	cw := &countingWriter{w: bw}
	if err := write(cw); err != nil {
		return fail(fmt.Errorf("wire: writing streamed payload: %w", err))
	}
	if cw.n != int64(payloadLen) {
		return fail(fmt.Errorf("wire: streamed payload wrote %d bytes, declared %d", cw.n, payloadLen))
	}
	if err := bw.Flush(); err != nil {
		// A failed flush may have committed any prefix of the buffer.
		return &PartialFrameError{Err: fmt.Errorf("wire: flushing frame: %w", err)}
	}
	return nil
}

// countingWriter tracks bytes written so WriteFrameFunc can verify the
// declared length (a mismatch would desynchronize the framing for good).
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadFrame reads one frame, allocating a fresh payload buffer.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	return ReadFrameReuse(r, nil)
}

// ReadFrameReuse reads one frame into buf when its capacity suffices,
// allocating (and returning) a larger buffer otherwise. Connection loops
// keep one buffer per connection and pass it back each iteration, so a
// client streaming cipher images reuses a single payload allocation instead
// of paying tens of MB per request. The returned payload aliases buf and is
// only valid until the next ReadFrameReuse call with the same buffer.
func ReadFrameReuse(r io.Reader, buf []byte) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrameBytes {
		return 0, nil, ErrFrameTooLarge
	}
	t := MsgType(hdr[4])
	need := int(n - 1)
	var payload []byte
	if cap(buf) >= need {
		payload = buf[:need]
	} else {
		payload = make([]byte, need)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return t, payload, nil
}
