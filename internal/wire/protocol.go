// Package wire implements the network protocol between smart-device
// clients and the CAV edge server of §VII: a length-prefixed binary framing
// over TCP carrying the attestation handshake (challenge → quote with
// encrypted HE keys) and encrypted inference round trips.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType tags a protocol frame.
type MsgType uint8

// Protocol message types.
const (
	// MsgAttestRequest: client → server. Payload: 32-byte nonce followed by
	// the client's ephemeral ECDH public key.
	MsgAttestRequest MsgType = iota + 1
	// MsgAttestReply: server → client. Payload: serialized attestation
	// quote whose user data carries the encrypted HE key material.
	MsgAttestReply
	// MsgInferRequest: client → server. Payload: serialized cipher image.
	MsgInferRequest
	// MsgInferReply: server → client. Payload: 8-byte output scale (IEEE
	// float64 bits) followed by the encrypted logits batch.
	MsgInferReply
	// MsgError: server → client. Payload: UTF-8 error message.
	MsgError
	// MsgTrustBundle: server → client. Payload: enclave measurement (32
	// bytes) + platform attestation public key. Served for demo
	// first-use provisioning; production clients must pin these out of
	// band instead of trusting the network.
	MsgTrustBundle
	// MsgTrustRequest: client → server, empty payload.
	MsgTrustRequest
)

// MaxFrameBytes bounds a frame (hybrid cipher images run to tens of MB:
// 784 pixels × 2 polys × n coefficients × 8 bytes).
const MaxFrameBytes = 1 << 30

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// WriteFrame writes [len u32][type u8][payload].
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload)+1 > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrameBytes {
		return 0, nil, ErrFrameTooLarge
	}
	t := MsgType(hdr[4])
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return t, payload, nil
}
