package stats

import (
	"strings"
	"testing"
)

func TestEmptySampleSnapshotMarker(t *testing.T) {
	var s Sample
	snap := s.Snapshot()
	if !snap.Empty() {
		t.Fatal("zero sample not empty")
	}
	if got := snap.String(); got != "empty" {
		t.Fatalf("empty snapshot renders %q, want explicit marker", got)
	}
	s.Observe(2.5)
	snap = s.Snapshot()
	if snap.Empty() {
		t.Fatal("non-empty sample reported empty")
	}
	if got := snap.String(); !strings.Contains(got, "min=2.500") {
		t.Fatalf("snapshot renders %q", got)
	}
}

func TestRegistrySnapshotSkipsEmptyMinMax(t *testing.T) {
	reg := NewRegistry()
	reg.Sample("s.empty")          // registered, never observed
	reg.Histogram("h.empty")       // same for a histogram
	reg.Observe("s.full", 4)       // one observation
	reg.ObserveHistogram("h.full", 4)
	snap := reg.Snapshot()
	for _, absent := range []string{"s.empty.min", "s.empty.max", "s.empty.mean", "h.empty.p50", "h.empty.max"} {
		if _, ok := snap[absent]; ok {
			t.Fatalf("empty metric leaked %q = %g into the snapshot", absent, snap[absent])
		}
	}
	if snap["s.empty.count"] != 0 || snap["h.empty.count"] != 0 {
		t.Fatal("empty metrics should still report a zero count")
	}
	if snap["s.full.min"] != 4 || snap["h.full.p50"] == 0 {
		t.Fatalf("non-empty metrics missing: %v", snap)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Observe("s", 1)
	r.ObserveHistogram("h", 1)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry produced metrics")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil registry wrote prometheus output")
	}
}

func TestPromName(t *testing.T) {
	tests := map[string]string{
		"serve.queue.depth":   "serve_queue_depth",
		"engine.layer.act_ms": "engine_layer_act_ms",
		"9lives":              "_lives",
		"ok_name:x":           "ok_name:x",
	}
	for in, want := range tests {
		if got := PromName(in); got != want {
			t.Fatalf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.jobs.completed").Add(3)
	reg.Gauge("serve.queue.depth").Set(2)
	reg.Observe("serve.batch.occupancy", 5)
	for _, v := range []float64{0.5, 1.5, 2.5, 200} {
		reg.ObserveHistogram("engine.layer.conv_ms", v)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE serve_jobs_completed counter\nserve_jobs_completed 3\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n",
		"serve_batch_occupancy_count 1\n",
		"serve_batch_occupancy_sum 5\n",
		"# TYPE engine_layer_conv_ms histogram\n",
		"engine_layer_conv_ms_count 4\n",
		"engine_layer_conv_ms_sum 204.5\n",
		`engine_layer_conv_ms_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: every value ≤ 0.512 is 1 (only 0.5),
	// and the bucket holding 2.5 must already include 0.5 and 1.5.
	if !strings.Contains(out, `engine_layer_conv_ms_bucket{le="0.512"} 1`) {
		t.Fatalf("cumulative buckets wrong:\n%s", out)
	}
	if !strings.Contains(out, `engine_layer_conv_ms_bucket{le="4.096"} 3`) {
		t.Fatalf("cumulative buckets wrong:\n%s", out)
	}
}
