package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Std != 0 || s.CILow != 5 || s.CIHigh != 5 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population std 2, sample std 2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %g", s.Mean)
	}
	if !almostEqual(s.Std, 2.1380899352993947, 1e-9) {
		t.Fatalf("std = %g", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	if !(s.CILow < s.Mean && s.Mean < s.CIHigh) {
		t.Fatalf("CI [%g, %g] does not bracket mean", s.CILow, s.CIHigh)
	}
}

func TestSummarizeConstantSample(t *testing.T) {
	s := Summarize([]float64{3, 3, 3, 3})
	if s.Std != 0 {
		t.Fatalf("constant sample std = %g", s.Std)
	}
	if s.CILow != 3 || s.CIHigh != 3 {
		t.Fatalf("constant sample CI = [%g, %g]", s.CILow, s.CIHigh)
	}
}

func TestSummarizeCIBracketsMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.CILow <= s.Mean+1e-9 && s.Mean <= s.CIHigh+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.xs); got != tt.want {
				t.Fatalf("Median = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestTimeRepeated(t *testing.T) {
	calls := 0
	ds := TimeRepeated(5, func() { calls++ })
	if calls != 5 || len(ds) != 5 {
		t.Fatalf("calls=%d len=%d", calls, len(ds))
	}
	for _, d := range ds {
		if d < 0 {
			t.Fatalf("negative duration %g", d)
		}
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if !almostEqual(s.Mean, 2, 0.01) {
		t.Fatalf("mean = %g ms", s.Mean)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Fatal("empty string")
	}
}
