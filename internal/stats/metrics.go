package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Lightweight serving metrics: named counters, gauges and streaming
// samples. The serving pipeline (queue, scheduler, batching proxy, engine)
// records into a shared Registry; the server binary logs snapshots. The
// types are allocation-free on the hot path and safe for concurrent use.

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, in-flight jobs).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Sample accumulates a stream of observations into count/sum/min/max —
// enough for mean batch occupancy and latency reporting without retaining
// the series.
type Sample struct {
	mu       sync.Mutex
	n        int64
	sum      float64
	min, max float64
}

// Observe folds one observation into the sample.
func (s *Sample) Observe(x float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
}

// SampleSnapshot is a point-in-time copy of a Sample.
type SampleSnapshot struct {
	N        int64
	Sum      float64
	Min, Max float64
}

// Mean returns the sample mean (0 for an empty sample).
func (s SampleSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Empty reports whether the sample has no observations — in which case
// Min and Max are meaningless and must not be formatted as values.
func (s SampleSnapshot) Empty() bool { return s.N == 0 }

// String renders the snapshot for logs. An empty sample renders as an
// explicit marker instead of fabricated zero min/max.
func (s SampleSnapshot) String() string {
	if s.Empty() {
		return "empty"
	}
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f", s.N, s.Mean(), s.Min, s.Max)
}

// Snapshot copies the sample's accumulators.
func (s *Sample) Snapshot() SampleSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SampleSnapshot{N: s.n, Sum: s.sum, Min: s.min, Max: s.max}
}

// Registry is a named collection of metrics. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is safe to record into: every
// method no-ops, so instrumented code needs no nil checks.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	samples    map[string]*Sample
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		samples:    make(map[string]*Sample),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Sample returns the named sample, creating it on first use.
func (r *Registry) Sample(name string) *Sample {
	if r == nil {
		return &Sample{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.samples[name]
	if !ok {
		s = &Sample{}
		r.samples[name] = s
	}
	return s
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Observe records one observation into the named sample.
func (r *Registry) Observe(name string, x float64) {
	if r == nil {
		return
	}
	r.Sample(name).Observe(x)
}

// ObserveHistogram records one observation into the named histogram.
func (r *Registry) ObserveHistogram(name string, x float64) {
	if r == nil {
		return
	}
	r.Histogram(name).Observe(x)
}

// ObserveHistogramExemplar records one observation with an exemplar trace
// ID into the named histogram (0 = no exemplar).
func (r *Registry) ObserveHistogramExemplar(name string, x float64, exemplar uint64) {
	if r == nil {
		return
	}
	r.Histogram(name).ObserveExemplar(x, exemplar)
}

// Snapshot renders every metric to a flat name→value map: counters and
// gauges directly, samples as <name>.count / .mean / .min / .max, and
// histograms as <name>.count / .mean / .p50 / .p99 / .max. Empty samples
// and histograms emit only their zero count — never fabricated min/max
// values.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	samples := make(map[string]*Sample, len(r.samples))
	for k, v := range r.samples {
		samples[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		out[k] = float64(c.Value())
	}
	for k, g := range gauges {
		out[k] = float64(g.Value())
	}
	for k, s := range samples {
		snap := s.Snapshot()
		out[k+".count"] = float64(snap.N)
		if snap.Empty() {
			continue
		}
		out[k+".mean"] = snap.Mean()
		out[k+".min"] = snap.Min
		out[k+".max"] = snap.Max
	}
	for k, h := range histograms {
		snap := h.Snapshot()
		out[k+".count"] = float64(snap.Count)
		if snap.Empty() {
			continue
		}
		out[k+".mean"] = snap.Mean()
		out[k+".p50"] = snap.Quantile(0.5)
		out[k+".p99"] = snap.Quantile(0.99)
		out[k+".max"] = snap.Max
	}
	return out
}

// String renders a sorted, human-readable snapshot for logs.
func (r *Registry) String() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3f", k, snap[k])
	}
	return b.String()
}
