package stats

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// LintPrometheusText validates a Prometheus text-format (0.0.4) exposition:
// well-formed TYPE declarations, legal metric and label names, parseable
// sample values, no duplicate TYPE lines, no duplicate series, and no
// samples outside a declared family. The exposition tests run every
// /metrics surface through this so a malformed or colliding series fails in
// CI rather than in the operator's scraper.
func LintPrometheusText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := make(map[string]string)     // family -> type
	sampled := make(map[string]bool)     // family has emitted samples
	sampleNames := make(map[string]bool) // raw sample names seen
	series := make(map[string]bool)      // name{labels} seen
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			family, typ, ok := parseTypeLine(line)
			if !ok {
				continue // HELP and free-form comments
			}
			if !metricNameRe.MatchString(family) {
				return fmt.Errorf("line %d: illegal metric name %q", lineNo, family)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q for %q", lineNo, typ, family)
			}
			if _, dup := types[family]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, family)
			}
			if sampled[family] {
				return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, family)
			}
			if typ == "histogram" || typ == "summary" {
				// A late declaration must not capture component names some
				// other family already emitted (a_count vs. summary "a").
				for _, suffix := range []string{"_bucket", "_sum", "_count"} {
					if sampleNames[family+suffix] {
						return fmt.Errorf("line %d: TYPE for %q after samples of %q", lineNo, family, family+suffix)
					}
				}
			}
			types[family] = typ
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, value)
		}
		family, ok := familyOf(name, types)
		if !ok {
			return fmt.Errorf("line %d: sample %q outside any declared family", lineNo, name)
		}
		sampled[family] = true
		sampleNames[name] = true
		key := name + "{" + labels + "}"
		if series[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		series[key] = true
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stats: scanning exposition: %w", err)
	}
	return nil
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseTypeLine recognises "# TYPE <name> <type>".
func parseTypeLine(line string) (family, typ string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "#" || fields[1] != "TYPE" {
		return "", "", false
	}
	return fields[2], fields[3], true
}

// familyOf resolves a sample name to its declared family, accepting the
// histogram/summary component suffixes plus the registry's _min/_max
// companion gauges.
func familyOf(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if typ, ok := types[base]; ok && (typ == "histogram" || typ == "summary") {
			return base, true
		}
	}
	return "", false
}

// parseSampleLine splits "name{labels} value [timestamp]" with quote-aware
// label handling, validating label names and escape sequences.
func parseSampleLine(line string) (name, labels, value string, err error) {
	rest := line
	brace := quoteAwareIndex(rest, '{')
	sp := strings.IndexAny(rest, " \t")
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		end, lerr := labelBlockEnd(rest[brace:])
		if lerr != nil {
			return "", "", "", lerr
		}
		labels = rest[brace+1 : brace+end]
		if err := validateLabels(labels); err != nil {
			return "", "", "", err
		}
		rest = rest[brace+end+1:]
	} else {
		if sp < 0 {
			return "", "", "", fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !metricNameRe.MatchString(name) {
		return "", "", "", fmt.Errorf("illegal metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", fmt.Errorf("sample %q needs a value and optional timestamp", line)
	}
	return name, labels, fields[0], nil
}

// quoteAwareIndex finds c outside double quotes.
func quoteAwareIndex(s string, c byte) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == c:
			return i
		}
	}
	return -1
}

// labelBlockEnd returns the offset of the matching '}' in a string starting
// at '{'.
func labelBlockEnd(s string) (int, error) {
	end := quoteAwareIndex(s[1:], '}')
	if end < 0 {
		return 0, fmt.Errorf("unterminated label block in %q", s)
	}
	return end + 1, nil
}

// validateLabels checks each label pair: legal name, quoted value, legal
// escapes (\\, \", \n).
func validateLabels(labels string) error {
	rest := labels
	for strings.TrimSpace(rest) != "" {
		eq := quoteAwareIndex(rest, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", rest)
		}
		lname := strings.TrimSpace(rest[:eq])
		if !labelNameRe.MatchString(lname) {
			return fmt.Errorf("illegal label name %q", lname)
		}
		rest = strings.TrimSpace(rest[eq+1:])
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("label %q value must be quoted", lname)
		}
		i := 1
		for ; i < len(rest); i++ {
			if rest[i] == '\\' {
				if i+1 >= len(rest) || !strings.ContainsRune(`\"n`, rune(rest[i+1])) {
					return fmt.Errorf("label %q has illegal escape", lname)
				}
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
		}
		if i >= len(rest) {
			return fmt.Errorf("label %q value unterminated", lname)
		}
		rest = rest[i+1:]
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
	}
	return nil
}
