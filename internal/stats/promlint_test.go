package stats

import (
	"strings"
	"testing"
)

func TestLintPrometheusTextAccepts(t *testing.T) {
	good := `# TYPE serve_jobs_total counter
serve_jobs_total 42
# HELP free-form comment survives
# TYPE queue_depth gauge
queue_depth -3
# TYPE lat_ms histogram
lat_ms_bucket{le="0.5"} 1
lat_ms_bucket{le="+Inf"} 2
lat_ms_sum 1.25
lat_ms_count 2
# TYPE occupancy summary
occupancy_count 9
occupancy_sum 27
# TYPE build_info gauge
build_info{version="v1.2.3",note="a \"quoted\" value\n"} 1
`
	if err := LintPrometheusText(strings.NewReader(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestLintPrometheusTextRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate type":           "# TYPE a counter\na 1\n# TYPE a counter\n",
		"duplicate series":         "# TYPE a counter\na 1\na 2\n",
		"duplicate labeled series": "# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n",
		"illegal metric name":      "# TYPE 9bad counter\n9bad 1\n",
		"illegal sample name":      "# TYPE a counter\na 1\nb-ad 2\n",
		"unknown type":             "# TYPE a widget\na 1\n",
		"type after samples":       "# TYPE a_count counter\na_count 1\n# TYPE a summary\n",
		"undeclared family":        "x_total 5\n",
		"bad value":                "# TYPE a gauge\na notanumber\n",
		"bad label name":           "# TYPE a gauge\na{9x=\"1\"} 1\n",
		"unquoted label value":     "# TYPE a gauge\na{x=1} 1\n",
		"illegal escape":           "# TYPE a gauge\na{x=\"\\q\"} 1\n",
		"unterminated labels":      "# TYPE a gauge\na{x=\"1\" 1\n",
	}
	for name, text := range cases {
		if err := LintPrometheusText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted %q", name, text)
		}
	}
}

// TestRegistryExpositionLints renders a populated registry — every metric
// kind, including the dotted names the serving stack uses — and requires
// the result to lint clean.
func TestRegistryExpositionLints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.jobs.submitted").Add(3)
	reg.Gauge("serve.queue.depth").Set(2)
	reg.Observe("noise.budget_remaining_bits", 17.25)
	reg.Observe("layer.03_act.budget_min_bits", 14.5)
	reg.ObserveHistogram("engine.layer.conv_ms", 12.5)
	reg.ObserveHistogram("layer.00_conv.wall_ms", 11.0)
	reg.Sample("empty.sample") // renders count/sum only
	var b strings.Builder
	reg.WritePrometheus(&b)
	if err := LintPrometheusText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("registry exposition fails lint: %v\n%s", err, b.String())
	}
}
