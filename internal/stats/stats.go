// Package stats provides the summary statistics the paper reports for every
// measurement table — mean, standard deviation, and a 96% confidence
// interval — plus a repeated-measurement harness used by the benchmark
// binaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// z96 is the two-sided z-score for a 96% confidence interval.
const z96 = 2.0537489106318225

// Summary holds the statistics of a sample, in the units of the input.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	CILow  float64
	CIHigh float64
	Min    float64
	Max    float64
}

// Summarize computes mean, sample standard deviation, and the 96% CI of the
// mean for xs. It returns a zero Summary for an empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	sum := 0.0
	minV, maxV := xs[0], xs[0]
	for _, x := range xs {
		sum += x
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean, CILow: mean, CIHigh: mean, Min: minV, Max: maxV}
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n-1))
	half := z96 * std / math.Sqrt(float64(n))
	return Summary{
		N:      n,
		Mean:   mean,
		Std:    std,
		CILow:  mean - half,
		CIHigh: mean + half,
		Min:    minV,
		Max:    maxV,
	}
}

// String formats the summary the way the paper's tables do:
// "mean std [cilow, cihigh]".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f] (n=%d)", s.Mean, s.Std, s.CILow, s.CIHigh, s.N)
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := make([]float64, n)
	copy(c, xs)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// TimeRepeated runs fn reps times and returns per-run durations as
// milliseconds, the unit the paper's tables use.
func TimeRepeated(reps int, fn func()) []float64 {
	out := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		out = append(out, float64(time.Since(start).Microseconds())/1000.0)
	}
	return out
}

// SummarizeDurations converts durations to milliseconds and summarizes.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d.Microseconds()) / 1000.0
	}
	return Summarize(xs)
}
