package stats

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Histogram accumulates observations into log-scaled buckets, replacing
// bare Sample on serving hot paths: it answers quantile queries (which a
// count/sum/min/max accumulator cannot) while staying lock-free on
// Observe. Buckets double from 1e-3 to ~134e3 in the caller's unit —
// for latency in milliseconds that spans 1 µs to ~2 minutes, the full
// range between a single homomorphic add and a pathological batched
// inference.

// histMinBound is the upper bound of the first bucket.
const histMinBound = 1e-3

// histBucketCount is the number of bounded buckets; one more unbounded
// bucket catches overflow.
const histBucketCount = 28

// histBounds are the inclusive upper bounds of the bounded buckets:
// histMinBound * 2^i.
var histBounds = func() []float64 {
	b := make([]float64, histBucketCount)
	v := histMinBound
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// HistogramBounds returns the bucket upper bounds (shared by every
// histogram; callers must not mutate).
func HistogramBounds() []float64 { return histBounds }

// Histogram is safe for concurrent use; Observe is wait-free except for a
// one-time init and bounded CAS loops on sum/min/max.
type Histogram struct {
	once    sync.Once
	counts  [histBucketCount + 1]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

func (h *Histogram) init() {
	h.once.Do(func() {
		h.minBits.Store(math.Float64bits(math.Inf(1)))
		h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	})
}

// bucketIndex returns the bucket for x: the first bucket whose upper
// bound is >= x, or the overflow bucket.
func bucketIndex(x float64) int {
	if x <= histBounds[0] {
		return 0
	}
	return sort.SearchFloat64s(histBounds, x)
}

// Observe folds one observation into the histogram. NaN is dropped.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.init()
	h.counts[bucketIndex(x)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, x)
	atomicMinFloat(&h.minBits, x)
	atomicMaxFloat(&h.maxBits, x)
}

func atomicAddFloat(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if x >= math.Float64frombits(old) || bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if x <= math.Float64frombits(old) || bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Counts holds per-bucket (not cumulative) counts; the final entry is
	// the unbounded overflow bucket.
	Counts []uint64
	Count  uint64
	Sum    float64
	// Min and Max are the extreme observed values (undefined when Count
	// is 0; use Empty).
	Min, Max float64
}

// Snapshot copies the histogram's accumulators. The copy is not atomic
// across buckets — concurrent Observes may straddle it — but each bucket
// and the totals are individually consistent, which is all quantile
// estimation needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.init()
	s := HistogramSnapshot{
		Counts: make([]uint64, histBucketCount+1),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Min:    math.Float64frombits(h.minBits.Load()),
		Max:    math.Float64frombits(h.maxBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Empty reports whether the histogram has no observations.
func (s HistogramSnapshot) Empty() bool { return s.Count == 0 }

// Mean returns the mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket holding the target rank, clamped to the observed
// [Min, Max]. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			var lo float64
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := s.Max
			if i < len(histBounds) {
				hi = histBounds[i]
			}
			est := lo + (hi-lo)*(target-cum)/float64(c)
			return math.Max(s.Min, math.Min(s.Max, est))
		}
		cum = next
	}
	return s.Max
}
