package stats

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Histogram accumulates observations into log-scaled buckets, replacing
// bare Sample on serving hot paths: it answers quantile queries (which a
// count/sum/min/max accumulator cannot) while staying lock-free on
// Observe. Buckets double from 1e-3 to ~134e3 in the caller's unit —
// for latency in milliseconds that spans 1 µs to ~2 minutes, the full
// range between a single homomorphic add and a pathological batched
// inference.

// histMinBound is the upper bound of the first bucket.
const histMinBound = 1e-3

// histBucketCount is the number of bounded buckets; one more unbounded
// bucket catches overflow.
const histBucketCount = 28

// histBounds are the inclusive upper bounds of the bounded buckets:
// histMinBound * 2^i.
var histBounds = func() []float64 {
	b := make([]float64, histBucketCount)
	v := histMinBound
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// HistogramBounds returns the bucket upper bounds (shared by every
// histogram; callers must not mutate).
func HistogramBounds() []float64 { return histBounds }

// Histogram is safe for concurrent use; Observe is wait-free except for a
// one-time init and bounded CAS loops on sum/min/max.
type Histogram struct {
	once    sync.Once
	counts  [histBucketCount + 1]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	// exemplars holds, per bucket, the trace ID of the most recent
	// observation that landed there with a nonzero exemplar — linking a bad
	// latency bucket to a concrete trace in the flight recorder.
	exemplars [histBucketCount + 1]atomic.Uint64
}

func (h *Histogram) init() {
	h.once.Do(func() {
		h.minBits.Store(math.Float64bits(math.Inf(1)))
		h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	})
}

// bucketIndex returns the bucket for x: the first bucket whose upper
// bound is >= x, or the overflow bucket.
func bucketIndex(x float64) int {
	if x <= histBounds[0] {
		return 0
	}
	return sort.SearchFloat64s(histBounds, x)
}

// Observe folds one observation into the histogram. NaN is dropped.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.init()
	h.counts[bucketIndex(x)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, x)
	atomicMinFloat(&h.minBits, x)
	atomicMaxFloat(&h.maxBits, x)
}

// ObserveExemplar is Observe plus an exemplar: a trace ID (or any nonzero
// correlation key) remembered for the bucket x lands in, last-writer-wins.
// A zero exemplar degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(x float64, exemplar uint64) {
	if math.IsNaN(x) {
		return
	}
	if exemplar != 0 {
		h.exemplars[bucketIndex(x)].Store(exemplar)
	}
	h.Observe(x)
}

func atomicAddFloat(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if x >= math.Float64frombits(old) || bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if x <= math.Float64frombits(old) || bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Counts holds per-bucket (not cumulative) counts; the final entry is
	// the unbounded overflow bucket.
	Counts []uint64
	Count  uint64
	Sum    float64
	// Min and Max are the extreme observed values (undefined when Count
	// is 0; use Empty).
	Min, Max float64
	// Exemplars holds per-bucket exemplar trace IDs (0 = none recorded);
	// same indexing as Counts.
	Exemplars []uint64
}

// Snapshot copies the histogram's accumulators. The copy is not atomic
// across buckets — concurrent Observes may straddle it — but each bucket
// and the totals are individually consistent, which is all quantile
// estimation needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.init()
	s := HistogramSnapshot{
		Counts:    make([]uint64, histBucketCount+1),
		Count:     h.count.Load(),
		Sum:       math.Float64frombits(h.sumBits.Load()),
		Min:       math.Float64frombits(h.minBits.Load()),
		Max:       math.Float64frombits(h.maxBits.Load()),
		Exemplars: make([]uint64, histBucketCount+1),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// Empty reports whether the histogram has no observations.
func (s HistogramSnapshot) Empty() bool { return s.Count == 0 }

// Mean returns the mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// CountAtMost returns how many observations fell into buckets whose upper
// bound is <= bound — the "good event" count for a latency SLO with that
// threshold. The bound snaps down to the nearest bucket boundary, so pick
// SLO thresholds on (or near) the power-of-two bucket grid for exact
// accounting; off-grid thresholds under-count good events (conservative).
func (s HistogramSnapshot) CountAtMost(bound float64) uint64 {
	var cum uint64
	for i, c := range s.Counts {
		if i < len(histBounds) && histBounds[i] <= bound {
			cum += c
		}
	}
	return cum
}

// ExemplarAbove returns the exemplar trace ID recorded in the highest
// nonempty bucket strictly above bound — a concrete slow request behind an
// SLO breach — or 0 when none was recorded.
func (s HistogramSnapshot) ExemplarAbove(bound float64) uint64 {
	if len(s.Exemplars) == 0 {
		return 0
	}
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if i < len(histBounds) && histBounds[i] <= bound {
			break
		}
		if s.Exemplars[i] != 0 {
			return s.Exemplars[i]
		}
	}
	return 0
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket holding the target rank, clamped to the observed
// [Min, Max]. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			var lo float64
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := s.Max
			if i < len(histBounds) {
				hi = histBounds[i]
			}
			est := lo + (hi-lo)*(target-cum)/float64(c)
			return math.Max(s.Min, math.Min(s.Max, est))
		}
		cum = next
	}
	return s.Max
}
