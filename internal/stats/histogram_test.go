package stats

import (
	"math"
	mrand "math/rand/v2"
	"sync"
	"testing"
)

func TestBucketIndexBoundaries(t *testing.T) {
	bounds := HistogramBounds()
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d", got)
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d", got)
	}
	for i, b := range bounds {
		if got := bucketIndex(b); got != i {
			t.Fatalf("bucketIndex(bound %g) = %d, want %d", b, got, i)
		}
	}
	// Just past a bound lands in the next bucket.
	if got := bucketIndex(bounds[3] * 1.0001); got != 4 {
		t.Fatalf("bucketIndex(just past bound 3) = %d", got)
	}
	// Beyond the last bound lands in the overflow bucket.
	if got := bucketIndex(bounds[len(bounds)-1] * 2); got != len(bounds) {
		t.Fatalf("overflow bucketIndex = %d, want %d", got, len(bounds))
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if !s.Empty() || s.Count != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramBasicAccumulators(t *testing.T) {
	var h Histogram
	for _, x := range []float64{1, 2, 3, 4} {
		h.Observe(x)
	}
	h.Observe(math.NaN()) // dropped
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 10 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Mean() != 2.5 {
		t.Fatalf("mean = %g", s.Mean())
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	// Uniform on (0, 100]: quantile(q) ≈ 100q. Log buckets are coarse, but
	// linear interpolation within a bucket is exact in expectation for a
	// uniform distribution, so tolerate 10% of the range.
	var h Histogram
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i) * 0.01)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		want := 100 * q
		if math.Abs(got-want) > 10 {
			t.Fatalf("uniform q%.2f = %g, want ≈ %g", q, got, want)
		}
	}
	if s.Quantile(0) != s.Min || s.Quantile(1) != s.Max {
		t.Fatalf("extreme quantiles: q0=%g min=%g q1=%g max=%g",
			s.Quantile(0), s.Min, s.Quantile(1), s.Max)
	}
}

func TestHistogramQuantileExponential(t *testing.T) {
	// Exponential with mean 5: median = 5·ln2 ≈ 3.466, p90 ≈ 11.51.
	// Deterministic sampling via the inverse CDF over a uniform grid.
	var h Histogram
	n := 20000
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / float64(n)
		h.Observe(-5 * math.Log(1-u))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 5 * math.Ln2, 1.0},
		{0.9, -5 * math.Log(0.1), 3.0},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("exp q%.2f = %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	r := mrand.New(mrand.NewPCG(7, 9))
	for i := 0; i < 5000; i++ {
		h.Observe(math.Exp(r.NormFloat64() * 2))
	}
	s := h.Snapshot()
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev-1e-9 {
			t.Fatalf("quantile not monotone at q=%.2f: %g < %g", q, v, prev)
		}
		if v < s.Min || v > s.Max {
			t.Fatalf("quantile %g outside [%g, %g]", v, s.Min, s.Max)
		}
		prev = v
	}
}

func TestHistogramConcurrentWriters(t *testing.T) {
	// Run with -race (the Makefile tier-1.5 target): concurrent Observe
	// into one histogram and one registry must be data-race free and lose
	// no observations.
	reg := NewRegistry()
	const writers, perWriter = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := mrand.New(mrand.NewPCG(seed, seed^0xabc))
			for i := 0; i < perWriter; i++ {
				reg.ObserveHistogram("lat_ms", r.Float64()*100)
				reg.Counter("ops").Inc()
				reg.Observe("occupancy", float64(i%7))
				reg.Gauge("depth").Set(int64(i))
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	s := reg.Histogram("lat_ms").Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", s.Count, writers*perWriter)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	if got := reg.Counter("ops").Value(); got != writers*perWriter {
		t.Fatalf("counter = %d", got)
	}
	if got := reg.Sample("occupancy").Snapshot().N; got != writers*perWriter {
		t.Fatalf("sample n = %d", got)
	}
	if s.Min < 0 || s.Max > 100 || s.Min > s.Max {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
}
