package stats

import "testing"

func TestObserveExemplar(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(5.0, 1001)   // ~5ms bucket
	h.ObserveExemplar(500.0, 1002) // ~500ms bucket
	h.ObserveExemplar(2.0, 0)      // zero exemplar: plain observation
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d, want 3", s.Count)
	}
	if len(s.Exemplars) != len(s.Counts) {
		t.Fatalf("exemplars %d vs counts %d", len(s.Exemplars), len(s.Counts))
	}
	var found []uint64
	for _, e := range s.Exemplars {
		if e != 0 {
			found = append(found, e)
		}
	}
	if len(found) != 2 {
		t.Fatalf("stored exemplars %v, want 2", found)
	}
}

func TestCountAtMost(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.5, 2.0, 50.0, 3000.0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		bound float64
		want  uint64
	}{
		{0.9, 1},      // 0.5 lands in the 0.512 bucket
		{4.0, 2},      // + 2.0 (bucket 2.048)
		{100.0, 3},    // + 50.0 (bucket 65.536)
		{100000.0, 4}, // + 3000 (bucket 4194.304)
	}
	for _, c := range cases {
		if got := s.CountAtMost(c.bound); got != c.want {
			t.Errorf("CountAtMost(%g) = %d, want %d", c.bound, got, c.want)
		}
	}
	// Conservative on off-grid thresholds: a bound inside a bucket does not
	// claim that bucket's observations.
	var h2 Histogram
	h2.Observe(1.5) // bucket (1.024, 2.048]
	if got := h2.Snapshot().CountAtMost(1.7); got != 0 {
		t.Errorf("off-grid CountAtMost = %d, want 0 (conservative)", got)
	}
	if got := h2.Snapshot().CountAtMost(2.048); got != 1 {
		t.Errorf("on-grid CountAtMost = %d, want 1", got)
	}
}

func TestExemplarAbove(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(0.5, 11)
	h.ObserveExemplar(100.0, 22)
	s := h.Snapshot()
	if got := s.ExemplarAbove(10.0); got != 22 {
		t.Errorf("ExemplarAbove(10) = %d, want 22", got)
	}
	if got := s.ExemplarAbove(1e9); got != 0 {
		t.Errorf("ExemplarAbove(huge) = %d, want 0", got)
	}
	// A snapshot without exemplars (e.g. decoded from older data) is inert.
	var empty HistogramSnapshot
	if empty.ExemplarAbove(1) != 0 || empty.CountAtMost(1) != 0 {
		t.Error("empty snapshot not inert")
	}
}

func TestRegistryObserveHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	r.ObserveHistogramExemplar("lat_ms", 250.0, 777)
	s := r.Histogram("lat_ms").Snapshot()
	if s.Count != 1 {
		t.Fatalf("count %d", s.Count)
	}
	if got := s.ExemplarAbove(100.0); got != 777 {
		t.Errorf("exemplar %d, want 777", got)
	}
	var nilReg *Registry
	nilReg.ObserveHistogramExemplar("x", 1, 1) // must not panic
}
