package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus text-format (version 0.0.4) rendering of a Registry, so the
// admin endpoint's /metrics is scrapeable by a stock Prometheus without
// any client-library dependency. Metric names are sanitized to the
// Prometheus charset: "serve.queue.depth" becomes "serve_queue_depth".

// PromName sanitizes a registry metric name into a Prometheus metric name.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a value the way Prometheus expects (+Inf/-Inf/NaN
// spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus renders every metric in the registry in Prometheus text
// format: counters and gauges typed directly, samples as
// <name>_count/_sum (plus _min/_max gauges when non-empty), histograms as
// native Prometheus histograms with cumulative le buckets.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	samples := make(map[string]*Sample, len(r.samples))
	for k, v := range r.samples {
		samples[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	for _, k := range sortedKeys(counters) {
		n := PromName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counters[k].Value())
	}
	for _, k := range sortedKeys(gauges) {
		n := PromName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, gauges[k].Value())
	}
	for _, k := range sortedKeys(samples) {
		n := PromName(k)
		snap := samples[k].Snapshot()
		fmt.Fprintf(w, "# TYPE %s summary\n", n)
		fmt.Fprintf(w, "%s_count %d\n", n, snap.N)
		fmt.Fprintf(w, "%s_sum %s\n", n, promFloat(snap.Sum))
		if !snap.Empty() {
			fmt.Fprintf(w, "# TYPE %s_min gauge\n%s_min %s\n", n, n, promFloat(snap.Min))
			fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %s\n", n, n, promFloat(snap.Max))
		}
	}
	for _, k := range sortedKeys(histograms) {
		n := PromName(k)
		snap := histograms[k].Snapshot()
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(histBounds) {
				le = promFloat(histBounds[i])
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %s\n", n, promFloat(snap.Sum))
		fmt.Fprintf(w, "%s_count %d\n", n, snap.Count)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
