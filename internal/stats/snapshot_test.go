package stats

import (
	"testing"
)

func TestTypedSnapshotSplitsKinds(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(7)
	reg.Gauge("g").Set(42)
	reg.Observe("s", 1.5)
	reg.Observe("s", 2.5)
	reg.ObserveHistogram("h_ms", 3.0)

	snap := reg.TypedSnapshot()
	if snap.Counters["c"] != 7 {
		t.Errorf("counter c = %d, want 7", snap.Counters["c"])
	}
	if snap.Gauges["g"] != 42 {
		t.Errorf("gauge g = %d, want 42", snap.Gauges["g"])
	}
	if sm := snap.Samples["s"]; sm.N != 2 || sm.Sum != 4.0 {
		t.Errorf("sample s = %+v, want N=2 Sum=4", sm)
	}
	if h := snap.Histograms["h_ms"]; h.Count != 1 || h.Sum != 3.0 {
		t.Errorf("histogram h_ms = %+v, want Count=1 Sum=3", h)
	}

	// The snapshot is a copy: later observations must not leak in.
	reg.Counter("c").Inc()
	reg.ObserveHistogram("h_ms", 9.0)
	if snap.Counters["c"] != 7 || snap.Histograms["h_ms"].Count != 1 {
		t.Error("snapshot mutated by later observations")
	}
}

func TestTypedSnapshotNilRegistry(t *testing.T) {
	var reg *Registry
	snap := reg.TypedSnapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Samples == nil || snap.Histograms == nil {
		t.Fatal("nil registry snapshot must still carry empty maps")
	}
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Samples)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestHistogramDeltaWindowQuantiles(t *testing.T) {
	reg := NewRegistry()
	// Epoch 1: a hundred fast observations.
	for i := 0; i < 100; i++ {
		reg.ObserveHistogram("h_ms", 1.0)
	}
	prev := reg.Histogram("h_ms").Snapshot()

	// Epoch 2: fifty slow observations — the window must see only these.
	for i := 0; i < 50; i++ {
		reg.ObserveHistogram("h_ms", 500.0)
	}
	cur := reg.Histogram("h_ms").Snapshot()
	d := cur.DeltaFrom(prev)
	if d.Count != 50 {
		t.Fatalf("window count %d, want 50", d.Count)
	}
	if d.Sum != 50*500.0 {
		t.Errorf("window sum %g, want %g", d.Sum, 50*500.0)
	}
	// Every windowed observation was 500ms; the p50 must land in that
	// bucket's range, far from the cumulative p50 (which is 1ms-dominated).
	if p50 := d.Quantile(0.5); p50 < 250 || p50 > 1000 {
		t.Errorf("window p50 %g, want within the 500ms bucket", p50)
	}
	if cum := cur.Quantile(0.5); cum > 10 {
		t.Errorf("cumulative p50 %g, expected to stay fast (sanity)", cum)
	}
	if d.Min <= 0 || d.Min > 500 {
		t.Errorf("window min %g, want a positive bound at or under 500", d.Min)
	}
	if d.Max < 500 {
		t.Errorf("window max %g, want >= 500", d.Max)
	}
}

func TestHistogramDeltaEmptyWindow(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 10; i++ {
		reg.ObserveHistogram("h_ms", 2.0)
	}
	snap := reg.Histogram("h_ms").Snapshot()
	d := snap.DeltaFrom(snap)
	if !d.Empty() {
		t.Fatalf("delta of identical snapshots not empty: %+v", d)
	}
	if q := d.Quantile(0.99); q != 0 {
		t.Errorf("empty-window p99 = %g, want 0", q)
	}
	if m := d.Mean(); m != 0 {
		t.Errorf("empty-window mean = %g, want 0", m)
	}
}

func TestHistogramDeltaTreatsRegressionAsRestart(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 30; i++ {
		reg.ObserveHistogram("h_ms", 4.0)
	}
	big := reg.Histogram("h_ms").Snapshot()

	fresh := NewRegistry()
	for i := 0; i < 5; i++ {
		fresh.ObserveHistogram("h_ms", 4.0)
	}
	cur := fresh.Histogram("h_ms").Snapshot()

	// prev has more observations than cur: a restarted process. The delta
	// must cover all of cur, not go negative or wrap.
	d := cur.DeltaFrom(big)
	if d.Count != 5 {
		t.Fatalf("restart delta count %d, want 5", d.Count)
	}
	if d.Sum != 20.0 {
		t.Errorf("restart delta sum %g, want 20", d.Sum)
	}
}

func TestHistogramDeltaLayoutMismatch(t *testing.T) {
	reg := NewRegistry()
	reg.ObserveHistogram("h_ms", 1.0)
	cur := reg.Histogram("h_ms").Snapshot()
	// A prev with a foreign bucket layout must be ignored, not indexed.
	prev := HistogramSnapshot{Counts: []uint64{1, 2, 3}, Count: 6}
	d := cur.DeltaFrom(prev)
	if d.Count != cur.Count {
		t.Fatalf("mismatched-layout delta count %d, want %d", d.Count, cur.Count)
	}
}
