package stats

// Typed registry snapshots for the diagnostics layer: where Snapshot()
// flattens everything to floats for logs, TypedSnapshot keeps the metric
// kinds apart so a consumer can compute deltas correctly — counters as
// rates, histograms as windowed bucket subtractions (and from those,
// quantiles of just the window).

// RegistrySnapshot is a point-in-time typed copy of every metric in a
// Registry.
type RegistrySnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Samples    map[string]SampleSnapshot
	Histograms map[string]HistogramSnapshot
}

// TypedSnapshot copies every metric, keyed by registered name and split by
// kind. Nil-safe: a nil registry yields empty maps.
func (r *Registry) TypedSnapshot() RegistrySnapshot {
	snap := RegistrySnapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Samples:    make(map[string]SampleSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	samples := make(map[string]*Sample, len(r.samples))
	for k, v := range r.samples {
		samples[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, s := range samples {
		snap.Samples[k] = s.Snapshot()
	}
	for k, h := range histograms {
		snap.Histograms[k] = h.Snapshot()
	}
	return snap
}

// DeltaFrom returns a histogram snapshot covering only the observations
// that arrived after prev was taken: per-bucket count subtraction, so
// Quantile on the result answers "what was the p99 of this window" rather
// than of the whole process lifetime. A prev that does not look like an
// earlier reading of the same histogram (more observations than cur, or a
// different bucket layout) is treated as a restart and ignored. The
// window's Min/Max are bounded by the edge buckets' bounds (the exact
// extremes of a window are not recoverable from cumulative counters);
// Quantile stays within them. An empty window yields an Empty() snapshot
// whose Quantile is 0.
func (s HistogramSnapshot) DeltaFrom(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) != len(s.Counts) || prev.Count > s.Count {
		prev = HistogramSnapshot{}
	}
	d := HistogramSnapshot{
		Counts:    make([]uint64, len(s.Counts)),
		Exemplars: append([]uint64(nil), s.Exemplars...),
	}
	lo, hi := -1, -1
	for i := range s.Counts {
		var p uint64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		if s.Counts[i] <= p {
			continue
		}
		d.Counts[i] = s.Counts[i] - p
		d.Count += d.Counts[i]
		if lo < 0 {
			lo = i
		}
		hi = i
	}
	if d.Count == 0 {
		return HistogramSnapshot{Counts: d.Counts, Exemplars: d.Exemplars}
	}
	if ds := s.Sum - prev.Sum; ds > 0 {
		d.Sum = ds
	}
	if lo > 0 {
		d.Min = histBounds[lo-1]
	}
	if hi < len(histBounds) {
		d.Max = histBounds[hi]
	} else {
		d.Max = s.Max
	}
	return d
}
