package core

import (
	"fmt"

	"hesgx/internal/encoding"
	"hesgx/internal/he"
	"hesgx/internal/nn"
)

// SIMD batching (§VIII): with a batching-capable plaintext modulus
// (prime t ≡ 1 mod 2n), every ciphertext carries n CRT slots, so the
// framework packs slot s of every ciphertext with image s of a batch. The
// homomorphic linear algebra is slot-wise, so one pass of the engine
// processes up to n images; the enclave decodes slot vectors instead of
// constant coefficients. The paper's discussion projects up to n× the
// throughput — the SIMD benches measure the realized factor.

// SIMDBatchingModulus returns a batching-capable plaintext modulus of the
// requested bit length for degree n.
func SIMDBatchingModulus(n, bits int) (uint64, error) {
	return encoding.BatchingPlaintextModulus(n, bits)
}

// DefaultSIMDParameters returns parameters whose plaintext modulus
// supports slot packing at the default hybrid tier.
func DefaultSIMDParameters() (he.Parameters, error) {
	t, err := SIMDBatchingModulus(2048, 25)
	if err != nil {
		return he.Parameters{}, fmt.Errorf("core: SIMD plaintext modulus: %w", err)
	}
	params, err := he.DefaultParametersLowLift(2048, t)
	if err != nil {
		return he.Parameters{}, fmt.Errorf("core: default SIMD parameters: %w", err)
	}
	return params, nil
}

// SlotCapacity reports how many CRT slot lanes the parameters support; the
// error explains why batching is unsupported (the plaintext modulus must be
// a prime t ≡ 1 mod 2n). Serving stacks use this to decide whether lane
// packing can be offered at all.
func SlotCapacity(params he.Parameters) (int, error) {
	be, err := encoding.NewBatchEncoder(params)
	if err != nil {
		return 0, err
	}
	return be.SlotCount(), nil
}

// EncryptImages is the unified encryption entrypoint: it picks the
// encoding from the batch size and the parameters. A single image encrypts
// scalar (one pixel per ciphertext, Table II); multiple images slot-pack
// into shared ciphertexts — ciphertext p holds pixel p of every image in
// its CRT slots, so one engine pass serves the whole batch (§VIII). The
// returned CipherImage records the lane count; slot packing requires a
// batching-capable plaintext modulus (prime t ≡ 1 mod 2n) and at most
// n lanes.
func (c *Client) EncryptImages(imgs []*nn.Tensor, pixelScale uint64) (*CipherImage, error) {
	if !c.Ready() {
		return nil, fmt.Errorf("core: client has no keys; complete the key exchange first")
	}
	if len(imgs) == 0 {
		return nil, fmt.Errorf("core: empty image batch")
	}
	if len(imgs) == 1 {
		return c.encryptImageScalar(imgs[0], pixelScale)
	}
	batch, err := encoding.NewBatchEncoder(c.Params)
	if err != nil {
		return nil, fmt.Errorf("core: encrypting %d images needs slot batching, which requires a prime plaintext modulus t ≡ 1 mod 2n (n = %d, t = %d): %w",
			len(imgs), c.Params.N, c.Params.T, err)
	}
	if len(imgs) > batch.SlotCount() {
		return nil, fmt.Errorf("core: batch of %d exceeds %d slots", len(imgs), batch.SlotCount())
	}
	shape := imgs[0].Shape
	if len(shape) != 3 {
		return nil, fmt.Errorf("core: images must be [c, h, w]")
	}
	quant := make([][]int64, len(imgs))
	for i, img := range imgs {
		if !img.SameShape(imgs[0]) {
			return nil, fmt.Errorf("core: image %d shape %v differs from %v", i, img.Shape, shape)
		}
		quant[i] = nn.QuantizeImage(img, float64(pixelScale))
	}
	positions := imgs[0].Len()
	cts := make([]*he.Ciphertext, positions)
	slots := make([]int64, len(imgs))
	for p := 0; p < positions; p++ {
		for s := range imgs {
			slots[s] = quant[s][p]
		}
		pt, err := batch.Encode(slots)
		if err != nil {
			return nil, err
		}
		if cts[p], err = c.enc.Encrypt(pt); err != nil {
			return nil, fmt.Errorf("core: encrypting packed position %d: %w", p, err)
		}
	}
	return &CipherImage{
		Channels: shape[0], Height: shape[1], Width: shape[2],
		CTs: cts, Scale: pixelScale, Lanes: len(imgs),
	}, nil
}

// DecryptValueBatch unpacks slot-packed result ciphertexts:
// result[image][output] for batchSize images.
func (c *Client) DecryptValueBatch(cts []*he.Ciphertext, batchSize int) ([][]int64, error) {
	if !c.Ready() {
		return nil, fmt.Errorf("core: client has no keys")
	}
	batch, err := encoding.NewBatchEncoder(c.Params)
	if err != nil {
		return nil, err
	}
	if batchSize <= 0 || batchSize > batch.SlotCount() {
		return nil, fmt.Errorf("core: batch size %d out of range", batchSize)
	}
	out := make([][]int64, batchSize)
	for i := range out {
		out[i] = make([]int64, len(cts))
	}
	for p, ct := range cts {
		pt, err := c.dec.Decrypt(ct)
		if err != nil {
			return nil, fmt.Errorf("core: decrypting packed result %d: %w", p, err)
		}
		slots, err := batch.Decode(pt)
		if err != nil {
			return nil, err
		}
		for i := 0; i < batchSize; i++ {
			out[i][p] = slots[i]
		}
	}
	return out, nil
}
